package viewupdate

// Incremental view maintenance benchmarks: keeping a materialized SPJ
// view current across a non-root base-mutation stream, delta patching
// (storage reverse reference index + Join.DeltaForChange) against the
// full-rebuild baseline it replaced — and the serving side, read-heavy
// churn through the engine's view cache with and without delta
// patching on publish. Results land in BENCH_ivm.json. Run with:
//
//	go test -bench 'BenchmarkIVM' -run '^$' .

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"viewupdate/internal/schema"
	"viewupdate/internal/server"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/workload"
)

// ivmBenchEntry is one mode's result row in BENCH_ivm.json.
type ivmBenchEntry struct {
	Iterations  int     `json:"iterations"`
	Rows        int64   `json:"rows"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	NsPerCommit int64   `json:"ns_per_commit"`
}

var benchIVMResults = map[string]ivmBenchEntry{}

// writeBenchIVM rewrites BENCH_ivm.json with every entry collected so
// far plus the patch/rebuild speedups where both sides have run.
func writeBenchIVM(b *testing.B) {
	b.Helper()
	out := map[string]interface{}{"benchmarks": benchIVMResults}
	for _, pair := range []struct{ name, baseline, ivm string }{
		{"speedup_maintain_rows_per_sec", "IVMMaintain/rebuild", "IVMMaintain/patch"},
		{"speedup_serve_rows_per_sec", "IVMServe/noivm", "IVMServe/ivm"},
	} {
		base, okB := benchIVMResults[pair.baseline]
		ivm, okI := benchIVMResults[pair.ivm]
		if okB && okI && base.RowsPerSec > 0 {
			out[pair.name] = ivm.RowsPerSec / base.RowsPerSec
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ivm.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func recordIVM(b *testing.B, name string, rows int64, elapsed time.Duration) {
	b.Helper()
	perSec := 0.0
	if elapsed > 0 {
		perSec = float64(rows) / elapsed.Seconds()
	}
	nsPer := int64(0)
	if b.N > 0 {
		nsPer = elapsed.Nanoseconds() / int64(b.N)
	}
	benchIVMResults[name] = ivmBenchEntry{
		Iterations: b.N, Rows: rows, RowsPerSec: perSec, NsPerCommit: nsPer,
	}
	b.ReportMetric(perSec, "rows/s")
	writeBenchIVM(b)
}

// ivmTreeConfig sizes the maintain-mode workload: a depth-2 fanout-2
// reference tree (7 relations) big enough that a full rebuild per
// commit clearly dominates a delta patch.
var ivmTreeConfig = workload.TreeConfig{
	Depth: 2, Fanout: 2, Keys: 4000, TuplesPerRelation: 1200, Seed: 29,
}

// nonRootReplace builds the i-th payload replace against a non-root
// relation, resolving the current tuple by key so the stream stays
// applicable as the database evolves.
func nonRootReplace(w *workload.TreeWorkload, rng *rand.Rand, i int) *update.Translation {
	rels := w.Relations[1:]
	rel := rels[i%len(rels)]
	ts := w.DB.Tuples(rel.Name())
	cur := ts[rng.Intn(len(ts))]
	pAttr := rel.Attributes()[1]
	nu := int64(rng.Intn(100))
	if value.NewInt(nu) == cur.At(1) {
		nu = (nu + 1) % 100
	}
	return update.NewTranslation(update.NewReplace(cur, cur.MustWith(pAttr.Name, value.NewInt(nu))))
}

// BenchmarkIVMMaintain keeps the tree view's materialization current
// across a non-root payload-replace stream: "patch" applies
// Join.DeltaForChange to a copy-on-write clone of the maintained set
// (the production patch path), "rebuild" rematerializes after every
// commit. The reported rate is maintained view rows per second.
func BenchmarkIVMMaintain(b *testing.B) {
	b.Run("rebuild", func(b *testing.B) {
		w := workload.MustNewTree(ivmTreeConfig)
		rng := rand.New(rand.NewSource(31))
		var rows int64
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			tr := nonRootReplace(w, rng, i)
			if err := w.DB.Apply(tr); err != nil {
				b.Fatal(err)
			}
			maintained := w.View.Materialize(w.DB)
			rows += int64(maintained.Len())
		}
		b.StopTimer()
		recordIVM(b, "IVMMaintain/rebuild", rows, time.Since(start))
	})
	b.Run("patch", func(b *testing.B) {
		w := workload.MustNewTree(ivmTreeConfig)
		rng := rand.New(rand.NewSource(31))
		maintained := w.View.Materialize(w.DB)
		var rows int64
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			tr := nonRootReplace(w, rng, i)
			ov := storage.NewOverlay(w.DB)
			if err := ov.Apply(tr); err != nil {
				b.Fatal(err)
			}
			rem, add := w.View.DeltaForChange(w.DB, ov, tr.Removed().Slice(), tr.Added().Slice())
			if rem.Len() > 0 || add.Len() > 0 {
				next := maintained.Clone() // copy-on-write, as the server cache does
				for _, r := range rem.Slice() {
					next.Remove(r)
				}
				for _, r := range add.Slice() {
					next.Add(r)
				}
				maintained = next
			}
			if err := w.DB.Apply(tr); err != nil {
				b.Fatal(err)
			}
			rows += int64(maintained.Len())
		}
		b.StopTimer()
		elapsed := time.Since(start)
		if !maintained.Equal(w.View.Materialize(w.DB)) {
			b.Fatal("patched set diverged from rebuild")
		}
		recordIVM(b, "IVMMaintain/patch", rows, elapsed)
	})
}

// ivmServeScript is the serving workload schema: join view J over root
// CXD referencing AB.
const ivmServeScript = `
CREATE DOMAIN AKey AS INT RANGE 1 TO 100000;
CREATE DOMAIN Pay AS INT RANGE 0 TO 999;
CREATE DOMAIN CKey AS INT RANGE 1 TO 100000;
CREATE TABLE AB (A AKey, B Pay, PRIMARY KEY (A));
CREATE TABLE CXD (C CKey, X AKey, D Pay, PRIMARY KEY (C),
                  FOREIGN KEY (X) REFERENCES AB);
CREATE VIEW ABV AS SELECT * FROM AB;
CREATE VIEW CXDV AS SELECT * FROM CXD;
CREATE JOIN VIEW J ROOT CXDV WITH CXDV (X) REFERENCES ABV;
`

// newServeBenchEngine builds a memory-only engine, seeds nTuples per
// relation through one group commit, and returns it with the AB
// relation schema and its seeded keys.
func newServeBenchEngine(b *testing.B, disableIVM bool, nTuples int) (*server.Engine, *schema.Relation, []int64) {
	b.Helper()
	e, err := server.NewEngine(server.Config{MaxInFlight: 64, MaxBatch: 32, DisableIVM: disableIVM}, ivmServeScript)
	if err != nil {
		b.Fatal(err)
	}
	db, _ := e.Snapshot()
	ab, cxd := db.Schema().Relation("AB"), db.Schema().Relation("CXD")
	rng := rand.New(rand.NewSource(37))
	seed := update.NewTranslation()
	keys := make([]int64, nTuples)
	for i := 0; i < nTuples; i++ {
		keys[i] = int64(i + 1)
		seed.Add(update.NewInsert(tuple.MustNew(ab,
			value.NewInt(keys[i]), value.NewInt(int64(rng.Intn(1000))))))
	}
	for i := 0; i < nTuples; i++ {
		seed.Add(update.NewInsert(tuple.MustNew(cxd,
			value.NewInt(int64(i+1)), value.NewInt(keys[rng.Intn(nTuples)]), value.NewInt(int64(rng.Intn(1000))))))
	}
	if _, err := e.Commit(context.Background(), seed, false, 0); err != nil {
		b.Fatal(err)
	}
	return e, ab, keys
}

// runServeBench is one serving mode: each iteration lands one non-root
// payload replace through the commit pipeline, then serves a burst of
// reads of every view through the cache. The reported rate is view
// rows served per second.
func runServeBench(b *testing.B, name string, disableIVM bool) {
	const nTuples = 1500
	const readsPerCommit = 8
	e, ab, keys := newServeBenchEngine(b, disableIVM, nTuples)
	defer e.Close()
	rng := rand.New(rand.NewSource(41))
	probeFor := func(k int64) tuple.T {
		return tuple.MustNew(ab, value.NewInt(k), value.NewInt(0))
	}
	var rows int64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		db, _ := e.Snapshot()
		cur, ok := db.LookupKey(probeFor(keys[rng.Intn(len(keys))]))
		if !ok {
			b.Fatal("seeded AB tuple vanished")
		}
		nu := cur.MustWith("B", value.NewInt(int64(rng.Intn(1000))))
		if nu.Equal(cur) {
			continue
		}
		tr := update.NewTranslation(update.NewReplace(cur, nu))
		if _, err := e.Commit(context.Background(), tr, false, 0); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < readsPerCommit; r++ {
			for _, vn := range []string{"J", "ABV"} {
				set, _, err := e.ReadView(vn)
				if err != nil {
					b.Fatal(err)
				}
				rows += int64(set.Len())
			}
		}
	}
	b.StopTimer()
	recordIVM(b, name, rows, time.Since(start))
}

// BenchmarkIVMServe measures read-heavy serve churn: commits
// interleaved with read bursts, with the view cache delta-patched on
// publish ("ivm") against invalidate-on-publish ("noivm",
// Config.DisableIVM).
func BenchmarkIVMServe(b *testing.B) {
	b.Run("noivm", func(b *testing.B) { runServeBench(b, "IVMServe/noivm", true) })
	b.Run("ivm", func(b *testing.B) { runServeBench(b, "IVMServe/ivm", false) })
}
