package viewupdate

// Read-replica scaling benchmarks: aggregate view-read throughput of a
// primary alone versus the same primary fronted by four WAL-streaming
// followers, with live writes flowing throughout so the followers are
// exercising O(delta) view maintenance (stream → apply → cache patch →
// subscriber fan-out), not serving a frozen snapshot.
//
// Every node — the primary and each follower — serves its reads
// through a modeled-capacity gate: at most nodeSlots concurrent view
// reads, each padded to readServiceTime after the real handler runs
// (the real read executes in full; only the remainder is slept off).
// A 1-CPU CI box would otherwise time-slice five in-process nodes over
// one core and show no scale-out at all; the gate restores the
// per-node capacity ceiling the architecture exists to multiply, the
// same technique the shard sweep uses for datacenter fsync latency.
// Both scenarios run behind identical gates, so the reported speedup
// is the fan-out ratio, independent of the modeled constants.
//
// Alongside the read scale-out the follower run reports the replica
// freshness and push-path evidence for BENCH_replica.json:
//
//   - staleness: the follower-side commit-visibility lag (primary
//     publish wall clock → follower apply), p50/p99 in milliseconds,
//     from the server.replica.lag.ns histogram.
//   - fan-out: change events per second delivered to live /subscribe
//     streams (two per follower) during the measured window.
//   - steady_rebuilds: the view-cache rebuild counter delta across the
//     measured window — O(delta) maintenance means patches grow and
//     rebuilds stay ≈ 0.
//
// Results land in BENCH_replica.json. Run with:
//
//	go test -bench 'BenchmarkReplicaScale' -run '^$' -benchtime 4000x .
//
// or `make bench-replica`. CI asserts the 4-follower aggregate is at
// least 3x the single-node baseline and staleness p99 stays under the
// interactive bound.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/server"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// replicaBenchScript is the selection-view schema of the replica soak;
// followers receive the same script (DDL skips what the bootstrap
// snapshot already carries, the view is recreated fresh).
const replicaBenchScript = `
CREATE DOMAIN KeyDom AS INT RANGE 1 TO 200000;
CREATE DOMAIN LocDom AS STRING ('NY', 'SF');
CREATE TABLE EMP (EmpNo KeyDom, Location LocDom, PRIMARY KEY (EmpNo));
CREATE VIEW NY AS SELECT * FROM EMP WHERE Location = 'NY';
`

// The modeled per-node read capacity: nodeSlots concurrent reads, each
// at least readServiceTime end-to-end, i.e. ~2k reads/s per node. The
// service time is set well above the real cost of reading the bounded
// bench view (tens of microseconds) so the model, not the host CPU,
// sets every node's ceiling — the condition for the reported speedup
// to measure fan-out rather than core count.
const (
	nodeSlots       = 2
	readServiceTime = 2 * time.Millisecond
)

// replicaReaders is the closed-loop read fleet driving each scenario.
const replicaReaders = 32

// subsPerFollower live /subscribe streams are held open on every
// follower during the measured window.
const subsPerFollower = 2

// modeledNode gates a node's view reads to the modeled capacity. The
// real handler always runs in full (every read is a real snapshot read
// and JSON encode); only the remainder of the service time is slept,
// while the slot is still held. Non-read traffic — the WAL snapshot
// and stream, /subscribe, /metricsz — passes through ungated.
type modeledNode struct {
	h     http.Handler
	slots chan struct{}
}

func (m *modeledNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/views/") {
		m.slots <- struct{}{}
		defer func() { <-m.slots }()
		start := time.Now()
		m.h.ServeHTTP(w, r)
		if d := readServiceTime - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		return
	}
	m.h.ServeHTTP(w, r)
}

// replicaBenchEntry is one scenario's row in BENCH_replica.json.
type replicaBenchEntry struct {
	Followers     int     `json:"followers"`
	ReadNodes     int     `json:"read_nodes"`
	Reads         int64   `json:"reads"`
	ReadsPerSec   float64 `json:"reads_per_sec"`
	NsPerRead     int64   `json:"ns_per_read"`
	Writes        int64   `json:"writes"`
	WritesPerSec  float64 `json:"writes_per_sec"`
	StaleP50MS    float64 `json:"staleness_p50_ms,omitempty"`
	StaleP99MS    float64 `json:"staleness_p99_ms,omitempty"`
	Subscribers   int     `json:"subscribers,omitempty"`
	FanoutEvents  int64   `json:"fanout_events,omitempty"`
	FanoutPerSec  float64 `json:"fanout_events_per_sec,omitempty"`
	SteadyRebuild int64   `json:"steady_rebuilds"`
	SteadyPatch   int64   `json:"steady_patches"`
}

var benchReplicaResults = map[string]replicaBenchEntry{}

// writeBenchReplica rewrites BENCH_replica.json with every scenario
// collected so far plus the headline gates: the 4-follower read
// speedup over the single-node baseline, and the follower staleness
// and fan-out evidence.
func writeBenchReplica(b *testing.B) {
	b.Helper()
	out := map[string]interface{}{
		"benchmarks": benchReplicaResults,
		"modeled": map[string]interface{}{
			"node_slots":      nodeSlots,
			"read_service_us": readServiceTime.Microseconds(),
		},
	}
	base, okB := benchReplicaResults["ReplicaScale/primary-only"]
	four, okF := benchReplicaResults["ReplicaScale/followers-4"]
	if okB && okF && base.ReadsPerSec > 0 {
		out["speedup_4f_reads_per_sec"] = four.ReadsPerSec / base.ReadsPerSec
	}
	if okF {
		out["staleness_p50_ms"] = four.StaleP50MS
		out["staleness_p99_ms"] = four.StaleP99MS
		out["fanout_subscribers"] = four.Subscribers
		out["fanout_events_per_sec"] = four.FanoutPerSec
		out["steady_rebuilds"] = four.SteadyRebuild
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_replica.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// waitReplicaRows polls the engine's NY view until it holds n rows.
func waitReplicaRows(b *testing.B, e *server.Engine, n int) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		set, _, err := e.ReadView("NY")
		if err == nil && set.Len() >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.Fatalf("follower never reached %d rows", n)
}

// countChanges drains one /subscribe stream, counting change events.
func countChanges(body io.Reader, events *atomic.Int64) {
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: change") {
			events.Add(1)
		}
	}
}

// benchReplicaScale drives b.N closed-loop reads from replicaReaders
// workers round-robined across the scenario's read nodes — the primary
// alone, or `followers` live replicas — while a background writer
// commits a steady insert stream on the primary.
func benchReplicaScale(b *testing.B, followers int) {
	// The staleness histogram, fan-out counters and IVM evidence need a
	// live metrics sink; every node in the process shares it.
	sink := obs.NewSink(slog.New(slog.NewTextHandler(io.Discard, nil)))
	prev := obs.Active()
	obs.Enable(sink)
	defer obs.Enable(prev)

	primary, err := server.NewEngine(server.Config{
		Dir: b.TempDir(), MaxInFlight: 256, RequestTimeout: time.Minute,
	}, replicaBenchScript)
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	psrv := httptest.NewServer(&modeledNode{
		h: server.NewHandler(primary), slots: make(chan struct{}, nodeSlots)})
	defer psrv.Close()

	// The writer slides a fixed-width key window: each commit inserts a
	// fresh NY row and deletes the one falling off the back, so the view
	// stays at seedRows rows however long the run — read cost is
	// constant and every commit is a genuine two-op delta for the IVM
	// and fan-out paths to patch through.
	db, _ := primary.Snapshot()
	emp := db.Schema().Relation("EMP")
	var nextKey atomic.Int64
	const seedRows = 64
	insert := func() error {
		k := nextKey.Add(1)
		ops := []update.Op{
			update.NewInsert(tuple.MustNew(emp, value.NewInt(k), value.NewString("NY")))}
		if old := k - seedRows; old >= 1 {
			ops = append(ops,
				update.NewDelete(tuple.MustNew(emp, value.NewInt(old), value.NewString("NY"))))
		}
		_, err := primary.Commit(context.Background(), update.NewTranslation(ops...), false, 0)
		return err
	}
	for i := 0; i < seedRows; i++ {
		if err := insert(); err != nil {
			b.Fatal(err)
		}
	}

	readURLs := []string{psrv.URL + "/views/NY"}
	var subURLs []string
	if followers > 0 {
		readURLs = readURLs[:0]
		for i := 0; i < followers; i++ {
			f, err := server.NewEngine(server.Config{
				Follow: psrv.URL, MaxInFlight: 256, RequestTimeout: time.Minute,
			}, replicaBenchScript)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			fsrv := httptest.NewServer(&modeledNode{
				h: server.NewHandler(f), slots: make(chan struct{}, nodeSlots)})
			defer fsrv.Close()
			waitReplicaRows(b, f, seedRows)
			readURLs = append(readURLs, fsrv.URL+"/views/NY")
			for s := 0; s < subsPerFollower; s++ {
				subURLs = append(subURLs, fsrv.URL+"/subscribe/NY")
			}
		}
	}

	// One keep-alive pool for the whole fleet (see cmd/vuload).
	hc := &http.Client{Timeout: time.Minute, Transport: &http.Transport{
		MaxIdleConns: 4 * replicaReaders, MaxIdleConnsPerHost: 4 * replicaReaders,
	}}

	// Live subscriptions held open across the measured window.
	var events atomic.Int64
	var subBodies []io.Closer
	var subWG sync.WaitGroup
	for _, u := range subURLs {
		resp, err := hc.Get(u)
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("subscribe %s: %v (status %v)", u, err, resp)
		}
		subBodies = append(subBodies, resp.Body)
		subWG.Add(1)
		go func(body io.Reader) { defer subWG.Done(); countChanges(body, &events) }(resp.Body)
	}

	// Warm-up: a write lands on every node's patched cache and one read
	// per node pays the single cold rebuild before the timer starts.
	if err := insert(); err != nil {
		b.Fatal(err)
	}
	for _, u := range readURLs {
		resp, err := hc.Get(u)
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("warm-up read %s: %v", u, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	snapBefore := sink.Metrics().Snapshot()
	eventsBefore := events.Load()

	// Background writer: a steady insert stream through the measured
	// window, each commit durable on the primary and streamed live to
	// every follower.
	stopWriter := make(chan struct{})
	var writes atomic.Int64
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopWriter:
				return
			case <-tick.C:
				if err := insert(); err != nil {
					return
				}
				writes.Add(1)
			}
		}
	}()

	var next atomic.Int64
	var readErr atomic.Pointer[string]
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < replicaReaders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				u := readURLs[int(i)%len(readURLs)]
				resp, err := hc.Get(u)
				if err != nil {
					msg := err.Error()
					readErr.Store(&msg)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					msg := fmt.Sprintf("read %s: status %d", u, resp.StatusCode)
					readErr.Store(&msg)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	close(stopWriter)
	writerWG.Wait()
	if msg := readErr.Load(); msg != nil {
		b.Fatal(*msg)
	}

	// Let the tail of the write stream fan out before sampling.
	if followers > 0 {
		deadline := time.Now().Add(5 * time.Second)
		want := eventsBefore + writes.Load()*int64(len(subURLs))
		for time.Now().Before(deadline) && events.Load() < want {
			time.Sleep(2 * time.Millisecond)
		}
	}
	snapAfter := sink.Metrics().Snapshot()
	fanout := events.Load() - eventsBefore

	for _, c := range subBodies {
		c.Close()
	}
	subWG.Wait()

	perSec := 0.0
	if elapsed > 0 {
		perSec = float64(b.N) / elapsed.Seconds()
	}
	nsPer := int64(0)
	if b.N > 0 {
		nsPer = elapsed.Nanoseconds() / int64(b.N)
	}
	entry := replicaBenchEntry{
		Followers:     followers,
		ReadNodes:     len(readURLs),
		Reads:         int64(b.N),
		ReadsPerSec:   perSec,
		NsPerRead:     nsPer,
		Writes:        writes.Load(),
		SteadyRebuild: snapAfter.Counters["server.ivm.rebuild"] - snapBefore.Counters["server.ivm.rebuild"],
		SteadyPatch:   snapAfter.Counters["server.ivm.patch"] - snapBefore.Counters["server.ivm.patch"],
	}
	if elapsed > 0 {
		entry.WritesPerSec = float64(entry.Writes) / elapsed.Seconds()
	}
	if followers > 0 {
		lag := snapAfter.Histograms["server.replica.lag.ns"]
		entry.StaleP50MS = float64(lag.P50) / float64(time.Millisecond)
		entry.StaleP99MS = float64(lag.P99) / float64(time.Millisecond)
		entry.Subscribers = len(subURLs)
		entry.FanoutEvents = fanout
		if elapsed > 0 {
			entry.FanoutPerSec = float64(fanout) / elapsed.Seconds()
		}
	}
	name := "ReplicaScale/primary-only"
	if followers > 0 {
		name = fmt.Sprintf("ReplicaScale/followers-%d", followers)
	}
	benchReplicaResults[name] = entry
	b.ReportMetric(perSec, "reads/s")
	writeBenchReplica(b)
}

// BenchmarkReplicaScale runs the single-node baseline and the
// 4-follower fan-out under identical per-node capacity models.
func BenchmarkReplicaScale(b *testing.B) {
	b.Run("primary-only", func(b *testing.B) { benchReplicaScale(b, 0) })
	b.Run("followers-4", func(b *testing.B) { benchReplicaScale(b, 4) })
}
