package viewupdate

// Ablation benchmarks for the design decisions called out in DESIGN.md:
// the incremental inclusion-dependency index vs full rescans, the cost
// of each of the five criteria checkers, enumeration vs policy-driven
// translation, and validity checking (clone + materialize) vs pure
// translation.

import (
	"fmt"
	"testing"

	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
	"viewupdate/internal/workload"
)

// BenchmarkAblationInclusionIndex compares the delta-checked apply path
// (incremental reference index) against a full inclusion rescan, at
// growing child-relation sizes.
func BenchmarkAblationInclusionIndex(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		w := workload.MustNewTree(workload.TreeConfig{
			Depth: 1, Fanout: 1, Keys: int64(n * 2), TuplesPerRelation: n, Seed: 21,
		})
		child := w.Relations[0]
		// A key-preserving payload replacement on a child tuple.
		t0 := w.DB.Tuples(child.Name())[0]
		alt := t0.MustWith("P0", pickOther(t0, child, "P0"))
		fwd := update.NewTranslation(update.NewReplace(t0, alt))
		rev := update.NewTranslation(update.NewReplace(alt, t0))
		b.Run(fmt.Sprintf("delta-index/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := w.DB.Apply(fwd); err != nil {
					b.Fatal(err)
				}
				if err := w.DB.Apply(rev); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("full-rescan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := w.DB.Apply(fwd); err != nil {
					b.Fatal(err)
				}
				if err := w.DB.CheckAllInclusions(); err != nil {
					b.Fatal(err)
				}
				if err := w.DB.Apply(rev); err != nil {
					b.Fatal(err)
				}
				if err := w.DB.CheckAllInclusions(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func pickOther(t interface{ MustGet(string) Value }, rel *Relation, attr string) Value {
	cur := t.MustGet(attr)
	a, _ := rel.Attribute(attr)
	for _, v := range a.Domain.Values() {
		if v != cur {
			return v
		}
	}
	return cur
}

// BenchmarkAblationCriteria measures each criterion checker separately
// on a two-op R-4 translation (the most expensive shape the classes
// produce).
func BenchmarkAblationCriteria(b *testing.B) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	old := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	new := f.ViewTuple(f.ViewP, 11, "Susan", "New York", true)
	r := core.ReplaceRequest(old, new)
	cands, err := core.Enumerate(db, f.ViewP, r)
	if err != nil {
		b.Fatal(err)
	}
	var tr *Translation
	for _, c := range cands {
		if c.Translation.Len() == 2 {
			tr = c.Translation
			break
		}
	}
	if tr == nil {
		b.Fatal("no two-op candidate")
	}
	validFn := func(t *Translation) bool { return core.Valid(db, f.ViewP, r, t) }
	// The full check (all five criteria).
	b.Run("all-five", func(b *testing.B) {
		opts := core.CheckOptions{Valid: validFn}
		for i := 0; i < b.N; i++ {
			if v := core.CheckCriteria(db, f.ViewP, r, tr, opts); len(v) != 0 {
				b.Fatal("unexpected violation")
			}
		}
	})
	// Criteria 3 and 4 dominate (they quantify over alternatives); the
	// structural criteria alone are near-free. Approximate the split by
	// checking with a constant-false validity (criteria 3/4 short out).
	b.Run("structural-only", func(b *testing.B) {
		opts := core.CheckOptions{Valid: func(*Translation) bool { return false }}
		for i := 0; i < b.N; i++ {
			if v := core.CheckCriteria(db, f.ViewP, r, tr, opts); len(v) != 0 {
				b.Fatal("unexpected violation")
			}
		}
	})
}

// BenchmarkAblationTranslateVsVerify separates the cost of enumerating
// translations from the cost of verifying one (clone + apply +
// materialize + compare), which grows with the database.
func BenchmarkAblationTranslateVsVerify(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		w := workload.MustNewSP(workload.SPConfig{
			Keys: int64(n * 2), Attrs: 3, DomainSize: 4,
			SelectingAttrs: 1, HiddenAttrs: 1, Tuples: n, Seed: 33,
		})
		r, ok := w.NextRequest(update.Delete)
		if !ok {
			b.Fatal("no request")
		}
		cands, err := core.Enumerate(w.DB, w.View, r)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("translate/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Enumerate(w.DB, w.View, r); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("verify/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !core.Valid(w.DB, w.View, r, cands[0].Translation) {
					b.Fatal("invalid")
				}
			}
		})
	}
}

// BenchmarkAblationSecondaryIndex compares view materialization with
// and without a secondary index on the selecting attribute, across
// database sizes and selectivities.
func BenchmarkAblationSecondaryIndex(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, frac := range []float64{0.5, 0.05} {
			w := workload.MustNewSP(workload.SPConfig{
				Keys: int64(n * 2), Attrs: 3, DomainSize: 4,
				SelectingAttrs: 1, HiddenAttrs: 0, Tuples: n,
				VisibleFraction: frac, Seed: 77,
			})
			b.Run(fmt.Sprintf("scan/n=%d/vis=%.2f", n, frac), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.View.Materialize(w.DB)
				}
			})
			if err := w.DB.CreateIndex("R", "A0"); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("index/n=%d/vis=%.2f", n, frac), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.View.Materialize(w.DB)
				}
			})
		}
	}
}

// BenchmarkAblationPolicyOverhead compares raw enumeration with
// policy-driven translation (enumerate + choose) for the three
// policies.
func BenchmarkAblationPolicyOverhead(b *testing.B) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	r := core.DeleteRequest(u)
	policies := []core.Policy{
		core.PickFirst{},
		core.PreferClasses{Order: []string{"D-2", "D-1"}},
		core.WithDefaults{Base: core.PickFirst{}, Defaults: map[string]Value{"Location": Str("San Francisco")}},
	}
	b.Run("enumerate-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Enumerate(db, f.ViewP, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			tr := core.NewTranslator(f.ViewP, p)
			for i := 0; i < b.N; i++ {
				if _, err := tr.Translate(db, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
