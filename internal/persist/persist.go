// Package persist serializes a database — schema (domains, relations,
// inclusion dependencies) and contents — to a JSON snapshot and loads
// it back. Snapshots are deterministic (sorted domains, schema-ordered
// relations, key-ordered tuples) so they diff cleanly.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// FormatVersion is the current snapshot layout. Format 1 lacked the
// Seq watermark; Restore accepts both.
const FormatVersion = 2

// Snapshot is the serialized form of a database.
type Snapshot struct {
	// Format identifies the snapshot layout; see FormatVersion.
	Format int `json:"format"`
	// Seq is the applied-sequence watermark: the highest WAL sequence
	// number folded into this snapshot's contents. Recovery skips
	// committed WAL records with seq <= Seq, making replay idempotent
	// when a crash interrupts a checkpoint between the snapshot rename
	// and the WAL truncation. Format-1 snapshots decode with Seq 0.
	Seq uint64 `json:"seq,omitempty"`
	// Domains in name order.
	Domains []DomainJSON `json:"domains"`
	// Relations in schema registration order.
	Relations []RelationJSON `json:"relations"`
	// Inclusions in registration order.
	Inclusions []InclusionJSON `json:"inclusions,omitempty"`
	// Tuples maps relation name to rows of canonical value encodings.
	Tuples map[string][][]string `json:"tuples"`
}

// DomainJSON serializes one domain.
type DomainJSON struct {
	Name   string   `json:"name"`
	Values []string `json:"values"` // canonical encodings, ascending
}

// RelationJSON serializes one relation schema.
type RelationJSON struct {
	Name  string     `json:"name"`
	Attrs []AttrJSON `json:"attrs"`
	Key   []string   `json:"key"`
}

// AttrJSON serializes one attribute.
type AttrJSON struct {
	Name   string `json:"name"`
	Domain string `json:"domain"`
}

// InclusionJSON serializes one inclusion dependency.
type InclusionJSON struct {
	Child      string   `json:"child"`
	ChildAttrs []string `json:"childAttrs"`
	Parent     string   `json:"parent"`
}

// Capture builds a Snapshot of db.
func Capture(db *storage.Database) (*Snapshot, error) {
	sch := db.Schema()
	snap := &Snapshot{Format: FormatVersion, Tuples: map[string][][]string{}}

	seenDom := map[string]*schema.Domain{}
	var domNames []string
	for _, rn := range sch.RelationNames() {
		rel := sch.Relation(rn)
		rj := RelationJSON{Name: rn, Key: rel.Key()}
		for _, a := range rel.Attributes() {
			if prev, ok := seenDom[a.Domain.Name()]; ok {
				if prev != a.Domain {
					return nil, fmt.Errorf("persist: two distinct domains named %s", a.Domain.Name())
				}
			} else {
				seenDom[a.Domain.Name()] = a.Domain
				domNames = append(domNames, a.Domain.Name())
			}
			rj.Attrs = append(rj.Attrs, AttrJSON{Name: a.Name, Domain: a.Domain.Name()})
		}
		snap.Relations = append(snap.Relations, rj)

		var rows [][]string
		for _, t := range db.Tuples(rn) {
			row := make([]string, 0, rel.Arity())
			for _, v := range t.Values() {
				row = append(row, v.Encode())
			}
			rows = append(rows, row)
		}
		snap.Tuples[rn] = rows
	}
	for _, dn := range domNames {
		d := seenDom[dn]
		dj := DomainJSON{Name: dn}
		for _, v := range d.Values() {
			dj.Values = append(dj.Values, v.Encode())
		}
		snap.Domains = append(snap.Domains, dj)
	}
	for _, inc := range sch.Inclusions() {
		snap.Inclusions = append(snap.Inclusions, InclusionJSON{
			Child: inc.Child, ChildAttrs: inc.ChildAttrs, Parent: inc.Parent,
		})
	}
	return snap, nil
}

// Save writes db's snapshot as indented JSON.
func Save(w io.Writer, db *storage.Database) error {
	snap, err := Capture(db)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// SaveFile writes db's snapshot to path.
func SaveFile(path string, db *storage.Database) error {
	snap, err := Capture(db)
	if err != nil {
		return err
	}
	return WriteSnapshotFile(path, snap)
}

// WriteSnapshotFile writes snap to path as indented JSON, fsyncing the
// file before close so a caller that renames it into place cannot end
// up with an empty or partial snapshot after power loss.
func WriteSnapshotFile(path string, snap *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	return f.Close()
}

// Restore rebuilds a database (with a fresh schema) from a snapshot.
func Restore(snap *Snapshot) (*storage.Database, error) {
	if snap.Format < 1 || snap.Format > FormatVersion {
		return nil, fmt.Errorf("persist: unsupported snapshot format %d", snap.Format)
	}
	domains := map[string]*schema.Domain{}
	for _, dj := range snap.Domains {
		vals := make([]value.Value, len(dj.Values))
		for i, enc := range dj.Values {
			v, err := value.Decode(enc)
			if err != nil {
				return nil, fmt.Errorf("persist: domain %s: %w", dj.Name, err)
			}
			vals[i] = v
		}
		d, err := schema.NewDomain(dj.Name, vals...)
		if err != nil {
			return nil, fmt.Errorf("persist: domain %s: %w", dj.Name, err)
		}
		domains[dj.Name] = d
	}
	sch := schema.NewDatabase()
	for _, rj := range snap.Relations {
		attrs := make([]schema.Attribute, len(rj.Attrs))
		for i, aj := range rj.Attrs {
			d := domains[aj.Domain]
			if d == nil {
				return nil, fmt.Errorf("persist: relation %s references unknown domain %s", rj.Name, aj.Domain)
			}
			attrs[i] = schema.Attribute{Name: aj.Name, Domain: d}
		}
		rel, err := schema.NewRelation(rj.Name, attrs, rj.Key)
		if err != nil {
			return nil, fmt.Errorf("persist: relation %s: %w", rj.Name, err)
		}
		if err := sch.AddRelation(rel); err != nil {
			return nil, err
		}
	}
	for _, ij := range snap.Inclusions {
		if err := sch.AddInclusion(schema.InclusionDependency{
			Child: ij.Child, ChildAttrs: ij.ChildAttrs, Parent: ij.Parent,
		}); err != nil {
			return nil, err
		}
	}
	db := storage.Open(sch)
	var all []tuple.T
	for rn, rows := range snap.Tuples {
		rel := sch.Relation(rn)
		if rel == nil {
			return nil, fmt.Errorf("persist: tuples for unknown relation %s", rn)
		}
		for _, row := range rows {
			if len(row) != rel.Arity() {
				return nil, fmt.Errorf("persist: %s row has %d values, want %d", rn, len(row), rel.Arity())
			}
			vals := make([]value.Value, len(row))
			for i, enc := range row {
				v, err := value.Decode(enc)
				if err != nil {
					return nil, fmt.Errorf("persist: %s row: %w", rn, err)
				}
				vals[i] = v
			}
			t, err := tuple.New(rel, vals...)
			if err != nil {
				return nil, fmt.Errorf("persist: %s row: %w", rn, err)
			}
			all = append(all, t)
		}
	}
	if err := db.LoadAll(all...); err != nil {
		return nil, fmt.Errorf("persist: loading tuples: %w", err)
	}
	return db, nil
}

// Load reads a snapshot from r and restores it.
func Load(r io.Reader) (*storage.Database, error) {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decoding snapshot: %w", err)
	}
	return Restore(&snap)
}

// LoadFile reads a snapshot from path and restores it.
func LoadFile(path string) (*storage.Database, error) {
	snap, err := ReadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return Restore(snap)
}

// ReadSnapshotFile reads the raw snapshot at path without restoring it,
// exposing metadata — notably the Seq watermark — alongside the data.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap Snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("persist: decoding snapshot: %w", err)
	}
	return &snap, nil
}
