package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// crashWorkload returns a sequence of valid translations against the
// ABCXD paper instance, exercising inserts, deletes and replacements
// across the inclusion dependency CXD[X] ⊆ AB[A].
func crashWorkload(fx *fixtures.ABCXD) []*update.Translation {
	return []*update.Translation{
		update.NewTranslation( // referencing pair in one step
			update.NewInsert(fx.ABTuple("a1", 5)),
			update.NewInsert(fx.CXDTuple("c3", "a1", 7))),
		update.NewTranslation(update.NewDelete(fx.CXDTuple("c2", "a2", 4))),
		update.NewTranslation(update.NewReplace(fx.CXDTuple("c1", "a", 3), fx.CXDTuple("c1", "a1", 9))),
		update.NewTranslation(update.NewDelete(fx.ABTuple("a2", 2))),
		update.NewTranslation(update.NewInsert(fx.CXDTuple("c2", "a", 4))),
		update.NewTranslation(update.NewInsert(fx.ABTuple("a3", 8))),
		update.NewTranslation(update.NewReplace(fx.ABTuple("a3", 8), fx.ABTuple("a3", 9))),
		update.NewTranslation(update.NewDelete(fx.CXDTuple("c3", "a1", 7))),
	}
}

// runWorkload creates a store in dir, applies the workload, and returns
// the rendered state after the snapshot and after each commit.
func runWorkload(t *testing.T, dir string, fx *fixtures.ABCXD) []string {
	t.Helper()
	st, err := Create(dir, fx.PaperInstance(), Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	states := []string{render(st.DB())}
	for i, tr := range crashWorkload(fx) {
		if err := st.Apply(tr); err != nil {
			t.Fatalf("translation %d: %v", i, err)
		}
		states = append(states, render(st.DB()))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return states
}

func TestStoreCreateApplyReopen(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	states := runWorkload(t, dir, fx)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep := st.Report()
	if rep.Replayed != len(states)-1 || rep.Discarded != 0 || rep.TornAt != -1 {
		t.Fatalf("report = %s, want %d clean replays", rep, len(states)-1)
	}
	if render(st.DB()) != states[len(states)-1] {
		t.Fatal("recovered state differs from the final committed state")
	}
	// The recovered store keeps accepting work under fresh sequence
	// numbers. Tuples must be built against the recovered schema — the
	// snapshot restore produced fresh relation objects.
	cxd := st.DB().Schema().Relation("CXD")
	tp, err := tuple.New(cxd, value.NewString("c3"), value.NewString("a"), value.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(update.NewTranslation(update.NewInsert(tp))); err != nil {
		t.Fatal(err)
	}
}

// TestCrashSafetyProperty is the headline robustness property: for a
// workload of K translations, crash the log at EVERY byte offset and
// recover. Recovery must always succeed, yield exactly the state of
// the longest fully-committed prefix, and satisfy every inclusion
// dependency — no torn offset may surface a partial translation.
func TestCrashSafetyProperty(t *testing.T) {
	fx := fixtures.NewABCXD()
	src := t.TempDir()
	states := runWorkload(t, src, fx)
	walBytes, err := os.ReadFile(filepath.Join(src, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(src, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	prev := -1
	for c := 0; c <= len(walBytes); c++ {
		if err := os.WriteFile(filepath.Join(dir, SnapshotFile), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, WALFile), walBytes[:c], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", c, err)
		}
		// The state must be the committed prefix the cut preserves.
		res, err := wal.Scan(bytes.NewReader(walBytes[:c]))
		if err != nil {
			t.Fatalf("cut %d: %v", c, err)
		}
		committed, _ := res.Committed()
		if st.Report().Replayed != len(committed) {
			t.Fatalf("cut %d: replayed %d, want %d", c, st.Report().Replayed, len(committed))
		}
		if got, want := render(st.DB()), states[len(committed)]; got != want {
			t.Fatalf("cut %d: recovered state is not the %d-commit prefix state", c, len(committed))
		}
		if err := st.DB().CheckAllInclusions(); err != nil {
			t.Fatalf("cut %d: recovered state violates inclusions: %v", c, err)
		}
		// Durability is monotone in the crash offset.
		if len(committed) < prev {
			t.Fatalf("cut %d: committed prefix shrank from %d to %d", c, prev, len(committed))
		}
		prev = len(committed)
		if err := st.Close(); err != nil {
			t.Fatalf("cut %d: %v", c, err)
		}
	}
	if prev != len(states)-1 {
		t.Fatalf("full log recovered %d commits, want %d", prev, len(states)-1)
	}
}

// TestStoreCrashMidWorkload drives the store itself into a simulated
// crash via a CrashWriter on the WAL media, then recovers from disk:
// the recovered state must equal the last state the store successfully
// committed, and the torn tail must be truncated.
func TestStoreCrashMidWorkload(t *testing.T) {
	fx := fixtures.NewABCXD()
	// Learn the full log size, then re-run crashing at awkward offsets.
	probe := t.TempDir()
	runWorkload(t, probe, fx)
	full, err := os.ReadFile(filepath.Join(probe, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{3, int64(len(full)) / 3, int64(len(full)) / 2, int64(len(full)) - 5} {
		dir := t.TempDir()
		var cw *faultinject.CrashWriter
		st, err := Create(dir, fx.PaperInstance(), Options{
			Sync: wal.SyncNever,
			WrapWAL: func(f wal.File) wal.File {
				cw = &faultinject.CrashWriter{W: f, Limit: limit}
				return cw
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		states := []string{render(st.DB())}
		lastCommitted := 0
		for i, tr := range crashWorkload(fx) {
			err := st.Apply(tr)
			if err == nil {
				lastCommitted = i + 1
				states = append(states, render(st.DB()))
				continue
			}
			if !errors.Is(err, faultinject.ErrCrashed) && !vuerr.IsCorrupt(err) {
				t.Fatalf("limit %d: unexpected apply error: %v", limit, err)
			}
		}
		if !cw.Crashed() {
			t.Fatalf("limit %d: crash writer never fired", limit)
		}
		// In-memory state never runs ahead of the durable commits
		// (commit-append failures roll the memory image back), unless
		// the rollback itself failed and the store says so.
		if st.Err() == nil && render(st.DB()) != states[lastCommitted] {
			t.Fatalf("limit %d: memory state diverged from last durable commit", limit)
		}

		rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("limit %d: recovery failed: %v", limit, err)
		}
		if got := render(rec.DB()); got != states[rec.Report().Replayed] {
			t.Fatalf("limit %d: recovered state is not a committed prefix (report %s)", limit, rec.Report())
		}
		if rec.Report().Replayed > lastCommitted {
			t.Fatalf("limit %d: recovery invented commits: %s", limit, rec.Report())
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreTransientAppendRetry checks the transient path end to end: a
// flaky WAL write fails one Apply with a retryable error, the retry
// succeeds, and recovery sees exactly the committed translations.
func TestStoreTransientAppendRetry(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{
		Sync: wal.SyncNever,
		WrapWAL: func(f wal.File) wal.File {
			return &faultinject.FlakyWriter{W: f, FailNth: 3} // third frame write
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	trs := crashWorkload(fx)
	if err := st.Apply(trs[0]); err != nil { // frames 1,2
		t.Fatal(err)
	}
	err = st.Apply(trs[1]) // frame 3: translation append fails
	if !vuerr.IsTransient(err) {
		t.Fatalf("flaky append error = %v, want transient", err)
	}
	if err := st.Apply(trs[1]); err != nil { // retry
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Report().Replayed != 2 || rec.Report().Discarded != 0 || rec.Report().TornAt != -1 {
		t.Fatalf("report = %s, want 2 clean replays", rec.Report())
	}
	// The failed append burned seq 2; the retry committed under seq 3.
	// Reusing sequence numbers could pair a fresh commit marker with a
	// stale record from the failed attempt.
	if rec.Report().MaxSeq != 3 {
		t.Fatalf("max seq = %d, want 3 (failed append burns its seq)", rec.Report().MaxSeq)
	}
	if render(rec.DB()) != render(st.DB()) {
		t.Fatal("recovered state differs")
	}
}

// TestStoreCommitAppendFailureRollsBack pins the commit-failure
// contract: when the commit marker cannot be written, the in-memory
// apply is undone so memory matches disk, and the translation is
// discarded at recovery.
func TestStoreCommitAppendFailureRollsBack(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{
		Sync: wal.SyncNever,
		WrapWAL: func(f wal.File) wal.File {
			return &faultinject.FlakyWriter{W: f, FailNth: 2} // the first commit marker
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := render(st.DB())
	err = st.Apply(crashWorkload(fx)[0])
	if !vuerr.IsTransient(err) {
		t.Fatalf("commit failure = %v, want transient", err)
	}
	if render(st.DB()) != before {
		t.Fatal("failed commit left the in-memory state changed")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Report().Replayed != 0 || rec.Report().Discarded != 1 {
		t.Fatalf("report = %s, want 0 replayed / 1 discarded", rec.Report())
	}
	if render(rec.DB()) != before {
		t.Fatal("recovery applied an uncommitted translation")
	}
}

func TestCheckpoint(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range crashWorkload(fx)[:3] {
		if err := st.Apply(tr); err != nil {
			t.Fatal(err)
		}
	}
	want := render(st.DB())
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, WALFile)); err != nil || st.Size() != 0 {
		t.Fatalf("checkpoint left WAL at %v bytes (%v), want 0", st.Size(), err)
	}
	// The store stays usable after a checkpoint.
	if err := st.Apply(crashWorkload(fx)[3]); err != nil {
		t.Fatal(err)
	}
	want2 := render(st.DB())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Report().Replayed != 1 {
		t.Fatalf("report = %s, want exactly the post-checkpoint commit", rec.Report())
	}
	if render(rec.DB()) != want2 {
		t.Fatal("post-checkpoint recovery differs")
	}
	_ = want
}

// TestCheckpointCrashWindow simulates a crash between the checkpoint's
// snapshot rename and its WAL truncation: the new snapshot is in place
// but the old WAL records survive. The snapshot's applied-sequence
// watermark must make recovery skip them — replaying would apply every
// committed translation twice and fail on the duplicate inserts.
func TestCheckpointCrashWindow(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	trs := crashWorkload(fx)
	for _, tr := range trs[:3] {
		if err := st.Apply(tr); err != nil {
			t.Fatal(err)
		}
	}
	want := render(st.DB())
	walPath := filepath.Join(dir, WALFile)
	preCheckpoint, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Undo the truncation: this is the on-disk state if the process died
	// right after the rename.
	if err := os.WriteFile(walPath, preCheckpoint, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after checkpoint crash: %v", err)
	}
	rep := rec.Report()
	if rep.Replayed != 0 || rep.Skipped != 3 || rep.SnapshotSeq != 3 {
		t.Fatalf("report = %s, want 0 replayed / 3 skipped at watermark 3", rep)
	}
	if render(rec.DB()) != want {
		t.Fatal("recovered state differs from the checkpointed state")
	}
	// The store keeps working past the stale records: new commits get
	// fresh sequence numbers and replay cleanly next time. The tuple is
	// rebuilt against the recovered schema — snapshot restore produced
	// fresh relation objects.
	ab := rec.DB().Schema().Relation("AB")
	tp, err := tuple.New(ab, value.NewString("a2"), value.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Apply(update.NewTranslation(update.NewDelete(tp))); err != nil {
		t.Fatal(err)
	}
	want2 := render(rec.DB())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Report().Replayed != 1 || again.Report().Skipped != 3 {
		t.Fatalf("report = %s, want 1 replayed / 3 skipped", again.Report())
	}
	if render(again.DB()) != want2 {
		t.Fatal("post-crash-window commit did not survive")
	}
}

func TestOpenErrors(t *testing.T) {
	// No snapshot at all.
	if _, err := Open(t.TempDir(), Options{}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("err = %v, want ErrNoStore", err)
	}
	// A WAL that decodes but disagrees with the schema is corruption.
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	log, _, err := wal.OpenFile(filepath.Join(dir, WALFile), wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	bad := wal.Record{Seq: 1, Kind: wal.KindTranslation,
		Ops: []wal.OpRecord{{Kind: "i", Rel: "NOPE", Vals: []string{"i1"}}}}
	if err := log.Append(bad); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(wal.CommitRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !vuerr.IsCorrupt(err) {
		t.Fatalf("err = %v, want corrupt chain", err)
	}
}

func TestBrokenStoreRefusesWork(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	// Fail the commit append AND the rollback of the in-memory apply:
	// the commit marker write crashes, and the inverse translation is
	// blocked by an injected storage fault, leaving memory ahead of
	// disk — the store must declare itself broken.
	st, err := Create(dir, fx.PaperInstance(), Options{
		Sync: wal.SyncNever,
		WrapWAL: func(f wal.File) wal.File {
			return &faultinject.FlakyWriter{W: f, FailNth: 2}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteApply, 2, vuerr.ErrTransient)) // the rollback apply
	defer faultinject.Disable()
	err = st.Apply(crashWorkload(fx)[0])
	if !vuerr.IsCorrupt(err) {
		t.Fatalf("err = %v, want corrupt chain", err)
	}
	if st.Err() == nil {
		t.Fatal("store should report itself broken")
	}
	faultinject.Disable()
	for _, probe := range []func() error{
		func() error { return st.Apply(crashWorkload(fx)[5]) },
		st.Checkpoint,
	} {
		if err := probe(); !vuerr.IsCorrupt(err) {
			t.Fatalf("broken store accepted work: %v", err)
		}
	}
	// Disk was never told about the failed translation: recovery from
	// the files yields the pre-crash state.
	rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Report().Replayed != 0 || rec.Report().Discarded != 1 {
		t.Fatalf("report = %s, want 0 replayed / 1 discarded", rec.Report())
	}
}
