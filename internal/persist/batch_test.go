package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// countingFile wraps WAL media and counts durability barriers, to
// assert the group-commit property (n commits, one fsync).
type countingFile struct {
	wal.File
	syncs int
}

func (c *countingFile) Sync() error {
	c.syncs++
	return c.File.Sync()
}

func (c *countingFile) Truncate(size int64) error {
	if t, ok := c.File.(interface{ Truncate(int64) error }); ok {
		return t.Truncate(size)
	}
	return errors.New("no truncate")
}

// batchWorkload is three independent translations that commute: each
// can land regardless of the others.
func batchWorkload(fx *fixtures.ABCXD) []*update.Translation {
	return []*update.Translation{
		update.NewTranslation(update.NewInsert(fx.ABTuple("a1", 5))),
		update.NewTranslation(update.NewInsert(fx.ABTuple("a3", 8))),
		update.NewTranslation(update.NewDelete(fx.CXDTuple("c2", "a2", 4))),
	}
}

// TestApplyBatchCommitsAndReplays: a batch of n translations lands with
// one durability barrier, and a reopened store replays all of them.
func TestApplyBatchCommitsAndReplays(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	var media *countingFile
	st, err := Create(dir, fx.PaperInstance(), Options{
		Sync: wal.SyncOnCommit,
		WrapWAL: func(f wal.File) wal.File {
			media = &countingFile{File: f}
			return media
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := st.ApplyBatch(batchWorkload(fx))
	for i, e := range errs {
		if e != nil {
			t.Fatalf("batch slot %d: %v", i, e)
		}
	}
	if media.syncs != 1 {
		t.Fatalf("batch of 3 commits cost %d syncs, want exactly 1", media.syncs)
	}
	want := render(st.DB())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep := st2.Report()
	if rep.Replayed != 3 || rep.Discarded != 0 || rep.TornAt != -1 {
		t.Fatalf("report = %s, want 3 clean replays", rep)
	}
	if render(st2.DB()) != want {
		t.Fatal("recovered state differs from the batched state")
	}
}

// TestApplyBatchIsolatesConflicts: one invalid translation in a batch
// gets its own error while the rest commit — per-translation atomicity
// inside a shared group commit.
func TestApplyBatchIsolatesConflicts(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{Sync: wal.SyncOnCommit})
	if err != nil {
		t.Fatal(err)
	}
	trs := []*update.Translation{
		update.NewTranslation(update.NewInsert(fx.ABTuple("a1", 5))),
		// Deleting a tuple that does not exist: validation failure.
		update.NewTranslation(update.NewDelete(fx.ABTuple("a3", 8))),
		update.NewTranslation(update.NewInsert(fx.ABTuple("a3", 8))),
	}
	errs := st.ApplyBatch(trs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid slots errored: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("invalid slot did not error")
	}
	want := render(st.DB())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Report().Replayed != 2 {
		t.Fatalf("replayed %d, want the 2 landed translations", st2.Report().Replayed)
	}
	if render(st2.DB()) != want {
		t.Fatal("recovered state differs")
	}
}

// TestApplyBatchWALFailureRollsBack: when the batch append fails
// cleanly, every in-memory apply is rolled back, all slots report
// ErrNotDurable, the store stays usable, and a retry lands.
func TestApplyBatchWALFailureRollsBack(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{
		Sync: wal.SyncOnCommit,
		WrapWAL: func(f wal.File) wal.File {
			return &faultinject.FlakyWriter{W: f, FailNth: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	before := render(st.DB())

	errs := st.ApplyBatch(batchWorkload(fx))
	for i, e := range errs {
		if !errors.Is(e, ErrNotDurable) {
			t.Fatalf("slot %d = %v, want ErrNotDurable chain", i, e)
		}
	}
	if render(st.DB()) != before {
		t.Fatal("failed batch left memory diverged from durable state")
	}
	if st.Err() != nil {
		t.Fatalf("clean rollback broke the store: %v", st.Err())
	}

	// The flaky media fails only its first write; the retry commits.
	errs = st.ApplyBatch(batchWorkload(fx))
	for i, e := range errs {
		if e != nil {
			t.Fatalf("retry slot %d: %v", i, e)
		}
	}
}

// TestApplyBatchCrashTearsUnacked: a crash mid-batch-write persists a
// frame prefix; recovery keeps the wholly-framed commits and discards
// the rest — never a partial translation.
func TestApplyBatchCrashTearsUnacked(t *testing.T) {
	fx := fixtures.NewABCXD()
	// First measure the full batch image to pick a mid-batch cut.
	probe := t.TempDir()
	var mem *countingFile
	st, err := Create(probe, fx.PaperInstance(), Options{
		Sync: wal.SyncNever,
		WrapWAL: func(f wal.File) wal.File {
			mem = &countingFile{File: f}
			return mem
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs := st.ApplyBatch(batchWorkload(fx)); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("probe batch failed: %v", errs)
	}
	st.Close()
	fi, err := os.Stat(filepath.Join(probe, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	probeBytes := fi.Size()

	// Crash at byte offsets across the whole batch image.
	for cut := int64(0); cut <= probeBytes; cut += 7 { // stride keeps the test fast
		dir := t.TempDir()
		st, err := Create(dir, fx.PaperInstance(), Options{
			Sync: wal.SyncNever,
			WrapWAL: func(f wal.File) wal.File {
				return &faultinject.CrashWriter{W: f, Limit: cut}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		st.ApplyBatch(batchWorkload(fx)) // errors expected at most cuts
		// No Close: the process "died". Recover from what hit the disk.
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		rep := st2.Report()
		if rep.Replayed > 3 {
			t.Fatalf("cut %d: replayed %d > batch size", cut, rep.Replayed)
		}
		if err := st2.DB().CheckAllInclusions(); err != nil {
			t.Fatalf("cut %d: recovered state invalid: %v", cut, err)
		}
		st2.Close()
	}
}
