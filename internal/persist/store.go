package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// Store file names inside the store directory.
const (
	SnapshotFile = "snapshot.json"
	WALFile      = "journal.wal"
)

// ErrNoStore marks an Open of a directory that holds no snapshot.
var ErrNoStore = errors.New("persist: no snapshot in store directory")

// ErrNotDurable marks a commit whose WAL append failed after the
// in-memory state was cleanly rolled back: the database is intact but
// the commit did not happen. Distinguishes I/O failure from optimistic
// validation failure for callers (the serving layer) that map the two
// to different responses.
var ErrNotDurable = errors.New("persist: commit not durable")

// Options tune a Store.
type Options struct {
	// Sync is the WAL sync policy (default wal.SyncOnCommit).
	Sync wal.SyncPolicy
	// WrapWAL, when set, wraps the WAL media before the log writes to
	// it. It exists for fault injection: tests wrap the file in a
	// faultinject.CrashWriter or FlakyWriter to simulate crashes and
	// transient I/O errors at exact byte offsets.
	WrapWAL func(wal.File) wal.File
}

// A RecoveryReport describes what Open found and repaired.
type RecoveryReport struct {
	// Replayed counts committed translations re-applied from the WAL.
	Replayed int
	// Skipped counts committed translations already folded into the
	// snapshot (seq <= SnapshotSeq) — the residue of a crash between a
	// checkpoint's snapshot rename and its WAL truncation.
	Skipped int
	// SnapshotSeq is the snapshot's applied-sequence watermark.
	SnapshotSeq uint64
	// Discarded counts translation records without a commit marker.
	Discarded int
	// TornAt is the byte offset of the torn WAL tail, or -1 if the log
	// was clean.
	TornAt int64
	// TornReason describes the damage when TornAt >= 0.
	TornReason string
	// TruncatedBytes is the number of bytes cut off the torn tail.
	TruncatedBytes int64
	// MaxSeq is the highest sequence number seen in the clean prefix.
	MaxSeq uint64
}

// String renders the report for logs.
func (r RecoveryReport) String() string {
	torn := "clean"
	if r.TornAt >= 0 {
		torn = fmt.Sprintf("torn at %d (%s), truncated %d bytes", r.TornAt, r.TornReason, r.TruncatedBytes)
	}
	skipped := ""
	if r.Skipped > 0 {
		skipped = fmt.Sprintf(", skipped %d at or below watermark %d", r.Skipped, r.SnapshotSeq)
	}
	return fmt.Sprintf("replayed %d, discarded %d%s, %s, max seq %d",
		r.Replayed, r.Discarded, skipped, torn, r.MaxSeq)
}

// A Store couples a database with durable state on disk: a JSON
// snapshot plus a write-ahead log of every translation committed since
// that snapshot. Store.Apply is the durable counterpart of
// storage.Database.Apply; Open recovers the database after a crash by
// loading the snapshot, truncating any torn WAL tail, and replaying the
// committed records.
type Store struct {
	mu   sync.Mutex
	dir  string
	db   *storage.Database
	log  *wal.Log
	opts Options
	seq  uint64
	// committed is the highest sequence number with a durable commit
	// (or prepare+decision) on media — unlike seq, which also counts
	// burned numbers (failed appends, uncommitted records found at
	// recovery). A follower resumes replication from committed: its
	// state reflects exactly the primary's prefix up to there.
	committed uint64
	// snapSeq is the snapshot file's applied-seq watermark: records at
	// or below it are folded into the snapshot and no longer on the
	// WAL. The replication source refuses stream resumption below it.
	snapSeq uint64
	// onCommit, when set, receives the translation records of every
	// durable commit, in commit order, immediately after their WAL
	// append succeeded (still under the store lock, so delivery order
	// is commit order). The serving layer feeds its replication hub
	// with it. The callback must be fast and must not call back into
	// the store.
	onCommit func(recs []wal.Record)
	report   RecoveryReport
	broken   error // non-nil once the store can no longer trust its state
	// recoveredKeys are the idempotency keys of every committed
	// translation found in the WAL at Open, in commit order. The
	// serving layer replays them into its dedup table at boot. The
	// window is bounded by the WAL: a checkpoint resets the log and
	// with it the recoverable keys — see docs/ROBUSTNESS.md.
	recoveredKeys []string
}

// RecoveredKeys returns the idempotency keys of the committed
// translations the WAL held at Open, in commit order (nil for a
// freshly created store).
func (s *Store) RecoveredKeys() []string { return s.recoveredKeys }

// Create initializes dir as a new store holding db's current state and
// an empty WAL. It fails if dir already contains a snapshot.
func Create(dir string, db *storage.Database, opts Options) (*Store, error) {
	return CreateAt(dir, db, 0, opts)
}

// CreateAt is Create starting at a nonzero applied-seq watermark: the
// follower bootstrap path, where db is a snapshot of the primary at
// seq and every later record arrives with a primary-assigned sequence
// number through ApplyAt. The snapshot written to disk is stamped with
// seq, so a restart recovers the watermark along with the state.
func CreateAt(dir string, db *storage.Database, seq uint64, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	snapPath := filepath.Join(dir, SnapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		return nil, fmt.Errorf("persist: store already exists at %s", dir)
	}
	s := &Store{dir: dir, db: db, opts: opts, seq: seq, committed: seq,
		report: RecoveryReport{TornAt: -1, SnapshotSeq: seq}}
	if err := s.writeSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open recovers the store in dir: load the snapshot, scan the WAL,
// truncate the torn tail if any, replay every committed translation in
// commit order, and verify all inclusion dependencies before serving.
// A translation record without a commit marker is discarded — by the
// commit protocol it never fully applied.
func Open(dir string, opts Options) (*Store, error) {
	snapPath := filepath.Join(dir, SnapshotFile)
	if _, err := os.Stat(snapPath); errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoStore, dir)
	}
	snap, err := ReadSnapshotFile(snapPath)
	if err != nil {
		return nil, fmt.Errorf("persist: loading snapshot: %w", err)
	}
	db, err := Restore(snap)
	if err != nil {
		return nil, fmt.Errorf("persist: loading snapshot: %w", err)
	}

	walPath := filepath.Join(dir, WALFile)
	res, err := wal.ScanFile(walPath)
	if err != nil {
		return nil, err
	}
	report := RecoveryReport{
		TornAt: res.TornAt, TornReason: res.Reason,
		MaxSeq: res.MaxSeq(), SnapshotSeq: snap.Seq,
	}
	if res.Torn() {
		st, err := os.Stat(walPath)
		if err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
		report.TruncatedBytes = st.Size() - res.TornAt
		if err := os.Truncate(walPath, res.TornAt); err != nil {
			return nil, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
		}
		obs.Inc("wal.recover.torn")
		obs.Add("wal.recover.truncated_bytes", report.TruncatedBytes)
	}

	committed, discarded := res.Committed()
	report.Discarded = discarded
	var keys []string
	maxCommitted := snap.Seq
	for _, rec := range committed {
		if rec.Seq > maxCommitted {
			maxCommitted = rec.Seq
		}
		if rec.Key != "" {
			// Keys of durably committed translations — replayed or
			// already folded into the snapshot — seed the serving
			// layer's idempotency table.
			keys = append(keys, rec.Key)
		}
		if rec.Seq <= snap.Seq {
			// Already folded into the snapshot by a checkpoint whose WAL
			// truncation the crash pre-empted; replaying would apply it
			// twice.
			report.Skipped++
			continue
		}
		tr, err := wal.DecodeTranslation(db.Schema(), rec)
		if err != nil {
			return nil, fmt.Errorf("persist: replay: %w (%w)", err, vuerr.ErrCorrupt)
		}
		if err := db.Apply(tr); err != nil {
			return nil, fmt.Errorf("persist: replaying seq %d: %w (%w)", rec.Seq, err, vuerr.ErrCorrupt)
		}
		report.Replayed++
	}
	if err := db.CheckAllInclusions(); err != nil {
		return nil, fmt.Errorf("persist: recovered state invalid: %w (%w)", err, vuerr.ErrCorrupt)
	}
	obs.Add("wal.recover.replayed", int64(report.Replayed))
	obs.Add("wal.recover.discarded", int64(report.Discarded))
	obs.Add("wal.recover.skipped", int64(report.Skipped))

	seq := report.MaxSeq
	if snap.Seq > seq {
		seq = snap.Seq
	}
	s := &Store{dir: dir, db: db, opts: opts, seq: seq, committed: maxCommitted,
		snapSeq: snap.Seq, report: report, recoveredKeys: keys}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) openLog() error {
	log, size, err := wal.OpenFile(filepath.Join(s.dir, WALFile), s.opts.Sync)
	if err != nil {
		return err
	}
	if s.opts.WrapWAL != nil {
		// Rebuild the log around the wrapped media; keep the *os.File
		// close semantics by closing through the original log.
		f, ferr := os.OpenFile(filepath.Join(s.dir, WALFile), os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return fmt.Errorf("persist: %w", ferr)
		}
		log.Close()
		s.log = wal.NewAt(s.opts.WrapWAL(f), s.opts.Sync, size)
		return nil
	}
	s.log = log
	return nil
}

// DB returns the store's live database.
func (s *Store) DB() *storage.Database { return s.db }

// Dir returns the store directory. The replication stream handler
// scans the WAL file inside it to serve commits a follower's watermark
// trails the in-memory backlog by.
func (s *Store) Dir() string { return s.dir }

// Seq returns the applied-sequence watermark, including burned
// numbers (failed appends, uncommitted records found at recovery).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// CommittedSeq returns the highest sequence number with a durable
// commit on media — the watermark a follower resumes replication
// from. Burned sequence numbers above it never had (and never will
// have) a committed record.
func (s *Store) CommittedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed
}

// SnapshotSeq returns the snapshot file's applied-seq watermark:
// records at or below it are folded away and can no longer be served
// from the WAL. The replication source answers stream requests below
// it with "snapshot required".
func (s *Store) SnapshotSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// SetOnCommit installs the durable-commit feed: fn receives the
// translation records (kind KindTranslation, with seq and idempotency
// key) of every commit, in commit order, immediately after the commit
// became durable. Delivery runs under the store lock — fn must be
// fast, must not block, and must not call back into the store. The
// serving layer points this at its replication hub. Pass nil to
// detach.
func (s *Store) SetOnCommit(fn func(recs []wal.Record)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onCommit = fn
}

// Report returns what recovery found (zero-valued with TornAt == -1
// for a freshly created store).
func (s *Store) Report() RecoveryReport { return s.report }

// Err returns the store's broken state, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// Apply durably applies tr: journal the translation, apply it in
// memory, journal the commit marker. The WAL order is the commit
// order. Failure modes:
//
//   - translation append fails → nothing applied, nothing committed;
//     the error is returned as-is (retryable when transient).
//   - in-memory apply fails → the journaled record stays uncommitted
//     and is discarded at the next recovery; the error is returned.
//   - commit append fails → the in-memory apply is rolled back by
//     applying the inverse translation, so memory again matches the
//     durable state. If that rollback fails too, the store (and its
//     database) can no longer be trusted: both report ErrCorrupt from
//     then on.
func (s *Store) Apply(tr *update.Translation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	// Sequence numbers are never reused: a failed append burns its seq,
	// so a retried translation can never pair a fresh commit marker with
	// a stale or damaged record from the failed attempt.
	s.seq++
	seq := s.seq
	rec := wal.EncodeTranslation(seq, tr)
	if err := s.log.Append(rec); err != nil {
		return err
	}
	if err := s.db.Apply(tr); err != nil {
		// The WAL now holds an uncommitted record for seq: recovery
		// discards it, so disk and memory still agree.
		return err
	}
	if err := s.log.Append(wal.CommitRecord(seq)); err != nil {
		if uerr := s.db.Apply(invert(tr)); uerr != nil {
			s.broken = fmt.Errorf("persist: store broken: commit append failed (%v), rollback failed: %w (%w)",
				err, uerr, vuerr.ErrCorrupt)
			obs.Inc("persist.store.broken")
			return s.broken
		}
		return fmt.Errorf("persist: commit not durable, rolled back: %w", err)
	}
	s.committed = seq
	if s.onCommit != nil {
		s.onCommit([]wal.Record{rec})
	}
	return nil
}

// ApplyAt durably applies tr under a caller-assigned sequence number —
// the follower's replay-from-watermark entry point. The record goes
// through the exact commit protocol of Apply (translation record,
// memory apply, commit marker) but with the primary's seq instead of a
// locally allocated one, so the follower's watermark stays aligned
// with the primary's even across the gaps burned sequence numbers
// leave. seq must exceed CommittedSeq; it may be at or below Seq when
// a crashed previous attempt left an uncommitted record for it (the
// re-appended record simply supersedes the orphan at recovery). key is
// journaled like ApplyBatchKeyed's, so RecoveredKeys covers replicated
// commits across a follower restart.
func (s *Store) ApplyAt(seq uint64, key string, tr *update.Translation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if seq <= s.committed {
		return fmt.Errorf("persist: ApplyAt seq %d at or below committed watermark %d", seq, s.committed)
	}
	prev := s.seq
	if seq > s.seq {
		s.seq = seq
	}
	rec := wal.EncodeTranslationKeyed(seq, key, tr)
	if err := s.log.Append(rec); err != nil {
		// Nothing of seq reached media (the log truncated back or
		// sealed); un-burn it so the follower can retry the same record
		// after reconnecting.
		s.seq = prev
		return err
	}
	if err := s.db.Apply(tr); err != nil {
		// A replicated record that fails validation means the follower
		// has diverged from the primary — fatal for the caller. The
		// journaled record stays uncommitted and is discarded at the
		// next recovery.
		return fmt.Errorf("persist: replicated seq %d does not apply: %w", seq, err)
	}
	if err := s.log.Append(wal.CommitRecord(seq)); err != nil {
		if uerr := s.db.Apply(invert(tr)); uerr != nil {
			s.broken = fmt.Errorf("persist: store broken: commit append failed (%v), rollback failed: %w (%w)",
				err, uerr, vuerr.ErrCorrupt)
			obs.Inc("persist.store.broken")
			return s.broken
		}
		return fmt.Errorf("persist: commit not durable, rolled back: %w", err)
	}
	s.committed = seq
	if s.onCommit != nil {
		s.onCommit([]wal.Record{rec})
	}
	return nil
}

// ApplyBatch durably applies the translations as one group commit,
// returning one error slot per translation (nil = committed). Each
// translation keeps its individual atomicity — one that fails
// validation (a conflict: removed tuple absent, key collision,
// inclusion violation) is skipped, its error recorded, and the rest of
// the batch proceeds — but every translation that does land shares a
// single WAL write and a single durability barrier via wal.AppendBatch.
//
// The batch protocol inverts the single-commit order (memory first,
// WAL second): each surviving translation is applied in memory, then
// all of their translation+commit frames are appended in one batch.
// That is safe because no caller is acknowledged until ApplyBatch
// returns: a crash after the memory applies but before the WAL append
// loses only unacknowledged commits, and a torn batch write leaves
// some frame prefix in which any translation record without its commit
// marker is discarded at recovery. If the batch append fails cleanly,
// the in-memory applies are rolled back in reverse order so memory
// again matches the durable state; if that rollback fails the store is
// broken (ErrCorrupt), exactly as in Apply.
func (s *Store) ApplyBatch(trs []*update.Translation) []error {
	errs, _ := s.ApplyBatchStats(trs)
	return errs
}

// ApplyStats reports where one group commit spent its time. Populated
// only while instrumentation is enabled (obs.Enabled()); the hot path
// never reads the clock otherwise.
type ApplyStats struct {
	// ApplyNS is the time spent applying the surviving translations in
	// memory.
	ApplyNS int64
	// WALNS is the time spent landing the batch in the WAL, including
	// the durability barrier.
	WALNS int64
	// FsyncNS is the barrier portion of WALNS.
	FsyncNS int64
	// Synced reports whether the batch ended with a durability barrier.
	Synced bool
}

// ApplyBatchStats is ApplyBatch returning a timing breakdown — memory
// apply, WAL write, fsync — that the serving layer threads into
// per-request pipeline traces. See ApplyBatch for the commit semantics.
func (s *Store) ApplyBatchStats(trs []*update.Translation) ([]error, ApplyStats) {
	return s.ApplyBatchKeyed(trs, nil)
}

// ApplyBatchKeyed is ApplyBatchStats stamping each translation's WAL
// record with its idempotency key (keys may be nil, or hold "" for
// unkeyed commits; when non-nil it must be parallel to trs). Keys of
// committed translations are recovered by Open and surfaced through
// RecoveredKeys.
func (s *Store) ApplyBatchKeyed(trs []*update.Translation, keys []string) ([]error, ApplyStats) {
	var stats ApplyStats
	s.mu.Lock()
	defer s.mu.Unlock()
	errs := make([]error, len(trs))
	if s.broken != nil {
		for i := range errs {
			errs[i] = s.broken
		}
		return errs, stats
	}
	type stagedCommit struct {
		idx int
		tr  *update.Translation
	}
	timed := obs.Enabled()
	var start time.Time
	if timed {
		start = time.Now()
	}
	var landed []stagedCommit
	var recs []wal.Record
	for i, tr := range trs {
		if err := s.db.Apply(tr); err != nil {
			errs[i] = err
			continue
		}
		// Seq discipline matches Apply: every staged translation burns a
		// sequence number, landed or not.
		s.seq++
		key := ""
		if i < len(keys) {
			key = keys[i]
		}
		recs = append(recs, EncodeBatchRecordsKeyed(s.seq, key, tr)...)
		landed = append(landed, stagedCommit{i, tr})
	}
	if timed {
		stats.ApplyNS = int64(time.Since(start))
		start = time.Now()
	}
	if len(landed) == 0 {
		return errs, stats
	}
	wstats, err := s.log.AppendBatchStats(recs)
	if timed {
		stats.WALNS = int64(time.Since(start))
		stats.FsyncNS = wstats.SyncNS
		stats.Synced = wstats.Synced
	}
	if err != nil {
		for j := len(landed) - 1; j >= 0; j-- {
			if uerr := s.db.Apply(invert(landed[j].tr)); uerr != nil {
				s.broken = fmt.Errorf("persist: store broken: batch append failed (%v), rollback failed: %w (%w)",
					err, uerr, vuerr.ErrCorrupt)
				obs.Inc("persist.store.broken")
				for _, st := range landed {
					errs[st.idx] = s.broken
				}
				return errs, stats
			}
		}
		for _, st := range landed {
			errs[st.idx] = fmt.Errorf("%w, rolled back: %w", ErrNotDurable, err)
		}
		return errs, stats
	}
	obs.Inc("persist.batch")
	obs.Add("persist.batch.commits", int64(len(landed)))
	obs.Observe("persist.batch.size", int64(len(landed)))
	// Every staged seq up to s.seq is now durably committed (skipped
	// translations never allocated one).
	s.committed = s.seq
	if s.onCommit != nil {
		// recs holds [translation, commit] pairs; the feed carries the
		// translation records only.
		trRecs := make([]wal.Record, 0, len(landed))
		for i := 0; i < len(recs); i += 2 {
			trRecs = append(trRecs, recs[i])
		}
		s.onCommit(trRecs)
	}
	return errs, stats
}

// EncodeBatchRecords builds the WAL frames of one committed
// translation inside a batch: its translation record immediately
// followed by its commit marker.
func EncodeBatchRecords(seq uint64, tr *update.Translation) []wal.Record {
	return EncodeBatchRecordsKeyed(seq, "", tr)
}

// EncodeBatchRecordsKeyed is EncodeBatchRecords stamping the
// translation record with an idempotency key (empty means none).
func EncodeBatchRecordsKeyed(seq uint64, key string, tr *update.Translation) []wal.Record {
	return []wal.Record{wal.EncodeTranslationKeyed(seq, key, tr), wal.CommitRecord(seq)}
}

// invert returns the translation that undoes tr.
func invert(tr *update.Translation) *update.Translation {
	inv := update.NewTranslation()
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Insert:
			inv.Add(update.NewDelete(o.Tuple))
		case update.Delete:
			inv.Add(update.NewInsert(o.Tuple))
		case update.Replace:
			inv.Add(update.NewReplace(o.New, o.Old))
		}
	}
	return inv
}

// Checkpoint folds the WAL into a fresh snapshot: write the current
// state as the snapshot (atomically, via rename) and reset the log.
// Call it after schema changes — DDL is snapshot-persisted, not
// WAL-journaled — or to bound recovery time.
//
// The snapshot records the applied-sequence watermark, so a crash
// anywhere inside Checkpoint is safe: before the rename the old
// snapshot+WAL pair still recovers, and between the rename and the WAL
// truncation the new snapshot's watermark makes recovery skip the WAL
// records it already contains.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	// The snapshot now covers everything in the log; start a new one.
	if err := s.log.Close(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(s.dir, WALFile), 0); err != nil {
		return fmt.Errorf("persist: resetting WAL: %w", err)
	}
	obs.Inc("persist.checkpoint")
	return s.openLog()
}

// writeSnapshot atomically replaces the snapshot file with db's state,
// stamped with the applied-sequence watermark. The temp file is fsynced
// before the rename and the directory after it, so the swap survives
// power loss.
func (s *Store) writeSnapshot() error {
	snap, err := Capture(s.db)
	if err != nil {
		return err
	}
	snap.Seq = s.seq
	tmp := filepath.Join(s.dir, SnapshotFile+".tmp")
	if err := WriteSnapshotFile(tmp, snap); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, SnapshotFile)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.snapSeq = s.seq
	return nil
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing %s: %w", dir, err)
	}
	return nil
}

// Close syncs and closes the WAL. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}
