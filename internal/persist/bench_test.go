package persist

import (
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// benchOps returns an insert/delete pair so repeated application keeps
// the state bounded.
func benchOps(fx *fixtures.ABCXD) (*update.Translation, *update.Translation) {
	t := fx.ABTuple("a3", 9)
	return update.NewTranslation(update.NewInsert(t)), update.NewTranslation(update.NewDelete(t))
}

// BenchmarkApplyMemory is the baseline: the same workload against the
// plain in-memory database, no WAL in the path.
func BenchmarkApplyMemory(b *testing.B) {
	fx := fixtures.NewABCXD()
	db := fx.PaperInstance()
	ins, del := benchOps(fx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Apply(ins); err != nil {
			b.Fatal(err)
		}
		if err := db.Apply(del); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyDurable measures the full durable path: WAL translation
// record + memory apply + commit marker per translation (sync left to
// the OS, isolating the journaling cost from fsync latency).
func BenchmarkApplyDurable(b *testing.B) {
	fx := fixtures.NewABCXD()
	st, err := Create(b.TempDir(), fx.PaperInstance(), Options{Sync: wal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ins, del := benchOps(fx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Apply(ins); err != nil {
			b.Fatal(err)
		}
		if err := st.Apply(del); err != nil {
			b.Fatal(err)
		}
	}
}
