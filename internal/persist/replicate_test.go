package persist

import (
	"path/filepath"
	"strings"
	"testing"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// followerWorkload returns primary-assigned (seq, key, translation)
// triples with gaps in the sequence numbers, as a real stream has after
// the primary burned some.
type replicatedCommit struct {
	seq uint64
	key string
	tr  *update.Translation
}

func followerWorkload(fx *fixtures.ABCXD) []replicatedCommit {
	return []replicatedCommit{
		{12, "k-12", update.NewTranslation(
			update.NewInsert(fx.ABTuple("a1", 5)),
			update.NewInsert(fx.CXDTuple("c3", "a1", 7)))},
		{13, "", update.NewTranslation(update.NewDelete(fx.CXDTuple("c2", "a2", 4)))},
		{17, "k-17", update.NewTranslation(
			update.NewReplace(fx.CXDTuple("c1", "a", 3), fx.CXDTuple("c1", "a1", 9)))},
		{20, "k-20", update.NewTranslation(update.NewInsert(fx.ABTuple("a3", 8)))},
	}
}

// referenceState applies the same commits to a fresh in-memory copy and
// renders it — the oracle a follower must match.
func referenceState(t *testing.T, fx *fixtures.ABCXD, commits []replicatedCommit) string {
	t.Helper()
	db := fx.PaperInstance()
	for _, c := range commits {
		if err := db.Apply(c.tr); err != nil {
			t.Fatalf("reference seq %d: %v", c.seq, err)
		}
	}
	return render(db)
}

// TestCreateAtApplyAtReopen is the follower lifecycle: bootstrap at a
// nonzero watermark, replay primary-sequenced commits with gaps, and
// recover every watermark plus the idempotency keys after a restart.
func TestCreateAtApplyAtReopen(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := CreateAt(dir, fx.PaperInstance(), 10, Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq() != 10 || st.CommittedSeq() != 10 || st.SnapshotSeq() != 10 {
		t.Fatalf("fresh watermarks: seq=%d committed=%d snap=%d, want 10/10/10",
			st.Seq(), st.CommittedSeq(), st.SnapshotSeq())
	}
	commits := followerWorkload(fx)
	for _, c := range commits {
		if err := st.ApplyAt(c.seq, c.key, c.tr); err != nil {
			t.Fatalf("ApplyAt %d: %v", c.seq, err)
		}
		if st.CommittedSeq() != c.seq {
			t.Fatalf("after seq %d: committed=%d", c.seq, st.CommittedSeq())
		}
	}
	want := referenceState(t, fx, commits)
	if render(st.DB()) != want {
		t.Fatal("follower state diverged from reference")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if render(re.DB()) != want {
		t.Fatal("recovered follower state diverged from reference")
	}
	if re.CommittedSeq() != 20 || re.Seq() != 20 || re.SnapshotSeq() != 10 {
		t.Fatalf("recovered watermarks: seq=%d committed=%d snap=%d, want 20/20/10",
			re.Seq(), re.CommittedSeq(), re.SnapshotSeq())
	}
	keys := re.RecoveredKeys()
	if strings.Join(keys, ",") != "k-12,k-17,k-20" {
		t.Fatalf("recovered keys = %v", keys)
	}
}

func TestApplyAtRejectsCommittedSeq(t *testing.T) {
	fx := fixtures.NewABCXD()
	st, err := CreateAt(t.TempDir(), fx.PaperInstance(), 10, Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tr := update.NewTranslation(update.NewInsert(fx.ABTuple("a1", 5)))
	if err := st.ApplyAt(10, "", tr); err == nil {
		t.Fatal("ApplyAt at the watermark must be rejected")
	}
	if err := st.ApplyAt(11, "", tr); err != nil {
		t.Fatal(err)
	}
	dup := update.NewTranslation(update.NewInsert(fx.ABTuple("a3", 8)))
	if err := st.ApplyAt(11, "", dup); err == nil {
		t.Fatal("replaying a committed seq must be rejected")
	}
}

// TestApplyAtRetryAfterFailedAppend: a failed translation append must
// not burn the primary's seq — the follower retries the same record
// after reconnecting and it must land.
func TestApplyAtRetryAfterFailedAppend(t *testing.T) {
	fx := fixtures.NewABCXD()
	st, err := CreateAt(t.TempDir(), fx.PaperInstance(), 10, Options{
		Sync: wal.SyncNever,
		WrapWAL: func(f wal.File) wal.File {
			return &faultinject.FlakyWriter{W: f, FailNth: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tr := update.NewTranslation(update.NewInsert(fx.ABTuple("a1", 5)))
	if err := st.ApplyAt(12, "k", tr); err == nil {
		t.Fatal("want the injected append failure")
	}
	if st.Seq() != 10 || st.CommittedSeq() != 10 {
		t.Fatalf("failed append must not move watermarks: seq=%d committed=%d", st.Seq(), st.CommittedSeq())
	}
	if err := st.ApplyAt(12, "k", tr); err != nil {
		t.Fatalf("retry of the same seq: %v", err)
	}
	if st.CommittedSeq() != 12 {
		t.Fatalf("committed=%d after retry", st.CommittedSeq())
	}
}

// TestApplyAtCrashResidueRetry: the follower crashes between a commit's
// translation record and its commit marker, restarts, and replays the
// same primary seq. The orphaned record must be discarded at recovery
// and the retry — at a seq at or below Seq() but above CommittedSeq()
// — must land exactly once.
func TestApplyAtCrashResidueRetry(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	commit := followerWorkload(fx)[0]
	frame, err := wal.Frame(wal.EncodeTranslationKeyed(commit.seq, commit.key, commit.tr))
	if err != nil {
		t.Fatal(err)
	}
	st, err := CreateAt(dir, fx.PaperInstance(), 10, Options{
		Sync: wal.SyncNever,
		WrapWAL: func(f wal.File) wal.File {
			// Let exactly the translation record through, then cut power.
			return &faultinject.CrashWriter{W: f, Limit: int64(len(frame))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyAt(commit.seq, commit.key, commit.tr); err == nil {
		t.Fatal("want the injected crash on the commit marker")
	}
	// Crash: reopen from disk without closing.
	re, err := Open(dir, Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rep := re.Report()
	if rep.Discarded != 1 || rep.Replayed != 0 {
		t.Fatalf("report = %s, want the orphan discarded", rep)
	}
	if re.CommittedSeq() != 10 || re.Seq() != commit.seq {
		t.Fatalf("recovered watermarks: seq=%d committed=%d", re.Seq(), re.CommittedSeq())
	}
	if len(re.RecoveredKeys()) != 0 {
		t.Fatalf("uncommitted key must not be recovered: %v", re.RecoveredKeys())
	}
	// The retry reuses a seq the store has seen (residue) but never
	// committed. Rebuild the translation against the recovered schema,
	// exactly as a follower decodes streamed records.
	retry, err := wal.DecodeTranslation(re.DB().Schema(),
		wal.EncodeTranslationKeyed(commit.seq, commit.key, commit.tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := re.ApplyAt(commit.seq, commit.key, retry); err != nil {
		t.Fatalf("retry after crash: %v", err)
	}
	want := referenceState(t, fx, []replicatedCommit{commit})
	if render(re.DB()) != want {
		t.Fatal("retried commit applied wrong")
	}

	// And the state survives another recovery without double-applying
	// the duplicate translation records.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if render(again.DB()) != want {
		t.Fatal("state after second recovery diverged")
	}
	if again.CommittedSeq() != commit.seq {
		t.Fatalf("committed=%d after second recovery", again.CommittedSeq())
	}
}

// TestOnCommitFeed checks the replication feed: every durable commit's
// translation record, in commit order, across all three apply paths.
func TestOnCommitFeed(t *testing.T) {
	fx := fixtures.NewABCXD()
	st, err := Create(t.TempDir(), fx.PaperInstance(), Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var feed []wal.Record
	st.SetOnCommit(func(recs []wal.Record) { feed = append(feed, recs...) })

	if err := st.Apply(update.NewTranslation(update.NewInsert(fx.ABTuple("a1", 5)))); err != nil {
		t.Fatal(err)
	}
	trs := []*update.Translation{
		update.NewTranslation(update.NewDelete(fx.CXDTuple("c2", "a2", 4))),
		// Conflicts (already deleted): skipped, must not reach the feed.
		update.NewTranslation(update.NewDelete(fx.CXDTuple("c2", "a2", 4))),
		update.NewTranslation(update.NewInsert(fx.ABTuple("a3", 8))),
	}
	errs, _ := st.ApplyBatchKeyed(trs, []string{"b-1", "", "b-3"})
	if errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("batch errs = %v", errs)
	}
	if err := st.ApplyAt(9, "r-9", update.NewTranslation(update.NewInsert(fx.CXDTuple("c3", "a1", 7)))); err != nil {
		t.Fatal(err)
	}

	if len(feed) != 4 {
		t.Fatalf("feed has %d records, want 4", len(feed))
	}
	var prev uint64
	for i, rec := range feed {
		if rec.Kind != wal.KindTranslation {
			t.Fatalf("feed[%d] kind = %d", i, rec.Kind)
		}
		if rec.Seq <= prev {
			t.Fatalf("feed out of order at %d: %d after %d", i, rec.Seq, prev)
		}
		prev = rec.Seq
	}
	if feed[1].Key != "b-1" || feed[2].Key != "b-3" || feed[3].Key != "r-9" {
		t.Fatalf("feed keys = %q %q %q", feed[1].Key, feed[2].Key, feed[3].Key)
	}
	if st.CommittedSeq() != 9 {
		t.Fatalf("committed=%d", st.CommittedSeq())
	}
}

// TestSnapshotSeqAdvances: a checkpoint folds the WAL into the snapshot
// and must advance the stream-resumption floor with it.
func TestSnapshotSeqAdvances(t *testing.T) {
	fx := fixtures.NewABCXD()
	dir := t.TempDir()
	st, err := Create(dir, fx.PaperInstance(), Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Apply(update.NewTranslation(update.NewInsert(fx.ABTuple("a1", 5)))); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotSeq() != 0 {
		t.Fatalf("snapSeq=%d before checkpoint", st.SnapshotSeq())
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotSeq() != st.Seq() {
		t.Fatalf("snapSeq=%d after checkpoint, want %d", st.SnapshotSeq(), st.Seq())
	}
	if _, err := wal.ScanFile(filepath.Join(dir, WALFile)); err != nil {
		t.Fatal(err)
	}
}
