package persist

import (
	"bytes"
	"testing"

	"viewupdate/internal/fixtures"
)

// FuzzLoad hardens the snapshot loader against arbitrary bytes: it must
// never panic, and any input it accepts must restore to a database that
// round-trips — saving and reloading the restored database reproduces
// exactly the same contents and schema rendering.
func FuzzLoad(f *testing.F) {
	var seed bytes.Buffer
	if err := Save(&seed, fixtures.NewEmp(20).PaperInstance()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	seed.Reset()
	if err := Save(&seed, fixtures.NewABCXD().PaperInstance()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"format":1,"domains":[],"relations":[],"tuples":{}}`))
	f.Add([]byte(`{"format":1,"domains":[{"name":"D","values":["i1"]}],` +
		`"relations":[{"name":"R","attrs":[{"name":"A","domain":"D"}],"key":["A"]}],` +
		`"tuples":{"R":[["i1"]]}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		var buf bytes.Buffer
		if err := Save(&buf, db); err != nil {
			t.Fatalf("accepted snapshot does not re-save: %v", err)
		}
		again, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-saved snapshot does not load: %v", err)
		}
		if render(again) != render(db) {
			t.Fatalf("round trip changed contents:\n%s\nvs\n%s", render(again), render(db))
		}
	})
}
