package persist

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// render canonicalizes a database's contents across schema instances.
func render(db *storage.Database) string {
	var b strings.Builder
	for _, rn := range db.Schema().RelationNames() {
		for _, t := range db.Tuples(rn) {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestRoundTripEmp(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if render(back) != render(db) {
		t.Fatalf("round trip differs:\n%s\nvs\n%s", render(back), render(db))
	}
	// Schema survived: the key is intact and enforced.
	rel := back.Schema().Relation("EMP")
	if rel == nil || rel.Key()[0] != "EmpNo" {
		t.Fatal("schema lost")
	}
	dupe, err := tuple.New(rel,
		value.NewInt(17), value.NewString("Alice"), value.NewString("New York"), value.NewBool(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Load("EMP", dupe); err == nil {
		t.Fatal("restored db should enforce the key dependency")
	}
}

func TestRoundTripJoinSchema(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if render(back) != render(db) {
		t.Fatal("round trip differs")
	}
	// Inclusion dependencies survived and are enforced.
	if got := back.Schema().Inclusions(); len(got) != 1 || got[0].Parent != "AB" {
		t.Fatalf("inclusions lost: %v", got)
	}
	if err := back.CheckAllInclusions(); err != nil {
		t.Fatal(err)
	}
	// A dangling child insert into the restored instance still fails.
	cxd := back.Schema().Relation("CXD")
	dangling, err := tuple.New(cxd,
		value.NewString("c3"), value.NewString("a3"), value.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Load("CXD", dangling); err == nil {
		t.Fatal("restored db should enforce inclusions")
	}
}

func TestSaveLoadFile(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if render(back) != render(db) {
		t.Fatal("file round trip differs")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	var a, b bytes.Buffer
	if err := Save(&a, db); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, db); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("snapshots should be byte-identical")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		``,
		`{"format": 9}`,
		`{"format": 1, "domains": [{"name":"D","values":["zz"]}], "relations": [], "tuples": {}}`,
		`{"format": 1, "domains": [], "relations": [{"name":"R","attrs":[{"name":"A","domain":"missing"}],"key":["A"]}], "tuples": {}}`,
		`{"format": 1, "domains": [], "relations": [], "tuples": {"ghost": [["i1"]]}}`,
	}
	for i, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Arity mismatch in a row.
	bad := `{"format":1,
		"domains":[{"name":"D","values":["i1","i2"]}],
		"relations":[{"name":"R","attrs":[{"name":"A","domain":"D"},{"name":"B","domain":"D"}],"key":["A"]}],
		"tuples":{"R":[["i1"]]}}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Key-conflicting rows fail at LoadAll.
	conflict := `{"format":1,
		"domains":[{"name":"D","values":["i1","i2"]}],
		"relations":[{"name":"R","attrs":[{"name":"A","domain":"D"},{"name":"B","domain":"D"}],"key":["A"]}],
		"tuples":{"R":[["i1","i1"],["i1","i2"]]}}`
	if _, err := Load(strings.NewReader(conflict)); err == nil {
		t.Error("key conflict should fail")
	}
}
