package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"viewupdate/internal/persist"
)

// ErrSnapshotRequired marks a stream resumption the source refused
// because the requested watermark predates its snapshot: the WAL
// records below it were folded away by a checkpoint. The follower must
// re-bootstrap from a fresh snapshot.
var ErrSnapshotRequired = errors.New("replica: watermark below source snapshot, bootstrap required")

// A Client speaks the replication endpoints of one source server
// (primary or upstream follower — the protocol cascades).
type Client struct {
	// Base is the source's base URL, e.g. "http://primary:8080".
	Base string
	// HC is the HTTP client (http.DefaultClient when nil). Streams are
	// long-lived: the client must not impose an overall timeout.
	HC *http.Client
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// FetchSnapshot downloads the source's current snapshot: its full
// state stamped with the applied-seq watermark the stream resumes
// from.
func (c *Client) FetchSnapshot(ctx context.Context) (*persist.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/wal/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("replica: snapshot: %s: %s", resp.Status, body)
	}
	var snap persist.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("replica: decoding snapshot: %w", err)
	}
	return &snap, nil
}

// Stream opens the WAL stream resuming after seq `from`. The returned
// body yields CRC-framed records (decode with wal.NewStreamReader)
// until the connection drops or the source sheds the tail. A 410
// answer surfaces as ErrSnapshotRequired.
func (c *Client) Stream(ctx context.Context, from uint64) (io.ReadCloser, error) {
	url := fmt.Sprintf("%s/wal/stream?from=%d", c.Base, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: opening stream: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp.Body, nil
	case http.StatusGone:
		resp.Body.Close()
		return nil, ErrSnapshotRequired
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("replica: stream: %s: %s", resp.Status, body)
	}
}
