// Package replica implements WAL-streaming read replication: the
// primary side (Hub — an in-memory backlog of framed commit records
// fanned out to attached stream tails) and the follower side (Client —
// snapshot bootstrap + stream resumption; Follower — replay into a
// local database with a durable applied-seq watermark). The protocol
// and its staleness model are documented in docs/REPLICATION.md.
//
// The stream carries exactly two record kinds: KindTranslation (one
// per durable commit, in commit order, stamped with the primary's
// wall clock) and KindHeartbeat (watermark + clock while idle). Commit
// markers never travel — a record is streamed only after its commit is
// durable, so presence implies commitment.
package replica

import (
	"sync"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/wal"
)

// Hub defaults.
const (
	// DefaultBacklogBytes bounds the in-memory frame backlog. A follower
	// whose watermark has fallen off the backlog re-reads the gap from
	// the source's WAL (or, past a checkpoint, re-bootstraps).
	DefaultBacklogBytes = 4 << 20
	// tailBuffer is each attached stream's channel capacity. A tail that
	// stays full — a consumer slower than the commit rate for this many
	// frames — is closed, forcing the follower to reconnect and resume.
	tailBuffer = 1024
)

// A Tail is one attached stream consumer. Frames arrive on C in commit
// order; the channel is closed when the consumer falls too far behind
// or the hub shuts down, which a stream handler turns into a clean
// end-of-stream (the follower reconnects from its watermark).
type Tail struct {
	C chan []byte
}

// A Hub retains recently published commit frames and fans them out to
// attached tails. Publishing is single-producer in practice (the
// commit path is serialized) but the hub locks anyway; attaching is
// atomic with respect to publishing, so a consumer that replays the
// returned backlog and then drains its tail sees every frame exactly
// once.
type Hub struct {
	mu             sync.Mutex
	frames         []hubFrame
	bytes          int64
	maxBytes       int64
	evictedThrough uint64 // frames at or below this seq may be gone
	lastSeq        uint64
	tails          map[*Tail]struct{}
	closed         bool
}

type hubFrame struct {
	seq  uint64
	data []byte
}

// NewHub builds a hub retaining about maxBytes of frame backlog
// (DefaultBacklogBytes when maxBytes <= 0).
func NewHub(maxBytes int64) *Hub {
	if maxBytes <= 0 {
		maxBytes = DefaultBacklogBytes
	}
	return &Hub{maxBytes: maxBytes, tails: map[*Tail]struct{}{}}
}

// Publish frames one durable commit's translation record and delivers
// it: appended to the backlog, sent to every tail. rec.TS is stamped
// with the current wall clock — the timestamp followers turn lag-in-
// seqs into lag-in-time with. Records must arrive in commit order;
// out-of-order seqs are dropped (counted as replica.hub.outoforder).
func (h *Hub) Publish(rec wal.Record) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if rec.Seq <= h.lastSeq {
		obs.Inc("replica.hub.outoforder")
		return
	}
	rec.TS = time.Now().UnixNano()
	data, err := wal.Frame(rec)
	if err != nil {
		// A record that does not encode cannot have landed in the WAL;
		// treat as unreachable but never panic the commit path.
		obs.Inc("replica.hub.encode_error")
		return
	}
	h.lastSeq = rec.Seq
	h.frames = append(h.frames, hubFrame{seq: rec.Seq, data: data})
	h.bytes += int64(len(data))
	for h.bytes > h.maxBytes && len(h.frames) > 1 {
		h.evictedThrough = h.frames[0].seq
		h.bytes -= int64(len(h.frames[0].data))
		h.frames[0].data = nil
		h.frames = h.frames[1:]
	}
	for t := range h.tails {
		select {
		case t.C <- data:
		default:
			// Slow stream consumer: shed it. The follower reconnects and
			// resumes from its watermark.
			obs.Inc("replica.hub.tail_overrun")
			close(t.C)
			delete(h.tails, t)
		}
	}
}

// Heartbeat sends a stream-only heartbeat (current durable watermark +
// wall clock) to every tail. Heartbeats never enter the backlog.
func (h *Hub) Heartbeat(seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.tails) == 0 {
		return
	}
	data, err := wal.Frame(wal.HeartbeatRecord(seq, time.Now().UnixNano()))
	if err != nil {
		return
	}
	for t := range h.tails {
		select {
		case t.C <- data:
		default: // a heartbeat is never worth shedding a tail over
		}
	}
}

// SeedWatermark initializes the hub's position at boot: commits at or
// below seq predate the hub (they were recovered from the WAL, never
// published through it), so an Attach below that point must report
// uncovered and let the stream handler serve the gap from the WAL.
// Call once, before any Publish.
func (h *Hub) SeedWatermark(seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if seq > h.evictedThrough {
		h.evictedThrough = seq
	}
	if seq > h.lastSeq {
		h.lastSeq = seq
	}
}

// Attach registers a new tail resuming after seq `from`. It returns the
// backlog frames with seq > from and whether the backlog actually
// covers that point (covered == false means frames between from and
// the backlog's start were evicted — the caller must serve the gap
// from the WAL and attach again). Backlog copy and tail registration
// are atomic, so no frame is lost between them.
func (h *Hub) Attach(from uint64) (backlog [][]byte, t *Tail, covered bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t = &Tail{C: make(chan []byte, tailBuffer)}
	if h.closed {
		close(t.C)
		return nil, t, true
	}
	if from < h.evictedThrough {
		return nil, nil, false
	}
	for _, f := range h.frames {
		if f.seq > from {
			backlog = append(backlog, f.data)
		}
	}
	h.tails[t] = struct{}{}
	return backlog, t, true
}

// Detach removes a tail (idempotent; safe on a tail the hub already
// shed).
func (h *Hub) Detach(t *Tail) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.tails[t]; ok {
		delete(h.tails, t)
		close(t.C)
	}
}

// Tails reports the number of attached stream consumers.
func (h *Hub) Tails() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.tails)
}

// LastSeq reports the highest published seq.
func (h *Hub) LastSeq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastSeq
}

// ShedTails closes every attached tail without closing the hub — the
// server's drain path. Consumers see a clean end-of-stream and
// reconnect (or give up, when the server is going away).
func (h *Hub) ShedTails() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for t := range h.tails {
		close(t.C)
		delete(h.tails, t)
	}
}

// Close sheds every tail and rejects further publishes.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for t := range h.tails {
		close(t.C)
		delete(h.tails, t)
	}
}
