package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// Config describes a follower.
type Config struct {
	// Primary is the source's base URL (primary, or an upstream follower
	// — the protocol cascades, since a follower's own store feeds its
	// hub exactly like a primary's).
	Primary string
	// Dir, when non-empty, makes the follower durable: its replayed
	// state lives in a persist.Store there, and a restart resumes from
	// the recovered watermark instead of re-bootstrapping. Empty means
	// memory-only (bootstrap from a fresh snapshot at every start).
	Dir string
	// Sync is the WAL sync policy of a durable follower.
	Sync wal.SyncPolicy
	// HTTP overrides the HTTP client (must not impose an overall request
	// timeout — streams are long-lived).
	HTTP *http.Client
	// Logger receives reconnect/bootstrap events (discarded when nil).
	Logger *slog.Logger
	// ReconnectMin/ReconnectMax bound the reconnect backoff (defaults
	// 100ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
}

// A Commit is one replayed primary commit: the primary-assigned
// sequence number, the idempotency key, the primary's commit wall
// clock (unix ns, zero when the record was served from the source's
// WAL rather than live), and the decoded translation.
type Commit struct {
	Seq uint64
	Key string
	TS  int64
	Tr  *update.Translation
}

// A Follower replays a source's WAL stream into a local database. The
// serving layer drives it: Open bootstraps or recovers the state, Run
// streams and hands each decoded commit to a deliver callback, and the
// callback — under whatever locking the serving layer needs — calls
// Apply to land it.
type Follower struct {
	cfg       Config
	client    *Client
	log       *slog.Logger
	db        *storage.Database
	store     *persist.Store // nil for a memory-only follower
	applied   atomic.Uint64  // highest locally committed source seq
	sourceSeq atomic.Uint64  // highest seq the source has reported
	streaming atomic.Bool    // a stream connection is currently open
	recovered []string
}

// Open prepares the follower's local state. A durable follower with an
// existing store recovers it (no network needed); otherwise the source
// is contacted for a bootstrap snapshot, which for a durable follower
// seeds a store via persist.CreateAt so the watermark survives
// restarts.
func Open(ctx context.Context, cfg Config) (*Follower, error) {
	f := &Follower{cfg: cfg, client: &Client{Base: cfg.Primary, HC: cfg.HTTP}, log: cfg.Logger}
	if f.log == nil {
		f.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.ReconnectMin <= 0 {
		f.cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		f.cfg.ReconnectMax = 5 * time.Second
	}
	opts := persist.Options{Sync: cfg.Sync}
	if cfg.Dir != "" {
		st, err := persist.Open(cfg.Dir, opts)
		if err == nil {
			f.store, f.db = st, st.DB()
			f.applied.Store(st.CommittedSeq())
			f.recovered = st.RecoveredKeys()
			f.log.Info("follower recovered", "dir", cfg.Dir,
				"applied_seq", st.CommittedSeq(), "report", st.Report().String())
			return f, nil
		}
		if !errors.Is(err, persist.ErrNoStore) {
			return nil, err
		}
	}
	snap, err := f.client.FetchSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	db, err := persist.Restore(snap)
	if err != nil {
		return nil, fmt.Errorf("replica: restoring bootstrap snapshot: %w", err)
	}
	f.db = db
	if cfg.Dir != "" {
		st, err := persist.CreateAt(cfg.Dir, db, snap.Seq, opts)
		if err != nil {
			return nil, err
		}
		f.store = st
	}
	f.applied.Store(snap.Seq)
	f.sourceSeq.Store(snap.Seq)
	f.log.Info("follower bootstrapped", "source", cfg.Primary, "snapshot_seq", snap.Seq)
	obs.Inc("replica.bootstrap")
	return f, nil
}

// DB returns the follower's live database.
func (f *Follower) DB() *storage.Database { return f.db }

// Store returns the durable store (nil for a memory-only follower).
func (f *Follower) Store() *persist.Store { return f.store }

// RecoveredKeys returns the idempotency keys a durable follower's WAL
// held at Open, in commit order (nil after a bootstrap).
func (f *Follower) RecoveredKeys() []string { return f.recovered }

// AppliedSeq is the follower's committed watermark: every source
// commit at or below it is locally applied (and durable, when the
// follower is).
func (f *Follower) AppliedSeq() uint64 { return f.applied.Load() }

// SourceSeq is the highest commit seq the source has reported —
// through streamed commits or heartbeats. SourceSeq - AppliedSeq is
// the replication lag in commits.
func (f *Follower) SourceSeq() uint64 { return f.sourceSeq.Load() }

// Streaming reports whether a stream connection to the source is
// currently open (readiness: a follower that lost its source serves
// increasingly stale reads).
func (f *Follower) Streaming() bool { return f.streaming.Load() }

// Apply lands one replayed commit: durably via the store's
// replay-from-watermark path, or in memory for a snapshot-only
// follower. The caller (the deliver callback) provides any locking the
// serving layer needs around it.
func (f *Follower) Apply(c Commit) error {
	if f.store != nil {
		if err := f.store.ApplyAt(c.Seq, c.Key, c.Tr); err != nil {
			return err
		}
	} else {
		if err := f.db.Apply(c.Tr); err != nil {
			return fmt.Errorf("replica: replicated seq %d does not apply: %w", c.Seq, err)
		}
	}
	f.applied.Store(c.Seq)
	return nil
}

// Close releases the durable store, if any.
func (f *Follower) Close() error {
	if f.store != nil {
		return f.store.Close()
	}
	return nil
}

// Run streams from the source until ctx is canceled, delivering each
// decoded commit (in commit order, exactly once) to deliver, which
// must call Apply. Connection loss, clean stream ends and corrupt
// frames reconnect with backoff and resume from the applied watermark;
// a decode or deliver failure is fatal (the follower has diverged —
// e.g. the primary ran DDL — and must be re-bootstrapped), as is a
// source that demands a fresh bootstrap (ErrSnapshotRequired).
func (f *Follower) Run(ctx context.Context, deliver func(Commit) error) error {
	backoff := f.cfg.ReconnectMin
	for {
		if ctx.Err() != nil {
			return nil
		}
		body, err := f.client.Stream(ctx, f.applied.Load())
		if err != nil {
			if errors.Is(err, ErrSnapshotRequired) {
				return err
			}
			if ctx.Err() != nil {
				return nil
			}
			obs.Inc("replica.reconnects")
			f.log.Warn("follower stream connect failed", "err", err, "backoff", backoff)
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(backoff):
			}
			backoff = min(backoff*2, f.cfg.ReconnectMax)
			continue
		}
		backoff = f.cfg.ReconnectMin
		f.streaming.Store(true)
		err = f.consume(ctx, body, deliver)
		f.streaming.Store(false)
		body.Close()
		if err != nil {
			return err
		}
	}
}

// consume drains one stream connection. A nil return means the
// connection ended in a resumable way (reconnect); an error is fatal.
func (f *Follower) consume(ctx context.Context, body io.Reader, deliver func(Commit) error) error {
	sr := wal.NewStreamReader(body)
	for {
		rec, err := sr.Next()
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			return nil // source closed cleanly (drain or tail shed)
		case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, wal.ErrStreamCorrupt):
			obs.Inc("replica.reconnects")
			f.log.Warn("follower stream interrupted", "err", err)
			return nil
		default:
			if ctx.Err() != nil {
				return nil
			}
			obs.Inc("replica.reconnects")
			f.log.Warn("follower stream read failed", "err", err)
			return nil
		}
		if rec.Seq > f.sourceSeq.Load() {
			f.sourceSeq.Store(rec.Seq)
		}
		switch rec.Kind {
		case wal.KindHeartbeat:
			continue
		case wal.KindTranslation:
		default:
			// Unknown kinds are skipped, not fatal: a newer source may
			// stream record kinds an older follower does not know.
			obs.Inc("replica.skipped_kind")
			continue
		}
		if rec.Seq <= f.applied.Load() {
			// The source re-serves from the watermark on resume; anything
			// at or below it is already applied.
			obs.Inc("replica.skipped_applied")
			continue
		}
		tr, err := wal.DecodeTranslation(f.db.Schema(), rec)
		if err != nil {
			return fmt.Errorf("replica: seq %d does not decode against the local schema (source ran DDL? wipe and re-bootstrap): %w", rec.Seq, err)
		}
		if err := deliver(Commit{Seq: rec.Seq, Key: rec.Key, TS: rec.TS, Tr: tr}); err != nil {
			return err
		}
	}
}
