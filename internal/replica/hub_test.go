package replica

import (
	"bytes"
	"io"
	"testing"

	"viewupdate/internal/wal"
)

func pubRec(seq uint64) wal.Record {
	return wal.Record{Seq: seq, Kind: wal.KindTranslation,
		Ops: []wal.OpRecord{{Kind: "i", Rel: "R", Vals: []string{"x"}}}}
}

func decodeFrames(t *testing.T, frames [][]byte) []wal.Record {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range frames {
		buf.Write(f)
	}
	var recs []wal.Record
	sr := wal.NewStreamReader(&buf)
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

func TestHubAttachReplaysBacklogOnce(t *testing.T) {
	h := NewHub(1 << 20)
	for seq := uint64(1); seq <= 5; seq++ {
		h.Publish(pubRec(seq))
	}
	backlog, tail, covered := h.Attach(2)
	if !covered {
		t.Fatal("backlog from seq 0 must be covered, nothing evicted")
	}
	defer h.Detach(tail)
	recs := decodeFrames(t, backlog)
	if len(recs) != 3 || recs[0].Seq != 3 || recs[2].Seq != 5 {
		t.Fatalf("backlog = %+v, want seqs 3..5", recs)
	}
	if recs[0].TS == 0 {
		t.Fatal("published frames must carry a commit timestamp")
	}
	// Frames published after Attach arrive on the tail, never in both
	// places.
	h.Publish(pubRec(6))
	select {
	case data := <-tail.C:
		got := decodeFrames(t, [][]byte{data})
		if got[0].Seq != 6 {
			t.Fatalf("tail got seq %d", got[0].Seq)
		}
	default:
		t.Fatal("tail missed the live frame")
	}
}

func TestHubEvictionForcesWALGapFill(t *testing.T) {
	h := NewHub(1) // evict after every frame beyond the newest
	for seq := uint64(1); seq <= 4; seq++ {
		h.Publish(pubRec(seq))
	}
	if _, _, covered := h.Attach(1); covered {
		t.Fatal("attach below the evicted range must report uncovered")
	}
	backlog, tail, covered := h.Attach(h.LastSeq())
	if !covered || len(backlog) != 0 {
		t.Fatalf("attach at the head: covered=%v backlog=%d", covered, len(backlog))
	}
	h.Detach(tail)
}

func TestHubShedsSlowTail(t *testing.T) {
	h := NewHub(1 << 20)
	_, tail, _ := h.Attach(0)
	for seq := uint64(1); seq <= tailBuffer+2; seq++ {
		h.Publish(pubRec(seq))
	}
	if h.Tails() != 0 {
		t.Fatal("overrun tail must be shed")
	}
	// The shed tail's channel is closed after the buffered frames.
	n := 0
	for range tail.C {
		n++
	}
	if n != tailBuffer {
		t.Fatalf("drained %d frames, want %d", n, tailBuffer)
	}
	// Detach after shed is a no-op, not a double close.
	h.Detach(tail)
}

func TestHubDropsOutOfOrderPublish(t *testing.T) {
	h := NewHub(1 << 20)
	h.Publish(pubRec(5))
	h.Publish(pubRec(5))
	h.Publish(pubRec(3))
	backlog, tail, _ := h.Attach(0)
	defer h.Detach(tail)
	if len(backlog) != 1 {
		t.Fatalf("backlog holds %d frames, want the single in-order one", len(backlog))
	}
}

func TestHubCloseShedsTails(t *testing.T) {
	h := NewHub(0)
	_, tail, _ := h.Attach(0)
	h.Close()
	if _, ok := <-tail.C; ok {
		t.Fatal("closed hub must close its tails")
	}
	h.Publish(pubRec(1)) // must not panic
	if h.LastSeq() != 0 {
		t.Fatal("publish after close must be dropped")
	}
}
