package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/persist"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// genWorkload builds n deterministic EMP translations mixing inserts,
// deletes and replacements against the paper instance.
func genWorkload(fx *fixtures.Emp, n int) []*update.Translation {
	names := []string{"Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy"}
	live := map[int64]tuple.T{}
	var order []int64
	next := int64(20)
	var trs []*update.Translation
	for i := 0; i < n; i++ {
		switch {
		case i%7 == 3 && len(order) > 0:
			no := order[len(order)-1]
			old := live[no]
			repl := fx.Tuple(no, names[int(no)%len(names)], "San Francisco", true)
			trs = append(trs, update.NewTranslation(update.NewReplace(old, repl)))
			live[no] = repl
		case i%5 == 4 && len(order) > 1:
			no := order[0]
			order = order[1:]
			trs = append(trs, update.NewTranslation(update.NewDelete(live[no])))
			delete(live, no)
		default:
			tp := fx.Tuple(next, names[int(next)%len(names)], "New York", next%2 == 0)
			trs = append(trs, update.NewTranslation(update.NewInsert(tp)))
			live[next] = tp
			order = append(order, next)
			next++
		}
	}
	return trs
}

func captureJSON(t *testing.T, db *storage.Database) []byte {
	t.Helper()
	snap, err := persist.Capture(db)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// recoverPrimaryAt reconstructs "the primary recovered at watermark w":
// the primary's snapshot plus the WAL prefix of records with seq <= w,
// run through the real recovery path.
func recoverPrimaryAt(t *testing.T, primaryDir string, recs []wal.Record, w uint64, scratch string) []byte {
	t.Helper()
	odir := filepath.Join(scratch, fmt.Sprintf("at-%d", w))
	if err := os.MkdirAll(odir, 0o755); err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(primaryDir, persist.SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(odir, persist.SnapshotFile), snapBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		if rec.Seq > w {
			continue
		}
		frame, err := wal.Frame(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	if err := os.WriteFile(filepath.Join(odir, persist.WALFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := persist.Open(odir, persist.Options{})
	if err != nil {
		t.Fatalf("oracle recovery at %d: %v", w, err)
	}
	defer st.Close()
	return captureJSON(t, st.DB())
}

// TestFollowerPrefixByteEquivalence is the replication headline
// property: a follower that bootstrapped from the primary's snapshot
// and replayed ANY prefix of the commit stream holds a state
// byte-equivalent to the primary recovering from disk at the same
// watermark. The replay goes through the real stream path (framing,
// StreamReader, skip-below-watermark, Apply).
func TestFollowerPrefixByteEquivalence(t *testing.T) {
	fx := fixtures.NewEmp(400)
	dir := t.TempDir()
	st, err := persist.Create(dir, fx.PaperInstance(), persist.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	initSnap, err := persist.Capture(st.DB())
	if err != nil {
		t.Fatal(err)
	}

	var feed []wal.Record
	st.SetOnCommit(func(recs []wal.Record) { feed = append(feed, recs...) })
	trs := genWorkload(fx, 24)
	for i, tr := range trs {
		if i%4 == 1 && i+2 < len(trs) {
			// A group commit mid-stream: the feed must flatten it.
			errs, _ := st.ApplyBatchKeyed([]*update.Translation{tr, trs[i+1]},
				[]string{fmt.Sprintf("k-%d", i), ""})
			for j, e := range errs {
				if e != nil {
					t.Fatalf("batch %d/%d: %v", i, j, e)
				}
			}
			trs[i+1] = nil
		} else if tr != nil {
			if err := st.Apply(tr); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
	}

	walRecs, err := wal.ScanFile(filepath.Join(dir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	ctx := context.Background()
	for p := 0; p <= len(feed); p++ {
		db, err := persist.Restore(initSnap)
		if err != nil {
			t.Fatal(err)
		}
		f := &Follower{db: db, log: discardLogger()}
		var stream bytes.Buffer
		for _, rec := range feed[:p] {
			frame, err := wal.Frame(rec)
			if err != nil {
				t.Fatal(err)
			}
			stream.Write(frame)
		}
		if err := f.consume(ctx, &stream, f.Apply); err != nil {
			t.Fatalf("prefix %d: %v", p, err)
		}
		w := uint64(0)
		if p > 0 {
			w = feed[p-1].Seq
		}
		got := captureJSON(t, f.db)
		want := recoverPrimaryAt(t, dir, walRecs.Records, w, scratch)
		if !bytes.Equal(got, want) {
			t.Fatalf("prefix %d (watermark %d): follower state differs from primary recovery", p, w)
		}
		if f.AppliedSeq() != w {
			t.Fatalf("prefix %d: applied=%d want %d", p, f.AppliedSeq(), w)
		}
	}
}

// testSource is a minimal replication source: a durable store feeding a
// hub, served over the two replication endpoints. The real server
// endpoints add WAL gap-fill and metrics; this keeps the follower tests
// self-contained in this package.
type testSource struct {
	mu  sync.Mutex
	st  *persist.Store
	hub *Hub
	srv *httptest.Server
}

func newTestSource(t *testing.T, db *storage.Database) *testSource {
	t.Helper()
	st, err := persist.Create(t.TempDir(), db, persist.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	src := &testSource{st: st, hub: NewHub(64 << 20)}
	st.SetOnCommit(func(recs []wal.Record) {
		for _, rec := range recs {
			src.hub.Publish(rec)
		}
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		src.mu.Lock()
		snap, err := persist.Capture(st.DB())
		if err == nil {
			snap.Seq = st.CommittedSeq()
		}
		src.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/wal/stream", func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if from < st.SnapshotSeq() {
			http.Error(w, "snapshot required", http.StatusGone)
			return
		}
		backlog, tail, covered := src.hub.Attach(from)
		if !covered {
			http.Error(w, "backlog gap", http.StatusInternalServerError)
			return
		}
		defer src.hub.Detach(tail)
		fl := w.(http.Flusher)
		for _, frame := range backlog {
			w.Write(frame)
		}
		fl.Flush()
		for {
			select {
			case frame, ok := <-tail.C:
				if !ok {
					return
				}
				w.Write(frame)
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	src.srv = httptest.NewServer(mux)
	t.Cleanup(func() {
		src.srv.Close()
		src.hub.Close()
		st.Close()
	})
	return src
}

func (s *testSource) apply(t *testing.T, key string, tr *update.Translation) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	errs, _ := s.st.ApplyBatchKeyed([]*update.Translation{tr}, []string{key})
	if errs[0] != nil {
		t.Fatalf("primary commit: %v", errs[0])
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFollowerKillAndResume: a durable follower is killed mid-stream,
// restarts, recovers its watermark and idempotency keys from its own
// store, and catches up without double-applying anything.
func TestFollowerKillAndResume(t *testing.T) {
	fx := fixtures.NewEmp(400)
	src := newTestSource(t, fx.PaperInstance())
	trs := genWorkload(fx, 40)
	fdir := t.TempDir()

	cfg := Config{
		Primary: src.srv.URL, Dir: fdir, Sync: wal.SyncNever,
		Logger: discardLogger(), ReconnectMin: 2 * time.Millisecond,
	}
	ctx1, kill := context.WithCancel(context.Background())
	f1, err := Open(ctx1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f1.AppliedSeq() != 0 || len(f1.RecoveredKeys()) != 0 {
		t.Fatalf("fresh bootstrap: applied=%d keys=%v", f1.AppliedSeq(), f1.RecoveredKeys())
	}
	run1 := make(chan error, 1)
	go func() { run1 <- f1.Run(ctx1, f1.Apply) }()

	// First half of the workload while the follower streams live.
	half := len(trs) / 2
	for i, tr := range trs[:half] {
		src.apply(t, fmt.Sprintf("key-%d", i), tr)
	}
	waitFor(t, "first-half catch-up", func() bool {
		return f1.AppliedSeq() == src.st.CommittedSeq()
	})
	killedAt := f1.AppliedSeq()

	// Kill mid-stream.
	kill()
	if err := <-run1; err != nil {
		t.Fatalf("killed run: %v", err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary keeps committing while the follower is down.
	for i, tr := range trs[half:] {
		src.apply(t, fmt.Sprintf("key-%d", half+i), tr)
	}

	// Restart: recovery, not bootstrap — watermark and keys come from
	// the follower's own store.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	f2, err := Open(ctx2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.AppliedSeq() != killedAt {
		t.Fatalf("recovered watermark %d, want %d", f2.AppliedSeq(), killedAt)
	}
	keys := f2.RecoveredKeys()
	if len(keys) == 0 || keys[0] != "key-0" || keys[len(keys)-1] != fmt.Sprintf("key-%d", half-1) {
		t.Fatalf("recovered keys %v, want key-0..key-%d", keys, half-1)
	}

	// Resume, asserting strictly ascending seqs above the watermark:
	// any double-apply trips here before it corrupts state.
	last := f2.AppliedSeq()
	deliver := func(c Commit) error {
		if c.Seq <= last {
			return fmt.Errorf("double apply: seq %d after %d", c.Seq, last)
		}
		last = c.Seq
		return f2.Apply(c)
	}
	run2 := make(chan error, 1)
	go func() { run2 <- f2.Run(ctx2, deliver) }()
	waitFor(t, "resume catch-up", func() bool {
		return f2.AppliedSeq() == src.st.CommittedSeq()
	})
	cancel2()
	if err := <-run2; err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	src.mu.Lock()
	want := captureJSON(t, src.st.DB())
	src.mu.Unlock()
	if got := captureJSON(t, f2.DB()); !bytes.Equal(got, want) {
		t.Fatal("follower state differs from primary after resume")
	}
}

// TestFollowerReconnectsThroughDrops: the source sheds the stream
// repeatedly mid-run; the follower must reconnect from its watermark
// and still converge, applying each commit exactly once.
func TestFollowerReconnectsThroughDrops(t *testing.T) {
	fx := fixtures.NewEmp(400)
	src := newTestSource(t, fx.PaperInstance())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := Open(ctx, Config{
		Primary: src.srv.URL, Logger: discardLogger(), ReconnectMin: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var applied uint64
	deliver := func(c Commit) error {
		if c.Seq <= applied {
			return fmt.Errorf("double apply: %d after %d", c.Seq, applied)
		}
		applied = c.Seq
		return f.Apply(c)
	}
	run := make(chan error, 1)
	go func() { run <- f.Run(ctx, deliver) }()

	for i, tr := range genWorkload(fx, 30) {
		src.apply(t, "", tr)
		if i%10 == 9 {
			// Shed every attached tail: the follower sees a clean close
			// and must resume.
			waitFor(t, "tail attach", func() bool { return src.hub.Tails() > 0 })
			src.hub.ShedTails()
		}
	}
	waitFor(t, "convergence through drops", func() bool {
		return f.AppliedSeq() == src.st.CommittedSeq()
	})
	cancel()
	if err := <-run; err != nil {
		t.Fatalf("run: %v", err)
	}
	src.mu.Lock()
	want := captureJSON(t, src.st.DB())
	src.mu.Unlock()
	if got := captureJSON(t, f.DB()); !bytes.Equal(got, want) {
		t.Fatal("follower diverged across reconnects")
	}
}
