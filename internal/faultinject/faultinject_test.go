package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"viewupdate/internal/vuerr"
)

func TestDisabledHitIsNilAndAllocFree(t *testing.T) {
	Disable()
	if err := Hit(SiteApply); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if Hit(SiteApply) != nil {
			t.Fatal("unexpected fault")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Hit allocates %.1f times per call, want 0", allocs)
	}
}

func TestFailNthFiresExactlyOnce(t *testing.T) {
	p := NewPlan(1).FailNth(SiteApply, 3, vuerr.ErrTransient)
	Enable(p)
	defer Disable()
	for i := 1; i <= 5; i++ {
		err := Hit(SiteApply)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
		if i == 3 && !vuerr.IsTransient(err) {
			t.Fatalf("hit 3 error %v does not wrap ErrTransient", err)
		}
	}
	if p.Hits(SiteApply) != 5 || p.Fired(SiteApply) != 1 {
		t.Fatalf("hits=%d fired=%d, want 5/1", p.Hits(SiteApply), p.Fired(SiteApply))
	}
}

func TestFailEveryNthRespectsLimit(t *testing.T) {
	p := NewPlan(1).FailEveryNth("s", 2, 2, vuerr.ErrTransient)
	Enable(p)
	defer Disable()
	var fired []int
	for i := 1; i <= 10; i++ {
		if Hit("s") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [2 4]", fired)
	}
}

func TestFailProbIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		p := NewPlan(seed).FailProb("s", 0.3, 0, vuerr.ErrTransient)
		Enable(p)
		defer Disable()
		var fired []int
		for i := 1; i <= 50; i++ {
			if Hit("s") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("probabilistic rule never fired in 50 hits at p=0.3")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestCrashWriterTearsAtLimit(t *testing.T) {
	var buf bytes.Buffer
	w := &CrashWriter{W: &buf, Limit: 5}
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("first write n=%d err=%v", n, err)
	}
	n, err := w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write n=%d err=%v, want 2/ErrCrashed", n, err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err=%v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err=%v", err)
	}
	if got := buf.String(); got != "abcde" {
		t.Fatalf("media holds %q, want %q", got, "abcde")
	}
	if !w.Crashed() {
		t.Fatal("Crashed() false after crash")
	}
}

func TestFlakyWriterFailsNthCallOnly(t *testing.T) {
	var buf bytes.Buffer
	w := &FlakyWriter{W: &buf, FailNth: 2}
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("b")); !vuerr.IsTransient(err) {
		t.Fatalf("2nd write err=%v, want transient", err)
	}
	if _, err := w.Write([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "ac" {
		t.Fatalf("media holds %q, want %q", buf.String(), "ac")
	}
}

func TestCorruptWriterFlipsOneByte(t *testing.T) {
	var buf bytes.Buffer
	w := &CorruptWriter{W: &buf, Offset: 4, Mask: 0xFF}
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("def")); err != nil {
		t.Fatal(err)
	}
	want := []byte("abcd" + string([]byte{'e' ^ 0xFF}) + "f")
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("media holds %q, want %q", buf.Bytes(), want)
	}
}
