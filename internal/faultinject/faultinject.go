// Package faultinject provides seeded, deterministic failpoints for the
// storage and WAL I/O paths. Production code marks interesting sites
// with Hit("site.name"); a test (or a chaos harness) installs a Plan
// that decides, per site and per hit number, whether that hit fails and
// with which error.
//
// Like the obs package, faultinject is zero-cost when disabled: Hit is
// an atomic pointer load and a nil check — no allocation, no lock, no
// map access — which the package tests pin with testing.AllocsPerRun.
//
// Determinism: a Plan's decisions depend only on its configuration, its
// seed, and the sequence of Hit calls. The same plan against the same
// call sequence always fires the same faults, which is what makes
// crash-safety property tests and churn determinism tests possible.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Site names used by the storage and persist layers. Centralizing them
// here keeps callers and tests in sync.
const (
	// SiteApply fires at the start of storage.Database.Apply, before
	// any mutation: a clean transient-failure injection point.
	SiteApply = "storage.apply"
	// SiteApplyInsert fires before each insert of the added set.
	SiteApplyInsert = "storage.apply.insert"
	// SiteApplyDelete fires before each delete of the removed set.
	SiteApplyDelete = "storage.apply.delete"
	// SiteRollback fires before each undo step of an in-memory
	// rollback; a failure here poisons the database.
	SiteRollback = "storage.rollback"
	// SiteWALAppend fires before each WAL record append.
	SiteWALAppend = "wal.append"
	// SiteWALSync fires before each WAL durability barrier; an injected
	// error seals the log, exactly as a real fsync failure would.
	SiteWALSync = "wal.sync"
	// SiteServerCommit fires at the head of each server group-commit
	// batch, before any translation in the batch touches memory or the
	// WAL: the whole batch fails cleanly and every waiting request gets
	// the injected error.
	SiteServerCommit = "server.commit"
	// SiteServerAdmission fires on each commit submission, before
	// admission control; the stage boundary between the HTTP layer and
	// the pipeline queue.
	SiteServerAdmission = "server.admission"
	// SiteServerTranslate fires before each translation of a wire
	// request against the published snapshot.
	SiteServerTranslate = "server.translate"
	// SiteServerPublish fires after a batch has durably landed, before
	// the fresh snapshot is published and waiters are acknowledged.
	// Injected errors at this site are ignored by the server (a durable
	// batch cannot be unlanded); it exists for CallNth crash triggers.
	SiteServerPublish = "server.publish"
	// SiteServerBatchWindow fires when the committer opens an adaptive
	// batching window: at least one commit is gathered and the batcher
	// has decided to wait for more before the WAL append. Injected
	// errors are ignored (the window is a latency hint, not a failure
	// boundary); it exists for CallNth crash triggers — a crash armed
	// here kills the media while gathered commits are neither applied
	// nor journaled, and recovery must neither lose an acked commit nor
	// double-apply a retried one.
	SiteServerBatchWindow = "server.batch.window"
	// SiteShardPrepare fires inside the two-phase-commit window of a
	// cross-shard commit: after every participant's prepare record is
	// durable and before the decision record is appended. A crash armed
	// here leaves durable prepares with no decision, which recovery
	// must roll back (presumed abort).
	SiteShardPrepare = "shard.prepare"
	// SiteShardDecision fires after the decision record is durable and
	// before the client is acknowledged. Injected errors are ignored (a
	// decided commit cannot be undone); like SiteServerPublish it
	// exists for CallNth crash triggers — a crash armed here must
	// recover with the cross-shard commit applied.
	SiteShardDecision = "shard.decision"
)

// A rule decides whether one hit at a site fails, or — for callback
// rules — what runs when the hit fires.
type rule struct {
	err       error
	fn        func()  // callback rule: runs on fire, injects no error
	nth       int     // fire on exactly this 1-based hit number
	every     int     // fire on every k-th hit
	prob      float64 // fire with this probability (plan-seeded)
	remaining int     // firings left; < 0 means unlimited
}

type siteState struct {
	hits  int // total Hit calls observed
	fired int // failures injected
	rules []*rule
}

// A Plan is one deterministic fault schedule. Configure it with the
// Fail* methods, then install it with Enable. A Plan must not be
// reconfigured after Enable.
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*siteState
}

// NewPlan returns an empty plan whose probabilistic rules draw from the
// given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed)), sites: map[string]*siteState{}}
}

func (p *Plan) site(name string) *siteState {
	s := p.sites[name]
	if s == nil {
		s = &siteState{}
		p.sites[name] = s
	}
	return s
}

// FailNth arranges for exactly the n-th (1-based) hit at site to fail
// with err.
func (p *Plan) FailNth(site string, n int, err error) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.site(site).rules = append(p.site(site).rules, &rule{err: err, nth: n, remaining: 1})
	return p
}

// FailEveryNth arranges for every k-th hit at site to fail with err, at
// most limit times (limit <= 0 means no limit).
func (p *Plan) FailEveryNth(site string, k, limit int, err error) *Plan {
	if limit <= 0 {
		limit = -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.site(site).rules = append(p.site(site).rules, &rule{err: err, every: k, remaining: limit})
	return p
}

// CallNth arranges for fn to run on exactly the n-th (1-based) hit at
// site. Callback rules never inject an error — the hit proceeds
// normally — and run after the plan's internal lock is released, so fn
// may itself call into fault-injected code. This is the chaos
// harness's kill-point primitive: the callback flips the WAL media
// into its crashed state at an exact pipeline stage boundary.
func (p *Plan) CallNth(site string, n int, fn func()) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.site(site).rules = append(p.site(site).rules, &rule{fn: fn, nth: n, remaining: 1})
	return p
}

// FailProb arranges for each hit at site to fail with err with the
// given probability, at most limit times (limit <= 0 means no limit).
// Draws come from the plan's seeded generator, so a single-goroutine
// hit sequence is fully deterministic.
func (p *Plan) FailProb(site string, prob float64, limit int, err error) *Plan {
	if limit <= 0 {
		limit = -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.site(site).rules = append(p.site(site).rules, &rule{err: err, prob: prob, remaining: limit})
	return p
}

// hit records one call at site and returns the injected error, if any.
// Every firing callback rule runs (after the lock is released); the
// first firing error rule wins, exactly as before callbacks existed.
func (p *Plan) hit(name string) error {
	p.mu.Lock()
	s := p.site(name)
	s.hits++
	var injected error
	var cbs []func()
	for _, r := range s.rules {
		if r.remaining == 0 {
			continue
		}
		if r.fn == nil && injected != nil {
			// First error rule wins; later ones are not evaluated (and
			// draw nothing from the rng), matching the pre-callback
			// early-return behavior.
			continue
		}
		fire := false
		switch {
		case r.nth > 0:
			fire = s.hits == r.nth
		case r.every > 0:
			fire = s.hits%r.every == 0
		case r.prob > 0:
			fire = p.rng.Float64() < r.prob
		}
		if !fire {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		if r.fn != nil {
			cbs = append(cbs, r.fn)
			continue
		}
		s.fired++
		injected = fmt.Errorf("faultinject: %s hit %d: %w", name, s.hits, r.err)
	}
	p.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
	return injected
}

// Hits returns the number of Hit calls observed at site.
func (p *Plan) Hits(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.site(site).hits
}

// Fired returns the number of failures injected at site.
func (p *Plan) Fired(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.site(site).fired
}

// active is the process-wide plan; nil means fault injection is off.
var active atomic.Pointer[Plan]

// Enable installs the plan process-wide. Enable(nil) disables.
func Enable(p *Plan) { active.Store(p) }

// Disable removes the installed plan; subsequent Hit calls are no-ops.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is installed.
func Enabled() bool { return active.Load() != nil }

// Active returns the installed plan, or nil.
func Active() *Plan { return active.Load() }

// Hit reports the injected failure for this call at site, or nil. When
// no plan is installed this is a single atomic load.
func Hit(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(site)
}
