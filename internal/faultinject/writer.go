// Fault-injecting writer wrappers for the WAL media path. Each wrapper
// passes writes through to an underlying writer while simulating one
// failure mode: a crash that loses every byte after a cut-off, a
// transient per-call write failure, or silent bit corruption. All three
// implement Sync (delegating when the underlying writer supports it),
// so they slot in as WAL media.
package faultinject

import (
	"errors"
	"io"
	"sync"

	"viewupdate/internal/vuerr"
)

// ErrCrashed is returned by a CrashWriter for every write after its
// cut-off: the simulated process is dead and the bytes are gone.
var ErrCrashed = errors.New("faultinject: simulated crash")

// syncer is the optional Sync capability of an underlying writer.
type syncer interface{ Sync() error }

func syncUnderlying(w io.Writer) error {
	if s, ok := w.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// truncater is the optional repair capability of an underlying writer,
// mirroring the WAL media contract.
type truncater interface{ Truncate(size int64) error }

func truncateUnderlying(w io.Writer, size int64) error {
	if t, ok := w.(truncater); ok {
		return t.Truncate(size)
	}
	return errors.New("faultinject: underlying writer cannot truncate")
}

// A CrashWriter writes through until Limit total bytes have been
// written, then "crashes": the write that crosses the limit is
// truncated at the limit (a torn write) and every later Write and Sync
// fails with ErrCrashed. This simulates the kernel persisting an
// arbitrary prefix of an append before power loss.
type CrashWriter struct {
	W       io.Writer
	Limit   int64
	written int64
	crashed bool
}

// Write implements io.Writer.
func (c *CrashWriter) Write(p []byte) (int, error) {
	if c.crashed {
		return 0, ErrCrashed
	}
	if c.written+int64(len(p)) <= c.Limit {
		n, err := c.W.Write(p)
		c.written += int64(n)
		return n, err
	}
	keep := c.Limit - c.written
	if keep < 0 {
		keep = 0
	}
	n, _ := c.W.Write(p[:keep])
	c.written += int64(n)
	c.crashed = true
	return n, ErrCrashed
}

// Sync implements the WAL media contract.
func (c *CrashWriter) Sync() error {
	if c.crashed {
		return ErrCrashed
	}
	return syncUnderlying(c.W)
}

// Truncate fails once crashed — a dead process cannot repair its file —
// and otherwise delegates to the underlying writer.
func (c *CrashWriter) Truncate(size int64) error {
	if c.crashed {
		return ErrCrashed
	}
	return truncateUnderlying(c.W, size)
}

// Crashed reports whether the cut-off has been reached.
func (c *CrashWriter) Crashed() bool { return c.crashed }

// An ArmedCrashWriter is a CrashWriter whose cut-off is armed at
// runtime instead of fixed at construction: it passes writes through
// untouched until Crash(keep) is called, after which the next keep
// bytes still persist (the kernel flushing an arbitrary prefix of
// in-flight appends) and then every Write, Sync and Truncate fails
// with ErrCrashed. Safe for concurrent use — the chaos harness arms it
// from a failpoint callback while the committer goroutine is writing.
type ArmedCrashWriter struct {
	W io.Writer

	mu      sync.Mutex
	armed   bool
	keep    int64
	crashed bool
}

// Crash arms the cut-off: keep more bytes persist, everything after is
// lost. keep <= 0 makes the very next write fail. Arming twice keeps
// the first cut-off.
func (a *ArmedCrashWriter) Crash(keep int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.armed {
		return
	}
	a.armed = true
	if keep < 0 {
		keep = 0
	}
	a.keep = keep
}

// Crashed reports whether the cut-off has been reached.
func (a *ArmedCrashWriter) Crashed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.crashed
}

// Write implements io.Writer.
func (a *ArmedCrashWriter) Write(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.crashed {
		return 0, ErrCrashed
	}
	if !a.armed {
		return a.W.Write(p)
	}
	if int64(len(p)) <= a.keep {
		n, err := a.W.Write(p)
		a.keep -= int64(n)
		return n, err
	}
	n, _ := a.W.Write(p[:a.keep])
	a.keep = 0
	a.crashed = true
	return n, ErrCrashed
}

// Sync implements the WAL media contract. Once armed, the barrier
// fails: a process about to die cannot prove durability of its tail.
func (a *ArmedCrashWriter) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.armed || a.crashed {
		a.crashed = true
		return ErrCrashed
	}
	return syncUnderlying(a.W)
}

// Truncate fails once armed — a dead process cannot repair its file —
// and otherwise delegates to the underlying writer.
func (a *ArmedCrashWriter) Truncate(size int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.armed || a.crashed {
		a.crashed = true
		return ErrCrashed
	}
	return truncateUnderlying(a.W, size)
}

// A FlakyWriter fails exactly its FailNth-th Write call (1-based) with
// a transient error, writing nothing on that call; every other call
// passes through. Err overrides the default vuerr.ErrTransient.
type FlakyWriter struct {
	W       io.Writer
	FailNth int
	Err     error
	calls   int
}

// Write implements io.Writer.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	f.calls++
	if f.calls == f.FailNth {
		if f.Err != nil {
			return 0, f.Err
		}
		return 0, vuerr.ErrTransient
	}
	return f.W.Write(p)
}

// Sync implements the WAL media contract.
func (f *FlakyWriter) Sync() error { return syncUnderlying(f.W) }

// Truncate delegates to the underlying writer; only Write calls are
// flaky.
func (f *FlakyWriter) Truncate(size int64) error { return truncateUnderlying(f.W, size) }

// A CorruptWriter passes every write through but XORs Mask into the
// byte at absolute offset Offset (counted across all writes): silent
// media corruption that only a checksum can catch. A zero Mask defaults
// to flipping the low bit.
type CorruptWriter struct {
	W       io.Writer
	Offset  int64
	Mask    byte
	written int64
}

// Write implements io.Writer.
func (c *CorruptWriter) Write(p []byte) (int, error) {
	start := c.written
	end := start + int64(len(p))
	if c.Offset >= start && c.Offset < end {
		mask := c.Mask
		if mask == 0 {
			mask = 0x01
		}
		cp := make([]byte, len(p))
		copy(cp, p)
		cp[c.Offset-start] ^= mask
		p = cp
	}
	n, err := c.W.Write(p)
	c.written += int64(n)
	return n, err
}

// Sync implements the WAL media contract.
func (c *CorruptWriter) Sync() error { return syncUnderlying(c.W) }

// Truncate delegates to the underlying writer, rewinding the absolute
// offset count so a not-yet-reached corruption target stays aligned
// with file offsets.
func (c *CorruptWriter) Truncate(size int64) error {
	if err := truncateUnderlying(c.W, size); err != nil {
		return err
	}
	if c.written > size {
		c.written = size
	}
	return nil
}
