package schema

import (
	"strings"
	"testing"

	"viewupdate/internal/value"
)

func TestNewDomain(t *testing.T) {
	d, err := NewDomain("D", value.NewInt(3), value.NewInt(1), value.NewInt(2), value.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "D" || d.Kind() != value.Int {
		t.Errorf("name/kind wrong: %s %s", d.Name(), d.Kind())
	}
	if d.Size() != 3 {
		t.Errorf("duplicates not removed: size %d", d.Size())
	}
	vals := d.Values()
	for i := 1; i < len(vals); i++ {
		if !vals[i-1].Less(vals[i]) {
			t.Errorf("values not sorted: %v", vals)
		}
	}
	if !d.Contains(value.NewInt(2)) || d.Contains(value.NewInt(9)) {
		t.Error("Contains wrong")
	}
	if d.At(0) != value.NewInt(1) {
		t.Errorf("At(0) = %v", d.At(0))
	}
}

func TestNewDomainErrors(t *testing.T) {
	if _, err := NewDomain("", value.NewInt(1)); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewDomain("D"); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := NewDomain("D", value.NewInt(1), value.NewString("x")); err == nil {
		t.Error("mixed kinds should fail")
	}
	if _, err := NewDomain("D", value.Value{}); err == nil {
		t.Error("invalid value should fail")
	}
}

func TestDomainHelpers(t *testing.T) {
	d, err := IntRangeDomain("R", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 || d.At(0) != value.NewInt(2) || d.At(3) != value.NewInt(5) {
		t.Errorf("IntRangeDomain wrong: %v", d.Values())
	}
	if _, err := IntRangeDomain("R", 5, 2); err == nil {
		t.Error("empty range should fail")
	}
	s, err := StringDomain("S", "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != value.NewString("a") {
		t.Errorf("StringDomain not sorted: %v", s.Values())
	}
	b := BoolDomain("B")
	if b.Size() != 2 {
		t.Errorf("BoolDomain size %d", b.Size())
	}
}

func TestDomainComplement(t *testing.T) {
	d := MustDomain("D", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	in := map[value.Value]bool{value.NewInt(2): true}
	comp := d.Complement(in)
	if len(comp) != 2 || comp[0] != value.NewInt(1) || comp[1] != value.NewInt(3) {
		t.Errorf("Complement = %v", comp)
	}
	if got := d.Complement(nil); len(got) != 3 {
		t.Errorf("Complement(nil) = %v", got)
	}
}

func TestDomainString(t *testing.T) {
	d := MustDomain("D", value.NewInt(1), value.NewInt(2))
	if got := d.String(); got != "D{1,2}" {
		t.Errorf("String() = %q", got)
	}
}

func testRelation(t *testing.T) *Relation {
	t.Helper()
	k := MustDomain("KD", value.NewInt(1), value.NewInt(2))
	a := MustDomain("AD", value.NewString("x"), value.NewString("y"))
	return MustRelation("R", []Attribute{
		{Name: "K1", Domain: k},
		{Name: "K2", Domain: k},
		{Name: "A", Domain: a},
	}, []string{"K2", "K1"}) // key listed out of schema order on purpose
}

func TestRelationBasics(t *testing.T) {
	r := testRelation(t)
	if r.Name() != "R" || r.Arity() != 3 {
		t.Errorf("basics wrong: %s/%d", r.Name(), r.Arity())
	}
	if got := r.AttributeNames(); len(got) != 3 || got[0] != "K1" {
		t.Errorf("AttributeNames = %v", got)
	}
	if r.Index("A") != 2 || r.Index("missing") != -1 {
		t.Error("Index wrong")
	}
	if !r.Has("K1") || r.Has("missing") {
		t.Error("Has wrong")
	}
	if a, ok := r.Attribute("A"); !ok || a.Name != "A" {
		t.Error("Attribute wrong")
	}
	if _, ok := r.Attribute("missing"); ok {
		t.Error("Attribute should miss")
	}
	// Key normalizes to schema order.
	if key := r.Key(); len(key) != 2 || key[0] != "K1" || key[1] != "K2" {
		t.Errorf("Key = %v (want schema order)", key)
	}
	if !r.IsKey("K1") || r.IsKey("A") {
		t.Error("IsKey wrong")
	}
	if idx := r.KeyIndexes(); len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("KeyIndexes = %v", idx)
	}
	if nk := r.NonKeyAttributes(); len(nk) != 1 || nk[0] != "A" {
		t.Errorf("NonKeyAttributes = %v", nk)
	}
	if n := r.ExtensionSize(); n != 8 {
		t.Errorf("ExtensionSize = %d", n)
	}
	if s := r.String(); !strings.Contains(s, "K1*") || !strings.Contains(s, "A") || strings.Contains(s, "A*") {
		t.Errorf("String = %q", s)
	}
}

func TestRelationErrors(t *testing.T) {
	d := MustDomain("D", value.NewInt(1))
	cases := []struct {
		name  string
		attrs []Attribute
		key   []string
	}{
		{"", []Attribute{{Name: "A", Domain: d}}, []string{"A"}},
		{"R", nil, []string{"A"}},
		{"R", []Attribute{{Name: "", Domain: d}}, []string{"A"}},
		{"R", []Attribute{{Name: "A", Domain: nil}}, []string{"A"}},
		{"R", []Attribute{{Name: "A", Domain: d}, {Name: "A", Domain: d}}, []string{"A"}},
		{"R", []Attribute{{Name: "A", Domain: d}}, nil},
		{"R", []Attribute{{Name: "A", Domain: d}}, []string{"B"}},
		{"R", []Attribute{{Name: "A", Domain: d}}, []string{"A", "A"}},
	}
	for i, c := range cases {
		if _, err := NewRelation(c.name, c.attrs, c.key); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestExtensionSizeSaturates(t *testing.T) {
	big, err := IntRangeDomain("Big", 1, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	r := MustRelation("R", []Attribute{
		{Name: "A", Domain: big},
		{Name: "B", Domain: big},
		{Name: "C", Domain: big},
		{Name: "D", Domain: big},
	}, []string{"A"})
	if n := r.ExtensionSize(); n != int64(1)<<62 {
		t.Errorf("ExtensionSize should saturate, got %d", n)
	}
}

func TestDatabaseSchema(t *testing.T) {
	d := MustDomain("D", value.NewInt(1), value.NewInt(2))
	parent := MustRelation("P", []Attribute{
		{Name: "PK", Domain: d},
		{Name: "PV", Domain: d},
	}, []string{"PK"})
	child := MustRelation("C", []Attribute{
		{Name: "CK", Domain: d},
		{Name: "FK", Domain: d},
	}, []string{"CK"})

	db := NewDatabase()
	if err := db.AddRelation(parent); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(child); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(parent); err == nil {
		t.Error("duplicate relation should fail")
	}
	if db.Relation("P") != parent || db.Relation("missing") != nil {
		t.Error("Relation lookup wrong")
	}
	if names := db.RelationNames(); len(names) != 2 || names[0] != "P" {
		t.Errorf("RelationNames = %v", names)
	}

	dep := InclusionDependency{Child: "C", ChildAttrs: []string{"FK"}, Parent: "P"}
	if err := db.AddInclusion(dep); err != nil {
		t.Fatal(err)
	}
	if got := db.Inclusions(); len(got) != 1 || got[0].Child != "C" {
		t.Errorf("Inclusions = %v", got)
	}
	if got := db.InclusionsFrom("C"); len(got) != 1 {
		t.Errorf("InclusionsFrom = %v", got)
	}
	if got := db.InclusionsFrom("P"); len(got) != 0 {
		t.Errorf("InclusionsFrom(P) = %v", got)
	}
	if got := db.InclusionsInto("P"); len(got) != 1 {
		t.Errorf("InclusionsInto = %v", got)
	}
}

func TestAddInclusionErrors(t *testing.T) {
	d := MustDomain("D", value.NewInt(1))
	e := MustDomain("E", value.NewString("x"))
	p := MustRelation("P", []Attribute{{Name: "PK", Domain: d}}, []string{"PK"})
	c := MustRelation("C", []Attribute{
		{Name: "CK", Domain: d},
		{Name: "FK", Domain: d},
		{Name: "FS", Domain: e},
	}, []string{"CK"})
	db := NewDatabase()
	if err := db.AddRelation(p); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(c); err != nil {
		t.Fatal(err)
	}
	cases := []InclusionDependency{
		{Child: "missing", ChildAttrs: []string{"FK"}, Parent: "P"},
		{Child: "C", ChildAttrs: []string{"FK"}, Parent: "missing"},
		{Child: "C", ChildAttrs: []string{"FK", "CK"}, Parent: "P"}, // arity mismatch
		{Child: "C", ChildAttrs: []string{"nope"}, Parent: "P"},
		{Child: "C", ChildAttrs: []string{"FS"}, Parent: "P"}, // domain mismatch
	}
	for i, dep := range cases {
		if err := db.AddInclusion(dep); err == nil {
			t.Errorf("case %d should fail: %v", i, dep)
		}
	}
	if s := (InclusionDependency{Child: "C", ChildAttrs: []string{"FK"}, Parent: "P"}).String(); !strings.Contains(s, "C[FK]") {
		t.Errorf("String = %q", s)
	}
}
