package schema

import (
	"fmt"
	"sort"
	"strings"
)

// An Attribute is a named column drawn from a finite domain.
type Attribute struct {
	Name   string
	Domain *Domain
}

// A Relation describes one base relation: an ordered list of attributes
// and the single key dependency K → R the paper assumes (the relations
// are in Boyce-Codd Normal Form with the key dependency as the only
// intra-relation constraint).
type Relation struct {
	name  string
	attrs []Attribute
	pos   map[string]int // attribute name -> ordinal
	key   []string       // subset of attribute names, in schema order
	isKey map[string]bool
}

// NewRelation builds a relation schema. key must be a non-empty subset
// of the attribute names.
func NewRelation(name string, attrs []Attribute, key []string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation needs a name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: relation %s needs attributes", name)
	}
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: relation %s has an unnamed attribute", name)
		}
		if a.Domain == nil {
			return nil, fmt.Errorf("schema: attribute %s.%s has no domain", name, a.Name)
		}
		if _, dup := pos[a.Name]; dup {
			return nil, fmt.Errorf("schema: relation %s repeats attribute %s", name, a.Name)
		}
		pos[a.Name] = i
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("schema: relation %s needs a key", name)
	}
	isKey := make(map[string]bool, len(key))
	for _, k := range key {
		if _, ok := pos[k]; !ok {
			return nil, fmt.Errorf("schema: key attribute %s not in relation %s", k, name)
		}
		if isKey[k] {
			return nil, fmt.Errorf("schema: relation %s repeats key attribute %s", name, k)
		}
		isKey[k] = true
	}
	ordered := make([]string, 0, len(key))
	for _, a := range attrs {
		if isKey[a.Name] {
			ordered = append(ordered, a.Name)
		}
	}
	return &Relation{name: name, attrs: attrs, pos: pos, key: ordered, isKey: isKey}, nil
}

// MustRelation is NewRelation, panicking on error.
func MustRelation(name string, attrs []Attribute, key []string) *Relation {
	r, err := NewRelation(name, attrs, key)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Attributes returns the attributes in schema order (shared slice).
func (r *Relation) Attributes() []Attribute { return r.attrs }

// AttributeNames returns the attribute names in schema order.
func (r *Relation) AttributeNames() []string {
	names := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		names[i] = a.Name
	}
	return names
}

// Index returns the ordinal of the named attribute, or -1.
func (r *Relation) Index(attr string) int {
	i, ok := r.pos[attr]
	if !ok {
		return -1
	}
	return i
}

// Has reports whether the relation has the named attribute.
func (r *Relation) Has(attr string) bool {
	_, ok := r.pos[attr]
	return ok
}

// Attribute returns the named attribute; ok is false if absent.
func (r *Relation) Attribute(attr string) (Attribute, bool) {
	i, ok := r.pos[attr]
	if !ok {
		return Attribute{}, false
	}
	return r.attrs[i], true
}

// Key returns the key attribute names in schema order (shared slice).
func (r *Relation) Key() []string { return r.key }

// IsKey reports whether the named attribute belongs to the key.
func (r *Relation) IsKey(attr string) bool { return r.isKey[attr] }

// KeyIndexes returns the ordinals of the key attributes in schema order.
func (r *Relation) KeyIndexes() []int {
	idx := make([]int, len(r.key))
	for i, k := range r.key {
		idx[i] = r.pos[k]
	}
	return idx
}

// NonKeyAttributes returns the names of the attributes outside the key,
// in schema order.
func (r *Relation) NonKeyAttributes() []string {
	out := make([]string, 0, len(r.attrs)-len(r.key))
	for _, a := range r.attrs {
		if !r.isKey[a.Name] {
			out = append(out, a.Name)
		}
	}
	return out
}

// ExtensionSize returns the number of distinct tuples the schema
// admits: the product of the domain sizes. It saturates at 1<<62 to
// avoid overflow; callers use it only to bound small enumerations.
func (r *Relation) ExtensionSize() int64 {
	const limit = int64(1) << 62
	n := int64(1)
	for _, a := range r.attrs {
		size := int64(a.Domain.Size())
		if size != 0 && n > limit/size {
			return limit
		}
		n *= size
	}
	return n
}

// String renders the schema as NAME(a1, a2*, ...) with key attributes
// starred.
func (r *Relation) String() string {
	parts := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		star := ""
		if r.isKey[a.Name] {
			star = "*"
		}
		parts[i] = a.Name + star
	}
	return fmt.Sprintf("%s(%s)", r.name, strings.Join(parts, ", "))
}

// An InclusionDependency states Child[ChildAttrs] ⊆ Parent[ParentKey]:
// every combination of values appearing in the child attributes must
// appear as the key of some parent tuple. Together with the extension
// join this forms the paper's "reference connection" (§5-1).
type InclusionDependency struct {
	Child      string   // referencing relation
	ChildAttrs []string // attributes of Child, in order
	Parent     string   // referenced relation
	// The referenced attributes are always exactly Parent's key, in
	// key order, as required by an extension join.
}

// String renders the dependency as Child[A,B] ⊆ Parent[key].
func (d InclusionDependency) String() string {
	return fmt.Sprintf("%s[%s] ⊆ %s[key]", d.Child, strings.Join(d.ChildAttrs, ","), d.Parent)
}

// A Database is a set of relation schemata indexed by name, plus the
// inclusion dependencies among them.
type Database struct {
	relations map[string]*Relation
	order     []string // insertion order, for deterministic listings
	inclusion []InclusionDependency
}

// NewDatabase returns an empty database schema.
func NewDatabase() *Database {
	return &Database{relations: make(map[string]*Relation)}
}

// AddRelation registers a relation schema.
func (db *Database) AddRelation(r *Relation) error {
	if _, dup := db.relations[r.Name()]; dup {
		return fmt.Errorf("schema: duplicate relation %s", r.Name())
	}
	db.relations[r.Name()] = r
	db.order = append(db.order, r.Name())
	return nil
}

// Relation returns the named relation schema, or nil.
func (db *Database) Relation(name string) *Relation { return db.relations[name] }

// RelationNames returns the relation names in registration order.
func (db *Database) RelationNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// AddInclusion registers an inclusion dependency after validating that
// both relations exist, the child attributes exist with domains
// matching the parent key's domains, and the attribute count matches
// the parent key.
func (db *Database) AddInclusion(d InclusionDependency) error {
	child := db.relations[d.Child]
	if child == nil {
		return fmt.Errorf("schema: inclusion child %s unknown", d.Child)
	}
	parent := db.relations[d.Parent]
	if parent == nil {
		return fmt.Errorf("schema: inclusion parent %s unknown", d.Parent)
	}
	pkey := parent.Key()
	if len(d.ChildAttrs) != len(pkey) {
		return fmt.Errorf("schema: inclusion %s has %d attributes but key of %s has %d",
			d, len(d.ChildAttrs), d.Parent, len(pkey))
	}
	for i, ca := range d.ChildAttrs {
		cattr, ok := child.Attribute(ca)
		if !ok {
			return fmt.Errorf("schema: inclusion attribute %s.%s unknown", d.Child, ca)
		}
		pattr, _ := parent.Attribute(pkey[i])
		if cattr.Domain != pattr.Domain {
			return fmt.Errorf("schema: inclusion %s: domain of %s.%s (%s) differs from %s.%s (%s)",
				d, d.Child, ca, cattr.Domain.Name(), d.Parent, pkey[i], pattr.Domain.Name())
		}
	}
	db.inclusion = append(db.inclusion, d)
	return nil
}

// Inclusions returns all inclusion dependencies (copy).
func (db *Database) Inclusions() []InclusionDependency {
	out := make([]InclusionDependency, len(db.inclusion))
	copy(out, db.inclusion)
	return out
}

// InclusionsFrom returns the dependencies whose child is the named
// relation, sorted by parent name for determinism.
func (db *Database) InclusionsFrom(child string) []InclusionDependency {
	var out []InclusionDependency
	for _, d := range db.inclusion {
		if d.Child == child {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Parent < out[j].Parent })
	return out
}

// InclusionsInto returns the dependencies whose parent is the named
// relation, sorted by child name for determinism.
func (db *Database) InclusionsInto(parent string) []InclusionDependency {
	var out []InclusionDependency
	for _, d := range db.inclusion {
		if d.Parent == parent {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Child < out[j].Child })
	return out
}
