// Package schema defines the static structure of a database: finite
// domains, attributes, relation schemata with a single key dependency
// (Boyce-Codd Normal Form as the paper assumes), database schemata, and
// inclusion dependencies between relations.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/value"
)

// A Domain is a finite, ordered set of values of one kind, as in the
// paper ("a domain is a (finite) set"). Finiteness is what makes the
// sets of selecting and excluding values of a selection term, and the
// "arbitrary value" choices of extend-insert and D-2, enumerable.
type Domain struct {
	name   string
	kind   value.Kind
	values []value.Value       // sorted ascending
	index  map[value.Value]int // value -> position in values
}

// NewDomain constructs a domain from the given values. The values must
// be non-empty, all of one kind, and are deduplicated and sorted.
func NewDomain(name string, vals ...value.Value) (*Domain, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: domain needs a name")
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("schema: domain %s needs at least one value", name)
	}
	kind := vals[0].Kind()
	seen := make(map[value.Value]bool, len(vals))
	uniq := make([]value.Value, 0, len(vals))
	for _, v := range vals {
		if !v.IsValid() {
			return nil, fmt.Errorf("schema: domain %s contains an invalid value", name)
		}
		if v.Kind() != kind {
			return nil, fmt.Errorf("schema: domain %s mixes kinds %s and %s", name, kind, v.Kind())
		}
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Less(uniq[j]) })
	index := make(map[value.Value]int, len(uniq))
	for i, v := range uniq {
		index[v] = i
	}
	return &Domain{name: name, kind: kind, values: uniq, index: index}, nil
}

// MustDomain is NewDomain, panicking on error. Intended for statically
// known domains in tests and examples.
func MustDomain(name string, vals ...value.Value) *Domain {
	d, err := NewDomain(name, vals...)
	if err != nil {
		panic(err)
	}
	return d
}

// IntRangeDomain builds a domain of the consecutive integers [lo, hi].
func IntRangeDomain(name string, lo, hi int64) (*Domain, error) {
	if hi < lo {
		return nil, fmt.Errorf("schema: empty int range [%d,%d] for domain %s", lo, hi, name)
	}
	vals := make([]value.Value, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		vals = append(vals, value.NewInt(i))
	}
	return NewDomain(name, vals...)
}

// StringDomain builds a domain of the given strings.
func StringDomain(name string, ss ...string) (*Domain, error) {
	vals := make([]value.Value, len(ss))
	for i, s := range ss {
		vals[i] = value.NewString(s)
	}
	return NewDomain(name, vals...)
}

// BoolDomain builds the two-valued boolean domain.
func BoolDomain(name string) *Domain {
	return MustDomain(name, value.NewBool(false), value.NewBool(true))
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Kind returns the kind of the domain's values.
func (d *Domain) Kind() value.Kind { return d.kind }

// Size returns the number of values in the domain.
func (d *Domain) Size() int { return len(d.values) }

// Contains reports whether v belongs to the domain.
func (d *Domain) Contains(v value.Value) bool {
	_, ok := d.index[v]
	return ok
}

// Values returns the domain's values in ascending order. The returned
// slice is shared; callers must not modify it.
func (d *Domain) Values() []value.Value { return d.values }

// At returns the i-th value in ascending order.
func (d *Domain) At(i int) value.Value { return d.values[i] }

// Complement returns the domain values not in the given set, in
// ascending order. This computes the paper's "excluding values" e from
// the selecting values s (s ∪ e = domain, s ∩ e = ∅).
func (d *Domain) Complement(in map[value.Value]bool) []value.Value {
	out := make([]value.Value, 0, len(d.values))
	for _, v := range d.values {
		if !in[v] {
			out = append(out, v)
		}
	}
	return out
}

// String renders the domain compactly.
func (d *Domain) String() string {
	parts := make([]string, len(d.values))
	for i, v := range d.values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s{%s}", d.name, strings.Join(parts, ","))
}
