// Package sqlish implements a small SQL-like surface language for the
// view-update engine: domain/table/view DDL, single-tuple view updates
// (INSERT / DELETE / UPDATE), SELECT for inspection, and translator
// administration (policies, defaults, candidate listing). cmd/vupdate
// wraps it in a REPL.
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single punctuation: ( ) , ; = . *
)

// token is one lexeme with its source position (for error messages).
type token struct {
	kind tokenKind
	text string // identifier (original case), number, string body, punct
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// lex splits the input into tokens. Strings are single-quoted with ”
// as the escaped quote. Line comments start with --.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlish: unterminated string at offset %d", start)
			}
			out = append(out, token{kind: tokString, text: b.String(), pos: start})
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '=' || c == '.' || c == '*':
			out = append(out, token{kind: tokPunct, text: string(c), pos: i})
			i++
		case c == '-' || (c >= '0' && c <= '9'):
			start := i
			if c == '-' {
				i++
				if i >= n || input[i] < '0' || input[i] > '9' {
					return nil, fmt.Errorf("sqlish: stray '-' at offset %d", start)
				}
			}
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			out = append(out, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			out = append(out, token{kind: tokIdent, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("sqlish: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// cursor walks a token stream.
type cursor struct {
	toks []token
	i    int
}

func (c *cursor) peek() token { return c.toks[c.i] }

func (c *cursor) next() token {
	t := c.toks[c.i]
	if t.kind != tokEOF {
		c.i++
	}
	return t
}

// isKeyword reports whether the next token is the given keyword
// (case-insensitive identifier).
func (c *cursor) isKeyword(kw string) bool {
	t := c.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (c *cursor) acceptKeyword(kw string) bool {
	if c.isKeyword(kw) {
		c.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (c *cursor) expectKeyword(kw string) error {
	if !c.acceptKeyword(kw) {
		return fmt.Errorf("sqlish: expected %s, got %s", strings.ToUpper(kw), c.peek())
	}
	return nil
}

// acceptPunct consumes the punctuation if present.
func (c *cursor) acceptPunct(p string) bool {
	t := c.peek()
	if t.kind == tokPunct && t.text == p {
		c.next()
		return true
	}
	return false
}

// expectPunct consumes the punctuation or fails.
func (c *cursor) expectPunct(p string) error {
	if !c.acceptPunct(p) {
		return fmt.Errorf("sqlish: expected %q, got %s", p, c.peek())
	}
	return nil
}

// expectIdent consumes an identifier or fails.
func (c *cursor) expectIdent(what string) (string, error) {
	t := c.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlish: expected %s, got %s", what, t)
	}
	c.next()
	return t.text, nil
}
