package sqlish

import (
	"fmt"

	"viewupdate/internal/persist"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
)

// txState holds an open transaction: the staged clone all statements
// run against, the base snapshot taken at BEGIN (used for optimistic
// conflict detection at COMMIT), plus the buffered journal texts
// (appended to the session journal only on COMMIT, so SAVE TO scripts
// replay exactly the committed statements).
type txState struct {
	base   *storage.Database
	staged *storage.Database
	stmts  []string
}

// cur returns the database statements should read and write: the
// staged clone inside a transaction, the live database otherwise.
func (s *Session) cur() *storage.Database {
	if s.tx != nil {
		return s.tx.staged
	}
	return s.db
}

// applyTr applies a translation at the right level: the staged clone
// inside a transaction, the durable store (or an installed external
// applier) otherwise, the plain in-memory database as the fallback.
func (s *Session) applyTr(tr *update.Translation) error {
	if s.tx != nil {
		return s.tx.staged.Apply(tr)
	}
	if s.store != nil {
		return s.store.Apply(tr)
	}
	if s.applier != nil {
		return s.applier(tr)
	}
	return s.db.Apply(tr)
}

// InTx reports whether a transaction is open.
func (s *Session) InTx() bool { return s.tx != nil }

// Store returns the attached durable store, or nil.
func (s *Session) Store() *persist.Store { return s.store }

// AttachStore couples the session to a durable store. Two cases:
//
//   - the store was created from this session's database (fresh store):
//     the session simply starts journaling through it;
//   - the store was recovered from disk: the session adopts the
//     recovered database and schema, which requires the session to be
//     empty (no tables of its own yet). Domains are re-registered from
//     the recovered relations; views, policies and secondary indexes
//     are not durable — replay a saved script to rebuild them.
func (s *Session) AttachStore(st *persist.Store) error {
	if s.tx != nil {
		return fmt.Errorf("sqlish: cannot attach a store inside a transaction")
	}
	if st.DB() != s.db {
		if len(s.sch.RelationNames()) != 0 {
			return fmt.Errorf("sqlish: cannot adopt a recovered store into a non-empty session")
		}
		s.db = st.DB()
		s.sch = s.db.Schema()
		for _, rn := range s.sch.RelationNames() {
			for _, a := range s.sch.Relation(rn).Attributes() {
				s.domains[a.Domain.Name()] = a.Domain
			}
		}
	}
	s.store = st
	return nil
}

func (s *Session) execBegin() (string, error) {
	if s.tx != nil {
		return "", fmt.Errorf("sqlish: transaction already open (nesting is not supported)")
	}
	if err := s.db.Err(); err != nil {
		return "", err
	}
	s.tx = &txState{base: s.db.Clone(), staged: s.db.Clone()}
	return "transaction started", nil
}

func (s *Session) execCommit() (string, error) {
	if s.tx == nil {
		return "", fmt.Errorf("sqlish: no open transaction")
	}
	// Optimistic concurrency: the diff below is only meaningful
	// relative to the state the transaction started from. If the live
	// database moved in the meantime, applying it would silently
	// clobber the concurrent changes.
	if !s.db.Equal(s.tx.base) {
		return "", fmt.Errorf("sqlish: commit conflict: database changed since BEGIN (transaction still open)")
	}
	diff, err := storage.Diff(s.db, s.tx.staged)
	if err != nil {
		return "", err
	}
	if diff.Len() == 0 {
		s.tx = nil
		return "committed (no changes)", nil
	}
	if s.store != nil {
		err = s.store.Apply(diff)
	} else if s.applier != nil {
		err = s.applier(diff)
	} else {
		err = s.db.Apply(diff)
	}
	if err != nil {
		// The staged state survives: a transient failure can be
		// retried with another COMMIT, or abandoned with ROLLBACK.
		return "", fmt.Errorf("sqlish: commit failed (transaction still open): %w", err)
	}
	s.journal = append(s.journal, s.tx.stmts...)
	n := diff.Len()
	s.tx = nil
	return fmt.Sprintf("committed %d operation(s)", n), nil
}

func (s *Session) execRollback() (string, error) {
	if s.tx == nil {
		return "", fmt.Errorf("sqlish: no open transaction")
	}
	n := len(s.tx.stmts)
	s.tx = nil
	return fmt.Sprintf("rolled back %d statement(s)", n), nil
}

// txAllowed reports whether stmt may run inside a transaction: data
// statements and reads only. DDL, policy configuration and file I/O
// change session state that the staged clone cannot isolate, so they
// must happen outside.
func txAllowed(stmt Stmt) bool {
	switch stmt.(type) {
	case Insert, Delete, Update, Select, Show, ShowCandidates, ShowEffects, Commit, Rollback:
		return true
	}
	return false
}
