package sqlish

import (
	"fmt"

	"viewupdate/internal/storage"
	"viewupdate/internal/update"
)

// SetApplier installs an external durable applier. When set (and no
// persist store is attached), every translation committed outside a
// transaction — base-table statements, view updates, COMMIT diffs —
// goes through fn instead of the session's in-memory database. The
// sharded serving engine uses this to route script statements through
// its shard store, so the session's database (the engine's global
// authoritative state) and the per-shard journals stay in lockstep.
func (s *Session) SetApplier(fn func(*update.Translation) error) { s.applier = fn }

// SetSchemaChanged installs a hook that runs after DDL grows the
// schema (a CREATE TABLE has been added to the session schema and the
// database's reference index was rebuilt). The sharded engine uses it
// to absorb the new relation into every shard and checkpoint, mirroring
// the persist store's checkpoint-on-DDL. Not called when a persist
// store is attached (that path checkpoints directly).
func (s *Session) SetSchemaChanged(fn func() error) { s.schemaChanged = fn }

// AdoptRecovered adopts a recovered database as the session's own,
// exactly like AttachStore does for a recovered persist store: the
// session must be empty, and domains are re-registered from the
// recovered relations so an -init script's CREATE DOMAIN statements
// skip-exist. Views, policies and indexes are not durable — replay the
// defining script to rebuild them.
func (s *Session) AdoptRecovered(db *storage.Database) error {
	if s.tx != nil {
		return fmt.Errorf("sqlish: cannot adopt a database inside a transaction")
	}
	if len(s.sch.RelationNames()) != 0 {
		return fmt.Errorf("sqlish: cannot adopt a recovered database into a non-empty session")
	}
	s.db = db
	s.sch = db.Schema()
	for _, rn := range s.sch.RelationNames() {
		for _, a := range s.sch.Relation(rn).Attributes() {
			s.domains[a.Domain.Name()] = a.Domain
		}
	}
	return nil
}
