package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"viewupdate/internal/value"
)

// Parse parses one statement (an optional trailing semicolon is
// consumed). Multi-statement scripts go through ParseScript.
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	c := &cursor{toks: toks}
	s, err := parseStmt(c)
	if err != nil {
		return nil, err
	}
	c.acceptPunct(";")
	if c.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlish: trailing input at %s", c.peek())
	}
	return s, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Stmt, error) {
	parts, err := parseScriptParts(input)
	if err != nil {
		return nil, err
	}
	out := make([]Stmt, len(parts))
	for i, p := range parts {
		out[i] = p.Stmt
	}
	return out, nil
}

// scriptPart pairs a parsed statement with its source text (used by the
// session journal).
type scriptPart struct {
	Stmt Stmt
	Text string
}

func parseScriptParts(input string) ([]scriptPart, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	c := &cursor{toks: toks}
	var out []scriptPart
	for c.peek().kind != tokEOF {
		start := c.peek().pos
		s, err := parseStmt(c)
		if err != nil {
			return nil, err
		}
		end := c.peek().pos
		out = append(out, scriptPart{Stmt: s, Text: strings.TrimSpace(input[start:end])})
		if !c.acceptPunct(";") && c.peek().kind != tokEOF {
			return nil, fmt.Errorf("sqlish: expected ';' between statements, got %s", c.peek())
		}
	}
	return out, nil
}

func parseStmt(c *cursor) (Stmt, error) {
	switch {
	case c.isKeyword("create"):
		return parseCreate(c)
	case c.isKeyword("insert"):
		return parseInsert(c)
	case c.isKeyword("delete"):
		return parseDelete(c)
	case c.isKeyword("update"):
		return parseUpdate(c)
	case c.isKeyword("select"):
		return parseSelect(c)
	case c.isKeyword("show"):
		return parseShow(c)
	case c.isKeyword("set"):
		return parseSet(c)
	case c.isKeyword("begin"):
		c.next()
		c.acceptKeyword("transaction")
		return Begin{}, nil
	case c.isKeyword("commit"):
		c.next()
		return Commit{}, nil
	case c.isKeyword("rollback"):
		c.next()
		return Rollback{}, nil
	case c.isKeyword("save"):
		c.next()
		if err := c.expectKeyword("to"); err != nil {
			return nil, err
		}
		path, err := parseStringLit(c)
		if err != nil {
			return nil, err
		}
		return Save{Path: path}, nil
	case c.isKeyword("load"):
		c.next()
		if err := c.expectKeyword("from"); err != nil {
			return nil, err
		}
		path, err := parseStringLit(c)
		if err != nil {
			return nil, err
		}
		return Load{Path: path}, nil
	default:
		return nil, fmt.Errorf("sqlish: unknown statement start %s", c.peek())
	}
}

// parseStringLit consumes a string literal.
func parseStringLit(c *cursor) (string, error) {
	t := c.peek()
	if t.kind != tokString {
		return "", fmt.Errorf("sqlish: expected a quoted path, got %s", t)
	}
	c.next()
	return t.text, nil
}

func parseCreate(c *cursor) (Stmt, error) {
	c.next() // CREATE
	switch {
	case c.acceptKeyword("domain"):
		return parseCreateDomain(c)
	case c.acceptKeyword("table"):
		return parseCreateTable(c)
	case c.acceptKeyword("join"):
		if err := c.expectKeyword("view"); err != nil {
			return nil, err
		}
		return parseCreateJoinView(c)
	case c.acceptKeyword("view"):
		return parseCreateView(c)
	case c.acceptKeyword("index"):
		if err := c.expectKeyword("on"); err != nil {
			return nil, err
		}
		table, err := c.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		attrs, err := parseIdentList(c)
		if err != nil {
			return nil, err
		}
		if len(attrs) != 1 {
			return nil, fmt.Errorf("sqlish: CREATE INDEX takes exactly one attribute")
		}
		return CreateIndex{Table: table, Attr: attrs[0]}, nil
	default:
		return nil, fmt.Errorf("sqlish: CREATE must be followed by DOMAIN, TABLE, VIEW, JOIN VIEW or INDEX, got %s", c.peek())
	}
}

func parseCreateDomain(c *cursor) (Stmt, error) {
	name, err := c.expectIdent("domain name")
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("as"); err != nil {
		return nil, err
	}
	out := CreateDomain{Name: name}
	switch {
	case c.acceptKeyword("string"):
		out.Kind = "string"
		vals, err := parseValueList(c)
		if err != nil {
			return nil, err
		}
		out.Values = vals
	case c.acceptKeyword("int"):
		out.Kind = "int"
		if c.acceptKeyword("range") {
			out.IsRange = true
			lo, err := parseIntLit(c)
			if err != nil {
				return nil, err
			}
			if err := c.expectKeyword("to"); err != nil {
				return nil, err
			}
			hi, err := parseIntLit(c)
			if err != nil {
				return nil, err
			}
			out.Lo, out.Hi = lo, hi
		} else {
			vals, err := parseValueList(c)
			if err != nil {
				return nil, err
			}
			out.Values = vals
		}
	case c.acceptKeyword("bool"):
		out.Kind = "bool"
	default:
		return nil, fmt.Errorf("sqlish: domain kind must be STRING, INT or BOOL, got %s", c.peek())
	}
	return out, nil
}

func parseIntLit(c *cursor) (int64, error) {
	t := c.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqlish: expected integer, got %s", t)
	}
	c.next()
	return strconv.ParseInt(t.text, 10, 64)
}

// parseValueList parses "( literal [, literal]* )".
func parseValueList(c *cursor) ([]value.Value, error) {
	if err := c.expectPunct("("); err != nil {
		return nil, err
	}
	var out []value.Value
	for {
		v, err := parseLiteral(c)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if c.acceptPunct(",") {
			continue
		}
		if err := c.expectPunct(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// parseLiteral parses a number, string or TRUE/FALSE.
func parseLiteral(c *cursor) (value.Value, error) {
	t := c.peek()
	switch {
	case t.kind == tokNumber:
		c.next()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("sqlish: bad number %q", t.text)
		}
		return value.NewInt(i), nil
	case t.kind == tokString:
		c.next()
		return value.NewString(t.text), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		c.next()
		return value.NewBool(true), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		c.next()
		return value.NewBool(false), nil
	default:
		return value.Value{}, fmt.Errorf("sqlish: expected a literal, got %s", t)
	}
}

func parseCreateTable(c *cursor) (Stmt, error) {
	name, err := c.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := c.expectPunct("("); err != nil {
		return nil, err
	}
	out := CreateTable{Name: name}
	for {
		switch {
		case c.acceptKeyword("primary"):
			if err := c.expectKeyword("key"); err != nil {
				return nil, err
			}
			attrs, err := parseIdentList(c)
			if err != nil {
				return nil, err
			}
			if out.Key != nil {
				return nil, fmt.Errorf("sqlish: duplicate PRIMARY KEY in %s", name)
			}
			out.Key = attrs
		case c.acceptKeyword("foreign"):
			if err := c.expectKeyword("key"); err != nil {
				return nil, err
			}
			attrs, err := parseIdentList(c)
			if err != nil {
				return nil, err
			}
			if err := c.expectKeyword("references"); err != nil {
				return nil, err
			}
			parent, err := c.expectIdent("referenced table")
			if err != nil {
				return nil, err
			}
			out.ForeignKeys = append(out.ForeignKeys, FKDef{Attrs: attrs, Parent: parent})
		default:
			col, err := c.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			dom, err := c.expectIdent("domain name")
			if err != nil {
				return nil, err
			}
			out.Cols = append(out.Cols, ColDef{Name: col, Domain: dom})
		}
		if c.acceptPunct(",") {
			continue
		}
		if err := c.expectPunct(")"); err != nil {
			return nil, err
		}
		break
	}
	if out.Key == nil {
		return nil, fmt.Errorf("sqlish: table %s needs a PRIMARY KEY", name)
	}
	return out, nil
}

// parseIdentList parses "( ident [, ident]* )".
func parseIdentList(c *cursor) ([]string, error) {
	if err := c.expectPunct("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := c.expectIdent("identifier")
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if c.acceptPunct(",") {
			continue
		}
		if err := c.expectPunct(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func parseCreateView(c *cursor) (Stmt, error) {
	name, err := c.expectIdent("view name")
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("as"); err != nil {
		return nil, err
	}
	if err := c.expectKeyword("select"); err != nil {
		return nil, err
	}
	out := CreateView{Name: name}
	if !c.acceptPunct("*") {
		for {
			col, err := c.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			out.Cols = append(out.Cols, col)
			if !c.acceptPunct(",") {
				break
			}
		}
	}
	if err := c.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := c.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	out.Table = table
	if c.acceptKeyword("where") {
		terms, err := parseWhereTerms(c)
		if err != nil {
			return nil, err
		}
		out.Where = terms
	}
	return out, nil
}

// parseWhereTerms parses "attr IN (v, ...)" or "attr = v", conjoined
// with AND.
func parseWhereTerms(c *cursor) ([]WhereTerm, error) {
	var out []WhereTerm
	for {
		attr, err := c.expectIdent("attribute")
		if err != nil {
			return nil, err
		}
		var vals []value.Value
		switch {
		case c.acceptKeyword("in"):
			vals, err = parseValueList(c)
			if err != nil {
				return nil, err
			}
		case c.acceptPunct("="):
			v, err := parseLiteral(c)
			if err != nil {
				return nil, err
			}
			vals = []value.Value{v}
		default:
			return nil, fmt.Errorf("sqlish: expected IN or = after %s, got %s", attr, c.peek())
		}
		out = append(out, WhereTerm{Attr: attr, Values: vals})
		if !c.acceptKeyword("and") {
			return out, nil
		}
	}
}

func parseCreateJoinView(c *cursor) (Stmt, error) {
	name, err := c.expectIdent("join view name")
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("root"); err != nil {
		return nil, err
	}
	root, err := c.expectIdent("root view name")
	if err != nil {
		return nil, err
	}
	out := CreateJoinView{Name: name, Root: root}
	if c.acceptKeyword("with") {
		for {
			owner, err := c.expectIdent("view name")
			if err != nil {
				return nil, err
			}
			attrs, err := parseIdentList(c)
			if err != nil {
				return nil, err
			}
			if err := c.expectKeyword("references"); err != nil {
				return nil, err
			}
			target, err := c.expectIdent("referenced view")
			if err != nil {
				return nil, err
			}
			out.Edges = append(out.Edges, JoinEdgeDef{View: owner, Attrs: attrs, Target: target})
			if !c.acceptPunct(",") {
				break
			}
		}
	}
	return out, nil
}

func parseInsert(c *cursor) (Stmt, error) {
	c.next() // INSERT
	if err := c.expectKeyword("into"); err != nil {
		return nil, err
	}
	target, err := c.expectIdent("target name")
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("values"); err != nil {
		return nil, err
	}
	vals, err := parseValueList(c)
	if err != nil {
		return nil, err
	}
	return Insert{Target: target, Values: vals}, nil
}

// parseEqTerms parses "attr = literal [AND ...]".
func parseEqTerms(c *cursor) ([]EqTerm, error) {
	var out []EqTerm
	for {
		attr, err := c.expectIdent("attribute")
		if err != nil {
			return nil, err
		}
		if err := c.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := parseLiteral(c)
		if err != nil {
			return nil, err
		}
		out = append(out, EqTerm{Attr: attr, Val: v})
		if !c.acceptKeyword("and") {
			return out, nil
		}
	}
}

func parseDelete(c *cursor) (Stmt, error) {
	c.next() // DELETE
	if err := c.expectKeyword("from"); err != nil {
		return nil, err
	}
	target, err := c.expectIdent("target name")
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("where"); err != nil {
		return nil, err
	}
	where, err := parseEqTerms(c)
	if err != nil {
		return nil, err
	}
	return Delete{Target: target, Where: where}, nil
}

func parseUpdate(c *cursor) (Stmt, error) {
	c.next() // UPDATE
	target, err := c.expectIdent("target name")
	if err != nil {
		return nil, err
	}
	if err := c.expectKeyword("set"); err != nil {
		return nil, err
	}
	var sets []EqTerm
	for {
		attr, err := c.expectIdent("attribute")
		if err != nil {
			return nil, err
		}
		if err := c.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := parseLiteral(c)
		if err != nil {
			return nil, err
		}
		sets = append(sets, EqTerm{Attr: attr, Val: v})
		if !c.acceptPunct(",") {
			break
		}
	}
	if err := c.expectKeyword("where"); err != nil {
		return nil, err
	}
	where, err := parseEqTerms(c)
	if err != nil {
		return nil, err
	}
	return Update{Target: target, Sets: sets, Where: where}, nil
}

func parseSelect(c *cursor) (Stmt, error) {
	c.next() // SELECT
	var cols []string
	if !c.acceptPunct("*") {
		for {
			col, err := c.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			cols = append(cols, col)
			if !c.acceptPunct(",") {
				break
			}
		}
	}
	if err := c.expectKeyword("from"); err != nil {
		return nil, err
	}
	target, err := c.expectIdent("target name")
	if err != nil {
		return nil, err
	}
	out := Select{Target: target, Cols: cols}
	if c.acceptKeyword("where") {
		where, err := parseEqTerms(c)
		if err != nil {
			return nil, err
		}
		out.Where = where
	}
	return out, nil
}

func parseShow(c *cursor) (Stmt, error) {
	c.next() // SHOW
	switch {
	case c.acceptKeyword("tables"):
		return Show{What: "tables"}, nil
	case c.acceptKeyword("views"):
		return Show{What: "views"}, nil
	case c.acceptKeyword("policies"):
		return Show{What: "policies"}, nil
	case c.acceptKeyword("candidates"):
		if err := c.expectKeyword("for"); err != nil {
			return nil, err
		}
		inner, err := parseStmt(c)
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case Insert, Delete, Update:
			return ShowCandidates{Inner: inner}, nil
		default:
			return nil, fmt.Errorf("sqlish: SHOW CANDIDATES FOR takes INSERT, DELETE or UPDATE")
		}
	case c.acceptKeyword("effects"):
		if err := c.expectKeyword("for"); err != nil {
			return nil, err
		}
		inner, err := parseStmt(c)
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case Insert, Delete, Update:
			return ShowEffects{Inner: inner}, nil
		default:
			return nil, fmt.Errorf("sqlish: SHOW EFFECTS FOR takes INSERT, DELETE or UPDATE")
		}
	default:
		return nil, fmt.Errorf("sqlish: SHOW must be followed by TABLES, VIEWS, POLICIES, CANDIDATES or EFFECTS, got %s", c.peek())
	}
}

func parseSet(c *cursor) (Stmt, error) {
	c.next() // SET
	switch {
	case c.acceptKeyword("policy"):
		target, err := c.expectIdent("view name")
		if err != nil {
			return nil, err
		}
		if err := c.expectKeyword("prefer"); err != nil {
			return nil, err
		}
		var prefer []string
		for {
			t := c.peek()
			if t.kind != tokString {
				return nil, fmt.Errorf("sqlish: class names are string literals like 'D-1', got %s", t)
			}
			c.next()
			prefer = append(prefer, t.text)
			if !c.acceptPunct(",") {
				break
			}
		}
		return SetPolicy{Target: target, Prefer: prefer}, nil
	case c.acceptKeyword("default"):
		target, err := c.expectIdent("view name")
		if err != nil {
			return nil, err
		}
		if err := c.expectPunct("."); err != nil {
			return nil, err
		}
		attr, err := c.expectIdent("attribute")
		if err != nil {
			return nil, err
		}
		if err := c.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := parseLiteral(c)
		if err != nil {
			return nil, err
		}
		return SetDefault{Target: target, Attr: attr, Val: v}, nil
	default:
		return nil, fmt.Errorf("sqlish: SET must be followed by POLICY or DEFAULT, got %s", c.peek())
	}
}
