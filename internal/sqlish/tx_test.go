package sqlish

import (
	"strings"
	"testing"

	"viewupdate/internal/persist"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/wal"
)

// newEmpSession builds a session with the EMP schema and the paper's
// New York view.
func newEmpSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession()
	if _, err := s.ExecScript(`
		CREATE DOMAIN NoDom AS INT RANGE 1 TO 30;
		CREATE DOMAIN NameDom AS STRING ('Alice', 'Bob', 'Carol', 'Susan');
		CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
		CREATE DOMAIN TeamDom AS BOOL;
		CREATE TABLE EMP (EmpNo NoDom, Name NameDom, Location LocDom, Baseball TeamDom, PRIMARY KEY (EmpNo));
		CREATE VIEW NY AS SELECT * FROM EMP WHERE Location = 'New York';
		INSERT INTO EMP VALUES (17, 'Susan', 'New York', true);
	`); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTransactionCommit(t *testing.T) {
	s := newEmpSession(t)
	for _, stmt := range []string{
		"BEGIN",
		"INSERT INTO EMP VALUES (3, 'Alice', 'New York', false)",
		"INSERT INTO EMP VALUES (5, 'Bob', 'San Francisco', false)",
	} {
		if _, err := s.ExecLine(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if !s.InTx() {
		t.Fatal("transaction should be open")
	}
	// The staged rows are visible to statements...
	out, err := s.ExecLine("SELECT * FROM EMP")
	if err != nil || !strings.Contains(out, "(3 rows)") {
		t.Fatalf("in-tx select: %q, %v", out, err)
	}
	// ...but the live database is untouched until COMMIT.
	if s.DB().Len("EMP") != 1 {
		t.Fatal("transaction leaked into the live database")
	}
	out, err = s.ExecLine("COMMIT")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "committed 2 operation(s)") {
		t.Fatalf("commit output: %q", out)
	}
	if s.InTx() || s.DB().Len("EMP") != 3 {
		t.Fatal("commit did not land")
	}
	// The journal holds the inner statements, not BEGIN/COMMIT.
	j := strings.Join(s.Journal(), "\n")
	if !strings.Contains(j, "INSERT INTO EMP VALUES (3") || strings.Contains(j, "BEGIN") || strings.Contains(j, "COMMIT") {
		t.Fatalf("journal wrong:\n%s", j)
	}
}

func TestTransactionRollback(t *testing.T) {
	s := newEmpSession(t)
	before := len(s.Journal())
	for _, stmt := range []string{
		"BEGIN",
		"INSERT INTO EMP VALUES (3, 'Alice', 'New York', false)",
		"DELETE FROM NY WHERE EmpNo = 17",
		"ROLLBACK",
	} {
		if _, err := s.ExecLine(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if s.InTx() {
		t.Fatal("rollback left the transaction open")
	}
	if s.DB().Len("EMP") != 1 {
		t.Fatal("rollback did not discard the staged changes")
	}
	if len(s.Journal()) != before {
		t.Fatal("rolled-back statements reached the journal")
	}
}

func TestTransactionViewUpdateStaged(t *testing.T) {
	s := newEmpSession(t)
	for _, stmt := range []string{
		"BEGIN",
		"UPDATE NY SET Name = 'Carol' WHERE EmpNo = 17",
	} {
		if _, err := s.ExecLine(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	// Live database still shows Susan.
	if got := s.DB().Tuples("EMP")[0].MustGet("Name"); got != value.NewString("Susan") {
		t.Fatalf("live db changed mid-tx: %v", got)
	}
	if _, err := s.ExecLine("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if got := s.DB().Tuples("EMP")[0].MustGet("Name"); got != value.NewString("Carol") {
		t.Fatalf("committed view update missing: %v", got)
	}
}

func TestTransactionRestrictions(t *testing.T) {
	s := newEmpSession(t)
	if _, err := s.ExecLine("COMMIT"); err == nil {
		t.Fatal("COMMIT without BEGIN should fail")
	}
	if _, err := s.ExecLine("ROLLBACK"); err == nil {
		t.Fatal("ROLLBACK without BEGIN should fail")
	}
	if _, err := s.ExecLine("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecLine("BEGIN"); err == nil {
		t.Fatal("nested BEGIN should fail")
	}
	for _, ddl := range []string{
		"CREATE DOMAIN X AS BOOL",
		"CREATE TABLE T2 (A NoDom, PRIMARY KEY (A))",
		"CREATE VIEW V2 AS SELECT * FROM EMP",
		"SET POLICY NY PREFER 'D-1'",
		"SAVE TO 'x.sql'",
	} {
		if _, err := s.ExecLine(ddl); err == nil || !strings.Contains(err.Error(), "transaction") {
			t.Fatalf("%s inside tx: err = %v, want transaction restriction", ddl, err)
		}
	}
	// Reads stay allowed.
	if _, err := s.ExecLine("SELECT * FROM NY"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecLine("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

// TestTransactionCommitConflict stages changes that no longer apply to
// the live database: the commit fails atomically, the transaction
// stays open for ROLLBACK, and the live database is unchanged.
func TestTransactionCommitConflict(t *testing.T) {
	s := newEmpSession(t)
	if _, err := s.ExecLine("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecLine("INSERT INTO EMP VALUES (3, 'Alice', 'New York', false)"); err != nil {
		t.Fatal(err)
	}
	// Behind the transaction's back, take EmpNo 3 with another name.
	rel := s.DB().Schema().Relation("EMP")
	other, err := tuple.New(rel,
		value.NewInt(3), value.NewString("Bob"),
		value.NewString("San Francisco"), value.NewBool(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DB().Apply(update.NewTranslation(update.NewInsert(other))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecLine("COMMIT"); err == nil {
		t.Fatal("conflicting commit should fail")
	}
	if !s.InTx() {
		t.Fatal("failed commit should keep the transaction open")
	}
	if s.DB().Len("EMP") != 2 {
		t.Fatal("failed commit changed the live database")
	}
	if _, err := s.ExecLine("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

// TestTransactionDurableCommit runs transactions against an attached
// store and checks recovery sees exactly the committed ones.
func TestTransactionDurableCommit(t *testing.T) {
	dir := t.TempDir()
	s := newEmpSession(t)
	st, err := persist.Create(dir, s.DB(), persist.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		"BEGIN",
		"INSERT INTO EMP VALUES (3, 'Alice', 'New York', false)",
		"INSERT INTO EMP VALUES (5, 'Bob', 'San Francisco', false)",
		"COMMIT",
		"BEGIN",
		"INSERT INTO EMP VALUES (8, 'Carol', 'New York', true)",
		"ROLLBACK",
		"DELETE FROM NY WHERE EmpNo = 3", // non-tx durable view update
	} {
		if _, err := s.ExecLine(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	// Two durable translations: the committed tx diff and the delete.
	if rec.Report().Replayed != 2 {
		t.Fatalf("report = %s, want 2 replayed", rec.Report())
	}
	db := rec.DB()
	if db.Len("EMP") != 2 {
		t.Fatalf("recovered EMP has %d tuples, want 2 (17 and 5)", db.Len("EMP"))
	}
	for _, tp := range db.Tuples("EMP") {
		no := tp.MustGet("EmpNo")
		if no != value.NewInt(17) && no != value.NewInt(5) {
			t.Fatalf("unexpected recovered tuple %s", tp)
		}
	}
}

// TestSessionAdoptsRecoveredStore checks the recovered-store path: a
// fresh session attaches a store opened from disk, adopts its schema,
// and keeps executing statements against the recovered data.
func TestSessionAdoptsRecoveredStore(t *testing.T) {
	dir := t.TempDir()
	s := newEmpSession(t)
	st, err := persist.Create(dir, s.DB(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecLine("INSERT INTO EMP VALUES (3, 'Alice', 'New York', false)"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	s2 := NewSession()
	if err := s2.AttachStore(rec); err != nil {
		t.Fatal(err)
	}
	out, err := s2.ExecLine("SELECT * FROM EMP")
	if err != nil || !strings.Contains(out, "(2 rows)") {
		t.Fatalf("recovered select: %q, %v", out, err)
	}
	// The adopted schema accepts further durable writes, and domains
	// were re-registered so new tables can reuse them.
	if _, err := s2.ExecLine("INSERT INTO EMP VALUES (5, 'Bob', 'San Francisco', false)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ExecLine("CREATE TABLE T2 (A NoDom, PRIMARY KEY (A))"); err != nil {
		t.Fatal(err)
	}
	// A non-empty session must refuse to adopt a foreign database.
	s3 := newEmpSession(t)
	if err := s3.AttachStore(rec); err == nil {
		t.Fatal("non-empty session adopted a recovered store")
	}
}
