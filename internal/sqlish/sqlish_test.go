package sqlish

import (
	"errors"
	"strings"
	"testing"

	"viewupdate/internal/value"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("CREATE TABLE T (A B, -- comment\n 'str''ing' 42 -7 );")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"CREATE", "TABLE", "T", "(", "A", "B", ",", "str'ing", "42", "-7", ")", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[7] != tokString || kinds[8] != tokNumber {
		t.Fatalf("kinds wrong: %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "@", "- x"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		}
	}
}

func TestParseCreateDomain(t *testing.T) {
	s, err := Parse("CREATE DOMAIN D AS STRING ('a', 'b');")
	if err != nil {
		t.Fatal(err)
	}
	d := s.(CreateDomain)
	if d.Name != "D" || d.Kind != "string" || len(d.Values) != 2 {
		t.Fatalf("parsed %+v", d)
	}
	s, err = Parse("create domain N as int range 1 to 10")
	if err != nil {
		t.Fatal(err)
	}
	n := s.(CreateDomain)
	if !n.IsRange || n.Lo != 1 || n.Hi != 10 {
		t.Fatalf("parsed %+v", n)
	}
	s, err = Parse("CREATE DOMAIN B AS BOOL")
	if err != nil {
		t.Fatal(err)
	}
	if s.(CreateDomain).Kind != "bool" {
		t.Fatal("bool kind")
	}
	s, err = Parse("CREATE DOMAIN M AS INT (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(CreateDomain); got.IsRange || len(got.Values) != 3 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestParseCreateTable(t *testing.T) {
	s, err := Parse(`CREATE TABLE CXD (C CDom, X ADom, D DDom,
		PRIMARY KEY (C), FOREIGN KEY (X) REFERENCES AB)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.(CreateTable)
	if ct.Name != "CXD" || len(ct.Cols) != 3 || len(ct.Key) != 1 || len(ct.ForeignKeys) != 1 {
		t.Fatalf("parsed %+v", ct)
	}
	if ct.ForeignKeys[0].Parent != "AB" || ct.ForeignKeys[0].Attrs[0] != "X" {
		t.Fatalf("fk wrong: %+v", ct.ForeignKeys)
	}
	if _, err := Parse("CREATE TABLE T (A D)"); err == nil {
		t.Fatal("missing primary key should fail")
	}
}

func TestParseCreateView(t *testing.T) {
	s, err := Parse(`CREATE VIEW V AS SELECT EmpNo, Name FROM EMP
		WHERE Location IN ('NY', 'SF') AND Baseball = true`)
	if err != nil {
		t.Fatal(err)
	}
	cv := s.(CreateView)
	if cv.Name != "V" || cv.Table != "EMP" || len(cv.Cols) != 2 || len(cv.Where) != 2 {
		t.Fatalf("parsed %+v", cv)
	}
	if len(cv.Where[0].Values) != 2 || cv.Where[1].Values[0] != value.NewBool(true) {
		t.Fatalf("where wrong: %+v", cv.Where)
	}
	s, err = Parse("CREATE VIEW W AS SELECT * FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if s.(CreateView).Cols != nil {
		t.Fatal("* should give nil cols")
	}
}

func TestParseCreateJoinView(t *testing.T) {
	s, err := Parse("CREATE JOIN VIEW J ROOT CXDV WITH CXDV (X) REFERENCES ABV")
	if err != nil {
		t.Fatal(err)
	}
	jv := s.(CreateJoinView)
	if jv.Name != "J" || jv.Root != "CXDV" || len(jv.Edges) != 1 {
		t.Fatalf("parsed %+v", jv)
	}
}

func TestParseDML(t *testing.T) {
	s, err := Parse("INSERT INTO V VALUES (1, 'Ada', true)")
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(Insert)
	if ins.Target != "V" || len(ins.Values) != 3 {
		t.Fatalf("parsed %+v", ins)
	}
	s, err = Parse("DELETE FROM V WHERE EmpNo = 1 AND Name = 'Ada'")
	if err != nil {
		t.Fatal(err)
	}
	del := s.(Delete)
	if del.Target != "V" || len(del.Where) != 2 {
		t.Fatalf("parsed %+v", del)
	}
	s, err = Parse("UPDATE V SET Name = 'Ben', Loc = 'NY' WHERE EmpNo = 1")
	if err != nil {
		t.Fatal(err)
	}
	up := s.(Update)
	if up.Target != "V" || len(up.Sets) != 2 || len(up.Where) != 1 {
		t.Fatalf("parsed %+v", up)
	}
	s, err = Parse("SELECT * FROM V WHERE A = 1")
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(Select)
	if sel.Target != "V" || len(sel.Where) != 1 {
		t.Fatalf("parsed %+v", sel)
	}
}

func TestParseAdmin(t *testing.T) {
	s, err := Parse("SHOW CANDIDATES FOR DELETE FROM V WHERE K = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(ShowCandidates).Inner.(Delete); !ok {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := Parse("SHOW CANDIDATES FOR SELECT * FROM V"); err == nil {
		t.Fatal("candidates for select should fail")
	}
	s, err = Parse("SET POLICY V PREFER 'D-1', 'D-2'")
	if err != nil {
		t.Fatal(err)
	}
	sp := s.(SetPolicy)
	if sp.Target != "V" || len(sp.Prefer) != 2 || sp.Prefer[0] != "D-1" {
		t.Fatalf("parsed %+v", sp)
	}
	s, err = Parse("SET DEFAULT V.Status = 'active'")
	if err != nil {
		t.Fatal(err)
	}
	sd := s.(SetDefault)
	if sd.Target != "V" || sd.Attr != "Status" || sd.Val != value.NewString("active") {
		t.Fatalf("parsed %+v", sd)
	}
	for _, what := range []string{"TABLES", "VIEWS", "POLICIES"} {
		if _, err := Parse("SHOW " + what); err != nil {
			t.Fatalf("SHOW %s: %v", what, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOO BAR",
		"CREATE NONSENSE X",
		"INSERT INTO V (1)",
		"DELETE FROM V",
		"UPDATE V SET WHERE A = 1",
		"SELECT FROM V",
		"SET POLICY V PREFER D-1", // class must be quoted
		"INSERT INTO V VALUES (1) extra",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE DOMAIN D AS BOOL;
		-- a comment
		SHOW TABLES;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("want 2 statements, got %d", len(stmts))
	}
	if _, err := ParseScript("SHOW TABLES SHOW VIEWS"); err == nil {
		t.Fatal("missing semicolon should fail")
	}
}

// empScript builds the paper's EMP scenario through the SQL surface.
const empScript = `
CREATE DOMAIN EmpNoDom AS INT RANGE 1 TO 20;
CREATE DOMAIN NameDom AS STRING ('Susan', 'Frank', 'Alice', 'Bob', 'Carol');
CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
CREATE DOMAIN TeamDom AS BOOL;
CREATE TABLE EMP (EmpNo EmpNoDom, Name NameDom, Location LocDom, Baseball TeamDom,
                  PRIMARY KEY (EmpNo));
INSERT INTO EMP VALUES (17, 'Susan', 'New York', true);
INSERT INTO EMP VALUES (14, 'Frank', 'San Francisco', true);
INSERT INTO EMP VALUES (3, 'Alice', 'New York', false);
CREATE VIEW ViewP AS SELECT * FROM EMP WHERE Location = 'New York';
CREATE VIEW ViewB AS SELECT * FROM EMP WHERE Baseball = true;
SET POLICY ViewP PREFER 'D-1';
SET POLICY ViewB PREFER 'D-2';
`

func TestSessionEmpScenario(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(empScript); err != nil {
		t.Fatal(err)
	}

	out, err := s.ExecLine("SELECT * FROM ViewP")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Fatalf("ViewP should have 2 rows:\n%s", out)
	}

	// Candidates before deciding.
	out, err = s.ExecLine("SHOW CANDIDATES FOR DELETE FROM ViewP WHERE EmpNo = 17")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "D-1") || !strings.Contains(out, "D-2") {
		t.Fatalf("candidates missing classes:\n%s", out)
	}

	// Susan's deletion really deletes.
	out, err = s.ExecLine("DELETE FROM ViewP WHERE EmpNo = 17")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "D-1") || !strings.Contains(out, "DELETE") {
		t.Fatalf("Susan's delete wrong:\n%s", out)
	}
	out, err = s.ExecLine("SELECT * FROM EMP WHERE EmpNo = 17")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(0 rows)") {
		t.Fatalf("employee 17 should be gone:\n%s", out)
	}

	// Frank's deletion flips the attribute.
	out, err = s.ExecLine("DELETE FROM ViewB WHERE EmpNo = 14")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "D-2") || !strings.Contains(out, "REPLACE") {
		t.Fatalf("Frank's delete wrong:\n%s", out)
	}
	out, err = s.ExecLine("SELECT * FROM EMP WHERE EmpNo = 14")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "false") || !strings.Contains(out, "(1 rows)") {
		t.Fatalf("employee 14 should remain off the team:\n%s", out)
	}

	// View update through UPDATE.
	out, err = s.ExecLine("UPDATE ViewP SET Name = 'Carol' WHERE EmpNo = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "R-1") {
		t.Fatalf("same-key update should be R-1:\n%s", out)
	}
}

func TestSessionJoinView(t *testing.T) {
	s := NewSession()
	script := `
CREATE DOMAIN ADom AS STRING ('a', 'a1', 'a2');
CREATE DOMAIN BDom AS INT RANGE 1 TO 9;
CREATE DOMAIN CDom AS STRING ('c1', 'c2', 'c3');
CREATE DOMAIN DDom AS INT RANGE 1 TO 9;
CREATE TABLE AB (A ADom, B BDom, PRIMARY KEY (A));
CREATE TABLE CXD (C CDom, X ADom, D DDom, PRIMARY KEY (C),
                  FOREIGN KEY (X) REFERENCES AB);
INSERT INTO AB VALUES ('a', 1);
INSERT INTO CXD VALUES ('c1', 'a', 3);
CREATE VIEW ABV AS SELECT * FROM AB;
CREATE VIEW CXDV AS SELECT * FROM CXD;
CREATE JOIN VIEW J ROOT CXDV WITH CXDV (X) REFERENCES ABV;
`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	out, err := s.ExecLine("SELECT * FROM J")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(1 rows)") {
		t.Fatalf("join view should have 1 row:\n%s", out)
	}
	// Insert a join row referencing a new parent: SPJ-I inserts both.
	out, err = s.ExecLine("INSERT INTO J VALUES ('c2', 'a1', 4, 'a1', 2)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SPJ-I") {
		t.Fatalf("join insert should use SPJ-I:\n%s", out)
	}
	out, err = s.ExecLine("SELECT * FROM AB")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Fatalf("parent should have been inserted:\n%s", out)
	}
	// Dangling base insert still refused by the storage layer.
	if _, err := s.ExecLine("INSERT INTO CXD VALUES ('c3', 'a2', 5)"); err == nil {
		t.Fatal("dangling foreign key should fail")
	}
	// Join-view delete touches only the root.
	out, err = s.ExecLine("DELETE FROM J WHERE C = 'c2'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SPJ-D") {
		t.Fatalf("join delete should use SPJ-D:\n%s", out)
	}
	out, err = s.ExecLine("SELECT * FROM AB")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Fatalf("SPJ-D must not touch parents:\n%s", out)
	}
}

func TestSessionDefaultsAndShow(t *testing.T) {
	s := NewSession()
	script := `
CREATE DOMAIN IdDom AS INT RANGE 1 TO 9;
CREATE DOMAIN StDom AS STRING ('active', 'archived');
CREATE TABLE STAFF (Id IdDom, Status StDom, PRIMARY KEY (Id));
CREATE VIEW Pub AS SELECT Id FROM STAFF WHERE Status IN ('active', 'archived');
SET DEFAULT Pub.Status = 'archived';
`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	out, err := s.ExecLine("INSERT INTO Pub VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'archived'") {
		t.Fatalf("default should pick archived:\n%s", out)
	}
	out, err = s.ExecLine("SHOW POLICIES")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Pub.Status") {
		t.Fatalf("SHOW POLICIES wrong:\n%s", out)
	}
	out, err = s.ExecLine("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "STAFF") {
		t.Fatalf("SHOW TABLES wrong:\n%s", out)
	}
	out, err = s.ExecLine("SHOW VIEWS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Pub") {
		t.Fatalf("SHOW VIEWS wrong:\n%s", out)
	}
}

func TestSessionErrors(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(empScript); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"CREATE DOMAIN LocDom AS BOOL",                       // duplicate domain
		"CREATE TABLE T (A NoSuchDom, PRIMARY KEY (A))",      // unknown domain
		"CREATE VIEW ViewP AS SELECT * FROM EMP",             // duplicate view
		"CREATE VIEW W AS SELECT * FROM NOPE",                // unknown table
		"INSERT INTO NOPE VALUES (1)",                        // unknown target
		"INSERT INTO ViewP VALUES (1)",                       // arity
		"DELETE FROM ViewP WHERE EmpNo = 99",                 // no match
		"DELETE FROM ViewP WHERE Location = 'New York'",      // ambiguous (2 rows)
		"UPDATE ViewP SET Location = 'Mars' WHERE EmpNo = 3", // bad value
		"SET POLICY NOPE PREFER 'D-1'",
		"SET DEFAULT NOPE.A = 1",
	} {
		if _, err := s.ExecLine(bad); err == nil {
			t.Errorf("ExecLine(%q) should fail", bad)
		}
	}
}

// TestExecScriptSkipExisting: re-running a DDL script over a session
// that already defines its objects skips the duplicates instead of
// aborting — the idempotent boot path for a server restart.
func TestExecScriptSkipExisting(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(empScript); err != nil {
		t.Fatal(err)
	}
	ddl := `
CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
CREATE TABLE EXTRA (EmpNo EmpNoDom, PRIMARY KEY (EmpNo));
CREATE VIEW ViewP AS SELECT * FROM EMP WHERE Location = 'New York';
`
	_, skipped, err := s.ExecScriptSkipExisting(ddl)
	if err != nil {
		t.Fatalf("ExecScriptSkipExisting: %v", err)
	}
	if skipped != 2 { // LocDom and ViewP exist; EXTRA is new
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if s.sch.Relation("EXTRA") == nil {
		t.Fatal("new table EXTRA should have been created")
	}
	// Re-running the whole thing skips everything.
	if _, skipped, err = s.ExecScriptSkipExisting(ddl); err != nil || skipped != 3 {
		t.Fatalf("second run: skipped = %d, err = %v; want 3, nil", skipped, err)
	}
	// Plain ExecScript still hard-fails, with a matchable sentinel.
	_, err = s.ExecScript("CREATE TABLE EXTRA (EmpNo EmpNoDom, PRIMARY KEY (EmpNo));")
	if !errors.Is(err, ErrExists) {
		t.Fatalf("ExecScript duplicate table: err = %v, want ErrExists", err)
	}
	// Other failures are not skipped.
	if _, _, err = s.ExecScriptSkipExisting("CREATE TABLE T (A NoSuchDom, PRIMARY KEY (A));"); err == nil {
		t.Fatal("unknown domain must still fail")
	}
}

// TestSessionSideEffectWarning: join-view updates that change sibling
// rows surface a side-effect warning.
func TestSessionSideEffectWarning(t *testing.T) {
	s := NewSession()
	script := `
CREATE DOMAIN ADom AS STRING ('a', 'a1');
CREATE DOMAIN BDom AS INT RANGE 1 TO 9;
CREATE DOMAIN CDom AS STRING ('c1', 'c2');
CREATE DOMAIN DDom AS INT RANGE 1 TO 9;
CREATE TABLE AB (A ADom, B BDom, PRIMARY KEY (A));
CREATE TABLE CXD (C CDom, X ADom, D DDom, PRIMARY KEY (C),
                  FOREIGN KEY (X) REFERENCES AB);
INSERT INTO AB VALUES ('a', 1);
INSERT INTO CXD VALUES ('c1', 'a', 3);
CREATE VIEW ABV AS SELECT * FROM AB;
CREATE VIEW CXDV AS SELECT * FROM CXD;
CREATE JOIN VIEW J ROOT CXDV WITH CXDV (X) REFERENCES ABV;
`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	// c2 claims (a, 9) while AB holds (a, 1): rewriting the shared
	// parent changes c1's row too.
	out, err := s.ExecLine("INSERT INTO J VALUES ('c2', 'a', 4, 'a', 9)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warning") || !strings.Contains(out, "side effects") {
		t.Fatalf("missing side-effect warning:\n%s", out)
	}
	// A root-only update carries no warning.
	out, err = s.ExecLine("DELETE FROM J WHERE C = 'c2'")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "warning") {
		t.Fatalf("unexpected warning:\n%s", out)
	}
}

// TestSaveLoadJournal: SAVE TO writes a replayable script; LOAD FROM
// rebuilds the session state.
func TestSaveLoadJournal(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/session.sql"

	s := NewSession()
	if _, err := s.ExecScript(empScript); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecLine("DELETE FROM ViewP WHERE EmpNo = 17"); err != nil {
		t.Fatal(err)
	}
	// Reads are not journaled.
	if _, err := s.ExecLine("SELECT * FROM EMP"); err != nil {
		t.Fatal(err)
	}
	nStmts := len(s.Journal())
	out, err := s.ExecLine("SAVE TO '" + path + "'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "saved") {
		t.Fatalf("save output: %s", out)
	}
	if len(s.Journal()) != nStmts {
		t.Fatal("SAVE must not journal itself")
	}

	// Replay into a fresh session.
	s2 := NewSession()
	if _, err := s2.ExecLine("LOAD FROM '" + path + "'"); err != nil {
		t.Fatal(err)
	}
	a, err := s.ExecLine("SELECT * FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.ExecLine("SELECT * FROM EMP")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("replayed state differs:\n%s\nvs\n%s", a, b)
	}
	// Policies replayed too: Frank's delete still flips.
	out, err = s2.ExecLine("DELETE FROM ViewB WHERE EmpNo = 14")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "D-2") {
		t.Fatalf("policy lost on replay:\n%s", out)
	}
	// Errors.
	if _, err := s2.ExecLine("LOAD FROM '" + dir + "/missing.sql'"); err == nil {
		t.Fatal("missing file should fail")
	}
}

// TestShowEffects previews a translation and its side effects without
// applying anything.
func TestShowEffects(t *testing.T) {
	s := NewSession()
	script := `
CREATE DOMAIN ADom AS STRING ('a', 'a1');
CREATE DOMAIN BDom AS INT RANGE 1 TO 9;
CREATE DOMAIN CDom AS STRING ('c1', 'c2');
CREATE DOMAIN DDom AS INT RANGE 1 TO 9;
CREATE TABLE AB (A ADom, B BDom, PRIMARY KEY (A));
CREATE TABLE CXD (C CDom, X ADom, D DDom, PRIMARY KEY (C),
                  FOREIGN KEY (X) REFERENCES AB);
INSERT INTO AB VALUES ('a', 1);
INSERT INTO CXD VALUES ('c1', 'a', 3);
CREATE VIEW ABV AS SELECT * FROM AB;
CREATE VIEW CXDV AS SELECT * FROM CXD;
CREATE JOIN VIEW J ROOT CXDV WITH CXDV (X) REFERENCES ABV;
`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	out, err := s.ExecLine("SHOW EFFECTS FOR INSERT INTO J VALUES ('c2', 'a', 4, 'a', 9)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "would translate") || !strings.Contains(out, "side effects") {
		t.Fatalf("missing preview:\n%s", out)
	}
	if !strings.Contains(out, "- J(") || !strings.Contains(out, "+ J(") {
		t.Fatalf("missing changed rows:\n%s", out)
	}
	// Nothing was applied.
	cnt, err := s.ExecLine("SELECT * FROM CXD")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cnt, "(1 rows)") {
		t.Fatalf("SHOW EFFECTS must not apply:\n%s", cnt)
	}
	// Invalid inner kind rejected at parse time.
	if _, err := Parse("SHOW EFFECTS FOR SELECT * FROM J"); err == nil {
		t.Fatal("effects for select should fail")
	}
}

func TestCreateIndexStatement(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(empScript); err != nil {
		t.Fatal(err)
	}
	out, err := s.ExecLine("CREATE INDEX ON EMP (Location)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "index on EMP(Location)") {
		t.Fatalf("output: %s", out)
	}
	if !s.DB().HasIndex("EMP", "Location") {
		t.Fatal("index missing")
	}
	// The view still answers identically.
	got, err := s.ExecLine("SELECT * FROM ViewP")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "(2 rows)") {
		t.Fatalf("indexed view wrong:\n%s", got)
	}
	// Errors.
	if _, err := s.ExecLine("CREATE INDEX ON NOPE (X)"); err == nil {
		t.Fatal("unknown table should fail")
	}
	if _, err := s.ExecLine("CREATE INDEX ON EMP (Nope)"); err == nil {
		t.Fatal("unknown attribute should fail")
	}
	if _, err := Parse("CREATE INDEX ON EMP (A, B)"); err == nil {
		t.Fatal("multi-attribute index should fail to parse")
	}
}

func TestSelectColumnList(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(empScript); err != nil {
		t.Fatal(err)
	}
	out, err := s.ExecLine("SELECT Name, Location FROM EMP WHERE EmpNo = 17")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Name | Location") || !strings.Contains(out, "'Susan' | 'New York'") {
		t.Fatalf("projected select wrong:\n%s", out)
	}
	if strings.Contains(out, "Baseball") {
		t.Fatalf("unselected column leaked:\n%s", out)
	}
	if _, err := s.ExecLine("SELECT Nope FROM EMP"); err == nil {
		t.Fatal("unknown column should fail")
	}
}

// TestSessionTableDML covers direct base-table updates and their error
// paths.
func TestSessionTableDML(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecScript(empScript); err != nil {
		t.Fatal(err)
	}
	// Base-table update.
	out, err := s.ExecLine("UPDATE EMP SET Location = 'San Francisco' WHERE EmpNo = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "replaced") {
		t.Fatalf("table update output: %s", out)
	}
	// Base-table delete needs the employee off the views first? No —
	// direct table ops bypass translators entirely.
	out, err = s.ExecLine("DELETE FROM EMP WHERE EmpNo = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deleted") {
		t.Fatalf("table delete output: %s", out)
	}
	// Errors: absent row, ambiguous row, missing where.
	if _, err := s.ExecLine("DELETE FROM EMP WHERE EmpNo = 99"); err == nil {
		t.Fatal("absent row should fail")
	}
	if _, err := s.ExecLine("UPDATE EMP SET Baseball = false WHERE Baseball = true"); err == nil {
		t.Fatal("ambiguous table update should fail")
	}
	if _, err := Parse("DELETE FROM EMP"); err == nil {
		t.Fatal("missing WHERE should fail at parse")
	}
	// Unknown SHOW target through Exec directly.
	if _, err := s.Exec(Show{What: "bogus"}); err == nil {
		t.Fatal("unknown show target should fail")
	}
	// Unsupported statement type through Exec directly.
	if _, err := s.Exec(nil); err == nil {
		t.Fatal("nil statement should fail")
	}
}

// TestSessionShowCandidatesUnknownView covers buildRequest errors.
func TestSessionShowCandidatesUnknownView(t *testing.T) {
	s := NewSession()
	if _, err := s.ExecLine("SHOW CANDIDATES FOR DELETE FROM Nope WHERE A = 1"); err == nil {
		t.Fatal("unknown view should fail")
	}
	if _, err := s.ExecLine("SHOW EFFECTS FOR DELETE FROM Nope WHERE A = 1"); err == nil {
		t.Fatal("unknown view should fail")
	}
}
