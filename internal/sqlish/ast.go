package sqlish

import (
	"viewupdate/internal/value"
)

// A Stmt is one parsed statement.
type Stmt interface{ stmt() }

// CreateDomain declares a finite domain.
//
//	CREATE DOMAIN LocDom AS STRING ('New York', 'San Francisco');
//	CREATE DOMAIN NoDom AS INT RANGE 1 TO 100;
//	CREATE DOMAIN SmallDom AS INT (1, 2, 3);
//	CREATE DOMAIN TeamDom AS BOOL;
type CreateDomain struct {
	Name    string
	Kind    string // "string", "int", "bool"
	Values  []value.Value
	IsRange bool
	Lo, Hi  int64
}

func (CreateDomain) stmt() {}

// ColDef is one column of a CREATE TABLE.
type ColDef struct {
	Name   string
	Domain string
}

// FKDef is a FOREIGN KEY clause: attrs reference the parent's key.
type FKDef struct {
	Attrs  []string
	Parent string
}

// CreateTable declares a base relation.
//
//	CREATE TABLE EMP (EmpNo NoDom, Name NameDom, PRIMARY KEY (EmpNo));
//	CREATE TABLE CXD (C CDom, X ADom, D DDom,
//	                  PRIMARY KEY (C), FOREIGN KEY (X) REFERENCES AB);
type CreateTable struct {
	Name        string
	Cols        []ColDef
	Key         []string
	ForeignKeys []FKDef
}

func (CreateTable) stmt() {}

// WhereTerm is one conjunct "attr IN (v, ...)" (or "attr = v").
type WhereTerm struct {
	Attr   string
	Values []value.Value
}

// CreateView declares a select-project view.
//
//	CREATE VIEW V AS SELECT EmpNo, Name FROM EMP
//	    WHERE Location IN ('New York') AND Baseball = true;
type CreateView struct {
	Name  string
	Cols  []string // nil means *
	Table string
	Where []WhereTerm
}

func (CreateView) stmt() {}

// JoinEdgeDef is one reference connection of a join view.
type JoinEdgeDef struct {
	View   string   // owning SP view
	Attrs  []string // its referencing attributes
	Target string   // referenced SP view
}

// CreateJoinView declares a join view over previously created SP views.
//
//	CREATE JOIN VIEW J ROOT CXDV WITH CXDV (X) REFERENCES ABV;
type CreateJoinView struct {
	Name  string
	Root  string
	Edges []JoinEdgeDef
}

func (CreateJoinView) stmt() {}

// EqTerm is "attr = value".
type EqTerm struct {
	Attr string
	Val  value.Value
}

// CreateIndex is CREATE INDEX ON table (attr): builds a secondary
// index used by selection scans.
type CreateIndex struct {
	Table string
	Attr  string
}

func (CreateIndex) stmt() {}

// Insert is INSERT INTO target VALUES (v, ...).
type Insert struct {
	Target string
	Values []value.Value
}

func (Insert) stmt() {}

// Delete is DELETE FROM target WHERE a = v AND ... — the conjunction
// must identify exactly one current row.
type Delete struct {
	Target string
	Where  []EqTerm
}

func (Delete) stmt() {}

// Update is UPDATE target SET a = v, ... WHERE a = v AND ... — a
// single-row replacement.
type Update struct {
	Target string
	Sets   []EqTerm
	Where  []EqTerm
}

func (Update) stmt() {}

// Select is SELECT *|cols FROM target [WHERE a = v AND ...], for
// inspection.
type Select struct {
	Target string
	Cols   []string // nil means *
	Where  []EqTerm
}

func (Select) stmt() {}

// Show is SHOW TABLES | SHOW VIEWS | SHOW POLICIES.
type Show struct {
	What string
}

func (Show) stmt() {}

// ShowCandidates is SHOW CANDIDATES FOR <insert|delete|update>: it
// enumerates the complete translation set without applying anything.
type ShowCandidates struct {
	Inner Stmt
}

func (ShowCandidates) stmt() {}

// ShowEffects is SHOW EFFECTS FOR <insert|delete|update>: it shows the
// policy-chosen translation and its view side effects without applying
// anything.
type ShowEffects struct {
	Inner Stmt
}

func (ShowEffects) stmt() {}

// SetPolicy is SET POLICY target PREFER 'D-1', 'D-2': installs a
// PreferClasses policy on the target view's translator.
type SetPolicy struct {
	Target string
	Prefer []string
}

func (SetPolicy) stmt() {}

// SetDefault is SET DEFAULT target.attr = v: installs a default value
// for the view's hidden-attribute choices.
type SetDefault struct {
	Target string
	Attr   string
	Val    value.Value
}

func (SetDefault) stmt() {}

// Begin is BEGIN: it opens a multi-statement transaction. Data
// statements until COMMIT run against a staged clone of the database;
// COMMIT applies the accumulated difference atomically (and durably,
// when a store is attached); ROLLBACK discards it.
type Begin struct{}

func (Begin) stmt() {}

// Commit is COMMIT: it atomically applies the open transaction.
type Commit struct{}

func (Commit) stmt() {}

// Rollback is ROLLBACK: it discards the open transaction.
type Rollback struct{}

func (Rollback) stmt() {}

// Save is SAVE TO 'file': writes the session's statement journal (all
// successfully executed schema- or state-changing statements) as a
// replayable script.
type Save struct {
	Path string
}

func (Save) stmt() {}

// Load is LOAD FROM 'file': executes the script in the file against
// the current session.
type Load struct {
	Path string
}

func (Load) stmt() {}
