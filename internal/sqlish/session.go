package sqlish

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"viewupdate/internal/algebra"
	"viewupdate/internal/core"
	"viewupdate/internal/persist"
	"viewupdate/internal/report"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// A Session holds a schema under construction, its database instance,
// the defined views and their translator configuration. It executes
// parsed statements and renders textual results.
type Session struct {
	sch       *schema.Database
	db        *storage.Database
	domains   map[string]*schema.Domain
	spViews   map[string]*view.SP
	joinViews map[string]*view.Join
	prefer    map[string][]string               // view -> preferred classes
	defaults  map[string]map[string]value.Value // view -> attr -> default
	custom    map[string]core.Policy            // view -> externally built policy
	journal   []string                          // replayable statement texts
	explain   bool                              // render explain traces for view updates
	store     *persist.Store                    // durable store, when attached
	tx        *txState                          // open transaction, when any

	// External engine hooks (see hooks.go). applier replaces the
	// non-transactional durable apply path; schemaChanged fires after
	// DDL grows the schema. Both are nil in plain sessions.
	applier       func(*update.Translation) error
	schemaChanged func() error
}

// ErrExists reports that a CREATE names a domain, table or view that is
// already defined. Match with errors.Is; ExecScriptSkipExisting skips
// statements failing with it.
var ErrExists = errors.New("already exists")

// NewSession returns an empty session.
func NewSession() *Session {
	sch := schema.NewDatabase()
	return &Session{
		sch:       sch,
		db:        storage.Open(sch),
		domains:   map[string]*schema.Domain{},
		spViews:   map[string]*view.SP{},
		joinViews: map[string]*view.Join{},
		prefer:    map[string][]string{},
		defaults:  map[string]map[string]value.Value{},
	}
}

// DB exposes the session's database instance (read-mostly; used by
// tests and tooling).
func (s *Session) DB() *storage.Database { return s.db }

// View returns the named view, or nil (for tooling such as the
// translator-configuration dialog).
func (s *Session) View(name string) view.View { return s.lookupView(name) }

// ViewNames returns the names of all defined views (SP and join),
// sorted.
func (s *Session) ViewNames() []string {
	names := make([]string, 0, len(s.spViews)+len(s.joinViews))
	for n := range s.spViews {
		names = append(names, n)
	}
	for n := range s.joinViews {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Policy returns the configured policy chain for the named view (the
// default chain when the view has no configuration). Used by the
// network serving layer, which translates outside the session.
func (s *Session) Policy(name string) core.Policy { return s.policyFor(name) }

// SetExplain toggles explain mode: every view update is translated via
// the traced pipeline and the rendered explain trace precedes the usual
// result text.
func (s *Session) SetExplain(on bool) { s.explain = on }

// SetCustomPolicy installs an externally built policy (e.g. from the
// dialog package) on the named view, overriding SET POLICY / SET
// DEFAULT configuration.
func (s *Session) SetCustomPolicy(name string, p core.Policy) error {
	if s.lookupView(name) == nil {
		return fmt.Errorf("sqlish: unknown view %s", name)
	}
	if s.custom == nil {
		s.custom = map[string]core.Policy{}
	}
	s.custom[name] = p
	return nil
}

// ExecLine parses and executes one statement, returning its rendered
// result.
func (s *Session) ExecLine(input string) (string, error) {
	stmt, err := Parse(input)
	if err != nil {
		return "", err
	}
	out, err := s.Exec(stmt)
	if err == nil {
		s.journalStmt(stmt, strings.TrimSuffix(strings.TrimSpace(input), ";"))
	}
	return out, err
}

// ExecScript parses and executes a multi-statement script, returning
// the concatenated results.
func (s *Session) ExecScript(input string) (string, error) {
	out, _, err := s.execScript(input, false)
	return out, err
}

// ExecScriptSkipExisting executes a script like ExecScript but skips
// statements that fail with ErrExists instead of aborting, returning
// how many were skipped. This makes a DDL script idempotent — the boot
// path for a server that re-runs its -init script over a recovered
// store, where the snapshot already holds the domains and tables.
func (s *Session) ExecScriptSkipExisting(input string) (string, int, error) {
	return s.execScript(input, true)
}

func (s *Session) execScript(input string, skipExisting bool) (string, int, error) {
	parts, err := parseScriptParts(input)
	if err != nil {
		return "", 0, err
	}
	var b strings.Builder
	skipped := 0
	for _, part := range parts {
		out, err := s.Exec(part.Stmt)
		if err != nil {
			if skipExisting && errors.Is(err, ErrExists) {
				skipped++
				continue
			}
			return b.String(), skipped, err
		}
		s.journalStmt(part.Stmt, part.Text)
		if out != "" {
			b.WriteString(out)
			if !strings.HasSuffix(out, "\n") {
				b.WriteByte('\n')
			}
		}
	}
	return b.String(), skipped, nil
}

// journalStmt records the source text of statements that change the
// session (schema, data, views, policies); reads, SAVE/LOAD and the
// transaction control statements themselves are not journaled. Inside
// a transaction the texts are buffered and reach the journal only when
// the transaction commits, so a saved script replays exactly the
// changes that took effect.
func (s *Session) journalStmt(stmt Stmt, text string) {
	switch stmt.(type) {
	case Select, Show, ShowCandidates, ShowEffects, Save, Load, Begin, Commit, Rollback:
		return
	}
	if text == "" {
		return
	}
	if s.tx != nil {
		s.tx.stmts = append(s.tx.stmts, text)
		return
	}
	s.journal = append(s.journal, text)
}

// Journal returns the replayable statement texts recorded so far.
func (s *Session) Journal() []string {
	out := make([]string, len(s.journal))
	copy(out, s.journal)
	return out
}

// Exec executes one parsed statement.
func (s *Session) Exec(stmt Stmt) (string, error) {
	if s.tx != nil && !txAllowed(stmt) {
		return "", fmt.Errorf("sqlish: %T is not allowed inside a transaction; COMMIT or ROLLBACK first", stmt)
	}
	switch st := stmt.(type) {
	case Begin:
		return s.execBegin()
	case Commit:
		return s.execCommit()
	case Rollback:
		return s.execRollback()
	case CreateDomain:
		return s.execCreateDomain(st)
	case CreateTable:
		return s.execCreateTable(st)
	case CreateView:
		return s.execCreateView(st)
	case CreateJoinView:
		return s.execCreateJoinView(st)
	case CreateIndex:
		if err := s.db.CreateIndex(st.Table, st.Attr); err != nil {
			return "", err
		}
		return fmt.Sprintf("index on %s(%s) created", st.Table, st.Attr), nil
	case Insert:
		return s.execInsert(st)
	case Delete:
		return s.execDelete(st)
	case Update:
		return s.execUpdate(st)
	case Select:
		return s.execSelect(st)
	case Show:
		return s.execShow(st)
	case ShowCandidates:
		return s.execShowCandidates(st)
	case ShowEffects:
		return s.execShowEffects(st)
	case SetPolicy:
		return s.execSetPolicy(st)
	case SetDefault:
		return s.execSetDefault(st)
	case Save:
		return s.execSave(st)
	case Load:
		return s.execLoad(st)
	default:
		return "", fmt.Errorf("sqlish: unsupported statement %T", stmt)
	}
}

// execSave writes the journal as a replayable script.
func (s *Session) execSave(st Save) (string, error) {
	var b strings.Builder
	b.WriteString("-- vupdate session journal; replay with LOAD FROM or vupdate -f\n")
	for _, line := range s.journal {
		b.WriteString(line)
		b.WriteString(";\n")
	}
	if err := os.WriteFile(st.Path, []byte(b.String()), 0o644); err != nil {
		return "", fmt.Errorf("sqlish: %w", err)
	}
	return fmt.Sprintf("saved %d statements to %s", len(s.journal), st.Path), nil
}

// execLoad executes the statements in the file against this session.
func (s *Session) execLoad(st Load) (string, error) {
	data, err := os.ReadFile(st.Path)
	if err != nil {
		return "", fmt.Errorf("sqlish: %w", err)
	}
	out, err := s.ExecScript(string(data))
	if err != nil {
		return out, err
	}
	return out + fmt.Sprintf("loaded %s", st.Path), nil
}

func (s *Session) execCreateDomain(st CreateDomain) (string, error) {
	if _, dup := s.domains[st.Name]; dup {
		return "", fmt.Errorf("sqlish: domain %s %w", st.Name, ErrExists)
	}
	var d *schema.Domain
	var err error
	switch st.Kind {
	case "bool":
		d = schema.BoolDomain(st.Name)
	case "int":
		if st.IsRange {
			d, err = schema.IntRangeDomain(st.Name, st.Lo, st.Hi)
		} else {
			d, err = schema.NewDomain(st.Name, st.Values...)
		}
	case "string":
		d, err = schema.NewDomain(st.Name, st.Values...)
	default:
		return "", fmt.Errorf("sqlish: unknown domain kind %q", st.Kind)
	}
	if err != nil {
		return "", err
	}
	s.domains[st.Name] = d
	return fmt.Sprintf("domain %s created (%d values)", st.Name, d.Size()), nil
}

func (s *Session) execCreateTable(st CreateTable) (string, error) {
	if s.sch.Relation(st.Name) != nil {
		return "", fmt.Errorf("sqlish: table %s %w", st.Name, ErrExists)
	}
	attrs := make([]schema.Attribute, len(st.Cols))
	for i, col := range st.Cols {
		d := s.domains[col.Domain]
		if d == nil {
			return "", fmt.Errorf("sqlish: unknown domain %s for column %s", col.Domain, col.Name)
		}
		attrs[i] = schema.Attribute{Name: col.Name, Domain: d}
	}
	rel, err := schema.NewRelation(st.Name, attrs, st.Key)
	if err != nil {
		return "", err
	}
	if err := s.sch.AddRelation(rel); err != nil {
		return "", err
	}
	for _, fk := range st.ForeignKeys {
		if err := s.sch.AddInclusion(schema.InclusionDependency{
			Child: st.Name, ChildAttrs: fk.Attrs, Parent: fk.Parent,
		}); err != nil {
			return "", err
		}
	}
	if err := s.db.SyncSchema(); err != nil {
		return "", err
	}
	// Schema changes are persisted via the snapshot, not the WAL: fold
	// the log into a fresh snapshot that includes the new table.
	if s.store != nil {
		if err := s.store.Checkpoint(); err != nil {
			return "", err
		}
	} else if s.schemaChanged != nil {
		if err := s.schemaChanged(); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("table %s created", rel), nil
}

func (s *Session) execCreateView(st CreateView) (string, error) {
	if s.viewExists(st.Name) {
		return "", fmt.Errorf("sqlish: view %s %w", st.Name, ErrExists)
	}
	rel := s.sch.Relation(st.Table)
	if rel == nil {
		return "", fmt.Errorf("sqlish: unknown table %s", st.Table)
	}
	sel := algebra.NewSelection(rel)
	for _, w := range st.Where {
		if err := sel.AddTerm(w.Attr, w.Values...); err != nil {
			return "", err
		}
	}
	cols := st.Cols
	if cols == nil {
		cols = rel.AttributeNames()
	}
	v, err := view.NewSP(st.Name, sel, cols)
	if err != nil {
		return "", err
	}
	s.spViews[st.Name] = v
	return fmt.Sprintf("view %s created over %s where %s", st.Name, st.Table, sel), nil
}

func (s *Session) execCreateJoinView(st CreateJoinView) (string, error) {
	if s.viewExists(st.Name) {
		return "", fmt.Errorf("sqlish: view %s %w", st.Name, ErrExists)
	}
	// Build one node per referenced SP view, wiring edges owner->target.
	nodes := map[string]*view.Node{}
	getNode := func(name string) (*view.Node, error) {
		if n, ok := nodes[name]; ok {
			return n, nil
		}
		sp := s.spViews[name]
		if sp == nil {
			return nil, fmt.Errorf("sqlish: unknown SP view %s in join view %s", name, st.Name)
		}
		n := &view.Node{SP: sp}
		nodes[name] = n
		return n, nil
	}
	if _, err := getNode(st.Root); err != nil {
		return "", err
	}
	for _, e := range st.Edges {
		owner, err := getNode(e.View)
		if err != nil {
			return "", err
		}
		target, err := getNode(e.Target)
		if err != nil {
			return "", err
		}
		owner.Refs = append(owner.Refs, view.Ref{Attrs: e.Attrs, Target: target})
	}
	jv, err := view.NewJoin(st.Name, s.sch, nodes[st.Root])
	if err != nil {
		return "", err
	}
	if len(jv.Nodes()) != len(nodes) {
		return "", fmt.Errorf("sqlish: join view %s has %d edges but %d nodes reachable from root %s",
			st.Name, len(st.Edges), len(jv.Nodes()), st.Root)
	}
	s.joinViews[st.Name] = jv
	return fmt.Sprintf("join view %s created (%d nodes, key %s)",
		st.Name, len(jv.Nodes()), strings.Join(jv.Schema().Key(), ",")), nil
}

func (s *Session) viewExists(name string) bool {
	_, sp := s.spViews[name]
	_, jv := s.joinViews[name]
	return sp || jv
}

// lookupView returns the named view, or nil.
func (s *Session) lookupView(name string) view.View {
	if v, ok := s.spViews[name]; ok {
		return v
	}
	if v, ok := s.joinViews[name]; ok {
		return v
	}
	return nil
}

// policyFor builds the configured policy chain for a view.
func (s *Session) policyFor(name string) core.Policy {
	if p, ok := s.custom[name]; ok {
		return p
	}
	var p core.Policy = core.PickFirst{}
	if order, ok := s.prefer[name]; ok {
		p = core.PreferClasses{Order: order}
	}
	if defs, ok := s.defaults[name]; ok && len(defs) > 0 {
		p = core.WithDefaults{Base: p, Defaults: defs}
	}
	return p
}

// buildRequest converts an Insert/Delete/Update statement on a view
// into a core.Request.
func (s *Session) buildRequest(stmt Stmt) (view.View, core.Request, error) {
	switch st := stmt.(type) {
	case Insert:
		v := s.lookupView(st.Target)
		if v == nil {
			return nil, core.Request{}, fmt.Errorf("sqlish: unknown view %s", st.Target)
		}
		t, err := s.makeTuple(v.Schema(), st.Values)
		if err != nil {
			return nil, core.Request{}, err
		}
		return v, core.InsertRequest(t), nil
	case Delete:
		v := s.lookupView(st.Target)
		if v == nil {
			return nil, core.Request{}, fmt.Errorf("sqlish: unknown view %s", st.Target)
		}
		row, err := s.uniqueRow(v, st.Where)
		if err != nil {
			return nil, core.Request{}, err
		}
		return v, core.DeleteRequest(row), nil
	case Update:
		v := s.lookupView(st.Target)
		if v == nil {
			return nil, core.Request{}, fmt.Errorf("sqlish: unknown view %s", st.Target)
		}
		row, err := s.uniqueRow(v, st.Where)
		if err != nil {
			return nil, core.Request{}, err
		}
		newRow := row
		for _, set := range st.Sets {
			newRow, err = newRow.With(set.Attr, set.Val)
			if err != nil {
				return nil, core.Request{}, err
			}
		}
		return v, core.ReplaceRequest(row, newRow), nil
	default:
		return nil, core.Request{}, fmt.Errorf("sqlish: not an update statement: %T", stmt)
	}
}

// makeTuple builds a tuple of rel from positional literals.
func (s *Session) makeTuple(rel *schema.Relation, vals []value.Value) (tuple.T, error) {
	if len(vals) != rel.Arity() {
		return tuple.T{}, fmt.Errorf("sqlish: %s takes %d values, got %d", rel.Name(), rel.Arity(), len(vals))
	}
	return tuple.New(rel, vals...)
}

// uniqueRow finds the single current view row matching the conjunction.
func (s *Session) uniqueRow(v view.View, where []EqTerm) (tuple.T, error) {
	if len(where) == 0 {
		return tuple.T{}, fmt.Errorf("sqlish: WHERE clause required")
	}
	var matches []tuple.T
	for _, row := range v.Materialize(s.cur()).Slice() {
		if matchesEq(row, where) {
			matches = append(matches, row)
		}
	}
	switch len(matches) {
	case 0:
		return tuple.T{}, fmt.Errorf("sqlish: no row of %s matches", v.Name())
	case 1:
		return matches[0], nil
	default:
		return tuple.T{}, fmt.Errorf("sqlish: %d rows of %s match; the paper's requests are single-tuple — refine the WHERE clause", len(matches), v.Name())
	}
}

func matchesEq(row tuple.T, where []EqTerm) bool {
	for _, w := range where {
		v, ok := row.Get(w.Attr)
		if !ok || v != w.Val {
			return false
		}
	}
	return true
}

// execInsert handles both base tables and views.
func (s *Session) execInsert(st Insert) (string, error) {
	if rel := s.sch.Relation(st.Target); rel != nil && !s.viewExists(st.Target) {
		t, err := s.makeTuple(rel, st.Values)
		if err != nil {
			return "", err
		}
		if err := s.applyTr(update.NewTranslation(update.NewInsert(t))); err != nil {
			return "", err
		}
		return fmt.Sprintf("inserted %s", t), nil
	}
	v, req, err := s.buildRequest(st)
	if err != nil {
		return "", err
	}
	return s.applyViewRequest(v, req)
}

func (s *Session) execDelete(st Delete) (string, error) {
	if rel := s.sch.Relation(st.Target); rel != nil && !s.viewExists(st.Target) {
		t, err := s.uniqueBaseRow(rel, st.Where)
		if err != nil {
			return "", err
		}
		if err := s.applyTr(update.NewTranslation(update.NewDelete(t))); err != nil {
			return "", err
		}
		return fmt.Sprintf("deleted %s", t), nil
	}
	v, req, err := s.buildRequest(st)
	if err != nil {
		return "", err
	}
	return s.applyViewRequest(v, req)
}

func (s *Session) execUpdate(st Update) (string, error) {
	if rel := s.sch.Relation(st.Target); rel != nil && !s.viewExists(st.Target) {
		old, err := s.uniqueBaseRow(rel, st.Where)
		if err != nil {
			return "", err
		}
		newT := old
		for _, set := range st.Sets {
			newT, err = newT.With(set.Attr, set.Val)
			if err != nil {
				return "", err
			}
		}
		if err := s.applyTr(update.NewTranslation(update.NewReplace(old, newT))); err != nil {
			return "", err
		}
		return fmt.Sprintf("replaced %s -> %s", old, newT), nil
	}
	v, req, err := s.buildRequest(st)
	if err != nil {
		return "", err
	}
	return s.applyViewRequest(v, req)
}

// uniqueBaseRow finds the single base tuple matching the conjunction.
func (s *Session) uniqueBaseRow(rel *schema.Relation, where []EqTerm) (tuple.T, error) {
	if len(where) == 0 {
		return tuple.T{}, fmt.Errorf("sqlish: WHERE clause required")
	}
	var matches []tuple.T
	for _, t := range s.cur().Tuples(rel.Name()) {
		if matchesEq(t, where) {
			matches = append(matches, t)
		}
	}
	switch len(matches) {
	case 0:
		return tuple.T{}, fmt.Errorf("sqlish: no tuple of %s matches", rel.Name())
	case 1:
		return matches[0], nil
	default:
		return tuple.T{}, fmt.Errorf("sqlish: %d tuples of %s match; refine the WHERE clause", len(matches), rel.Name())
	}
}

// applyViewRequest translates and applies a view update, reporting any
// view side effects (join views may change rows beyond the request).
func (s *Session) applyViewRequest(v view.View, req core.Request) (string, error) {
	tr := core.NewTranslator(v, s.policyFor(v.Name()))
	var cand core.Candidate
	var err error
	var explainText string
	if s.explain {
		var trace *core.Trace
		cand, trace, err = tr.TranslateTraced(s.cur(), req)
		if trace != nil {
			explainText = report.RenderTrace(trace)
		}
	} else {
		cand, err = tr.Translate(s.cur(), req)
	}
	if err != nil {
		if explainText != "" {
			return explainText, err
		}
		return "", err
	}
	eff, err := core.SideEffects(s.cur(), v, req, cand.Translation)
	if err != nil {
		return "", err
	}
	if err := s.applyTr(cand.Translation); err != nil {
		return "", fmt.Errorf("sqlish: applying %s: %w", cand.Translation, err)
	}
	out := fmt.Sprintf("translated by %s\n%s", cand.Class, renderOps(cand.Translation))
	if explainText != "" {
		out = explainText + "\n" + out
	}
	if !eff.None() {
		out += fmt.Sprintf("\nwarning: %s", eff)
	}
	return out, nil
}

func renderOps(tr *update.Translation) string {
	var b strings.Builder
	for _, op := range tr.Ops() {
		fmt.Fprintf(&b, "  %s\n", op)
	}
	return strings.TrimRight(b.String(), "\n")
}

func (s *Session) execSelect(st Select) (string, error) {
	var rows []tuple.T
	var header []string
	if v := s.lookupView(st.Target); v != nil {
		header = v.Schema().AttributeNames()
		rows = v.Materialize(s.cur()).Slice()
	} else if rel := s.sch.Relation(st.Target); rel != nil {
		header = rel.AttributeNames()
		rows = s.cur().Tuples(st.Target)
	} else {
		return "", fmt.Errorf("sqlish: unknown table or view %s", st.Target)
	}
	cols := st.Cols
	if cols == nil {
		cols = header
	} else {
		have := map[string]bool{}
		for _, h := range header {
			have[h] = true
		}
		for _, c := range cols {
			if !have[c] {
				return "", fmt.Errorf("sqlish: %s has no column %s", st.Target, c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", strings.Join(cols, " | "))
	n := 0
	for _, row := range rows {
		if !matchesEq(row, st.Where) {
			continue
		}
		n++
		cells := make([]string, len(cols))
		for i, c := range cols {
			cells[i] = row.MustGet(c).String()
		}
		fmt.Fprintf(&b, "%s\n", strings.Join(cells, " | "))
	}
	fmt.Fprintf(&b, "(%d rows)", n)
	return b.String(), nil
}

func (s *Session) execShow(st Show) (string, error) {
	var b strings.Builder
	switch st.What {
	case "tables":
		for _, name := range s.sch.RelationNames() {
			fmt.Fprintf(&b, "%s  (%d tuples)\n", s.sch.Relation(name), s.cur().Len(name))
		}
		for _, d := range s.sch.Inclusions() {
			fmt.Fprintf(&b, "%s\n", d)
		}
	case "views":
		var names []string
		for n := range s.spViews {
			names = append(names, n)
		}
		for n := range s.joinViews {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if sp, ok := s.spViews[n]; ok {
				fmt.Fprintf(&b, "%s: SELECT %s FROM %s WHERE %s\n",
					n, strings.Join(sp.Projection().Attributes(), ", "), sp.Base().Name(), sp.Selection())
			} else {
				jv := s.joinViews[n]
				var parts []string
				for _, node := range jv.Nodes() {
					parts = append(parts, node.SP.Name())
				}
				fmt.Fprintf(&b, "%s: JOIN of %s (root %s)\n", n, strings.Join(parts, " ⋈ "), jv.Nodes()[0].SP.Name())
			}
		}
	case "policies":
		var names []string
		for n := range s.prefer {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "%s prefers %s\n", n, strings.Join(s.prefer[n], " > "))
		}
		names = names[:0]
		for n := range s.defaults {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			var attrs []string
			for a := range s.defaults[n] {
				attrs = append(attrs, a)
			}
			sort.Strings(attrs)
			for _, a := range attrs {
				fmt.Fprintf(&b, "%s.%s defaults to %s\n", n, a, s.defaults[n][a])
			}
		}
	default:
		return "", fmt.Errorf("sqlish: unknown SHOW target %q", st.What)
	}
	out := strings.TrimRight(b.String(), "\n")
	if out == "" {
		out = "(none)"
	}
	return out, nil
}

func (s *Session) execShowCandidates(st ShowCandidates) (string, error) {
	v, req, err := s.buildRequest(st.Inner)
	if err != nil {
		return "", err
	}
	cands, err := core.Enumerate(s.cur(), v, req)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d candidate translation(s) for %s:\n", len(cands), req)
	for i, c := range cands {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, c)
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// execShowEffects translates under the view's policy and reports the
// chosen translation plus its view side effects, without applying.
func (s *Session) execShowEffects(st ShowEffects) (string, error) {
	v, req, err := s.buildRequest(st.Inner)
	if err != nil {
		return "", err
	}
	tr := core.NewTranslator(v, s.policyFor(v.Name()))
	cand, err := tr.Translate(s.cur(), req)
	if err != nil {
		return "", err
	}
	eff, err := core.SideEffects(s.cur(), v, req, cand.Translation)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "would translate by %s\n%s\n%s", cand.Class, renderOps(cand.Translation), eff)
	if !eff.None() {
		for _, row := range eff.ExtraRemoved.Slice() {
			fmt.Fprintf(&b, "\n  - %s", row)
		}
		for _, row := range eff.ExtraAdded.Slice() {
			fmt.Fprintf(&b, "\n  + %s", row)
		}
	}
	return b.String(), nil
}

func (s *Session) execSetPolicy(st SetPolicy) (string, error) {
	if s.lookupView(st.Target) == nil {
		return "", fmt.Errorf("sqlish: unknown view %s", st.Target)
	}
	s.prefer[st.Target] = st.Prefer
	return fmt.Sprintf("policy on %s: prefer %s", st.Target, strings.Join(st.Prefer, " > ")), nil
}

func (s *Session) execSetDefault(st SetDefault) (string, error) {
	if s.lookupView(st.Target) == nil {
		return "", fmt.Errorf("sqlish: unknown view %s", st.Target)
	}
	if s.defaults[st.Target] == nil {
		s.defaults[st.Target] = map[string]value.Value{}
	}
	s.defaults[st.Target][st.Attr] = st.Val
	return fmt.Sprintf("default %s.%s = %s", st.Target, st.Attr, st.Val), nil
}
