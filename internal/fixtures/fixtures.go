// Package fixtures provides the schemas and instances used across
// tests, examples and experiments: the paper's EMP example (§4-1), the
// paper's AB/CXD reference-connection figure (§5-1), and a three-level
// university enrollment tree exercising deeper SPJ walks.
package fixtures

import (
	"fmt"

	"viewupdate/internal/algebra"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// Emp bundles the paper's EMP relation (§4-1): "each employee's number,
// name, location, and whether the employee is a member of the company
// baseball team. The company has two locations: New York and San
// Francisco."
type Emp struct {
	Schema *schema.Database
	Rel    *schema.Relation
	// ViewP is Susan's view: SELECT * FROM EMP WHERE Location='New York'.
	ViewP *view.SP
	// ViewB is Frank's view: SELECT * FROM EMP WHERE Baseball=true.
	ViewB *view.SP
}

// NewEmp builds the EMP schema with employee numbers 1..maxEmpNo and
// the two views of the paper.
func NewEmp(maxEmpNo int64) *Emp {
	empNo, err := schema.IntRangeDomain("EmpNoDom", 1, maxEmpNo)
	if err != nil {
		panic(err)
	}
	names, err := schema.StringDomain("NameDom",
		"Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy", "Susan")
	if err != nil {
		panic(err)
	}
	loc, err := schema.StringDomain("LocationDom", "New York", "San Francisco")
	if err != nil {
		panic(err)
	}
	baseball := schema.BoolDomain("BaseballDom")

	rel := schema.MustRelation("EMP", []schema.Attribute{
		{Name: "EmpNo", Domain: empNo},
		{Name: "Name", Domain: names},
		{Name: "Location", Domain: loc},
		{Name: "Baseball", Domain: baseball},
	}, []string{"EmpNo"})

	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		panic(err)
	}

	selP := algebra.NewSelection(rel).MustAddTerm("Location", value.NewString("New York"))
	selB := algebra.NewSelection(rel).MustAddTerm("Baseball", value.NewBool(true))

	return &Emp{
		Schema: sch,
		Rel:    rel,
		ViewP:  view.MustNewSP("ViewP", selP, rel.AttributeNames()),
		ViewB:  view.MustNewSP("ViewB", selB, rel.AttributeNames()),
	}
}

// Tuple builds an EMP tuple.
func (e *Emp) Tuple(no int64, name, loc string, baseball bool) tuple.T {
	return tuple.MustNew(e.Rel,
		value.NewInt(no), value.NewString(name), value.NewString(loc), value.NewBool(baseball))
}

// ViewTuple builds a tuple of the given view's schema (both views
// project all attributes, so the shape matches Tuple).
func (e *Emp) ViewTuple(v *view.SP, no int64, name, loc string, baseball bool) tuple.T {
	return tuple.MustNew(v.Schema(),
		value.NewInt(no), value.NewString(name), value.NewString(loc), value.NewBool(baseball))
}

// PaperInstance loads the worked example's employees: #17 in New York
// on the team, #14 in San Francisco on the team, and a few bystanders.
func (e *Emp) PaperInstance() *storage.Database {
	db := storage.Open(e.Schema)
	must(db.Load("EMP",
		e.Tuple(17, "Susan", "New York", true),
		e.Tuple(14, "Frank", "San Francisco", true),
		e.Tuple(3, "Alice", "New York", false),
		e.Tuple(5, "Bob", "San Francisco", false),
		e.Tuple(8, "Carol", "New York", true),
	))
	return db
}

// ABCXD bundles the reference-connection figure of §5-1: AB(A*, B) and
// CXD(C*, X, D) with X referencing AB's key A, joined into the view
// CXD ⋈ AB rooted at CXD.
type ABCXD struct {
	Schema *schema.Database
	AB     *schema.Relation
	CXD    *schema.Relation
	// View is the identity-SP join view rooted at CXD.
	View *view.Join
	// RootNode and ParentNode expose the query graph.
	RootNode, ParentNode *view.Node
}

// NewABCXD builds the figure's schema. Domains are small and finite as
// in the paper's model.
func NewABCXD() *ABCXD {
	aDom, err := schema.StringDomain("ADom", "a", "a1", "a2", "a3")
	if err != nil {
		panic(err)
	}
	bDom, err := schema.IntRangeDomain("BDom", 1, 9)
	if err != nil {
		panic(err)
	}
	cDom, err := schema.StringDomain("CDom", "c1", "c2", "c3", "c4")
	if err != nil {
		panic(err)
	}
	dDom, err := schema.IntRangeDomain("DDom", 1, 9)
	if err != nil {
		panic(err)
	}

	ab := schema.MustRelation("AB", []schema.Attribute{
		{Name: "A", Domain: aDom},
		{Name: "B", Domain: bDom},
	}, []string{"A"})
	cxd := schema.MustRelation("CXD", []schema.Attribute{
		{Name: "C", Domain: cDom},
		{Name: "X", Domain: aDom},
		{Name: "D", Domain: dDom},
	}, []string{"C"})

	sch := schema.NewDatabase()
	must(sch.AddRelation(ab))
	must(sch.AddRelation(cxd))
	must(sch.AddInclusion(schema.InclusionDependency{
		Child: "CXD", ChildAttrs: []string{"X"}, Parent: "AB",
	}))

	parent := &view.Node{SP: view.Identity("ABv", ab)}
	root := &view.Node{
		SP:   view.Identity("CXDv", cxd),
		Refs: []view.Ref{{Attrs: []string{"X"}, Target: parent}},
	}
	jv := view.MustNewJoin("CXD_AB", sch, root)
	return &ABCXD{Schema: sch, AB: ab, CXD: cxd, View: jv, RootNode: root, ParentNode: parent}
}

// ABTuple builds an AB tuple.
func (f *ABCXD) ABTuple(a string, b int64) tuple.T {
	return tuple.MustNew(f.AB, value.NewString(a), value.NewInt(b))
}

// CXDTuple builds a CXD tuple.
func (f *ABCXD) CXDTuple(c, x string, d int64) tuple.T {
	return tuple.MustNew(f.CXD, value.NewString(c), value.NewString(x), value.NewInt(d))
}

// ViewTuple builds a view tuple (C, X, D, A, B) with X = A as the join
// requires.
func (f *ABCXD) ViewTuple(c, x string, d int64, b int64) tuple.T {
	return tuple.MustNew(f.View.Schema(),
		value.NewString(c), value.NewString(x), value.NewInt(d),
		value.NewString(x), value.NewInt(b))
}

// PaperInstance loads the figure's instance: AB = {(a,1)} plus another
// parent, CXD referencing them.
func (f *ABCXD) PaperInstance() *storage.Database {
	db := storage.Open(f.Schema)
	must(db.LoadAll(
		f.ABTuple("a", 1),
		f.ABTuple("a2", 2),
		f.CXDTuple("c1", "a", 3),
		f.CXDTuple("c2", "a2", 4),
	))
	return db
}

// University bundles a three-level tree: ENROLL(EID*, SID, CID, Grade)
// references STUDENT(SID*, SName, Year) and COURSE(CID*, Title, Dept);
// COURSE references DEPT(Dept*, Building). The join view is rooted at
// ENROLL.
type University struct {
	Schema  *schema.Database
	Enroll  *schema.Relation
	Student *schema.Relation
	Course  *schema.Relation
	Dept    *schema.Relation
	// View is the identity join view over the full tree.
	View *view.Join
	// Nodes in preorder: enroll, student, course, dept.
	EnrollNode, StudentNode, CourseNode, DeptNode *view.Node
}

// NewUniversity builds the university schema with nEnroll enrollment
// ids.
func NewUniversity(nEnroll int64) *University {
	eid, err := schema.IntRangeDomain("EIDDom", 1, nEnroll)
	if err != nil {
		panic(err)
	}
	sid, err := schema.StringDomain("SIDDom", "s1", "s2", "s3", "s4", "s5", "s6")
	if err != nil {
		panic(err)
	}
	cid, err := schema.StringDomain("CIDDom", "db", "os", "pl", "ai")
	if err != nil {
		panic(err)
	}
	grade, err := schema.IntRangeDomain("GradeDom", 0, 4)
	if err != nil {
		panic(err)
	}
	sname, err := schema.StringDomain("SNameDom", "Ada", "Ben", "Cy", "Dee", "Eli", "Fay")
	if err != nil {
		panic(err)
	}
	year, err := schema.IntRangeDomain("YearDom", 1, 4)
	if err != nil {
		panic(err)
	}
	title, err := schema.StringDomain("TitleDom", "Databases", "Systems", "Languages", "Learning")
	if err != nil {
		panic(err)
	}
	dept, err := schema.StringDomain("DeptDom", "cs", "ee", "math")
	if err != nil {
		panic(err)
	}
	bldg, err := schema.StringDomain("BldgDom", "Gates", "Allen", "Soda")
	if err != nil {
		panic(err)
	}

	// Foreign-key attributes carry their own names (Stu, Crs, Dpt), as
	// in the paper's figure where X references A: join-view attribute
	// names must be globally distinct.
	enroll := schema.MustRelation("ENROLL", []schema.Attribute{
		{Name: "EID", Domain: eid},
		{Name: "Stu", Domain: sid},
		{Name: "Crs", Domain: cid},
		{Name: "Grade", Domain: grade},
	}, []string{"EID"})
	student := schema.MustRelation("STUDENT", []schema.Attribute{
		{Name: "SID", Domain: sid},
		{Name: "SName", Domain: sname},
		{Name: "Year", Domain: year},
	}, []string{"SID"})
	course := schema.MustRelation("COURSE", []schema.Attribute{
		{Name: "CID", Domain: cid},
		{Name: "Title", Domain: title},
		{Name: "Dpt", Domain: dept},
	}, []string{"CID"})
	deptRel := schema.MustRelation("DEPT", []schema.Attribute{
		{Name: "DName", Domain: dept},
		{Name: "Building", Domain: bldg},
	}, []string{"DName"})

	sch := schema.NewDatabase()
	must(sch.AddRelation(enroll))
	must(sch.AddRelation(student))
	must(sch.AddRelation(course))
	must(sch.AddRelation(deptRel))
	must(sch.AddInclusion(schema.InclusionDependency{Child: "ENROLL", ChildAttrs: []string{"Stu"}, Parent: "STUDENT"}))
	must(sch.AddInclusion(schema.InclusionDependency{Child: "ENROLL", ChildAttrs: []string{"Crs"}, Parent: "COURSE"}))
	must(sch.AddInclusion(schema.InclusionDependency{Child: "COURSE", ChildAttrs: []string{"Dpt"}, Parent: "DEPT"}))

	deptNode := &view.Node{SP: view.Identity("DEPTv", deptRel)}
	courseNode := &view.Node{
		SP:   view.Identity("COURSEv", course),
		Refs: []view.Ref{{Attrs: []string{"Dpt"}, Target: deptNode}},
	}
	studentNode := &view.Node{SP: view.Identity("STUDENTv", student)}
	enrollNode := &view.Node{
		SP: view.Identity("ENROLLv", enroll),
		Refs: []view.Ref{
			{Attrs: []string{"Stu"}, Target: studentNode},
			{Attrs: []string{"Crs"}, Target: courseNode},
		},
	}
	jv := view.MustNewJoin("TRANSCRIPT", sch, enrollNode)
	return &University{
		Schema: sch, Enroll: enroll, Student: student, Course: course, Dept: deptRel,
		View:       jv,
		EnrollNode: enrollNode, StudentNode: studentNode, CourseNode: courseNode, DeptNode: deptNode,
	}
}

// EnrollTuple builds an ENROLL tuple.
func (u *University) EnrollTuple(eid int64, sid, cid string, grade int64) tuple.T {
	return tuple.MustNew(u.Enroll,
		value.NewInt(eid), value.NewString(sid), value.NewString(cid), value.NewInt(grade))
}

// StudentTuple builds a STUDENT tuple.
func (u *University) StudentTuple(sid, name string, year int64) tuple.T {
	return tuple.MustNew(u.Student, value.NewString(sid), value.NewString(name), value.NewInt(year))
}

// CourseTuple builds a COURSE tuple.
func (u *University) CourseTuple(cid, title, dept string) tuple.T {
	return tuple.MustNew(u.Course, value.NewString(cid), value.NewString(title), value.NewString(dept))
}

// DeptTuple builds a DEPT tuple.
func (u *University) DeptTuple(dept, bldg string) tuple.T {
	return tuple.MustNew(u.Dept, value.NewString(dept), value.NewString(bldg))
}

// ViewTuple builds a TRANSCRIPT view tuple. The view schema is the
// preorder concatenation (EID, Stu, Crs, Grade, SID, SName, Year, CID,
// Title, Dpt, DName, Building) with Stu=SID, Crs=CID, Dpt=DName forced
// by the joins.
func (u *University) ViewTuple(eid int64, stu, crs string, grade int64, sname string, year int64, title, dpt, bldg string) tuple.T {
	return tuple.MustNew(u.View.Schema(),
		value.NewInt(eid), value.NewString(stu), value.NewString(crs), value.NewInt(grade),
		value.NewString(stu), value.NewString(sname), value.NewInt(year),
		value.NewString(crs), value.NewString(title), value.NewString(dpt),
		value.NewString(dpt), value.NewString(bldg))
}

// SmallInstance loads a consistent three-level instance.
func (u *University) SmallInstance() *storage.Database {
	db := storage.Open(u.Schema)
	must(db.LoadAll(
		u.DeptTuple("cs", "Gates"),
		u.DeptTuple("ee", "Allen"),
		u.CourseTuple("db", "Databases", "cs"),
		u.CourseTuple("os", "Systems", "cs"),
		u.CourseTuple("ai", "Learning", "ee"),
		u.StudentTuple("s1", "Ada", 2),
		u.StudentTuple("s2", "Ben", 3),
		u.EnrollTuple(1, "s1", "db", 4),
		u.EnrollTuple(2, "s2", "os", 3),
	))
	return db
}

// Diamond bundles a rooted-DAG query graph (the §5-1 footnote
// extension): ROOT references A and B, and both A and B reference the
// shared node C. A view row exists only when both paths converge on the
// same C tuple.
type Diamond struct {
	Schema          *schema.Database
	Root, A, B, C   *schema.Relation
	View            *view.Join
	RootNode, CNode *view.Node
	ANode, BNode    *view.Node
}

// NewDiamond builds the diamond schema and view.
func NewDiamond() *Diamond {
	keyDom, err := schema.IntRangeDomain("DiaKeyDom", 1, 9)
	if err != nil {
		panic(err)
	}
	payDom, err := schema.IntRangeDomain("DiaPayDom", 0, 9)
	if err != nil {
		panic(err)
	}
	c := schema.MustRelation("C", []schema.Attribute{
		{Name: "CK", Domain: keyDom},
		{Name: "CV", Domain: payDom},
	}, []string{"CK"})
	a := schema.MustRelation("A", []schema.Attribute{
		{Name: "AK", Domain: keyDom},
		{Name: "AC", Domain: keyDom},
	}, []string{"AK"})
	b := schema.MustRelation("B", []schema.Attribute{
		{Name: "BK", Domain: keyDom},
		{Name: "BC", Domain: keyDom},
	}, []string{"BK"})
	root := schema.MustRelation("ROOT", []schema.Attribute{
		{Name: "RK", Domain: keyDom},
		{Name: "RA", Domain: keyDom},
		{Name: "RB", Domain: keyDom},
	}, []string{"RK"})

	sch := schema.NewDatabase()
	for _, r := range []*schema.Relation{c, a, b, root} {
		must(sch.AddRelation(r))
	}
	must(sch.AddInclusion(schema.InclusionDependency{Child: "A", ChildAttrs: []string{"AC"}, Parent: "C"}))
	must(sch.AddInclusion(schema.InclusionDependency{Child: "B", ChildAttrs: []string{"BC"}, Parent: "C"}))
	must(sch.AddInclusion(schema.InclusionDependency{Child: "ROOT", ChildAttrs: []string{"RA"}, Parent: "A"}))
	must(sch.AddInclusion(schema.InclusionDependency{Child: "ROOT", ChildAttrs: []string{"RB"}, Parent: "B"}))

	cNode := &view.Node{SP: view.Identity("Cv", c)}
	aNode := &view.Node{SP: view.Identity("Av", a), Refs: []view.Ref{{Attrs: []string{"AC"}, Target: cNode}}}
	bNode := &view.Node{SP: view.Identity("Bv", b), Refs: []view.Ref{{Attrs: []string{"BC"}, Target: cNode}}}
	rootNode := &view.Node{SP: view.Identity("ROOTv", root), Refs: []view.Ref{
		{Attrs: []string{"RA"}, Target: aNode},
		{Attrs: []string{"RB"}, Target: bNode},
	}}
	jv := view.MustNewJoinDAG("DIAMOND", sch, rootNode)
	return &Diamond{
		Schema: sch, Root: root, A: a, B: b, C: c,
		View: jv, RootNode: rootNode, ANode: aNode, BNode: bNode, CNode: cNode,
	}
}

// RootTuple builds a ROOT tuple.
func (d *Diamond) RootTuple(rk, ra, rb int64) tuple.T {
	return tuple.MustNew(d.Root, value.NewInt(rk), value.NewInt(ra), value.NewInt(rb))
}

// ATuple builds an A tuple.
func (d *Diamond) ATuple(ak, ac int64) tuple.T {
	return tuple.MustNew(d.A, value.NewInt(ak), value.NewInt(ac))
}

// BTuple builds a B tuple.
func (d *Diamond) BTuple(bk, bc int64) tuple.T {
	return tuple.MustNew(d.B, value.NewInt(bk), value.NewInt(bc))
}

// CTuple builds a C tuple.
func (d *Diamond) CTuple(ck, cv int64) tuple.T {
	return tuple.MustNew(d.C, value.NewInt(ck), value.NewInt(cv))
}

// ViewTuple builds a DIAMOND view tuple. The schema order is the DAG
// walk order (ROOT, A, C, B): RK, RA, RB, AK, AC, CK, CV, BK, BC, with
// RA=AK, RB=BK, AC=CK=BC forced by the joins.
func (d *Diamond) ViewTuple(rk, ra, rb, ck, cv int64) tuple.T {
	return tuple.MustNew(d.View.Schema(),
		value.NewInt(rk), value.NewInt(ra), value.NewInt(rb),
		value.NewInt(ra), value.NewInt(ck),
		value.NewInt(ck), value.NewInt(cv),
		value.NewInt(rb), value.NewInt(ck))
}

// ConvergentInstance loads a state where both paths of ROOT 1 meet at
// C 5, and ROOT 2's paths diverge (A 3 -> C 5, B 4 -> C 6).
func (d *Diamond) ConvergentInstance() *storage.Database {
	db := storage.Open(d.Schema)
	must(db.LoadAll(
		d.CTuple(5, 0), d.CTuple(6, 1),
		d.ATuple(1, 5), d.ATuple(3, 5),
		d.BTuple(2, 5), d.BTuple(4, 6),
		d.RootTuple(1, 1, 2), // A1 -> C5, B2 -> C5: converges
		d.RootTuple(2, 3, 4), // A3 -> C5, B4 -> C6: diverges
	))
	return db
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("fixtures: %v", err))
	}
}
