package fixtures

import (
	"testing"

	"viewupdate/internal/value"
)

func TestEmpFixture(t *testing.T) {
	f := NewEmp(20)
	if f.Rel.Arity() != 4 || f.Rel.Key()[0] != "EmpNo" {
		t.Fatal("EMP schema wrong")
	}
	db := f.PaperInstance()
	if db.Len("EMP") != 5 {
		t.Fatalf("paper instance has %d tuples", db.Len("EMP"))
	}
	// Views reflect the §4-1 story: Susan sees New Yorkers, Frank sees
	// the team.
	p := f.ViewP.Materialize(db)
	if p.Len() != 3 {
		t.Fatalf("ViewP rows = %d", p.Len())
	}
	b := f.ViewB.Materialize(db)
	if b.Len() != 3 {
		t.Fatalf("ViewB rows = %d", b.Len())
	}
	if !p.Contains(f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)) {
		t.Fatal("employee 17 missing from ViewP")
	}
	if !b.Contains(f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)) {
		t.Fatal("employee 14 missing from ViewB")
	}
}

func TestABCXDFixture(t *testing.T) {
	f := NewABCXD()
	db := f.PaperInstance()
	if db.Len("AB") != 2 || db.Len("CXD") != 2 {
		t.Fatal("instance sizes wrong")
	}
	rows := f.View.Materialize(db)
	if rows.Len() != 2 {
		t.Fatalf("view rows = %d", rows.Len())
	}
	want := f.ViewTuple("c1", "a", 3, 1)
	if !rows.Contains(want) {
		t.Fatalf("missing %s", want)
	}
	// Join attributes are equated.
	for _, row := range rows.Slice() {
		if row.MustGet("X") != row.MustGet("A") {
			t.Fatalf("X != A in %s", row)
		}
	}
	// The inclusion dependency is registered.
	if len(f.Schema.InclusionsFrom("CXD")) != 1 {
		t.Fatal("missing inclusion dependency")
	}
}

func TestUniversityFixture(t *testing.T) {
	u := NewUniversity(10)
	db := u.SmallInstance()
	if err := db.CheckAllInclusions(); err != nil {
		t.Fatalf("instance violates inclusions: %v", err)
	}
	rows := u.View.Materialize(db)
	if rows.Len() != 2 {
		t.Fatalf("view rows = %d", rows.Len())
	}
	want := u.ViewTuple(1, "s1", "db", 4, "Ada", 2, "Databases", "cs", "Gates")
	if !rows.Contains(want) {
		t.Fatalf("missing %s in %v", want, rows.Slice())
	}
	// Preorder: ENROLL, STUDENT, COURSE, DEPT.
	nodes := u.View.Nodes()
	if len(nodes) != 4 || nodes[0].SP.Base().Name() != "ENROLL" || nodes[3].SP.Base().Name() != "DEPT" {
		t.Fatal("node order wrong")
	}
	// The view key is the root key.
	if key := u.View.Schema().Key(); len(key) != 1 || key[0] != "EID" {
		t.Fatalf("view key = %v", key)
	}
	// Join attributes are forced equal in ViewTuple.
	if want.MustGet("Stu") != want.MustGet("SID") ||
		want.MustGet("Crs") != want.MustGet("CID") ||
		want.MustGet("Dpt") != want.MustGet("DName") {
		t.Fatal("ViewTuple does not equate join attributes")
	}
	if want.MustGet("Grade") != value.NewInt(4) {
		t.Fatal("ViewTuple payload wrong")
	}
}
