package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// streamFrames encodes recs as consecutive frames.
func streamFrames(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		frame, err := Frame(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

func TestStreamReaderRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Kind: KindTranslation, Key: "k-1", TS: 42,
			Ops: []OpRecord{{Kind: "i", Rel: "EMP", Vals: []string{"1", "NY"}}}},
		HeartbeatRecord(1, 99),
		{Seq: 3, Kind: KindTranslation,
			Ops: []OpRecord{{Kind: "d", Rel: "EMP", Vals: []string{"1", "NY"}}}},
	}
	sr := NewStreamReader(bytes.NewReader(streamFrames(t, recs...)))
	for i, want := range recs {
		got, err := sr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Kind != want.Kind || got.Key != want.Key || got.TS != want.TS {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		if len(got.Ops) != len(want.Ops) {
			t.Fatalf("frame %d: %d ops, want %d", i, len(got.Ops), len(want.Ops))
		}
	}
	if _, err := sr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}
	frames, n := sr.Stats()
	if frames != 3 || n == 0 {
		t.Fatalf("stats: frames=%d bytes=%d", frames, n)
	}
}

// A stream cut mid-frame must surface as io.ErrUnexpectedEOF — the
// network twin of a torn tail — at every possible cut point, and the
// partial frame must never be surfaced as a record.
func TestStreamReaderTornEveryPrefix(t *testing.T) {
	full := streamFrames(t,
		Record{Seq: 1, Kind: KindTranslation, Ops: []OpRecord{{Kind: "i", Rel: "R", Vals: []string{"1"}}}},
		Record{Seq: 1, Kind: KindCommit},
	)
	boundaries := map[int]bool{0: true, len(full): true}
	// Recompute the frame boundary between the two records.
	first, _ := Frame(Record{Seq: 1, Kind: KindTranslation, Ops: []OpRecord{{Kind: "i", Rel: "R", Vals: []string{"1"}}}})
	boundaries[len(first)] = true
	for cut := 0; cut <= len(full); cut++ {
		sr := NewStreamReader(bytes.NewReader(full[:cut]))
		var lastErr error
		seen := 0
		for {
			_, err := sr.Next()
			if err != nil {
				lastErr = err
				break
			}
			seen++
		}
		if boundaries[cut] {
			if !errors.Is(lastErr, io.EOF) || errors.Is(lastErr, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d (boundary): want clean EOF, got %v", cut, lastErr)
			}
		} else if !errors.Is(lastErr, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d (mid-frame): want ErrUnexpectedEOF, got %v", cut, lastErr)
		}
		wantSeen := 0
		if cut >= len(first) {
			wantSeen = 1
		}
		if cut == len(full) {
			wantSeen = 2
		}
		if seen != wantSeen {
			t.Fatalf("cut %d: surfaced %d records, want %d", cut, seen, wantSeen)
		}
	}
}

func TestStreamReaderCorrupt(t *testing.T) {
	rec := Record{Seq: 7, Kind: KindTranslation, Ops: []OpRecord{{Kind: "i", Rel: "R", Vals: []string{"7"}}}}
	t.Run("bitflip", func(t *testing.T) {
		data := streamFrames(t, rec)
		data[headerSize+2] ^= 0x40 // damage the payload, keep the header
		if _, err := NewStreamReader(bytes.NewReader(data)).Next(); !errors.Is(err, ErrStreamCorrupt) {
			t.Fatalf("want ErrStreamCorrupt, got %v", err)
		}
	})
	t.Run("implausible length", func(t *testing.T) {
		data := streamFrames(t, rec)
		data[3] = 0xff // claims a multi-GB payload
		if _, err := NewStreamReader(bytes.NewReader(data)).Next(); !errors.Is(err, ErrStreamCorrupt) {
			t.Fatalf("want ErrStreamCorrupt, got %v", err)
		}
	})
}

// TS is a stream-only field: records framed without it must decode
// with TS zero, and Frame/Scan must round-trip it when present, so the
// stream and disk formats stay byte-compatible.
func TestStreamRecordTSCompat(t *testing.T) {
	plain := streamFrames(t, Record{Seq: 1, Kind: KindCommit})
	res, err := Scan(bytes.NewReader(plain))
	if err != nil || res.Torn() || len(res.Records) != 1 {
		t.Fatalf("scan: %v torn=%v n=%d", err, res.Torn(), len(res.Records))
	}
	if res.Records[0].TS != 0 {
		t.Fatalf("unstamped record decoded TS=%d", res.Records[0].TS)
	}
	stamped := streamFrames(t, Record{Seq: 2, Kind: KindCommit, TS: 1234})
	got, err := NewStreamReader(bytes.NewReader(stamped)).Next()
	if err != nil || got.TS != 1234 {
		t.Fatalf("stamped round trip: %v TS=%d", err, got.TS)
	}
}
