package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

func testSchema(t *testing.T) (*schema.Database, *schema.Relation) {
	t.Helper()
	dk, err := schema.IntRangeDomain("K", 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := schema.StringDomain("V", "u", "v", "w")
	if err != nil {
		t.Fatal(err)
	}
	p := schema.MustRelation("P",
		[]schema.Attribute{{Name: "K", Domain: dk}, {Name: "V", Domain: dv}},
		[]string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(p); err != nil {
		t.Fatal(err)
	}
	return sch, p
}

func pt(t *testing.T, p *schema.Relation, k int64, v string) tuple.T {
	t.Helper()
	tp, err := tuple.New(p, value.NewInt(k), value.NewString(v))
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// appendWorkload appends n committed translations (each inserting tuple
// k=i) plus one trailing uncommitted translation, returning the raw log
// image.
func appendWorkload(t *testing.T, p *schema.Relation, n int) []byte {
	t.Helper()
	mem := &MemFile{}
	log := New(mem, SyncOnCommit)
	for i := 0; i < n; i++ {
		tr := update.NewTranslation(update.NewInsert(pt(t, p, int64(i), "u")))
		if err := log.Append(EncodeTranslation(uint64(i+1), tr)); err != nil {
			t.Fatal(err)
		}
		if err := log.Append(CommitRecord(uint64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	// One translation that never committed: recovery must skip it.
	tr := update.NewTranslation(update.NewInsert(pt(t, p, int64(n), "w")))
	if err := log.Append(EncodeTranslation(uint64(n+1), tr)); err != nil {
		t.Fatal(err)
	}
	return mem.Bytes()
}

func TestRoundTrip(t *testing.T) {
	sch, p := testSchema(t)
	raw := appendWorkload(t, p, 3)

	res, err := Scan(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn() {
		t.Fatalf("clean log reported torn at %d: %s", res.TornAt, res.Reason)
	}
	if len(res.Records) != 7 { // 3 × (tr + commit) + 1 uncommitted
		t.Fatalf("scanned %d records, want 7", len(res.Records))
	}
	committed, discarded := res.Committed()
	if len(committed) != 3 || discarded != 1 {
		t.Fatalf("committed=%d discarded=%d, want 3 and 1", len(committed), discarded)
	}
	if got := res.MaxSeq(); got != 4 {
		t.Fatalf("MaxSeq = %d, want 4", got)
	}
	for i, rec := range committed {
		tr, err := DecodeTranslation(sch, rec)
		if err != nil {
			t.Fatal(err)
		}
		want := update.NewTranslation(update.NewInsert(pt(t, p, int64(i), "u")))
		if !tr.Equal(want) {
			t.Fatalf("record %d decoded to %s, want %s", i, tr, want)
		}
	}
}

func TestReplaceOpRoundTrip(t *testing.T) {
	sch, p := testSchema(t)
	mem := &MemFile{}
	log := New(mem, SyncNever)
	want := update.NewTranslation(update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 1, "v")))
	if err := log.Append(EncodeTranslation(1, want)); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(bytes.NewReader(mem.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTranslation(sch, res.Records[0])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("decoded %s, want %s", got, want)
	}
}

// TestTornTailEveryOffset is the package-level half of the crash-safety
// property: truncating the log at EVERY byte offset yields a clean
// prefix of whole records and a torn offset that equals the byte length
// of that prefix — re-scanning the truncated-at-TornAt image must be
// clean.
func TestTornTailEveryOffset(t *testing.T) {
	_, p := testSchema(t)
	raw := appendWorkload(t, p, 3)

	full, err := Scan(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c <= len(raw); c++ {
		res, err := Scan(bytes.NewReader(raw[:c]))
		if err != nil {
			t.Fatalf("cut %d: %v", c, err)
		}
		if len(res.Records) > len(full.Records) {
			t.Fatalf("cut %d: more records than the full log", c)
		}
		for i, rec := range res.Records {
			if rec.Seq != full.Records[i].Seq || rec.Kind != full.Records[i].Kind {
				t.Fatalf("cut %d: record %d differs from full log", c, i)
			}
		}
		if res.Torn() {
			if res.TornAt < 0 || res.TornAt > int64(c) {
				t.Fatalf("cut %d: torn offset %d out of range", c, res.TornAt)
			}
			again, err := Scan(bytes.NewReader(raw[:res.TornAt]))
			if err != nil {
				t.Fatalf("cut %d: rescan: %v", c, err)
			}
			if again.Torn() {
				t.Fatalf("cut %d: truncation to TornAt=%d still torn: %s",
					c, res.TornAt, again.Reason)
			}
			if len(again.Records) != len(res.Records) {
				t.Fatalf("cut %d: truncated log has %d records, scan saw %d",
					c, len(again.Records), len(res.Records))
			}
		} else if c == len(raw) && len(res.Records) != len(full.Records) {
			t.Fatalf("full image lost records")
		}
	}
}

// TestBitCorruptionDetected flips one bit at every payload byte offset
// and checks the checksum catches it: the scan stops at or before the
// corrupted frame and never returns a record differing from the
// original log.
func TestBitCorruptionDetected(t *testing.T) {
	_, p := testSchema(t)
	raw := appendWorkload(t, p, 2)
	full, err := Scan(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off++ {
		mem := &MemFile{}
		cw := &faultinject.CorruptWriter{W: mem, Offset: int64(off), Mask: 0x04}
		if _, err := cw.Write(raw); err != nil {
			t.Fatal(err)
		}
		res, err := Scan(bytes.NewReader(mem.Bytes()))
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		for i, rec := range res.Records {
			if rec.Seq != full.Records[i].Seq || rec.Kind != full.Records[i].Kind ||
				len(rec.Ops) != len(full.Records[i].Ops) {
				t.Fatalf("offset %d: corrupted record %d surfaced as clean", off, i)
			}
			for j, op := range rec.Ops {
				w := full.Records[i].Ops[j]
				if op.Kind != w.Kind || op.Rel != w.Rel ||
					fmt.Sprint(op.Vals, op.Old, op.New) != fmt.Sprint(w.Vals, w.Old, w.New) {
					t.Fatalf("offset %d: corrupted op %d.%d surfaced as clean", off, i, j)
				}
			}
		}
		if !res.Torn() {
			t.Fatalf("offset %d: corruption not detected", off)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	_, p := testSchema(t)
	tr := update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))
	for _, tc := range []struct {
		policy SyncPolicy
		want   int // syncs after tr-record + commit-record
	}{
		{SyncNever, 0},
		{SyncOnCommit, 1},
		{SyncAlways, 2},
	} {
		mem := &MemFile{}
		log := New(mem, tc.policy)
		if err := log.Append(EncodeTranslation(1, tr)); err != nil {
			t.Fatal(err)
		}
		if err := log.Append(CommitRecord(1)); err != nil {
			t.Fatal(err)
		}
		if mem.Syncs() != tc.want {
			t.Fatalf("%s: %d syncs, want %d", tc.policy, mem.Syncs(), tc.want)
		}
	}
	// Round-trip of the policy names.
	for _, p := range []SyncPolicy{SyncOnCommit, SyncAlways, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy should reject unknown names")
	}
}

func TestAppendFaultInjection(t *testing.T) {
	_, p := testSchema(t)
	mem := &MemFile{}
	log := New(mem, SyncNever)
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteWALAppend, 1, errors.New("boom")))
	defer faultinject.Disable()
	tr := update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))
	if err := log.Append(EncodeTranslation(1, tr)); err == nil {
		t.Fatal("injected append fault did not surface")
	}
	if len(mem.Bytes()) != 0 {
		t.Fatal("failed append reached the media")
	}
	if err := log.Append(EncodeTranslation(1, tr)); err != nil {
		t.Fatalf("second append: %v", err)
	}
}

// shortWriter fails its failNth-th Write after persisting only half the
// bytes — the prefix a real write(2) can leave behind — then recovers.
// Truncate and Sync come from the embedded MemFile.
type shortWriter struct {
	*MemFile
	failNth int
	calls   int
}

func (s *shortWriter) Write(p []byte) (int, error) {
	s.calls++
	if s.calls == s.failNth {
		n, _ := s.MemFile.Write(p[:len(p)/2])
		return n, errors.New("short write")
	}
	return s.MemFile.Write(p)
}

// TestAppendRepairsPartialWrite: a failed append that left half a frame
// on the media must not let the next append land after the garbage —
// the log truncates back to the last intact frame, so the image stays
// clean and later records remain reachable by Scan.
func TestAppendRepairsPartialWrite(t *testing.T) {
	_, p := testSchema(t)
	sw := &shortWriter{MemFile: &MemFile{}, failNth: 2}
	log := New(sw, SyncNever)
	tr := func(k int64) Record {
		return EncodeTranslation(uint64(k), update.NewTranslation(update.NewInsert(pt(t, p, k, "u"))))
	}
	if err := log.Append(tr(1)); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(tr(2)); err == nil {
		t.Fatal("short write did not surface")
	}
	if log.Sealed() != nil {
		t.Fatalf("repairable media sealed the log: %v", log.Sealed())
	}
	if err := log.Append(tr(3)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	res, err := Scan(bytes.NewReader(sw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn() {
		t.Fatalf("repaired log still torn at %d: %s", res.TornAt, res.Reason)
	}
	if len(res.Records) != 2 || res.Records[0].Seq != 1 || res.Records[1].Seq != 3 {
		t.Fatalf("scanned %+v, want seqs 1 and 3", res.Records)
	}
}

// noRepairFile is media that fails from its second write on and cannot
// truncate: the log must seal rather than append beyond possible
// garbage.
type noRepairFile struct{ calls int }

func (f *noRepairFile) Write(p []byte) (int, error) {
	f.calls++
	if f.calls >= 2 {
		return len(p) / 2, errors.New("media gone")
	}
	return len(p), nil
}

func (f *noRepairFile) Sync() error { return nil }

func TestAppendSealsWhenUnrepairable(t *testing.T) {
	_, p := testSchema(t)
	log := New(&noRepairFile{}, SyncNever)
	tr := update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))
	if err := log.Append(EncodeTranslation(1, tr)); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(EncodeTranslation(2, tr)); err == nil {
		t.Fatal("failed write did not surface")
	}
	if log.Sealed() == nil {
		t.Fatal("unrepairable media must seal the log")
	}
	err := log.Append(EncodeTranslation(3, tr))
	if !errors.Is(err, ErrSealed) {
		t.Fatalf("append on sealed log = %v, want ErrSealed chain", err)
	}
	if err := log.Sync(); !errors.Is(err, ErrSealed) {
		t.Fatalf("sync on sealed log = %v, want ErrSealed chain", err)
	}
}

// syncFailFile writes fine but cannot provide a durability barrier.
type syncFailFile struct{ MemFile }

func (f *syncFailFile) Sync() error { return errors.New("barrier lost") }

// TestSyncFailureSealsLog: after a failed fsync the fate of every
// unsynced byte is unknown, so the log refuses further work instead of
// pretending the tail is durable.
func TestSyncFailureSealsLog(t *testing.T) {
	_, p := testSchema(t)
	log := New(&syncFailFile{}, SyncAlways)
	tr := update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))
	if err := log.Append(EncodeTranslation(1, tr)); err == nil {
		t.Fatal("failed sync did not surface")
	}
	if err := log.Append(EncodeTranslation(2, tr)); !errors.Is(err, ErrSealed) {
		t.Fatalf("append after failed sync = %v, want ErrSealed chain", err)
	}
}

func TestOpenFileAppendAndRescan(t *testing.T) {
	sch, p := testSchema(t)
	path := filepath.Join(t.TempDir(), "x.wal")
	log, size, err := OpenFile(path, SyncOnCommit)
	if err != nil {
		t.Fatal(err)
	}
	if size != 0 {
		t.Fatalf("fresh log has size %d", size)
	}
	tr := update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))
	if err := log.Append(EncodeTranslation(1, tr)); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(CommitRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open: size is nonzero, appends land after the old records.
	log, size, err = OpenFile(path, SyncOnCommit)
	if err != nil {
		t.Fatal(err)
	}
	if size == 0 {
		t.Fatal("reopened log lost its records")
	}
	tr2 := update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))
	if err := log.Append(EncodeTranslation(2, tr2)); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(CommitRecord(2)); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := ScanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	committed, discarded := res.Committed()
	if len(committed) != 2 || discarded != 0 {
		t.Fatalf("committed=%d discarded=%d, want 2 and 0", len(committed), discarded)
	}
	if _, err := DecodeTranslation(sch, committed[1]); err != nil {
		t.Fatal(err)
	}

	// A missing file scans as empty and clean.
	res, err = ScanFile(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil || res.Torn() || len(res.Records) != 0 {
		t.Fatalf("missing file scan = %+v, %v", res, err)
	}
}

func TestDecodeRejectsSchemaMismatch(t *testing.T) {
	sch, _ := testSchema(t)
	for _, rec := range []Record{
		{Seq: 1, Kind: KindTranslation, Ops: []OpRecord{{Kind: "i", Rel: "NOPE", Vals: []string{"i1", `s"u"`}}}},
		{Seq: 1, Kind: KindTranslation, Ops: []OpRecord{{Kind: "i", Rel: "P", Vals: []string{"i1"}}}},
		{Seq: 1, Kind: KindTranslation, Ops: []OpRecord{{Kind: "i", Rel: "P", Vals: []string{"zz", `s"u"`}}}},
		{Seq: 1, Kind: KindTranslation, Ops: []OpRecord{{Kind: "x", Rel: "P", Vals: []string{"i1", `s"u"`}}}},
		{Seq: 1, Kind: KindCommit},
	} {
		if _, err := DecodeTranslation(sch, rec); err == nil {
			t.Fatalf("DecodeTranslation accepted bad record %+v", rec)
		}
	}
}

// FuzzScan feeds arbitrary bytes to the scanner: it must never panic,
// never return a hard error for in-memory input, and its reported torn
// offset must always be a clean re-scannable prefix length.
func FuzzScan(f *testing.F) {
	dk, _ := schema.IntRangeDomain("K", 0, 9)
	p := schema.MustRelation("P", []schema.Attribute{{Name: "K", Domain: dk}}, []string{"K"})
	mem := &MemFile{}
	log := New(mem, SyncNever)
	tp, _ := tuple.New(p, value.NewInt(1))
	_ = log.Append(EncodeTranslation(1, update.NewTranslation(update.NewInsert(tp))))
	_ = log.Append(CommitRecord(1))
	f.Add(mem.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Scan(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory scan errored: %v", err)
		}
		if res.Torn() {
			if res.TornAt < 0 || res.TornAt > int64(len(data)) {
				t.Fatalf("torn offset %d out of [0,%d]", res.TornAt, len(data))
			}
			again, err := Scan(bytes.NewReader(data[:res.TornAt]))
			if err != nil || again.Torn() {
				t.Fatalf("prefix up to TornAt not clean: %+v, %v", again, err)
			}
		}
	})
}
