// Package wal implements the durable write-ahead log of the
// translation pipeline: an append-only, CRC32-checksummed record log
// (stdlib only) that journals every committed translation.
//
// # Record format
//
// The log is a sequence of frames:
//
//	[4 bytes  payload length, little-endian uint32]
//	[4 bytes  CRC32-Castagnoli of the payload,  little-endian]
//	[payload  JSON-encoded Record]
//
// Each frame is written with a single Write call, so a crash tears at
// most the last frame. The core record kinds are a translation record
// (sequence number plus the translation's operations, with every tuple
// value in its canonical text encoding) and a commit marker carrying
// just the sequence number. The commit protocol is
//
//	append translation(seq) → apply to memory → append commit(seq)
//
// so a translation record without a later commit marker is, by
// construction, uncommitted and is discarded at recovery.
//
// Three further kinds serve the sharded engine's two-phase commit
// (internal/shard): a prepare record journals one participant's slice
// of a cross-shard commit, a decision record on the coordinator shard
// marks it committed, and a resolve marker lazily settles a prepare in
// place. See CommittedWith for how recovery resolves them.
//
// # Torn tails
//
// Scan reads frames until the first one that is incomplete, fails its
// checksum, or does not decode; everything from that byte offset on is
// the torn tail. Recovery truncates the file there. A checksum failure
// in the middle of a log (bit rot) is handled the same way: the clean
// prefix wins, the rest is dropped — the WAL's contract is "some
// committed prefix", never a partial translation.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// Record kinds.
const (
	// KindTranslation journals one translation's operations.
	KindTranslation = 1
	// KindCommit marks the translation with the same Seq as durably
	// applied.
	KindCommit = 2
	// KindPrepare journals one participant's slice of a cross-shard
	// commit (see internal/shard): the ops this shard applies, the
	// idempotency key, and the coordinator shard index. A prepare is
	// provisional — it commits only if a KindDecision record with the
	// same Seq exists on the coordinator (or a later KindResolve marker
	// on this log), and is otherwise presumed aborted at recovery.
	KindPrepare = 3
	// KindDecision, written on the coordinator shard's log after every
	// participant's prepare is durable, marks the cross-shard commit
	// with the same Seq as committed. Abort decisions are never
	// journaled: no decision means abort (presumed abort).
	KindDecision = 4
	// KindResolve is a lazy completion marker appended to a
	// participant's log after the decision is durable, so that shard's
	// recovery can resolve the prepare locally instead of consulting
	// the coordinator. It carries no durability requirement of its own
	// and never triggers a sync.
	KindResolve = 5
	// KindHeartbeat is a stream-only record (never written to disk):
	// the replication source emits it periodically on /wal/stream with
	// Seq set to its current durable watermark and TS to its wall
	// clock, so an idle follower can still measure sequence lag and
	// detect a dead connection. Followers never apply it. See
	// docs/REPLICATION.md.
	KindHeartbeat = 6
)

// MaxRecordSize bounds a frame payload; Scan treats larger claimed
// lengths as corruption rather than allocating unbounded memory.
const MaxRecordSize = 1 << 26

// kindNeedsSync reports whether a record of the given kind acts as a
// durability point under SyncOnCommit. Commit markers do (the classic
// group-commit barrier); prepare and decision records do too — the 2PC
// protocol's correctness ("acked implies durable on every participant")
// rests on each being on media before the protocol advances. Resolve
// markers are pure hints and explicitly do not.
func kindNeedsSync(kind int) bool {
	return kind == KindCommit || kind == KindPrepare || kind == KindDecision
}

// ErrSealed marks a log that suffered an append failure it could not
// repair: the media may hold a partial frame, and appending after it
// would put committed records beyond a tear where Scan never reads
// them. A sealed log refuses all further appends; reopen the store to
// recover.
var ErrSealed = errors.New("wal: log sealed after unrepaired append failure")

// headerSize is the frame header: 4 length bytes + 4 CRC bytes.
const headerSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// An OpRecord serializes one update operation. Kind is "i" (insert),
// "d" (delete) or "r" (replace); tuples are value encodings in schema
// order.
type OpRecord struct {
	Kind string   `json:"k"`
	Rel  string   `json:"rel"`
	Vals []string `json:"v,omitempty"`   // insert/delete payload
	Old  []string `json:"old,omitempty"` // replace: removed tuple
	New  []string `json:"new,omitempty"` // replace: added tuple
}

// A Record is one log entry.
type Record struct {
	Seq  uint64     `json:"seq"`
	Kind int        `json:"kind"`
	Ops  []OpRecord `json:"ops,omitempty"`
	// Key is the client-supplied idempotency key of a translation or
	// prepare record, when the commit carried one. Recovery replays
	// keys into the serving layer's dedup table, so a client retrying
	// an ambiguous ack across a crash still gets the original outcome
	// instead of a double apply.
	Key string `json:"id,omitempty"`
	// Coord is the coordinator shard index of a prepare record: the
	// shard whose log holds (or would hold) the decision for this Seq.
	Coord int `json:"coord,omitempty"`
	// TS is the source's commit wall clock in unix nanoseconds,
	// stamped only on records sent over /wal/stream (and on heartbeat
	// frames); disk frames never carry it. Followers subtract it from
	// their own apply time for the replication staleness gauges. Zero
	// means unknown — a record served from the source's disk during
	// gap-fill rather than from its live commit feed.
	TS int64 `json:"ts,omitempty"`
}

// SyncPolicy controls when the log calls Sync on its media.
type SyncPolicy int

const (
	// SyncOnCommit syncs after every commit marker (the default): a
	// crash can lose the in-flight translation but never a committed
	// one.
	SyncOnCommit SyncPolicy = iota
	// SyncAlways syncs after every record.
	SyncAlways
	// SyncNever leaves syncing to the OS; fastest, weakest.
	SyncNever
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncOnCommit:
		return "commit"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "commit", "always" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "commit":
		return SyncOnCommit, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want commit|always|never)", s)
	}
}

// File is the minimal media contract of the log: ordered writes plus a
// durability barrier. *os.File satisfies it; MemFile provides an
// in-memory implementation; the faultinject writers wrap either.
type File interface {
	io.Writer
	Sync() error
}

// truncater is the optional repair capability of the media: cutting the
// file back to a known-good length after a failed append. *os.File,
// MemFile, and the faultinject writers all provide it.
type truncater interface{ Truncate(size int64) error }

// A MemFile is an in-memory File for tests and property harnesses.
type MemFile struct {
	buf   []byte
	syncs int
}

// Write implements io.Writer.
func (m *MemFile) Write(p []byte) (int, error) {
	m.buf = append(m.buf, p...)
	return len(p), nil
}

// Sync implements File, counting barrier calls.
func (m *MemFile) Sync() error {
	m.syncs++
	return nil
}

// Truncate cuts the log image back to size bytes.
func (m *MemFile) Truncate(size int64) error {
	if size < 0 || size > int64(len(m.buf)) {
		return fmt.Errorf("wal: truncate to %d outside [0,%d]", size, len(m.buf))
	}
	m.buf = m.buf[:size]
	return nil
}

// Bytes returns the accumulated log image.
func (m *MemFile) Bytes() []byte { return m.buf }

// Syncs returns the number of Sync calls observed.
func (m *MemFile) Syncs() int { return m.syncs }

// A Log appends records to a File under a mutex. It performs no
// buffering of its own: every Append reaches the media in one Write.
// The log tracks the last known-good frame boundary; a failed append is
// repaired by truncating back to it (a real write can persist a prefix
// before failing), and if the media cannot be truncated the log seals
// itself — see ErrSealed.
type Log struct {
	mu     sync.Mutex
	f      File
	closer io.Closer
	policy SyncPolicy
	off    int64 // bytes of intact frames, the truncate-back point
	sealed error // non-nil once the tail can no longer be trusted
}

// New returns a log appending to an empty f under the given sync
// policy. For media that already holds frames, use NewAt.
func New(f File, policy SyncPolicy) *Log {
	return NewAt(f, policy, 0)
}

// NewAt returns a log appending to f, whose current length is off
// bytes of intact frames, under the given sync policy.
func NewAt(f File, policy SyncPolicy, off int64) *Log {
	return &Log{f: f, policy: policy, off: off}
}

// OpenFile opens (creating if absent) the log file at path for
// appending and returns the log plus the current file size.
func OpenFile(path string, policy SyncPolicy) (*Log, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	return &Log{f: f, closer: f, policy: policy, off: st.Size()}, st.Size(), nil
}

// Frame encodes rec as one on-disk frame.
func Frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(payload) > MaxRecordSize {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordSize", len(payload))
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// Append writes rec as one frame, syncing per policy. The append is
// all-or-torn: a crash mid-write leaves a tail that Scan detects and
// recovery truncates. A failed append is repaired in place — the file
// is cut back to the last intact frame, so a retry is sound and later
// appends never land beyond a tear. When the repair itself fails, the
// log seals: every further Append returns an error chaining ErrSealed
// and the original cause.
func (l *Log) Append(rec Record) error {
	if ferr := faultinject.Hit(faultinject.SiteWALAppend); ferr != nil {
		return fmt.Errorf("wal: %w", ferr)
	}
	sp := obs.StartSpan("wal.append")
	defer sp.End()
	frame, err := Frame(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed != nil {
		return l.sealed
	}
	if _, err := l.f.Write(frame); err != nil {
		// write(2) can persist a prefix before failing; cut the file
		// back to the last intact frame so a later append cannot land
		// after garbage that would stop Scan short of it.
		l.repairLocked(err)
		return fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(len(frame))
	obs.Inc("wal.append")
	if l.policy == SyncAlways || (l.policy == SyncOnCommit && kindNeedsSync(rec.Kind)) {
		if _, err := l.syncTimedLocked(); err != nil {
			// After a failed durability barrier the fate of every
			// unsynced byte is unknown; no truncate can re-prove the
			// tail, so the log is done.
			l.sealLocked(err)
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// syncTimedLocked runs a durability barrier and, when instrumentation
// is enabled, reports its duration in nanoseconds and records it in the
// "wal.fsync.ns" histogram. With instrumentation disabled the clock is
// never read and 0 is reported. Callers hold l.mu.
func (l *Log) syncTimedLocked() (int64, error) {
	if ferr := faultinject.Hit(faultinject.SiteWALSync); ferr != nil {
		return 0, ferr
	}
	timed := obs.Enabled()
	var start time.Time
	if timed {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	obs.Inc("wal.sync")
	if !timed {
		return 0, nil
	}
	d := int64(time.Since(start))
	obs.Observe("wal.fsync.ns", d)
	return d, nil
}

// AppendBatch writes recs as consecutive frames in one Write call,
// followed by at most one durability barrier: the batch syncs when the
// policy is SyncAlways, or when it is SyncOnCommit and the batch
// carries at least one commit marker. This is the group-commit
// primitive — n concurrent commits share a single write+fsync instead
// of paying one each.
//
// Atomicity is per frame, exactly as with Append: a crash mid-batch
// tears at some byte offset, Scan keeps the intact frame prefix, and
// any translation record whose commit marker fell beyond the tear is
// discarded at recovery. Failure handling also matches Append: a failed
// write is repaired by truncating back to the last intact frame (so no
// record of the batch survives), and a failed repair or sync seals the
// log.
func (l *Log) AppendBatch(recs []Record) error {
	_, err := l.AppendBatchStats(recs)
	return err
}

// BatchStats reports where one AppendBatch spent its time. The fields
// are populated only while instrumentation is enabled (obs.Enabled());
// with it disabled the append path never reads the clock and the stats
// are zero except Synced.
type BatchStats struct {
	// WriteNS is the time spent in the media Write call.
	WriteNS int64
	// SyncNS is the time spent in the durability barrier (0 when the
	// policy skipped it).
	SyncNS int64
	// Synced reports whether the batch ended with a durability barrier.
	Synced bool
}

// A batchScratch is one reusable batch-encode workspace: records
// marshal through enc into payload, and the finished frames accumulate
// in frames — no per-record allocation once the scratch is warm.
type batchScratch struct {
	frames  []byte
	payload bytes.Buffer
	enc     *json.Encoder
}

// maxPooledScratch caps how large a retained scratch may grow; an
// outsized batch (giant translations) is dropped for the GC instead of
// pinning its high-water mark in the pool.
const maxPooledScratch = 1 << 20

var scratchPool = sync.Pool{New: func() any {
	s := &batchScratch{}
	s.enc = json.NewEncoder(&s.payload)
	return s
}}

// appendFrame encodes rec as one frame into the scratch. The payload
// bytes are identical to Frame's json.Marshal output (the encoder's
// trailing newline is stripped), so batched and single appends produce
// byte-identical media.
func (s *batchScratch) appendFrame(rec Record) error {
	s.payload.Reset()
	if err := s.enc.Encode(rec); err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	payload := s.payload.Bytes()
	payload = payload[:len(payload)-1] // json.Encoder appends '\n'
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordSize", len(payload))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	s.frames = append(s.frames, hdr[:]...)
	s.frames = append(s.frames, payload...)
	return nil
}

// AppendBatchStats is AppendBatch returning a timing breakdown of the
// write and the fsync — the serving layer threads these into per-request
// pipeline traces. See AppendBatch for the append semantics. Encoding
// runs on pooled scratch: the committer calls this once per batch on
// the hot path, and per-record frame allocations were a measurable
// share of its profile.
func (l *Log) AppendBatchStats(recs []Record) (BatchStats, error) {
	var stats BatchStats
	if len(recs) == 0 {
		return stats, nil
	}
	if ferr := faultinject.Hit(faultinject.SiteWALAppend); ferr != nil {
		return stats, fmt.Errorf("wal: %w", ferr)
	}
	sp := obs.StartSpan("wal.append_batch")
	defer sp.End()
	scratch := scratchPool.Get().(*batchScratch)
	defer func() {
		if cap(scratch.frames) <= maxPooledScratch && scratch.payload.Cap() <= maxPooledScratch {
			scratchPool.Put(scratch)
		}
	}()
	scratch.frames = scratch.frames[:0]
	hasCommit := false
	for _, rec := range recs {
		if err := scratch.appendFrame(rec); err != nil {
			return stats, err
		}
		if kindNeedsSync(rec.Kind) {
			hasCommit = true
		}
	}
	buf := scratch.frames
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed != nil {
		return stats, l.sealed
	}
	timed := obs.Enabled()
	var start time.Time
	if timed {
		start = time.Now()
	}
	if _, err := l.f.Write(buf); err != nil {
		l.repairLocked(err)
		return stats, fmt.Errorf("wal: append batch: %w", err)
	}
	if timed {
		stats.WriteNS = int64(time.Since(start))
	}
	l.off += int64(len(buf))
	obs.Add("wal.append", int64(len(recs)))
	obs.Inc("wal.append_batch")
	if l.policy == SyncAlways || (l.policy == SyncOnCommit && hasCommit) {
		d, err := l.syncTimedLocked()
		if err != nil {
			l.sealLocked(err)
			return stats, fmt.Errorf("wal: sync: %w", err)
		}
		stats.SyncNS = d
		stats.Synced = true
	}
	return stats, nil
}

// repairLocked restores the media to the last known-good frame boundary
// after a failed write, sealing the log when it cannot.
func (l *Log) repairLocked(cause error) {
	if t, ok := l.f.(truncater); ok {
		if err := t.Truncate(l.off); err == nil {
			obs.Inc("wal.append.repaired")
			return
		}
	}
	l.sealLocked(cause)
}

func (l *Log) sealLocked(cause error) {
	l.sealed = fmt.Errorf("%w (cause: %w)", ErrSealed, cause)
	obs.Inc("wal.sealed")
}

// Sealed returns the sealing error, or nil while the log accepts
// appends.
func (l *Log) Sealed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

// Sync forces a durability barrier regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed != nil {
		return l.sealed
	}
	if _, err := l.syncTimedLocked(); err != nil {
		l.sealLocked(err)
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close closes the underlying file, when it is closable, after a final
// sync. A sealed log skips the sync — its tail is already suspect — and
// only releases the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed == nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	if l.closer != nil {
		return l.closer.Close()
	}
	return nil
}

// A ScanResult holds the clean prefix of a log.
type ScanResult struct {
	// Records are the intact records in log order.
	Records []Record
	// TornAt is the byte offset of the first damaged frame, or -1 when
	// the log is clean. Recovery truncates the file to this length.
	TornAt int64
	// Reason describes the damage when TornAt >= 0.
	Reason string
}

// Torn reports whether the log has a damaged tail.
func (r *ScanResult) Torn() bool { return r.TornAt >= 0 }

// Scan reads frames from r until EOF or the first damaged frame.
// Damage — a partial frame, a checksum mismatch, an implausible length,
// an undecodable payload — is not an error: the result carries the
// clean prefix and the torn offset. Only genuine read failures of the
// underlying reader are returned as errors.
func Scan(r io.Reader) (*ScanResult, error) {
	br := bufio.NewReader(r)
	res := &ScanResult{TornAt: -1}
	var off int64
	torn := func(reason string) (*ScanResult, error) {
		res.TornAt = off
		res.Reason = reason
		obs.Inc("wal.scan.torn")
		return res, nil
	}
	for {
		header := make([]byte, headerSize)
		n, err := io.ReadFull(br, header)
		if n == 0 && errors.Is(err, io.EOF) {
			return res, nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return torn("partial frame header")
		}
		if err != nil {
			return nil, fmt.Errorf("wal: reading header: %w", err)
		}
		ln := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if ln == 0 || ln > MaxRecordSize {
			return torn(fmt.Sprintf("implausible record length %d", ln))
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return torn("partial record payload")
			}
			return nil, fmt.Errorf("wal: reading payload: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return torn("checksum mismatch")
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return torn("undecodable record")
		}
		res.Records = append(res.Records, rec)
		off += headerSize + int64(ln)
	}
}

// ScanFile scans the log file at path. A missing file scans as an
// empty, clean log.
func ScanFile(path string) (*ScanResult, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &ScanResult{TornAt: -1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return Scan(f)
}

// Committed returns the translation records that have a matching commit
// marker later in the scanned prefix, in commit order, plus the number
// of uncommitted translation records discarded.
func (r *ScanResult) Committed() (committed []Record, discarded int) {
	pending := make(map[uint64]Record)
	for _, rec := range r.Records {
		switch rec.Kind {
		case KindTranslation:
			pending[rec.Seq] = rec
		case KindCommit:
			if tr, ok := pending[rec.Seq]; ok {
				committed = append(committed, tr)
				delete(pending, rec.Seq)
			}
		}
	}
	return committed, len(pending)
}

// Decisions returns the set of sequence numbers with a KindDecision
// record in the scanned prefix. A cross-shard recovery unions the
// decision sets of every shard's log before resolving prepares.
func (r *ScanResult) Decisions() map[uint64]bool {
	var out map[uint64]bool
	for _, rec := range r.Records {
		if rec.Kind == KindDecision {
			if out == nil {
				out = make(map[uint64]bool)
			}
			out[rec.Seq] = true
		}
	}
	return out
}

// CommittedWith is Committed extended with cross-shard prepares: a
// prepare record commits if a KindResolve marker with the same Seq
// follows it in this log, or if decisions — the union of KindDecision
// seqs across every shard — contains its Seq. Prepares satisfying
// neither are in-doubt and, under presumed abort, discarded; inDoubt
// counts them separately from ordinary uncommitted translations.
// Records are returned in log order (the caller merges shards and
// orders globally by Seq).
func (r *ScanResult) CommittedWith(decisions map[uint64]bool) (committed []Record, discarded, inDoubt int) {
	pending := make(map[uint64]Record)
	prepared := make(map[uint64]Record)
	var order []Record
	settle := func(rec Record) { order = append(order, rec) }
	for _, rec := range r.Records {
		switch rec.Kind {
		case KindTranslation:
			pending[rec.Seq] = rec
		case KindCommit:
			if tr, ok := pending[rec.Seq]; ok {
				settle(tr)
				delete(pending, rec.Seq)
			}
		case KindPrepare:
			prepared[rec.Seq] = rec
		case KindResolve:
			if p, ok := prepared[rec.Seq]; ok {
				settle(p)
				delete(prepared, rec.Seq)
			}
		}
	}
	for seq, p := range prepared {
		if decisions[seq] {
			settle(p)
			delete(prepared, seq)
		}
	}
	// settle appended resolve-time and decision-time commits out of log
	// order for the decision stragglers; restore record order by Seq
	// within this log (seqs are globally monotone, so Seq order is log
	// order for one shard's committed set).
	sort.Slice(order, func(i, j int) bool { return order[i].Seq < order[j].Seq })
	return order, len(pending), len(prepared)
}

// MaxSeq returns the highest sequence number in the scanned prefix (0
// for an empty log).
func (r *ScanResult) MaxSeq() uint64 {
	var max uint64
	for _, rec := range r.Records {
		if rec.Seq > max {
			max = rec.Seq
		}
	}
	return max
}

// EncodeTranslation builds the translation record journaling tr under
// the given sequence number.
func EncodeTranslation(seq uint64, tr *update.Translation) Record {
	return EncodeTranslationKeyed(seq, "", tr)
}

// EncodeTranslationKeyed is EncodeTranslation stamping the record with
// a client-supplied idempotency key (empty means none).
func EncodeTranslationKeyed(seq uint64, key string, tr *update.Translation) Record {
	return Record{Seq: seq, Kind: KindTranslation, Key: key, Ops: encodeOps(tr)}
}

func encodeOps(tr *update.Translation) []OpRecord {
	var out []OpRecord
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Insert:
			out = append(out, OpRecord{Kind: "i", Rel: o.RelationName(), Vals: encodeVals(o.Tuple)})
		case update.Delete:
			out = append(out, OpRecord{Kind: "d", Rel: o.RelationName(), Vals: encodeVals(o.Tuple)})
		case update.Replace:
			out = append(out, OpRecord{Kind: "r", Rel: o.RelationName(), Old: encodeVals(o.Old), New: encodeVals(o.New)})
		}
	}
	return out
}

// CommitRecord builds the commit marker for seq.
func CommitRecord(seq uint64) Record { return Record{Seq: seq, Kind: KindCommit} }

// HeartbeatRecord builds a stream-only heartbeat frame: the source's
// current durable watermark plus its wall clock (unix nanoseconds).
func HeartbeatRecord(seq uint64, ts int64) Record {
	return Record{Seq: seq, Kind: KindHeartbeat, TS: ts}
}

// PrepareRecord builds one participant's prepare record of a
// cross-shard commit: the ops that participant applies, the client's
// idempotency key (empty means none), and the coordinator shard whose
// log will carry the decision. All participants of one cross-shard
// commit share the same (globally allocated) seq.
func PrepareRecord(seq uint64, key string, coord int, part *update.Translation) Record {
	return Record{Seq: seq, Kind: KindPrepare, Key: key, Coord: coord, Ops: encodeOps(part)}
}

// DecisionRecord builds the commit decision for the cross-shard commit
// with the given seq.
func DecisionRecord(seq uint64) Record { return Record{Seq: seq, Kind: KindDecision} }

// ResolveRecord builds the lazy resolution marker for seq.
func ResolveRecord(seq uint64) Record { return Record{Seq: seq, Kind: KindResolve} }

func encodeVals(t tuple.T) []string {
	vals := t.Values()
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.Encode()
	}
	return out
}

// DecodeTranslation rebuilds the translation journaled in rec — a
// translation record or a cross-shard prepare — against sch. It fails
// on unknown relations, arity mismatches, or values that do not decode
// or fall outside their domains — a record that passed its checksum but
// disagrees with the schema indicates corruption or a snapshot/WAL
// mismatch.
func DecodeTranslation(sch *schema.Database, rec Record) (*update.Translation, error) {
	if rec.Kind != KindTranslation && rec.Kind != KindPrepare {
		return nil, fmt.Errorf("wal: record seq %d is not a translation", rec.Seq)
	}
	tr := update.NewTranslation()
	for _, o := range rec.Ops {
		rel := sch.Relation(o.Rel)
		if rel == nil {
			return nil, fmt.Errorf("wal: record seq %d references unknown relation %s", rec.Seq, o.Rel)
		}
		switch o.Kind {
		case "i", "d":
			t, err := decodeTuple(rel, o.Vals)
			if err != nil {
				return nil, fmt.Errorf("wal: record seq %d: %w", rec.Seq, err)
			}
			if o.Kind == "i" {
				tr.Add(update.NewInsert(t))
			} else {
				tr.Add(update.NewDelete(t))
			}
		case "r":
			old, err := decodeTuple(rel, o.Old)
			if err != nil {
				return nil, fmt.Errorf("wal: record seq %d: %w", rec.Seq, err)
			}
			new, err := decodeTuple(rel, o.New)
			if err != nil {
				return nil, fmt.Errorf("wal: record seq %d: %w", rec.Seq, err)
			}
			tr.Add(update.NewReplace(old, new))
		default:
			return nil, fmt.Errorf("wal: record seq %d has unknown op kind %q", rec.Seq, o.Kind)
		}
	}
	return tr, nil
}

func decodeTuple(rel *schema.Relation, encs []string) (tuple.T, error) {
	if len(encs) != rel.Arity() {
		return tuple.T{}, fmt.Errorf("%s tuple has %d values, want %d", rel.Name(), len(encs), rel.Arity())
	}
	vals := make([]value.Value, len(encs))
	for i, enc := range encs {
		v, err := value.Decode(enc)
		if err != nil {
			return tuple.T{}, fmt.Errorf("%s tuple: %w", rel.Name(), err)
		}
		vals[i] = v
	}
	return tuple.New(rel, vals...)
}
