package wal

// The stream reader is the follower side of WAL streaming
// (/wal/stream, see docs/REPLICATION.md): the same CRC-framed records
// as the on-disk log, decoded incrementally from a network stream
// instead of scanned whole. The torn-tail contract changes shape at a
// stream boundary — a disk scan folds all damage into "truncate here",
// but a stream reader must tell three endings apart:
//
//   - io.EOF exactly between frames: the source closed the stream
//     cleanly (drain, backlog overrun); reconnect and resume from the
//     applied watermark.
//   - io.ErrUnexpectedEOF mid-frame: the connection died inside a
//     frame — the network twin of a torn tail. The partial frame is
//     discarded (never surfaced as a record); reconnect and resume.
//   - ErrStreamCorrupt: bytes arrived but fail the checksum or do not
//     decode. The source's disk copy is intact, so the right move is
//     again to drop the connection and resume from the watermark —
//     but the damage is counted separately, because recurring
//     corruption on a reliable transport means a real bug.
//
// In every case resuming from the applied-seq watermark is sound: the
// source re-serves from there and the follower skips records at or
// below what it already applied.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"viewupdate/internal/obs"
)

// ErrStreamCorrupt marks a stream frame that arrived complete but
// damaged: checksum mismatch, implausible length, or undecodable
// payload.
var ErrStreamCorrupt = errors.New("wal: corrupt stream frame")

// A StreamReader decodes WAL frames from a byte stream one at a time.
// It buffers internally and reuses its payload scratch across frames,
// so steady-state reading allocates only what json decoding needs.
// Not safe for concurrent use.
type StreamReader struct {
	br      *bufio.Reader
	payload []byte
	frames  int64
	bytes   int64
}

// NewStreamReader wraps r (typically a streaming HTTP response body).
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReaderSize(r, 32<<10)}
}

// Stats reports how many intact frames and payload+header bytes this
// reader has decoded.
func (s *StreamReader) Stats() (frames, bytes int64) { return s.frames, s.bytes }

// Next blocks until the next intact frame is available and returns its
// record. Errors follow the contract in the package comment: io.EOF at
// a clean frame boundary, io.ErrUnexpectedEOF for a connection torn
// mid-frame, ErrStreamCorrupt (wrapped, with the reason) for damaged
// bytes, and any other underlying read error verbatim.
func (s *StreamReader) Next() (Record, error) {
	var rec Record
	var hdr [headerSize]byte
	if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return rec, io.EOF // clean boundary
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			obs.Inc("wal.stream.torn")
			return rec, io.ErrUnexpectedEOF
		}
		return rec, fmt.Errorf("wal: reading stream header: %w", err)
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if ln == 0 || ln > MaxRecordSize {
		obs.Inc("wal.stream.corrupt")
		return rec, fmt.Errorf("%w: implausible record length %d", ErrStreamCorrupt, ln)
	}
	if cap(s.payload) < int(ln) {
		s.payload = make([]byte, ln)
	}
	payload := s.payload[:ln]
	if _, err := io.ReadFull(s.br, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			obs.Inc("wal.stream.torn")
			return rec, io.ErrUnexpectedEOF
		}
		return rec, fmt.Errorf("wal: reading stream payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		obs.Inc("wal.stream.corrupt")
		return rec, fmt.Errorf("%w: checksum mismatch", ErrStreamCorrupt)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		obs.Inc("wal.stream.corrupt")
		return rec, fmt.Errorf("%w: undecodable record: %v", ErrStreamCorrupt, err)
	}
	s.frames++
	s.bytes += headerSize + int64(ln)
	return rec, nil
}
