package wal

import (
	"bytes"
	"errors"
	"testing"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/update"
)

// batchOf builds n (translation, commit) record pairs with sequence
// numbers starting at seq.
func batchOf(t *testing.T, n int, seq uint64) []Record {
	t.Helper()
	_, p := testSchema(t)
	var recs []Record
	for i := 0; i < n; i++ {
		tr := update.NewTranslation(update.NewInsert(pt(t, p, int64(i), "u")))
		recs = append(recs, EncodeTranslation(seq+uint64(i), tr))
		recs = append(recs, CommitRecord(seq+uint64(i)))
	}
	return recs
}

// TestAppendBatchRoundTrip: a batch lands as consecutive frames that
// Scan reads back intact, indistinguishable from individual appends.
func TestAppendBatchRoundTrip(t *testing.T) {
	sch, _ := testSchema(t)
	mem := &MemFile{}
	log := New(mem, SyncOnCommit)
	if err := log.AppendBatch(batchOf(t, 3, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(bytes.NewReader(mem.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn() {
		t.Fatalf("batch image torn at %d: %s", res.TornAt, res.Reason)
	}
	committed, discarded := res.Committed()
	if len(committed) != 3 || discarded != 0 {
		t.Fatalf("committed=%d discarded=%d, want 3 and 0", len(committed), discarded)
	}
	for _, rec := range committed {
		if _, err := DecodeTranslation(sch, rec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendBatchOneSync is the group-commit property: a batch of n
// commits costs exactly one durability barrier under SyncOnCommit (and
// SyncAlways — the whole batch is one write), zero under SyncNever or
// when the batch holds no commit markers.
func TestAppendBatchOneSync(t *testing.T) {
	for _, tc := range []struct {
		policy  SyncPolicy
		commits bool
		want    int
	}{
		{SyncOnCommit, true, 1},
		{SyncOnCommit, false, 0},
		{SyncAlways, true, 1},
		{SyncAlways, false, 1},
		{SyncNever, true, 0},
	} {
		mem := &MemFile{}
		log := New(mem, tc.policy)
		recs := batchOf(t, 4, 1)
		if !tc.commits {
			var trOnly []Record
			for _, r := range recs {
				if r.Kind == KindTranslation {
					trOnly = append(trOnly, r)
				}
			}
			recs = trOnly
		}
		if err := log.AppendBatch(recs); err != nil {
			t.Fatal(err)
		}
		if mem.Syncs() != tc.want {
			t.Fatalf("%s commits=%v: %d syncs, want %d", tc.policy, tc.commits, mem.Syncs(), tc.want)
		}
	}
}

// TestAppendBatchEmpty: an empty batch touches nothing.
func TestAppendBatchEmpty(t *testing.T) {
	mem := &MemFile{}
	log := New(mem, SyncAlways)
	if err := log.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if len(mem.Bytes()) != 0 || mem.Syncs() != 0 {
		t.Fatal("empty batch reached the media")
	}
}

// TestAppendBatchTornEveryOffset cuts a batched image at every byte
// offset: recovery must always see a clean frame prefix, and every
// commit pair that is wholly before the cut survives — the batch's
// atomicity is per frame, with acked commits never beyond the tear.
func TestAppendBatchTornEveryOffset(t *testing.T) {
	mem := &MemFile{}
	log := New(mem, SyncNever)
	if err := log.AppendBatch(batchOf(t, 3, 1)); err != nil {
		t.Fatal(err)
	}
	raw := mem.Bytes()
	for c := 0; c <= len(raw); c++ {
		res, err := Scan(bytes.NewReader(raw[:c]))
		if err != nil {
			t.Fatalf("cut %d: %v", c, err)
		}
		committed, _ := res.Committed()
		// Commit markers are frames 2,4,6 …: the committed prefix is
		// contiguous from seq 1.
		for i, rec := range committed {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("cut %d: committed seqs %v not a prefix", c, committed)
			}
		}
	}
}

// TestAppendBatchRepairsFailedWrite: a batch write that persists only a
// prefix before failing is truncated away entirely — no half batch ever
// becomes readable, and the log keeps working.
func TestAppendBatchRepairsFailedWrite(t *testing.T) {
	sw := &shortWriter{MemFile: &MemFile{}, failNth: 2}
	log := New(sw, SyncNever)
	if err := log.AppendBatch(batchOf(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	intact := len(sw.Bytes())
	if err := log.AppendBatch(batchOf(t, 3, 2)); err == nil {
		t.Fatal("short batch write did not surface")
	}
	if log.Sealed() != nil {
		t.Fatalf("repairable media sealed the log: %v", log.Sealed())
	}
	if len(sw.Bytes()) != intact {
		t.Fatalf("failed batch left %d bytes, want %d", len(sw.Bytes()), intact)
	}
	if err := log.AppendBatch(batchOf(t, 2, 5)); err != nil {
		t.Fatalf("batch after repair: %v", err)
	}
	res, err := Scan(bytes.NewReader(sw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn() {
		t.Fatalf("repaired log torn at %d: %s", res.TornAt, res.Reason)
	}
	committed, _ := res.Committed()
	if len(committed) != 3 {
		t.Fatalf("committed %d translations, want 3 (1 + 2, none from the failed batch)", len(committed))
	}
}

// TestAppendBatchSealed: a sealed log refuses batches too.
func TestAppendBatchSealed(t *testing.T) {
	log := New(&syncFailFile{}, SyncAlways)
	if err := log.AppendBatch(batchOf(t, 1, 1)); err == nil {
		t.Fatal("failed sync did not surface")
	}
	if err := log.AppendBatch(batchOf(t, 1, 2)); !errors.Is(err, ErrSealed) {
		t.Fatalf("batch on sealed log = %v, want ErrSealed chain", err)
	}
}

// TestAppendBatchFaultInjection: the batch path honours the WAL append
// failpoint, and a failed hit leaves no bytes behind.
func TestAppendBatchFaultInjection(t *testing.T) {
	mem := &MemFile{}
	log := New(mem, SyncNever)
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteWALAppend, 1, errors.New("boom")))
	defer faultinject.Disable()
	if err := log.AppendBatch(batchOf(t, 2, 1)); err == nil {
		t.Fatal("injected batch fault did not surface")
	}
	if len(mem.Bytes()) != 0 {
		t.Fatal("failed batch reached the media")
	}
	if err := log.AppendBatch(batchOf(t, 2, 1)); err != nil {
		t.Fatalf("second batch: %v", err)
	}
}

// TestAppendBatchStats: with instrumentation enabled, the batch append
// reports where its time went — the sync is timed and flagged, and the
// barrier lands in the wal.fsync.ns histogram. With instrumentation
// disabled the stats stay zero (the clock is never read on that path).
func TestAppendBatchStats(t *testing.T) {
	prev := obs.Active()
	s := obs.NewSink(nil)
	obs.Enable(s)
	defer obs.Enable(prev)

	mem := &MemFile{}
	log := New(mem, SyncOnCommit)
	stats, err := log.AppendBatchStats(batchOf(t, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Synced {
		t.Fatal("batch with commit markers under SyncOnCommit must sync")
	}
	if stats.WriteNS < 0 || stats.SyncNS < 0 {
		t.Fatalf("negative timings: write=%d sync=%d", stats.WriteNS, stats.SyncNS)
	}
	if got := s.Metrics().Histogram("wal.fsync.ns").Count(); got != 1 {
		t.Fatalf("wal.fsync.ns count = %d, want 1", got)
	}
	if got := s.Metrics().Counter("wal.append_batch").Value(); got != 1 {
		t.Fatalf("wal.append_batch = %d, want 1", got)
	}

	// Disabled: stats zero-valued except Synced, which reports the
	// durability fact regardless of instrumentation.
	obs.Enable(nil)
	stats, err = log.AppendBatchStats(batchOf(t, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Synced {
		t.Fatal("Synced must be reported even with instrumentation disabled")
	}
	if stats.WriteNS != 0 || stats.SyncNS != 0 {
		t.Fatalf("disabled instrumentation still timed: write=%d sync=%d", stats.WriteNS, stats.SyncNS)
	}
}
