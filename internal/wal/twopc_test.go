package wal

import (
	"bytes"
	"testing"

	"viewupdate/internal/update"
)

// TestPrepareRecordRoundTrip checks that a prepare record journals its
// translation slice, idempotency key and coordinator shard, and that
// DecodeTranslation accepts it.
func TestPrepareRecordRoundTrip(t *testing.T) {
	sch, p := testSchema(t)
	mem := &MemFile{}
	log := New(mem, SyncNever)
	want := update.NewTranslation(update.NewInsert(pt(t, p, 7, "v")))
	if err := log.Append(PrepareRecord(42, "key-7", 3, want)); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(bytes.NewReader(mem.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Records[0]
	if rec.Kind != KindPrepare || rec.Seq != 42 || rec.Key != "key-7" || rec.Coord != 3 {
		t.Fatalf("prepare record = %+v", rec)
	}
	got, err := DecodeTranslation(sch, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("decoded %s, want %s", got, want)
	}
}

// TestSyncOnCommitBarriers pins which record kinds act as durability
// points under SyncOnCommit: commits, prepares and decisions do;
// translations and resolve markers do not.
func TestSyncOnCommitBarriers(t *testing.T) {
	_, p := testSchema(t)
	tr := update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))
	cases := []struct {
		name  string
		rec   Record
		syncs int
	}{
		{"translation", EncodeTranslation(1, tr), 0},
		{"commit", CommitRecord(1), 1},
		{"prepare", PrepareRecord(2, "", 0, tr), 1},
		{"decision", DecisionRecord(2), 1},
		{"resolve", ResolveRecord(2), 0},
	}
	for _, tc := range cases {
		mem := &MemFile{}
		log := New(mem, SyncOnCommit)
		if err := log.Append(tc.rec); err != nil {
			t.Fatal(err)
		}
		if mem.Syncs() != tc.syncs {
			t.Errorf("%s: Append synced %d times, want %d", tc.name, mem.Syncs(), tc.syncs)
		}
		mem2 := &MemFile{}
		log2 := New(mem2, SyncOnCommit)
		stats, err := log2.AppendBatchStats([]Record{tc.rec})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Synced != (tc.syncs > 0) || mem2.Syncs() != tc.syncs {
			t.Errorf("%s: batch synced=%v (%d syncs), want %d", tc.name, stats.Synced, mem2.Syncs(), tc.syncs)
		}
	}
}

// TestCommittedWithResolvesPrepares covers the 2PC recovery matrix at
// the log level: a prepare followed by a resolve marker commits, a
// prepare whose seq is in the cross-shard decision set commits, and an
// in-doubt prepare (neither) is presumed aborted. Ordinary
// translation+commit pairs keep working alongside.
func TestCommittedWithResolvesPrepares(t *testing.T) {
	_, p := testSchema(t)
	mem := &MemFile{}
	log := New(mem, SyncNever)
	mk := func(k int64) *update.Translation {
		return update.NewTranslation(update.NewInsert(pt(t, p, k, "u")))
	}
	// seq 1: plain committed translation.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(log.Append(EncodeTranslation(1, mk(1))))
	must(log.Append(CommitRecord(1)))
	// seq 2: prepare resolved in place.
	must(log.Append(PrepareRecord(2, "", 0, mk(2))))
	must(log.Append(ResolveRecord(2)))
	// seq 3: prepare resolved by remote decision.
	must(log.Append(PrepareRecord(3, "", 1, mk(3))))
	// seq 4: in-doubt prepare — no resolve, no decision.
	must(log.Append(PrepareRecord(4, "", 1, mk(4))))
	// seq 5: uncommitted translation.
	must(log.Append(EncodeTranslation(5, mk(5))))

	res, err := Scan(bytes.NewReader(mem.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	committed, discarded, inDoubt := res.CommittedWith(map[uint64]bool{3: true})
	if discarded != 1 || inDoubt != 1 {
		t.Fatalf("discarded=%d inDoubt=%d, want 1 and 1", discarded, inDoubt)
	}
	var seqs []uint64
	for _, rec := range committed {
		seqs = append(seqs, rec.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("committed seqs = %v, want [1 2 3]", seqs)
	}
}

// TestDecisionsCollectsSeqs checks the decision-set scan helper.
func TestDecisionsCollectsSeqs(t *testing.T) {
	mem := &MemFile{}
	log := New(mem, SyncNever)
	if err := log.Append(DecisionRecord(9)); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(DecisionRecord(11)); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(bytes.NewReader(mem.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decisions()
	if len(d) != 2 || !d[9] || !d[11] {
		t.Fatalf("decisions = %v", d)
	}
}
