package relation

import (
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

func testRel(t testing.TB) *schema.Relation {
	t.Helper()
	k := schema.MustDomain("KD", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	a := schema.MustDomain("AD", value.NewString("x"), value.NewString("y"))
	return schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: k},
		{Name: "A", Domain: a},
	}, []string{"K"})
}

func otherRel(t testing.TB) *schema.Relation {
	t.Helper()
	k := schema.MustDomain("KD2", value.NewInt(1))
	return schema.MustRelation("S", []schema.Attribute{{Name: "K", Domain: k}}, []string{"K"})
}

func mk(t testing.TB, rel *schema.Relation, k int64, a string) tuple.T {
	t.Helper()
	return tuple.MustNew(rel, value.NewInt(k), value.NewString(a))
}

func TestInsertAndKeyDependency(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	if e.Relation() != rel || e.Len() != 0 {
		t.Fatal("fresh extension wrong")
	}
	t1 := mk(t, rel, 1, "x")
	if err := e.Insert(t1); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 || !e.Contains(t1) {
		t.Fatal("insert not visible")
	}
	// Same key, different value: key dependency violation.
	if err := e.Insert(mk(t, rel, 1, "y")); err == nil {
		t.Fatal("key conflict should fail")
	}
	// Exact duplicate also fails (it is the same key).
	if err := e.Insert(t1); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	// Foreign schema rejected.
	o := otherRel(t)
	if err := e.Insert(tuple.MustNew(o, value.NewInt(1))); err == nil {
		t.Fatal("foreign tuple should fail")
	}
}

func TestDelete(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	t1 := mk(t, rel, 1, "x")
	if err := e.Insert(t1); err != nil {
		t.Fatal(err)
	}
	// Deleting a same-key, different-value tuple must fail.
	if err := e.Delete(mk(t, rel, 1, "y")); err == nil {
		t.Fatal("delete of non-matching tuple should fail")
	}
	if err := e.Delete(t1); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatal("delete did not remove")
	}
	if err := e.Delete(t1); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestReplace(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	t1 := mk(t, rel, 1, "x")
	t2 := mk(t, rel, 2, "x")
	if err := e.Insert(t1); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(t2); err != nil {
		t.Fatal(err)
	}

	// Key-preserving replace.
	if err := e.Replace(t1, mk(t, rel, 1, "y")); err != nil {
		t.Fatal(err)
	}
	if !e.Contains(mk(t, rel, 1, "y")) || e.Contains(t1) {
		t.Fatal("replace did not swap")
	}
	// Key-changing replace onto an occupied key fails atomically.
	if err := e.Replace(mk(t, rel, 1, "y"), mk(t, rel, 2, "y")); err == nil {
		t.Fatal("replace onto occupied key should fail")
	}
	if !e.Contains(mk(t, rel, 1, "y")) {
		t.Fatal("failed replace must not remove the old tuple")
	}
	// Key-changing replace onto a free key.
	if err := e.Replace(mk(t, rel, 1, "y"), mk(t, rel, 3, "y")); err != nil {
		t.Fatal(err)
	}
	if !e.Contains(mk(t, rel, 3, "y")) || e.ContainsKey(mk(t, rel, 1, "x")) {
		t.Fatal("key-changing replace wrong")
	}
	// Replacing an absent tuple fails.
	if err := e.Replace(mk(t, rel, 1, "x"), mk(t, rel, 1, "y")); err == nil {
		t.Fatal("replace of absent tuple should fail")
	}
}

func TestLookups(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	t1 := mk(t, rel, 1, "x")
	if err := e.Insert(t1); err != nil {
		t.Fatal(err)
	}
	if got, ok := e.LookupKey(mk(t, rel, 1, "y")); !ok || !got.Equal(t1) {
		t.Fatal("LookupKey by probe wrong")
	}
	if _, ok := e.LookupKey(mk(t, rel, 2, "y")); ok {
		t.Fatal("LookupKey should miss")
	}
	if got, ok := e.LookupKeyValues([]value.Value{value.NewInt(1)}); !ok || !got.Equal(t1) {
		t.Fatal("LookupKeyValues wrong")
	}
	if !e.ContainsKey(mk(t, rel, 1, "y")) || e.ContainsKey(mk(t, rel, 3, "x")) {
		t.Fatal("ContainsKey wrong")
	}
	if !e.ContainsKeyEncoding(t1.Key()) {
		t.Fatal("ContainsKeyEncoding wrong")
	}
}

func TestTuplesDeterministicOrder(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	for _, k := range []int64{3, 1, 2} {
		if err := e.Insert(mk(t, rel, k, "x")); err != nil {
			t.Fatal(err)
		}
	}
	got := e.Tuples()
	if len(got) != 3 {
		t.Fatalf("Tuples = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key() >= got[i].Key() {
			t.Fatal("Tuples not in deterministic key order")
		}
	}
}

// The sorted-order cache must stay correct through every mutation kind
// and across Clone: each step re-checks the full ordering against a
// from-scratch rebuild.
func TestTuplesCacheSurvivesMutation(t *testing.T) {
	kvals := make([]value.Value, 9)
	for i := range kvals {
		kvals[i] = value.NewInt(int64(i + 1))
	}
	k := schema.MustDomain("KD9", kvals...)
	a := schema.MustDomain("AD3", value.NewString("x"), value.NewString("y"), value.NewString("z"))
	rel := schema.MustRelation("R9", []schema.Attribute{
		{Name: "K", Domain: k},
		{Name: "A", Domain: a},
	}, []string{"K"})
	e := NewExtension(rel)
	check := func(e *Extension, want int) {
		t.Helper()
		got := e.Tuples()
		if len(got) != want {
			t.Fatalf("Tuples len = %d, want %d", len(got), want)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Key() >= got[i].Key() {
				t.Fatalf("Tuples out of order at %d: %s >= %s", i, got[i-1].Key(), got[i].Key())
			}
		}
		if fresh := len(e.byKey); fresh != want {
			t.Fatalf("byKey len %d, want %d", fresh, want)
		}
	}
	for _, kv := range []int64{5, 1, 9, 3} {
		if err := e.Insert(mk(t, rel, kv, "x")); err != nil {
			t.Fatal(err)
		}
	}
	check(e, 4) // warms the cache
	if err := e.Insert(mk(t, rel, 7, "x")); err != nil {
		t.Fatal(err)
	}
	check(e, 5) // spliced insert
	if err := e.Delete(mk(t, rel, 1, "x")); err != nil {
		t.Fatal(err)
	}
	check(e, 4) // spliced delete
	if err := e.Replace(mk(t, rel, 9, "x"), mk(t, rel, 2, "y")); err != nil {
		t.Fatal(err)
	}
	check(e, 4) // key-moving replace

	// The clone shares the cached slice; diverging mutations must stay
	// invisible to the other side.
	c := e.Clone()
	beforeClone := e.Tuples()
	if err := c.Insert(mk(t, rel, 6, "z")); err != nil {
		t.Fatal(err)
	}
	check(c, 5)
	check(e, 4)
	after := e.Tuples()
	if len(beforeClone) != len(after) {
		t.Fatalf("original reordered by clone mutation: %d vs %d", len(beforeClone), len(after))
	}
}

func TestEachEarlyStop(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	for k := int64(1); k <= 3; k++ {
		if err := e.Insert(mk(t, rel, k, "x")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	e.Each(func(tuple.T) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each should stop after first, visited %d", n)
	}
}

func TestCloneEqualSet(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	if err := e.Insert(mk(t, rel, 1, "x")); err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	if !e.Equal(c) {
		t.Fatal("clone should equal original")
	}
	if err := c.Insert(mk(t, rel, 2, "y")); err != nil {
		t.Fatal(err)
	}
	if e.Equal(c) || e.Len() != 1 {
		t.Fatal("clone should be independent")
	}
	s := e.Set()
	if s.Len() != 1 || !s.Contains(mk(t, rel, 1, "x")) {
		t.Fatal("Set conversion wrong")
	}
	// Equal with same length but different keys.
	d := NewExtension(rel)
	if err := d.Insert(mk(t, rel, 2, "x")); err != nil {
		t.Fatal(err)
	}
	if e.Equal(d) {
		t.Fatal("different extensions compared equal")
	}
	// Equal with same key but different tuple values.
	d2 := NewExtension(rel)
	if err := d2.Insert(mk(t, rel, 1, "y")); err != nil {
		t.Fatal(err)
	}
	if e.Equal(d2) {
		t.Fatal("same-key different-value extensions compared equal")
	}
}

func TestSecondaryIndex(t *testing.T) {
	rel := testRel(t)
	e := NewExtension(rel)
	if err := e.EnsureIndex("missing"); err == nil {
		t.Fatal("index on unknown attribute should fail")
	}
	// Backfill on creation.
	if err := e.Insert(mk(t, rel, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if err := e.EnsureIndex("A"); err != nil {
		t.Fatal(err)
	}
	if !e.HasIndex("A") || e.HasIndex("K") {
		t.Fatal("HasIndex wrong")
	}
	if got := e.IndexedAttrs(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("IndexedAttrs = %v", got)
	}
	// Idempotent.
	if err := e.EnsureIndex("A"); err != nil {
		t.Fatal(err)
	}
	// Maintained through mutations.
	if err := e.Insert(mk(t, rel, 2, "y")); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(mk(t, rel, 3, "x")); err != nil {
		t.Fatal(err)
	}
	scan := func(vals ...string) int {
		var vv []value.Value
		for _, s := range vals {
			vv = append(vv, value.NewString(s))
		}
		n := 0
		e.ScanValues("A", vv, func(tuple.T) bool { n++; return true })
		return n
	}
	if scan("x") != 2 || scan("y") != 1 || scan("x", "y") != 3 {
		t.Fatalf("indexed scan counts wrong: x=%d y=%d xy=%d", scan("x"), scan("y"), scan("x", "y"))
	}
	if err := e.Replace(mk(t, rel, 1, "x"), mk(t, rel, 1, "y")); err != nil {
		t.Fatal(err)
	}
	if scan("x") != 1 || scan("y") != 2 {
		t.Fatal("index stale after replace")
	}
	if err := e.Delete(mk(t, rel, 3, "x")); err != nil {
		t.Fatal(err)
	}
	if scan("x") != 0 {
		t.Fatal("index stale after delete")
	}
	// Early stop.
	n := 0
	e.ScanValues("A", []value.Value{value.NewString("y")}, func(tuple.T) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop broken: %d", n)
	}
	// Unindexed scan path agrees.
	e2 := NewExtension(rel)
	if err := e2.Insert(mk(t, rel, 1, "x")); err != nil {
		t.Fatal(err)
	}
	m := 0
	e2.ScanValues("A", []value.Value{value.NewString("x")}, func(tuple.T) bool { m++; return true })
	if m != 1 {
		t.Fatalf("fallback scan wrong: %d", m)
	}
	m = 0
	e2.ScanValues("A", []value.Value{value.NewString("x")}, func(tuple.T) bool { m++; return false })
	if m != 1 {
		t.Fatal("fallback early stop broken")
	}
	// Clone carries the index.
	c := e.Clone()
	if !c.HasIndex("A") {
		t.Fatal("clone lost index")
	}
	if err := c.Insert(mk(t, rel, 3, "y")); err != nil {
		t.Fatal(err)
	}
	cn := 0
	c.ScanValues("A", []value.Value{value.NewString("y")}, func(tuple.T) bool { cn++; return true })
	if cn != 3 {
		t.Fatalf("clone index wrong: %d", cn)
	}
	if scan("y") != 2 {
		t.Fatal("clone index shared with original")
	}
}
