package relation

import (
	"strconv"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// BenchmarkCloneBenchShape mirrors the serve-bench EMP table: a small
// live set behind heavy insert/delete churn (Go maps never shrink, so
// the clone pays for historical capacity, not len), plus the Location
// secondary index the NY view maintains.
func BenchmarkCloneBenchShape(b *testing.B) {
	kd, err := schema.IntRangeDomain("KeyDom", 1, 100000)
	if err != nil {
		b.Fatal(err)
	}
	ld, err := schema.StringDomain("LocDom", "New York", "San Francisco", "Austin")
	if err != nil {
		b.Fatal(err)
	}
	rel, err := schema.NewRelation("EMP",
		[]schema.Attribute{{Name: "EmpNo", Domain: kd}, {Name: "Location", Domain: ld}},
		[]string{"EmpNo"})
	if err != nil {
		b.Fatal(err)
	}
	mk := func(k int) tuple.T {
		t, err := tuple.New(rel, value.NewInt(int64(k)), value.NewString("New York"))
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	e := NewExtension(rel)
	if err := e.EnsureIndex("Location"); err != nil {
		b.Fatal(err)
	}
	// Churn: 2400 inserts, all but 8 deleted again — the bench's
	// steady-state table.
	for k := 1; k <= 2400; k++ {
		if err := e.Insert(mk(k)); err != nil {
			b.Fatal(err)
		}
		if k > 8 {
			if err := e.Delete(mk(k - 8)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Logf("len=%d", e.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Clone()
	}
	_ = strconv.IntSize
}
