// Package relation implements in-memory relation extensions: sets of
// tuples with a unique primary-key index enforcing the relation's key
// dependency K → R.
package relation

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// Sentinel errors for the two constraint failures an extension can
// report. Callers classify with errors.Is; the wrapped messages keep
// the full human-readable detail.
var (
	// ErrKeyConflict marks an insert or replacement whose key collides
	// with a different stored tuple (key dependency K → R).
	ErrKeyConflict = errors.New("relation: key conflict")
	// ErrNotPresent marks a delete or replacement whose target tuple is
	// not stored (same key with different non-key values counts as not
	// present).
	ErrNotPresent = errors.New("relation: tuple not present")
)

// An Extension is the set of tuples of one relation. It enforces the
// key dependency: no two tuples share key values, and maintains any
// secondary (attribute-value) indexes created with EnsureIndex.
// Extension is not safe for concurrent use; the storage layer provides
// locking.
type Extension struct {
	rel   *schema.Relation
	byKey map[string]tuple.T // tuple.Key() -> tuple
	// secondary[attr][value] holds the key encodings of the tuples with
	// that attribute value.
	secondary map[string]map[value.Value]map[string]bool
	// sorted caches the deterministic Tuples() ordering: re-sorting the
	// whole extension on every scan dominated the serving CPU profile
	// once the table grew. Mutators invalidate it; the pointer is atomic
	// so concurrent scans under the storage layer's read lock may race
	// to rebuild (both build the identical slice, one wins). The cached
	// slice itself is never mutated — invalidation replaces the pointer.
	sorted atomic.Pointer[[]tuple.T]
}

// NewExtension returns an empty extension for rel.
func NewExtension(rel *schema.Relation) *Extension {
	return &Extension{rel: rel, byKey: make(map[string]tuple.T)}
}

// EnsureIndex creates (and backfills) a secondary index on the named
// attribute; it is a no-op if the index exists. It fails on unknown
// attributes.
func (e *Extension) EnsureIndex(attr string) error {
	if !e.rel.Has(attr) {
		return fmt.Errorf("relation: no attribute %s in %s", attr, e.rel.Name())
	}
	if _, ok := e.secondary[attr]; ok {
		return nil
	}
	if e.secondary == nil {
		e.secondary = make(map[string]map[value.Value]map[string]bool)
	}
	idx := make(map[value.Value]map[string]bool)
	for k, t := range e.byKey {
		v := t.MustGet(attr)
		if idx[v] == nil {
			idx[v] = make(map[string]bool)
		}
		idx[v][k] = true
	}
	e.secondary[attr] = idx
	return nil
}

// HasIndex reports whether a secondary index exists on attr.
func (e *Extension) HasIndex(attr string) bool {
	_, ok := e.secondary[attr]
	return ok
}

// IndexedAttrs returns the attributes carrying secondary indexes.
func (e *Extension) IndexedAttrs() []string {
	out := make([]string, 0, len(e.secondary))
	for a := range e.secondary {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// indexAdd records t in every secondary index.
func (e *Extension) indexAdd(t tuple.T) {
	for attr, idx := range e.secondary {
		v := t.MustGet(attr)
		if idx[v] == nil {
			idx[v] = make(map[string]bool)
		}
		idx[v][t.Key()] = true
	}
}

// indexRemove erases t from every secondary index.
func (e *Extension) indexRemove(t tuple.T) {
	for attr, idx := range e.secondary {
		v := t.MustGet(attr)
		if bucket := idx[v]; bucket != nil {
			delete(bucket, t.Key())
			if len(bucket) == 0 {
				delete(idx, v)
			}
		}
	}
}

// ScanValues calls fn for every tuple whose attr equals one of vals,
// using the secondary index when present and a full scan otherwise.
// fn returning false stops the scan.
func (e *Extension) ScanValues(attr string, vals []value.Value, fn func(tuple.T) bool) {
	if idx, ok := e.secondary[attr]; ok {
		for _, v := range vals {
			for k := range idx[v] {
				if !fn(e.byKey[k]) {
					return
				}
			}
		}
		return
	}
	want := make(map[value.Value]bool, len(vals))
	for _, v := range vals {
		want[v] = true
	}
	for _, t := range e.byKey {
		if want[t.MustGet(attr)] {
			if !fn(t) {
				return
			}
		}
	}
}

// Relation returns the schema of the extension.
func (e *Extension) Relation() *schema.Relation { return e.rel }

// Len returns the number of tuples.
func (e *Extension) Len() int { return len(e.byKey) }

// Insert adds t. It fails if a tuple with the same key already exists
// (key dependency) or if t belongs to a different schema.
func (e *Extension) Insert(t tuple.T) error {
	if t.Relation() != e.rel {
		return fmt.Errorf("relation: tuple %s does not belong to %s", t, e.rel.Name())
	}
	k := t.Key()
	if old, ok := e.byKey[k]; ok {
		return fmt.Errorf("%w in %s: %s vs existing %s", ErrKeyConflict, e.rel.Name(), t, old)
	}
	e.byKey[k] = t
	e.indexAdd(t)
	e.sortedInsert(t, k)
	return nil
}

// Delete removes the tuple equal to t. It fails if t is not present
// (a tuple with the same key but different non-key values does not
// count as present).
func (e *Extension) Delete(t tuple.T) error {
	if t.Relation() != e.rel {
		return fmt.Errorf("relation: tuple %s does not belong to %s", t, e.rel.Name())
	}
	k := t.Key()
	cur, ok := e.byKey[k]
	if !ok || !cur.Equal(t) {
		return fmt.Errorf("%w: %s in %s", ErrNotPresent, t, e.rel.Name())
	}
	delete(e.byKey, k)
	e.indexRemove(t)
	e.sortedDelete(k)
	return nil
}

// Replace substitutes old with new as one atomic step (the paper's
// replacement operation: a combined delete+insert that needs no
// intermediate consistent state). old must be present; new must not
// conflict with any tuple other than old.
func (e *Extension) Replace(old, new tuple.T) error {
	if old.Relation() != e.rel || new.Relation() != e.rel {
		return fmt.Errorf("relation: replacement tuples do not belong to %s", e.rel.Name())
	}
	ko := old.Key()
	cur, ok := e.byKey[ko]
	if !ok || !cur.Equal(old) {
		return fmt.Errorf("%w: replaced tuple %s in %s", ErrNotPresent, old, e.rel.Name())
	}
	kn := new.Key()
	if kn != ko {
		if clash, ok := e.byKey[kn]; ok {
			return fmt.Errorf("%w: replacement %s vs existing %s in %s", ErrKeyConflict, new, clash, e.rel.Name())
		}
	}
	delete(e.byKey, ko)
	e.byKey[kn] = new
	e.indexRemove(old)
	e.indexAdd(new)
	e.sortedDelete(ko)
	e.sortedInsert(new, kn)
	return nil
}

// LookupKey returns the tuple whose key attributes equal those of probe
// (probe may be any tuple of the same schema); ok is false if absent.
func (e *Extension) LookupKey(probe tuple.T) (tuple.T, bool) {
	t, ok := e.byKey[probe.Key()]
	return t, ok
}

// LookupKeyValues returns the tuple whose key attributes (in key order)
// equal vals.
func (e *Extension) LookupKeyValues(vals []value.Value) (tuple.T, bool) {
	key := e.rel.Name()
	for _, v := range vals {
		key += "\n" + v.Encode()
	}
	t, ok := e.byKey[key]
	return t, ok
}

// ContainsKeyEncoding reports whether any stored tuple's Key() equals
// enc. This exposes the primary index for O(1) foreign-key checks.
func (e *Extension) ContainsKeyEncoding(enc string) bool {
	_, ok := e.byKey[enc]
	return ok
}

// Contains reports whether the exact tuple t is present.
func (e *Extension) Contains(t tuple.T) bool {
	cur, ok := e.byKey[t.Key()]
	return ok && cur.Equal(t)
}

// ContainsKey reports whether any tuple with probe's key is present.
func (e *Extension) ContainsKey(probe tuple.T) bool {
	_, ok := e.byKey[probe.Key()]
	return ok
}

// sortedInsert splices t (whose key encoding is k) into the cached
// ordering. A copy with one memmove is O(n); discarding the cache
// would make the next scan pay the full n·log n key sort instead. A
// cold cache stays cold — the splice only pays off once a scan has
// built the baseline.
func (e *Extension) sortedInsert(t tuple.T, k string) {
	p := e.sorted.Load()
	if p == nil {
		return
	}
	old := *p
	i := sort.Search(len(old), func(j int) bool { return old[j].Key() >= k })
	out := make([]tuple.T, len(old)+1)
	copy(out, old[:i])
	out[i] = t
	copy(out[i+1:], old[i:])
	e.sorted.Store(&out)
}

// sortedDelete removes the tuple with key encoding k from the cached
// ordering.
func (e *Extension) sortedDelete(k string) {
	p := e.sorted.Load()
	if p == nil {
		return
	}
	old := *p
	i := sort.Search(len(old), func(j int) bool { return old[j].Key() >= k })
	if i >= len(old) || old[i].Key() != k {
		e.sorted.Store(nil)
		return
	}
	out := make([]tuple.T, len(old)-1)
	copy(out, old[:i])
	copy(out[i:], old[i+1:])
	e.sorted.Store(&out)
}

// Tuples returns all tuples in deterministic (key-encoding) order.
// The returned slice is shared with later callers until the next
// mutation — callers must not modify it.
func (e *Extension) Tuples() []tuple.T {
	if p := e.sorted.Load(); p != nil {
		return *p
	}
	keys := make([]string, 0, len(e.byKey))
	for k := range e.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]tuple.T, len(keys))
	for i, k := range keys {
		out[i] = e.byKey[k]
	}
	e.sorted.Store(&out)
	return out
}

// Each calls fn for every tuple in unspecified order; fn returning
// false stops the scan.
func (e *Extension) Each(fn func(tuple.T) bool) {
	for _, t := range e.byKey {
		if !fn(t) {
			return
		}
	}
}

// Clone returns a deep-enough copy (tuples are immutable, so sharing
// them is safe); secondary indexes are cloned too. The sorted-order
// cache is carried over: the cached slice is never mutated in place,
// so both sides may share it until one of them mutates and splices a
// fresh copy.
func (e *Extension) Clone() *Extension {
	out := &Extension{rel: e.rel, byKey: make(map[string]tuple.T, len(e.byKey))}
	out.sorted.Store(e.sorted.Load())
	for k, v := range e.byKey {
		out.byKey[k] = v
	}
	if e.secondary != nil {
		out.secondary = make(map[string]map[value.Value]map[string]bool, len(e.secondary))
		for attr, idx := range e.secondary {
			cp := make(map[value.Value]map[string]bool, len(idx))
			for v, bucket := range idx {
				b := make(map[string]bool, len(bucket))
				for k := range bucket {
					b[k] = true
				}
				cp[v] = b
			}
			out.secondary[attr] = cp
		}
	}
	return out
}

// Set returns the extension's tuples as a tuple.Set.
func (e *Extension) Set() *tuple.Set {
	s := tuple.NewSet()
	for _, t := range e.byKey {
		s.Add(t)
	}
	return s
}

// Equal reports whether two extensions hold the same tuples.
func (e *Extension) Equal(o *Extension) bool {
	if len(e.byKey) != len(o.byKey) {
		return false
	}
	for k, t := range e.byKey {
		u, ok := o.byKey[k]
		if !ok || !u.Equal(t) {
			return false
		}
	}
	return true
}
