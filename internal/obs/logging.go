package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a level name ("debug", "info", "warn", "error",
// case-insensitive) to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger returns a text-handler slog.Logger writing to w at the
// given level — the shared handler setup used by cmd/ and examples/ so
// their output is uniformly structured and greppable.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// SetupDefault builds the shared logger at the named level, installs it
// as slog's process default and returns it. It is the one-call setup
// for commands and examples:
//
//	logger, err := obs.SetupDefault(os.Stderr, *logLevel)
func SetupDefault(w io.Writer, levelName string) (*slog.Logger, error) {
	level, err := ParseLevel(levelName)
	if err != nil {
		return nil, err
	}
	l := NewLogger(w, level)
	slog.SetDefault(l)
	return l, nil
}
