package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"server.request.ns":     "server_request_ns",
		"wal.fsync.ns":          "wal_fsync_ns",
		"already_fine":          "already_fine",
		"9starts.with.digit":    "_9starts_with_digit",
		"weird-chars/and:more?": "weird_chars_and_more_",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exact text exposition rendering of
// a deterministic snapshot. Regenerate with `go test -run Golden -update`.
func TestWritePrometheusGolden(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	Inc("server.requests")
	Add("server.commit.committed", 41)
	SetGauge("server.commit.queue_depth", 3)
	SetGauge("server.tx.open", 0)
	for v := int64(1); v <= 100; v++ {
		Observe("server.request.ns", v*1000)
	}
	Observe("server.stage.fsync.ns", 8_500_000)

	var buf bytes.Buffer
	if err := s.Metrics().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus rendering drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteRuntimeMetrics checks the runtime block exposes the required
// families with sane values; exact numbers vary by run.
func TestWriteRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRuntimeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{
		"go_goroutines", "go_gomaxprocs",
		"go_memstats_heap_alloc_bytes", "go_memstats_heap_objects", "go_memstats_sys_bytes",
		"go_memstats_alloc_bytes_total", "go_gc_cycles_total", "go_gc_pause_ns_total",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("runtime metrics missing family %q:\n%s", fam, out)
		}
	}
}
