package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"sync"
	"testing"
)

// install swaps in a fresh sink for the test and restores the previous
// state afterwards, so tests do not leak instrumentation state.
func install(t *testing.T, s *Sink) {
	t.Helper()
	prev := Active()
	Enable(s)
	t.Cleanup(func() { Enable(prev) })
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	install(t, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("core.translate")
		Inc("core.requests.delete")
		Add("core.candidates", 7)
		Observe("core.spj.steps", 3)
		SetGauge("core.gauge", 9)
		AddGauge("core.gauge", -1)
		tr := StartTrace("GET /views/NY")
		tr.Stage("translate", 5)
		tr.Finish()
		Log(slog.LevelInfo, "should be dropped", "k", "v")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %v allocs/op, want 0", allocs)
	}
}

// TestEnabledObserveAllocatesNothing pins the hot-path contract: with a
// sink installed, recording into an already-created counter, gauge or
// histogram must not allocate.
func TestEnabledObserveAllocatesNothing(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	// Touch the names once so the registry entries exist (get-or-create
	// may allocate; steady-state must not).
	Inc("hot.counter")
	SetGauge("hot.gauge", 0)
	Observe("hot.hist", 1)
	allocs := testing.AllocsPerRun(1000, func() {
		Inc("hot.counter")
		AddGauge("hot.gauge", 1)
		Observe("hot.hist", 12345678)
	})
	if allocs != 0 {
		t.Fatalf("enabled Observe allocated %v allocs/op, want 0", allocs)
	}
}

func TestGauge(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	SetGauge("q.depth", 7)
	AddGauge("q.depth", 5)
	AddGauge("q.depth", -2)
	if got := s.Metrics().Gauge("q.depth").Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Gauges["q.depth"]; got != 10 {
		t.Fatalf("snapshot gauge = %d, want 10", got)
	}
}

func TestCounterConcurrentIncrements(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Inc("test.counter")
				Add("test.counter", 2)
			}
		}()
	}
	wg.Wait()
	if got, want := s.Metrics().Counter("test.counter").Value(), int64(goroutines*perG*3); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}()
	}
	wg.Wait()
	st := h.Stats()
	if st.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", st.Count, goroutines*perG)
	}
	n := int64(goroutines * perG)
	if want := n * (n - 1) / 2; st.Sum != want {
		t.Fatalf("sum = %d, want %d", st.Sum, want)
	}
	if st.Min != 0 || st.Max != n-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", st.Min, st.Max, n-1)
	}
}

// relErr is the relative error of got against the true value.
func relErr(got, true_ int64) float64 {
	d := float64(got - true_)
	if d < 0 {
		d = -d
	}
	return d / float64(true_)
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Log-linear buckets with interpolation: every quantile estimate
	// must be within 6% of the true value (bucket relative width is
	// 1/16 = 6.25%; interpolation in a uniform distribution does far
	// better, but 6% is the contract we assert).
	for _, tc := range []struct {
		q     float64
		true_ int64
	}{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {0.999, 999}, {1.0, 1000},
	} {
		got := h.Quantile(tc.q)
		if e := relErr(got, tc.true_); e > 0.06 {
			t.Errorf("Quantile(%v) = %d, want within 6%% of %d (err %.2f%%)", tc.q, got, tc.true_, e*100)
		}
	}
	if NewHistogram().Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	z := NewHistogram()
	z.Observe(0)
	if z.Quantile(0.99) != 0 {
		t.Error("all-zero histogram quantile should be 0")
	}
}

// TestHistogramQuantilesNotQuantized is the regression test for the
// power-of-two quantization bug: a latency distribution living entirely
// inside one power-of-two range (8.39ms–16.78ms) used to collapse every
// quantile onto the single bucket bound, reporting p50 == p90 == p99.
// Log-linear buckets must keep them distinct and each within 6% of the
// truth.
func TestHistogramQuantilesNotQuantized(t *testing.T) {
	h := NewHistogram()
	// 10000 uniform samples in [8.5ms, 15ms): all inside [2^23, 2^24).
	const lo, hi = 8_500_000, 15_000_000
	n := int64(10000)
	for i := int64(0); i < n; i++ {
		h.Observe(lo + i*(hi-lo)/n)
	}
	trueQ := func(q float64) int64 { return lo + int64(q*float64(hi-lo)) }
	p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	if p50 == p90 || p90 == p99 {
		t.Fatalf("quantiles collapsed: p50=%d p90=%d p99=%d", p50, p90, p99)
	}
	for _, tc := range []struct {
		name string
		q    float64
		got  int64
	}{
		{"p50", 0.50, p50}, {"p90", 0.90, p90}, {"p99", 0.99, p99},
	} {
		if e := relErr(tc.got, trueQ(tc.q)); e > 0.06 {
			t.Errorf("%s = %d, want within 6%% of %d (err %.2f%%)", tc.name, tc.got, trueQ(tc.q), e*100)
		}
	}
}

// TestBucketIndexBounds checks the bucket layout invariants: every
// value lands in a bucket whose [lo, hi) range contains it, indexes are
// monotonic in the value, and the last bucket covers MaxInt64.
func TestBucketIndexBounds(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 47, 48, 63, 64, 100, 500, 1000,
		1 << 20, 8_500_000, 1<<40 + 12345, 1<<62 + 999, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d, out of range [0, %d)", v, i, histBuckets)
		}
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous index %d: not monotonic", v, i, prev)
		}
		prev = i
		lo, hi := bucketBounds(i)
		if v < lo || (hi > lo && v >= hi) {
			t.Fatalf("value %d in bucket %d with bounds [%d, %d)", v, i, lo, hi)
		}
		// Above the linear region every bucket's relative width is at
		// most 1/subBucketCount (unit buckets below are exact anyway).
		if lo >= linearLimit && hi > lo && float64(hi-lo)/float64(lo) > 1.0/subBucketCount+1e-9 {
			t.Fatalf("bucket %d [%d, %d) wider than 1/%d relative", i, lo, hi, subBucketCount)
		}
	}
	// Exhaustive round-trip over the small range and bucket boundaries.
	for v := int64(0); v < 4096; v++ {
		lo, hi := bucketBounds(bucketIndex(v))
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket bounds [%d, %d)", v, lo, hi)
		}
	}
}

func TestSpanRecordsHistogram(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	sp := StartSpan("phase.test")
	if d := sp.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if got := s.Metrics().Histogram("phase.test.ns").Count(); got != 1 {
		t.Fatalf("span histogram count = %d, want 1", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	Add("a.count", 5)
	Observe("b.hist", 100)
	Observe("b.hist", 200)
	data, err := Active().Metrics().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a.count"] != 5 {
		t.Errorf("counter a.count = %d, want 5", back.Counters["a.count"])
	}
	if h := back.Histograms["b.hist"]; h.Count != 2 || h.Sum != 300 || h.Min != 100 || h.Max != 200 {
		t.Errorf("histogram b.hist = %+v", h)
	}
}

func TestConcurrentRegistryAndSnapshot(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				Inc("mixed.counter")
				Observe("mixed.hist", int64(i%100))
				StartSpan("mixed.span").End()
			}
		}()
	}
	// Snapshot concurrently with the writers.
	for i := 0; i < 50; i++ {
		s.Metrics().Snapshot()
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	if snap.Counters["mixed.counter"] == 0 {
		t.Error("no counter increments recorded")
	}
	if snap.Histograms["mixed.span.ns"].Count == 0 {
		t.Error("no span durations recorded")
	}
}

func TestLoggerOutput(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(NewLogger(&buf, slog.LevelDebug))
	install(t, s)
	Log(slog.LevelInfo, "translated", "view", "V", "class", "D-1")
	out := buf.String()
	for _, want := range []string{"msg=translated", "view=V", "class=D-1"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("log output %q missing %q", out, want)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "": slog.LevelInfo, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}
