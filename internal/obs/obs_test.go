package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"sync"
	"testing"
)

// install swaps in a fresh sink for the test and restores the previous
// state afterwards, so tests do not leak instrumentation state.
func install(t *testing.T, s *Sink) {
	t.Helper()
	prev := Active()
	Enable(s)
	t.Cleanup(func() { Enable(prev) })
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	install(t, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("core.translate")
		Inc("core.requests.delete")
		Add("core.candidates", 7)
		Observe("core.spj.steps", 3)
		Log(slog.LevelInfo, "should be dropped", "k", "v")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %v allocs/op, want 0", allocs)
	}
}

func TestCounterConcurrentIncrements(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Inc("test.counter")
				Add("test.counter", 2)
			}
		}()
	}
	wg.Wait()
	if got, want := s.Metrics().Counter("test.counter").Value(), int64(goroutines*perG*3); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}()
	}
	wg.Wait()
	st := h.Stats()
	if st.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", st.Count, goroutines*perG)
	}
	n := int64(goroutines * perG)
	if want := n * (n - 1) / 2; st.Sum != want {
		t.Fatalf("sum = %d, want %d", st.Sum, want)
	}
	if st.Min != 0 || st.Max != n-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", st.Min, st.Max, n-1)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Power-of-two buckets: the quantile bound must be >= the true
	// quantile and < 2x it.
	for _, tc := range []struct {
		q     float64
		true_ int64
	}{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000},
	} {
		got := h.Quantile(tc.q)
		if got < tc.true_ || got >= 2*tc.true_ {
			t.Errorf("Quantile(%v) = %d, want in [%d, %d)", tc.q, got, tc.true_, 2*tc.true_)
		}
	}
	if NewHistogram().Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	z := NewHistogram()
	z.Observe(0)
	if z.Quantile(0.99) != 0 {
		t.Error("all-zero histogram quantile should be 0")
	}
}

func TestSpanRecordsHistogram(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	sp := StartSpan("phase.test")
	if d := sp.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if got := s.Metrics().Histogram("phase.test.ns").Count(); got != 1 {
		t.Fatalf("span histogram count = %d, want 1", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	Add("a.count", 5)
	Observe("b.hist", 100)
	Observe("b.hist", 200)
	data, err := Active().Metrics().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a.count"] != 5 {
		t.Errorf("counter a.count = %d, want 5", back.Counters["a.count"])
	}
	if h := back.Histograms["b.hist"]; h.Count != 2 || h.Sum != 300 || h.Min != 100 || h.Max != 200 {
		t.Errorf("histogram b.hist = %+v", h)
	}
}

func TestConcurrentRegistryAndSnapshot(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				Inc("mixed.counter")
				Observe("mixed.hist", int64(i%100))
				StartSpan("mixed.span").End()
			}
		}()
	}
	// Snapshot concurrently with the writers.
	for i := 0; i < 50; i++ {
		s.Metrics().Snapshot()
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	if snap.Counters["mixed.counter"] == 0 {
		t.Error("no counter increments recorded")
	}
	if snap.Histograms["mixed.span.ns"].Count == 0 {
		t.Error("no span durations recorded")
	}
}

func TestLoggerOutput(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(NewLogger(&buf, slog.LevelDebug))
	install(t, s)
	Log(slog.LevelInfo, "translated", "view", "V", "class", "D-1")
	out := buf.String()
	for _, want := range []string{"msg=translated", "view=V", "class=D-1"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("log output %q missing %q", out, want)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "": slog.LevelInfo, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}
