// Package obs is the observability layer of the view-update engine: a
// stdlib-only combination of structured logging (log/slog), atomic
// counters and latency histograms, and span-style monotonic timing.
//
// Instrumentation is gathered by a Sink installed process-wide with
// Enable. When no sink is installed (the default), every entry point is
// a nil-check and an immediate return: the hot paths of the translation
// pipeline pay nothing — no allocation, no time.Now call, no lock. This
// is verified by testing.AllocsPerRun in the package tests and by the
// before/after comparison in BenchmarkObsOverhead.
//
// Metric names form a dotted taxonomy documented in
// docs/OBSERVABILITY.md, e.g.
//
//	core.translate.ns         span   translate latency per request
//	core.criteria.reject.3    count  candidates killed by criterion 3
//	storage.apply.insert.EMP  count  tuples inserted into EMP
package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// A Sink aggregates the instrumentation of a process: a metric
// registry, a ring of the slowest request traces, and an optional
// structured logger. A nil logger silences span logs while keeping the
// metrics.
type Sink struct {
	logger  *slog.Logger
	metrics *Registry
	slow    *TraceRing
}

// NewSink returns a sink with a fresh registry and a slow-trace ring of
// DefaultSlowTraces capacity. logger may be nil.
func NewSink(logger *slog.Logger) *Sink {
	return &Sink{logger: logger, metrics: NewRegistry(), slow: NewTraceRing(DefaultSlowTraces)}
}

// Metrics returns the sink's registry.
func (s *Sink) Metrics() *Registry { return s.metrics }

// SlowTraces returns the sink's ring of slowest completed request
// traces.
func (s *Sink) SlowTraces() *TraceRing { return s.slow }

// Logger returns the sink's logger, possibly nil.
func (s *Sink) Logger() *slog.Logger { return s.logger }

// active is the process-wide sink; nil means instrumentation is off.
var active atomic.Pointer[Sink]

// Enable installs the sink process-wide. Enable(nil) disables.
func Enable(s *Sink) { active.Store(s) }

// Disable removes the installed sink; subsequent instrumentation calls
// are no-ops.
func Disable() { active.Store(nil) }

// Active returns the installed sink, or nil when disabled.
func Active() *Sink { return active.Load() }

// Enabled reports whether a sink is installed. Hot paths that need to
// build metric names dynamically (string concatenation allocates) must
// guard on Enabled first.
func Enabled() bool { return active.Load() != nil }

// Inc adds 1 to the named counter of the active sink, if any.
func Inc(name string) {
	if s := active.Load(); s != nil {
		s.metrics.Counter(name).Add(1)
	}
}

// Add adds delta to the named counter of the active sink, if any.
func Add(name string, delta int64) {
	if s := active.Load(); s != nil {
		s.metrics.Counter(name).Add(delta)
	}
}

// Observe records v in the named histogram of the active sink, if any.
func Observe(name string, v int64) {
	if s := active.Load(); s != nil {
		s.metrics.Histogram(name).Observe(v)
	}
}

// SetGauge stores v in the named gauge of the active sink, if any.
func SetGauge(name string, v int64) {
	if s := active.Load(); s != nil {
		s.metrics.Gauge(name).Set(v)
	}
}

// AddGauge adds delta to the named gauge of the active sink, if any.
func AddGauge(name string, delta int64) {
	if s := active.Load(); s != nil {
		s.metrics.Gauge(name).Add(delta)
	}
}

// Log emits a structured event at the given level through the active
// sink's logger, if any. args are slog key/value pairs. Callers on hot
// paths should guard with Enabled() before building args.
func Log(level slog.Level, msg string, args ...any) {
	s := active.Load()
	if s == nil || s.logger == nil {
		return
	}
	s.logger.Log(context.Background(), level, msg, args...)
}

// A Span measures one timed phase. Spans are plain values: starting a
// span while disabled yields the zero Span, whose End is a no-op, so
// the disabled path never reads the clock or allocates.
type Span struct {
	sink  *Sink
	name  string
	start time.Time
}

// StartSpan opens a span against the active sink. The span's duration
// is recorded, on End, in the histogram "<name>.ns".
func StartSpan(name string) Span {
	s := active.Load()
	if s == nil {
		return Span{}
	}
	return Span{sink: s, name: name, start: time.Now()}
}

// End closes the span, records its duration and returns it. End on a
// zero Span returns 0 without touching the clock.
func (sp Span) End() time.Duration {
	if sp.sink == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.sink.metrics.Histogram(sp.name + ".ns").Observe(int64(d))
	if l := sp.sink.logger; l != nil && l.Enabled(context.Background(), slog.LevelDebug) {
		l.Debug("span", "name", sp.name, "dur", d)
	}
	return d
}
