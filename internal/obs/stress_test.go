package obs

import (
	"io"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestObsStress hammers every concurrent surface of the package at once
// — counters, gauges, histograms, spans, traces, the slow-trace ring —
// from GOMAXPROCS writer goroutines while snapshot/render readers run
// against them. Its value is under `go test -race`: any unsynchronized
// access in the instrumentation plane fails this test.
func TestObsStress(t *testing.T) {
	s := NewSink(nil)
	install(t, s)

	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				Inc("stress.counter")
				AddGauge("stress.gauge", int64(1-2*(i%2))) // oscillates ±1
				Observe("stress.hist", int64(g*iters+i))
				sp := StartSpan("stress.span")
				tr := StartTrace("GET /stress")
				tr.Stage("translate", time.Duration(i))
				tr.Stage("commit", time.Duration(g))
				tr.Finish()
				sp.End()
			}
		}()
	}

	// Readers: snapshots, Prometheus renders and ring reads racing the
	// writers above.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Metrics().Snapshot()
				_ = snap.WritePrometheus(io.Discard)
				_ = s.SlowTraces().Snapshot()
				_ = s.Metrics().Histogram("stress.hist").Quantile(0.99)
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	snap := s.Metrics().Snapshot()
	if got, want := snap.Counters["stress.counter"], int64(writers*iters); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := snap.Gauges["stress.gauge"]; got != 0 {
		t.Errorf("gauge = %d, want 0 (balanced ±1 oscillation)", got)
	}
	h := snap.Histograms["stress.hist"]
	if got, want := h.Count, int64(writers*iters); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if h.Min != 0 || h.Max != int64(writers*iters-1) {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", h.Min, h.Max, writers*iters-1)
	}
	if n := s.SlowTraces().Len(); n != DefaultSlowTraces {
		t.Errorf("slow ring holds %d traces, want full at %d", n, DefaultSlowTraces)
	}
}
