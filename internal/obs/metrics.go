package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonic (or at least additive) atomic counter.
type Counter struct{ n atomic.Int64 }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// A Gauge is an instantaneous atomic value: queue depths, open
// transactions, cache sizes. Unlike a Counter it is expected to go both
// up and down, and snapshots report its current value, not a total.
type Gauge struct{ n atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram bucket layout: log-linear (HDR-style). Values below
// linearLimit get exact unit buckets; every power-of-two range above is
// split into subBucketCount equal sub-buckets, so the relative width of
// any bucket is at most 1/subBucketCount = 6.25%, and interpolated
// quantiles are within ~6% of the true value (vs 2x for the plain
// power-of-two buckets this layout replaced).
const (
	subBucketBits  = 4
	subBucketCount = 1 << subBucketBits // 16 sub-buckets per power of two
	linearLimit    = 2 * subBucketCount // 32: values below land in unit buckets
	// histBuckets covers every non-negative int64: 32 unit buckets plus
	// 16 sub-buckets for each exponent 5..62 (960 total, ~7.5KB).
	histBuckets = linearLimit + (62-subBucketBits)*subBucketCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < linearLimit {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1), e >= 5
	sub := int((uint64(v) >> (uint(e) - subBucketBits)) & (subBucketCount - 1))
	return linearLimit + (e-subBucketBits-1)*subBucketCount + sub
}

// bucketBounds returns bucket i's half-open value range [lo, hi).
func bucketBounds(i int) (lo, hi int64) {
	if i < linearLimit {
		return int64(i), int64(i) + 1
	}
	r := i - linearLimit
	e := subBucketBits + 1 + r/subBucketCount
	sub := int64(r % subBucketCount)
	width := int64(1) << (uint(e) - subBucketBits)
	lo = (subBucketCount + sub) * width
	return lo, lo + width
}

// A Histogram records int64 observations (typically nanoseconds) in
// log-linear buckets with exact count, sum, min and max. All methods
// are safe for concurrent use; Observe is allocation-free and lock-free
// (four atomic adds plus two bounded CAS loops).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records v; negative observations are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) by locating the bucket
// holding the target rank and interpolating linearly inside it. The
// estimate is clamped to the observed [min, max], so with bucket widths
// of at most 6.25% the relative error is ~6% worst case, and far less
// for smooth distributions. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	if rank > float64(total) {
		rank = float64(total)
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - float64(cum)) / float64(n)
			return h.clamp(lo + int64(frac*float64(hi-lo)))
		}
		cum += n
	}
	return h.clamp(h.max.Load())
}

// clamp bounds an interpolated estimate by the observed extremes (the
// counters may be torn by concurrent writes; clamping keeps estimates
// inside the data regardless).
func (h *Histogram) clamp(v int64) int64 {
	if min := h.min.Load(); v < min {
		v = min
	}
	if max := h.max.Load(); v > max {
		v = max
	}
	return v
}

// Stats returns a consistent-enough snapshot of the histogram. Under
// concurrent writes the fields may be torn by a few observations; for
// reporting after a run this is immaterial.
func (h *Histogram) Stats() HistogramSnapshot {
	n := h.count.Load()
	s := HistogramSnapshot{
		Count: n,
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if n > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(n)
	}
	return s
}

// A Registry holds the named counters, gauges and histograms of a sink.
// Get-or-create is lock-protected; the returned handles are lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the JSON-able summary of one histogram. Values
// are in the histogram's unit (nanoseconds for span histograms).
// Quantiles are interpolated within log-linear buckets (≤ ~6% relative
// error).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// Snapshot is a point-in-time JSON-able copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		out.Histograms[name] = h.Stats()
	}
	return out
}

// JSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
