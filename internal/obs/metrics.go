package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonic (or at least additive) atomic counter.
type Counter struct{ n atomic.Int64 }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds the observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). Bucket 0 holds v == 0. 63 buckets cover every
// non-negative int64 — nanosecond latencies up to ~292 years.
const histBuckets = 64

// A Histogram records int64 observations (typically nanoseconds) in
// power-of-two buckets with exact count, sum, min and max. All methods
// are safe for concurrent use and allocation-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records v; negative observations are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// upper edge of the first bucket whose cumulative count reaches
// q*count. Returns 0 on an empty histogram. The bound is within 2x of
// the true quantile (bucket widths are powers of two).
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// Stats returns a consistent-enough snapshot of the histogram. Under
// concurrent writes the fields may be torn by a few observations; for
// reporting after a run this is immaterial.
func (h *Histogram) Stats() HistogramSnapshot {
	n := h.count.Load()
	s := HistogramSnapshot{
		Count: n,
		Sum:   h.sum.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if n > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(n)
	}
	return s
}

// A Registry holds the named counters and histograms of a sink.
// Get-or-create is lock-protected; the returned handles are lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the JSON-able summary of one histogram. Values
// are in the histogram's unit (nanoseconds for span histograms).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot is a point-in-time JSON-able copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		out.Histograms[name] = h.Stats()
	}
	return out
}

// JSON renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
