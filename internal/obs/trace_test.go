package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceDisabledIsNil(t *testing.T) {
	install(t, nil)
	tr := StartTrace("GET /views/NY")
	if tr != nil {
		t.Fatal("StartTrace should return nil when instrumentation is disabled")
	}
	// Every method on a nil trace is a no-op, not a panic.
	tr.Stage("translate", time.Millisecond)
	if tr.ID() != 0 {
		t.Error("nil trace ID should be 0")
	}
	if tr.Finish() != 0 {
		t.Error("nil trace Finish should return 0")
	}
	if got := ContextWithTrace(context.Background(), nil); got != context.Background() {
		t.Error("attaching a nil trace should return the context unchanged")
	}
}

func TestTraceStagesAndContext(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	tr := StartTrace("POST /views/NY/insert")
	if tr == nil {
		t.Fatal("StartTrace returned nil with a sink installed")
	}
	if tr.ID() == 0 {
		t.Error("trace ID should be non-zero")
	}
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not return the attached trace")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatal("TraceFrom on a bare context should be nil")
	}
	// Stages may come from another goroutine (the committer does this).
	done := make(chan struct{})
	go func() {
		defer close(done)
		TraceFrom(ctx).Stage("commit", 3*time.Millisecond)
	}()
	<-done
	tr.Stage("translate", time.Millisecond)
	tr.Finish()
	// Stages after Finish are dropped.
	tr.Stage("late", time.Second)

	slow := s.SlowTraces().Snapshot()
	if len(slow) != 1 {
		t.Fatalf("slow ring holds %d traces, want 1", len(slow))
	}
	snap := slow[0]
	if snap.Op != "POST /views/NY/insert" || snap.ID != tr.ID() {
		t.Errorf("snapshot op/id = %q/%d", snap.Op, snap.ID)
	}
	got := map[string]int64{}
	for _, st := range snap.Stages {
		got[st.Name] = st.NS
	}
	if got["commit"] != int64(3*time.Millisecond) || got["translate"] != int64(time.Millisecond) {
		t.Errorf("stages = %v", got)
	}
	if _, ok := got["late"]; ok {
		t.Error("stage recorded after Finish should be dropped")
	}
	if snap.TotalNS < 0 {
		t.Errorf("total = %d, want >= 0", snap.TotalNS)
	}
}

func TestTraceFinishIdempotent(t *testing.T) {
	s := NewSink(nil)
	install(t, s)
	tr := StartTrace("GET /healthz")
	tr.Finish()
	tr.Finish()
	if n := s.SlowTraces().Len(); n != 1 {
		t.Fatalf("double Finish offered %d snapshots, want 1", n)
	}
}

func TestTraceRingKeepsSlowest(t *testing.T) {
	r := NewTraceRing(3)
	for _, ns := range []int64{50, 10, 90, 30, 70, 20} {
		r.Offer(TraceSnapshot{ID: uint64(ns), TotalNS: ns})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	for i, want := range []int64{90, 70, 50} {
		if snap[i].TotalNS != want {
			t.Errorf("ring[%d].TotalNS = %d, want %d (slowest first)", i, snap[i].TotalNS, want)
		}
	}
	// An offer below the floor must be rejected.
	r.Offer(TraceSnapshot{TotalNS: 5})
	if got := r.Snapshot()[2].TotalNS; got != 50 {
		t.Errorf("floor trace = %d after below-floor offer, want 50", got)
	}
}

func TestTraceRingConcurrentOffer(t *testing.T) {
	r := NewTraceRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Offer(TraceSnapshot{TotalNS: int64(g*500 + i)})
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("ring holds %d, want 8", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].TotalNS < snap[i].TotalNS {
			t.Fatalf("ring not sorted: %d before %d", snap[i-1].TotalNS, snap[i].TotalNS)
		}
	}
	if snap[0].TotalNS != 1999 {
		t.Errorf("slowest retained = %d, want 1999", snap[0].TotalNS)
	}
}
