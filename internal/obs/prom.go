package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// format rendered by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a dotted metric name into a Prometheus metric
// name: dots (and any other character outside [a-zA-Z0-9_]) become
// underscores, and a leading digit gains an underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters as `counter` families, gauges as `gauge`
// families, and histograms as `summary` families with interpolated
// quantiles (0.5, 0.9, 0.99, 0.999) plus `_sum`, `_count`, and `_min` /
// `_max` gauge companions. Families are sorted by name so the output is
// deterministic for a given snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n"+
				"%s{quantile=\"0.5\"} %d\n"+
				"%s{quantile=\"0.9\"} %d\n"+
				"%s{quantile=\"0.99\"} %d\n"+
				"%s{quantile=\"0.999\"} %d\n"+
				"%s_sum %d\n"+
				"%s_count %d\n",
			n, n, h.P50, n, h.P90, n, h.P99, n, h.P999, n, h.Sum, n, h.Count); err != nil {
			return err
		}
		if h.Count > 0 {
			if _, err := fmt.Fprintf(w,
				"# TYPE %s_min gauge\n%s_min %d\n# TYPE %s_max gauge\n%s_max %d\n",
				n, n, h.Min, n, n, h.Max); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteRuntimeMetrics renders Go runtime health — goroutines, memory,
// and GC activity — in the Prometheus text exposition format. It calls
// runtime.ReadMemStats, which briefly stops the world; scrape-rate
// callers (the /metrics endpoint) are fine, hot paths should not call
// it.
func WriteRuntimeMetrics(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauges := []struct {
		name string
		val  uint64
	}{
		{"go_goroutines", uint64(runtime.NumGoroutine())},
		{"go_gomaxprocs", uint64(runtime.GOMAXPROCS(0))},
		{"go_memstats_heap_alloc_bytes", ms.HeapAlloc},
		{"go_memstats_heap_objects", ms.HeapObjects},
		{"go_memstats_sys_bytes", ms.Sys},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.val); err != nil {
			return err
		}
	}
	counters := []struct {
		name string
		val  uint64
	}{
		{"go_memstats_alloc_bytes_total", ms.TotalAlloc},
		{"go_gc_cycles_total", uint64(ms.NumGC)},
		{"go_gc_pause_ns_total", ms.PauseTotalNs},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.val); err != nil {
			return err
		}
	}
	return nil
}
