package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSlowTraces is the capacity of a sink's slow-trace ring: the N
// slowest completed request traces retained for /debug/slow.
const DefaultSlowTraces = 32

// traceSeq numbers traces process-wide.
var traceSeq atomic.Uint64

// A Trace follows one request through the pipeline: a request ID, a
// monotonic start, and the duration of every named stage the request
// passed through (translate, verify, queue, commit, fsync, publish, …).
// A nil *Trace is valid and every method on it is a no-op, so disabled
// instrumentation pays only a nil check: StartTrace returns nil when no
// sink is installed.
//
// Stages may be recorded from a different goroutine than the one that
// started the trace (the group-commit pipeline records the commit
// stages); a mutex serializes them. Stages recorded after Finish are
// dropped — the request already reported its fate.
type Trace struct {
	id    uint64
	op    string
	start time.Time

	mu       sync.Mutex
	stages   []TraceStage
	finished bool
}

// A TraceStage is one named phase of a trace with its duration.
type TraceStage struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// A TraceSnapshot is the JSON-able, immutable record of a finished
// trace.
type TraceSnapshot struct {
	ID      uint64       `json:"id"`
	Op      string       `json:"op"`
	Start   time.Time    `json:"start"`
	TotalNS int64        `json:"total_ns"`
	Stages  []TraceStage `json:"stages"`
}

// StartTrace opens a request trace against the active sink, or returns
// nil when instrumentation is disabled. op labels the request (for HTTP
// requests, "METHOD /path"). Callers building op dynamically should
// guard on Enabled() first — argument construction is not free even
// when the call returns nil.
func StartTrace(op string) *Trace {
	if active.Load() == nil {
		return nil
	}
	return &Trace{id: traceSeq.Add(1), op: op, start: time.Now()}
}

// ID returns the trace's request ID (0 on a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Stage records one named phase duration. No-op on a nil or finished
// trace.
func (t *Trace) Stage(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.stages = append(t.stages, TraceStage{Name: name, NS: int64(d)})
	}
	t.mu.Unlock()
}

// Finish closes the trace, offers it to the active sink's slow-trace
// ring, and returns its total duration. Idempotent; later calls return
// the original total. No-op on a nil trace.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	total := time.Since(t.start)
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return total
	}
	t.finished = true
	snap := TraceSnapshot{
		ID:      t.id,
		Op:      t.op,
		Start:   t.start,
		TotalNS: int64(total),
		Stages:  t.stages,
	}
	t.mu.Unlock()
	if s := active.Load(); s != nil && s.slow != nil {
		s.slow.Offer(snap)
	}
	return total
}

// traceKey is the context key carrying a *Trace.
type traceKey struct{}

// ContextWithTrace attaches t to ctx; a nil trace returns ctx
// unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// A TraceRing retains the N slowest completed traces seen so far,
// sorted slowest-first. Offers below the current floor are rejected in
// O(1) once the ring is full; insertions shift within a fixed slice.
type TraceRing struct {
	mu   sync.Mutex
	cap  int
	slow []TraceSnapshot // sorted by TotalNS descending
}

// NewTraceRing returns a ring retaining the capacity slowest traces
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{cap: capacity}
}

// Offer considers s for retention.
func (r *TraceRing) Offer(s TraceSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.slow) == r.cap {
		if s.TotalNS <= r.slow[len(r.slow)-1].TotalNS {
			return
		}
		r.slow = r.slow[:len(r.slow)-1]
	}
	i := len(r.slow)
	for i > 0 && r.slow[i-1].TotalNS < s.TotalNS {
		i--
	}
	r.slow = append(r.slow, TraceSnapshot{})
	copy(r.slow[i+1:], r.slow[i:])
	r.slow[i] = s
}

// Len reports how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slow)
}

// Snapshot copies the retained traces, slowest first.
func (r *TraceRing) Snapshot() []TraceSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSnapshot, len(r.slow))
	copy(out, r.slow)
	return out
}
