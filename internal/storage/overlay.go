package storage

import (
	"fmt"
	"sort"

	"viewupdate/internal/obs"
	"viewupdate/internal/relation"
	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// An Overlay is a copy-on-write read layer over a base state: it
// records the insert/delete/replace delta of applied translations per
// relation and answers lookups, scans and full-relation reads against
// "base + delta" without copying any extension. Overlays stack — the
// base may itself be an Overlay — which is how staged transactions
// layer candidate evaluation over staged-but-uncommitted state.
//
// Apply enforces exactly the constraints Database.Apply enforces (key
// dependencies, exact-tuple deletes, inclusion dependencies checked as
// deltas against the final state) and is atomic: on error the overlay
// is unchanged. Unlike Database.Apply it mutates no extension and
// performs no rollback, so it cannot poison anything; fault-injection
// sites of the apply path are deliberately not wired in, because an
// overlay apply is a pure validation + bookkeeping step.
//
// An Overlay is safe for concurrent readers, but Apply must not run
// concurrently with other method calls on the same Overlay. The base
// must not change while the overlay is in use; overlays are meant to
// sit on immutable snapshots or on states the caller has serialized.
type Overlay struct {
	base Source
	ints sourceInternals
	// deltas holds the per-relation delta, keyed by relation name.
	deltas map[string]*overlayDelta
	// refDelta adjusts the base's reverse reference index, keyed by
	// inclusion-dependency index then parent-key encoding: per parent
	// key, the base referencers the overlay erased and the new ones it
	// recorded. Set sizes adjust the reference counts the inclusion
	// delta checks consume; the tuples themselves feed Referencers.
	refDelta map[int]map[string]*refEdgeDelta
}

// refEdgeDelta is one parent key's referencer-set delta. Both maps are
// keyed by the child tuple's Key(). Invariant: removed entries shadow
// base referencers (matched by child key), added entries are referencers
// the overlay introduced.
type refEdgeDelta struct {
	removed map[string]tuple.T
	added   map[string]tuple.T
}

func newRefEdgeDelta() *refEdgeDelta {
	return &refEdgeDelta{removed: map[string]tuple.T{}, added: map[string]tuple.T{}}
}

func (d *refEdgeDelta) clone() *refEdgeDelta {
	out := &refEdgeDelta{
		removed: make(map[string]tuple.T, len(d.removed)),
		added:   make(map[string]tuple.T, len(d.added)),
	}
	for k, t := range d.removed {
		out.removed[k] = t
	}
	for k, t := range d.added {
		out.added[k] = t
	}
	return out
}

func (d *refEdgeDelta) empty() bool { return len(d.removed) == 0 && len(d.added) == 0 }

// count is the delta this edge applies to the base reference count.
func (d *refEdgeDelta) count() int {
	if d == nil {
		return 0
	}
	return len(d.added) - len(d.removed)
}

// overlayDelta is one relation's delta. Both maps are keyed by
// tuple.Key(). Invariants: every removed entry is an exact tuple
// present in the base; every added entry's key is not effectively
// present beneath it (hidden by removed, or absent from the base).
type overlayDelta struct {
	removed map[string]tuple.T
	added   map[string]tuple.T
}

func newOverlayDelta() *overlayDelta {
	return &overlayDelta{removed: map[string]tuple.T{}, added: map[string]tuple.T{}}
}

func (d *overlayDelta) clone() *overlayDelta {
	out := &overlayDelta{
		removed: make(map[string]tuple.T, len(d.removed)),
		added:   make(map[string]tuple.T, len(d.added)),
	}
	for k, t := range d.removed {
		out.removed[k] = t
	}
	for k, t := range d.added {
		out.added[k] = t
	}
	return out
}

func (d *overlayDelta) empty() bool { return len(d.removed) == 0 && len(d.added) == 0 }

// NewOverlay returns an empty overlay over base.
func NewOverlay(base Source) *Overlay {
	return &Overlay{base: base, ints: base.internal(), deltas: map[string]*overlayDelta{}}
}

// Base returns the state the overlay layers over.
func (o *Overlay) Base() Source { return o.base }

// Snapshot returns a copy of the overlay sharing the (immutable) base:
// further Apply calls on either side do not affect the other.
func (o *Overlay) Snapshot() *Overlay {
	out := NewOverlay(o.base)
	for rel, d := range o.deltas {
		out.deltas[rel] = d.clone()
	}
	if len(o.refDelta) > 0 {
		out.refDelta = make(map[int]map[string]*refEdgeDelta, len(o.refDelta))
		for i, m := range o.refDelta {
			cp := make(map[string]*refEdgeDelta, len(m))
			for k, d := range m {
				cp[k] = d.clone()
			}
			out.refDelta[i] = cp
		}
	}
	return out
}

// DeltaSize returns the number of removed and added tuples recorded
// across all relations — the cost of Diff, and a measure of how far the
// overlay has diverged from its base.
func (o *Overlay) DeltaSize() (removed, added int) {
	for _, d := range o.deltas {
		removed += len(d.removed)
		added += len(d.added)
	}
	return removed, added
}

// Schema implements Source.
func (o *Overlay) Schema() *schema.Database { return o.base.Schema() }

// Err implements Source: an overlay is trustworthy iff its base is.
func (o *Overlay) Err() error { return o.base.Err() }

// Tuples implements Source: the base tuples minus the removed set plus
// the added set, in deterministic (key-encoding) order.
func (o *Overlay) Tuples(name string) []tuple.T {
	d := o.deltas[name]
	if d == nil || d.empty() {
		return o.base.Tuples(name)
	}
	base := o.base.Tuples(name)
	// The base is already in key order and filtering preserves it, so
	// only the (typically tiny) added set needs sorting before a linear
	// merge — re-sorting the whole result put an n·log n pass on every
	// staged-state scan. Key() allocates its encoding per call, so base
	// keys are computed only while a removal or merge still needs them.
	addedKeys := make([]string, 0, len(d.added))
	for k := range d.added {
		addedKeys = append(addedKeys, k)
	}
	sort.Strings(addedKeys)
	out := make([]tuple.T, 0, len(base)-len(d.removed)+len(addedKeys))
	ai := 0
	for _, t := range base {
		if len(d.removed) == 0 && ai == len(addedKeys) {
			out = append(out, t)
			continue
		}
		k := t.Key()
		if _, gone := d.removed[k]; gone {
			continue
		}
		for ai < len(addedKeys) && addedKeys[ai] < k {
			out = append(out, d.added[addedKeys[ai]])
			ai++
		}
		out = append(out, t)
	}
	for ; ai < len(addedKeys); ai++ {
		out = append(out, d.added[addedKeys[ai]])
	}
	return out
}

// Len implements Source.
func (o *Overlay) Len(name string) int {
	n := o.base.Len(name)
	if d := o.deltas[name]; d != nil {
		n += len(d.added) - len(d.removed)
	}
	return n
}

// Contains implements Source.
func (o *Overlay) Contains(t tuple.T) bool {
	if d := o.deltas[t.Relation().Name()]; d != nil {
		k := t.Key()
		if cur, ok := d.added[k]; ok {
			return cur.Equal(t)
		}
		if _, gone := d.removed[k]; gone {
			return false
		}
	}
	return o.base.Contains(t)
}

// LookupKey implements Source.
func (o *Overlay) LookupKey(probe tuple.T) (tuple.T, bool) {
	if d := o.deltas[probe.Relation().Name()]; d != nil {
		k := probe.Key()
		if t, ok := d.added[k]; ok {
			return t, true
		}
		if _, gone := d.removed[k]; gone {
			return tuple.T{}, false
		}
	}
	return o.base.LookupKey(probe)
}

// HasIndex implements Source: indexes live in the base; ScanValues
// merges the delta on top of the indexed scan.
func (o *Overlay) HasIndex(rel, attr string) bool { return o.base.HasIndex(rel, attr) }

// ScanValues implements Source.
func (o *Overlay) ScanValues(rel, attr string, vals []value.Value, fn func(tuple.T) bool) {
	d := o.deltas[rel]
	if d == nil || d.empty() {
		o.base.ScanValues(rel, attr, vals, fn)
		return
	}
	stopped := false
	o.base.ScanValues(rel, attr, vals, func(t tuple.T) bool {
		if _, gone := d.removed[t.Key()]; gone {
			return true
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	want := make(map[value.Value]bool, len(vals))
	for _, v := range vals {
		want[v] = true
	}
	for _, t := range d.added {
		if want[t.MustGet(attr)] && !fn(t) {
			return
		}
	}
}

// internal implements Source.
func (o *Overlay) internal() sourceInternals { return overlayInternals{o} }

type overlayInternals struct{ o *Overlay }

func (i overlayInternals) refCount(dep int, keyEnc string) int {
	return i.o.ints.refCount(dep, keyEnc) + i.o.refDelta[dep][keyEnc].count()
}

func (i overlayInternals) eachReferencer(dep int, keyEnc string, fn func(tuple.T) bool) {
	d := i.o.refDelta[dep][keyEnc]
	if d == nil {
		i.o.ints.eachReferencer(dep, keyEnc, fn)
		return
	}
	stopped := false
	i.o.ints.eachReferencer(dep, keyEnc, func(t tuple.T) bool {
		if _, gone := d.removed[t.Key()]; gone {
			return true
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, t := range d.added {
		if !fn(t) {
			return
		}
	}
}

// Referencers implements Source: the base's referencers of parent's key
// under dependency dep, merged with the overlay's reference delta, in
// deterministic order.
func (o *Overlay) Referencers(dep int, parent tuple.T) []tuple.T {
	return sortedReferencers(o.internal(), dep, parent)
}

func (i overlayInternals) containsKeyEncoding(rel, enc string) bool {
	if d := i.o.deltas[rel]; d != nil {
		if _, ok := d.added[enc]; ok {
			return true
		}
		if _, gone := d.removed[enc]; gone {
			return false
		}
	}
	return i.o.ints.containsKeyEncoding(rel, enc)
}

func (i overlayInternals) hasRelation(name string) bool { return i.o.ints.hasRelation(name) }

// applyScratch stages one Apply: deltas and reference adjustments are
// cloned lazily for the relations and dependencies the translation
// touches, so a failed apply leaves the overlay untouched.
type applyScratch struct {
	o      *Overlay
	deltas map[string]*overlayDelta
	refs   map[int]map[string]*refEdgeDelta
}

// delta returns the writable scratch delta for rel.
func (s *applyScratch) delta(rel string) *overlayDelta {
	if d, ok := s.deltas[rel]; ok {
		return d
	}
	var d *overlayDelta
	if cur := s.o.deltas[rel]; cur != nil {
		d = cur.clone()
	} else {
		d = newOverlayDelta()
	}
	s.deltas[rel] = d
	return d
}

// peek returns the current delta for rel — scratch if touched, the
// overlay's otherwise — without cloning. May be nil.
func (s *applyScratch) peek(rel string) *overlayDelta {
	if d, ok := s.deltas[rel]; ok {
		return d
	}
	return s.o.deltas[rel]
}

// refs(i) returns the writable scratch reference adjustment for dep i.
func (s *applyScratch) refMap(dep int) map[string]*refEdgeDelta {
	if m, ok := s.refs[dep]; ok {
		return m
	}
	cur := s.o.refDelta[dep]
	m := make(map[string]*refEdgeDelta, len(cur)+1)
	for k, d := range cur {
		m[k] = d.clone()
	}
	s.refs[dep] = m
	return m
}

// refCount is the staged reference count for dep/keyEnc.
func (s *applyScratch) refCount(dep int, keyEnc string) int {
	base := s.o.ints.refCount(dep, keyEnc)
	if m, ok := s.refs[dep]; ok {
		return base + m[keyEnc].count()
	}
	return base + s.o.refDelta[dep][keyEnc].count()
}

// adjustRefs mirrors Database.refAdjust on the scratch state: +1
// records t as a referencer of the parent key it carries, -1 erases it
// (cancelling a staged addition of the identical tuple, or shadowing a
// base referencer otherwise).
func (s *applyScratch) adjustRefs(t tuple.T, delta int) {
	rel := t.Relation().Name()
	for i, d := range s.o.base.Schema().Inclusions() {
		if d.Child != rel {
			continue
		}
		k := childRefKey(d, t)
		m := s.refMap(i)
		ed := m[k]
		if ed == nil {
			ed = newRefEdgeDelta()
			m[k] = ed
		}
		ck := t.Key()
		if delta > 0 {
			if cur, ok := ed.removed[ck]; ok && cur.Equal(t) {
				delete(ed.removed, ck)
			} else {
				ed.added[ck] = t
			}
		} else {
			if cur, ok := ed.added[ck]; ok && cur.Equal(t) {
				delete(ed.added, ck)
			} else {
				ed.removed[ck] = t
			}
		}
		if ed.empty() {
			delete(m, k)
		}
	}
}

// parentKeyExists mirrors Database.parentKeyExists on the staged state.
func (s *applyScratch) parentKeyExists(parent, keyEnc string) bool {
	enc := keyEncProbe(parent, keyEnc)
	if d := s.peek(parent); d != nil {
		if _, ok := d.added[enc]; ok {
			return true
		}
		if _, gone := d.removed[enc]; gone {
			return false
		}
	}
	return s.o.ints.containsKeyEncoding(parent, enc)
}

// commit folds the scratch into the overlay. Empty deltas are dropped
// so untouched-relation fast paths stay fast.
func (s *applyScratch) commit() {
	for rel, d := range s.deltas {
		if d.empty() {
			delete(s.o.deltas, rel)
		} else {
			s.o.deltas[rel] = d
		}
	}
	for i, m := range s.refs {
		if s.o.refDelta == nil {
			s.o.refDelta = make(map[int]map[string]*refEdgeDelta)
		}
		if len(m) == 0 {
			delete(s.o.refDelta, i)
		} else {
			s.o.refDelta[i] = m
		}
	}
}

// Apply records the translation in the overlay, enforcing exactly the
// constraints Database.Apply enforces — phase for phase, in the same
// deterministic order, with the same added/removed-set semantics
// (removals happen "first", additions "second") and the same
// inclusion-dependency delta checks against the final state. On any
// violation the overlay is left unchanged and an error classified like
// Database.Apply's (relation.ErrNotPresent, relation.ErrKeyConflict,
// ErrInclusion, ErrUnknownRelation) is returned.
func (o *Overlay) Apply(tr *update.Translation) error {
	if err := o.Err(); err != nil {
		return err
	}
	sch := o.base.Schema()

	// Phase 0: validate ops reference relations of this schema.
	for _, op := range tr.Ops() {
		if !o.ints.hasRelation(op.RelationName()) {
			return fmt.Errorf("%w %s in %s", ErrUnknownRelation, op.RelationName(), op)
		}
	}

	removed := tr.Removed().Slice()
	added := tr.Added().Slice()
	s := &applyScratch{o: o, deltas: map[string]*overlayDelta{}, refs: map[int]map[string]*refEdgeDelta{}}

	// Phase 1: remove the removed set.
	for _, t := range removed {
		rel := t.Relation().Name()
		d := s.delta(rel)
		k := t.Key()
		if cur, ok := d.added[k]; ok {
			if !cur.Equal(t) {
				return fmt.Errorf("storage: %w: %s in %s", relation.ErrNotPresent, t, rel)
			}
			delete(d.added, k)
		} else if _, gone := d.removed[k]; gone {
			return fmt.Errorf("storage: %w: %s in %s", relation.ErrNotPresent, t, rel)
		} else if !o.base.Contains(t) {
			return fmt.Errorf("storage: %w: %s in %s", relation.ErrNotPresent, t, rel)
		} else {
			d.removed[k] = t
		}
		s.adjustRefs(t, -1)
	}

	// Phase 2: add the added set.
	for _, t := range added {
		rel := t.Relation().Name()
		d := s.delta(rel)
		k := t.Key()
		if cur, ok := d.added[k]; ok {
			return fmt.Errorf("storage: %w in %s: %s vs existing %s", relation.ErrKeyConflict, rel, t, cur)
		}
		if _, gone := d.removed[k]; !gone {
			if cur, ok := o.base.LookupKey(t); ok {
				return fmt.Errorf("storage: %w in %s: %s vs existing %s", relation.ErrKeyConflict, rel, t, cur)
			}
		}
		d.added[k] = t
		s.adjustRefs(t, +1)
	}

	// Phase 3: inclusion dependencies on the final state, as deltas.
	deps := sch.Inclusions()
	for _, t := range added {
		rel := t.Relation().Name()
		for _, d := range deps {
			if d.Child != rel {
				continue
			}
			if !s.parentKeyExists(d.Parent, childRefKey(d, t)) {
				return fmt.Errorf("%w %s violated: %s references missing %s key", ErrInclusion, d, t, d.Parent)
			}
		}
	}
	for _, t := range removed {
		rel := t.Relation().Name()
		for i, d := range deps {
			if d.Parent != rel {
				continue
			}
			k := parentKeyEnc(t)
			if s.parentKeyExists(d.Parent, k) {
				continue // key survived (replacement kept it)
			}
			if n := s.refCount(i, k); n > 0 {
				return fmt.Errorf("%w %s violated: removing %s leaves %d dangling references", ErrInclusion, d, t, n)
			}
		}
	}

	s.commit()
	obs.Inc("storage.overlay.apply")
	return nil
}

// Diff returns the translation transforming the base state into the
// overlay's state: a delete for every removed tuple and an insert for
// every added tuple, skipping keys whose removed and added entries are
// equal. It matches the shape of storage.Diff (deletes + inserts, no
// replaces) but costs O(delta) instead of a full scan.
func (o *Overlay) Diff() *update.Translation {
	tr := update.NewTranslation()
	for _, d := range o.deltas {
		for k, t := range d.removed {
			if cur, ok := d.added[k]; ok && cur.Equal(t) {
				continue
			}
			tr.Add(update.NewDelete(t))
		}
		for k, t := range d.added {
			if cur, ok := d.removed[k]; ok && cur.Equal(t) {
				continue
			}
			tr.Add(update.NewInsert(t))
		}
	}
	return tr
}
