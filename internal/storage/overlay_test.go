package storage

import (
	"errors"
	"math/rand"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// overlayEqualsDB asserts the overlay's visible state matches the
// database, relation by relation, via every read path.
func overlayEqualsDB(t *testing.T, ov *Overlay, db *Database) {
	t.Helper()
	for _, name := range db.Schema().RelationNames() {
		want := db.Tuples(name)
		got := ov.Tuples(name)
		if len(got) != len(want) {
			t.Fatalf("%s: overlay has %d tuples, database %d", name, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s[%d]: overlay %s, database %s", name, i, got[i], want[i])
			}
		}
		if ov.Len(name) != db.Len(name) {
			t.Fatalf("%s: Len mismatch: overlay %d, database %d", name, ov.Len(name), db.Len(name))
		}
		for _, u := range want {
			if !ov.Contains(u) {
				t.Fatalf("%s: overlay missing %s", name, u)
			}
			got, ok := ov.LookupKey(u)
			if !ok || !got.Equal(u) {
				t.Fatalf("%s: overlay LookupKey(%s) = %s, %v", name, u, got, ok)
			}
		}
	}
}

func TestOverlayReadsMergeDelta(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}

	ov := NewOverlay(db)
	overlayEqualsDB(t, ov, db) // empty delta: all reads delegate

	tr := update.NewTranslation(
		update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 1, "v")),
		update.NewInsert(pt(t, p, 3, "u")),
	)
	if err := ov.Apply(tr); err != nil {
		t.Fatal(err)
	}

	want := db.Clone()
	if err := want.Apply(tr); err != nil {
		t.Fatal(err)
	}
	overlayEqualsDB(t, ov, want)

	// The base is untouched.
	if !db.Contains(pt(t, p, 1, "u")) || db.Len("P") != 2 {
		t.Fatal("overlay apply mutated the base")
	}
	if rm, add := ov.DeltaSize(); rm != 1 || add != 2 {
		t.Fatalf("DeltaSize = %d removed, %d added; want 1, 2", rm, add)
	}
}

func TestOverlayScanValues(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("P", "PV"); err != nil {
		t.Fatal(err)
	}
	ov := NewOverlay(db)
	if !ov.HasIndex("P", "PV") {
		t.Fatal("overlay should expose the base index")
	}
	if err := ov.Apply(update.NewTranslation(
		update.NewDelete(pt(t, p, 2, "v")),
		update.NewInsert(pt(t, p, 3, "v")),
	)); err != nil {
		t.Fatal(err)
	}
	var hits []tuple.T
	ov.ScanValues("P", "PV", []value.Value{value.NewString("v")}, func(u tuple.T) bool {
		hits = append(hits, u)
		return true
	})
	if len(hits) != 1 || hits[0].MustGet("PK") != value.NewInt(3) {
		t.Fatalf("ScanValues over delta = %v, want only (3,v)", hits)
	}
	// Early stop from the added set is honored.
	n := 0
	ov.ScanValues("P", "PV", []value.Value{value.NewString("u"), value.NewString("v")}, func(tuple.T) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early-stopped scan visited %d tuples, want 1", n)
	}
}

func TestOverlayApplyErrorsMatchDatabase(t *testing.T) {
	sch, p, c := pcSchema(t)
	base := Open(sch)
	if err := base.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		tr   *update.Translation
	}{
		{"delete absent", update.NewTranslation(update.NewDelete(pt(t, p, 3, "u")))},
		{"delete wrong value", update.NewTranslation(update.NewDelete(pt(t, p, 1, "v")))},
		{"insert key conflict", update.NewTranslation(update.NewInsert(pt(t, p, 1, "v")))},
		{"double insert same key", update.NewTranslation(
			update.NewInsert(pt(t, p, 3, "u")),
			update.NewInsert(pt(t, p, 3, "v")),
		)},
		{"dangling child insert", update.NewTranslation(update.NewInsert(ct(t, c, 2, 3)))},
		{"delete referenced parent", update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))},
		{"key-changing parent replace", update.NewTranslation(
			update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 3, "u")),
		)},
		{"swap with conflict", update.NewTranslation(
			update.NewDelete(pt(t, p, 1, "u")),
			update.NewInsert(pt(t, p, 2, "u")),
		)},
		{"parent and child delete", update.NewTranslation(
			update.NewDelete(pt(t, p, 1, "u")),
			update.NewDelete(ct(t, c, 1, 1)),
		)},
		{"key-preserving parent replace", update.NewTranslation(
			update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 1, "v")),
		)},
		{"delete then reinsert same key", update.NewTranslation(
			update.NewDelete(pt(t, p, 1, "u")),
			update.NewInsert(pt(t, p, 1, "v")),
		)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ov := NewOverlay(base)
			cl := base.Clone()
			ovErr := ov.Apply(tc.tr)
			clErr := cl.Apply(tc.tr)
			if (ovErr == nil) != (clErr == nil) {
				t.Fatalf("overlay err = %v, clone err = %v", ovErr, clErr)
			}
			if ovErr != nil {
				overlayEqualsDB(t, ov, base) // failed apply must be a no-op
				return
			}
			overlayEqualsDB(t, ov, cl)
		})
	}
}

func TestOverlayUnknownRelation(t *testing.T) {
	sch, _, _ := pcSchema(t)
	db := Open(sch)
	other := schema.MustRelation("X", []schema.Attribute{
		{Name: "K", Domain: schema.MustDomain("XD", value.NewInt(1))},
	}, []string{"K"})
	tr := update.NewTranslation(update.NewInsert(tuple.MustNew(other, value.NewInt(1))))
	err := NewOverlay(db).Apply(tr)
	if err == nil || !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("want ErrUnknownRelation, got %v", err)
	}
}

func TestOverlayStacking(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}

	// Layer 1 removes the child; the parent is still referenced in the
	// base, but layer 1's ref delta frees it.
	ov1 := NewOverlay(db)
	if err := ov1.Apply(update.NewTranslation(update.NewDelete(ct(t, c, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	// Deleting the parent directly on a fresh overlay over the base
	// still fails — the child is there.
	if err := NewOverlay(db).Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err == nil {
		t.Fatal("parent delete over base should fail while child exists")
	}
	// Layer 2 over layer 1 sees the child gone and allows it.
	ov2 := NewOverlay(ov1)
	if err := ov2.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err != nil {
		t.Fatalf("parent delete over child-less overlay failed: %v", err)
	}
	if ov2.Len("P") != 0 || ov2.Len("C") != 0 {
		t.Fatal("stacked overlay state wrong")
	}
	// Layer 1 and the base are untouched.
	if ov1.Len("P") != 1 || db.Len("C") != 1 {
		t.Fatal("stacking leaked writes downward")
	}
}

func TestOverlaySnapshotIndependence(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.Load("P", pt(t, p, 1, "u")); err != nil {
		t.Fatal(err)
	}
	ov := NewOverlay(db)
	if err := ov.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 2, "u")))); err != nil {
		t.Fatal(err)
	}
	snap := ov.Snapshot()
	if err := ov.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 3, "u")))); err != nil {
		t.Fatal(err)
	}
	if snap.Len("P") != 2 || ov.Len("P") != 3 {
		t.Fatalf("snapshot sees %d tuples, overlay %d; want 2 and 3", snap.Len("P"), ov.Len("P"))
	}
	if err := snap.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err != nil {
		t.Fatal(err)
	}
	if ov.Len("P") != 3 {
		t.Fatal("snapshot write leaked into the overlay")
	}
}

func TestOverlayDiff(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ov := NewOverlay(db)
	steps := []*update.Translation{
		update.NewTranslation(update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 1, "v"))),
		update.NewTranslation(update.NewInsert(pt(t, p, 3, "u"))),
		update.NewTranslation(update.NewDelete(pt(t, p, 3, "u"))),
	}
	for _, tr := range steps {
		if err := ov.Apply(tr); err != nil {
			t.Fatal(err)
		}
	}
	diff := ov.Diff()
	// Applying the diff to a clone of the base must land on the overlay
	// state; the net-zero insert+delete of (3,u) must not appear.
	cl := db.Clone()
	if err := cl.Apply(diff); err != nil {
		t.Fatalf("diff does not apply: %v", err)
	}
	overlayEqualsDB(t, ov, cl)
	for _, op := range diff.Ops() {
		if op.Tuple.MustGet("PK") == value.NewInt(3) {
			t.Fatalf("net-zero churn leaked into diff: %s", op)
		}
	}
	// And it matches the full-scan Diff.
	want, err := Diff(db, cl)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(want) {
		t.Fatalf("overlay diff %s != storage.Diff %s", diff, want)
	}
	// Reverting to the base yields an empty diff.
	ov2 := NewOverlay(db)
	if err := ov2.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 2, "v")))); err != nil {
		t.Fatal(err)
	}
	if err := ov2.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 2, "v")))); err != nil {
		t.Fatal(err)
	}
	if got := ov2.Diff(); len(got.Ops()) != 0 {
		t.Fatalf("round-trip diff not empty: %s", got)
	}
}

// TestOverlayRandomizedEquivalence drives an overlay and a clone with
// the same random translation stream and demands identical accept/
// reject decisions and identical visible states throughout.
func TestOverlayRandomizedEquivalence(t *testing.T) {
	sch, p, c := pcSchema(t)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := Open(sch)
		if err := db.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v"), ct(t, c, 1, 1)); err != nil {
			t.Fatal(err)
		}
		ov := NewOverlay(db)
		cl := db.Clone()
		randP := func() tuple.T { return pt(t, p, rng.Int63n(3)+1, []string{"u", "v"}[rng.Intn(2)]) }
		randC := func() tuple.T { return ct(t, c, rng.Int63n(3)+1, rng.Int63n(3)+1) }
		for step := 0; step < 120; step++ {
			tr := update.NewTranslation()
			for n := rng.Intn(3) + 1; n > 0; n-- {
				var u tuple.T
				if rng.Intn(2) == 0 {
					u = randP()
				} else {
					u = randC()
				}
				switch rng.Intn(3) {
				case 0:
					tr.Add(update.NewInsert(u))
				case 1:
					tr.Add(update.NewDelete(u))
				default:
					old, ok := cl.LookupKey(u)
					if !ok {
						old = u
					}
					tr.Add(update.NewReplace(old, u))
				}
			}
			ovErr := ov.Apply(tr)
			clErr := cl.Apply(tr)
			if (ovErr == nil) != (clErr == nil) {
				t.Fatalf("seed %d step %d: overlay err %v, clone err %v, tr %s", seed, step, ovErr, clErr, tr)
			}
			overlayEqualsDB(t, ov, cl)
		}
		// The accumulated diff reproduces the final state from the base.
		re := db.Clone()
		if err := re.Apply(ov.Diff()); err != nil {
			t.Fatalf("seed %d: final diff does not apply: %v", seed, err)
		}
		if !re.Equal(cl) {
			t.Fatalf("seed %d: diff replay diverges", seed)
		}
	}
}

func TestCloneSharedCopyOnWrite(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	snap := db.CloneShared()
	if !db.Equal(snap) {
		t.Fatal("shared clone should equal original")
	}
	// Writes to the original must not show through the snapshot, and
	// vice versa — including the reference index.
	if err := db.Apply(update.NewTranslation(update.NewDelete(ct(t, c, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if snap.Len("C") != 1 || db.Len("C") != 0 {
		t.Fatal("write to original leaked into shared snapshot")
	}
	// Snapshot still refuses to drop the referenced parent; the
	// original, whose child is gone, allows it.
	if err := snap.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err == nil {
		t.Fatal("snapshot ref index corrupted by shared clone")
	}
	if err := db.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err != nil {
		t.Fatalf("original ref index wrong after COW: %v", err)
	}
	if snap.Len("P") != 1 {
		t.Fatal("original write leaked into snapshot")
	}
	// Chained shared clones stay independent too.
	snap2 := snap.CloneShared()
	if err := snap2.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 2, "u")))); err != nil {
		t.Fatal(err)
	}
	if snap.Len("P") != 1 || snap2.Len("P") != 2 {
		t.Fatal("chained shared clone not independent")
	}
	// CreateIndex on a shared extension clones first.
	if err := snap.CreateIndex("P", "PV"); err != nil {
		t.Fatal(err)
	}
	if snap2.HasIndex("P", "PV") {
		t.Fatal("index build leaked into sibling snapshot")
	}
}

func TestOverlayPoisonedBase(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	db.mu.Lock()
	db.poisoned = ErrPoisoned
	db.mu.Unlock()
	ov := NewOverlay(db)
	if err := ov.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))); err == nil {
		t.Fatal("overlay over a poisoned base must refuse writes")
	}
}
