package storage

import (
	"sort"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
)

// A Source is a readable database state: the surface views and the
// translation pipeline need to materialize rows, resolve keys and run
// indexed selection scans. Both *Database (the authoritative state) and
// *Overlay (a copy-on-write delta layer over a base state) implement
// it, so candidate translations can be evaluated against "base + delta"
// without cloning extensions.
//
// Only storage types implement Source: the interface embeds an
// unexported method so overlays always layer over states whose
// reference index and key encodings they understand.
type Source interface {
	// Schema returns the database schema.
	Schema() *schema.Database
	// Tuples returns the named relation's tuples in deterministic
	// (key-encoding) order.
	Tuples(name string) []tuple.T
	// Len returns the number of tuples in the named relation.
	Len(name string) int
	// Contains reports whether the exact tuple is present.
	Contains(t tuple.T) bool
	// LookupKey returns the stored tuple whose key matches probe's key.
	LookupKey(probe tuple.T) (tuple.T, bool)
	// HasIndex reports whether the named relation carries a secondary
	// index on attr.
	HasIndex(rel, attr string) bool
	// ScanValues calls fn for every tuple of rel whose attr equals one
	// of vals, using the secondary index when present. fn must not call
	// back into the source.
	ScanValues(rel, attr string, vals []value.Value, fn func(tuple.T) bool)
	// Referencers returns the child tuples referencing parent's key
	// under inclusion dependency Schema().Inclusions()[dep], in
	// deterministic (key-encoding) order. parent may be any tuple of
	// the dependency's parent relation carrying the key values; tuples
	// of other relations have no referencers. This is the reverse
	// reference index incremental view maintenance walks from a changed
	// tuple toward the root tuples whose view rows it can affect.
	Referencers(dep int, parent tuple.T) []tuple.T
	// Err returns the poisoning error if the state is no longer
	// trustworthy, nil otherwise.
	Err() error

	// internal closes the interface: only *Database and *Overlay
	// qualify, which is what lets overlays stack over either.
	internal() sourceInternals
}

// sourceInternals is the package-private surface overlays need from
// their base: the incremental reference index and raw key-encoding
// probes that back inclusion-dependency delta checks.
type sourceInternals interface {
	// refCount returns how many child tuples reference the parent key
	// (encoded without the relation-name prefix) under inclusion
	// dependency sch.Inclusions()[dep].
	refCount(dep int, keyEnc string) int
	// eachReferencer calls fn for every child tuple referencing the
	// parent key under dependency dep, in unspecified order; fn
	// returning false stops the walk.
	eachReferencer(dep int, keyEnc string, fn func(tuple.T) bool)
	// containsKeyEncoding reports whether the named relation holds a
	// tuple whose tuple.Key() equals enc.
	containsKeyEncoding(rel, enc string) bool
	// hasRelation reports whether the schema's named relation has an
	// extension in this state.
	hasRelation(name string) bool
}

// internal implements Source.
func (db *Database) internal() sourceInternals { return dbInternals{db} }

// dbInternals adapts *Database to sourceInternals with locked reads.
type dbInternals struct{ db *Database }

func (i dbInternals) refCount(dep int, keyEnc string) int {
	i.db.mu.RLock()
	defer i.db.mu.RUnlock()
	if dep < 0 || dep >= len(i.db.refs) {
		return 0
	}
	return len(i.db.refs[dep][keyEnc])
}

func (i dbInternals) eachReferencer(dep int, keyEnc string, fn func(tuple.T) bool) {
	i.db.mu.RLock()
	defer i.db.mu.RUnlock()
	if dep < 0 || dep >= len(i.db.refs) {
		return
	}
	for _, t := range i.db.refs[dep][keyEnc] {
		if !fn(t) {
			return
		}
	}
}

// Referencers implements Source: the child tuples referencing parent's
// key under inclusion dependency dep, in deterministic order.
func (db *Database) Referencers(dep int, parent tuple.T) []tuple.T {
	return sortedReferencers(db.internal(), dep, parent)
}

// sortedReferencers collects an internals' referencer walk into the
// deterministic order the exported Referencers contract promises.
func sortedReferencers(ints sourceInternals, dep int, parent tuple.T) []tuple.T {
	var out []tuple.T
	ints.eachReferencer(dep, parentKeyEnc(parent), func(t tuple.T) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

func (i dbInternals) containsKeyEncoding(rel, enc string) bool {
	i.db.mu.RLock()
	defer i.db.mu.RUnlock()
	e := i.db.exts[rel]
	return e != nil && e.ContainsKeyEncoding(enc)
}

func (i dbInternals) hasRelation(name string) bool {
	i.db.mu.RLock()
	defer i.db.mu.RUnlock()
	return i.db.exts[name] != nil
}

// keyEncProbe rebuilds the tuple.Key() encoding of relation rel's key
// from a bare key-value encoding (the format childRefKey/parentKeyEnc
// produce: '\n'-joined value encodings without the relation name).
func keyEncProbe(rel, keyEnc string) string {
	if keyEnc == "" {
		return rel
	}
	return rel + "\n" + keyEnc
}
