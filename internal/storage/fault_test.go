package storage

import (
	"errors"
	"testing"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/relation"
	"viewupdate/internal/update"
	"viewupdate/internal/vuerr"
)

// TestInjectedTransientApplyFailure checks the clean injection point:
// a fault at storage.apply fails the whole translation before any
// mutation, and the error is classifiable as transient.
func TestInjectedTransientApplyFailure(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteApply, 1, vuerr.ErrTransient))
	defer faultinject.Disable()
	err := db.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 1, "u"))))
	if !vuerr.IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if db.Len("P") != 0 {
		t.Fatal("failed apply mutated state")
	}
	// The fault fired once; the retry (second attempt) succeeds.
	if err := db.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 1, "u")))); err != nil {
		t.Fatalf("second attempt: %v", err)
	}
}

// TestMidApplyFaultRollsBack checks that a fault injected between the
// ops of a multi-op translation rolls back cleanly: the database is
// unchanged and not poisoned.
func TestMidApplyFaultRollsBack(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteApplyInsert, 2, vuerr.ErrTransient))
	defer faultinject.Disable()
	tr := update.NewTranslation(
		update.NewInsert(pt(t, p, 1, "u")),
		update.NewInsert(pt(t, p, 2, "v")),
	)
	err := db.Apply(tr)
	if !vuerr.IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if db.Len("P") != 0 {
		t.Fatal("rollback did not restore the empty state")
	}
	if db.Poisoned() {
		t.Fatal("clean rollback must not poison")
	}
	if err := db.Apply(tr); err != nil {
		t.Fatalf("retry after clean rollback: %v", err)
	}
}

// TestRollbackFailurePoisonsDatabase reaches the path that used to
// panic: the second insert fails (injected), and the rollback of the
// first insert fails too (injected). The database must poison itself
// and refuse all later mutations with an error wrapping
// vuerr.ErrCorrupt.
func TestRollbackFailurePoisonsDatabase(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteApplyInsert, 2, vuerr.ErrTransient).
		FailNth(faultinject.SiteRollback, 1, vuerr.ErrTransient))
	defer faultinject.Disable()
	tr := update.NewTranslation(
		update.NewInsert(pt(t, p, 1, "u")),
		update.NewInsert(pt(t, p, 2, "v")),
	)
	err := db.Apply(tr)
	if err == nil {
		t.Fatal("apply should fail")
	}
	if !vuerr.IsCorrupt(err) || !errors.Is(err, ErrPoisoned) {
		t.Fatalf("err = %v, want ErrPoisoned wrapping vuerr.ErrCorrupt", err)
	}
	if !db.Poisoned() || db.Err() == nil {
		t.Fatal("database should report itself poisoned")
	}
	// Every later mutation is refused, faults or not.
	faultinject.Disable()
	for _, probe := range []func() error{
		func() error { return db.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 3, "u")))) },
		func() error { return db.Load("P", pt(t, p, 3, "u")) },
		func() error { return db.SyncSchema() },
	} {
		if err := probe(); !vuerr.IsCorrupt(err) {
			t.Fatalf("post-poison call returned %v, want ErrCorrupt chain", err)
		}
	}
	// Poisoning survives Clone (the copy holds the same broken state).
	if !db.Clone().Poisoned() {
		t.Fatal("clone of a poisoned database should be poisoned")
	}
}

// TestErrorChains pins the errors.Is contracts of the storage layer so
// callers can rely on classification instead of string matching.
func TestErrorChains(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.Load("P", pt(t, p, 1, "u")); err != nil {
		t.Fatal(err)
	}

	// Key conflict on insert.
	err := db.Apply(update.NewTranslation(update.NewInsert(pt(t, p, 1, "v"))))
	if !errors.Is(err, relation.ErrKeyConflict) {
		t.Fatalf("key conflict err = %v, want relation.ErrKeyConflict chain", err)
	}
	// Deleting an absent tuple.
	err = db.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 2, "u"))))
	if !errors.Is(err, relation.ErrNotPresent) {
		t.Fatalf("absent delete err = %v, want relation.ErrNotPresent chain", err)
	}
	// Inclusion violation: child referencing a missing parent key.
	err = db.Apply(update.NewTranslation(update.NewInsert(ct(t, c, 1, 3))))
	if !errors.Is(err, ErrInclusion) {
		t.Fatalf("inclusion err = %v, want ErrInclusion chain", err)
	}
	// Removing a referenced parent.
	if err := db.Load("C", ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	err = db.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u"))))
	if !errors.Is(err, ErrInclusion) {
		t.Fatalf("dangling err = %v, want ErrInclusion chain", err)
	}
	// CreateIndex on an unknown relation.
	err = db.CreateIndex("NOPE", "X")
	if !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("unknown relation err = %v, want ErrUnknownRelation chain", err)
	}
	// Transient/corrupt sentinels are distinct.
	if vuerr.IsTransient(err) || vuerr.IsCorrupt(err) {
		t.Fatal("constraint errors must not be transient or corrupt")
	}
}

// TestDiff checks that Diff produces the exact delete/insert sets that
// transform one state into another.
func TestDiff(t *testing.T) {
	sch, p, _ := pcSchema(t)
	a := Open(sch)
	if err := a.Load("P", pt(t, p, 1, "u"), pt(t, p, 2, "u")); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	if err := b.Apply(update.NewTranslation(
		update.NewDelete(pt(t, p, 2, "u")),
		update.NewInsert(pt(t, p, 3, "v")),
	)); err != nil {
		t.Fatal(err)
	}
	tr, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("diff has %d ops, want 2: %s", tr.Len(), tr)
	}
	if err := a.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("applying the diff did not reproduce the target state")
	}
	// Identical states diff to the empty translation.
	tr, err = Diff(a, b)
	if err != nil || tr.Len() != 0 {
		t.Fatalf("diff of equal states = %s, %v", tr, err)
	}
}
