// Package storage implements the database instance: one extension per
// relation of a schema, constraint enforcement (key dependencies via
// the extensions, inclusion dependencies via an incremental reference
// index), and atomic application of translations with rollback.
package storage

import (
	"fmt"
	"sync"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/relation"
	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// A Database holds the extensions of every relation in a schema. All
// mutation goes through atomic entry points guarded by a mutex, so a
// Database is safe for concurrent use.
type Database struct {
	mu   sync.RWMutex
	sch  *schema.Database
	exts map[string]*relation.Extension
	// refs[i] is the reverse reference index of inclusion dependency
	// sch.Inclusions()[i]: it maps the encoding of a referenced parent
	// key to the set of child tuples referencing it (keyed by the child
	// tuple's Key()). Maintained incrementally by Apply; the set size is
	// the reference count the inclusion delta checks consume, and the
	// tuples themselves back Referencers — the edge walk incremental
	// view maintenance uses to find the root tuples affected by a
	// non-root change.
	refs []map[string]map[string]tuple.T
	// poisoned is non-nil once an in-memory rollback has failed: the
	// state is no longer trustworthy, so every later mutation returns
	// this error (which wraps ErrPoisoned and vuerr.ErrCorrupt).
	poisoned error
	// sharedExts marks extensions shared with a CloneShared snapshot;
	// the next mutation of a marked relation clones its extension first
	// (copy-on-write at relation granularity). sharedRefs does the same
	// for the inclusion reference index.
	sharedExts map[string]bool
	sharedRefs bool
}

// Open returns an empty database instance for the schema.
func Open(sch *schema.Database) *Database {
	db := &Database{sch: sch, exts: make(map[string]*relation.Extension)}
	for _, name := range sch.RelationNames() {
		db.exts[name] = relation.NewExtension(sch.Relation(name))
	}
	db.refs = make([]map[string]map[string]tuple.T, len(sch.Inclusions()))
	for i := range db.refs {
		db.refs[i] = make(map[string]map[string]tuple.T)
	}
	return db
}

// Schema returns the database schema.
func (db *Database) Schema() *schema.Database { return db.sch }

// childRefKey encodes the values tuple t carries in the child
// attributes of dependency d — i.e. the parent key t references.
func childRefKey(d schema.InclusionDependency, t tuple.T) string {
	enc, err := t.ProjectEncode(d.ChildAttrs)
	if err != nil {
		panic(fmt.Sprintf("storage: inclusion %s on tuple %s: %v", d, t, err))
	}
	return enc
}

// parentKeyEnc encodes the key values of a parent tuple in key order,
// matching childRefKey's encoding.
func parentKeyEnc(t tuple.T) string {
	var b []byte
	for i, v := range t.KeyValues() {
		if i > 0 {
			b = append(b, '\n')
		}
		b = append(b, v.Encode()...)
	}
	return string(b)
}

// Load bulk-inserts tuples into the named relation, checking key and
// inclusion constraints after all tuples are in (so self- and
// cross-references in the batch are fine as long as the final state is
// consistent with previously loaded relations — load parents first, or
// use LoadAll for an arbitrary order across relations).
func (db *Database) Load(rel string, ts ...tuple.T) error {
	tr := update.NewTranslation()
	for _, t := range ts {
		if t.Relation().Name() != rel {
			return fmt.Errorf("storage: tuple %s loaded into %s", t, rel)
		}
		tr.Add(update.NewInsert(t))
	}
	return db.Apply(tr)
}

// LoadAll bulk-inserts tuples into their own relations in one atomic
// batch, so parent and child tuples may arrive in any order.
func (db *Database) LoadAll(ts ...tuple.T) error {
	tr := update.NewTranslation()
	for _, t := range ts {
		tr.Add(update.NewInsert(t))
	}
	return db.Apply(tr)
}

// Extension returns the live extension for the named relation. Callers
// must treat it as read-only; all writes go through Apply. For a
// stable snapshot under concurrency use SnapshotRelation.
func (db *Database) Extension(name string) *relation.Extension {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.exts[name]
}

// SnapshotRelation returns a copy of the named relation's extension.
func (db *Database) SnapshotRelation(name string) *relation.Extension {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := db.exts[name]
	if e == nil {
		return nil
	}
	return e.Clone()
}

// Tuples returns the named relation's tuples in deterministic order.
func (db *Database) Tuples(name string) []tuple.T {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := db.exts[name]
	if e == nil {
		return nil
	}
	return e.Tuples()
}

// Len returns the number of tuples in the named relation.
func (db *Database) Len(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := db.exts[name]
	if e == nil {
		return 0
	}
	return e.Len()
}

// Contains reports whether the exact tuple is present.
func (db *Database) Contains(t tuple.T) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := db.exts[t.Relation().Name()]
	return e != nil && e.Contains(t)
}

// LookupKey returns the stored tuple whose key matches probe's key.
func (db *Database) LookupKey(probe tuple.T) (tuple.T, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := db.exts[probe.Relation().Name()]
	if e == nil {
		return tuple.T{}, false
	}
	return e.LookupKey(probe)
}

// Clone returns an independent copy of the whole instance.
func (db *Database) Clone() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := &Database{sch: db.sch, exts: make(map[string]*relation.Extension, len(db.exts))}
	for n, e := range db.exts {
		out.exts[n] = e.Clone()
	}
	out.refs = cloneRefs(db.refs)
	out.poisoned = db.poisoned
	return out
}

// cloneRefs deep-copies a reverse reference index (tuples are immutable
// and shared).
func cloneRefs(refs []map[string]map[string]tuple.T) []map[string]map[string]tuple.T {
	out := make([]map[string]map[string]tuple.T, len(refs))
	for i, m := range refs {
		cp := make(map[string]map[string]tuple.T, len(m))
		for k, set := range m {
			s := make(map[string]tuple.T, len(set))
			for ck, ct := range set {
				s[ck] = ct
			}
			cp[k] = s
		}
		out[i] = cp
	}
	return out
}

// CloneShared returns a snapshot that shares every extension and the
// reference index with the receiver, turning both sides copy-on-write:
// whichever side mutates a relation next clones that relation's
// extension first, so the other side never observes the write.
// Publishing a read snapshot this way costs O(relations), not
// O(tuples) — the win the server's snapshot publication relies on.
func (db *Database) CloneShared() *Database {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := &Database{sch: db.sch, exts: make(map[string]*relation.Extension, len(db.exts))}
	if db.sharedExts == nil {
		db.sharedExts = make(map[string]bool, len(db.exts))
	}
	out.sharedExts = make(map[string]bool, len(db.exts))
	for n, e := range db.exts {
		out.exts[n] = e
		db.sharedExts[n] = true
		out.sharedExts[n] = true
	}
	out.refs = db.refs
	db.sharedRefs = true
	out.sharedRefs = true
	out.poisoned = db.poisoned
	return out
}

// writableExt returns the named extension for mutation, cloning it
// first if it is shared with a snapshot. Callers hold db.mu for
// writing.
func (db *Database) writableExt(name string) *relation.Extension {
	e := db.exts[name]
	if e != nil && db.sharedExts[name] {
		// The clone count and size trend is the early-warning signal for
		// workloads whose chosen translations grow the base state: every
		// publish makes the next write re-clone the touched extension,
		// so COW cost scales with table size, not delta size.
		obs.Inc("storage.cow.clone")
		obs.Observe("storage.cow.clone_len", int64(e.Len()))
		e = e.Clone()
		db.exts[name] = e
		delete(db.sharedExts, name)
	}
	return e
}

// writableRefs returns the reference index for mutation, deep-copying
// it first if it is shared with a snapshot. Callers hold db.mu for
// writing.
func (db *Database) writableRefs() []map[string]map[string]tuple.T {
	if db.sharedRefs {
		db.refs = cloneRefs(db.refs)
		db.sharedRefs = false
	}
	return db.refs
}

// Equal reports whether two instances of the same schema hold the same
// tuples in every relation.
func (db *Database) Equal(o *Database) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(db.exts) != len(o.exts) {
		return false
	}
	for n, e := range db.exts {
		oe, ok := o.exts[n]
		if !ok || !e.Equal(oe) {
			return false
		}
	}
	return true
}

// Apply executes a translation atomically. Per the paper's added/
// removed-set semantics the removals happen "first" and the additions
// "second", so translations whose ops would transiently conflict under
// some serial order (e.g. delete t; insert t' with t's key) apply
// cleanly. On any constraint violation — a removed tuple being absent,
// a key conflict among the added tuples, or an inclusion-dependency
// violation in the final state — nothing is changed and an error
// describing the violation is returned.
func (db *Database) Apply(tr *update.Translation) error {
	span := obs.StartSpan("storage.apply")
	defer span.End()
	if ferr := faultinject.Hit(faultinject.SiteApply); ferr != nil {
		obs.Inc("storage.apply.injected")
		return fmt.Errorf("storage: %w", ferr)
	}
	db.mu.Lock()
	err := db.applyLocked(tr)
	db.mu.Unlock()
	if err != nil {
		obs.Inc("storage.apply.rollback")
		return err
	}
	obs.Inc("storage.apply.ok")
	countOps(tr)
	return nil
}

// Err returns the poisoning error if the database is poisoned, nil
// otherwise.
func (db *Database) Err() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.poisoned
}

// Poisoned reports whether an in-memory rollback has failed, leaving
// the state untrustworthy.
func (db *Database) Poisoned() bool { return db.Err() != nil }

// countOps records per-relation, per-kind operation counts for an
// applied translation. Guarded by Enabled so the disabled path never
// builds the dynamic metric names.
func countOps(tr *update.Translation) {
	if !obs.Enabled() {
		return
	}
	for _, o := range tr.Ops() {
		switch o.Kind {
		case update.Insert:
			obs.Inc("storage.apply.insert." + o.RelationName())
		case update.Delete:
			obs.Inc("storage.apply.delete." + o.RelationName())
		case update.Replace:
			obs.Inc("storage.apply.replace." + o.RelationName())
		}
	}
}

func (db *Database) applyLocked(tr *update.Translation) (err error) {
	if db.poisoned != nil {
		return db.poisoned
	}
	type action struct {
		remove bool
		t      tuple.T
	}
	var done []action
	// undo reverts the actions taken so far, in reverse. A failure here
	// — which cannot happen without injected faults or a bug, since it
	// only re-applies inverses of operations that just succeeded —
	// leaves the state half-rolled-back, so it is reported rather than
	// papered over.
	undo := func() error {
		for i := len(done) - 1; i >= 0; i-- {
			a := done[i]
			if ferr := faultinject.Hit(faultinject.SiteRollback); ferr != nil {
				return fmt.Errorf("storage: rollback interrupted: %w", ferr)
			}
			e := db.writableExt(a.t.Relation().Name())
			if a.remove {
				if ierr := e.Insert(a.t); ierr != nil {
					return fmt.Errorf("storage: rollback re-insert failed: %w", ierr)
				}
				db.refAdjust(a.t, +1)
			} else {
				if derr := e.Delete(a.t); derr != nil {
					return fmt.Errorf("storage: rollback delete failed: %w", derr)
				}
				db.refAdjust(a.t, -1)
			}
		}
		return nil
	}
	// fail rolls back and returns cause; if the rollback itself fails,
	// the database poisons itself — the in-memory state is no longer a
	// consistent instance, so every later mutation is refused with an
	// error wrapping vuerr.ErrCorrupt. Callers holding a durable store
	// recover by reopening from snapshot + WAL.
	fail := func(cause error) error {
		if uerr := undo(); uerr != nil {
			db.poisoned = fmt.Errorf("%w: %v (while undoing after: %v)", ErrPoisoned, uerr, cause)
			obs.Inc("storage.poisoned")
			return db.poisoned
		}
		return cause
	}

	removed := tr.Removed().Slice()
	added := tr.Added().Slice()

	// Phase 0: validate ops reference relations of this schema.
	for _, o := range tr.Ops() {
		if db.exts[o.RelationName()] == nil {
			return fmt.Errorf("%w %s in %s", ErrUnknownRelation, o.RelationName(), o)
		}
	}

	// Phase 1: remove the removed set.
	for _, t := range removed {
		if ferr := faultinject.Hit(faultinject.SiteApplyDelete); ferr != nil {
			return fail(fmt.Errorf("storage: %w", ferr))
		}
		e := db.writableExt(t.Relation().Name())
		if err := e.Delete(t); err != nil {
			return fail(fmt.Errorf("storage: %w", err))
		}
		db.refAdjust(t, -1)
		done = append(done, action{remove: true, t: t})
	}

	// Phase 2: add the added set.
	for _, t := range added {
		if ferr := faultinject.Hit(faultinject.SiteApplyInsert); ferr != nil {
			return fail(fmt.Errorf("storage: %w", ferr))
		}
		e := db.writableExt(t.Relation().Name())
		if err := e.Insert(t); err != nil {
			return fail(fmt.Errorf("storage: %w", err))
		}
		db.refAdjust(t, +1)
		done = append(done, action{remove: false, t: t})
	}

	// Phase 3: inclusion dependencies on the final state, checked as
	// deltas: every touched child reference must resolve, and every
	// removed parent key must leave no dangling references.
	isp := obs.StartSpan("storage.inclusion_check")
	err = db.checkInclusionDeltas(removed, added)
	isp.End()
	if err != nil {
		return fail(err)
	}
	return nil
}

// refAdjust updates the reverse reference index for every inclusion
// dependency whose child relation is t's relation: delta +1 records t
// as a referencer of the parent key it carries, -1 erases it.
func (db *Database) refAdjust(t tuple.T, delta int) {
	rel := t.Relation().Name()
	for i, d := range db.sch.Inclusions() {
		if d.Child != rel {
			continue
		}
		refs := db.writableRefs()
		k := childRefKey(d, t)
		ck := t.Key()
		set := refs[i][k]
		if delta > 0 {
			if set == nil {
				set = make(map[string]tuple.T, 1)
				refs[i][k] = set
			}
			set[ck] = t
		} else if set != nil {
			delete(set, ck)
			if len(set) == 0 {
				delete(refs[i], k)
			}
		}
	}
}

// checkInclusionDeltas verifies inclusion dependencies affected by the
// given removed/added tuples against the (already updated) state.
func (db *Database) checkInclusionDeltas(removed, added []tuple.T) error {
	deps := db.sch.Inclusions()
	// Added child tuples must reference existing parents; removed
	// parents (not re-added with the same key) must not be referenced.
	for _, t := range added {
		rel := t.Relation().Name()
		for _, d := range deps {
			if d.Child != rel {
				continue
			}
			if !db.parentKeyExists(d.Parent, childRefKey(d, t)) {
				return fmt.Errorf("%w %s violated: %s references missing %s key", ErrInclusion, d, t, d.Parent)
			}
		}
	}
	for _, t := range removed {
		rel := t.Relation().Name()
		for i, d := range deps {
			if d.Parent != rel {
				continue
			}
			k := parentKeyEnc(t)
			if db.parentKeyExists(d.Parent, k) {
				continue // key survived (replacement kept it)
			}
			if n := len(db.refs[i][k]); n > 0 {
				return fmt.Errorf("%w %s violated: removing %s leaves %d dangling references", ErrInclusion, d, t, n)
			}
		}
	}
	return nil
}

// parentKeyExists reports whether the named relation holds a tuple
// whose key encodes to keyEnc.
func (db *Database) parentKeyExists(parent, keyEnc string) bool {
	e := db.exts[parent]
	if e == nil {
		return false
	}
	// Rebuild the probe key string the extension's primary index uses
	// (relation name + '\n' + encodings). parentKeyEnc/childRefKey use
	// '\n' joining too, so prefixing the relation name reproduces
	// tuple.Key().
	probe := parent
	if keyEnc != "" {
		probe += "\n" + keyEnc
	}
	return e.ContainsKeyEncoding(probe)
}

// CheckAllInclusions verifies every inclusion dependency over the whole
// state (used by tests and after bulk loads through unsafe paths).
func (db *Database) CheckAllInclusions() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, d := range db.sch.Inclusions() {
		child := db.exts[d.Child]
		var err error
		child.Each(func(t tuple.T) bool {
			if !db.parentKeyExists(d.Parent, childRefKey(d, t)) {
				err = fmt.Errorf("%w %s violated by %s", ErrInclusion, d, t)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// SyncSchema absorbs schema growth (new relations, new inclusion
// dependencies) into a live instance: extensions are created for new
// relations and the inclusion reference index is rebuilt. If existing
// data violates a newly added inclusion dependency, SyncSchema reports
// the violation and leaves the index consistent with the (still
// unchanged) data, so the caller should drop the offending dependency
// or data.
func (db *Database) SyncSchema() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.poisoned != nil {
		return db.poisoned
	}
	for _, name := range db.sch.RelationNames() {
		if db.exts[name] == nil {
			db.exts[name] = relation.NewExtension(db.sch.Relation(name))
		}
	}
	deps := db.sch.Inclusions()
	refs := make([]map[string]map[string]tuple.T, len(deps))
	for i, d := range deps {
		refs[i] = make(map[string]map[string]tuple.T)
		child := db.exts[d.Child]
		if child == nil {
			return fmt.Errorf("storage: inclusion %s references unknown relation", d)
		}
		var err error
		child.Each(func(t tuple.T) bool {
			k := childRefKey(d, t)
			if refs[i][k] == nil {
				refs[i][k] = make(map[string]tuple.T, 1)
			}
			refs[i][k][t.Key()] = t
			probe := d.Parent
			if k != "" {
				probe += "\n" + k
			}
			parent := db.exts[d.Parent]
			if parent == nil || !parent.ContainsKeyEncoding(probe) {
				err = fmt.Errorf("storage: existing tuple %s violates new inclusion %s", t, d)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	db.refs = refs
	db.sharedRefs = false
	return nil
}

// CreateIndex builds a secondary index on the named relation's
// attribute; subsequent selection scans on that attribute use it.
func (db *Database) CreateIndex(rel, attr string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.exts[rel] == nil {
		return fmt.Errorf("%w %s", ErrUnknownRelation, rel)
	}
	return db.writableExt(rel).EnsureIndex(attr)
}

// HasIndex reports whether the named relation carries a secondary index
// on attr.
func (db *Database) HasIndex(rel, attr string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := db.exts[rel]
	return e != nil && e.HasIndex(attr)
}

// ScanValues calls fn under the read lock for every tuple of rel whose
// attr equals one of vals, using the secondary index when present. fn
// must not call back into the database.
func (db *Database) ScanValues(rel, attr string, vals []value.Value, fn func(tuple.T) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := db.exts[rel]
	if e == nil {
		return
	}
	e.ScanValues(attr, vals, fn)
}

// RelationTuples returns the named relation's tuples; together with
// RelationSchema it lets *Database act as an algebra.Source.
func (db *Database) RelationTuples(name string) []tuple.T { return db.Tuples(name) }

// RelationSchema returns the named relation's schema, or nil.
func (db *Database) RelationSchema(name string) *schema.Relation {
	return db.sch.Relation(name)
}

// TotalTuples returns the number of tuples across all relations.
func (db *Database) TotalTuples() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, e := range db.exts {
		n += e.Len()
	}
	return n
}
