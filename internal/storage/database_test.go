package storage

import (
	"strings"
	"sync"
	"testing"

	"viewupdate/internal/schema"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// pcSchema builds a parent/child schema with an inclusion dependency
// C[FK] ⊆ P[key].
func pcSchema(t testing.TB) (*schema.Database, *schema.Relation, *schema.Relation) {
	t.Helper()
	kd := schema.MustDomain("KD", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	vd := schema.MustDomain("VD", value.NewString("u"), value.NewString("v"))
	p := schema.MustRelation("P", []schema.Attribute{
		{Name: "PK", Domain: kd},
		{Name: "PV", Domain: vd},
	}, []string{"PK"})
	c := schema.MustRelation("C", []schema.Attribute{
		{Name: "CK", Domain: kd},
		{Name: "FK", Domain: kd},
	}, []string{"CK"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(p); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddRelation(c); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "C", ChildAttrs: []string{"FK"}, Parent: "P"}); err != nil {
		t.Fatal(err)
	}
	return sch, p, c
}

func pt(t testing.TB, p *schema.Relation, k int64, v string) tuple.T {
	t.Helper()
	return tuple.MustNew(p, value.NewInt(k), value.NewString(v))
}

func ct(t testing.TB, c *schema.Relation, k, fk int64) tuple.T {
	t.Helper()
	return tuple.MustNew(c, value.NewInt(k), value.NewInt(fk))
}

func TestLoadAndLookup(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.Load("P", pt(t, p, 1, "u")); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("C", ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if db.Len("P") != 1 || db.Len("C") != 1 || db.TotalTuples() != 2 {
		t.Fatal("lengths wrong")
	}
	if !db.Contains(pt(t, p, 1, "u")) || db.Contains(pt(t, p, 1, "v")) {
		t.Fatal("Contains wrong")
	}
	if got, ok := db.LookupKey(pt(t, p, 1, "v")); !ok || got.MustGet("PV") != value.NewString("u") {
		t.Fatal("LookupKey wrong")
	}
	if db.Len("missing") != 0 || db.Tuples("missing") != nil {
		t.Fatal("missing relation reads should be empty")
	}
	if db.Schema() != sch || db.RelationSchema("P") != p {
		t.Fatal("schema accessors wrong")
	}
	if got := db.RelationTuples("P"); len(got) != 1 {
		t.Fatal("RelationTuples wrong")
	}
	if db.SnapshotRelation("missing") != nil {
		t.Fatal("SnapshotRelation of missing should be nil")
	}
}

func TestLoadWrongRelation(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.Load("C", pt(t, p, 1, "u")); err == nil {
		t.Fatal("loading a P tuple into C should fail")
	}
}

func TestInclusionEnforcedOnChildInsert(t *testing.T) {
	sch, _, c := pcSchema(t)
	db := Open(sch)
	// Child referencing a missing parent must fail.
	if err := db.Load("C", ct(t, c, 1, 1)); err == nil {
		t.Fatal("dangling child insert should fail")
	}
	if db.Len("C") != 0 {
		t.Fatal("failed insert must not leave state")
	}
}

func TestInclusionEnforcedOnParentDelete(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Deleting the referenced parent must fail.
	tr := update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))
	if err := db.Apply(tr); err == nil {
		t.Fatal("deleting referenced parent should fail")
	}
	if db.Len("P") != 1 {
		t.Fatal("failed delete must roll back")
	}
	// Deleting parent and child together is fine.
	tr = update.NewTranslation(
		update.NewDelete(pt(t, p, 1, "u")),
		update.NewDelete(ct(t, c, 1, 1)),
	)
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if db.TotalTuples() != 0 {
		t.Fatal("batch delete incomplete")
	}
}

func TestInclusionKeptByKeyPreservingParentReplace(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Replacing the parent keeping its key is fine.
	tr := update.NewTranslation(update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 1, "v")))
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	// Replacing the parent with a key change leaves the child dangling.
	tr = update.NewTranslation(update.NewReplace(pt(t, p, 1, "v"), pt(t, p, 2, "v")))
	if err := db.Apply(tr); err == nil {
		t.Fatal("key-changing parent replace should fail with dangling child")
	}
	if !db.Contains(pt(t, p, 1, "v")) {
		t.Fatal("failed replace must roll back")
	}
}

func TestAtomicBatchWithInterleavedOrder(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	// Child before parent in one batch: the two-phase apply and
	// deferred inclusion checks make order irrelevant.
	if err := db.LoadAll(ct(t, c, 1, 2), pt(t, p, 2, "u")); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckAllInclusions(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeleteInsertSameKey(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.Load("P", pt(t, p, 1, "u")); err != nil {
		t.Fatal(err)
	}
	// Delete (1,u) and insert (1,v) in one translation: transiently
	// conflicting under insert-first order, fine under two-phase.
	tr := update.NewTranslation(
		update.NewDelete(pt(t, p, 1, "u")),
		update.NewInsert(pt(t, p, 1, "v")),
	)
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if !db.Contains(pt(t, p, 1, "v")) || db.Contains(pt(t, p, 1, "u")) {
		t.Fatal("swap did not happen")
	}
}

func TestApplyKeySwapViaReplacements(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.Load("P", pt(t, p, 1, "u"), pt(t, p, 2, "v")); err != nil {
		t.Fatal(err)
	}
	// Swap the keys of the two tuples with two replacements — the
	// added/removed two-phase semantics handles the cycle.
	tr := update.NewTranslation(
		update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 2, "u")),
		update.NewReplace(pt(t, p, 2, "v"), pt(t, p, 1, "v")),
	)
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	if !db.Contains(pt(t, p, 2, "u")) || !db.Contains(pt(t, p, 1, "v")) {
		t.Fatal("key swap failed")
	}
}

func TestApplyRollbackOnPhase2Failure(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.Load("P", pt(t, p, 1, "u"), pt(t, p, 2, "v")); err != nil {
		t.Fatal(err)
	}
	// Delete (1,u), then insert a tuple conflicting with (2,v): phase 2
	// fails, phase 1 must roll back.
	tr := update.NewTranslation(
		update.NewDelete(pt(t, p, 1, "u")),
		update.NewInsert(pt(t, p, 2, "u")),
	)
	if err := db.Apply(tr); err == nil {
		t.Fatal("conflicting insert should fail")
	}
	if !db.Contains(pt(t, p, 1, "u")) || !db.Contains(pt(t, p, 2, "v")) || db.TotalTuples() != 2 {
		t.Fatal("rollback incomplete")
	}
}

func TestApplyAbsentRemovals(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err == nil {
		t.Fatal("deleting absent tuple should fail")
	}
	if err := db.Apply(update.NewTranslation(update.NewReplace(pt(t, p, 1, "u"), pt(t, p, 1, "v")))); err == nil {
		t.Fatal("replacing absent tuple should fail")
	}
}

func TestApplyUnknownRelation(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	_ = p
	other := schema.MustRelation("X", []schema.Attribute{
		{Name: "K", Domain: schema.MustDomain("D", value.NewInt(1))},
	}, []string{"K"})
	tr := update.NewTranslation(update.NewInsert(tuple.MustNew(other, value.NewInt(1))))
	err := db.Apply(tr)
	if err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("want unknown relation error, got %v", err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	cl := db.Clone()
	if !db.Equal(cl) {
		t.Fatal("clone should equal original")
	}
	// Mutating the clone must not affect the original, including the
	// reference index.
	if err := cl.Apply(update.NewTranslation(update.NewDelete(ct(t, c, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if db.Equal(cl) || db.Len("C") != 1 {
		t.Fatal("clone not independent")
	}
	// Original still refuses to drop the referenced parent.
	if err := db.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err == nil {
		t.Fatal("original ref index corrupted by clone")
	}
	// The clone, whose child is gone, allows it.
	if err := cl.Apply(update.NewTranslation(update.NewDelete(pt(t, p, 1, "u")))); err != nil {
		t.Fatalf("clone ref index wrong: %v", err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	sch, p, _ := pcSchema(t)
	db := Open(sch)
	if err := db.Load("P", pt(t, p, 1, "u")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				db.Tuples("P")
				db.Contains(pt(t, p, 1, "u"))
				db.TotalTuples()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				// Flip PV back and forth; ignore conflicts from racing
				// writers — the invariant is no torn state.
				cur, ok := db.LookupKey(pt(t, p, 1, "u"))
				if !ok {
					continue
				}
				next := "u"
				if cur.MustGet("PV") == value.NewString("u") {
					next = "v"
				}
				_ = db.Apply(update.NewTranslation(update.NewReplace(cur, pt(t, p, 1, next))))
			}
		}()
	}
	wg.Wait()
	if db.Len("P") != 1 {
		t.Fatal("concurrent writes corrupted state")
	}
}

func TestSyncSchema(t *testing.T) {
	kd := schema.MustDomain("KD2", value.NewInt(1), value.NewInt(2))
	p := schema.MustRelation("P", []schema.Attribute{{Name: "PK", Domain: kd}}, []string{"PK"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(p); err != nil {
		t.Fatal(err)
	}
	db := Open(sch)
	if err := db.Load("P", tuple.MustNew(p, value.NewInt(1))); err != nil {
		t.Fatal(err)
	}
	// Grow the schema: a child relation plus an inclusion.
	c := schema.MustRelation("C", []schema.Attribute{
		{Name: "CK", Domain: kd},
		{Name: "FK", Domain: kd},
	}, []string{"CK"})
	if err := sch.AddRelation(c); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncSchema(); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "C", ChildAttrs: []string{"FK"}, Parent: "P"}); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncSchema(); err != nil {
		t.Fatal(err)
	}
	// The new extension accepts consistent data and rejects dangling
	// references.
	if err := db.Load("C", tuple.MustNew(c, value.NewInt(1), value.NewInt(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("C", tuple.MustNew(c, value.NewInt(2), value.NewInt(2))); err == nil {
		t.Fatal("dangling child should fail after sync")
	}
	// Deleting the referenced parent is refused (index rebuilt).
	if err := db.Apply(update.NewTranslation(update.NewDelete(tuple.MustNew(p, value.NewInt(1))))); err == nil {
		t.Fatal("referenced parent delete should fail after sync")
	}
	// A new inclusion violated by existing data is reported.
	d2 := schema.MustRelation("D2", []schema.Attribute{
		{Name: "DK", Domain: kd},
		{Name: "DF", Domain: kd},
	}, []string{"DK"})
	if err := sch.AddRelation(d2); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncSchema(); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("D2", tuple.MustNew(d2, value.NewInt(1), value.NewInt(2))); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddInclusion(schema.InclusionDependency{Child: "D2", ChildAttrs: []string{"DF"}, Parent: "P"}); err != nil {
		t.Fatal(err)
	}
	if err := db.SyncSchema(); err == nil {
		t.Fatal("sync should report the violated new inclusion")
	}
}
