package storage

import (
	"errors"
	"fmt"

	"viewupdate/internal/vuerr"
)

// Sentinel errors of the storage layer. Together with the relation
// package's ErrKeyConflict/ErrNotPresent (which storage wraps with %w)
// and the shared vuerr sentinels, they make every failure of Apply
// classifiable with errors.Is instead of string matching.
var (
	// ErrUnknownRelation marks an operation against a relation the
	// schema does not define.
	ErrUnknownRelation = errors.New("storage: unknown relation")
	// ErrInclusion marks an inclusion-dependency violation in the
	// would-be final state of a translation.
	ErrInclusion = errors.New("storage: inclusion")
	// ErrPoisoned marks a database whose in-memory rollback failed:
	// its state can no longer be trusted and every later mutation is
	// refused. ErrPoisoned wraps vuerr.ErrCorrupt, so
	// errors.Is(err, vuerr.ErrCorrupt) holds too.
	ErrPoisoned = fmt.Errorf("storage: database poisoned: %w", vuerr.ErrCorrupt)
)
