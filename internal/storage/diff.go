package storage

import (
	"fmt"

	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
)

// Diff computes the translation that transforms the state of from into
// the state of to: a delete for every tuple present in from but not in
// to, and an insert for every tuple present in to but not in from. Both
// databases must share the same schema object. Applying the result to
// from (or any instance equal to it) atomically yields to's state —
// this is how staged transactions commit.
func Diff(from, to *Database) (*update.Translation, error) {
	if from.sch != to.sch {
		return nil, fmt.Errorf("storage: diff across distinct schemas")
	}
	from.mu.RLock()
	defer from.mu.RUnlock()
	to.mu.RLock()
	defer to.mu.RUnlock()
	tr := update.NewTranslation()
	for _, name := range from.sch.RelationNames() {
		fe, te := from.exts[name], to.exts[name]
		fe.Each(func(t tuple.T) bool {
			if !te.Contains(t) {
				tr.Add(update.NewDelete(t))
			}
			return true
		})
		te.Each(func(t tuple.T) bool {
			if !fe.Contains(t) {
				tr.Add(update.NewInsert(t))
			}
			return true
		})
	}
	return tr, nil
}
