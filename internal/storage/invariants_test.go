package storage

import (
	"math/rand"
	"testing"

	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
)

// TestRandomizedApplyInvariants throws a stream of randomly generated
// translations — many of them invalid — at a parent/child instance and
// checks after every step that (a) a failed Apply leaves the state
// byte-identical, and (b) the key and inclusion invariants always hold.
func TestRandomizedApplyInvariants(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))

	randP := func() tuple.T {
		return pt(t, p, int64(rng.Intn(3))+1, []string{"u", "v"}[rng.Intn(2)])
	}
	randC := func() tuple.T {
		return ct(t, c, int64(rng.Intn(3))+1, int64(rng.Intn(3))+1)
	}
	randTuple := func() tuple.T {
		if rng.Intn(2) == 0 {
			return randP()
		}
		return randC()
	}
	randOp := func() update.Op {
		switch rng.Intn(3) {
		case 0:
			return update.NewInsert(randTuple())
		case 1:
			return update.NewDelete(randTuple())
		default:
			old := randTuple()
			var new tuple.T
			if old.Relation() == p {
				new = randP()
			} else {
				new = randC()
			}
			return update.NewReplace(old, new)
		}
	}

	applied, failed := 0, 0
	for i := 0; i < 3000; i++ {
		tr := update.NewTranslation()
		for n := rng.Intn(3) + 1; n > 0; n-- {
			tr.Add(randOp())
		}
		before := db.Clone()
		if err := db.Apply(tr); err != nil {
			failed++
			if !db.Equal(before) {
				t.Fatalf("step %d: failed apply of %s mutated state", i, tr)
			}
		} else {
			applied++
		}
		if err := db.CheckAllInclusions(); err != nil {
			t.Fatalf("step %d: inclusion invariant broken after %s: %v", i, tr, err)
		}
		// Key invariant: every key appears once (Extension enforces it;
		// double-check via the snapshot index).
		for _, rel := range []string{"P", "C"} {
			seen := map[string]bool{}
			for _, tp := range db.Tuples(rel) {
				k := tp.Key()
				if seen[k] {
					t.Fatalf("step %d: duplicate key %q in %s", i, k, rel)
				}
				seen[k] = true
			}
		}
	}
	if applied == 0 || failed == 0 {
		t.Fatalf("workload not adversarial enough: applied=%d failed=%d", applied, failed)
	}
}
