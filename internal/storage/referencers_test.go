package storage

import (
	"testing"

	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
)

// refKeys collects the child keys Referencers reports for parent.
func refKeys(src Source, dep int, parent tuple.T) []string {
	var out []string
	for _, t := range src.Referencers(dep, parent) {
		out = append(out, t.Key())
	}
	return out
}

func wantKeys(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("referencers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("referencers = %v, want %v", got, want)
		}
	}
}

func TestReferencersTracksApply(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v"), ct(t, c, 1, 1), ct(t, c, 2, 1)); err != nil {
		t.Fatal(err)
	}

	wantKeys(t, refKeys(db, 0, pt(t, p, 1, "u")), ct(t, c, 1, 1).Key(), ct(t, c, 2, 1).Key())
	wantKeys(t, refKeys(db, 0, pt(t, p, 2, "v")))
	// The parent probe only needs the key values: payload is ignored.
	wantKeys(t, refKeys(db, 0, pt(t, p, 1, "v")), ct(t, c, 1, 1).Key(), ct(t, c, 2, 1).Key())
	// Out-of-range dependency indexes read as empty.
	wantKeys(t, refKeys(db, -1, pt(t, p, 1, "u")))
	wantKeys(t, refKeys(db, 7, pt(t, p, 1, "u")))

	// Retarget C[2] from P[1] to P[2]: the index moves it atomically.
	if err := db.Apply(update.NewTranslation(update.NewReplace(ct(t, c, 2, 1), ct(t, c, 2, 2)))); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, refKeys(db, 0, pt(t, p, 1, "u")), ct(t, c, 1, 1).Key())
	wantKeys(t, refKeys(db, 0, pt(t, p, 2, "v")), ct(t, c, 2, 2).Key())

	// Delete C[1]: P[1] loses its last referencer.
	if err := db.Apply(update.NewTranslation(update.NewDelete(ct(t, c, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, refKeys(db, 0, pt(t, p, 1, "u")))

	// A failed apply (dangling FK) must leave the index untouched.
	if err := db.Apply(update.NewTranslation(update.NewInsert(ct(t, c, 3, 3)))); err == nil {
		t.Fatal("expected dangling insert to fail")
	}
	wantKeys(t, refKeys(db, 0, pt(t, p, 2, "v")), ct(t, c, 2, 2).Key())
}

func TestReferencersOverlayMirrorsDatabase(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v"), ct(t, c, 1, 1), ct(t, c, 2, 1)); err != nil {
		t.Fatal(err)
	}

	tr := update.NewTranslation(
		update.NewReplace(ct(t, c, 2, 1), ct(t, c, 2, 2)), // retarget
		update.NewDelete(ct(t, c, 1, 1)),
		update.NewInsert(ct(t, c, 3, 2)),
	)
	ov := NewOverlay(db)
	if err := ov.Apply(tr); err != nil {
		t.Fatal(err)
	}

	// The overlay sees the post-change index; the base is untouched.
	wantKeys(t, refKeys(ov, 0, pt(t, p, 1, "u")))
	wantKeys(t, refKeys(ov, 0, pt(t, p, 2, "v")), ct(t, c, 2, 2).Key(), ct(t, c, 3, 2).Key())
	wantKeys(t, refKeys(db, 0, pt(t, p, 1, "u")), ct(t, c, 1, 1).Key(), ct(t, c, 2, 1).Key())

	// Applying the same translation to the database yields the same
	// index the overlay was already showing.
	if err := db.Apply(tr); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, refKeys(db, 0, pt(t, p, 1, "u")))
	wantKeys(t, refKeys(db, 0, pt(t, p, 2, "v")), ct(t, c, 2, 2).Key(), ct(t, c, 3, 2).Key())
}

func TestReferencersStackedOverlay(t *testing.T) {
	sch, p, c := pcSchema(t)
	db := Open(sch)
	if err := db.LoadAll(pt(t, p, 1, "u"), pt(t, p, 2, "v"), ct(t, c, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ov1 := NewOverlay(db)
	if err := ov1.Apply(update.NewTranslation(update.NewInsert(ct(t, c, 2, 1)))); err != nil {
		t.Fatal(err)
	}
	ov2 := NewOverlay(ov1)
	if err := ov2.Apply(update.NewTranslation(update.NewDelete(ct(t, c, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, refKeys(db, 0, pt(t, p, 1, "u")), ct(t, c, 1, 1).Key())
	wantKeys(t, refKeys(ov1, 0, pt(t, p, 1, "u")), ct(t, c, 1, 1).Key(), ct(t, c, 2, 1).Key())
	wantKeys(t, refKeys(ov2, 0, pt(t, p, 1, "u")), ct(t, c, 2, 1).Key())
}
