// Package chaos is the end-to-end crash-restart soak harness: it
// drives a live serving engine over the wire while a seeded failpoint
// kills the WAL media at an exact pipeline stage boundary, restarts
// the engine from whatever bytes survived, and verifies the crash
// contract from the client's point of view:
//
//   - acked implies durable: every commit a client saw a 200 for is
//     present after recovery (zero lost acks);
//   - unacked is absent-or-atomic: an op whose outcome the crash made
//     ambiguous either landed exactly once or not at all, and an
//     idempotent retry resolves which without double-applying;
//   - the recovered state is equivalent to a fault-free replay of
//     exactly the landed operations.
//
// The harness runs in-process (httptest server, real HTTP client, real
// engine, real WAL on a real directory) so one test binary can sweep a
// seed x kill-site matrix deterministically. make chaos-soak and the
// CI chaos job run the sweep; cmd/vuload -chaos is the out-of-process
// variant against a separately-killed vuserved.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/server"
	"viewupdate/internal/wal"
	"viewupdate/internal/workload"
)

// InitScript is the soak schema: one keyed table, one selection view.
// EmpNo ranges wide enough that every client can insert a unique key.
const InitScript = `
CREATE DOMAIN KeyDom AS INT RANGE 1 TO 100000;
CREATE DOMAIN LocDom AS STRING ('NY', 'SF');
CREATE TABLE EMP (EmpNo KeyDom, Location LocDom, PRIMARY KEY (EmpNo));
CREATE VIEW NY AS SELECT * FROM EMP WHERE Location = 'NY';
`

// Config parameterizes one soak run.
type Config struct {
	// Dir is the durable store directory (required; the crash-restart
	// cycle reopens it).
	Dir string
	// Seed drives every random choice: the crash cut-off and the fault
	// plan. Same seed, same kill site, same schedule.
	Seed int64
	// Clients is how many concurrent writers run. Default 4.
	Clients int
	// Ops is how many inserts each client issues. Default 25.
	Ops int
	// KillSite is the failpoint site whose KillAfter-th hit crashes the
	// WAL media (one of the faultinject.Site* constants).
	KillSite string
	// KillAfter is the 1-based hit number at KillSite that triggers the
	// crash. Default 1.
	KillAfter int
	// Logf, when non-nil, receives progress lines (testing.T.Logf).
	Logf func(format string, args ...any)
}

// A Report is the verdict of one soak run. A run passes when
// LostAcks, DuplicateApplies and DedupMisses are all zero and
// StateMatch is true.
type Report struct {
	Acked     int `json:"acked"`     // 200s before the crash
	Ambiguous int `json:"ambiguous"` // 5xx/504/transport outcomes before recovery
	Rejected  int `json:"rejected"`  // clean admission rejections (429)
	KillHits  int `json:"kill_hits"` // hits observed at the kill site
	// Post-recovery resolution of every non-clean outcome.
	ResolvedLanded int `json:"resolved_landed"` // retry answered duplicate: the op had landed
	RetriedFresh   int `json:"retried_fresh"`   // retry applied fresh: the op had not landed
	// Violations. All must be zero.
	LostAcks         int `json:"lost_acks"`         // acked rows missing after recovery
	DuplicateApplies int `json:"duplicate_applies"` // a landed op applied again on retry
	DedupMisses      int `json:"dedup_misses"`      // landed op whose key recovery forgot
	// RecoveryNS is engine start to first /readyz 200 after the crash.
	RecoveryNS int64 `json:"recovery_ns"`
	// StateMatch is true when the recovered state renders identically
	// to a fault-free replay of exactly the landed operations.
	StateMatch bool `json:"state_match"`
}

// Ok reports whether the run satisfied the crash contract.
func (r *Report) Ok() bool {
	return r.LostAcks == 0 && r.DuplicateApplies == 0 && r.DedupMisses == 0 && r.StateMatch
}

func (r *Report) String() string {
	return fmt.Sprintf("chaos: acked=%d ambiguous=%d rejected=%d resolved_landed=%d retried_fresh=%d lost_acks=%d duplicate_applies=%d dedup_misses=%d recovery=%s state_match=%v",
		r.Acked, r.Ambiguous, r.Rejected, r.ResolvedLanded, r.RetriedFresh,
		r.LostAcks, r.DuplicateApplies, r.DedupMisses, time.Duration(r.RecoveryNS), r.StateMatch)
}

// opResult is one client operation's pre-crash outcome.
type opResult struct {
	key string // idempotency key
	emp int    // unique EmpNo the op inserts
	// outcome: "acked", "ambiguous" (5xx, 504, transport error: fate
	// unknown until the post-recovery retry), "rejected" (429: nothing
	// enqueued, safe to retry fresh).
	outcome string
}

// updateWire mirrors the server's update reply fields the harness
// needs.
type updateWire struct {
	OK        bool   `json:"ok"`
	Version   uint64 `json:"version"`
	Duplicate bool   `json:"duplicate"`
	Error     string `json:"error"`
	Code      string `json:"code"`
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Clients <= 0 {
		out.Clients = 4
	}
	if out.Ops <= 0 {
		out.Ops = 25
	}
	if out.KillAfter <= 0 {
		out.KillAfter = 1
	}
	return out
}

// Run executes one soak: load, crash, restart, verify.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Config.Dir is required")
	}
	if cfg.KillSite == "" {
		return nil, fmt.Errorf("chaos: Config.KillSite is required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{}

	// Phase 1: engine on crashable media, kill point armed.
	var armed *faultinject.ArmedCrashWriter
	eng, err := server.NewEngine(server.Config{
		Dir: cfg.Dir, MaxInFlight: 16, MaxBatch: 8,
		// Much wider than the production default: with the window larger
		// than the workload's inter-arrival estimate, the committer opens
		// it on nearly every gather, so the mid-window kill scenarios
		// reach SiteServerBatchWindow reliably on any scheduler timing.
		MaxBatchDelay:   2 * time.Millisecond,
		RequestTimeout:  2 * time.Second,
		BreakerCooldown: time.Minute, // stay browned out once tripped
		WrapWAL: func(f wal.File) wal.File {
			armed = &faultinject.ArmedCrashWriter{W: f}
			return armed
		},
	}, InitScript)
	if err != nil {
		return nil, fmt.Errorf("chaos: starting engine: %w", err)
	}
	srv := httptest.NewServer(server.NewHandler(eng))

	keep := rng.Int63n(4096) // how many in-flight bytes the "kernel" still persists
	plan := faultinject.NewPlan(cfg.Seed)
	plan.CallNth(cfg.KillSite, cfg.KillAfter, func() { armed.Crash(keep) })
	faultinject.Enable(plan)
	defer faultinject.Disable()
	cfg.logf("chaos: kill point %s hit %d armed, keep=%d bytes, seed=%d",
		cfg.KillSite, cfg.KillAfter, keep, cfg.Seed)

	results := driveClients(&cfg, srv.URL)
	rep.KillHits = plan.Hits(cfg.KillSite)
	crashed := armed.Crashed() || func() bool {
		// Arming without a subsequent WAL touch still counts: the media
		// dies on its next write, which Kill's close path may not issue.
		return rep.KillHits >= cfg.KillAfter
	}()

	// Phase 2: the crash. Kill drains the pipeline without checkpointing
	// — the WAL keeps its tail exactly as a dead process would leave it.
	eng.Kill()
	srv.Close()
	faultinject.Disable()
	if !crashed {
		return nil, fmt.Errorf("chaos: kill site %s never reached hit %d (saw %d hits); workload too small",
			cfg.KillSite, cfg.KillAfter, rep.KillHits)
	}

	for _, r := range results {
		switch r.outcome {
		case "acked":
			rep.Acked++
		case "ambiguous":
			rep.Ambiguous++
		default:
			rep.Rejected++
		}
	}

	// Phase 3: restart on healthy media and measure time to ready.
	t0 := time.Now()
	eng2, err := server.NewEngine(server.Config{
		Dir: cfg.Dir, MaxInFlight: 16, MaxBatch: 8, RequestTimeout: 2 * time.Second,
	}, InitScript)
	if err != nil {
		return nil, fmt.Errorf("chaos: restarting engine after crash: %w", err)
	}
	defer eng2.Close()
	srv2 := httptest.NewServer(server.NewHandler(eng2))
	defer srv2.Close()
	if err := waitReady(srv2.URL, 5*time.Second); err != nil {
		return nil, err
	}
	rep.RecoveryNS = int64(time.Since(t0))

	// Phase 4: resolve every outcome with an idempotent retry.
	landed := map[int]bool{} // EmpNo -> landed (originally or via fresh retry)
	client := &http.Client{Timeout: 5 * time.Second}
	for _, r := range results {
		reply, status, err := postInsert(client, srv2.URL, r.key, r.emp)
		if err != nil {
			return nil, fmt.Errorf("chaos: post-recovery retry of %s: %w", r.key, err)
		}
		switch {
		case status == http.StatusOK && reply.Duplicate:
			// The op had landed; the dedup table replayed its outcome.
			landed[r.emp] = true
			switch r.outcome {
			case "acked":
				// expected: an acked op retried must dedup
			default:
				rep.ResolvedLanded++
			}
		case status == http.StatusOK:
			// Applied fresh: the op had NOT landed before the crash.
			landed[r.emp] = true
			if r.outcome == "acked" {
				// An acked op re-applied: the ack was lost AND the dedup
				// table forgot it — double violation.
				rep.DuplicateApplies++
			} else {
				rep.RetriedFresh++
			}
		case status == http.StatusConflict:
			// The row exists but the key was not recognized: the op
			// landed, yet retry tried to re-apply and only the primary
			// key saved it. A non-keyed op would have applied twice.
			landed[r.emp] = true
			rep.DedupMisses++
		default:
			return nil, fmt.Errorf("chaos: retry of %s answered %d %s: %s", r.key, status, reply.Code, reply.Error)
		}
	}

	// Phase 5: verify acked-implies-durable against the recovered view.
	present, err := readEmpNos(client, srv2.URL)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.outcome == "acked" && !present[r.emp] {
			rep.LostAcks++
			cfg.logf("chaos: LOST ACK: %s (EmpNo %d) was acked but is absent after recovery", r.key, r.emp)
		}
	}

	// Phase 6: state equivalence — the recovered state must render
	// identically to a fault-free replay of exactly the landed ops.
	rep.StateMatch, err = stateMatchesReplay(eng2, landed)
	if err != nil {
		return nil, err
	}
	cfg.logf("%s", rep.String())
	return rep, nil
}

// driveClients runs the concurrent insert workload and classifies every
// outcome. Clients keep issuing through the crash — post-crash failures
// are the brownout behavior under test.
func driveClients(cfg *Config, baseURL string) []opResult {
	var mu sync.Mutex
	var results []opResult
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for j := 0; j < cfg.Ops; j++ {
				emp := c*cfg.Ops + j + 1
				r := opResult{key: fmt.Sprintf("c%d-op%d", c, j), emp: emp}
				reply, status, err := postInsert(client, baseURL, r.key, emp)
				switch {
				case err != nil:
					r.outcome = "ambiguous" // transport error: fate unknown
				case status == http.StatusOK && reply.OK:
					r.outcome = "acked"
				case status == http.StatusTooManyRequests:
					r.outcome = "rejected" // nothing enqueued
				default:
					// Any 5xx or 504 is ambiguous under crashing media: a
					// "clean" failure report may itself predate a WAL tail
					// that survives into recovery.
					r.outcome = "ambiguous"
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].emp < results[j].emp })
	return results
}

// postInsert issues one keyed insert of EmpNo emp into the NY view.
func postInsert(client *http.Client, baseURL, key string, emp int) (updateWire, int, error) {
	body, _ := json.Marshal(map[string]any{"values": []string{strconv.Itoa(emp), "NY"}})
	req, err := http.NewRequest(http.MethodPost, baseURL+"/views/NY/insert", bytes.NewReader(body))
	if err != nil {
		return updateWire{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		return updateWire{}, 0, err
	}
	defer resp.Body.Close()
	var reply updateWire
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return updateWire{}, resp.StatusCode, fmt.Errorf("decoding reply: %w", err)
	}
	return reply, resp.StatusCode, nil
}

// waitReady polls /readyz until it answers 200.
func waitReady(baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("chaos: engine not ready within %s after restart", timeout)
}

// readEmpNos reads the NY view and returns the set of EmpNo values.
func readEmpNos(client *http.Client, baseURL string) (map[int]bool, error) {
	resp, err := client.Get(baseURL + "/views/NY")
	if err != nil {
		return nil, fmt.Errorf("chaos: reading recovered view: %w", err)
	}
	defer resp.Body.Close()
	var reply struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("chaos: decoding view read: %w", err)
	}
	col := -1
	for i, c := range reply.Columns {
		if c == "EmpNo" {
			col = i
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("chaos: view read has no EmpNo column (columns %v)", reply.Columns)
	}
	present := map[int]bool{}
	for _, row := range reply.Rows {
		n, err := strconv.Atoi(row[col])
		if err != nil {
			return nil, fmt.Errorf("chaos: non-integer EmpNo %q in view read", row[col])
		}
		present[n] = true
	}
	return present, nil
}

// stateMatchesReplay replays exactly the landed EmpNos into a fresh
// in-memory engine and compares canonical state renderings: the
// recovered database must be indistinguishable from one that never saw
// a fault.
func stateMatchesReplay(recovered *server.Engine, landed map[int]bool) (bool, error) {
	ref, err := server.NewEngine(server.Config{}, InitScript)
	if err != nil {
		return false, fmt.Errorf("chaos: building replay reference: %w", err)
	}
	defer ref.Close()
	srv := httptest.NewServer(server.NewHandler(ref))
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	emps := make([]int, 0, len(landed))
	for emp := range landed {
		emps = append(emps, emp)
	}
	sort.Ints(emps)
	for _, emp := range emps {
		reply, status, err := postInsert(client, srv.URL, "", emp)
		if err != nil || status != http.StatusOK {
			return false, fmt.Errorf("chaos: replaying EmpNo %d: status %d, code %s, err %v", emp, status, reply.Code, err)
		}
	}
	got, _ := recovered.Snapshot()
	want, _ := ref.Snapshot()
	return workload.RenderState(got) == workload.RenderState(want), nil
}
