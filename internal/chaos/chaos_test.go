package chaos

import (
	"testing"

	"viewupdate/internal/faultinject"
)

// TestChaosSoak sweeps the kill-site matrix: at every pipeline stage
// boundary, crash the WAL media mid-run, restart, and hold the crash
// contract — zero lost acks, zero duplicate applies, zero dedup
// misses, recovered state equivalent to a fault-free replay. The fault
// plan is process-global, so scenarios run sequentially.
func TestChaosSoak(t *testing.T) {
	scenarios := []struct {
		name      string
		site      string
		killAfter int
		seed      int64
	}{
		{"admission", faultinject.SiteServerAdmission, 20, 1},
		{"translate", faultinject.SiteServerTranslate, 20, 2},
		{"commit-head", faultinject.SiteServerCommit, 4, 3},
		{"wal-append", faultinject.SiteWALAppend, 10, 4},
		{"wal-sync", faultinject.SiteWALSync, 3, 5},
		{"publish", faultinject.SiteServerPublish, 3, 6},
		// Crash while the committer holds gathered commits inside an open
		// batching window: nothing is applied or journaled yet, so every
		// windowed commit must resolve as absent-or-atomic on retry.
		{"batch-window", faultinject.SiteServerBatchWindow, 2, 9},
		{"batch-window-alt", faultinject.SiteServerBatchWindow, 5, 10},
		// A second seed on the WAL sites varies the surviving byte
		// prefix, exercising different torn-tail shapes at recovery.
		{"wal-append-alt", faultinject.SiteWALAppend, 17, 7},
		{"wal-sync-alt", faultinject.SiteWALSync, 5, 8},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rep, err := Run(Config{
				Dir:       t.TempDir(),
				Seed:      sc.seed,
				KillSite:  sc.site,
				KillAfter: sc.killAfter,
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.LostAcks > 0 {
				t.Errorf("%d acked commits lost after crash at %s", rep.LostAcks, sc.site)
			}
			if rep.DuplicateApplies > 0 {
				t.Errorf("%d duplicate applies after crash at %s", rep.DuplicateApplies, sc.site)
			}
			if rep.DedupMisses > 0 {
				t.Errorf("%d landed ops lost their idempotency key at %s", rep.DedupMisses, sc.site)
			}
			if !rep.StateMatch {
				t.Errorf("recovered state diverges from fault-free replay after crash at %s", sc.site)
			}
			if rep.Acked == 0 {
				t.Errorf("no operation was acked before the crash at %s; kill fired too early to test anything", sc.site)
			}
		})
	}
}

// TestRunRequiresKill pins the harness's own guard: a kill point that
// the workload never reaches is an error, not a silent pass.
func TestRunRequiresKill(t *testing.T) {
	_, err := Run(Config{
		Dir:       t.TempDir(),
		Seed:      1,
		Clients:   1,
		Ops:       2,
		KillSite:  faultinject.SiteServerCommit,
		KillAfter: 1000,
	})
	if err == nil {
		t.Fatal("Run with an unreachable kill point should fail")
	}
}
