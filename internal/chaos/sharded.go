package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/server"
	"viewupdate/internal/wal"
	"viewupdate/internal/workload"
)

// ShardedInitScript is the sharded soak schema: a parent/child pair
// under an inclusion dependency and a join view rooted at the child.
// Every workload op inserts a fresh (employee, department) pair through
// the join view, so SPJ-I extends BOTH relations — a cross-shard commit
// whenever the two root keys hash to different shards.
const ShardedInitScript = `
CREATE DOMAIN EKey AS INT RANGE 1 TO 100000;
CREATE DOMAIN DKey AS INT RANGE 1 TO 100000;
CREATE DOMAIN Funds AS INT RANGE 0 TO 100;
CREATE TABLE DEPT (DNo DKey, Budget Funds, PRIMARY KEY (DNo));
CREATE TABLE EMP (ENo EKey, Dept DKey, PRIMARY KEY (ENo),
                  FOREIGN KEY (Dept) REFERENCES DEPT);
CREATE VIEW DV AS SELECT * FROM DEPT;
CREATE VIEW EV AS SELECT * FROM EMP;
CREATE JOIN VIEW ED ROOT EV WITH EV (Dept) REFERENCES DV;
`

// ShardedConfig parameterizes one sharded soak run. The contract under
// test is Run's, plus the cross-shard clauses: an acked commit is
// durable on EVERY participant shard even when the crash lands inside
// the two-phase window, and an unacked prepare rolls back at recovery
// (presumed abort) instead of surfacing a half-applied translation.
type ShardedConfig struct {
	// Dir is the shard store directory (required).
	Dir string
	// Seed drives the fault plan and the surviving-bytes cut-offs.
	Seed int64
	// Shards is the shard count. Default 4.
	Shards int
	// Clients and Ops shape the workload as in Config. Defaults 4, 25.
	Clients int
	Ops     int
	// KillSite/KillAfter arm the crash exactly as in Config. The sites
	// of interest here are faultinject.SiteShardPrepare (prepares
	// durable, decision not yet written — the presumed-abort window) and
	// faultinject.SiteShardDecision (decision durable, acks pending).
	KillSite  string
	KillAfter int
	// Logf receives progress lines.
	Logf func(format string, args ...any)
}

// ShardedReport extends Report with the recovery's two-phase verdicts.
type ShardedReport struct {
	Report
	// PreparesCommitted / PreparesAborted are the restarted store's
	// resolution of every prepare record found in the shard WALs:
	// committed when a durable decision covered it, rolled back
	// otherwise.
	PreparesCommitted int `json:"prepares_committed"`
	PreparesAborted   int `json:"prepares_aborted"`
}

func (c *ShardedConfig) withDefaults() ShardedConfig {
	out := *c
	if out.Shards <= 0 {
		out.Shards = 4
	}
	if out.Clients <= 0 {
		out.Clients = 4
	}
	if out.Ops <= 0 {
		out.Ops = 25
	}
	if out.KillAfter <= 0 {
		out.KillAfter = 1
	}
	return out
}

func (c *ShardedConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// shardedOp is one client operation: a keyed join-view insert of the
// unique pair (eno, dno).
type shardedOp struct {
	key      string
	eno, dno int
	outcome  string // "acked", "ambiguous", "rejected"
}

// RunSharded executes one sharded soak: load a sharded engine over the
// wire, crash every shard's WAL media at the armed kill point, restart,
// and verify the crash contract across shards.
func RunSharded(cfg ShardedConfig) (*ShardedReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: ShardedConfig.Dir is required")
	}
	if cfg.KillSite == "" {
		return nil, fmt.Errorf("chaos: ShardedConfig.KillSite is required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &ShardedReport{}

	// Phase 1: sharded engine on crashable media — one armed writer per
	// shard, re-armed whenever a checkpoint reopens a log.
	var armedMu sync.Mutex
	armed := map[int]*faultinject.ArmedCrashWriter{}
	keep := make([]int64, cfg.Shards) // surviving bytes per shard
	for i := range keep {
		keep[i] = rng.Int63n(4096)
	}
	eng, err := server.NewEngine(server.Config{
		Dir: cfg.Dir, Shards: cfg.Shards, MaxInFlight: 16, MaxBatch: 8,
		RequestTimeout:  2 * time.Second,
		BreakerCooldown: time.Minute,
		WrapShardWAL: func(i int, f wal.File) wal.File {
			w := &faultinject.ArmedCrashWriter{W: f}
			armedMu.Lock()
			armed[i] = w
			armedMu.Unlock()
			return w
		},
	}, ShardedInitScript)
	if err != nil {
		return nil, fmt.Errorf("chaos: starting sharded engine: %w", err)
	}
	srv := httptest.NewServer(server.NewHandler(eng))

	// Warmup before the fault plan arms: a handful of keyed ops that are
	// guaranteed to ack on healthy media, so every scenario has acked
	// commits whose survival the crash can threaten — regardless of how
	// the scheduler interleaves the concurrent phase with the kill.
	warmClient := &http.Client{Timeout: 5 * time.Second}
	var warm []shardedOp
	for i := 0; i < 5; i++ {
		eno := 90000 + i
		r := shardedOp{key: fmt.Sprintf("warm-%d", i), eno: eno, dno: eno + 1000}
		reply, status, err := postInsertED(warmClient, srv.URL, r.key, r.eno, r.dno)
		if err != nil || status != http.StatusOK || !reply.OK {
			srv.Close()
			eng.Close()
			return nil, fmt.Errorf("chaos: warmup op %d failed: status %d, err %v", i, status, err)
		}
		r.outcome = "acked"
		warm = append(warm, r)
	}

	// The kill crashes EVERY shard's media at once — process-crash
	// semantics — but each shard keeps a different surviving prefix, so
	// recovery sees shards torn at different points.
	plan := faultinject.NewPlan(cfg.Seed)
	plan.CallNth(cfg.KillSite, cfg.KillAfter, func() {
		armedMu.Lock()
		for i, w := range armed {
			w.Crash(keep[i])
		}
		armedMu.Unlock()
	})
	faultinject.Enable(plan)
	defer faultinject.Disable()
	cfg.logf("chaos: sharded kill point %s hit %d armed over %d shards, seed=%d",
		cfg.KillSite, cfg.KillAfter, cfg.Shards, cfg.Seed)

	ops := append(warm, driveShardedClients(&cfg, srv.URL)...)
	rep.KillHits = plan.Hits(cfg.KillSite)

	// Phase 2: the crash.
	eng.Kill()
	srv.Close()
	faultinject.Disable()
	if rep.KillHits < cfg.KillAfter {
		return nil, fmt.Errorf("chaos: kill site %s never reached hit %d (saw %d hits); workload too small",
			cfg.KillSite, cfg.KillAfter, rep.KillHits)
	}
	for _, r := range ops {
		switch r.outcome {
		case "acked":
			rep.Acked++
		case "ambiguous":
			rep.Ambiguous++
		default:
			rep.Rejected++
		}
	}

	// Phase 3: restart on healthy media.
	t0 := time.Now()
	eng2, err := server.NewEngine(server.Config{
		Dir: cfg.Dir, Shards: cfg.Shards, MaxInFlight: 16, MaxBatch: 8,
		RequestTimeout: 2 * time.Second,
	}, ShardedInitScript)
	if err != nil {
		return nil, fmt.Errorf("chaos: restarting sharded engine after crash: %w", err)
	}
	defer eng2.Close()
	report := eng2.ShardStore().Report()
	rep.PreparesCommitted = report.PreparesCommitted
	rep.PreparesAborted = report.PreparesAborted
	srv2 := httptest.NewServer(server.NewHandler(eng2))
	defer srv2.Close()
	if err := waitReady(srv2.URL, 5*time.Second); err != nil {
		return nil, err
	}
	rep.RecoveryNS = int64(time.Since(t0))

	// Phase 4: resolve every outcome with an idempotent retry. The dedup
	// table was re-seeded from the per-shard WALs; a landed op answers
	// duplicate, an unlanded one applies fresh.
	landed := map[int]int{} // eno -> dno
	client := &http.Client{Timeout: 5 * time.Second}
	for _, r := range ops {
		reply, status, err := postInsertED(client, srv2.URL, r.key, r.eno, r.dno)
		if err != nil {
			return nil, fmt.Errorf("chaos: post-recovery retry of %s: %w", r.key, err)
		}
		switch {
		case status == http.StatusOK && reply.Duplicate:
			landed[r.eno] = r.dno
			if r.outcome != "acked" {
				rep.ResolvedLanded++
			}
		case status == http.StatusOK:
			landed[r.eno] = r.dno
			if r.outcome == "acked" {
				rep.DuplicateApplies++
			} else {
				rep.RetriedFresh++
			}
		case status == http.StatusConflict:
			landed[r.eno] = r.dno
			rep.DedupMisses++
		default:
			return nil, fmt.Errorf("chaos: retry of %s answered %d %s: %s", r.key, status, reply.Code, reply.Error)
		}
	}

	// Phase 5: acked implies durable on every shard — each acked pair
	// must be present in the recovered join view (which only shows an
	// employee whose department also survived; a half-applied cross-shard
	// commit would drop out of the join or fail the inclusion check).
	present, err := readViewInts(client, srv2.URL, "ED", "ENo")
	if err != nil {
		return nil, err
	}
	for _, r := range ops {
		if r.outcome == "acked" && !present[r.eno] {
			rep.LostAcks++
			cfg.logf("chaos: LOST ACK: %s (ENo %d, DNo %d) was acked but is absent after recovery",
				r.key, r.eno, r.dno)
		}
	}

	// Phase 6: state equivalence against a fault-free replay of exactly
	// the landed pairs. An unacked prepare that leaked into the state —
	// instead of rolling back — shows up here as a divergence.
	rep.StateMatch, err = shardedStateMatchesReplay(eng2, landed)
	if err != nil {
		return nil, err
	}
	cfg.logf("%s prepares_committed=%d prepares_aborted=%d",
		rep.Report.String(), rep.PreparesCommitted, rep.PreparesAborted)
	return rep, nil
}

// driveShardedClients runs the concurrent join-view insert workload.
// Employee and department keys are unique per op, so retries are
// conflict-free and every insert extends a fresh parent.
func driveShardedClients(cfg *ShardedConfig, baseURL string) []shardedOp {
	var mu sync.Mutex
	var ops []shardedOp
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for j := 0; j < cfg.Ops; j++ {
				eno := c*cfg.Ops + j + 1
				r := shardedOp{key: fmt.Sprintf("sc%d-op%d", c, j), eno: eno, dno: 50000 + eno}
				reply, status, err := postInsertED(client, baseURL, r.key, r.eno, r.dno)
				switch {
				case err != nil:
					r.outcome = "ambiguous"
				case status == http.StatusOK && reply.OK:
					r.outcome = "acked"
				case status == http.StatusTooManyRequests:
					r.outcome = "rejected"
				default:
					r.outcome = "ambiguous"
				}
				mu.Lock()
				ops = append(ops, r)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	sort.Slice(ops, func(i, j int) bool { return ops[i].eno < ops[j].eno })
	return ops
}

// postInsertED issues one keyed insert of (eno, dno) through the ED
// join view: child attributes first, then the extended parent.
func postInsertED(client *http.Client, baseURL, key string, eno, dno int) (updateWire, int, error) {
	body, _ := json.Marshal(map[string]any{"values": []string{
		strconv.Itoa(eno), strconv.Itoa(dno), strconv.Itoa(dno), "7"}})
	req, err := http.NewRequest(http.MethodPost, baseURL+"/views/ED/insert", bytes.NewReader(body))
	if err != nil {
		return updateWire{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		return updateWire{}, 0, err
	}
	defer resp.Body.Close()
	var reply updateWire
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return updateWire{}, resp.StatusCode, fmt.Errorf("decoding reply: %w", err)
	}
	return reply, resp.StatusCode, nil
}

// readViewInts reads a view and returns the set of integer values in
// the named column.
func readViewInts(client *http.Client, baseURL, view, column string) (map[int]bool, error) {
	resp, err := client.Get(baseURL + "/views/" + view)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading recovered view %s: %w", view, err)
	}
	defer resp.Body.Close()
	var reply struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, fmt.Errorf("chaos: decoding view read: %w", err)
	}
	col := -1
	for i, c := range reply.Columns {
		if c == column {
			col = i
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("chaos: view %s has no %s column (columns %v)", view, column, reply.Columns)
	}
	present := map[int]bool{}
	for _, row := range reply.Rows {
		n, err := strconv.Atoi(row[col])
		if err != nil {
			return nil, fmt.Errorf("chaos: non-integer %s %q in view read", column, row[col])
		}
		present[n] = true
	}
	return present, nil
}

// shardedStateMatchesReplay replays exactly the landed pairs into a
// fresh in-memory engine and compares canonical state renderings.
func shardedStateMatchesReplay(recovered *server.Engine, landed map[int]int) (bool, error) {
	ref, err := server.NewEngine(server.Config{}, ShardedInitScript)
	if err != nil {
		return false, fmt.Errorf("chaos: building sharded replay reference: %w", err)
	}
	defer ref.Close()
	srv := httptest.NewServer(server.NewHandler(ref))
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	enos := make([]int, 0, len(landed))
	for eno := range landed {
		enos = append(enos, eno)
	}
	sort.Ints(enos)
	for _, eno := range enos {
		reply, status, err := postInsertED(client, srv.URL, "", eno, landed[eno])
		if err != nil || status != http.StatusOK {
			return false, fmt.Errorf("chaos: replaying pair (%d, %d): status %d, code %s, err %v",
				eno, landed[eno], status, reply.Code, err)
		}
	}
	got, _ := recovered.Snapshot()
	want, _ := ref.Snapshot()
	return workload.RenderState(got) == workload.RenderState(want), nil
}
