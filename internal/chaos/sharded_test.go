package chaos

import (
	"testing"

	"viewupdate/internal/faultinject"
)

// TestShardedChaosSoak sweeps crash sites over the sharded pipeline,
// with the two-phase window as the headline: a crash after the prepare
// records are durable but before the decision (SiteShardPrepare) must
// roll the in-doubt prepares back at recovery — the client was never
// acked — while a crash right after the decision (SiteShardDecision)
// must keep the commit on every participant even though no ack went
// out. In both cases the recovered state must equal a fault-free
// replay of exactly the landed operations.
func TestShardedChaosSoak(t *testing.T) {
	scenarios := []struct {
		name      string
		site      string
		killAfter int
		seed      int64
	}{
		{"prepare-window", faultinject.SiteShardPrepare, 3, 11},
		{"prepare-window-alt", faultinject.SiteShardPrepare, 9, 12},
		{"decision", faultinject.SiteShardDecision, 3, 13},
		{"decision-alt", faultinject.SiteShardDecision, 8, 14},
		{"wal-append", faultinject.SiteWALAppend, 12, 15},
		{"wal-sync", faultinject.SiteWALSync, 5, 16},
		{"commit-head", faultinject.SiteServerCommit, 4, 17},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rep, err := RunSharded(ShardedConfig{
				Dir:       t.TempDir(),
				Seed:      sc.seed,
				Shards:    4,
				KillSite:  sc.site,
				KillAfter: sc.killAfter,
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.LostAcks > 0 {
				t.Errorf("%d acked commits lost after crash at %s", rep.LostAcks, sc.site)
			}
			if rep.DuplicateApplies > 0 {
				t.Errorf("%d duplicate applies after crash at %s", rep.DuplicateApplies, sc.site)
			}
			if rep.DedupMisses > 0 {
				t.Errorf("%d landed ops lost their idempotency key at %s", rep.DedupMisses, sc.site)
			}
			if !rep.StateMatch {
				t.Errorf("recovered state diverges from fault-free replay after crash at %s", sc.site)
			}
			if rep.Acked == 0 {
				t.Errorf("no operation was acked before the crash at %s; kill fired too early to test anything", sc.site)
			}
			if sc.site == faultinject.SiteShardPrepare && rep.PreparesAborted == 0 {
				t.Errorf("crash inside the prepare window left no in-doubt prepare to roll back; the window was not exercised")
			}
		})
	}
}
