package dialog

import (
	"strings"
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

func TestQuestionsForSPView(t *testing.T) {
	f := fixtures.NewEmp(20)
	qs := QuestionsFor(f.ViewB) // selection on Baseball (non-key)
	ids := map[string]bool{}
	for _, q := range qs {
		ids[q.ID] = true
		if q.Prompt == "" || len(q.Options) == 0 {
			t.Fatalf("malformed question %+v", q)
		}
	}
	for _, want := range []string{"delete", "replace-split", "insert-conflict"} {
		if !ids[want] {
			t.Fatalf("missing question %q in %v", want, ids)
		}
	}
	// Full projection: no defaults question.
	for id := range ids {
		if strings.HasPrefix(id, "default/") {
			t.Fatalf("unexpected defaults question %s for a full projection", id)
		}
	}
}

func TestQuestionsIncludeDefaultsForHiddenAttrs(t *testing.T) {
	f := fixtures.NewEmp(20)
	// Hide Location (non-selecting, 2 values): a defaults question.
	v, err := view.NewSP("NoLoc", algebra.NewSelection(f.Rel), []string{"EmpNo", "Name", "Baseball"})
	if err != nil {
		t.Fatal(err)
	}
	qs := QuestionsFor(v)
	found := false
	for _, q := range qs {
		if q.ID == "default/Location" {
			found = true
			if len(q.Options) != 2 {
				t.Fatalf("Location defaults should offer 2 options, got %d", len(q.Options))
			}
		}
	}
	if !found {
		t.Fatal("missing default/Location question")
	}
}

func TestQuestionsForJoinView(t *testing.T) {
	f := fixtures.NewABCXD()
	qs := QuestionsFor(f.View)
	// Identity SP views: only insert-conflict questions, one per node.
	if len(qs) != 2 {
		t.Fatalf("want 2 questions, got %d: %+v", len(qs), qs)
	}
	for _, q := range qs {
		if !strings.Contains(q.ID, "/insert-conflict") {
			t.Fatalf("unexpected question %s", q.ID)
		}
	}
}

func TestBuildPolicyFrankAndSusan(t *testing.T) {
	f := fixtures.NewEmp(20)

	// Frank: deletions flip Baseball.
	frank, err := BuildPolicy(f.ViewB, []Answer{
		{QuestionID: "delete", OptionKey: "flip:Baseball"},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := f.PaperInstance()
	emp14 := f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)
	cands, err := core.Enumerate(db, f.ViewB, core.DeleteRequest(emp14))
	if err != nil {
		t.Fatal(err)
	}
	c, err := frank.Choose(core.DeleteRequest(emp14), cands)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != "D-2" {
		t.Fatalf("Frank's dialog should pick D-2, got %s", c.Class)
	}

	// Susan: deletions destroy.
	susan, err := BuildPolicy(f.ViewP, []Answer{
		{QuestionID: "delete", OptionKey: "destroy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	emp17 := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	cands, err = core.Enumerate(db, f.ViewP, core.DeleteRequest(emp17))
	if err != nil {
		t.Fatal(err)
	}
	c, err = susan.Choose(core.DeleteRequest(emp17), cands)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != "D-1" {
		t.Fatalf("Susan's dialog should pick D-1, got %s", c.Class)
	}
	if susan.Name() == "" {
		t.Fatal("policy name empty")
	}
}

func TestBuildPolicyRejectsI2(t *testing.T) {
	f := fixtures.NewEmp(20)
	p, err := BuildPolicy(f.ViewP, []Answer{
		{QuestionID: "insert-conflict", OptionKey: "reject"},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := f.PaperInstance()
	// EMP #5 exists hidden in San Francisco: insertion would be I-2.
	u := f.ViewTuple(f.ViewP, 5, "Bob", "New York", false)
	cands, err := core.Enumerate(db, f.ViewP, core.InsertRequest(u))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Choose(core.InsertRequest(u), cands); err == nil {
		t.Fatal("dialog policy should reject the I-2-only candidate set")
	}
	// A fresh key (I-1) still works.
	u9 := f.ViewTuple(f.ViewP, 9, "Ivan", "New York", false)
	cands, err = core.Enumerate(db, f.ViewP, core.InsertRequest(u9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Choose(core.InsertRequest(u9), cands); err != nil {
		t.Fatalf("I-1 should pass: %v", err)
	}
}

func TestBuildPolicyDefaults(t *testing.T) {
	f := fixtures.NewEmp(20)
	v, err := view.NewSP("NoLoc", algebra.NewSelection(f.Rel), []string{"EmpNo", "Name", "Baseball"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPolicy(v, []Answer{
		{QuestionID: "default/Location", OptionKey: value.NewString("San Francisco").Encode()},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := f.PaperInstance()
	u, err := core.MakeRow(v.Schema(), 9, "Ivan", false)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := core.Enumerate(db, v, core.InsertRequest(u))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Choose(core.InsertRequest(u), cands)
	if err != nil {
		t.Fatal(err)
	}
	if c.Choices["Location"] != value.NewString("San Francisco") {
		t.Fatalf("default ignored: %s", c)
	}
}

func TestBuildPolicyReplaceSplit(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	old := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	new := f.ViewTuple(f.ViewP, 11, "Susan", "New York", true)
	r := core.ReplaceRequest(old, new)
	cands, err := core.Enumerate(db, f.ViewP, r)
	if err != nil {
		t.Fatal(err)
	}
	one, err := BuildPolicy(f.ViewP, []Answer{{QuestionID: "replace-split", OptionKey: "onestep"}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := one.Choose(r, cands)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != "R-2" {
		t.Fatalf("onestep should pick R-2, got %s", c.Class)
	}
	two, err := BuildPolicy(f.ViewP, []Answer{{QuestionID: "replace-split", OptionKey: "twostep"}})
	if err != nil {
		t.Fatal(err)
	}
	c, err = two.Choose(r, cands)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != "R-4" {
		t.Fatalf("twostep should pick R-4, got %s", c.Class)
	}
}

func TestBuildPolicyValidation(t *testing.T) {
	f := fixtures.NewEmp(20)
	if _, err := BuildPolicy(f.ViewB, []Answer{{QuestionID: "nope", OptionKey: "x"}}); err == nil {
		t.Fatal("unknown question should fail")
	}
	if _, err := BuildPolicy(f.ViewB, []Answer{{QuestionID: "delete", OptionKey: "nope"}}); err == nil {
		t.Fatal("unknown option should fail")
	}
}

func TestRunInteractive(t *testing.T) {
	f := fixtures.NewEmp(20)
	// Two questions for ViewB: delete (answer 2 = flip), replace-split
	// (default), insert-conflict (answer 2 = reject).
	input := strings.NewReader("2\n\n2\n")
	var out strings.Builder
	p, err := Run(input, &out, f.ViewB)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deleted from ViewB") {
		t.Fatalf("prompt missing:\n%s", out.String())
	}
	db := f.PaperInstance()
	emp14 := f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)
	cands, err := core.Enumerate(db, f.ViewB, core.DeleteRequest(emp14))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Choose(core.DeleteRequest(emp14), cands)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != "D-2" {
		t.Fatalf("interactive answers should configure D-2, got %s", c.Class)
	}
	// Out-of-range answer fails.
	if _, err := Run(strings.NewReader("9\n"), &out, f.ViewB); err == nil {
		t.Fatal("out-of-range answer should fail")
	}
}
