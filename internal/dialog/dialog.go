// Package dialog implements the paper's proposal that "the database
// administrator provide additional semantics during view definition
// time" (§1, §4-1; elaborated in the companion paper "Choosing a View
// Update Translator by Dialog at View Definition Time" the paper cites
// as [Keller 85a]).
//
// Given a view, QuestionsFor derives the choice points its translator
// has — how deletions leave the view, which hidden values insertions
// take, whether hidden conflicting tuples may be rewritten, how
// key-changing replacements split — and BuildPolicy turns a set of
// answers into a core.Policy. Run drives the dialog interactively over
// an io.Reader/Writer pair.
package dialog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"viewupdate/internal/core"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// A Question is one translator choice point.
type Question struct {
	// ID identifies the question; answers reference it.
	ID string
	// Prompt is the human-readable question.
	Prompt string
	// Options are the allowed answers (at least one).
	Options []Option
}

// An Option is one allowed answer.
type Option struct {
	// Key is the machine-readable answer.
	Key string
	// Label explains the consequence.
	Label string
}

// An Answer picks an option for a question.
type Answer struct {
	QuestionID string
	OptionKey  string
}

// Question IDs are built from these kinds (join views prefix the node
// view's name, e.g. "emp/delete").
const (
	qDelete         = "delete"
	qReplaceSplit   = "replace-split"
	qInsertConflict = "insert-conflict"
	qDefaultPrefix  = "default/" // + attribute name
)

// QuestionsFor derives the choice points of a view's translator. SP
// views yield up to one question per choice point; join views compose
// their nodes' questions with node-name prefixes.
func QuestionsFor(v view.View) []Question {
	switch vv := v.(type) {
	case *view.SP:
		return spQuestions("", vv)
	case *view.Join:
		var out []Question
		for _, n := range vv.Nodes() {
			out = append(out, spQuestions(n.SP.Name()+"/", n.SP)...)
		}
		return out
	default:
		return nil
	}
}

func spQuestions(prefix string, v *view.SP) []Question {
	var out []Question

	// Deletion: D-1 always exists; one D-2 option per non-key selecting
	// attribute.
	var flips []Option
	for _, a := range v.Selection().SelectingAttributes() {
		if v.Base().IsKey(a) {
			continue
		}
		flips = append(flips, Option{
			Key:   "flip:" + a,
			Label: fmt.Sprintf("keep the tuple, change %s to an excluding value (class D-2)", a),
		})
	}
	if len(flips) > 0 {
		opts := append([]Option{{
			Key:   "destroy",
			Label: "delete the underlying tuple (class D-1)",
		}}, flips...)
		out = append(out, Question{
			ID:      prefix + qDelete,
			Prompt:  fmt.Sprintf("When a tuple is deleted from %s, what happens to the stored tuple?", v.Name()),
			Options: opts,
		})
		// Key-changing replacements inherit the same dichotomy through
		// R-2/R-3 (one step) vs R-4/R-5 (D-2 + insert/rewrite).
		out = append(out, Question{
			ID:     prefix + qReplaceSplit,
			Prompt: fmt.Sprintf("When a replacement in %s changes the key, how is it translated?", v.Name()),
			Options: []Option{
				{Key: "onestep", Label: "move the stored tuple in one step (classes R-2/R-3)"},
				{Key: "twostep", Label: "flip the old tuple out of the view and realize the new one separately (classes R-4/R-5)"},
			},
		})
	}

	// Insertion over a hidden conflicting tuple (I-2): accept or reject.
	out = append(out, Question{
		ID: prefix + qInsertConflict,
		Prompt: fmt.Sprintf("When an insertion into %s matches the key of a tuple outside the view, may that tuple be rewritten (class I-2)?",
			v.Name()),
		Options: []Option{
			{Key: "accept", Label: "yes — the user is referring to an existing object"},
			{Key: "reject", Label: "no — reject the insertion"},
		},
	})

	// Defaults for hidden attributes with more than one selecting value.
	for _, a := range v.ProjectedOut() {
		vals := v.Selection().SelectingValues(a)
		if len(vals) < 2 {
			continue
		}
		opts := make([]Option, len(vals))
		for i, val := range vals {
			opts[i] = Option{Key: val.Encode(), Label: val.String()}
		}
		out = append(out, Question{
			ID:      prefix + qDefaultPrefix + a,
			Prompt:  fmt.Sprintf("Insertions into %s must choose a hidden value for %s; which?", v.Name(), a),
			Options: opts,
		})
	}
	return out
}

// Policy is the translator configuration a completed dialog produces.
// It implements core.Policy.
type Policy struct {
	viewName string
	// rejects holds class tokens that must not be chosen; if only
	// rejected candidates exist the request fails.
	rejects map[string]bool
	// order ranks class tokens (smaller index preferred).
	order map[string]int
	// flipAttr restricts D-2 candidates to flipping this attribute
	// (per prefix; "" key = SP view).
	flipAttr map[string]string
	// defaults maps (possibly node-prefixed) attribute names to the
	// chosen hidden value.
	defaults map[string]value.Value
}

// Name implements core.Policy.
func (p *Policy) Name() string { return "dialog(" + p.viewName + ")" }

// BuildPolicy validates the answers against the view's questions and
// builds the policy. Unanswered questions take their first option.
func BuildPolicy(v view.View, answers []Answer) (*Policy, error) {
	qs := QuestionsFor(v)
	byID := make(map[string]Question, len(qs))
	for _, q := range qs {
		byID[q.ID] = q
	}
	chosen := make(map[string]string, len(qs))
	for _, a := range answers {
		q, ok := byID[a.QuestionID]
		if !ok {
			return nil, fmt.Errorf("dialog: unknown question %q", a.QuestionID)
		}
		valid := false
		for _, o := range q.Options {
			if o.Key == a.OptionKey {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("dialog: question %q has no option %q", a.QuestionID, a.OptionKey)
		}
		chosen[a.QuestionID] = a.OptionKey
	}
	for _, q := range qs {
		if _, ok := chosen[q.ID]; !ok {
			chosen[q.ID] = q.Options[0].Key
		}
	}

	p := &Policy{
		viewName: v.Name(),
		rejects:  map[string]bool{},
		order:    map[string]int{},
		flipAttr: map[string]string{},
		defaults: map[string]value.Value{},
	}
	for id, key := range chosen {
		prefix, kind := splitQuestionID(id)
		switch {
		case kind == qDelete:
			if key == "destroy" {
				p.order["D-1"] = 0
				p.order["D-2"] = 1
			} else {
				p.order["D-2"] = 0
				p.order["D-1"] = 1
				p.flipAttr[prefix] = strings.TrimPrefix(key, "flip:")
			}
		case kind == qReplaceSplit:
			if key == "onestep" {
				p.order["R-2"], p.order["R-3"] = 0, 0
				p.order["R-4"], p.order["R-5"] = 1, 1
			} else {
				p.order["R-4"], p.order["R-5"] = 0, 0
				p.order["R-2"], p.order["R-3"] = 1, 1
			}
		case kind == qInsertConflict:
			if key == "reject" {
				p.rejects["I-2"] = true
			}
		case strings.HasPrefix(kind, qDefaultPrefix):
			attr := strings.TrimPrefix(kind, qDefaultPrefix)
			val, err := value.Decode(key)
			if err != nil {
				return nil, fmt.Errorf("dialog: bad default for %s: %v", attr, err)
			}
			p.defaults[prefix+attr] = val
		}
	}
	return p, nil
}

// splitQuestionID separates an optional "node/" prefix from the
// question kind. The prefix keeps the node's trailing slash removed but
// remembered with a dot for choice-key matching ("emp/delete" ->
// prefix "emp.", kind "delete").
func splitQuestionID(id string) (prefix, kind string) {
	if i := strings.IndexByte(id, '/'); i >= 0 && !strings.HasPrefix(id[i:], "/"+qDefaultPrefix[:len(qDefaultPrefix)-1]) {
		// A default question for an SP view has no node prefix but
		// contains '/'; detect node prefixes by checking the remainder
		// for a known kind.
		rest := id[i+1:]
		if rest == qDelete || rest == qReplaceSplit || rest == qInsertConflict || strings.HasPrefix(rest, qDefaultPrefix) {
			return id[:i] + ".", rest
		}
	}
	return "", id
}

// Choose implements core.Policy.
func (p *Policy) Choose(r core.Request, cands []core.Candidate) (core.Candidate, error) {
	type scored struct {
		c     core.Candidate
		rank  int
		defs  int
		flips int
	}
	var pool []scored
	for _, c := range cands {
		tokens := classTokens(c.Class)
		rejected := false
		rank := 0
		for _, tok := range tokens {
			if p.rejects[tok] {
				rejected = true
			}
			if o, ok := p.order[tok]; ok && o > rank {
				rank = o
			}
		}
		if rejected {
			continue
		}
		defs := 0
		flipOK := 0
		for k, v := range c.Choices {
			if dv, ok := p.defaults[k]; ok && dv == v {
				defs++
			}
			if i := strings.LastIndexByte(k, '.'); i >= 0 {
				if dv, ok := p.defaults[k[i+1:]]; ok && dv == v {
					defs++
				}
			}
			// D-2 flip attribute restriction: choice keys for D-2 are
			// the flipped attribute (possibly prefixed).
			attr := k
			prefix := ""
			if i := strings.LastIndexByte(k, '.'); i >= 0 {
				prefix, attr = k[:i+1], k[i+1:]
			}
			if want, ok := p.flipAttr[prefix]; ok && attr == want {
				flipOK++
			}
		}
		pool = append(pool, scored{c: c, rank: rank, defs: defs, flips: flipOK})
	}
	if len(pool) == 0 {
		return core.Candidate{}, fmt.Errorf("dialog: every candidate translation for %s is rejected by the view's dialog policy", r)
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].rank != pool[j].rank {
			return pool[i].rank < pool[j].rank
		}
		if pool[i].flips != pool[j].flips {
			return pool[i].flips > pool[j].flips
		}
		if pool[i].defs != pool[j].defs {
			return pool[i].defs > pool[j].defs
		}
		return pool[i].c.Translation.Encode() < pool[j].c.Translation.Encode()
	})
	return pool[0].c, nil
}

// classTokens extracts leaf class tokens ("SPJ-I(a:I-1, b:R-1)" ->
// I-1, R-1).
func classTokens(class string) []string {
	cut := class
	if i := strings.IndexByte(cut, '('); i >= 0 && strings.HasSuffix(cut, ")") {
		cut = cut[i+1 : len(cut)-1]
	}
	parts := strings.Split(cut, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if i := strings.IndexByte(p, ':'); i >= 0 {
			p = p[i+1:]
		}
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Run conducts the dialog interactively: it prints each question with
// numbered options to w, reads answer numbers from r (empty input takes
// the first option), and returns the built policy.
//
// When the caller already owns a bufio.Scanner over the input (e.g. a
// REPL), use RunScanner instead so buffered lines are not lost.
func Run(r io.Reader, w io.Writer, v view.View) (*Policy, error) {
	return RunScanner(bufio.NewScanner(r), w, v)
}

// RunScanner is Run over a caller-owned scanner.
func RunScanner(scanner *bufio.Scanner, w io.Writer, v view.View) (*Policy, error) {
	qs := QuestionsFor(v)
	var answers []Answer
	for _, q := range qs {
		fmt.Fprintf(w, "%s\n", q.Prompt)
		for i, o := range q.Options {
			fmt.Fprintf(w, "  %d. %s\n", i+1, o.Label)
		}
		fmt.Fprintf(w, "choice [1]: ")
		choice := 1
		if scanner.Scan() {
			text := strings.TrimSpace(scanner.Text())
			if text != "" {
				n, err := strconv.Atoi(text)
				if err != nil || n < 1 || n > len(q.Options) {
					return nil, fmt.Errorf("dialog: answer %q out of range 1..%d", text, len(q.Options))
				}
				choice = n
			}
		}
		answers = append(answers, Answer{QuestionID: q.ID, OptionKey: q.Options[choice-1].Key})
	}
	return BuildPolicy(v, answers)
}
