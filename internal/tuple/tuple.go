// Package tuple implements tuples over a relation schema, plus the
// small amount of set machinery the translation algebra needs:
// canonical encodings, key extraction, projections and tuple sets.
package tuple

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/schema"
	"viewupdate/internal/value"
)

// A T is an immutable tuple: an ordered list of values conforming to a
// relation schema. Construct with New (validating) or FromValues.
type T struct {
	rel  *schema.Relation
	vals []value.Value
}

// New builds a tuple over rel from vals, validating arity and domain
// membership of every value.
func New(rel *schema.Relation, vals ...value.Value) (T, error) {
	if rel == nil {
		return T{}, fmt.Errorf("tuple: nil relation schema")
	}
	if len(vals) != rel.Arity() {
		return T{}, fmt.Errorf("tuple: %s expects %d values, got %d", rel.Name(), rel.Arity(), len(vals))
	}
	for i, a := range rel.Attributes() {
		if !a.Domain.Contains(vals[i]) {
			return T{}, fmt.Errorf("tuple: value %s not in domain %s of %s.%s",
				vals[i], a.Domain.Name(), rel.Name(), a.Name)
		}
	}
	cp := make([]value.Value, len(vals))
	copy(cp, vals)
	return T{rel: rel, vals: cp}, nil
}

// MustNew is New, panicking on error.
func MustNew(rel *schema.Relation, vals ...value.Value) T {
	t, err := New(rel, vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromMap builds a tuple over rel taking each attribute's value from
// the map; every attribute must be present.
func FromMap(rel *schema.Relation, m map[string]value.Value) (T, error) {
	vals := make([]value.Value, rel.Arity())
	for i, a := range rel.Attributes() {
		v, ok := m[a.Name]
		if !ok {
			return T{}, fmt.Errorf("tuple: missing attribute %s.%s", rel.Name(), a.Name)
		}
		vals[i] = v
	}
	return New(rel, vals...)
}

// IsZero reports whether t is the zero tuple (no schema).
func (t T) IsZero() bool { return t.rel == nil }

// Relation returns the schema the tuple conforms to.
func (t T) Relation() *schema.Relation { return t.rel }

// Values returns the tuple's values in schema order (shared slice; do
// not modify).
func (t T) Values() []value.Value { return t.vals }

// At returns the i-th value.
func (t T) At(i int) value.Value { return t.vals[i] }

// Get returns the value of the named attribute; ok is false if the
// attribute is not in the schema.
func (t T) Get(attr string) (value.Value, bool) {
	i := t.rel.Index(attr)
	if i < 0 {
		return value.Value{}, false
	}
	return t.vals[i], true
}

// MustGet returns the value of the named attribute, panicking if absent.
func (t T) MustGet(attr string) value.Value {
	v, ok := t.Get(attr)
	if !ok {
		panic(fmt.Sprintf("tuple: attribute %s not in %s", attr, t.rel.Name()))
	}
	return v
}

// With returns a copy of t with the named attribute set to v. The new
// value must belong to the attribute's domain.
func (t T) With(attr string, v value.Value) (T, error) {
	i := t.rel.Index(attr)
	if i < 0 {
		return T{}, fmt.Errorf("tuple: attribute %s not in %s", attr, t.rel.Name())
	}
	a := t.rel.Attributes()[i]
	if !a.Domain.Contains(v) {
		return T{}, fmt.Errorf("tuple: value %s not in domain %s of %s.%s",
			v, a.Domain.Name(), t.rel.Name(), attr)
	}
	cp := make([]value.Value, len(t.vals))
	copy(cp, t.vals)
	cp[i] = v
	return T{rel: t.rel, vals: cp}, nil
}

// MustWith is With, panicking on error.
func (t T) MustWith(attr string, v value.Value) T {
	out, err := t.With(attr, v)
	if err != nil {
		panic(err)
	}
	return out
}

// Equal reports whether t and u are the same tuple of the same schema.
func (t T) Equal(u T) bool {
	if t.rel != u.rel || len(t.vals) != len(u.vals) {
		return false
	}
	for i := range t.vals {
		if t.vals[i] != u.vals[i] {
			return false
		}
	}
	return true
}

// Encode returns a canonical injective encoding of the tuple including
// its relation name, suitable as a map key.
func (t T) Encode() string {
	var b strings.Builder
	b.WriteString(t.rel.Name())
	for _, v := range t.vals {
		b.WriteByte('\n')
		b.WriteString(v.Encode())
	}
	return b.String()
}

// Key returns the canonical encoding of the tuple's key attributes,
// prefixed by the relation name. Two tuples of one relation agree on
// the key dependency's left side iff their Key() strings are equal.
func (t T) Key() string {
	var b strings.Builder
	b.WriteString(t.rel.Name())
	for _, i := range t.rel.KeyIndexes() {
		b.WriteByte('\n')
		b.WriteString(t.vals[i].Encode())
	}
	return b.String()
}

// KeyValues returns the values of the key attributes in key order.
func (t T) KeyValues() []value.Value {
	idx := t.rel.KeyIndexes()
	out := make([]value.Value, len(idx))
	for i, j := range idx {
		out[i] = t.vals[j]
	}
	return out
}

// ProjectEncode returns a canonical encoding of the tuple restricted to
// the named attributes (in the given order). Attributes absent from the
// schema cause an error.
func (t T) ProjectEncode(attrs []string) (string, error) {
	var b strings.Builder
	for i, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			return "", fmt.Errorf("tuple: attribute %s not in %s", a, t.rel.Name())
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(v.Encode())
	}
	return b.String(), nil
}

// Compare orders tuples of the same relation lexicographically by
// schema order; tuples of different relations order by relation name.
func (t T) Compare(u T) int {
	if t.rel != u.rel {
		return strings.Compare(t.rel.Name(), u.rel.Name())
	}
	for i := range t.vals {
		if c := t.vals[i].Compare(u.vals[i]); c != 0 {
			return c
		}
	}
	return 0
}

// String renders the tuple as NAME(v1, v2, ...).
func (t T) String() string {
	if t.rel == nil {
		return "<zero tuple>"
	}
	parts := make([]string, len(t.vals))
	for i, v := range t.vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s(%s)", t.rel.Name(), strings.Join(parts, ", "))
}

// A Set is a set of tuples keyed by canonical encoding. The zero Set is
// empty and ready to use for reads; use NewSet or Add for writes.
type Set struct {
	m map[string]T
}

// NewSet builds a set from the given tuples.
func NewSet(ts ...T) *Set {
	s := &Set{m: make(map[string]T, len(ts))}
	for _, t := range ts {
		s.Add(t)
	}
	return s
}

// Len returns the number of tuples.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Add inserts t; it reports whether t was newly added.
func (s *Set) Add(t T) bool {
	if s.m == nil {
		s.m = make(map[string]T)
	}
	k := t.Encode()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = t
	return true
}

// Remove deletes t; it reports whether t was present.
func (s *Set) Remove(t T) bool {
	if s == nil || s.m == nil {
		return false
	}
	k := t.Encode()
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}

// Contains reports membership.
func (s *Set) Contains(t T) bool {
	if s == nil || s.m == nil {
		return false
	}
	_, ok := s.m[t.Encode()]
	return ok
}

// Slice returns the tuples in deterministic (encoding) order.
func (s *Set) Slice() []T {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]T, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Equal reports whether two sets hold the same tuples.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	if s == nil || s.m == nil {
		return true
	}
	for k := range s.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{m: make(map[string]T, s.Len())}
	if s != nil {
		for k, v := range s.m {
			out.m[k] = v
		}
	}
	return out
}
