package tuple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"viewupdate/internal/schema"
	"viewupdate/internal/value"
)

func testRel(t testing.TB) *schema.Relation {
	t.Helper()
	k := schema.MustDomain("KD", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	a := schema.MustDomain("AD", value.NewString("x"), value.NewString("y"))
	b := schema.BoolDomain("BD")
	return schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: k},
		{Name: "A", Domain: a},
		{Name: "B", Domain: b},
	}, []string{"K"})
}

func mk(t testing.TB, rel *schema.Relation, k int64, a string, b bool) T {
	t.Helper()
	tp, err := New(rel, value.NewInt(k), value.NewString(a), value.NewBool(b))
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestNewValidation(t *testing.T) {
	rel := testRel(t)
	if _, err := New(nil, value.NewInt(1)); err == nil {
		t.Error("nil relation should fail")
	}
	if _, err := New(rel, value.NewInt(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := New(rel, value.NewInt(9), value.NewString("x"), value.NewBool(true)); err == nil {
		t.Error("out-of-domain value should fail")
	}
	if _, err := New(rel, value.NewInt(1), value.NewString("x"), value.NewBool(true)); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
}

func TestImmutability(t *testing.T) {
	rel := testRel(t)
	vals := []value.Value{value.NewInt(1), value.NewString("x"), value.NewBool(true)}
	tp, err := New(rel, vals...)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = value.NewInt(2) // mutate the input slice
	if tp.At(0) != value.NewInt(1) {
		t.Error("tuple shares caller's slice")
	}
}

func TestAccessors(t *testing.T) {
	rel := testRel(t)
	tp := mk(t, rel, 2, "y", false)
	if tp.IsZero() {
		t.Error("IsZero on real tuple")
	}
	var zero T
	if !zero.IsZero() {
		t.Error("zero tuple should be zero")
	}
	if tp.Relation() != rel {
		t.Error("Relation wrong")
	}
	if tp.At(1) != value.NewString("y") {
		t.Error("At wrong")
	}
	if v, ok := tp.Get("B"); !ok || v != value.NewBool(false) {
		t.Error("Get wrong")
	}
	if _, ok := tp.Get("missing"); ok {
		t.Error("Get on missing attr")
	}
	if tp.MustGet("K") != value.NewInt(2) {
		t.Error("MustGet wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet missing should panic")
			}
		}()
		tp.MustGet("missing")
	}()
}

func TestWith(t *testing.T) {
	rel := testRel(t)
	tp := mk(t, rel, 1, "x", true)
	tp2, err := tp.With("A", value.NewString("y"))
	if err != nil {
		t.Fatal(err)
	}
	if tp2.MustGet("A") != value.NewString("y") || tp.MustGet("A") != value.NewString("x") {
		t.Error("With should copy")
	}
	if _, err := tp.With("missing", value.NewInt(1)); err == nil {
		t.Error("With missing attr should fail")
	}
	if _, err := tp.With("A", value.NewString("zz")); err == nil {
		t.Error("With out-of-domain should fail")
	}
}

func TestEqualCompare(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x", true)
	b := mk(t, rel, 1, "x", true)
	c := mk(t, rel, 1, "y", true)
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	if a.Compare(b) != 0 || a.Compare(c) >= 0 || c.Compare(a) <= 0 {
		t.Error("Compare wrong")
	}
}

func TestEncodeKey(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x", true)
	b := mk(t, rel, 1, "y", false)
	c := mk(t, rel, 2, "x", true)
	if a.Encode() == b.Encode() {
		t.Error("Encode should distinguish different tuples")
	}
	if a.Key() != b.Key() {
		t.Error("Key should agree for same-key tuples")
	}
	if a.Key() == c.Key() {
		t.Error("Key should differ for different keys")
	}
	if kv := a.KeyValues(); len(kv) != 1 || kv[0] != value.NewInt(1) {
		t.Errorf("KeyValues = %v", kv)
	}
}

func TestProjectEncode(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x", true)
	enc1, err := a.ProjectEncode([]string{"A", "K"})
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := a.ProjectEncode([]string{"K", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if enc1 == enc2 {
		t.Error("projection order should matter")
	}
	if _, err := a.ProjectEncode([]string{"missing"}); err == nil {
		t.Error("missing attr should fail")
	}
}

func TestFromMap(t *testing.T) {
	rel := testRel(t)
	tp, err := FromMap(rel, map[string]value.Value{
		"K": value.NewInt(3), "A": value.NewString("x"), "B": value.NewBool(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tp.MustGet("K") != value.NewInt(3) {
		t.Error("FromMap wrong")
	}
	if _, err := FromMap(rel, map[string]value.Value{"K": value.NewInt(1)}); err == nil {
		t.Error("missing attributes should fail")
	}
}

func TestString(t *testing.T) {
	rel := testRel(t)
	tp := mk(t, rel, 1, "x", true)
	if got := tp.String(); got != "R(1, 'x', true)" {
		t.Errorf("String = %q", got)
	}
	var zero T
	if zero.String() != "<zero tuple>" {
		t.Errorf("zero String = %q", zero.String())
	}
}

func TestSet(t *testing.T) {
	rel := testRel(t)
	a := mk(t, rel, 1, "x", true)
	b := mk(t, rel, 2, "y", false)
	s := NewSet(a)
	if s.Len() != 1 || !s.Contains(a) || s.Contains(b) {
		t.Error("NewSet wrong")
	}
	if !s.Add(b) || s.Add(b) {
		t.Error("Add idempotence wrong")
	}
	if got := s.Slice(); len(got) != 2 {
		t.Errorf("Slice = %v", got)
	}
	if !s.Remove(a) || s.Remove(a) {
		t.Error("Remove wrong")
	}
	clone := s.Clone()
	clone.Add(a)
	if s.Contains(a) {
		t.Error("Clone should be independent")
	}
	if !s.Equal(NewSet(b)) || s.Equal(NewSet(a, b)) {
		t.Error("Equal wrong")
	}
	var nilSet *Set
	if nilSet.Len() != 0 || nilSet.Contains(a) || nilSet.Remove(a) || nilSet.Slice() != nil {
		t.Error("nil set reads should be safe")
	}
	var zero Set
	if !zero.Add(a) || !zero.Contains(a) {
		t.Error("zero Set should accept Add")
	}
}

// genTuple yields random tuples over testRel for property tests.
type genTuple struct{ T T }

var quickRel = func() *schema.Relation {
	k := schema.MustDomain("KD", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	a := schema.MustDomain("AD", value.NewString("x"), value.NewString("y"))
	b := schema.BoolDomain("BD")
	return schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: k},
		{Name: "A", Domain: a},
		{Name: "B", Domain: b},
	}, []string{"K"})
}()

// Generate implements quick.Generator.
func (genTuple) Generate(r *rand.Rand, _ int) reflect.Value {
	var vals []value.Value
	for _, a := range quickRel.Attributes() {
		vals = append(vals, a.Domain.At(r.Intn(a.Domain.Size())))
	}
	return reflect.ValueOf(genTuple{T: MustNew(quickRel, vals...)})
}

func TestQuickEncodeInjective(t *testing.T) {
	f := func(a, b genTuple) bool {
		return (a.T.Encode() == b.T.Encode()) == a.T.Equal(b.T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyConsistent(t *testing.T) {
	f := func(a, b genTuple) bool {
		sameKey := a.T.MustGet("K") == b.T.MustGet("K")
		return (a.T.Key() == b.T.Key()) == sameKey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetSemantics(t *testing.T) {
	f := func(ts []genTuple) bool {
		s := NewSet()
		uniq := map[string]bool{}
		for _, g := range ts {
			s.Add(g.T)
			uniq[g.T.Encode()] = true
		}
		return s.Len() == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
