package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"viewupdate/internal/core"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/update"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// maxBodyBytes bounds request bodies; view updates are small.
const maxBodyBytes = 1 << 20

// retryAfterSeconds is the Retry-After hint on 429/503 responses.
const retryAfterSeconds = 1

// NewHandler builds the HTTP API over an engine:
//
//	GET  /healthz                        liveness + engine state
//	GET  /readyz                         write readiness (503 while degraded/draining)
//	GET  /metricsz                       obs counters/histograms as JSON
//	GET  /metrics                        Prometheus text exposition + runtime stats
//	GET  /debug/slow                     slowest complete request traces as JSON
//	GET  /debug/pprof/...                net/http/pprof (only with Config.EnablePprof)
//	GET  /views                          list view names
//	GET  /views/{name}?Attr=val          read a view (optional equality filters)
//	POST /views/{name}/insert            single-shot view update …
//	POST /views/{name}/delete
//	POST /views/{name}/replace
//	POST /tx/begin                       open a transaction, returns token
//	POST /tx/{token}/views/{name}/{op}   staged view update (insert|delete|replace)
//	GET  /tx/{token}/views/{name}        read the staged state
//	POST /tx/{token}/commit              strict-version group commit
//	POST /tx/{token}/rollback            discard
//	POST /execz                          run a sqlish script (admin/setup)
//
// Every handler runs under the engine's per-request deadline.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /readyz", e.handleReadyz)
	mux.HandleFunc("GET /metricsz", handleMetricsz)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /debug/slow", handleSlowTraces)
	if e.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /views", e.handleListViews)
	mux.HandleFunc("GET /views/{name}", e.handleReadView)
	mux.HandleFunc("POST /views/{name}/{op}", e.handleUpdate)
	mux.HandleFunc("POST /tx/begin", e.handleTxBegin)
	mux.HandleFunc("POST /tx/{token}/commit", e.handleTxCommit)
	mux.HandleFunc("POST /tx/{token}/rollback", e.handleTxRollback)
	mux.HandleFunc("POST /tx/{token}/views/{name}/{op}", e.handleTxUpdate)
	mux.HandleFunc("GET /tx/{token}/views/{name}", e.handleTxReadView)
	mux.HandleFunc("POST /execz", e.handleExec)
	mux.HandleFunc("GET /wal/snapshot", e.handleWalSnapshot)
	mux.HandleFunc("GET /wal/stream", e.handleWalStream)
	mux.HandleFunc("GET /subscribe/{view}", e.handleSubscribe)
	return e.withDeadline(mux)
}

// withDeadline enforces the per-request deadline via the request
// context, so handlers blocked on the commit pipeline give up in
// bounded time, counts every request into the obs registry, tracks the
// in-flight gauge, and — when instrumentation is enabled — starts the
// request-scoped pipeline trace that downstream stages record into.
// pprof endpoints are exempt from the deadline: a 30s CPU profile must
// outlive the per-request timeout.
func (e *Engine) withDeadline(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan("server.request")
		defer sp.End()
		obs.Inc("server.requests")
		obs.AddGauge("server.http.inflight", 1)
		defer obs.AddGauge("server.http.inflight", -1)
		ctx := r.Context()
		// pprof is exempt from the deadline (a 30s CPU profile must
		// outlive the per-request timeout); so are the replication and
		// subscription streams, which are long-lived by design.
		exempt := strings.HasPrefix(r.URL.Path, "/debug/pprof/") ||
			r.URL.Path == "/wal/stream" ||
			strings.HasPrefix(r.URL.Path, "/subscribe/")
		if !exempt {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.cfg.RequestTimeout)
			defer cancel()
		}
		if obs.Enabled() {
			tr := obs.StartTrace(r.Method + " " + r.URL.Path)
			defer tr.Finish()
			ctx = obs.ContextWithTrace(ctx, tr)
		}
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// writeError maps an error to its HTTP status and JSON envelope. The
// taxonomy:
//
//	400 bad_request      malformed body, unknown attribute, domain violation
//	403 read_only        write against a follower (it replicates, the primary writes)
//	404 not_found        unknown view or transaction token
//	409 conflict         optimistic conflict at apply time
//	422 no_candidates    the view update admits no translation
//	422 ambiguous        the policy refuses to choose among candidates
//	429 overloaded       admission control or load shedding rejected the commit (Retry-After)
//	503 degraded         sealed WAL, corrupt store, open breaker: read-only brownout (Retry-After)
//	503 unavailable      draining, transient I/O failure, idempotent-retry race (Retry-After)
//	504 deadline         the commit's fate was not observed in time
//
// Durability failures — a sealed WAL, a corrupt store — map to 503
// "degraded", not 500: the engine still serves snapshot reads and the
// condition is visible on /readyz, so clients and load balancers treat
// it as a brownout to retry elsewhere, not a server bug.
func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusBadRequest, "bad_request"
	switch {
	case errors.Is(err, ErrNoView) || errors.Is(err, ErrNoTx):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, ErrConflict):
		status, code = http.StatusConflict, "conflict"
	case errors.Is(err, ErrReadOnly):
		status, code = http.StatusForbidden, "read_only"
	case errors.Is(err, core.ErrNoCandidates):
		status, code = http.StatusUnprocessableEntity, "no_candidates"
	case errors.Is(err, core.ErrAmbiguous):
		status, code = http.StatusUnprocessableEntity, "ambiguous"
	case errors.Is(err, ErrOverloaded):
		status, code = http.StatusTooManyRequests, "overloaded"
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	case errors.Is(err, ErrDegraded), vuerr.IsCorrupt(err), errors.Is(err, wal.ErrSealed):
		status, code = http.StatusServiceUnavailable, "degraded"
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	case errors.Is(err, ErrDraining), errors.Is(err, ErrIdemRetry), vuerr.IsTransient(err),
		errors.Is(err, persist.ErrNotDurable):
		status, code = http.StatusServiceUnavailable, "unavailable"
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "deadline"
	}
	obs.Inc("server.error." + code)
	writeJSON(w, status, errorReply{Error: err.Error(), Code: code})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := e.Health()
	status := http.StatusOK
	if h.Status == "broken" {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, h)
}

// handleReadyz is the write-readiness probe: 200 while the engine
// accepts commits, 503 with Retry-After while draining, degraded
// (breaker open — reads still work) or broken. Load balancers poll
// this to steer writes away during a brownout and back after the
// breaker's probe succeeds.
func (e *Engine) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := e.Health()
	if e.Ready() {
		writeJSON(w, http.StatusOK, struct {
			Ready   bool   `json:"ready"`
			Breaker string `json:"breaker"`
		}{true, h.Breaker})
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, http.StatusServiceUnavailable, struct {
		Ready   bool   `json:"ready"`
		Status  string `json:"status"`
		Breaker string `json:"breaker"`
	}{false, h.Status, h.Breaker})
}

// handleMetricsz dumps the active obs sink's snapshot. Without a sink
// it answers an empty snapshot rather than failing, so scrapers can
// poll unconditionally.
func handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s := obs.Active()
	if s == nil {
		writeJSON(w, http.StatusOK, obs.Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]int64{},
			Histograms: map[string]obs.HistogramSnapshot{},
		})
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics().Snapshot())
}

// handleMetrics renders the active sink in Prometheus text exposition
// format, followed by Go runtime metrics (goroutines, heap, GC). With
// no sink active only the runtime block is emitted, so the endpoint is
// always scrapeable.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	if s := obs.Active(); s != nil {
		_ = s.Metrics().Snapshot().WritePrometheus(w)
	}
	_ = obs.WriteRuntimeMetrics(w)
}

// handleSlowTraces dumps the slow-trace ring: the N slowest complete
// request traces seen since the sink was installed, slowest first.
func handleSlowTraces(w http.ResponseWriter, r *http.Request) {
	s := obs.Active()
	if s == nil {
		writeJSON(w, http.StatusOK, struct {
			Traces []obs.TraceSnapshot `json:"traces"`
		}{Traces: []obs.TraceSnapshot{}})
		return
	}
	traces := s.SlowTraces().Snapshot()
	if traces == nil {
		traces = []obs.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}{Traces: traces})
}

func (e *Engine) handleListViews(w http.ResponseWriter, r *http.Request) {
	_, version := e.Snapshot()
	writeJSON(w, http.StatusOK, struct {
		Views   []string `json:"views"`
		Version uint64   `json:"version"`
	}{e.ViewNames(), version})
}

func (e *Engine) handleReadView(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, _, err := e.lookupView(name, nil)
	if err != nil {
		writeError(w, err)
		return
	}
	db, version := e.Snapshot()
	eq := map[string]string{}
	for param, vals := range r.URL.Query() {
		if len(vals) > 0 {
			eq[param] = vals[0]
		}
	}
	parsed, err := parseEq(v.Schema(), eq)
	if err != nil {
		writeError(w, err)
		return
	}
	rows, cols := renderRows(v, e.materializeOn(v, db), parsed)
	writeJSON(w, http.StatusOK, rowsReply{
		View: name, Columns: cols, Rows: rows, Count: len(rows), Version: version,
	})
}

// parseOpKind maps the {op} path segment to an update kind.
func parseOpKind(op string) (update.Kind, error) {
	switch op {
	case "insert":
		return update.Insert, nil
	case "delete":
		return update.Delete, nil
	case "replace":
		return update.Replace, nil
	default:
		return 0, fmt.Errorf("server: unknown operation %q (want insert|delete|replace)", op)
	}
}

// handleUpdate is the single-shot path: translate against the
// published snapshot in parallel with every other request, then funnel
// the commit through the group-commit pipeline.
//
// An Idempotency-Key header makes the request safely retryable across
// ambiguous outcomes (timeouts, dropped connections, server crashes):
// the key is reserved in the engine's dedup table before the commit,
// travels into the WAL frame with the translation, and a retry that
// finds the key already fulfilled gets the original outcome back with
// "duplicate": true instead of applying twice. See docs/ROBUSTNESS.md
// for the full protocol.
func (e *Engine) handleUpdate(w http.ResponseWriter, r *http.Request) {
	kind, err := parseOpKind(r.PathValue("op"))
	if err != nil {
		writeError(w, err)
		return
	}
	var body updateBody
	if err := decodeBody(r, &body); err != nil {
		writeError(w, err)
		return
	}
	key := r.Header.Get("Idempotency-Key")
	var ent *idemEntry
	if key != "" {
		var dup bool
		ent, dup = e.idem.reserve(key)
		if dup {
			e.replayIdem(w, r, key, ent)
			return
		}
	}
	cand, eff, _, baseVersion, err := e.Translate(r.Context(), r.PathValue("name"), body.Prefer, e.buildRequest(kind, body))
	if err != nil {
		if key != "" {
			e.idem.release(key)
		}
		writeError(w, err)
		return
	}
	if ent != nil {
		// Stash the reply class for future duplicates. Safe unlocked:
		// this write happens-before the commit submission, which
		// happens-before fulfill closes ent.done, which happens-before
		// any duplicate reads it.
		ent.class = cand.Class
	}
	version, err := e.CommitKeyed(r.Context(), cand.Translation, false, baseVersion, key)
	if err != nil {
		// Clean failures released the key inside the pipeline; an
		// ambiguous outcome (deadline while queued) deliberately leaves
		// the reservation for the committer to settle, so a retry learns
		// the true fate instead of double-applying.
		writeError(w, err)
		return
	}
	reply := updateReply{OK: true, Class: cand.Class, Ops: renderOps(cand.Translation), Version: version}
	if eff != nil && !eff.None() {
		reply.SideEffects = eff.String()
	}
	writeJSON(w, http.StatusOK, reply)
}

// replayIdem answers a request whose idempotency key is already known:
// wait for the original attempt to settle, then return its outcome as
// a duplicate, or tell the client to retry if the original failed
// cleanly (nothing applied, key released).
func (e *Engine) replayIdem(w http.ResponseWriter, r *http.Request, key string, ent *idemEntry) {
	select {
	case <-ent.done:
	case <-r.Context().Done():
		writeError(w, fmt.Errorf("server: awaiting original request with same idempotency key: %w", r.Context().Err()))
		return
	}
	if !ent.ok {
		// The original attempt failed cleanly and released the key.
		writeError(w, ErrIdemRetry)
		return
	}
	obs.Inc("server.idem.hit")
	writeJSON(w, http.StatusOK, updateReply{
		OK: true, Class: ent.class, Version: ent.version,
		Duplicate: true, Replayed: ent.replayed,
	})
}

func (e *Engine) handleTxBegin(w http.ResponseWriter, r *http.Request) {
	token, err := e.BeginTx()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, txReply{Token: token, OK: true})
}

func (e *Engine) handleTxUpdate(w http.ResponseWriter, r *http.Request) {
	kind, err := parseOpKind(r.PathValue("op"))
	if err != nil {
		writeError(w, err)
		return
	}
	var body updateBody
	if err := decodeBody(r, &body); err != nil {
		writeError(w, err)
		return
	}
	cand, eff, err := e.TxUpdate(r.Context(), r.PathValue("token"), r.PathValue("name"), body.Prefer, e.buildRequest(kind, body))
	if err != nil {
		writeError(w, err)
		return
	}
	reply := updateReply{OK: true, Class: cand.Class, Ops: renderOps(cand.Translation), Staged: true}
	if eff != nil && !eff.None() {
		reply.SideEffects = eff.String()
	}
	writeJSON(w, http.StatusOK, reply)
}

func (e *Engine) handleTxReadView(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, _, err := e.lookupView(name, nil)
	if err != nil {
		writeError(w, err)
		return
	}
	staged, err := e.TxView(r.PathValue("token"))
	if err != nil {
		writeError(w, err)
		return
	}
	rows, cols := renderRows(v, v.Materialize(staged), nil)
	writeJSON(w, http.StatusOK, rowsReply{
		View: name, Columns: cols, Rows: rows, Count: len(rows),
	})
}

func (e *Engine) handleTxCommit(w http.ResponseWriter, r *http.Request) {
	n, version, err := e.TxCommit(r.Context(), r.PathValue("token"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, txReply{Committed: n, Version: version, OK: true})
}

func (e *Engine) handleTxRollback(w http.ResponseWriter, r *http.Request) {
	if err := e.TxRollback(r.PathValue("token")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, txReply{OK: true})
}

// handleExec runs a sqlish script serially against the session — the
// setup path for DDL, view definitions and policies, which have no
// dedicated wire endpoints. It holds the state lock for its whole
// duration, so it must not be on any hot path.
func (e *Engine) handleExec(w http.ResponseWriter, r *http.Request) {
	var body execBody
	if err := decodeBody(r, &body); err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()
	out, err := e.ExecScript(body.Script)
	obs.Observe("server.exec.ns", int64(time.Since(start)))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, execReply{Output: out, OK: true})
}
