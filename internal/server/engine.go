// Package server is the network serving layer of the view-update
// engine: a stdlib-only concurrent HTTP server that exposes the sqlish
// surface over the wire — view reads, single-shot view updates with
// translator selection, and multi-statement transactions tied to a
// session token — on top of the durable persist.Store from the
// durability layer.
//
// # Concurrency model
//
// Request handlers never touch the live database. Each handler reads
// the engine's published snapshot (an immutable storage.Database plus
// its commit version), translates and stages against it in parallel
// with every other request, and then submits the resulting translation
// to a single-writer group-commit pipeline. The committer goroutine
// gathers queued commits into batches, rechecks optimistic conflicts
// against the live state at apply time, lands the batch through
// persist.Store.ApplyBatch — one WAL write and one fsync for the whole
// batch — and publishes a fresh snapshot. Admission control bounds the
// commit queue: when it is full, submissions fail fast and the HTTP
// layer answers 429 with a Retry-After hint.
//
// See docs/SERVING.md for the wire API and the group-commit protocol.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"viewupdate/internal/core"
	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/replica"
	"viewupdate/internal/shard"
	"viewupdate/internal/sqlish"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
	"viewupdate/internal/wal"
)

// Sentinel errors of the serving layer, designed for errors.Is. The
// HTTP layer maps them to status codes (409, 429, 503, 504).
var (
	// ErrConflict marks a commit that lost an optimistic race: the
	// database moved between translation and apply in a way the
	// translation does not survive. Retryable by re-reading and
	// re-issuing the request.
	ErrConflict = errors.New("server: commit conflict")
	// ErrOverloaded marks a submission rejected by admission control:
	// the bounded commit queue is full.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrDraining marks a submission against an engine that is shutting
	// down.
	ErrDraining = errors.New("server: draining")
	// ErrNoView marks a request against an undefined view.
	ErrNoView = errors.New("server: unknown view")
)

// Config tunes an Engine.
type Config struct {
	// Dir is the durable store directory. Empty means in-memory only:
	// no WAL, no recovery, commits still funnel through the pipeline.
	Dir string
	// Sync is the WAL sync policy (with Dir; default wal.SyncOnCommit).
	Sync wal.SyncPolicy
	// MaxInFlight bounds the commit queue; submissions beyond it are
	// rejected with ErrOverloaded. Default 64.
	MaxInFlight int
	// MaxBatch caps how many queued commits one WAL append may carry.
	// Default 32.
	MaxBatch int
	// MaxBatchDelay bounds the committer's adaptive batching window: on
	// a commit arrival with more traffic queued or expected (by recent
	// inter-arrival times), the committer waits up to this long to
	// gather a fuller batch before the WAL append+fsync. An idle engine
	// never waits. 0 means the default (200µs); negative disables the
	// window entirely, restoring drain-only gathering. See batch.go and
	// docs/PERFORMANCE.md.
	MaxBatchDelay time.Duration
	// RequestTimeout is the per-request deadline enforced by the HTTP
	// layer. Default 5s.
	RequestTimeout time.Duration
	// TxTTL expires idle wire transactions. Default 60s.
	TxTTL time.Duration
	// Logger receives structured serving logs; nil silences them.
	Logger *slog.Logger
	// WrapWAL is threaded to persist.Options.WrapWAL for fault
	// injection in tests.
	WrapWAL func(wal.File) wal.File
	// Shards enables horizontal sharding (requires Dir): base relations
	// are partitioned by root-key hash into Shards independent stores,
	// each with its own WAL and fsync stream, coordinated by the
	// two-phase cross-shard protocol of internal/shard. 0 or 1 keeps the
	// single persist.Store pipeline. See docs/SHARDING.md.
	Shards int
	// WrapShardWAL is the sharded twin of WrapWAL: it wraps shard i's
	// WAL media for fault injection in tests.
	WrapShardWAL func(shard int, f wal.File) wal.File
	// DisableIVM turns off delta patching of the view cache on commit
	// publish, restoring PR 4's invalidate-on-publish behavior (the
	// first read after every commit rematerializes). Baseline knob for
	// benchmarks; leave false in production.
	DisableIVM bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// engine's handler. Off by default: profiling endpoints expose
	// stacks and heap contents, so they are opt-in (vuserved -pprof).
	EnablePprof bool
	// IdemCapacity bounds the durable-idempotency dedup table: how many
	// fulfilled request keys are remembered before FIFO eviction.
	// Default 4096.
	IdemCapacity int
	// ShedFraction enables adaptive load shedding: once the commit
	// queue passes this fraction of MaxInFlight, submissions are shed
	// probabilistically, ramping to certain rejection at a full queue.
	// 0 disables shedding (the default); admission control alone then
	// bounds the queue.
	ShedFraction float64
	// BreakerCooldown is how long the write-path circuit breaker stays
	// open after tripping before it admits a probe. Default 2s.
	BreakerCooldown time.Duration
	// Follow, when non-empty, runs the engine as a read replica of the
	// source at this base URL: state bootstraps from /wal/snapshot (or
	// recovers from Dir), every source commit streams in over
	// /wal/stream and applies locally, and the write API answers 403
	// read_only. Dir makes the follower durable (restart resumes from
	// the local watermark); empty Dir re-bootstraps every start.
	// Incompatible with Shards. See docs/REPLICATION.md.
	Follow string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.TxTTL <= 0 {
		c.TxTTL = 60 * time.Second
	}
	if c.IdemCapacity <= 0 {
		c.IdemCapacity = 4096
	}
	return c
}

// defaultBatchDelay is the adaptive window bound when Config leaves
// MaxBatchDelay zero: roughly half a commodity-SSD fsync, so a waited
// batch never more than ~1.5x-es the durability barrier it amortizes.
const defaultBatchDelay = 200 * time.Microsecond

// batchDelay resolves the configured window: 0 → default, negative →
// disabled (0 for the batcher).
func (c Config) batchDelay() time.Duration {
	switch {
	case c.MaxBatchDelay < 0:
		return 0
	case c.MaxBatchDelay == 0:
		return defaultBatchDelay
	default:
		return c.MaxBatchDelay
	}
}

// A snapshot is one published immutable state: handlers translate
// against Dolly (the clone), never the live database.
type snapshot struct {
	db      *storage.Database
	version uint64
}

// An Engine owns the serving state: the session (schema, views,
// policies), the durable store, the published snapshot, and the
// group-commit pipeline.
type Engine struct {
	cfg   Config
	sess  *sqlish.Session
	store *persist.Store    // nil in memory-only and sharded modes
	shst  *shard.Store      // non-nil in sharded mode (cfg.Shards > 1)
	shr   *shardRuntime     // the sharded pipeline; set with shst
	db    *storage.Database // live authoritative state

	sessMu sync.RWMutex // guards session view/policy lookups vs DDL

	snap atomic.Pointer[snapshot]

	// stateMu serializes every mutation of the live database: committer
	// batches and admin script execution.
	stateMu sync.Mutex

	// views memoizes view materializations of the published snapshot;
	// see materializeOn.
	views viewCache

	commitC  chan *commitReq
	sendMu   sync.RWMutex // guards commitC sends against close
	draining bool
	killed   bool // true after Kill: skip checkpoint/close in Close
	drained  chan struct{}

	txs txTable

	// idem is the durable-idempotency dedup table; brk the write-path
	// circuit breaker behind graceful degradation. shedTick drives the
	// deterministic shedding schedule.
	idem     idemTable
	brk      *breaker
	shedTick atomic.Uint64

	// Replication. repHub fans durable commits out to /wal/stream tails
	// (non-nil exactly when the engine is durable — a replication
	// source); repFeed reorders the sharded pipeline's out-of-order
	// durability notifications for it; hbStop stops the heartbeat
	// ticker. See walstream.go and docs/REPLICATION.md.
	repHub  *replica.Hub
	repFeed *walFeed
	hbStop  chan struct{}

	// subs fans per-commit view deltas out to /subscribe streams; see
	// subscribe.go. Zero value ready; closed after the pipeline drains.
	subs subHub

	// Follower mode (Config.Follow): fol replays the source's WAL
	// stream, folCancel stops it, folMu/folFatal record a fatal
	// replication error (divergence) for Health. See follower.go.
	fol       *replica.Follower
	folCancel context.CancelFunc
	folMu     sync.Mutex
	folFatal  error

	start time.Time
}

// NewEngine opens (or creates, or runs purely in memory when cfg.Dir is
// empty) the engine and starts its commit pipeline. initScript, when
// non-empty, is a sqlish script executed before serving — the place for
// CREATE DOMAIN/TABLE/VIEW and SET POLICY, since views and policies are
// not durable.
func NewEngine(cfg Config, initScript string) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		sess:    sqlish.NewSession(),
		commitC: make(chan *commitReq, cfg.MaxInFlight),
		drained: make(chan struct{}),
		brk:     newBreaker(cfg.BreakerCooldown),
		start:   time.Now(),
	}
	e.txs.ttl = cfg.TxTTL
	e.idem.cap = cfg.IdemCapacity
	if cfg.Shards > 1 && cfg.Dir == "" {
		return nil, fmt.Errorf("server: Shards requires a store directory")
	}
	if cfg.Follow != "" && cfg.Shards > 1 {
		return nil, fmt.Errorf("server: Follow is incompatible with Shards (follow each shard primary separately)")
	}
	if cfg.Follow != "" {
		if err := e.openFollower(); err != nil {
			return nil, err
		}
	} else if cfg.Shards > 1 {
		sopts := shard.Options{Sync: cfg.Sync, WrapWAL: cfg.WrapShardWAL}
		st, err := shard.Open(cfg.Dir, cfg.Shards, sopts)
		switch {
		case err == nil:
			e.logf("recovered sharded store", "dir", cfg.Dir, "report", st.Report().String())
			if aerr := e.sess.AdoptRecovered(st.DB()); aerr != nil {
				st.Close()
				return nil, aerr
			}
		case errors.Is(err, persist.ErrNoStore):
			st, err = shard.Create(cfg.Dir, cfg.Shards, e.sess.DB(), sopts)
			if err != nil {
				return nil, err
			}
			e.logf("created sharded store", "dir", cfg.Dir, "shards", cfg.Shards)
		default:
			return nil, err
		}
		e.shst = st
		// Script statements (init DDL, admin ExecScript, vupdate wire
		// scripts outside the pipeline) journal synchronously through the
		// store; DDL drains the pipelines and checkpoints so the manifest
		// carries the new inclusion dependencies.
		e.sess.SetApplier(e.applyShardDirect)
		e.sess.SetSchemaChanged(e.shardSchemaChanged)
	} else if cfg.Dir != "" {
		opts := persist.Options{Sync: cfg.Sync, WrapWAL: cfg.WrapWAL}
		st, err := persist.Open(cfg.Dir, opts)
		switch {
		case err == nil:
			e.logf("recovered store", "dir", cfg.Dir, "report", st.Report().String())
		case errors.Is(err, persist.ErrNoStore):
			st, err = persist.Create(cfg.Dir, e.sess.DB(), opts)
			if err != nil {
				return nil, err
			}
			e.logf("created store", "dir", cfg.Dir)
		default:
			return nil, err
		}
		if err := e.sess.AttachStore(st); err != nil {
			st.Close()
			return nil, err
		}
		e.store = st
	}
	e.db = e.sess.DB()
	if initScript != "" {
		// Skip-existing makes the script idempotent: a restart over a
		// recovered store re-runs the same DDL, where the snapshot
		// already holds the domains and tables.
		_, skipped, err := e.sess.ExecScriptSkipExisting(initScript)
		if err != nil {
			if e.store != nil {
				e.store.Close()
			}
			return nil, fmt.Errorf("server: init script: %w", err)
		}
		if skipped > 0 {
			e.logf("init script: skipped existing definitions", "skipped", skipped)
		}
	}
	e.publishSnapshot(0)
	if e.shst != nil {
		// Sharded twin of the WAL key replay below: each shard's log
		// contributes its own keys, seeded under the (shard, key) scoped
		// name with the raw key aliased to the same entry — so a retry
		// after recovery is deduplicated no matter which form it resolves
		// through (see idemTable.aliasFulfilled).
		total := 0
		for i, keys := range e.shst.KeysByShard() {
			for _, k := range keys {
				e.idem.seed(shardIdemKey(i, k), 0)
				e.idem.aliasFulfilled(k, shardIdemKey(i, k))
				total++
			}
		}
		if total > 0 {
			obs.Add("server.idem.replayed", int64(total))
			e.logf("replayed idempotency keys", "keys", total)
		}
	}
	if e.store != nil {
		// Seed the dedup table with every request key recovery found in
		// the WAL: a client retrying an ack the crash made ambiguous gets
		// its original outcome back instead of a double apply. The window
		// is exactly the WAL's — a checkpoint folds the log away and with
		// it the keys — which covers the crash case, where no checkpoint
		// ran (see docs/ROBUSTNESS.md).
		keys := e.store.RecoveredKeys()
		for _, k := range keys {
			e.idem.seed(k, 0)
		}
		if len(keys) > 0 {
			obs.Add("server.idem.replayed", int64(len(keys)))
			e.logf("replayed idempotency keys", "keys", len(keys))
		}
	}
	if e.store != nil || e.shst != nil {
		// A durable engine is a replication source: durable commits feed
		// the stream hub in commit order. The hub's watermark is seeded
		// with the boot-time committed seq, so a follower resuming below
		// it is served from the WAL on disk instead of silently skipped.
		e.repHub = replica.NewHub(0)
		e.hbStop = make(chan struct{})
		if e.store != nil {
			e.repHub.SeedWatermark(e.store.CommittedSeq())
			e.store.SetOnCommit(func(recs []wal.Record) {
				for _, rec := range recs {
					e.repHub.Publish(rec)
				}
			})
		} else {
			boot := e.shst.Seq()
			e.repFeed = newWalFeed(e.repHub, boot)
			e.repHub.SeedWatermark(boot)
			// The synchronous script path (DDL, admin writes) bypasses the
			// acker; its commits are durable when Apply returns, so they
			// register and resolve in one step. stateMu serializes them
			// against the sequencer's registrations.
			e.shst.SetOnCommit(func(seq uint64, key string, tr *update.Translation) {
				e.repFeed.register(seq, key, tr)
				e.repFeed.resolve(seq, true)
			})
		}
		go e.runHeartbeats()
	}
	e.preregisterMetrics()
	switch {
	case e.shst != nil:
		e.shr = newShardRuntime(e, e.shst)
		e.preregisterShardMetrics()
		e.shr.start()
		go e.runShardSequencer()
	case e.fol != nil:
		ctx, cancel := context.WithCancel(context.Background())
		e.folCancel = cancel
		go e.runReplicator(ctx)
	default:
		go e.runCommitter()
	}
	return e, nil
}

// preregisterMetrics touches every metric family the serving layer can
// emit, so a /metrics scrape sees the full schema from the first poll —
// scrapers and alerts can rely on family presence instead of treating
// "absent" and "zero" differently. No-op without an active sink.
func (e *Engine) preregisterMetrics() {
	s := obs.Active()
	if s == nil {
		return
	}
	reg := s.Metrics()
	for _, c := range []string{
		"server.requests", "server.commit.enqueued", "server.commit.batches",
		"server.commit.committed", "server.commit.conflict", "server.commit.deadline",
		"server.overload", "server.drain.rejected", "server.shed",
		"server.idem.hit", "server.idem.replayed", "server.idem.evicted",
		"server.brownout.rejected",
		"server.breaker.trip", "server.breaker.probe", "server.breaker.recovered",
		"server.viewcache.hit", "server.viewcache.miss",
		"server.ivm.patch", "server.ivm.rebuild",
		"server.commit.windows",
		"wal.append", "wal.append_batch", "wal.sync",
		"server.walstream.opened", "server.walstream.frames", "server.walstream.bytes",
		"server.walstream.snapshots", "server.replica.dropped_events",
		"server.subscribe.opened",
		"replica.hub.tail_overrun", "replica.hub.outoforder",
	} {
		reg.Counter(c)
	}
	if e.fol != nil {
		for _, c := range []string{
			"replica.bootstrap", "replica.reconnects",
			"replica.skipped_kind", "replica.skipped_applied",
		} {
			reg.Counter(c)
		}
		for _, g := range []string{
			"server.replica.applied_seq", "server.replica.lag_seq",
			"server.replica.lag_ns",
		} {
			reg.Gauge(g)
		}
		reg.Histogram("server.replica.lag.ns")
	}
	for _, g := range []string{
		"server.http.inflight", "server.commit.queue_depth",
		"server.tx.open", "server.viewcache.entries", "server.viewcache.version",
		"server.degraded", "server.breaker.state", "server.idem.entries",
		"server.walstream.streams", "server.replica.subscribers",
	} {
		reg.Gauge(g)
	}
	for _, h := range []string{
		"server.request.ns", "server.commit.batch_size", batchWaitNS,
		stageTranslateNS, stageVerifyNS, stageQueueNS,
		stageCommitNS, stageFsyncNS, stagePublishNS,
		"wal.fsync.ns",
	} {
		reg.Histogram(h)
	}
}

func (e *Engine) logf(msg string, args ...any) {
	if e.cfg.Logger != nil {
		e.cfg.Logger.Info(msg, args...)
	}
}

// Snapshot returns the current published state. The returned database
// is immutable — shared by every concurrent reader — and must not be
// mutated.
func (e *Engine) Snapshot() (*storage.Database, uint64) {
	s := e.snap.Load()
	return s.db, s.version
}

// publishSnapshot publishes the live state at version v as a
// copy-on-write shared clone: extensions are shared with the live
// database and cloned per relation on the live side's next write, so
// publication costs O(relations), not O(tuples). The published snapshot
// itself is never mutated. Callers must hold stateMu (or be the only
// goroutine, during init).
func (e *Engine) publishSnapshot(v uint64) {
	e.snap.Store(&snapshot{db: e.db.CloneShared(), version: v})
}

// A viewCache memoizes view materializations of the published snapshot
// for one snapshot version at a time, keyed by view name. The commit
// pipeline carries warm entries forward across publishes by patching
// them with each landed batch's view delta (see patchViewCache);
// versions the patcher skips — cold cache, DDL via ExecScript,
// Config.DisableIVM — invalidate implicitly, and the first read at the
// newer version resets the map and rematerializes.
type viewCache struct {
	mu      sync.Mutex
	version uint64
	sets    map[string]*tuple.Set
}

// materializeOn returns the view's rows over src. When src is the
// currently published snapshot, the materialization is memoized per
// (snapshot version, view), so repeated reads of one view between
// commits share one set. Any other source — a staged transaction
// overlay, a stale snapshot — is materialized directly. The returned
// set is shared and must not be mutated.
func (e *Engine) materializeOn(v view.View, src storage.Source) *tuple.Set {
	s := e.snap.Load()
	if db, ok := src.(*storage.Database); !ok || db != s.db {
		return v.Materialize(src)
	}
	return e.cachedView(v, s)
}

// cachedView looks v up in the view cache at snapshot s, materializing
// and (if s is still current) storing on miss. Materialization runs
// outside the lock; a publish racing the fill simply loses the entry.
func (e *Engine) cachedView(v view.View, s *snapshot) *tuple.Set {
	c := &e.views
	c.mu.Lock()
	if c.version == s.version && c.sets != nil {
		if set, ok := c.sets[v.Name()]; ok {
			c.mu.Unlock()
			obs.Inc("server.viewcache.hit")
			return set
		}
	}
	c.mu.Unlock()
	set := v.Materialize(s.db)
	obs.Inc("server.viewcache.miss")
	obs.Inc("server.ivm.rebuild")
	c.mu.Lock()
	if c.version < s.version || c.sets == nil {
		if c.version <= s.version {
			c.version = s.version
			c.sets = make(map[string]*tuple.Set)
		}
	}
	if c.version == s.version && c.sets != nil {
		c.sets[v.Name()] = set
	}
	obs.SetGauge("server.viewcache.entries", int64(len(c.sets)))
	obs.SetGauge("server.viewcache.version", int64(c.version))
	c.mu.Unlock()
	return set
}

// ReadView returns the named view's rows at the published snapshot,
// served through the view cache, plus the snapshot version. The
// returned set is shared and must not be mutated.
func (e *Engine) ReadView(name string) (*tuple.Set, uint64, error) {
	v, _, err := e.lookupView(name, nil)
	if err != nil {
		return nil, 0, err
	}
	db, version := e.Snapshot()
	return e.materializeOn(v, db), version, nil
}

// lookupView resolves a view and its configured policy; prefer, when
// non-empty, overrides the policy with a per-request class preference
// (the wire form of translator selection).
func (e *Engine) lookupView(name string, prefer []string) (view.View, core.Policy, error) {
	e.sessMu.RLock()
	defer e.sessMu.RUnlock()
	v := e.sess.View(name)
	if v == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoView, name)
	}
	if len(prefer) > 0 {
		return v, core.PreferClasses{Order: prefer}, nil
	}
	return v, e.sess.Policy(name), nil
}

// ViewNames lists the defined views.
func (e *Engine) ViewNames() []string {
	e.sessMu.RLock()
	defer e.sessMu.RUnlock()
	return e.sess.ViewNames()
}

// ExecScript runs a sqlish script against the session, serialized
// against the commit pipeline (DDL and admin writes take the state
// lock). The published snapshot is refreshed and the version bumped, so
// transactions opened before the script conservatively conflict.
func (e *Engine) ExecScript(script string) (string, error) {
	e.sendMu.RLock()
	draining := e.draining
	e.sendMu.RUnlock()
	if draining {
		return "", ErrDraining
	}
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	out, err := e.sess.ExecScript(script)
	// Even a failed script may have executed a statement prefix;
	// republish unconditionally.
	e.bumpVersionLocked(1)
	return out, err
}

// bumpVersionLocked advances the commit version by delta and republishes
// the snapshot. Callers hold stateMu.
func (e *Engine) bumpVersionLocked(delta uint64) {
	v := e.snap.Load().version + delta
	e.publishSnapshot(v)
}

// Translate resolves the view, translates req against the published
// snapshot, and returns the chosen candidate plus its side effects and
// the snapshot version the translation is based on. It does not apply
// anything. The translate and verify stages are recorded into the
// request trace attached to ctx (if any) and into the stage histograms.
func (e *Engine) Translate(ctx context.Context, viewName string, prefer []string, build func(view.View, storage.Source) (core.Request, error)) (core.Candidate, *core.Effects, core.Request, uint64, error) {
	v, pol, err := e.lookupView(viewName, prefer)
	if err != nil {
		return core.Candidate{}, nil, core.Request{}, 0, err
	}
	snap, version := e.Snapshot()
	req, err := build(v, snap)
	if err != nil {
		return core.Candidate{}, nil, core.Request{}, 0, err
	}
	if ferr := faultinject.Hit(faultinject.SiteServerTranslate); ferr != nil {
		return core.Candidate{}, nil, req, 0, ferr
	}
	rt := obs.TraceFrom(ctx)
	sp := obs.StartSpan("server.translate")
	cand, err := core.NewTranslator(v, pol).Translate(snap, req)
	d := sp.End()
	rt.Stage("translate", d)
	obs.Observe(stageTranslateNS, int64(d))
	if err != nil {
		return core.Candidate{}, nil, req, 0, err
	}
	vsp := obs.StartSpan("server.verify")
	// Feed the verifier the memoized materialization for this snapshot
	// version instead of letting it rematerialize per request; the
	// cached set is copy-on-write on both sides (patchViewCache and the
	// verifier clone before editing), so sharing it is safe.
	eff, err := core.NewVerifierWithBefore(snap, v, req, e.materializeOn(v, snap)).
		SideEffects(cand.Translation)
	vd := vsp.End()
	rt.Stage("verify", vd)
	obs.Observe(stageVerifyNS, int64(vd))
	if err != nil {
		return core.Candidate{}, nil, req, 0, err
	}
	return cand, eff, req, version, nil
}

// Commit submits a translation to the group-commit pipeline and waits
// for its fate. strict demands the database be unchanged since
// baseVersion (wire-transaction semantics: the staged diff is only
// meaningful relative to its BEGIN state); non-strict commits are
// validated op-by-op at apply time instead. Returns the version the
// commit landed at.
func (e *Engine) Commit(ctx context.Context, tr *update.Translation, strict bool, baseVersion uint64) (uint64, error) {
	return e.CommitKeyed(ctx, tr, strict, baseVersion, "")
}

// CommitKeyed is Commit carrying an idempotency key. A non-empty key
// must already be reserved in the engine's dedup table by the caller
// (see handleUpdate); it rides the commit request into the WAL frame,
// and the committer fulfills it when the batch lands or releases it on
// a clean failure. On an ambiguous outcome — the caller's deadline
// fired while the commit was still queued — the reservation is left in
// place for the pipeline to settle, so a retry observes the true fate.
func (e *Engine) CommitKeyed(ctx context.Context, tr *update.Translation, strict bool, baseVersion uint64, key string) (uint64, error) {
	if e.fol != nil {
		if key != "" {
			e.idem.release(key)
		}
		return 0, ErrReadOnly
	}
	if tr.Len() == 0 {
		_, v := e.Snapshot()
		if key != "" {
			e.idem.fulfill(key, v)
		}
		return v, nil
	}
	req := getCommitReq()
	req.tr, req.strict, req.baseVersion, req.key = tr, strict, baseVersion, key
	if rt := obs.TraceFrom(ctx); rt != nil {
		req.trace = rt
		req.enqueued = time.Now()
	}
	if err := e.submit(req); err != nil {
		putCommitReq(req)
		if key != "" {
			e.idem.release(key)
		}
		return 0, err
	}
	select {
	case res := <-req.done:
		putCommitReq(req)
		return res.version, res.err
	case <-ctx.Done():
		// The commit stays queued and may still land; the caller only
		// knows its fate is unknown. The request is abandoned, NOT
		// recycled: the committer's eventual send lands in its buffered
		// done channel and the whole object leaks to the GC.
		obs.Inc("server.commit.deadline")
		return 0, fmt.Errorf("server: commit result not observed: %w", ctx.Err())
	}
}

// submit enqueues a commit, enforcing (in order) the drain flag, the
// degradation breaker, fault injection at the admission boundary,
// adaptive shedding, and admission control.
func (e *Engine) submit(req *commitReq) error {
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	if e.draining {
		obs.Inc("server.drain.rejected")
		return ErrDraining
	}
	if err := e.brk.allow(); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.SiteServerAdmission); err != nil {
		return err
	}
	if e.shed() {
		obs.Inc("server.shed")
		return ErrOverloaded
	}
	select {
	case e.commitC <- req:
		obs.Inc("server.commit.enqueued")
		obs.SetGauge("server.commit.queue_depth", int64(len(e.commitC)))
		return nil
	default:
		obs.Inc("server.overload")
		return ErrOverloaded
	}
}

// shed decides whether this submission is dropped by adaptive load
// shedding. Below the ShedFraction threshold nothing sheds; from the
// threshold to a full queue the drop rate ramps linearly to certain
// rejection, scheduled by a deterministic tick counter rather than a
// random draw so the behavior is reproducible under test.
func (e *Engine) shed() bool {
	f := e.cfg.ShedFraction
	if f <= 0 || f >= 1 {
		return false
	}
	depth := len(e.commitC)
	if depth >= e.cfg.MaxInFlight {
		// Hard-full is plain overload, reported by the admission select;
		// shedding only drops pre-emptively while room remains.
		return false
	}
	start := int(f * float64(e.cfg.MaxInFlight))
	if depth < start {
		return false
	}
	// Of each `window` consecutive submissions arriving at this depth,
	// drop `over`: the ratio ramps from ~1/window at the threshold to
	// window/window (all) at a full queue.
	window := e.cfg.MaxInFlight - start + 1
	over := depth - start + 1
	if over > window {
		over = window
	}
	return int((e.shedTick.Add(1)-1)%uint64(window)) < over
}

// QueueDepth reports how many commits are waiting in the pipeline.
func (e *Engine) QueueDepth() int { return len(e.commitC) }

// Degraded reports whether the engine is in read-only brownout.
func (e *Engine) Degraded() bool { return e.brk.degraded() }

// Store exposes the durable store (nil in memory-only and sharded
// modes).
func (e *Engine) Store() *persist.Store { return e.store }

// ShardStore exposes the sharded store (nil unless Config.Shards > 1).
func (e *Engine) ShardStore() *shard.Store { return e.shst }

// Healthz summarizes liveness for the health endpoint.
type Healthz struct {
	Status    string   `json:"status"`
	Version   uint64   `json:"version"`
	Views     []string `json:"views"`
	Queue     int      `json:"queue_depth"`
	MaxQueue  int      `json:"queue_capacity"`
	OpenTxs   int      `json:"open_txs"`
	Durable   bool     `json:"durable"`
	Degraded  bool     `json:"degraded"`
	Breaker   string   `json:"breaker"`
	IdemKeys  int      `json:"idem_keys"`
	UptimeSec float64  `json:"uptime_sec"`
	// Pipeline tuning, surfaced so bench clients (cmd/vuload) can
	// record the server's effective knobs in their artifacts.
	MaxBatch     int   `json:"max_batch"`
	BatchDelayNS int64 `json:"batch_delay_ns"`
	GoMaxProcs   int   `json:"gomaxprocs"`
	// Sharded mode only: shard count and the per-shard durable
	// watermarks (the shard version vector of docs/SHARDING.md).
	Shards        int      `json:"shards,omitempty"`
	ShardVersions []uint64 `json:"shard_versions,omitempty"`
	// Replication: the engine's role, the attached /wal/stream tail
	// count (replication sources), and the follower's replica state.
	Role           string         `json:"role,omitempty"`
	WalStreamTails int            `json:"wal_stream_tails,omitempty"`
	Replica        *ReplicaHealth `json:"replica,omitempty"`
	Error          string         `json:"error,omitempty"`
}

// ReplicaHealth is the follower block of Healthz.
type ReplicaHealth struct {
	// Primary is the source URL the follower streams from.
	Primary string `json:"primary"`
	// AppliedSeq is the highest locally applied source commit;
	// SourceSeq the highest the source has reported (stream or
	// heartbeat); LagSeq their difference — replication lag in commits.
	AppliedSeq uint64 `json:"applied_seq"`
	SourceSeq  uint64 `json:"source_seq"`
	LagSeq     uint64 `json:"lag_seq"`
	// Durable reports whether replayed state survives restarts.
	Durable bool `json:"durable"`
	// Streaming reports a live stream connection to the source.
	Streaming bool `json:"streaming"`
}

// Ready reports whether the engine can currently serve writes: not
// draining, not broken, breaker closed. /readyz keys off this — a
// degraded engine stays alive (reads work) but reports unready so load
// balancers steer writes elsewhere.
func (e *Engine) Ready() bool {
	e.sendMu.RLock()
	draining := e.draining
	e.sendMu.RUnlock()
	if draining || e.brk.degraded() {
		return false
	}
	if e.fol != nil {
		// A follower is "ready" when it is actually replicating: load
		// balancers steer reads away from one that lost its source (its
		// data only goes staler) or diverged.
		e.folMu.Lock()
		fatal := e.folFatal
		e.folMu.Unlock()
		return fatal == nil && e.fol.Streaming() && e.db.Err() == nil
	}
	if e.store != nil && e.store.Err() != nil {
		return false
	}
	if e.shst != nil && e.shst.BrokenAny() != nil {
		return false
	}
	return e.db.Err() == nil
}

// Health reports the engine's current health. Status degrades to
// "broken" when the store or database can no longer be trusted and to
// "draining" during shutdown.
func (e *Engine) Health() Healthz {
	_, version := e.Snapshot()
	h := Healthz{
		Status:       "ok",
		Version:      version,
		Views:        e.ViewNames(),
		Queue:        e.QueueDepth(),
		MaxQueue:     e.cfg.MaxInFlight,
		OpenTxs:      e.txs.open(),
		Durable:      e.store != nil || e.shst != nil,
		Degraded:     e.brk.degraded(),
		Breaker:      e.brk.stateName(),
		IdemKeys:     e.idem.size(),
		UptimeSec:    time.Since(e.start).Seconds(),
		MaxBatch:     e.cfg.MaxBatch,
		BatchDelayNS: int64(e.cfg.batchDelay()),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Role:         "primary",
	}
	sort.Strings(h.Views)
	if e.repHub != nil {
		h.WalStreamTails = e.repHub.Tails()
	}
	if e.fol != nil {
		h.Role = "follower"
		applied, source := e.fol.AppliedSeq(), e.fol.SourceSeq()
		lag := uint64(0)
		if source > applied {
			lag = source - applied
		}
		h.Replica = &ReplicaHealth{
			Primary:    e.cfg.Follow,
			AppliedSeq: applied,
			SourceSeq:  source,
			LagSeq:     lag,
			Durable:    e.store != nil,
			Streaming:  e.fol.Streaming(),
		}
		e.folMu.Lock()
		if e.folFatal != nil {
			h.Status = "broken"
			h.Error = e.folFatal.Error()
		}
		e.folMu.Unlock()
	}
	if h.Degraded {
		h.Status = "degraded"
	}
	e.sendMu.RLock()
	if e.draining {
		h.Status = "draining"
	}
	e.sendMu.RUnlock()
	if e.store != nil {
		if err := e.store.Err(); err != nil {
			h.Status = "broken"
			h.Error = err.Error()
		}
	}
	if e.shst != nil {
		h.Shards = e.shst.N()
		if e.shr != nil {
			h.ShardVersions = e.shr.DurableVersions()
		}
		if err := e.shst.BrokenAny(); err != nil {
			h.Status = "broken"
			h.Error = err.Error()
		}
	}
	if err := e.db.Err(); err != nil {
		h.Status = "broken"
		h.Error = err.Error()
	}
	return h
}

// Kill stops the engine the way a crash would, minus the goroutine
// leak: commits stop being accepted, already-queued batches run to
// completion, and the store is closed WITHOUT a checkpoint — the WAL
// keeps its tail, exactly as if the process had died. The chaos
// harness uses this to "restart" an engine whose media a failpoint has
// already crashed; a later Close is a no-op.
func (e *Engine) Kill() {
	e.sendMu.Lock()
	already := e.draining
	e.draining = true
	e.killed = true
	if !already {
		close(e.commitC)
	}
	e.sendMu.Unlock()
	if !already && e.folCancel != nil {
		e.folCancel()
	}
	<-e.drained
	if !already {
		e.stopReplication()
		e.subs.close()
	}
	if !already && e.store != nil {
		// Crashed media makes close errors expected; the next Open
		// recovers from whatever bytes survived.
		_ = e.store.Close()
	}
	if !already && e.shst != nil {
		_ = e.shst.Close()
	}
}

// Close drains the engine: stop accepting commits, flush every queued
// batch through the pipeline, checkpoint the store (folding the WAL
// into a fresh snapshot), and close it. Safe to call more than once.
func (e *Engine) Close() error {
	e.sendMu.Lock()
	already := e.draining
	e.draining = true
	if !already {
		close(e.commitC)
	}
	e.sendMu.Unlock()
	if !already && e.folCancel != nil {
		e.folCancel()
	}
	<-e.drained
	if !already {
		e.stopReplication()
		e.subs.close()
	}
	if already || (e.store == nil && e.shst == nil) {
		return nil
	}
	var errs []error
	if e.store != nil {
		if err := e.store.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("server: drain checkpoint: %w", err))
		}
		if err := e.store.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: closing store: %w", err))
		}
	}
	if e.shst != nil {
		// The pipelines are drained (e.drained), so the shard WALs are
		// idle: fold them into fresh snapshots, then close.
		if err := e.shst.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("server: drain checkpoint: %w", err))
		}
		if err := e.shst.Close(); err != nil {
			errs = append(errs, fmt.Errorf("server: closing store: %w", err))
		}
	}
	e.logf("drained", "version", e.snap.Load().version)
	return errors.Join(errs...)
}
