package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// Live view subscriptions: GET /subscribe/{view} holds a Server-Sent
// Events stream open and pushes each commit's view-row delta — the
// same O(delta) changes incremental view maintenance computes — to
// every subscriber. The fan-out path is allocation-free in steady
// state: one pooled event buffer is encoded per (commit, view) and
// shared by reference count across that view's subscribers; per-
// subscriber queues are bounded, and a subscriber that cannot keep up
// is shed (its channel closed) rather than allowed to stall the commit
// pipeline. See docs/REPLICATION.md.

const (
	// subBuffer is each subscriber's queue: commits it lags behind by
	// more than this many events shed it.
	subBuffer = 256
	// subKeepalive is the comment-ping interval keeping idle streams'
	// connections (and intermediaries) from timing out.
	subKeepalive = 15 * time.Second
	// maxPooledEventBuf caps the buffer capacity returned to the event
	// pool; a rare huge delta is handed to the GC instead of pinning
	// its footprint forever.
	maxPooledEventBuf = 1 << 16
)

// A subEvent is one encoded SSE frame, shared by every subscriber of
// the view it belongs to. The publisher sets refs to the number of
// queues it was placed on; the last release returns it to the pool.
type subEvent struct {
	refs atomic.Int32
	buf  []byte
}

var subEventPool = sync.Pool{New: func() any { return new(subEvent) }}

// release drops one reference, recycling the event when it was the
// last.
func (ev *subEvent) release() {
	if ev.refs.Add(-1) != 0 {
		return
	}
	if cap(ev.buf) > maxPooledEventBuf {
		ev.buf = nil
	}
	subEventPool.Put(ev)
}

// A subscriber is one open /subscribe stream: a bounded event queue
// the publisher feeds and the handler drains. The publisher closes ch
// to shed a slow consumer or on shutdown; only the publisher ever
// closes it.
type subscriber struct {
	view string
	ch   chan *subEvent
}

// viewSubs is the fan-out set of one view, pinned to the view value
// the subscribers attached against — if DDL rebinds the name, the set
// is cut loose (the rows they were promised deltas for no longer
// exist).
type viewSubs struct {
	v    view.View
	subs map[*subscriber]struct{}
}

// subHub fans view deltas out to subscribers. The zero value is ready
// to use. total is kept redundantly so the per-commit fast path — no
// subscribers anywhere — is one atomic load, no lock.
type subHub struct {
	total  atomic.Int32
	mu     sync.Mutex
	views  map[string]*viewSubs
	closed bool
}

// attach registers a new subscriber of the named view. Returns nil
// when the hub is already closed (engine shutting down). If the name
// was rebound since earlier subscribers attached, they are shed and
// the entry re-pinned to v.
func (h *subHub) attach(name string, v view.View) *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	if h.views == nil {
		h.views = make(map[string]*viewSubs)
	}
	entry := h.views[name]
	if entry != nil && entry.v != v {
		h.dropLocked(name, entry)
		entry = nil
	}
	if entry == nil {
		entry = &viewSubs{v: v, subs: make(map[*subscriber]struct{})}
		h.views[name] = entry
	}
	s := &subscriber{view: name, ch: make(chan *subEvent, subBuffer)}
	entry.subs[s] = struct{}{}
	h.total.Add(1)
	obs.SetGauge("server.replica.subscribers", int64(h.total.Load()))
	return s
}

// detach removes s from the hub (idempotent; a shed subscriber is
// already gone). The caller must drain s.ch afterwards — events queued
// before detach still hold references.
func (h *subHub) detach(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	entry := h.views[s.view]
	if entry == nil {
		return
	}
	if _, ok := entry.subs[s]; !ok {
		return
	}
	delete(entry.subs, s)
	if len(entry.subs) == 0 {
		delete(h.views, s.view)
	}
	h.total.Add(-1)
	obs.SetGauge("server.replica.subscribers", int64(h.total.Load()))
}

// active returns the names of views with at least one subscriber (nil
// when there are none — the common case, answered without the lock).
func (h *subHub) active() []string {
	if h.total.Load() == 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.views) == 0 {
		return nil
	}
	names := make([]string, 0, len(h.views))
	for name := range h.views {
		names = append(names, name)
	}
	return names
}

// drop sheds every subscriber of the named view (dropped or redefined
// views, undeliverable deltas).
func (h *subHub) drop(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if entry := h.views[name]; entry != nil {
		h.dropLocked(name, entry)
	}
}

func (h *subHub) dropLocked(name string, entry *viewSubs) {
	for s := range entry.subs {
		close(s.ch)
		h.total.Add(-1)
	}
	delete(h.views, name)
	obs.SetGauge("server.replica.subscribers", int64(h.total.Load()))
}

// publish fans one commit's delta for the named view out to its
// subscribers: encode once into a pooled event, reference-count it
// across the queues, shed whoever's queue is full. Steady state this
// allocates nothing. Called from the commit path (under stateMu);
// sends never block.
func (h *subHub) publish(name string, v view.View, version uint64, rem, add []tuple.T) {
	if h.total.Load() == 0 {
		return
	}
	if len(rem) == 0 && len(add) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	entry := h.views[name]
	if entry == nil || len(entry.subs) == 0 {
		return
	}
	if entry.v != v {
		// The name was rebound under the subscribers; their row state is
		// no longer meaningful. Cut them loose to re-subscribe.
		h.dropLocked(name, entry)
		return
	}
	ev := subEventPool.Get().(*subEvent)
	ev.buf = appendChangeEvent(ev.buf[:0], name, version, rem, add)
	ev.refs.Store(int32(len(entry.subs)))
	shed := false
	for s := range entry.subs {
		select {
		case s.ch <- ev:
		default:
			// Slow consumer: drop it rather than block commits or buffer
			// without bound. The handler sees the closed channel, drains
			// what it had queued, and ends the stream.
			ev.release()
			delete(entry.subs, s)
			close(s.ch)
			h.total.Add(-1)
			obs.Inc("server.replica.dropped_events")
			shed = true
		}
	}
	if shed {
		if len(entry.subs) == 0 {
			delete(h.views, name)
		}
		obs.SetGauge("server.replica.subscribers", int64(h.total.Load()))
	}
}

// close sheds every subscriber and refuses new ones. Called once at
// engine shutdown, after the commit pipeline drained.
func (h *subHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for name, entry := range h.views {
		h.dropLocked(name, entry)
	}
	h.views = nil
}

// subscribable reports whether v's shape supports incremental deltas —
// the same shapes patchMaterialization maintains.
func subscribable(v view.View) bool {
	switch v.(type) {
	case *view.SP, *view.Join:
		return true
	}
	return false
}

// --- SSE encoding -----------------------------------------------------

var hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Hand-rolled
// because the fan-out path must not allocate: control characters get
// \uXXXX escapes, multi-byte UTF-8 passes through raw (valid JSON).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendWireValue appends v in the same plain string form the read API
// uses (wireString): ints and bools render as their text inside a JSON
// string, so a row cell is one JSON string regardless of kind.
func appendWireValue(dst []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.Int:
		dst = append(dst, '"')
		dst = strconv.AppendInt(dst, v.Int(), 10)
		return append(dst, '"')
	case value.Bool:
		dst = append(dst, '"')
		dst = strconv.AppendBool(dst, v.Bool())
		return append(dst, '"')
	case value.String:
		return appendJSONString(dst, v.Str())
	default:
		return appendJSONString(dst, v.String())
	}
}

// appendRowArray appends rows as a JSON array of arrays of cell
// strings, cells in schema order.
func appendRowArray(dst []byte, rows []tuple.T) []byte {
	dst = append(dst, '[')
	for i, t := range rows {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '[')
		for j, v := range t.Values() {
			if j > 0 {
				dst = append(dst, ',')
			}
			dst = appendWireValue(dst, v)
		}
		dst = append(dst, ']')
	}
	return append(dst, ']')
}

// appendChangeEvent appends one complete SSE change frame.
func appendChangeEvent(dst []byte, view string, version uint64, rem, add []tuple.T) []byte {
	dst = append(dst, "event: change\ndata: {\"view\":"...)
	dst = appendJSONString(dst, view)
	dst = append(dst, ",\"version\":"...)
	dst = strconv.AppendUint(dst, version, 10)
	dst = append(dst, ",\"removed\":"...)
	dst = appendRowArray(dst, rem)
	dst = append(dst, ",\"added\":"...)
	dst = appendRowArray(dst, add)
	return append(dst, "}\n\n"...)
}

// appendHelloEvent appends the stream-opening frame: the view's
// columns (so clients can map row arrays) and the snapshot version the
// stream is live from — changes the client read at or below it are
// already reflected in a fresh GET /views/{name}.
func appendHelloEvent(dst []byte, view string, version uint64, cols []string) []byte {
	dst = append(dst, "event: hello\ndata: {\"view\":"...)
	dst = appendJSONString(dst, view)
	dst = append(dst, ",\"version\":"...)
	dst = strconv.AppendUint(dst, version, 10)
	dst = append(dst, ",\"columns\":["...)
	for i, c := range cols {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, c)
	}
	return append(dst, "]}\n\n"...)
}

// --- handler ----------------------------------------------------------

// handleSubscribe holds a Server-Sent Events stream open on the named
// view and pushes each commit's row delta ("change" events: removed
// and added rows at a version). The stream opens with a "hello" event
// carrying the columns and the version it is live from. Slow
// consumers and redefined views get the stream closed; clients
// re-read and re-subscribe. Exempt from the per-request deadline.
func (e *Engine) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("view")
	v, _, err := e.lookupView(name, nil)
	if err != nil {
		writeError(w, err)
		return
	}
	if !subscribable(v) {
		writeJSON(w, http.StatusUnprocessableEntity, errorReply{
			Error: fmt.Sprintf("server: view %s is not incrementally maintainable; live subscription unsupported", name),
			Code:  "unsubscribable"})
		return
	}
	sub := e.subs.attach(name, v)
	if sub == nil {
		writeError(w, ErrDraining)
		return
	}
	defer func() {
		e.subs.detach(sub)
		// Events queued before detach still hold references; put them
		// back. After detach (or a shed close) nothing sends on ch.
		for {
			select {
			case ev, ok := <-sub.ch:
				if !ok {
					return
				}
				ev.release()
			default:
				return
			}
		}
	}()
	flush := func() {}
	if fl, ok := w.(http.Flusher); ok {
		flush = fl.Flush
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	obs.Inc("server.subscribe.opened")

	_, version := e.Snapshot()
	hello := appendHelloEvent(nil, name, version, v.Schema().AttributeNames())
	if _, err := w.Write(hello); err != nil {
		return
	}
	flush()

	ping := time.NewTicker(subKeepalive)
	defer ping.Stop()
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return // shed (slow consumer), view redefined, or shutdown
			}
			_, werr := w.Write(ev.buf)
			ev.release()
			if werr != nil {
				return
			}
			// Drain whatever is already queued before paying one flush
			// for the lot.
			for drained := false; !drained; {
				select {
				case more, ok := <-sub.ch:
					if !ok {
						flush()
						return
					}
					_, werr := w.Write(more.buf)
					more.release()
					if werr != nil {
						return
					}
				default:
					drained = true
				}
			}
			flush()
		case <-ping.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flush()
		case <-ctx.Done():
			return
		}
	}
}
