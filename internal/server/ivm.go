package server

import (
	"viewupdate/internal/obs"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// This file is the serving side of incremental view maintenance: the
// commit pipeline knows exactly which base tuples each landed batch
// removed and added, so instead of letting a publish invalidate the
// view cache (making the next reader pay a full O(view)
// rematerialization), it patches every warm cached set with the batch's
// view delta. Readers share cached sets, so patching is copy-on-write:
// a patched entry is a fresh set and sets already handed out are never
// mutated.
//
// The same per-view deltas drive live subscriptions (subscribe.go):
// each commit's row changes fan out to /subscribe/{view} tails, for
// subscribed views whether or not any reader has warmed the cache.

// patchViewCache carries the view cache across a publish and feeds the
// subscription hub: given the snapshot that was current when
// commitBatch started, the snapshot just published, and the
// translations that landed between them (in apply order), it patches
// each warm cached set with the corresponding view delta, advances the
// cache to the new version, and broadcasts each subscribed view's row
// changes. If the cache is cold or stale — or IVM is disabled — the
// cache invalidates implicitly as before (subscriptions still get
// their deltas).
//
// Called with stateMu held. Reading e.sess without sessMu is safe here:
// DDL mutation (ExecScript) requires sessMu AND stateMu, and we hold
// stateMu.
func (e *Engine) patchViewCache(old, new *snapshot, landed []*update.Translation) {
	if len(landed) == 0 {
		return
	}
	subbed := e.subs.active()
	ivmOn := !e.cfg.DisableIVM
	if !ivmOn && len(subbed) == 0 {
		return
	}
	removed, added := netDelta(landed)

	// Subscribed views compute their deltas first — a live subscription
	// needs the row changes even when no reader has materialized the
	// view — and the results are reused by the cache patch below.
	type delta struct {
		rem, add []tuple.T
		ok       bool
	}
	var deltas map[string]delta
	for _, name := range subbed {
		v := e.sess.View(name)
		if v == nil {
			// View dropped since the subscribers attached; cut them loose
			// so they notice and re-subscribe (or give up).
			e.subs.drop(name)
			continue
		}
		rem, add, ok := viewDeltaFor(v, old, new, removed, added)
		if !ok {
			e.subs.drop(name)
			continue
		}
		if deltas == nil {
			deltas = make(map[string]delta, len(subbed))
		}
		deltas[name] = delta{rem: rem, add: add, ok: true}
		e.subs.publish(name, v, new.version, rem, add)
	}
	if !ivmOn {
		return
	}

	c := &e.views
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != old.version || c.sets == nil {
		// Cold or already-stale cache: nothing warm to carry forward.
		return
	}
	for name, set := range c.sets {
		var rem, add []tuple.T
		ok := false
		if d, hit := deltas[name]; hit {
			rem, add, ok = d.rem, d.add, d.ok
		} else if v := e.sess.View(name); v != nil {
			rem, add, ok = viewDeltaFor(v, old, new, removed, added)
		}
		if !ok {
			// View dropped, redefined, or of a shape we cannot patch:
			// evict and let the next read rematerialize.
			delete(c.sets, name)
			obs.Inc("server.ivm.rebuild")
			continue
		}
		c.sets[name] = patchSet(set, rem, add)
		obs.Inc("server.ivm.patch")
	}
	c.version = new.version
	obs.SetGauge("server.viewcache.entries", int64(len(c.sets)))
	obs.SetGauge("server.viewcache.version", int64(c.version))
}

// viewDeltaFor computes the view-row delta of v across a publish from
// the net base delta. ok=false means v's shape cannot be maintained
// incrementally (the set must be rematerialized, and subscriptions
// cannot be served).
func viewDeltaFor(v view.View, old, new *snapshot, removed, added []tuple.T) (remRows, addRows []tuple.T, ok bool) {
	switch vv := v.(type) {
	case *view.SP:
		// The base key is the view key: removed/added base tuples map
		// (through the selection) one-to-one onto removed/added rows.
		base := vv.Base().Name()
		rem, add := tuple.NewSet(), tuple.NewSet()
		for _, t := range removed {
			if t.Relation().Name() != base {
				continue
			}
			if row, rok := vv.RowFor(t); rok {
				rem.Add(row)
			}
		}
		for _, t := range added {
			if t.Relation().Name() != base {
				continue
			}
			if row, rok := vv.RowFor(t); rok {
				add.Add(row)
			}
		}
		return rem.Slice(), add.Slice(), true
	case *view.Join:
		remSet, addSet := vv.DeltaForChange(old.db, new.db, removed, added)
		return remSet.Slice(), addSet.Slice(), true
	default:
		return nil, nil, false
	}
}

// patchSet applies a view-row delta copy-on-write: the input set is
// shared with readers and never mutated; an empty delta returns it
// unchanged.
func patchSet(set *tuple.Set, removedRows, addedRows []tuple.T) *tuple.Set {
	if len(removedRows) == 0 && len(addedRows) == 0 {
		return set
	}
	out := set.Clone()
	for _, row := range removedRows {
		out.Remove(row)
	}
	for _, row := range addedRows {
		out.Add(row)
	}
	return out
}

// netDelta folds a batch's translations (in apply order) into the net
// base change between the pre-batch and post-batch states: a tuple
// removed after being added earlier in the batch cancels out, and vice
// versa, so the result is exactly Diff(old, new) restricted to the
// touched relations — the contract Join.DeltaForChange expects.
func netDelta(landed []*update.Translation) (removed, added []tuple.T) {
	removedSet, addedSet := tuple.NewSet(), tuple.NewSet()
	for _, tr := range landed {
		for _, t := range tr.Removed().Slice() {
			if addedSet.Contains(t) {
				addedSet.Remove(t)
			} else {
				removedSet.Add(t)
			}
		}
		for _, t := range tr.Added().Slice() {
			if removedSet.Contains(t) {
				removedSet.Remove(t)
			} else {
				addedSet.Add(t)
			}
		}
	}
	return removedSet.Slice(), addedSet.Slice()
}
