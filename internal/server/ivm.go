package server

import (
	"viewupdate/internal/obs"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// This file is the serving side of incremental view maintenance: the
// commit pipeline knows exactly which base tuples each landed batch
// removed and added, so instead of letting a publish invalidate the
// view cache (making the next reader pay a full O(view)
// rematerialization), it patches every warm cached set with the batch's
// view delta. Readers share cached sets, so patching is copy-on-write:
// a patched entry is a fresh set and sets already handed out are never
// mutated.

// patchViewCache carries the view cache across a publish: given the
// snapshot that was current when commitBatch started, the snapshot just
// published, and the translations that landed between them (in apply
// order), it patches each warm cached set with the corresponding view
// delta and advances the cache to the new version. If the cache is cold
// or stale — or IVM is disabled — it does nothing and the cache
// invalidates implicitly as before.
//
// Called with stateMu held. Reading e.sess without sessMu is safe here:
// DDL mutation (ExecScript) requires sessMu AND stateMu, and we hold
// stateMu.
func (e *Engine) patchViewCache(old, new *snapshot, landed []*update.Translation) {
	if e.cfg.DisableIVM || len(landed) == 0 {
		return
	}
	removed, added := netDelta(landed)

	c := &e.views
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != old.version || c.sets == nil {
		// Cold or already-stale cache: nothing warm to carry forward.
		return
	}
	for name, set := range c.sets {
		v := e.sess.View(name)
		patched, ok := patchMaterialization(v, old, new, set, removed, added)
		if !ok {
			// View dropped, redefined, or of a shape we cannot patch:
			// evict and let the next read rematerialize.
			delete(c.sets, name)
			obs.Inc("server.ivm.rebuild")
			continue
		}
		c.sets[name] = patched
		obs.Inc("server.ivm.patch")
	}
	c.version = new.version
	obs.SetGauge("server.viewcache.entries", int64(len(c.sets)))
	obs.SetGauge("server.viewcache.version", int64(c.version))
}

// patchMaterialization computes the cached set of v at the new snapshot
// from its set at the old snapshot plus the net base delta. ok=false
// means the set cannot be patched and must be rematerialized.
func patchMaterialization(v view.View, old, new *snapshot, set *tuple.Set, removed, added []tuple.T) (*tuple.Set, bool) {
	switch vv := v.(type) {
	case *view.SP:
		// The base key is the view key: removed/added base tuples map
		// (through the selection) one-to-one onto removed/added rows.
		base := vv.Base().Name()
		removedRows, addedRows := tuple.NewSet(), tuple.NewSet()
		for _, t := range removed {
			if t.Relation().Name() != base {
				continue
			}
			if row, ok := vv.RowFor(t); ok {
				removedRows.Add(row)
			}
		}
		for _, t := range added {
			if t.Relation().Name() != base {
				continue
			}
			if row, ok := vv.RowFor(t); ok {
				addedRows.Add(row)
			}
		}
		return patchSet(set, removedRows, addedRows), true
	case *view.Join:
		removedRows, addedRows := vv.DeltaForChange(old.db, new.db, removed, added)
		return patchSet(set, removedRows, addedRows), true
	default:
		return nil, false
	}
}

// patchSet applies a view-row delta copy-on-write: the input set is
// shared with readers and never mutated; an empty delta returns it
// unchanged.
func patchSet(set *tuple.Set, removedRows, addedRows *tuple.Set) *tuple.Set {
	if removedRows.Len() == 0 && addedRows.Len() == 0 {
		return set
	}
	out := set.Clone()
	for _, row := range removedRows.Slice() {
		out.Remove(row)
	}
	for _, row := range addedRows.Slice() {
		out.Add(row)
	}
	return out
}

// netDelta folds a batch's translations (in apply order) into the net
// base change between the pre-batch and post-batch states: a tuple
// removed after being added earlier in the batch cancels out, and vice
// versa, so the result is exactly Diff(old, new) restricted to the
// touched relations — the contract Join.DeltaForChange expects.
func netDelta(landed []*update.Translation) (removed, added []tuple.T) {
	removedSet, addedSet := tuple.NewSet(), tuple.NewSet()
	for _, tr := range landed {
		for _, t := range tr.Removed().Slice() {
			if addedSet.Contains(t) {
				addedSet.Remove(t)
			} else {
				removedSet.Add(t)
			}
		}
		for _, t := range tr.Added().Slice() {
			if removedSet.Contains(t) {
				removedSet.Remove(t)
			} else {
				addedSet.Add(t)
			}
		}
	}
	return removedSet.Slice(), addedSet.Slice()
}
