package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/replica"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// The primary side of WAL-streaming replication. A durable engine owns
// a replica.Hub; every durable commit is framed and published to it in
// commit order, and /wal/stream serves attached followers from the
// hub's backlog (falling back to a disk scan of the WAL when a
// follower's resume point has aged off). /wal/snapshot serves the full
// state for bootstrap. See docs/REPLICATION.md.
//
// Feeding the hub differs by pipeline:
//
//   - Unsharded: persist.Store fires its onCommit hook under the store
//     lock, post-fsync, in commit order — the hub is wired directly.
//   - Sharded: commits become durable out of order (each shard fsyncs
//     independently), but the stream must carry them in sequence
//     order, and only once durable (the sharded engine publishes
//     snapshots before durability; streaming at publish time would
//     replicate state a crash could still lose). The walFeed below
//     registers every allocated seq in order (under stateMu) and the
//     acker resolves each to publish-or-skip; the feed drains the
//     resolved prefix to the hub, restoring order.

// heartbeatInterval is how often an otherwise idle source streams its
// watermark + wall clock, so followers can measure staleness and
// detect dead connections.
const heartbeatInterval = time.Second

// walGapFillRetries bounds the attach/gap-fill loop: each round serves
// the backlog shortfall from the WAL and retries the attach. More than
// a couple of rounds means a checkpoint is racing the stream; give up
// and let the follower reconnect (or re-bootstrap on 410).
const walGapFillRetries = 3

// A feedEntry is one allocated global seq awaiting its durability
// verdict.
type feedEntry struct {
	seq   uint64
	key   string
	tr    *update.Translation
	state feedState
}

type feedState uint8

const (
	feedPending feedState = iota
	feedPublish
	feedSkip
)

// A walFeed reorders the sharded pipeline's out-of-order durability
// notifications back into global sequence order for the hub. Every
// allocated seq is registered exactly once (in order — the sequencer
// holds stateMu across allocation and registration) and resolved
// exactly once: publish when the commit's durability conditions came
// true, skip when it failed (the seq is burned; followers never see
// it, exactly like recovery).
type walFeed struct {
	hub *replica.Hub

	mu        sync.Mutex
	pending   []feedEntry
	published uint64 // last seq offered to the hub (boot watermark at start)
}

func newWalFeed(hub *replica.Hub, boot uint64) *walFeed {
	return &walFeed{hub: hub, published: boot}
}

// register appends seq to the feed. Callers serialize in sequence
// order (the sequencer's stateMu, which also covers the synchronous
// script path).
func (f *walFeed) register(seq uint64, key string, tr *update.Translation) {
	f.mu.Lock()
	f.pending = append(f.pending, feedEntry{seq: seq, key: key, tr: tr})
	f.mu.Unlock()
}

// resolve delivers seq's verdict and drains the resolved prefix to the
// hub. Encoding happens here, off the sequencer's critical path, and
// only for commits that actually publish.
func (f *walFeed) resolve(seq uint64, publish bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.pending {
		if f.pending[i].seq == seq {
			if publish {
				f.pending[i].state = feedPublish
			} else {
				f.pending[i].state = feedSkip
			}
			break
		}
	}
	for len(f.pending) > 0 && f.pending[0].state != feedPending {
		ent := f.pending[0]
		f.pending = f.pending[1:]
		if ent.state == feedPublish {
			f.hub.Publish(wal.EncodeTranslationKeyed(ent.seq, ent.key, ent.tr))
			f.published = ent.seq
		}
	}
	if len(f.pending) == 0 {
		f.pending = nil
	}
}

// publishedSeq is the highest seq the feed has offered to the hub —
// the sharded engine's durable replication watermark.
func (f *walFeed) publishedSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.published
}

// replicationSeq is the watermark heartbeats carry: the highest commit
// a newly attached follower could have been streamed.
func (e *Engine) replicationSeq() uint64 {
	switch {
	case e.store != nil:
		return e.store.CommittedSeq()
	case e.repFeed != nil:
		return e.repFeed.publishedSeq()
	}
	return 0
}

// walSnapshotFloor is the seq below which stream resumption is
// impossible: records at or below it are folded into a snapshot.
func (e *Engine) walSnapshotFloor() uint64 {
	switch {
	case e.store != nil:
		return e.store.SnapshotSeq()
	case e.shst != nil:
		return e.shst.SnapshotSeq()
	}
	return 0
}

// walCommittedAfter reassembles committed records with seq > cursor
// from the WAL(s) on disk — the gap-fill path for followers whose
// resume point predates the hub's in-memory backlog.
func (e *Engine) walCommittedAfter(cursor uint64) ([]wal.Record, error) {
	if e.shst != nil {
		return e.shst.CommittedAfter(cursor)
	}
	res, err := wal.ScanFile(filepath.Join(e.store.Dir(), persist.WALFile))
	if err != nil {
		return nil, err
	}
	committed, _ := res.Committed()
	out := make([]wal.Record, 0, len(committed))
	for _, rec := range committed {
		if rec.Seq > cursor {
			out = append(out, rec)
		}
	}
	return out, nil
}

// runHeartbeats periodically streams the durable watermark to attached
// tails until the engine shuts down.
func (e *Engine) runHeartbeats() {
	t := time.NewTicker(heartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-e.hbStop:
			return
		case <-t.C:
			e.repHub.Heartbeat(e.replicationSeq())
		}
	}
}

// stopReplication shuts the replication source down: heartbeats stop
// and every attached tail is closed (followers see a clean end of
// stream and reconnect elsewhere or give up). Called once, after the
// pipeline drained.
func (e *Engine) stopReplication() {
	if e.repHub == nil {
		return
	}
	close(e.hbStop)
	e.repHub.Close()
}

// handleWalSnapshot serves the full state for follower bootstrap,
// stamped with the watermark the stream resumes from. The sharded
// pipeline publishes before durability, so it is quiesced first: the
// captured state is exactly the durable prefix, never ahead of it.
func (e *Engine) handleWalSnapshot(w http.ResponseWriter, r *http.Request) {
	if e.repHub == nil {
		writeJSON(w, http.StatusNotFound, errorReply{
			Error: "server: not a replication source (no durable store)", Code: "not_found"})
		return
	}
	e.stateMu.Lock()
	if e.shr != nil {
		e.shr.quiesce()
	}
	db := e.db.CloneShared()
	seq := e.replicationSeq()
	e.stateMu.Unlock()
	snap, err := persist.Capture(db)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorReply{Error: err.Error(), Code: "internal"})
		return
	}
	snap.Seq = seq
	obs.Inc("server.walstream.snapshots")
	writeJSON(w, http.StatusOK, snap)
}

// handleWalStream streams CRC-framed commit records with seq > from,
// in commit order, until the client disconnects or the engine drains.
// Resume points below the snapshot floor answer 410 (the follower must
// re-bootstrap); resume points behind the in-memory backlog are served
// from the WAL on disk first. Exempt from the per-request deadline.
func (e *Engine) handleWalStream(w http.ResponseWriter, r *http.Request) {
	if e.repHub == nil {
		writeJSON(w, http.StatusNotFound, errorReply{
			Error: "server: not a replication source (no durable store)", Code: "not_found"})
		return
	}
	from := uint64(0)
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorReply{
				Error: fmt.Sprintf("server: bad from=%q: %v", s, err), Code: "bad_request"})
			return
		}
		from = v
	}
	if floor := e.walSnapshotFloor(); from < floor {
		writeJSON(w, http.StatusGone, errorReply{
			Error: fmt.Sprintf("server: resume point %d predates snapshot floor %d; bootstrap from /wal/snapshot", from, floor),
			Code:  "snapshot_required"})
		return
	}
	flush := func() {}
	if fl, ok := w.(http.Flusher); ok {
		flush = fl.Flush
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	obs.Inc("server.walstream.opened")
	obs.AddGauge("server.walstream.streams", 1)
	defer obs.AddGauge("server.walstream.streams", -1)

	send := func(data []byte) bool {
		if _, err := w.Write(data); err != nil {
			return false
		}
		obs.Inc("server.walstream.frames")
		obs.Add("server.walstream.bytes", int64(len(data)))
		return true
	}

	cursor := from
	var tail *replica.Tail
	for attempt := 0; ; attempt++ {
		backlog, t, covered := e.repHub.Attach(cursor)
		if covered {
			tail = t
			for _, frame := range backlog {
				if !send(frame) {
					e.repHub.Detach(t)
					return
				}
			}
			break
		}
		if attempt >= walGapFillRetries {
			// A checkpoint keeps racing the catch-up; end the stream and
			// let the follower reconnect (it will see 410 and bootstrap).
			return
		}
		recs, err := e.walCommittedAfter(cursor)
		if err != nil {
			e.logf("walstream gap-fill failed", "err", err.Error())
			return
		}
		for _, rec := range recs {
			if rec.Seq <= cursor {
				continue
			}
			data, ferr := wal.Frame(rec)
			if ferr != nil {
				e.logf("walstream gap-fill frame failed", "err", ferr.Error())
				return
			}
			if !send(data) {
				return
			}
			cursor = rec.Seq
		}
		flush()
	}
	defer e.repHub.Detach(tail)
	flush()
	ctx := r.Context()
	for {
		select {
		case data, ok := <-tail.C:
			if !ok {
				return // shed (slow consumer) or engine shutdown
			}
			if !send(data) {
				return
			}
			// Drain whatever is already queued before paying one flush
			// for the lot.
			for drained := false; !drained; {
				select {
				case more, ok := <-tail.C:
					if !ok {
						flush()
						return
					}
					if !send(more) {
						return
					}
				default:
					drained = true
				}
			}
			flush()
		case <-ctx.Done():
			return
		}
	}
}
