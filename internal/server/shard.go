package server

import (
	"fmt"
	"sync"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/shard"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// The sharded commit pipeline. One sequencer goroutine owns every
// memory mutation (validation, global + per-shard apply, sequence
// allocation, snapshot publish) exactly like the unsharded committer —
// but journaling fans out: each shard runs its own committer goroutine
// draining a per-shard job queue into batched WAL appends, so N shards
// sustain N concurrent fsync streams. A commit is acknowledged by the
// acker goroutine only once every participant's records are durable,
// the cross-shard decision (if any) is durable, and every fence shard's
// durable watermark has caught up to the applied watermark observed at
// validation — the acked-implies-durable contract of docs/SHARDING.md.
//
// Read semantics: the snapshot is published at apply time, before the
// fsyncs land. Readers may observe state that is not yet durable; no
// client is ever ACKED such state. See docs/SHARDING.md.

// Job kinds on a shard's journal queue.
const (
	jobCommit   = iota // single-shard commit: translation(+key) + commit marker
	jobPrepare         // cross-shard participant slice: prepare record (fsynced)
	jobDecision        // cross-shard decision on the coordinator (fsynced)
	jobResolve         // lazy resolve marker (never fsynced)
)

type shardJob struct {
	kind  int
	seq   uint64
	key   string
	tr    *update.Translation // participant slice (jobCommit, jobPrepare)
	cross *crossCommit        // jobPrepare, jobDecision, jobResolve
}

// A crossCommit tracks one cross-shard commit through the two-phase
// journal protocol. All fields after coord/parts are guarded by the
// runtime's mu.
type crossCommit struct {
	xid     uint64
	coord   int
	parts   []int
	pending int   // prepare records not yet durable
	decided bool  // decision record durable on the coordinator
	err     error // 2PC failure (prepare append failure, injected fault)
}

// A pendingAck is a commit waiting for its durability conditions.
type pendingAck struct {
	r       *commitReq
	seq     uint64
	version uint64 // version assigned at apply; reported on ack
	parts   []int
	fence   []int
	need    []uint64 // per fence shard: durable watermark required
	cross   *crossCommit
	start   time.Time // set when tracing: jobs enqueued
}

// A shardQueue is an unbounded FIFO of journal jobs for one shard.
// Unbounded is safe: admission control bounds commits upstream, and
// committers enqueue follow-up jobs (decisions, resolves) to each
// other — a bounded queue there could deadlock the fleet.
type shardQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*shardJob
	closed bool
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *shardQueue) put(jobs ...*shardJob) {
	q.mu.Lock()
	q.jobs = append(q.jobs, jobs...)
	q.mu.Unlock()
	q.cond.Signal()
}

// take blocks for at least one job and returns up to max, or nil when
// the queue is closed and empty.
func (q *shardQueue) take(max int) []*shardJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return nil
	}
	n := len(q.jobs)
	if n > max {
		n = max
	}
	out := q.jobs[:n:n]
	q.jobs = q.jobs[n:]
	return out
}

func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *shardQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// shardRuntime is the engine's sharded pipeline state.
type shardRuntime struct {
	e  *Engine
	st *shard.Store
	n  int

	queues []*shardQueue

	mu          sync.Mutex
	cond        *sync.Cond
	applied     []uint64 // highest global seq applied to each shard's memory
	durable     []uint64 // highest global seq durably journaled per shard
	failed      []error  // journaling failure per shard (mirrors store broken state)
	outstanding int      // enqueued jobs not yet durable (or failed)
	acks        []*pendingAck
	seqClosed   bool // sequencer has drained; no more commits will register

	ackerDone chan struct{}
	wg        sync.WaitGroup

	// Preformatted per-shard metric names, so the hot path never
	// builds strings.
	gQueue    []string
	gDurable  []string
	cCommit   []string
	gInflight string
}

func newShardRuntime(e *Engine, st *shard.Store) *shardRuntime {
	n := st.N()
	sr := &shardRuntime{
		e: e, st: st, n: n,
		queues:    make([]*shardQueue, n),
		applied:   make([]uint64, n),
		durable:   make([]uint64, n),
		failed:    make([]error, n),
		ackerDone: make(chan struct{}),
		gQueue:    make([]string, n),
		gDurable:  make([]string, n),
		cCommit:   make([]string, n),
		gInflight: "server.shard.inflight",
	}
	sr.cond = sync.NewCond(&sr.mu)
	// Everything recovery replayed is durable by construction.
	for i := 0; i < n; i++ {
		sr.applied[i] = st.Seq()
		sr.durable[i] = st.Seq()
		sr.queues[i] = newShardQueue()
		sr.gQueue[i] = fmt.Sprintf("server.shard.%d.queue_depth", i)
		sr.gDurable[i] = fmt.Sprintf("server.shard.%d.version", i)
		sr.cCommit[i] = fmt.Sprintf("server.shard.%d.committed", i)
	}
	return sr
}

// start launches the per-shard committers and the acker.
func (sr *shardRuntime) start() {
	for i := 0; i < sr.n; i++ {
		sr.wg.Add(1)
		go sr.runShardCommitter(i)
	}
	go sr.runAcker()
}

// runShardSequencer is the sharded twin of runCommitter: same batching
// over the admission queue, but commits are journaled asynchronously
// per shard instead of through one store append.
func (e *Engine) runShardSequencer() {
	sr := e.shr
	defer func() {
		// All commits are applied and their jobs enqueued; wait for the
		// acker to see the fleet settle, then stop the committers.
		sr.mu.Lock()
		sr.seqClosed = true
		sr.mu.Unlock()
		sr.cond.Broadcast()
		<-sr.ackerDone
		for _, q := range sr.queues {
			q.close()
		}
		sr.wg.Wait()
		close(e.drained)
	}()
	b := newBatcher(e.commitC, e.cfg.MaxBatch, e.cfg.batchDelay(), realClock{})
	for {
		batch, more := b.next()
		if len(batch) > 0 {
			sr.commitBatch(batch)
		}
		if !more {
			return
		}
	}
}

// commitBatch applies one batch to memory, publishes the snapshot, and
// fans the journal work out to the shard committers. Waiters are NOT
// answered here — the acker answers them when durability is reached.
func (sr *shardRuntime) commitBatch(batch []*commitReq) {
	e := sr.e
	sp := obs.StartSpan("server.commit.batch")
	defer sp.End()
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	obs.Inc("server.commit.batches")
	obs.Observe("server.commit.batch_size", int64(len(batch)))
	obs.SetGauge("server.commit.queue_depth", int64(len(e.commitC)))

	timed := obs.Enabled()
	if timed {
		now := time.Now()
		for _, r := range batch {
			if r.trace != nil {
				wait := now.Sub(r.enqueued)
				r.trace.Stage("queue", wait)
				obs.Observe(stageQueueNS, int64(wait))
			}
		}
	}

	if ferr := faultinject.Hit(faultinject.SiteServerCommit); ferr != nil {
		err := fmt.Errorf("server: commit pipeline: %w", ferr)
		e.brk.onFailure(err)
		for _, r := range batch {
			e.releaseKey(r)
			r.done <- commitRes{err: err}
		}
		return
	}

	oldSnap := e.snap.Load()
	version := oldSnap.version

	// Strict admission, identical to the unsharded pipeline.
	var admitted []*commitReq
	var rest []*commitReq
	predicted := version
	for _, r := range batch {
		if !r.strict {
			rest = append(rest, r)
			continue
		}
		if r.baseVersion != predicted {
			obs.Inc("server.commit.conflict")
			e.releaseKey(r)
			r.done <- commitRes{err: fmt.Errorf("%w: database moved from version %d to %d since BEGIN",
				ErrConflict, r.baseVersion, predicted)}
			continue
		}
		admitted = append(admitted, r)
		predicted++
	}
	admitted = append(admitted, rest...)
	if len(admitted) == 0 {
		return
	}

	var commitStart time.Time
	if timed {
		commitStart = time.Now()
	}
	landed := 0
	var landedTrs []*update.Translation
	for _, r := range admitted {
		route, err := shard.Classify(sr.st.Map(), e.db.Schema(), r.tr)
		if err == nil {
			err = e.db.Apply(r.tr)
		}
		if err != nil {
			e.releaseKey(r)
			e.brk.onFailure(err)
			r.done <- commitRes{err: classifyApplyError(err)}
			continue
		}
		for _, p := range route.Participants {
			if aerr := sr.st.ShardDB(p).Apply(route.Parts[p]); aerr != nil {
				// Cannot happen once the global apply passed (the shard
				// schema checks strictly less); record the divergence.
				sr.st.MarkBroken(p, fmt.Errorf("shard %d: partition diverged: %w", p, aerr))
			}
		}
		seq := sr.st.NextSeq()
		version++
		landed++
		landedTrs = append(landedTrs, r.tr)
		if e.repFeed != nil {
			// Register with the replication feed in allocation order
			// (stateMu is held); the acker resolves publish-or-skip once
			// the commit's durability verdict is in.
			e.repFeed.register(seq, r.key, r.tr)
		}
		// Everything the job loop below needs from the pooled request
		// must be copied out before the ack is published: once it is in
		// sr.acks the acker may answer it (e.g. a shard already failed)
		// and the waiter recycles r immediately.
		key := r.key
		ack := &pendingAck{r: r, seq: seq, version: version,
			parts: route.Participants, fence: route.Fence}
		if timed {
			ack.start = time.Now()
		}
		var cross *crossCommit
		if route.Cross() {
			cross = &crossCommit{xid: seq, coord: route.Home(),
				parts: route.Participants, pending: len(route.Participants)}
			ack.cross = cross
			obs.Inc("server.cross.commits")
		}
		if len(route.Fence) > 0 {
			obs.Inc("server.cross.fenced")
		}
		// Snapshot fence requirements and advance applied watermarks
		// before the jobs exist, so no committer can observe the new
		// seq without the bookkeeping.
		sr.mu.Lock()
		for _, f := range route.Fence {
			ack.need = append(ack.need, sr.applied[f])
		}
		for _, p := range route.Participants {
			if sr.applied[p] < seq {
				sr.applied[p] = seq
			}
		}
		sr.outstanding += len(route.Participants)
		sr.acks = append(sr.acks, ack)
		sr.mu.Unlock()
		for _, p := range route.Participants {
			j := &shardJob{seq: seq, tr: route.Parts[p], cross: cross}
			if cross != nil {
				j.kind = jobPrepare
			} else {
				j.kind = jobCommit
			}
			if p == route.Participants[0] {
				j.key = key // idempotency key rides the home shard's record
			}
			sr.queues[p].put(j)
		}
	}
	if landed == 0 {
		return
	}
	// Publish-before-durable: readers may see this state now; no waiter
	// is answered until the fsyncs land. The publish failpoint stays for
	// chaos kill triggers.
	if ferr := faultinject.Hit(faultinject.SiteServerPublish); ferr != nil {
		e.logf("ignoring injected publish fault (batch already applied)", "err", ferr.Error())
	}
	e.publishSnapshot(version)
	e.patchViewCache(oldSnap, e.snap.Load(), landedTrs)
	obs.Add("server.commit.committed", int64(landed))
	if timed {
		obs.Observe(stageCommitNS, int64(time.Since(commitStart)))
	}
	sr.cond.Broadcast()
}

// runShardCommitter drains shard i's job queue into batched WAL
// appends: one write and at most one fsync per batch, independent of
// every other shard's committer. This is where the N-way fsync
// parallelism lives.
func (sr *shardRuntime) runShardCommitter(i int) {
	defer sr.wg.Done()
	q := sr.queues[i]
	for {
		jobs := q.take(sr.e.cfg.MaxBatch)
		if jobs == nil {
			return
		}
		recs := make([]wal.Record, 0, len(jobs)*2)
		var maxSeq uint64
		var prepared, decided []*crossCommit
		for _, j := range jobs {
			switch j.kind {
			case jobCommit:
				recs = append(recs, wal.EncodeTranslationKeyed(j.seq, j.key, j.tr), wal.CommitRecord(j.seq))
				if j.seq > maxSeq {
					maxSeq = j.seq
				}
			case jobPrepare:
				recs = append(recs, wal.PrepareRecord(j.seq, j.key, j.cross.coord, j.tr))
				prepared = append(prepared, j.cross)
				if j.seq > maxSeq {
					maxSeq = j.seq
				}
			case jobDecision:
				recs = append(recs, wal.DecisionRecord(j.seq))
				decided = append(decided, j.cross)
			case jobResolve:
				recs = append(recs, wal.ResolveRecord(j.seq))
			}
		}
		stats, err := sr.st.AppendBatch(i, recs)
		if err != nil {
			sr.failShard(i, err, jobs)
			continue
		}
		if obs.Enabled() && stats.Synced {
			obs.Observe(stageFsyncNS, stats.SyncNS)
		}
		sr.mu.Lock()
		if maxSeq > sr.durable[i] {
			sr.durable[i] = maxSeq
		}
		sr.outstanding -= len(jobs)
		obs.SetGauge(sr.gDurable[i], int64(sr.durable[i]))
		obs.SetGauge(sr.gInflight, int64(sr.outstanding))
		sr.mu.Unlock()
		obs.SetGauge(sr.gQueue[i], int64(q.depth()))

		// Prepares this batch made durable: the last participant to land
		// crosses the prepare barrier and hands the decision to the
		// coordinator. The failpoint between the two is the presumed-
		// abort crash window.
		for _, c := range prepared {
			sr.mu.Lock()
			c.pending--
			ready := c.pending == 0 && c.err == nil
			sr.mu.Unlock()
			if !ready {
				continue
			}
			obs.Inc("shard.cross.prepared")
			if ferr := faultinject.Hit(faultinject.SiteShardPrepare); ferr != nil {
				sr.mu.Lock()
				c.err = fmt.Errorf("%w: cross-shard prepare window: %w", persist.ErrNotDurable, ferr)
				sr.mu.Unlock()
				sr.e.brk.onFailure(ferr)
				continue
			}
			sr.mu.Lock()
			sr.outstanding++
			sr.mu.Unlock()
			sr.queues[c.coord].put(&shardJob{kind: jobDecision, seq: c.xid, cross: c})
		}
		// Decisions this batch made durable: the commits are now
		// irrevocable. Resolve markers let each participant settle its
		// prepare locally at the next recovery; they are lazy (no sync).
		for _, c := range decided {
			obs.Inc("shard.cross.decided")
			_ = faultinject.Hit(faultinject.SiteShardDecision) // errors ignored: decided is decided
			sr.mu.Lock()
			c.decided = true
			sr.outstanding += len(c.parts)
			sr.mu.Unlock()
			for _, p := range c.parts {
				sr.queues[p].put(&shardJob{kind: jobResolve, seq: c.xid, cross: c})
			}
		}
		sr.cond.Broadcast()
	}
}

// failShard records a journaling failure: the shard's memory is ahead
// of its media and only a restart reconciles them. Every job in the
// failed batch is accounted, affected cross commits are poisoned, and
// the breaker pushes the engine into brownout.
func (sr *shardRuntime) failShard(i int, err error, jobs []*shardJob) {
	sr.e.brk.onFailure(err)
	sr.e.logf("shard journaling failed", "shard", i, "err", err.Error())
	sr.mu.Lock()
	if sr.failed[i] == nil {
		sr.failed[i] = err
	}
	sr.outstanding -= len(jobs)
	for _, j := range jobs {
		if j.cross != nil && j.cross.err == nil {
			j.cross.err = err
		}
	}
	sr.mu.Unlock()
	sr.cond.Broadcast()
}

// runAcker answers waiters as their durability conditions come true:
// participants durable past the commit's seq, decision durable for
// cross-shard commits, fence shards durable past the applied watermark
// observed at validation.
func (sr *shardRuntime) runAcker() {
	defer close(sr.ackerDone)
	e := sr.e
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for {
		kept := sr.acks[:0]
		for _, a := range sr.acks {
			switch sr.ackStateLocked(a) {
			case ackReady:
				home := a.parts[0]
				if a.r.key != "" {
					e.idem.fulfill(a.r.key, a.version)
					e.idem.aliasFulfilled(shardIdemKey(home, a.r.key), a.r.key)
				}
				if a.r.trace != nil {
					a.r.trace.Stage("fsync", time.Since(a.start))
				}
				obs.Inc(sr.cCommit[home])
				if e.repFeed != nil {
					// Durable everywhere it matters: release the commit to
					// the replication stream (the feed restores seq order).
					e.repFeed.resolve(a.seq, true)
				}
				a.r.done <- commitRes{version: a.version}
			case ackFailed:
				err := sr.ackErrLocked(a)
				e.releaseKey(a.r)
				if e.repFeed != nil {
					// The seq is burned; unblock the feed without publishing.
					e.repFeed.resolve(a.seq, false)
				}
				a.r.done <- commitRes{err: classifyApplyError(err)}
			default:
				kept = append(kept, a)
			}
		}
		sr.acks = kept
		if sr.seqClosed && len(sr.acks) == 0 && sr.outstanding == 0 {
			return
		}
		sr.cond.Wait()
	}
}

const (
	ackWaiting = iota
	ackReady
	ackFailed
)

// ackStateLocked evaluates one pending ack. Callers hold sr.mu.
func (sr *shardRuntime) ackStateLocked(a *pendingAck) int {
	if a.cross != nil && a.cross.err != nil {
		return ackFailed
	}
	for _, p := range a.parts {
		if sr.failed[p] != nil {
			return ackFailed
		}
	}
	for _, f := range a.fence {
		if sr.failed[f] != nil {
			return ackFailed
		}
	}
	for _, p := range a.parts {
		if sr.durable[p] < a.seq {
			return ackWaiting
		}
	}
	if a.cross != nil && !a.cross.decided {
		return ackWaiting
	}
	for k, f := range a.fence {
		if sr.durable[f] < a.need[k] {
			return ackWaiting
		}
	}
	return ackReady
}

func (sr *shardRuntime) ackErrLocked(a *pendingAck) error {
	if a.cross != nil && a.cross.err != nil {
		return a.cross.err
	}
	for _, p := range a.parts {
		if sr.failed[p] != nil {
			return fmt.Errorf("%w: shard %d: %w", persist.ErrNotDurable, p, sr.failed[p])
		}
	}
	for _, f := range a.fence {
		if sr.failed[f] != nil {
			return fmt.Errorf("%w: fence shard %d: %w", persist.ErrNotDurable, f, sr.failed[f])
		}
	}
	return persist.ErrNotDurable
}

// quiesce blocks until every enqueued journal job has settled and every
// waiter is answered. Callers hold stateMu (blocking the sequencer), so
// no new work can enter while waiting. Used by the DDL checkpoint hook.
func (sr *shardRuntime) quiesce() {
	sr.mu.Lock()
	for sr.outstanding > 0 || len(sr.acks) > 0 {
		sr.cond.Wait()
	}
	sr.mu.Unlock()
}

// DurableVersions returns a snapshot of the per-shard durable
// watermarks — the shard version vector exposed by /healthz.
func (sr *shardRuntime) DurableVersions() []uint64 {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]uint64, sr.n)
	copy(out, sr.durable)
	return out
}

// shardIdemKey is the shard-scoped form of an idempotency key: the
// dedup table records each landed key under both its raw name (the
// pre-translation fast path — handlers reserve before the home shard is
// known) and this scoped alias (what per-shard WAL recovery can
// rebuild). Both names share one entry.
func shardIdemKey(shard int, key string) string {
	return fmt.Sprintf("s%d\x00%s", shard, key)
}

// shardSchemaChanged is the session's DDL hook in sharded mode: drain
// the pipelines, absorb the new relation into every shard, and fold the
// WALs into fresh snapshots + manifest (which now carries the new
// inclusion dependencies). Runs with stateMu held by ExecScript — or
// before the runtime exists, during the boot init script.
func (e *Engine) shardSchemaChanged() error {
	if e.shr != nil {
		e.shr.quiesce()
	}
	if err := e.shst.SyncSchema(); err != nil {
		return err
	}
	return e.shst.Checkpoint()
}

// applyShardDirect is the session's durable applier in sharded mode:
// the synchronous path for script statements (vupdate scripts, admin
// ExecScript), serialized by stateMu at the session boundary.
func (e *Engine) applyShardDirect(tr *update.Translation) error {
	return e.shst.Apply(tr)
}

// preregisterShardMetrics extends the metric schema with the per-shard
// and cross-shard families, so scrapes see them from the first poll.
func (e *Engine) preregisterShardMetrics() {
	s := obs.Active()
	if s == nil || e.shr == nil {
		return
	}
	reg := s.Metrics()
	for _, c := range []string{
		"server.cross.commits", "server.cross.fenced",
		"shard.cross.prepared", "shard.cross.decided",
		"shard.store.recovered", "shard.store.replayed",
		"shard.store.checkpoint", "shard.store.broken", "shard.store.orphans_pruned",
	} {
		reg.Counter(c)
	}
	reg.Gauge(e.shr.gInflight)
	for i := 0; i < e.shr.n; i++ {
		reg.Gauge(e.shr.gQueue[i])
		reg.Gauge(e.shr.gDurable[i])
		reg.Counter(e.shr.cCommit[i])
	}
}
