package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/replica"
	"viewupdate/internal/update"
)

// Follower mode (Config.Follow): the engine serves the same read API —
// snapshot-isolated view reads through the same IVM-patched view
// cache, /subscribe streams, /metrics — but its state is a replica of
// a source engine's, replayed commit by commit from the source's WAL
// stream. The write API answers ErrReadOnly; the group-commit pipeline
// never starts. A durable follower (Config.Dir set) is itself a
// replication source — its store feeds a hub exactly like a primary's
// — so followers cascade. See docs/REPLICATION.md.

// ErrReadOnly marks a write against a follower: the view-update API
// only accepts writes on the primary.
var ErrReadOnly = errors.New("server: read-only follower (writes go to the primary)")

// openFollower bootstraps (or recovers) the follower's state and wires
// the session read-only. Called from NewEngine in place of the store
// branches.
func (e *Engine) openFollower() error {
	f, err := replica.Open(context.Background(), replica.Config{
		Primary: e.cfg.Follow,
		Dir:     e.cfg.Dir,
		Sync:    e.cfg.Sync,
		Logger:  e.cfg.Logger,
	})
	if err != nil {
		return fmt.Errorf("server: opening follower of %s: %w", e.cfg.Follow, err)
	}
	e.fol = f
	if err := e.sess.AdoptRecovered(f.DB()); err != nil {
		f.Close()
		return err
	}
	// DML through the session (scripts, init INSERTs) is refused: the
	// only writer of a follower's state is the replication stream.
	e.sess.SetApplier(func(*update.Translation) error { return ErrReadOnly })
	// A durable follower exposes its store as THE engine store: the
	// idempotency replay, the replication-source hub (cascading), the
	// drain checkpoint and Health all key off e.store and work
	// unchanged. Memory-only followers leave it nil (and serve 404 on
	// /wal/stream — nothing durable to resume from).
	e.store = f.Store()
	return nil
}

// runReplicator is the follower's counterpart of runCommitter: it owns
// every mutation of the live database, each one a replayed source
// commit delivered by the replica.Follower. A fatal replication error
// (divergence — the source ran DDL, or demanded a re-bootstrap) is
// recorded for Health and the engine degrades to serving its last
// replicated state.
func (e *Engine) runReplicator(ctx context.Context) {
	defer close(e.drained)
	err := e.fol.Run(ctx, e.applyReplicated)
	if err != nil && ctx.Err() == nil {
		e.folMu.Lock()
		e.folFatal = err
		e.folMu.Unlock()
		e.logf("replication stream failed; serving last replicated state", "err", err.Error())
	}
}

// applyReplicated lands one replicated commit under the same stateMu
// discipline as commitBatch: apply (durably, when the follower is),
// publish a fresh snapshot, and patch the warm view cache with the
// commit's O(delta) view changes — a steady-state follower
// rematerializes nothing. Lag gauges update on every commit; the
// wall-clock histogram only for live-streamed records (TS is zero on
// gap-fill replays, whose encode time was long ago).
func (e *Engine) applyReplicated(c replica.Commit) error {
	e.stateMu.Lock()
	if err := e.fol.Apply(c); err != nil {
		e.stateMu.Unlock()
		return err
	}
	oldSnap := e.snap.Load()
	e.publishSnapshot(oldSnap.version + 1)
	e.patchViewCache(oldSnap, e.snap.Load(), []*update.Translation{c.Tr})
	e.stateMu.Unlock()
	if c.Key != "" {
		// Keep the dedup table current so a promotion (or a client that
		// failed over mid-retry) still recognizes fulfilled keys.
		e.idem.seed(c.Key, 0)
	}
	obs.SetGauge("server.replica.applied_seq", int64(c.Seq))
	lag := int64(0)
	if src := e.fol.SourceSeq(); src > c.Seq {
		lag = int64(src - c.Seq)
	}
	obs.SetGauge("server.replica.lag_seq", lag)
	if c.TS > 0 {
		ns := time.Now().UnixNano() - c.TS
		if ns < 0 {
			ns = 0
		}
		obs.SetGauge("server.replica.lag_ns", ns)
		obs.Observe("server.replica.lag.ns", ns)
	}
	return nil
}
