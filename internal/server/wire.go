package server

import (
	"fmt"
	"strconv"

	"viewupdate/internal/core"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// updateBody is the JSON body of insert/delete/replace requests, both
// single-shot and inside a transaction. Values travel as plain strings
// and are parsed against the view schema's domains.
type updateBody struct {
	// Values are the positional row values of an insert.
	Values []string `json:"values,omitempty"`
	// Where selects the single target row of a delete or replace by
	// attribute equality.
	Where map[string]string `json:"where,omitempty"`
	// Set holds the attribute assignments of a replace.
	Set map[string]string `json:"set,omitempty"`
	// Prefer overrides the view's policy with a class preference order
	// for this request (wire-level translator selection).
	Prefer []string `json:"prefer,omitempty"`
}

// updateReply is the JSON response of a landed view update.
type updateReply struct {
	OK          bool     `json:"ok"`
	Class       string   `json:"class,omitempty"`
	Ops         []string `json:"ops,omitempty"`
	SideEffects string   `json:"side_effects,omitempty"`
	Version     uint64   `json:"version"`
	Staged      bool     `json:"staged,omitempty"` // true inside a transaction
	// Duplicate marks an idempotent replay: this request's key matched
	// an already-landed commit, nothing was applied again, and the
	// reply carries the original outcome. Replayed further marks keys
	// recovered from the WAL after a crash, whose reply detail (class,
	// exact version) did not survive the dead process.
	Duplicate bool `json:"duplicate,omitempty"`
	Replayed  bool `json:"replayed,omitempty"`
}

// errorReply is the JSON error envelope.
type errorReply struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// rowsReply is the JSON response of a view read.
type rowsReply struct {
	View    string     `json:"view"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Count   int        `json:"count"`
	Version uint64     `json:"version"`
}

// txReply carries transaction lifecycle results.
type txReply struct {
	Token     string `json:"token,omitempty"`
	Committed int    `json:"committed,omitempty"`
	Version   uint64 `json:"version,omitempty"`
	OK        bool   `json:"ok"`
}

// execBody and execReply are the admin script endpoint's wire forms.
type execBody struct {
	Script string `json:"script"`
}

type execReply struct {
	Output string `json:"output"`
	OK     bool   `json:"ok"`
}

// parseValue interprets a wire string as a value of the attribute's
// domain: integers and booleans by their literal form, everything else
// as a string. The parsed value must belong to the domain.
func parseValue(attr schema.Attribute, s string) (value.Value, error) {
	var v value.Value
	switch attr.Domain.Kind() {
	case value.Int:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("server: %s wants an integer, got %q", attr.Name, s)
		}
		v = value.NewInt(i)
	case value.Bool:
		switch s {
		case "true":
			v = value.NewBool(true)
		case "false":
			v = value.NewBool(false)
		default:
			return value.Value{}, fmt.Errorf("server: %s wants true|false, got %q", attr.Name, s)
		}
	default:
		v = value.NewString(s)
	}
	if !attr.Domain.Contains(v) {
		return value.Value{}, fmt.Errorf("server: %s outside domain %s of %s", s, attr.Domain.Name(), attr.Name)
	}
	return v, nil
}

// parseRow builds a view tuple from positional wire strings.
func parseRow(rel *schema.Relation, vals []string) (tuple.T, error) {
	if len(vals) != rel.Arity() {
		return tuple.T{}, fmt.Errorf("server: %s takes %d values, got %d", rel.Name(), rel.Arity(), len(vals))
	}
	parsed := make([]value.Value, len(vals))
	for i, a := range rel.Attributes() {
		v, err := parseValue(a, vals[i])
		if err != nil {
			return tuple.T{}, err
		}
		parsed[i] = v
	}
	return tuple.New(rel, parsed...)
}

// parseEq parses a wire equality map against the view schema.
func parseEq(rel *schema.Relation, m map[string]string) (map[string]value.Value, error) {
	out := make(map[string]value.Value, len(m))
	for name, s := range m {
		a, ok := rel.Attribute(name)
		if !ok {
			return nil, fmt.Errorf("server: %s has no attribute %s", rel.Name(), name)
		}
		v, err := parseValue(a, s)
		if err != nil {
			return nil, err
		}
		out[name] = v
	}
	return out, nil
}

// matchEq reports whether the row satisfies every equality.
func matchEq(row tuple.T, eq map[string]value.Value) bool {
	for name, want := range eq {
		got, ok := row.Get(name)
		if !ok || got != want {
			return false
		}
	}
	return true
}

// uniqueRow finds the single view row of rows matching the equalities,
// mirroring the sqlish session's single-tuple request discipline.
func uniqueRow(v view.View, rows *tuple.Set, eq map[string]value.Value) (tuple.T, error) {
	if len(eq) == 0 {
		return tuple.T{}, fmt.Errorf("server: where clause required")
	}
	var match tuple.T
	n := 0
	for _, row := range rows.Slice() {
		if matchEq(row, eq) {
			match = row
			n++
		}
	}
	switch n {
	case 0:
		return tuple.T{}, fmt.Errorf("server: no row of %s matches", v.Name())
	case 1:
		return match, nil
	default:
		return tuple.T{}, fmt.Errorf("server: %d rows of %s match; requests are single-tuple — refine the where clause", n, v.Name())
	}
}

// buildRequest converts a wire update body of the given kind into a
// core.Request builder, evaluated against whichever state (published
// snapshot or staged transaction overlay) the caller supplies. Row
// resolution for delete/replace goes through the engine's view cache
// when the supplied state is the published snapshot.
func (e *Engine) buildRequest(kind update.Kind, body updateBody) func(view.View, storage.Source) (core.Request, error) {
	return func(v view.View, src storage.Source) (core.Request, error) {
		switch kind {
		case update.Insert:
			t, err := parseRow(v.Schema(), body.Values)
			if err != nil {
				return core.Request{}, err
			}
			return core.InsertRequest(t), nil
		case update.Delete:
			eq, err := parseEq(v.Schema(), body.Where)
			if err != nil {
				return core.Request{}, err
			}
			row, err := uniqueRow(v, e.materializeOn(v, src), eq)
			if err != nil {
				return core.Request{}, err
			}
			return core.DeleteRequest(row), nil
		case update.Replace:
			if len(body.Set) == 0 {
				return core.Request{}, fmt.Errorf("server: replace needs a set clause")
			}
			eq, err := parseEq(v.Schema(), body.Where)
			if err != nil {
				return core.Request{}, err
			}
			row, err := uniqueRow(v, e.materializeOn(v, src), eq)
			if err != nil {
				return core.Request{}, err
			}
			sets, err := parseEq(v.Schema(), body.Set)
			if err != nil {
				return core.Request{}, err
			}
			newRow := row
			for name, val := range sets {
				newRow, err = newRow.With(name, val)
				if err != nil {
					return core.Request{}, err
				}
			}
			return core.ReplaceRequest(row, newRow), nil
		default:
			return core.Request{}, fmt.Errorf("server: unsupported update kind %v", kind)
		}
	}
}

// renderOps renders a translation's operations for the wire.
func renderOps(tr *update.Translation) []string {
	ops := tr.Ops()
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.String()
	}
	return out
}

// renderRows renders a materialized view row set (optionally filtered
// by equalities) into the wire row format.
func renderRows(v view.View, set *tuple.Set, eq map[string]value.Value) ([][]string, []string) {
	cols := v.Schema().AttributeNames()
	var rows [][]string
	for _, row := range set.Slice() {
		if len(eq) > 0 && !matchEq(row, eq) {
			continue
		}
		cells := make([]string, len(cols))
		for i, c := range cols {
			val, _ := row.Get(c)
			cells[i] = wireString(val)
		}
		rows = append(rows, cells)
	}
	return rows, cols
}

// wireString renders a value for the wire in the same plain form
// parseValue accepts (no quotes around strings).
func wireString(v value.Value) string {
	switch v.Kind() {
	case value.Int:
		return strconv.FormatInt(v.Int(), 10)
	case value.Bool:
		return strconv.FormatBool(v.Bool())
	case value.String:
		return v.Str()
	default:
		return v.String()
	}
}
