package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newFollowerEngine opens a follower of the source URL, closing it at
// test end.
func newFollowerEngine(t *testing.T, dir, source string, mut func(*Config)) *Engine {
	t.Helper()
	cfg := Config{Dir: dir, Follow: source, MaxInFlight: 16, RequestTimeout: 5 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	e, err := NewEngine(cfg, testScript)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// followerRows counts the follower's NY view rows.
func followerRows(t *testing.T, f *Engine) int {
	t.Helper()
	set, _, err := f.ReadView("NY")
	if err != nil {
		t.Fatal(err)
	}
	return set.Len()
}

// TestFollowerEndToEnd: a durable follower bootstraps from the
// primary's snapshot, replays its live commits into the same view
// state, refuses writes, reports follower health, and maintains its
// warm view cache by O(delta) patching rather than rebuilds.
func TestFollowerEndToEnd(t *testing.T) {
	sink := metricsSink(t)
	p := newTestEngine(t, t.TempDir(), nil)
	srv := httptest.NewServer(NewHandler(p))
	t.Cleanup(srv.Close)

	for k := 1; k <= 10; k++ {
		if err := insertKey(p, k); err != nil {
			t.Fatal(err)
		}
	}
	f := newFollowerEngine(t, t.TempDir(), srv.URL, nil)
	fsrv := httptest.NewServer(NewHandler(f))
	t.Cleanup(fsrv.Close)
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool { return followerRows(t, f) == 10 })

	// Writes are refused at every entry point.
	var errReply errorReply
	if code := doJSON(t, "POST", fsrv.URL+"/views/NY/insert",
		map[string]any{"values": []string{"99", "NY"}}, &errReply); code != http.StatusForbidden {
		t.Fatalf("follower insert status = %d (%+v), want 403", code, errReply)
	}
	if errReply.Code != "read_only" {
		t.Fatalf("follower insert code = %q, want read_only", errReply.Code)
	}
	if _, err := f.BeginTx(); err == nil {
		t.Fatal("follower BeginTx succeeded, want ErrReadOnly")
	}

	// Health: roles on both sides, replica block on the follower.
	h := f.Health()
	if h.Role != "follower" || h.Replica == nil || !h.Replica.Durable {
		t.Fatalf("follower health = %+v", h)
	}
	if h.Replica.AppliedSeq == 0 || h.Replica.Primary != srv.URL {
		t.Fatalf("follower replica block = %+v", h.Replica)
	}
	waitUntil(t, 5*time.Second, "follower readiness", func() bool { return f.Ready() })
	ph := p.Health()
	if ph.Role != "primary" || ph.WalStreamTails != 1 {
		t.Fatalf("primary health role=%q tails=%d, want primary/1", ph.Role, ph.WalStreamTails)
	}

	// Steady state: the follower's warm cache is patched per replicated
	// commit, not rebuilt. (The primary shares the sink; its translate
	// path also patches a warm cache, so rebuilds staying ~flat while
	// patches grow is the follower-side O(delta) signal.)
	snap := sink.Metrics().Snapshot()
	rebuildBefore, patchBefore := snap.Counters["server.ivm.rebuild"], snap.Counters["server.ivm.patch"]
	for k := 11; k <= 30; k++ {
		if err := insertKey(p, k); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 5*time.Second, "follower second catch-up", func() bool { return followerRows(t, f) == 30 })
	snap = sink.Metrics().Snapshot()
	if d := snap.Counters["server.ivm.rebuild"] - rebuildBefore; d > 2 {
		t.Fatalf("steady-state rebuilds = %d, want ~0", d)
	}
	if d := snap.Counters["server.ivm.patch"] - patchBefore; d < 20 {
		t.Fatalf("steady-state patches = %d, want >= 20", d)
	}
}

// TestFollowerResumeAndGapFill: a durable follower that stopped
// resumes from its recovered watermark — across a primary crash —
// without re-bootstrapping or double-applying; the commits its resume
// point trails the restarted primary's in-memory backlog by are served
// from the WAL on disk (the hub watermark seeding + gap-fill path).
func TestFollowerResumeAndGapFill(t *testing.T) {
	dirP, dirF := t.TempDir(), t.TempDir()

	// The follower must find the restarted primary at the same URL:
	// serve through a swappable handler.
	var cur atomic.Pointer[Engine]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		NewHandler(cur.Load()).ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	p1 := newTestEngine(t, dirP, nil)
	cur.Store(p1)
	for k := 1; k <= 3; k++ {
		if err := insertKey(p1, k); err != nil {
			t.Fatal(err)
		}
	}
	f1 := newFollowerEngine(t, dirF, srv.URL, nil)
	waitUntil(t, 5*time.Second, "first catch-up", func() bool { return followerRows(t, f1) == 3 })
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	// Commits the stopped follower misses, then a primary crash: the
	// WAL keeps its tail, the restarted hub starts empty above them.
	for k := 4; k <= 5; k++ {
		if err := insertKey(p1, k); err != nil {
			t.Fatal(err)
		}
	}
	p1.Kill()
	p2 := newTestEngine(t, dirP, nil)
	cur.Store(p2)

	// The follower recovers watermark 3 and resumes; 4 and 5 are below
	// the restarted hub's seeded watermark and must gap-fill from the
	// primary's WAL. Then a live commit streams on top.
	f2 := newFollowerEngine(t, dirF, srv.URL, nil)
	if got := f2.Health().Replica.AppliedSeq; got != 3 {
		t.Fatalf("recovered watermark = %d, want 3 (re-bootstrapped?)", got)
	}
	if err := insertKey(p2, 6); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "resume catch-up", func() bool { return followerRows(t, f2) == 6 })
	if got := f2.Health().Replica.AppliedSeq; got != 6 {
		t.Fatalf("final applied seq = %d, want 6", got)
	}
}

// TestShardedPrimaryFollower: a follower of a sharded primary sees the
// same view state — single-shard commits and a cross-shard transaction
// (whose prepare records must be reassembled into one streamed commit)
// alike.
func TestShardedPrimaryFollower(t *testing.T) {
	p := newTestEngine(t, t.TempDir(), func(c *Config) { c.Shards = 4 })
	srv := httptest.NewServer(NewHandler(p))
	t.Cleanup(srv.Close)

	for k := 1; k <= 8; k++ {
		if err := insertKey(p, k); err != nil {
			t.Fatal(err)
		}
	}
	// A wire transaction staging two inserts commits as one translation
	// over two root keys — a cross-shard two-phase commit.
	var tx txReply
	if code := doJSON(t, "POST", srv.URL+"/tx/begin", nil, &tx); code != http.StatusOK {
		t.Fatalf("tx begin = %d", code)
	}
	for _, k := range []string{"101", "102"} {
		var up updateReply
		if code := doJSON(t, "POST", fmt.Sprintf("%s/tx/%s/views/NY/insert", srv.URL, tx.Token),
			map[string]any{"values": []string{k, "NY"}}, &up); code != http.StatusOK {
			t.Fatalf("tx insert %s = %d", k, code)
		}
	}
	if code := doJSON(t, "POST", fmt.Sprintf("%s/tx/%s/commit", srv.URL, tx.Token), nil, &tx); code != http.StatusOK {
		t.Fatalf("tx commit = %d", code)
	}

	f := newFollowerEngine(t, t.TempDir(), srv.URL, nil)
	waitUntil(t, 5*time.Second, "sharded catch-up", func() bool { return followerRows(t, f) == 10 })

	pset, _, err := p.ReadView("NY")
	if err != nil {
		t.Fatal(err)
	}
	fset, _, err := f.ReadView("NY")
	if err != nil {
		t.Fatal(err)
	}
	if !pset.Equal(fset) {
		t.Fatalf("follower view diverged:\nprimary  %v\nfollower %v", pset.Slice(), fset.Slice())
	}
}

// TestFollowerMemoryOnly: an ephemeral follower (no Dir) bootstraps
// from the snapshot, follows live, and is not itself a replication
// source.
func TestFollowerMemoryOnly(t *testing.T) {
	p := newTestEngine(t, t.TempDir(), nil)
	srv := httptest.NewServer(NewHandler(p))
	t.Cleanup(srv.Close)
	for k := 1; k <= 4; k++ {
		if err := insertKey(p, k); err != nil {
			t.Fatal(err)
		}
	}
	f := newFollowerEngine(t, "", srv.URL, nil)
	fsrv := httptest.NewServer(NewHandler(f))
	t.Cleanup(fsrv.Close)
	if err := insertKey(p, 5); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "memory follower catch-up", func() bool { return followerRows(t, f) == 5 })
	if h := f.Health(); h.Replica == nil || h.Replica.Durable {
		t.Fatalf("memory follower health = %+v", h.Replica)
	}
	resp, err := http.Get(fsrv.URL + "/wal/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("memory follower /wal/stream = %d, want 404", resp.StatusCode)
	}
}

// TestFollowerCascade: a follower of a durable follower — the stream
// protocol composes, since a durable follower's store feeds its own
// hub exactly like a primary's.
func TestFollowerCascade(t *testing.T) {
	p := newTestEngine(t, t.TempDir(), nil)
	srv := httptest.NewServer(NewHandler(p))
	t.Cleanup(srv.Close)

	mid := newFollowerEngine(t, t.TempDir(), srv.URL, nil)
	midSrv := httptest.NewServer(NewHandler(mid))
	t.Cleanup(midSrv.Close)
	leaf := newFollowerEngine(t, t.TempDir(), midSrv.URL, nil)

	for k := 1; k <= 6; k++ {
		if err := insertKey(p, k); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 5*time.Second, "cascade catch-up", func() bool { return followerRows(t, leaf) == 6 })
}
