package server

import (
	"errors"
	"sync"
	"time"

	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// ErrDegraded rejects a write while the engine is in read-only
// brownout: the durability path is failing (sealed WAL, repeated fsync
// errors, corrupt store) but snapshot reads still work. Mapped to 503
// with Retry-After; clients should back off and retry.
var ErrDegraded = errors.New("server: degraded (read-only); durability path unavailable")

// Breaker states, also exported as the server.breaker.state gauge.
const (
	breakerClosed   = 0 // healthy: writes flow
	breakerOpen     = 1 // brownout: writes rejected until cooldown
	breakerHalfOpen = 2 // probing: exactly one write allowed through
)

// breakerTripThreshold is how many consecutive durability failures of
// the retryable kind (ErrNotDurable, transient apply errors) open the
// breaker. Terminal failures — a sealed WAL, a corrupt store — trip it
// on the first sighting.
const breakerTripThreshold = 3

// A breaker is the write-path circuit breaker behind graceful
// degradation. The commit pipeline reports each batch outcome; once
// the durability path looks broken the breaker opens and the engine
// enters read-only brownout: submissions fail fast with ErrDegraded
// instead of queueing doomed work. After a cooldown, one probe write
// is let through (half-open); its fate decides whether the breaker
// closes or re-opens for another cooldown.
type breaker struct {
	cooldown time.Duration

	mu          sync.Mutex
	state       int
	consecutive int       // consecutive retryable failures while closed
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight
}

func newBreaker(cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{cooldown: cooldown}
}

// allow gates one write submission. In brownout it fails fast with
// ErrDegraded, except that after the cooldown one caller is admitted
// as the half-open probe.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerHalfOpen:
		if b.probing {
			return ErrDegraded
		}
		b.probing = true
		obs.Inc("server.breaker.probe")
		return nil
	default: // breakerOpen
		if time.Since(b.openedAt) < b.cooldown {
			obs.Inc("server.brownout.rejected")
			return ErrDegraded
		}
		b.setStateLocked(breakerHalfOpen)
		b.probing = true
		obs.Inc("server.breaker.probe")
		return nil
	}
}

// onSuccess reports a batch that landed durably. Any success fully
// heals the breaker: a half-open probe that lands closes it, and
// consecutive-failure counting restarts.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		obs.Inc("server.breaker.recovered")
	}
	b.setStateLocked(breakerClosed)
	b.consecutive = 0
	b.probing = false
}

// onFailure reports a durability failure from the commit pipeline.
// Terminal conditions (sealed WAL, corrupt store) trip immediately;
// retryable ones (fsync hiccup, transient apply error) trip after
// breakerTripThreshold in a row. A failed half-open probe re-opens for
// another cooldown.
func (b *breaker) onFailure(err error) {
	terminal := errors.Is(err, wal.ErrSealed) || vuerr.IsCorrupt(err)
	retryable := errors.Is(err, persist.ErrNotDurable) || vuerr.IsTransient(err)
	if !terminal && !retryable {
		return // logical failure (conflict, validation): not a durability signal
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case terminal:
		b.tripLocked()
	case b.state == breakerHalfOpen:
		b.tripLocked()
	default:
		b.consecutive++
		if b.consecutive >= breakerTripThreshold {
			b.tripLocked()
		}
	}
}

// tripLocked opens the breaker and restarts the cooldown clock.
// Callers hold b.mu.
func (b *breaker) tripLocked() {
	if b.state != breakerOpen {
		obs.Inc("server.breaker.trip")
	}
	b.setStateLocked(breakerOpen)
	b.openedAt = time.Now()
	b.consecutive = 0
	b.probing = false
}

func (b *breaker) setStateLocked(state int) {
	b.state = state
	obs.SetGauge("server.breaker.state", int64(state))
	degraded := int64(0)
	if state != breakerClosed {
		degraded = 1
	}
	obs.SetGauge("server.degraded", degraded)
}

// degraded reports whether writes are currently browning out.
func (b *breaker) degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}

// stateName renders the current state for health endpoints.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
