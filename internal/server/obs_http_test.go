package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"viewupdate/internal/obs"
)

// get fetches url and returns the status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHTTPPrometheusMetrics: /metrics serves the Prometheus text format
// with every family the dashboards and the load generator depend on —
// request counters, commit pipeline stage summaries, queue gauges, WAL
// fsync timings and Go runtime stats — after a single update has moved
// through the full pipeline.
func TestHTTPPrometheusMetrics(t *testing.T) {
	metricsSink(t)
	_, srv := newTestServer(t, nil)

	if code := doJSON(t, "POST", srv.URL+"/views/NY/insert",
		map[string]any{"values": []string{"1", "NY"}}, nil); code != http.StatusOK {
		t.Fatal("insert failed")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PrometheusContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, fam := range []string{
		"server_requests",
		"server_commit_committed",
		"server_commit_batches",
		"server_commit_batch_size",
		"server_commit_queue_depth",
		"server_http_inflight",
		"server_tx_open",
		"server_request_ns",
		"server_stage_translate_ns",
		"server_stage_verify_ns",
		"server_stage_queue_ns",
		"server_stage_commit_ns",
		"server_stage_fsync_ns",
		"server_stage_publish_ns",
		"wal_fsync_ns",
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("/metrics missing family %q", fam)
		}
	}
	// The stage summaries must have real observations, not just
	// pre-registered empty families: the insert above passed through
	// translate, verify, queue, commit and publish.
	for _, fam := range []string{
		"server_stage_translate_ns_count",
		"server_stage_verify_ns_count",
		"server_stage_queue_ns_count",
		"server_stage_commit_ns_count",
		"server_stage_publish_ns_count",
	} {
		if strings.Contains(body, fam+" 0\n") {
			t.Errorf("stage family %q has zero observations after an update", fam)
		}
	}
}

// TestHTTPMetricsWithoutSink: /metrics must stay scrapeable with
// instrumentation disabled — only the runtime block is served.
func TestHTTPMetricsWithoutSink(t *testing.T) {
	obs.Disable()
	_, srv := newTestServer(t, nil)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics without sink: status %d", code)
	}
	if !strings.Contains(body, "go_goroutines") {
		t.Error("/metrics without sink missing runtime block")
	}
	if strings.Contains(body, "server_requests") {
		t.Error("/metrics without sink should not render engine families")
	}
}

// TestHTTPSlowTraces: after updates flow through the pipeline,
// /debug/slow serves complete request traces with the pipeline stages
// recorded, slowest first.
func TestHTTPSlowTraces(t *testing.T) {
	metricsSink(t)
	_, srv := newTestServer(t, nil)

	for _, k := range []string{"1", "2", "3"} {
		if code := doJSON(t, "POST", srv.URL+"/views/NY/insert",
			map[string]any{"values": []string{k, "NY"}}, nil); code != http.StatusOK {
			t.Fatal("insert failed")
		}
	}

	var out struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/slow", nil, &out); code != http.StatusOK {
		t.Fatalf("/debug/slow status %d", code)
	}
	if len(out.Traces) < 3 {
		t.Fatalf("slow ring holds %d traces, want >= 3", len(out.Traces))
	}
	for i := 1; i < len(out.Traces); i++ {
		if out.Traces[i-1].TotalNS < out.Traces[i].TotalNS {
			t.Fatal("/debug/slow not sorted slowest-first")
		}
	}
	var insert *obs.TraceSnapshot
	for i := range out.Traces {
		if strings.HasPrefix(out.Traces[i].Op, "POST /views/NY/insert") {
			insert = &out.Traces[i]
			break
		}
	}
	if insert == nil {
		t.Fatal("no insert trace retained")
	}
	if insert.ID == 0 {
		t.Error("trace has no request ID")
	}
	stages := map[string]bool{}
	for _, st := range insert.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"translate", "verify", "queue", "commit", "fsync", "publish"} {
		if !stages[want] {
			t.Errorf("insert trace missing stage %q (got %v)", want, insert.Stages)
		}
	}
}

// TestHTTPSlowTracesWithoutSink: /debug/slow answers an empty list, not
// an error, with instrumentation disabled.
func TestHTTPSlowTracesWithoutSink(t *testing.T) {
	obs.Disable()
	_, srv := newTestServer(t, nil)
	var out struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/slow", nil, &out); code != http.StatusOK {
		t.Fatalf("/debug/slow without sink: status %d", code)
	}
	if len(out.Traces) != 0 {
		t.Fatalf("traces = %d, want 0", len(out.Traces))
	}
}

// TestHTTPPprofGating: the pprof surface is absent by default and
// served only when Config.EnablePprof opts in.
func TestHTTPPprofGating(t *testing.T) {
	_, off := newTestServer(t, nil)
	if code, _ := get(t, off.URL+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Fatalf("pprof without flag: status %d, want 404", code)
	}

	_, on := newTestServer(t, func(c *Config) { c.EnablePprof = true })
	if code, _ := get(t, on.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof with flag: status %d, want 200", code)
	}
	if code, body := get(t, on.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", code)
	}
}
