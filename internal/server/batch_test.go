package server

import (
	"sync"
	"testing"
	"time"
)

// The batcher's clock is injectable exactly so these tests can drive
// arrival gaps and the window timer deterministically: no sleeps, no
// real timers, no flaky wall-clock dependence.

// fakeClock advances by step on every Now call (one call per arrival
// while obs is disabled), so arrival gaps are exact. NewTimer records
// the requested duration and returns a manually fired timer; with
// forbidTimers set it panics, which is how the zero-added-latency
// tests prove the idle path never even arms a window.
type fakeClock struct {
	mu           sync.Mutex
	now          time.Time
	step         time.Duration
	timers       []*fakeTimer
	forbidTimers bool
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(0, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func (c *fakeClock) NewTimer(d time.Duration) batchTimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.forbidTimers {
		panic("batch window opened: the idle path must commit without arming a timer")
	}
	t := &fakeTimer{d: d, ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	return t
}

func (c *fakeClock) timerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

func (c *fakeClock) timer(i int) *fakeTimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timers[i]
}

type fakeTimer struct {
	d  time.Duration
	ch chan time.Time
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }
func (t *fakeTimer) Stop()               {}
func (t *fakeTimer) fire()               { t.ch <- time.Time{} }

type nextResult struct {
	batch []*commitReq
	more  bool
}

// startNext runs one next() call in the background and returns the
// channel its result lands on.
func startNext(b *batcher) chan nextResult {
	res := make(chan nextResult, 1)
	go func() {
		batch, more := b.next()
		res <- nextResult{batch, more}
	}()
	return res
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func mustNext(t *testing.T, res chan nextResult) nextResult {
	t.Helper()
	select {
	case r := <-res:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("next() did not return")
		return nextResult{}
	}
}

// An idle engine — single commit, no queue, cold arrival history — must
// commit immediately: no timer is armed (NewTimer panics if it were)
// and next returns without any window wait.
func TestBatcherIdleCommitsImmediately(t *testing.T) {
	clock := newFakeClock(time.Second) // gaps of 1s: far beyond the window
	clock.forbidTimers = true
	src := make(chan *commitReq, 16)
	b := newBatcher(src, 8, time.Millisecond, clock)
	for i := 0; i < 3; i++ {
		src <- &commitReq{}
		batch, more := b.next()
		if len(batch) != 1 || !more {
			t.Fatalf("commit %d: got batch of %d (more=%v), want immediate solo batch", i, len(batch), more)
		}
	}
	if got := clock.timerCount(); got != 0 {
		t.Fatalf("idle commits armed %d timers, want 0", got)
	}
}

// A disabled window (maxDelay <= 0) must behave exactly like the old
// drain-only gather loop: take everything queued, never arm a timer.
func TestBatcherDisabledWindowDrainsOnly(t *testing.T) {
	clock := newFakeClock(time.Microsecond)
	clock.forbidTimers = true
	src := make(chan *commitReq, 16)
	b := newBatcher(src, 8, 0, clock)
	for i := 0; i < 5; i++ {
		src <- &commitReq{}
	}
	batch, more := b.next()
	if len(batch) != 5 || !more {
		t.Fatalf("got batch of %d (more=%v), want drained batch of 5", len(batch), more)
	}
}

// A full batch gathered by the fast drain commits at once — the window
// only exists to fill underfull batches.
func TestBatcherFullBatchSkipsWindow(t *testing.T) {
	clock := newFakeClock(time.Microsecond)
	clock.forbidTimers = true
	src := make(chan *commitReq, 16)
	b := newBatcher(src, 4, time.Millisecond, clock)
	for i := 0; i < 6; i++ {
		src <- &commitReq{}
	}
	batch, more := b.next()
	if len(batch) != 4 || !more {
		t.Fatalf("got batch of %d (more=%v), want full batch of 4", len(batch), more)
	}
}

// A burst coalesces: commits queued behind the first open the window,
// commits arriving during the window join the batch, and the timer
// bounds the wait. One batch, one (eventual) fsync.
func TestBatcherBurstCoalescesWithinWindow(t *testing.T) {
	clock := newFakeClock(10 * time.Microsecond)
	src := make(chan *commitReq, 16)
	b := newBatcher(src, 8, time.Millisecond, clock)
	src <- &commitReq{}
	src <- &commitReq{}
	src <- &commitReq{}
	res := startNext(b)
	waitFor(t, "window to open", func() bool { return len(src) == 0 && clock.timerCount() == 1 })
	// Two more commits arrive mid-window; they must join this batch.
	src <- &commitReq{}
	src <- &commitReq{}
	waitFor(t, "mid-window arrivals to join", func() bool { return len(src) == 0 })
	clock.timer(0).fire()
	r := mustNext(t, res)
	if len(r.batch) != 5 || !r.more {
		t.Fatalf("got batch of %d (more=%v), want coalesced batch of 5", len(r.batch), r.more)
	}
}

// The window is adaptive: with an inter-arrival estimate of g and room
// for k more commits, the timer is armed for min(maxDelay, g*k), not a
// flat maxDelay.
func TestBatcherWindowAdaptsToArrivalRate(t *testing.T) {
	const gap = 100 * time.Microsecond
	clock := newFakeClock(gap)
	src := make(chan *commitReq, 16)
	b := newBatcher(src, 8, time.Millisecond, clock)
	src <- &commitReq{}
	src <- &commitReq{}
	res := startNext(b)
	waitFor(t, "window to open", func() bool { return clock.timerCount() == 1 })
	// Two arrivals, one observed gap: ewma == gap; 6 slots remain.
	if want, got := 6*gap, clock.timer(0).d; got != want {
		t.Fatalf("window armed for %v, want ewma*(maxBatch-len) = %v", got, want)
	}
	clock.timer(0).fire()
	if r := mustNext(t, res); len(r.batch) != 2 || !r.more {
		t.Fatalf("got batch of %d (more=%v), want 2", len(r.batch), r.more)
	}
}

// Under a hot arrival rate even a momentarily solo commit waits: recent
// inter-arrival evidence says a partner is due within the window.
func TestBatcherHotRateOpensWindowForSoloCommit(t *testing.T) {
	clock := newFakeClock(10 * time.Microsecond)
	src := make(chan *commitReq, 16)
	b := newBatcher(src, 8, time.Millisecond, clock)
	// Warm the estimate: a pair of close arrivals.
	src <- &commitReq{}
	src <- &commitReq{}
	res := startNext(b)
	waitFor(t, "first window", func() bool { return clock.timerCount() == 1 })
	clock.timer(0).fire()
	mustNext(t, res)
	// A solo commit now opens a window instead of committing alone.
	src <- &commitReq{}
	res = startNext(b)
	waitFor(t, "solo-commit window", func() bool { return clock.timerCount() == 2 })
	src <- &commitReq{}
	waitFor(t, "partner to join", func() bool { return len(src) == 0 })
	clock.timer(1).fire()
	if r := mustNext(t, res); len(r.batch) != 2 || !r.more {
		t.Fatalf("got batch of %d (more=%v), want solo commit joined by partner", len(r.batch), r.more)
	}
}

// Closing the source mid-window neither loses nor duplicates requests:
// the partial batch comes back exactly once with more=false, and the
// caller commits it (TestDrainFlushesQueuedCommits proves the engine-
// level half of the same contract).
func TestBatcherCloseMidWindowReturnsPartialBatch(t *testing.T) {
	clock := newFakeClock(10 * time.Microsecond)
	src := make(chan *commitReq, 16)
	b := newBatcher(src, 8, time.Millisecond, clock)
	a, c := &commitReq{}, &commitReq{}
	src <- a
	src <- c
	res := startNext(b)
	waitFor(t, "window to open", func() bool { return clock.timerCount() == 1 })
	close(src)
	r := mustNext(t, res)
	if len(r.batch) != 2 || r.more {
		t.Fatalf("got batch of %d (more=%v), want final batch of 2 with more=false", len(r.batch), r.more)
	}
	if r.batch[0] != a || r.batch[1] != c {
		t.Fatal("final batch lost or reordered the gathered requests")
	}
	// The drained source yields no further batch.
	if batch, more := b.next(); batch != nil || more {
		t.Fatalf("next() after close returned batch of %d (more=%v), want nil/false", len(batch), more)
	}
}
