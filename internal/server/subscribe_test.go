package server

import (
	"bufio"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events off the stream, skipping comment keepalives.
func readSSE(t *testing.T, r *bufio.Reader, n int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE after %d events: %v", len(out), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			out = append(out, cur)
			cur = sseEvent{}
		}
	}
	return out
}

// TestSubscribeStream: a /subscribe stream opens with a hello frame
// (columns + live-from version) and pushes each commit's row delta.
func TestSubscribeStream(t *testing.T) {
	e, srv := newTestServer(t, nil)

	resp, err := http.Get(srv.URL + "/subscribe/NY")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("subscribe = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	br := bufio.NewReader(resp.Body)
	hello := readSSE(t, br, 1)[0]
	if hello.name != "hello" || !strings.Contains(hello.data, `"columns":["EmpNo","Location"]`) {
		t.Fatalf("hello = %+v", hello)
	}

	if err := insertKey(e, 7); err != nil {
		t.Fatal(err)
	}
	ev := readSSE(t, br, 1)[0]
	if ev.name != "change" {
		t.Fatalf("event = %+v", ev)
	}
	if !strings.Contains(ev.data, `"added":[["7","NY"]]`) || !strings.Contains(ev.data, `"removed":[]`) {
		t.Fatalf("change data = %s", ev.data)
	}

	// A commit that misses the view's selection produces no event; the
	// next hit arrives as the very next frame.
	if _, err := e.ExecScript("CREATE VIEW SF AS SELECT * FROM EMP WHERE Location = 'SF';"); err != nil {
		t.Fatal(err)
	}
	if err := insertSF(e, 8); err != nil {
		t.Fatal(err)
	}
	if err := insertKey(e, 9); err != nil {
		t.Fatal(err)
	}
	ev = readSSE(t, br, 1)[0]
	if !strings.Contains(ev.data, `"added":[["9","NY"]]`) {
		t.Fatalf("filtered change = %s", ev.data)
	}
}

// insertSF lands a base row outside the NY selection through a second
// selection view.
func insertSF(e *Engine, k int) error {
	body := updateBody{Values: []string{strconv.Itoa(k), "SF"}}
	cand, _, _, base, err := e.Translate(context.Background(), "SF", nil, e.buildRequest(update.Insert, body))
	if err != nil {
		return err
	}
	_, err = e.Commit(context.Background(), cand.Translation, false, base)
	return err
}

// TestSubscribeErrors: unknown views 404; a draining engine refuses
// new subscriptions.
func TestSubscribeErrors(t *testing.T) {
	_, srv := newTestServer(t, nil)
	resp, err := http.Get(srv.URL + "/subscribe/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown view subscribe = %d, want 404", resp.StatusCode)
	}
}

// TestSubscribeSlowConsumerShed: a subscriber that stops draining is
// shed — its channel closed, the dropped-events counter bumped — and
// the commit path never blocks.
func TestSubscribeSlowConsumerShed(t *testing.T) {
	sink := metricsSink(t)
	e := newTestEngine(t, "", nil)
	v, _, err := e.lookupView("NY", nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := e.subs.attach("NY", v)
	row := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("NY"))
	add := []tuple.T{row}
	for i := 0; i <= subBuffer; i++ {
		e.subs.publish("NY", v, uint64(i+1), nil, add)
	}
	select {
	case _, ok := <-sub.ch:
		if !ok {
			t.Fatal("first receive: channel already closed with queued events unread")
		}
	case <-time.After(time.Second):
		t.Fatal("no event queued")
	}
	// Drain to the close: the overflow publish shed the subscriber.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				if got := sink.Metrics().Snapshot().Counters["server.replica.dropped_events"]; got == 0 {
					t.Fatal("dropped_events counter not bumped")
				}
				return
			}
			ev.release()
		case <-deadline:
			t.Fatal("subscriber never shed")
		}
	}
}

// TestSubscribeFanoutAllocs pins the fan-out hot path: encoding one
// commit's delta into a pooled, reference-counted event and queueing
// it on every subscriber allocates nothing in steady state.
func TestSubscribeFanoutAllocs(t *testing.T) {
	e := newTestEngine(t, "", nil)
	v, _, err := e.lookupView("NY", nil)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*subscriber, 3)
	for i := range subs {
		subs[i] = e.subs.attach("NY", v)
	}
	rows := []tuple.T{
		tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("NY")),
		tuple.MustNew(v.Schema(), value.NewInt(2), value.NewString("NY")),
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.subs.publish("NY", v, 42, rows[:1], rows[1:])
		for _, s := range subs {
			ev := <-s.ch
			ev.release()
		}
	})
	if allocs > 0 {
		t.Fatalf("subscription fan-out allocates %.1f per event, want 0", allocs)
	}
}
