package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// Pooled wire codecs. The serving hot path encodes one JSON reply and
// decodes one JSON body per request; with json.NewEncoder/NewDecoder
// allocated per call, codec garbage dominated the request allocation
// profile once the commit path itself stopped allocating. Both
// directions now run on sync.Pool-backed scratch:
//
//   - replies render into a pooled {bytes.Buffer, json.Encoder} pair
//     and leave in one Write (which also lets net/http set
//     Content-Length instead of chunking);
//   - bodies drain into a pooled buffer and decode from a pooled
//     bytes.Reader.
//
// Pool safety: a pooled object is returned only after the last read of
// its memory — the reply buffer after ResponseWriter.Write copied it
// out, the body buffer after Decode finished (json strings are copied,
// never aliased into the input). BenchmarkWire* and the AllocsPerRun
// regression tests in codec_test.go pin the savings; the -race stress
// test proves no aliasing under concurrency.

// maxPooledCodec caps the capacity of buffers worth keeping: a huge
// view read or exec script should not pin its buffer in the pool
// forever. Oversized scratch is dropped for the GC.
const maxPooledCodec = 64 << 10

// A wireEncoder is one reusable reply encoder: the json.Encoder is
// permanently wired to the buffer, so per-reply work is a buffer reset
// plus the encode itself.
type wireEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &wireEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	// Indented output is part of the wire format: operators curl these
	// endpoints, and the smoke tooling greps for `"status": "ok"`.
	e.enc.SetIndent("", "  ")
	return e
}}

// writeJSON renders v with the given status through the encoder pool.
func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*wireEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Wire types are plain structs; an encode failure is a
		// programming error. Answer a hand-built envelope rather than a
		// half-written body.
		e.buf.Reset()
		fmt.Fprintf(&e.buf, "{\n  \"error\": %q,\n  \"code\": \"internal\"\n}\n", err.Error())
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
	if e.buf.Cap() <= maxPooledCodec {
		encPool.Put(e)
	}
}

// A bodyBuffer is one reusable request-body scratch: the raw bytes and
// the reader the decoder consumes them through.
type bodyBuffer struct {
	buf bytes.Buffer
	rd  bytes.Reader
}

var bodyPool = sync.Pool{New: func() any { return &bodyBuffer{} }}

// decodeBody reads and decodes a JSON update body through the body
// pool. Unknown fields are still rejected — the decoder is fresh per
// call (it cannot be pooled: json.Decoder keeps internal read-ahead
// that survives a reader swap), but it is one small allocation against
// the buffer churn the pool absorbs.
func decodeBody(r *http.Request, into any) error {
	b := bodyPool.Get().(*bodyBuffer)
	defer func() {
		if b.buf.Cap() <= maxPooledCodec {
			bodyPool.Put(b)
		}
	}()
	b.buf.Reset()
	if _, err := b.buf.ReadFrom(http.MaxBytesReader(nil, r.Body, maxBodyBytes)); err != nil {
		return fmt.Errorf("server: decoding body: %w", err)
	}
	b.rd.Reset(b.buf.Bytes())
	dec := json.NewDecoder(&b.rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("server: decoding body: %w", err)
	}
	return nil
}

// commitReqPool recycles pipeline requests, each with its reusable
// buffered done channel. Only requests that completed a clean
// round-trip — the waiter actually received the committer's answer —
// may be recycled: a request abandoned on a deadline still has a send
// in flight (or pending) on its channel and must leak to the GC
// instead. Requests built by hand in tests simply never enter the
// pool.
var commitReqPool = sync.Pool{New: func() any {
	return &commitReq{done: make(chan commitRes, 1)}
}}

// getCommitReq returns a zeroed request with a ready done channel.
func getCommitReq() *commitReq {
	return commitReqPool.Get().(*commitReq)
}

// putCommitReq recycles r after its done channel has been received
// from. References are dropped so a pooled request pins neither the
// translation nor the trace.
func putCommitReq(r *commitReq) {
	done := r.done
	*r = commitReq{done: done}
	commitReqPool.Put(r)
}
