package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"viewupdate/internal/obs"
)

// newTestServer wires a test engine into an httptest server.
func newTestServer(t *testing.T, mut func(*Config)) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, t.TempDir(), mut)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return e, srv
}

// doJSON posts body to path and decodes the response into out,
// returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPUpdateAndRead: a wire insert lands, bumps the version, and a
// filtered read sees it.
func TestHTTPUpdateAndRead(t *testing.T) {
	_, srv := newTestServer(t, nil)

	var up updateReply
	code := doJSON(t, "POST", srv.URL+"/views/NY/insert",
		map[string]any{"values": []string{"7", "NY"}}, &up)
	if code != http.StatusOK || !up.OK || up.Version != 1 {
		t.Fatalf("insert = %d %+v", code, up)
	}
	if up.Class == "" || len(up.Ops) == 0 {
		t.Fatalf("reply hides the translation: %+v", up)
	}

	var rows rowsReply
	if code := doJSON(t, "GET", srv.URL+"/views/NY?EmpNo=7", nil, &rows); code != http.StatusOK {
		t.Fatalf("read status %d", code)
	}
	if rows.Count != 1 || rows.Rows[0][0] != "7" {
		t.Fatalf("read = %+v", rows)
	}

	var list struct {
		Views []string `json:"views"`
	}
	if code := doJSON(t, "GET", srv.URL+"/views", nil, &list); code != http.StatusOK || len(list.Views) != 1 {
		t.Fatalf("views list = %d %+v", code, list)
	}
}

// TestHTTPErrorTaxonomy drives each error class to its documented
// status code.
func TestHTTPErrorTaxonomy(t *testing.T) {
	_, srv := newTestServer(t, nil)

	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		{"unknown view", "POST", "/views/Nope/insert",
			map[string]any{"values": []string{"1", "NY"}}, http.StatusNotFound, "not_found"},
		{"unknown op", "POST", "/views/NY/upsert",
			map[string]any{"values": []string{"1", "NY"}}, http.StatusBadRequest, "bad_request"},
		{"domain violation", "POST", "/views/NY/insert",
			map[string]any{"values": []string{"99999", "NY"}}, http.StatusBadRequest, "bad_request"},
		{"arity mismatch", "POST", "/views/NY/insert",
			map[string]any{"values": []string{"1"}}, http.StatusBadRequest, "bad_request"},
		{"unknown field", "POST", "/views/NY/insert",
			map[string]any{"valuez": []string{"1", "NY"}}, http.StatusBadRequest, "bad_request"},
		{"missing row", "POST", "/views/NY/delete",
			map[string]any{"where": map[string]string{"EmpNo": "5"}}, http.StatusBadRequest, "bad_request"},
		{"unknown token", "POST", "/tx/deadbeef/commit", nil, http.StatusNotFound, "not_found"},
	} {
		var er errorReply
		code := doJSON(t, tc.method, srv.URL+tc.path, tc.body, &er)
		if code != tc.status || er.Code != tc.code {
			t.Fatalf("%s: got %d %q, want %d %q (%s)", tc.name, code, er.Code, tc.status, tc.code, er.Error)
		}
	}
}

// TestHTTPOverloadRetryAfter: a stalled pipeline turns into 429 with a
// Retry-After hint on the wire.
func TestHTTPOverloadRetryAfter(t *testing.T) {
	e, srv := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxBatch = 1
	})
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if err := submitAsync(e, 1); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)
	if err := submitAsync(e, 2); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"values": []string{"3", "NY"}})
	resp, err := http.Post(srv.URL+"/views/NY/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestHTTPTransactionFlow: begin → stage → read staged → commit over
// the wire; a second transaction staged from the old version conflicts
// with 409.
func TestHTTPTransactionFlow(t *testing.T) {
	_, srv := newTestServer(t, nil)
	if code := doJSON(t, "POST", srv.URL+"/views/NY/insert",
		map[string]any{"values": []string{"1", "NY"}}, nil); code != http.StatusOK {
		t.Fatalf("seed insert status %d", code)
	}

	begin := func() string {
		var tx txReply
		if code := doJSON(t, "POST", srv.URL+"/tx/begin", nil, &tx); code != http.StatusOK || tx.Token == "" {
			t.Fatalf("begin = %d %+v", code, tx)
		}
		return tx.Token
	}
	tok1, tok2 := begin(), begin()

	stage := func(tok, key string) int {
		var up updateReply
		code := doJSON(t, "POST", srv.URL+"/tx/"+tok+"/views/NY/insert",
			map[string]any{"values": []string{key, "NY"}}, &up)
		if code == http.StatusOK && !up.Staged {
			t.Fatal("tx update not marked staged")
		}
		return code
	}
	if code := stage(tok1, "2"); code != http.StatusOK {
		t.Fatalf("stage status %d", code)
	}
	if code := stage(tok2, "3"); code != http.StatusOK {
		t.Fatalf("stage status %d", code)
	}

	// tok1 reads its own write; the live view does not see it.
	var rows rowsReply
	if code := doJSON(t, "GET", srv.URL+"/tx/"+tok1+"/views/NY", nil, &rows); code != http.StatusOK || rows.Count != 2 {
		t.Fatalf("staged read = %d %+v", code, rows)
	}
	if code := doJSON(t, "GET", srv.URL+"/views/NY", nil, &rows); code != http.StatusOK || rows.Count != 1 {
		t.Fatalf("live read = %d %+v", code, rows)
	}

	var tx txReply
	if code := doJSON(t, "POST", srv.URL+"/tx/"+tok1+"/commit", nil, &tx); code != http.StatusOK || tx.Committed != 1 {
		t.Fatalf("commit = %d %+v", code, tx)
	}
	var er errorReply
	if code := doJSON(t, "POST", srv.URL+"/tx/"+tok2+"/commit", nil, &er); code != http.StatusConflict || er.Code != "conflict" {
		t.Fatalf("stale commit = %d %+v, want 409 conflict", code, er)
	}
	// Rollback of a consumed token is 404: tokens are single-use.
	if code := doJSON(t, "POST", srv.URL+"/tx/"+tok2+"/rollback", nil, nil); code != http.StatusNotFound {
		t.Fatalf("rollback after commit = %d, want 404", code)
	}
}

// TestHTTPHealthAndMetrics: healthz reflects state; metricsz serves the
// obs snapshot shape (counters + histograms) and works without a sink.
func TestHTTPHealthAndMetrics(t *testing.T) {
	sink := metricsSink(t)
	_, srv := newTestServer(t, nil)

	var h Healthz
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}
	if !h.Durable || h.MaxQueue == 0 {
		t.Fatalf("healthz missing fields: %+v", h)
	}

	if code := doJSON(t, "POST", srv.URL+"/views/NY/insert",
		map[string]any{"values": []string{"1", "NY"}}, nil); code != http.StatusOK {
		t.Fatal("insert failed")
	}
	var snap obs.Snapshot
	if code := doJSON(t, "GET", srv.URL+"/metricsz", nil, &snap); code != http.StatusOK {
		t.Fatalf("metricsz status %d", code)
	}
	if snap.Counters["server.requests"] == 0 || snap.Counters["server.commit.committed"] != 1 {
		t.Fatalf("metricsz counters missing: %+v", snap.Counters)
	}
	if _, ok := snap.Histograms["server.commit.batch_size"]; !ok {
		t.Fatalf("metricsz histograms missing batch_size: %v", snap.Histograms)
	}
	_ = sink

	// Disabled sink: metricsz still answers, with an empty snapshot.
	obs.Disable()
	if code := doJSON(t, "GET", srv.URL+"/metricsz", nil, &snap); code != http.StatusOK {
		t.Fatalf("metricsz without sink: status %d", code)
	}
}

// TestHTTPExec: the admin script endpoint runs DDL and DML, and its
// effects are immediately visible to the wire surface.
func TestHTTPExec(t *testing.T) {
	_, srv := newTestServer(t, nil)
	var out execReply
	code := doJSON(t, "POST", srv.URL+"/execz",
		map[string]string{"script": "INSERT INTO EMP VALUES (4, 'NY');"}, &out)
	if code != http.StatusOK || !out.OK {
		t.Fatalf("execz = %d %+v", code, out)
	}
	var rows rowsReply
	if code := doJSON(t, "GET", srv.URL+"/views/NY", nil, &rows); code != http.StatusOK || rows.Count != 1 {
		t.Fatalf("post-exec read = %d %+v", code, rows)
	}
	// A broken script surfaces as 400 with the parse error.
	var er errorReply
	if code := doJSON(t, "POST", srv.URL+"/execz",
		map[string]string{"script": "FROBNICATE;"}, &er); code != http.StatusBadRequest {
		t.Fatalf("bad script = %d %+v", code, er)
	}
}

// TestHTTPPreferOverride: the prefer field steers translator selection
// per request and surfaces the chosen class.
func TestHTTPPreferOverride(t *testing.T) {
	_, srv := newTestServer(t, nil)
	if code := doJSON(t, "POST", srv.URL+"/views/NY/insert",
		map[string]any{"values": []string{"1", "NY"}}, nil); code != http.StatusOK {
		t.Fatal("seed insert failed")
	}
	var up updateReply
	code := doJSON(t, "POST", srv.URL+"/views/NY/delete",
		map[string]any{"where": map[string]string{"EmpNo": "1"}, "prefer": []string{"D-1"}}, &up)
	if code != http.StatusOK {
		t.Fatalf("prefer delete status %d: %+v", code, up)
	}
	if up.Class != "D-1" {
		t.Fatalf("class %q, want the preferred D-1", up.Class)
	}
}
