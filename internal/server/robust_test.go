package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/persist"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// keyedInsert posts an insert with an Idempotency-Key and returns the
// status and decoded reply.
func keyedInsert(t *testing.T, url, key string, emp int) (int, updateReply) {
	t.Helper()
	body := map[string]any{"values": []string{strconv.Itoa(emp), "NY"}}
	var buf []byte
	{
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url+"/views/NY/insert", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var up updateReply
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	return resp.StatusCode, up
}

// TestIdempotentRetryReturnsOriginalOutcome: retransmitting a keyed
// insert answers the original version with duplicate set, and applies
// nothing.
func TestIdempotentRetryReturnsOriginalOutcome(t *testing.T) {
	e, srv := newTestServer(t, nil)

	code, first := keyedInsert(t, srv.URL, "req-1", 7)
	if code != http.StatusOK || first.Duplicate {
		t.Fatalf("first send = %d %+v", code, first)
	}
	code, second := keyedInsert(t, srv.URL, "req-1", 7)
	if code != http.StatusOK {
		t.Fatalf("retry status %d", code)
	}
	if !second.Duplicate {
		t.Fatalf("retry not marked duplicate: %+v", second)
	}
	if second.Version != first.Version {
		t.Fatalf("retry version %d != original %d", second.Version, first.Version)
	}
	if second.Class != first.Class {
		t.Fatalf("retry class %q != original %q", second.Class, first.Class)
	}
	snap, version := e.Snapshot()
	if snap.Len("EMP") != 1 || version != first.Version {
		t.Fatalf("retry changed state: %d rows at version %d", snap.Len("EMP"), version)
	}
}

// TestIdempotencyKeyReplayedFromWAL: a crash-restart (no checkpoint)
// rebuilds the dedup table from the WAL, so a retry of a commit whose
// ack the crash made ambiguous dedups instead of double-applying.
func TestIdempotencyKeyReplayedFromWAL(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, dir, nil)
	srv := httptest.NewServer(NewHandler(e))
	if code, up := keyedInsert(t, srv.URL, "req-crash", 3); code != http.StatusOK || !up.OK {
		t.Fatalf("insert = %d %+v", code, up)
	}
	srv.Close()
	e.Kill() // crash: WAL keeps its tail, no checkpoint

	e2 := newTestEngine(t, dir, nil)
	srv2 := httptest.NewServer(NewHandler(e2))
	defer srv2.Close()
	code, up := keyedInsert(t, srv2.URL, "req-crash", 3)
	if code != http.StatusOK {
		t.Fatalf("post-restart retry status %d: %+v", code, up)
	}
	if !up.Duplicate || !up.Replayed {
		t.Fatalf("post-restart retry should dedup via WAL replay: %+v", up)
	}
	snap, _ := e2.Snapshot()
	if snap.Len("EMP") != 1 {
		t.Fatalf("recovered %d rows, want 1", snap.Len("EMP"))
	}
}

// TestIdempotencyReleaseOnCleanFailure: a keyed request that fails
// cleanly frees its key, so a later request reusing the key executes
// fresh instead of replaying the failure.
func TestIdempotencyReleaseOnCleanFailure(t *testing.T) {
	_, srv := newTestServer(t, nil)

	// Domain violation: translate fails, nothing commits, key released.
	code, _ := keyedInsert(t, srv.URL, "req-x", 99999)
	if code != http.StatusBadRequest {
		t.Fatalf("bad insert status %d, want 400", code)
	}
	code, up := keyedInsert(t, srv.URL, "req-x", 5)
	if code != http.StatusOK || up.Duplicate {
		t.Fatalf("reused key after clean failure = %d %+v, want fresh 200", code, up)
	}
}

// TestBreakerBrownoutAndRecovery walks the full degradation state
// machine over the wire: a terminal durability failure trips the
// breaker (writes 503 "degraded" with Retry-After, reads still served,
// /readyz unready, healthz "degraded"), and after the cooldown a probe
// write closes it again (readyz back to 200).
func TestBreakerBrownoutAndRecovery(t *testing.T) {
	_, srv := newTestServer(t, func(c *Config) {
		c.BreakerCooldown = 150 * time.Millisecond
	})

	// Seed a row so reads have something to serve.
	if code, _ := keyedInsert(t, srv.URL, "", 1); code != http.StatusOK {
		t.Fatal("seed insert failed")
	}

	// One sealed-log failure at the batch head: terminal, trips at once.
	faultinject.Enable(faultinject.NewPlan(1).FailNth(faultinject.SiteServerCommit, 1, wal.ErrSealed))
	t.Cleanup(faultinject.Disable)
	code, up := keyedInsert(t, srv.URL, "", 2)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("sealed commit = %d %+v, want 503", code, up)
	}

	// Brownout: writes fail fast with 503 degraded + Retry-After.
	body, _ := json.Marshal(map[string]any{"values": []string{"3", "NY"}})
	resp, err := http.Post(srv.URL+"/views/NY/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er errorReply
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || er.Code != "degraded" {
		t.Fatalf("browned-out write = %d %q, want 503 degraded", resp.StatusCode, er.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded write without Retry-After")
	}

	// Reads still work during the brownout.
	var rows rowsReply
	if code := doJSON(t, "GET", srv.URL+"/views/NY", nil, &rows); code != http.StatusOK || rows.Count != 1 {
		t.Fatalf("brownout read = %d %+v", code, rows)
	}

	// Health surfaces the state; readyz flips unready.
	var h Healthz
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "degraded" || !h.Degraded {
		t.Fatalf("healthz during brownout = %d %+v", code, h)
	}
	if h.Breaker != "open" {
		t.Fatalf("breaker state %q, want open", h.Breaker)
	}
	if code := doJSON(t, "GET", srv.URL+"/readyz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during brownout = %d, want 503", code)
	}

	// After the cooldown one probe write goes through (the fault plan is
	// exhausted), the breaker closes, readyz recovers.
	time.Sleep(200 * time.Millisecond)
	if code, up := keyedInsert(t, srv.URL, "", 4); code != http.StatusOK {
		t.Fatalf("probe write after cooldown = %d %+v", code, up)
	}
	if code := doJSON(t, "GET", srv.URL+"/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz after recovery = %d %+v", code, h)
	}
}

// TestHTTPErrorTaxonomyDegraded pins the robustness additions to the
// taxonomy: corrupt-class and sealed-log failures reaching the commit
// pipeline surface as 503 "degraded" with Retry-After — a brownout to
// retry elsewhere — never as 500.
func TestHTTPErrorTaxonomyDegraded(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"corrupt", vuerr.ErrCorrupt},
		{"sealed", wal.ErrSealed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, srv := newTestServer(t, nil)
			faultinject.Enable(faultinject.NewPlan(1).FailNth(faultinject.SiteServerCommit, 1, tc.err))
			t.Cleanup(faultinject.Disable)
			body, _ := json.Marshal(map[string]any{"values": []string{"1", "NY"}})
			resp, err := http.Post(srv.URL+"/views/NY/insert", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var er errorReply
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusServiceUnavailable || er.Code != "degraded" {
				t.Fatalf("%s failure = %d %q, want 503 degraded (%s)", tc.name, resp.StatusCode, er.Code, er.Error)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("%s failure without Retry-After", tc.name)
			}
		})
	}
}

// TestDrainRacesInFlightCommits is the graceful-drain soak: shutdown
// starts while the queue is non-empty and a failpoint kills one WAL
// append mid-drain. Every commit that was acked must be durable after
// reopening the store; every commit that failed must be absent.
func TestDrainRacesInFlightCommits(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, dir, func(c *Config) {
		c.MaxInFlight = 32
		c.MaxBatch = 4 // several batches per drain, so the failpoint hits mid-drain
	})

	// One WAL append fails mid-drain: that batch rolls back cleanly
	// (ErrNotDurable), later batches proceed.
	// SiteWALAppend fires once per AppendBatchStats call: hit 1 is the
	// stalled head batch, hits 2..5 the drained batches of 4. Hit 3
	// lands on the second drained batch — genuinely mid-drain.
	faultinject.Enable(faultinject.NewPlan(1).FailNth(faultinject.SiteWALAppend, 3, vuerr.ErrTransient))
	t.Cleanup(faultinject.Disable)

	// Stall the committer, pile up commits, then race Close against the
	// queued work.
	e.stateMu.Lock()
	if err := submitAsync(e, 999); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)

	const n = 16
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = insertKey(e, i+1)
		}(i)
	}
	waitForDepth(t, e, n)
	closed := make(chan error, 1)
	go func() { closed <- e.Close() }()
	e.stateMu.Unlock() // release the committer into the racing drain
	wg.Wait()
	if err := <-closed; err != nil {
		t.Fatalf("drain close: %v", err)
	}

	// Reopen: acked implies present, failed implies absent.
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	acked, failed := 0, 0
	for i := 0; i < n; i++ {
		k := i + 1
		has := rowPresent(t, st, k)
		if errs[i] == nil {
			acked++
			if !has {
				t.Errorf("commit %d was acked during drain but is absent after reopen", k)
			}
		} else {
			failed++
			if has {
				t.Errorf("commit %d failed (%v) but is present after reopen", k, errs[i])
			}
		}
	}
	if acked == 0 {
		t.Fatal("no commit was acked; the drain race tested nothing")
	}
	if failed == 0 {
		t.Fatal("no commit failed; the mid-drain failpoint never fired")
	}
	t.Logf("drain race: %d acked (all durable), %d failed cleanly (all absent)", acked, failed)
}

// rowPresent reports whether EMP holds a row with the given EmpNo in
// the recovered store.
func rowPresent(t *testing.T, st *persist.Store, emp int) bool {
	t.Helper()
	want := strconv.Itoa(emp)
	for _, tup := range st.DB().Tuples("EMP") {
		v, ok := tup.Get("EmpNo")
		if !ok {
			t.Fatal("EMP tuple without EmpNo")
		}
		if v.String() == want {
			return true
		}
	}
	return false
}

// TestAdaptiveShedding: with ShedFraction set, submissions start being
// shed before the queue is full — deterministic early pushback instead
// of a hard cliff at MaxInFlight.
func TestAdaptiveShedding(t *testing.T) {
	sink := metricsSink(t)
	e := newTestEngine(t, t.TempDir(), func(c *Config) {
		c.MaxInFlight = 8
		c.ShedFraction = 0.5
	})
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if err := submitAsync(e, 999); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)

	shed, accepted, full := 0, 0, 0
	for i := 0; i < 64 && full == 0; i++ {
		err := submitAsync(e, 1000+i)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrOverloaded) && e.QueueDepth() >= e.cfg.MaxInFlight:
			full++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("no submission was shed before the queue filled")
	}
	if accepted <= e.cfg.MaxInFlight/2 {
		t.Fatalf("only %d accepted; shedding below the threshold", accepted)
	}
	if got := sink.Metrics().Snapshot().Counters["server.shed"]; got != int64(shed) {
		t.Fatalf("server.shed counter %d, want %d", got, shed)
	}
}

// TestSheddingDisabledByDefault: ShedFraction zero means the queue
// fills to MaxInFlight before any rejection — the pre-existing
// admission behavior is unchanged.
func TestSheddingDisabledByDefault(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), func(c *Config) { c.MaxInFlight = 8 })
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if err := submitAsync(e, 999); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)
	for i := 0; i < e.cfg.MaxInFlight; i++ {
		if err := submitAsync(e, 1000+i); err != nil {
			t.Fatalf("submission %d rejected with room in the queue: %v", i, err)
		}
	}
	if err := submitAsync(e, 2000); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
}
