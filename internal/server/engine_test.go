package server

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// testScript is the serving test schema: one table, one selection view.
const testScript = `
CREATE DOMAIN KeyDom AS INT RANGE 1 TO 10000;
CREATE DOMAIN LocDom AS STRING ('NY', 'SF');
CREATE TABLE EMP (EmpNo KeyDom, Location LocDom, PRIMARY KEY (EmpNo));
CREATE VIEW NY AS SELECT * FROM EMP WHERE Location = 'NY';
`

// newTestEngine builds an engine over dir ("" = memory-only) with small
// limits, closing it at test end.
func newTestEngine(t *testing.T, dir string, mut func(*Config)) *Engine {
	t.Helper()
	cfg := Config{Dir: dir, MaxInFlight: 16, MaxBatch: 8, RequestTimeout: 5 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	e, err := NewEngine(cfg, testScript)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// insertKey runs one single-shot insert of key k through the full
// translate-then-group-commit path.
func insertKey(e *Engine, k int) error {
	body := updateBody{Values: []string{strconv.Itoa(k), "NY"}}
	cand, _, _, base, err := e.Translate(context.Background(), "NY", nil, e.buildRequest(update.Insert, body))
	if err != nil {
		return err
	}
	_, err = e.Commit(context.Background(), cand.Translation, false, base)
	return err
}

// metricsSink installs a fresh obs registry for the test and returns
// it. Counter deltas against it prove pipeline behavior.
func metricsSink(t *testing.T) *obs.Sink {
	t.Helper()
	s := obs.NewSink(nil)
	obs.Enable(s)
	t.Cleanup(obs.Disable)
	return s
}

// TestParallelDisjointCommitsAndRecovery is acceptance (a): N parallel
// single-shot updates on disjoint keys all land, and reopening the
// store after shutdown replays exactly the committed state.
func TestParallelDisjointCommitsAndRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, dir, func(c *Config) { c.MaxInFlight = 64 })
	const n = 32
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = insertKey(e, i+1)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("disjoint commit %d failed: %v", i, err)
		}
	}
	snap, version := e.Snapshot()
	if snap.Len("EMP") != n {
		t.Fatalf("snapshot has %d rows, want %d", snap.Len("EMP"), n)
	}
	if version != n {
		t.Fatalf("version %d, want %d (one bump per landed commit)", version, n)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the store must hold exactly the committed rows.
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.DB().Len("EMP") != n {
		t.Fatalf("recovered %d rows, want %d", st.DB().Len("EMP"), n)
	}
}

// TestGroupCommitBatches proves the group-commit property end to end
// with obs counters: 1+k commits land in exactly 2 batches and 2 WAL
// syncs — the k queued commits share one append+fsync.
func TestGroupCommitBatches(t *testing.T) {
	sink := metricsSink(t)
	e := newTestEngine(t, t.TempDir(), nil)

	// Stall the committer so commits pile up in the queue: the first
	// submission is taken solo, then blocks on stateMu; the next k wait
	// in the channel and must come out as ONE batch.
	e.stateMu.Lock()
	if err := submitAsync(e, 1); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)
	const k = 5
	done := make([]chan error, k)
	for i := 0; i < k; i++ {
		done[i] = make(chan error, 1)
		i := i
		go func() {
			done[i] <- insertKey(e, 100+i)
		}()
	}
	waitForDepth(t, e, k)
	before := sink.Metrics().Snapshot()
	e.stateMu.Unlock()

	for i := 0; i < k; i++ {
		if err := <-done[i]; err != nil {
			t.Fatalf("queued commit %d: %v", i, err)
		}
	}
	after := sink.Metrics().Snapshot()
	batches := after.Counters["server.commit.batches"] - before.Counters["server.commit.batches"]
	syncs := after.Counters["wal.sync"] - before.Counters["wal.sync"]
	committed := after.Counters["server.commit.committed"] - before.Counters["server.commit.committed"]
	// Two batches drain after the unlock: the stalled solo commit, then
	// the k queued ones together.
	if batches != 2 {
		t.Fatalf("%d batches, want 2 (solo + grouped)", batches)
	}
	if committed != k+1 {
		t.Fatalf("%d commits landed, want %d", committed, k+1)
	}
	if syncs != 2 {
		t.Fatalf("%d fsyncs for %d commits, want 2 — group commit did not batch", syncs, k+1)
	}
	if bs := after.Histograms["server.commit.batch_size"]; bs.Max < int64(k) {
		t.Fatalf("max batch size %d, want >= %d", bs.Max, k)
	}
}

// submitAsync fires one insert without waiting for its fate.
func submitAsync(e *Engine, k int) error {
	body := updateBody{Values: []string{strconv.Itoa(k), "NY"}}
	cand, _, _, _, err := e.Translate(context.Background(), "NY", nil, e.buildRequest(update.Insert, body))
	if err != nil {
		return err
	}
	return e.submit(&commitReq{tr: cand.Translation, done: make(chan commitRes, 1)})
}

// waitForPickup waits until the committer has taken the queued request
// (and is therefore stalled inside commitBatch on stateMu).
func waitForPickup(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for e.QueueDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("committer never picked up the stall commit")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the gather loop a beat to pass its non-blocking poll.
	time.Sleep(10 * time.Millisecond)
}

func waitForDepth(t *testing.T, e *Engine, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for e.QueueDepth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", e.QueueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConflictingTransactions is acceptance (b): two wire transactions
// replace the same row concurrently; exactly one commits, the other
// gets a clean ErrConflict, and the surviving state is consistent.
func TestConflictingTransactions(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), nil)
	if err := insertKey(e, 1); err != nil {
		t.Fatal(err)
	}

	tok1, err := e.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	tok2, err := e.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	move := func(tok string, to int) error {
		body := updateBody{
			Where: map[string]string{"EmpNo": "1"},
			Set:   map[string]string{"EmpNo": strconv.Itoa(to)},
		}
		_, _, err := e.TxUpdate(context.Background(), tok, "NY", nil, e.buildRequest(update.Replace, body))
		return err
	}
	if err := move(tok1, 2); err != nil {
		t.Fatal(err)
	}
	if err := move(tok2, 3); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	outcomes := make([]error, 2)
	for i, tok := range []string{tok1, tok2} {
		wg.Add(1)
		go func(i int, tok string) {
			defer wg.Done()
			_, _, outcomes[i] = e.TxCommit(context.Background(), tok)
		}(i, tok)
	}
	wg.Wait()

	var oks, conflicts int
	for _, err := range outcomes {
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrConflict):
			conflicts++
		default:
			t.Fatalf("unexpected outcome: %v", err)
		}
	}
	if oks != 1 || conflicts != 1 {
		t.Fatalf("oks=%d conflicts=%d, want exactly one of each", oks, conflicts)
	}
	// Exactly one replacement landed: the view holds one row and it is
	// not the original key (the chosen translator may keep the displaced
	// base row outside the selection, so we assert on the view).
	v, _, err := e.lookupView("NY", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot()
	rows := v.Materialize(snap).Slice()
	if len(rows) != 1 {
		t.Fatalf("after the race NY has %d rows, want 1", len(rows))
	}
	if k, _ := rows[0].Get("EmpNo"); k.Int() == 1 {
		t.Fatal("winning replacement did not change the view row")
	}
}

// TestSingleShotConflict: two single-shot deletes of the same row
// translated against the same snapshot — the second fails op-level
// validation at apply time as ErrConflict.
func TestSingleShotConflict(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), nil)
	if err := insertKey(e, 7); err != nil {
		t.Fatal(err)
	}
	body := updateBody{Where: map[string]string{"EmpNo": "7"}}
	c1, _, _, b1, err := e.Translate(context.Background(), "NY", nil, e.buildRequest(update.Delete, body))
	if err != nil {
		t.Fatal(err)
	}
	c2, _, _, b2, err := e.Translate(context.Background(), "NY", nil, e.buildRequest(update.Delete, body))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(context.Background(), c1.Translation, false, b1); err != nil {
		t.Fatal(err)
	}
	_, err = e.Commit(context.Background(), c2.Translation, false, b2)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale delete = %v, want ErrConflict chain", err)
	}
}

// TestCrashMidBatchRecovery is acceptance (c): the WAL media dies mid
// group-commit; restart recovers to a state containing every
// acknowledged commit — acked implies durable, with no acked commit
// lost — and the torn batch never surfaces partially.
func TestCrashMidBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	var crash *faultinject.CrashWriter
	e := newTestEngine(t, dir, func(c *Config) {
		c.WrapWAL = func(f wal.File) wal.File {
			crash = &faultinject.CrashWriter{W: f, Limit: 700}
			return crash
		}
	})

	acked := map[int]bool{}
	// Land one commit synchronously so at least one ack precedes the
	// crash regardless of how the concurrent storm below batches up.
	if err := insertKey(e, 1); err != nil {
		t.Fatalf("pre-crash commit failed: %v", err)
	}
	acked[1] = true
	var ackMu sync.Mutex
	var wg sync.WaitGroup
	for i := 2; i <= 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := insertKey(e, i); err == nil {
				ackMu.Lock()
				acked[i] = true
				ackMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if !crash.Crashed() {
		t.Fatal("crash writer never hit its limit; raise the workload")
	}
	if len(acked) == 0 {
		t.Fatal("no commit was acked before the crash; lower the limit")
	}
	// No drain — the process "died". Reopen from disk.
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st.Close()
	db := st.DB()
	for k := range acked {
		found := false
		for _, tp := range db.Tuples("EMP") {
			if v, ok := tp.Get("EmpNo"); ok && v.Int() == int64(k) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("acked commit of key %d lost after crash recovery", k)
		}
	}
	if err := db.CheckAllInclusions(); err != nil {
		t.Fatalf("recovered state invalid: %v", err)
	}
}

// TestCommitPipelineFailpoint: the server.commit failpoint fails a
// whole batch cleanly — every waiter gets the error, nothing lands, and
// the pipeline keeps serving afterwards.
func TestCommitPipelineFailpoint(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), nil)
	boom := errors.New("boom")
	faultinject.Enable(faultinject.NewPlan(1).
		FailNth(faultinject.SiteServerCommit, 1, boom))
	defer faultinject.Disable()

	if err := insertKey(e, 1); !errors.Is(err, boom) {
		t.Fatalf("failpoint batch = %v, want boom", err)
	}
	snap, _ := e.Snapshot()
	if snap.Len("EMP") != 0 {
		t.Fatal("failed batch left rows behind")
	}
	if err := insertKey(e, 1); err != nil {
		t.Fatalf("pipeline dead after failpoint: %v", err)
	}
}

// TestAdmissionControl: with the committer stalled, submissions beyond
// MaxInFlight fail fast with ErrOverloaded and succeed again once the
// queue drains.
func TestAdmissionControl(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), func(c *Config) {
		c.MaxInFlight = 2
		c.MaxBatch = 2
	})
	e.stateMu.Lock()
	if err := submitAsync(e, 1); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)
	if err := submitAsync(e, 2); err != nil {
		t.Fatal(err)
	}
	if err := submitAsync(e, 3); err != nil {
		t.Fatal(err)
	}
	if err := submitAsync(e, 4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull queue = %v, want ErrOverloaded", err)
	}
	e.stateMu.Unlock()
	// Once the pipeline drains, admission recovers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := insertKey(e, 5); err == nil {
			break
		} else if !errors.Is(err, ErrOverloaded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCommitDeadline: a caller whose context expires while its commit
// is queued gets a deadline error that wraps context.DeadlineExceeded —
// the commit's fate is unknown, and it may still land.
func TestCommitDeadline(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), nil)
	e.stateMu.Lock()
	if err := submitAsync(e, 1); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)
	body := updateBody{Values: []string{"2", "NY"}}
	cand, _, _, base, err := e.Translate(context.Background(), "NY", nil, e.buildRequest(update.Insert, body))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = e.Commit(ctx, cand.Translation, false, base)
	e.stateMu.Unlock()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline commit = %v, want DeadlineExceeded chain", err)
	}
}

// TestDrainFlushesQueuedCommits: Close stops admission, but every
// commit already queued still lands and is durable after the drain
// checkpoint.
func TestDrainFlushesQueuedCommits(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MaxInFlight: 16, MaxBatch: 8}
	e, err := NewEngine(cfg, testScript)
	if err != nil {
		t.Fatal(err)
	}
	e.stateMu.Lock()
	if err := submitAsync(e, 1); err != nil {
		t.Fatal(err)
	}
	waitForPickup(t, e)
	const k = 4
	done := make([]chan error, k)
	for i := 0; i < k; i++ {
		done[i] = make(chan error, 1)
		i := i
		go func() { done[i] <- insertKey(e, 10+i) }()
	}
	waitForDepth(t, e, k)

	closed := make(chan error, 1)
	go func() { closed <- e.Close() }()
	e.stateMu.Unlock()
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := <-done[i]; err != nil {
			t.Fatalf("queued commit %d lost in drain: %v", i, err)
		}
	}
	if err := insertKey(e, 99); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain commit = %v, want ErrDraining", err)
	}

	// The drain checkpointed: recovery needs no replay.
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.DB().Len("EMP") != k+1 {
		t.Fatalf("recovered %d rows, want %d", st.DB().Len("EMP"), k+1)
	}
	if rep := st.Report(); rep.Replayed != 0 {
		t.Fatalf("drain did not checkpoint: %d records replayed", rep.Replayed)
	}
}

// TestTxLifecycle: staged reads see uncommitted writes, rollback
// discards them, expiry reaps idle tokens.
func TestTxLifecycle(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), func(c *Config) { c.TxTTL = 50 * time.Millisecond })
	if err := insertKey(e, 1); err != nil {
		t.Fatal(err)
	}

	tok, err := e.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	body := updateBody{Values: []string{"2", "NY"}}
	if _, _, err := e.TxUpdate(context.Background(), tok, "NY", nil, e.buildRequest(update.Insert, body)); err != nil {
		t.Fatal(err)
	}
	staged, err := e.TxView(tok)
	if err != nil {
		t.Fatal(err)
	}
	if staged.Len("EMP") != 2 {
		t.Fatalf("staged read sees %d rows, want 2", staged.Len("EMP"))
	}
	snap, _ := e.Snapshot()
	if snap.Len("EMP") != 1 {
		t.Fatal("uncommitted write leaked into the published snapshot")
	}
	if err := e.TxRollback(tok); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.TxCommit(context.Background(), tok); !errors.Is(err, ErrNoTx) {
		t.Fatalf("commit after rollback = %v, want ErrNoTx", err)
	}

	// Expiry: an idle token is reaped after its TTL.
	tok2, err := e.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err := e.TxView(tok2); !errors.Is(err, ErrNoTx) {
		t.Fatalf("expired tx read = %v, want ErrNoTx", err)
	}
}

// TestEmptyTxCommit: a transaction with no net change commits cleanly
// without entering the pipeline.
func TestEmptyTxCommit(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), nil)
	tok, err := e.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := e.TxCommit(context.Background(), tok)
	if err != nil || n != 0 {
		t.Fatalf("empty commit = (%d, %v), want (0, nil)", n, err)
	}
}

// TestHealth reflects engine state transitions.
func TestHealth(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), nil)
	h := e.Health()
	if h.Status != "ok" || !h.Durable || len(h.Views) != 1 || h.Views[0] != "NY" {
		t.Fatalf("health = %+v", h)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if h := e.Health(); h.Status != "draining" {
		t.Fatalf("post-close status %q, want draining", h.Status)
	}
}

// TestMemoryOnlyEngine: with no data dir the pipeline works without a
// store.
// TestRestartWithSameInitScript: booting a second engine over the
// recovered store with the identical init script must succeed — the
// snapshot already holds the DDL, so the script's CREATEs are skipped
// rather than fatal, and the view is redefined (views are not durable).
func TestRestartWithSameInitScript(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, dir, nil)
	if err := insertKey(e, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(Config{Dir: dir, RequestTimeout: time.Second}, testScript)
	if err != nil {
		t.Fatalf("restart with same init script: %v", err)
	}
	defer e2.Close()
	v, _, err := e2.lookupView("NY", nil)
	if err != nil {
		t.Fatalf("view NY must exist after restart: %v", err)
	}
	snap, _ := e2.Snapshot()
	if rows := v.Materialize(snap).Slice(); len(rows) != 1 {
		t.Fatalf("view NY has %d rows after restart, want 1", len(rows))
	}
	// The engine stays writable: the next commit lands normally.
	if err := insertKey(e2, 8); err != nil {
		t.Fatalf("insert after restart: %v", err)
	}
}

func TestMemoryOnlyEngine(t *testing.T) {
	e := newTestEngine(t, "", nil)
	if err := insertKey(e, 1); err != nil {
		t.Fatal(err)
	}
	if h := e.Health(); h.Durable {
		t.Fatal("memory-only engine claims durability")
	}
	snap, _ := e.Snapshot()
	if snap.Len("EMP") != 1 {
		t.Fatal("memory commit did not land")
	}
}

// TestCloseIdempotent: double Close is safe.
func TestCloseIdempotent(t *testing.T) {
	e := newTestEngine(t, t.TempDir(), nil)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
