package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/persist"
	"viewupdate/internal/shard"
	"viewupdate/internal/update"
	"viewupdate/internal/wal"
)

// shardScript is the sharded serving test schema: a parent/child pair
// under an inclusion dependency plus a join view rooted at the child,
// so join-view inserts extend across both relations — cross-shard
// whenever the two root keys hash apart.
const shardScript = `
CREATE DOMAIN EKey AS INT RANGE 1 TO 100000;
CREATE DOMAIN DKey AS INT RANGE 1 TO 100000;
CREATE DOMAIN Funds AS INT RANGE 0 TO 100;
CREATE TABLE DEPT (DNo DKey, Budget Funds, PRIMARY KEY (DNo));
CREATE TABLE EMP (ENo EKey, Dept DKey, PRIMARY KEY (ENo),
                  FOREIGN KEY (Dept) REFERENCES DEPT);
CREATE VIEW DV AS SELECT * FROM DEPT;
CREATE VIEW EV AS SELECT * FROM EMP;
CREATE JOIN VIEW ED ROOT EV WITH EV (Dept) REFERENCES DV;
`

// newShardEngine builds an N-way sharded engine over dir.
func newShardEngine(t *testing.T, dir string, n int, mut func(*Config)) *Engine {
	t.Helper()
	cfg := Config{Dir: dir, Shards: n, MaxInFlight: 32, MaxBatch: 8,
		RequestTimeout: 5 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	e, err := NewEngine(cfg, shardScript)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// insertED inserts (eno, dno) through the join view with an optional
// idempotency key: SPJ-I extends the missing DEPT parent, so the
// translation spans EMP and DEPT — cross-shard when their keys hash to
// different shards.
func insertED(e *Engine, eno, dno int, key string) error {
	body := updateBody{Values: []string{
		strconv.Itoa(eno), strconv.Itoa(dno), strconv.Itoa(dno), "7"}}
	cand, _, _, base, err := e.Translate(context.Background(), "ED", nil, e.buildRequest(update.Insert, body))
	if err != nil {
		return err
	}
	if key != "" {
		if _, dup := e.idem.reserve(key); dup {
			return nil
		}
	}
	_, err = e.CommitKeyed(context.Background(), cand.Translation, false, base, key)
	return err
}

// insertDept inserts a lone parent row through the DV selection view —
// always single-shard.
func insertDept(e *Engine, dno int) error {
	body := updateBody{Values: []string{strconv.Itoa(dno), "7"}}
	cand, _, _, base, err := e.Translate(context.Background(), "DV", nil, e.buildRequest(update.Insert, body))
	if err != nil {
		return err
	}
	_, err = e.Commit(context.Background(), cand.Translation, false, base)
	return err
}

// TestShardedCommitsAndRecovery is the sharded twin of the engine's
// acceptance test: concurrent single- and cross-shard commits all land,
// the health report exposes the shard version vector, and a restart
// over the shard directory recovers exactly the committed state.
func TestShardedCommitsAndRecovery(t *testing.T) {
	sink := metricsSink(t)
	dir := t.TempDir()
	e := newShardEngine(t, dir, 4, nil)

	const n = 24
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = insertED(e, i+1, i+1001, "")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sharded commit %d failed: %v", i, err)
		}
	}
	snap, version := e.Snapshot()
	if snap.Len("EMP") != n || snap.Len("DEPT") != n {
		t.Fatalf("snapshot EMP=%d DEPT=%d, want %d each", snap.Len("EMP"), snap.Len("DEPT"), n)
	}
	if version != n {
		t.Fatalf("version %d, want %d", version, n)
	}

	h := e.Health()
	if h.Shards != 4 || len(h.ShardVersions) != 4 {
		t.Fatalf("healthz shards=%d vector=%v, want 4 shards", h.Shards, h.ShardVersions)
	}
	if !h.Durable || h.Status != "ok" {
		t.Fatalf("healthz = %+v, want durable ok", h)
	}
	var durableMax uint64
	for _, v := range h.ShardVersions {
		if v > durableMax {
			durableMax = v
		}
	}
	if durableMax == 0 {
		t.Fatalf("no shard reports durable progress: %v", h.ShardVersions)
	}

	ms := sink.Metrics().Snapshot()
	if ms.Counters["server.cross.commits"] == 0 {
		t.Fatalf("no cross-shard commits observed over %d extend-inserts on 4 shards", n)
	}
	perShard := int64(0)
	for i := 0; i < 4; i++ {
		perShard += ms.Counters[fmt.Sprintf("server.shard.%d.committed", i)]
	}
	if perShard != int64(n) {
		t.Fatalf("per-shard committed counters sum to %d, want %d", perShard, n)
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: state and shard count recover.
	e2 := newShardEngine(t, dir, 4, nil)
	set, _, err := e2.ReadView("ED")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != n {
		t.Fatalf("recovered join view has %d rows, want %d", set.Len(), n)
	}
	if err := insertED(e2, 500, 1501, ""); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
}

// TestShardedShardCountMismatch: reopening a shard store with the wrong
// -shards value must fail loudly, not silently repartition.
func TestShardedShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	e := newShardEngine(t, dir, 2, nil)
	if err := insertDept(e, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := NewEngine(Config{Dir: dir, Shards: 4}, shardScript)
	if err == nil {
		t.Fatal("reopening a 2-shard store with Shards=4 should fail")
	}
}

// TestShardedIdemReplayAfterKill: a keyed commit survives a crash (Kill
// skips the checkpoint), and the restarted engine seeds the dedup table
// from the per-shard WALs under BOTH the raw key and its (shard, key)
// scoped alias, resolving to one shared outcome.
func TestShardedIdemReplayAfterKill(t *testing.T) {
	dir := t.TempDir()
	e := newShardEngine(t, dir, 3, nil)
	if err := insertED(e, 42, 4242, "req-42"); err != nil {
		t.Fatal(err)
	}
	e.Kill()

	e2 := newShardEngine(t, dir, 3, nil)
	ent, dup := e2.idem.reserve("req-42")
	if !dup || !ent.ok || !ent.replayed {
		t.Fatalf("raw key after recovery: dup=%v entry=%+v, want replayed fulfilled", dup, ent)
	}
	// The scoped alias points at the same entry.
	found := false
	for i := 0; i < 3; i++ {
		if scoped, sdup := e2.idem.reserve(shardIdemKey(i, "req-42")); sdup {
			if scoped != ent {
				t.Fatalf("scoped key on shard %d resolves to a different entry", i)
			}
			found = true
		} else {
			e2.idem.release(shardIdemKey(i, "req-42"))
		}
	}
	if !found {
		t.Fatal("no shard-scoped alias was seeded for the recovered key")
	}
	// The commit itself is durable: the row survived the crash.
	set, _, err := e2.ReadView("EV")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("recovered EMP view has %d rows, want 1", set.Len())
	}
}

// TestShardedBrokenShardDegrades: when one shard's WAL media dies, the
// affected commits answer ErrNotDurable, the breaker browns the engine
// out, health reports broken, and reads keep serving.
func TestShardedBrokenShardDegrades(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	armed := map[int]*faultinject.ArmedCrashWriter{}
	e := newShardEngine(t, dir, 2, func(c *Config) {
		c.BreakerCooldown = time.Minute
		c.WrapShardWAL = func(i int, f wal.File) wal.File {
			w := &faultinject.ArmedCrashWriter{W: f}
			mu.Lock()
			armed[i] = w
			mu.Unlock()
			return w
		}
	})
	if err := insertDept(e, 1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	for _, w := range armed {
		w.Crash(0)
	}
	mu.Unlock()

	var gotNotDurable bool
	for i := 2; i < 20; i++ {
		err := insertDept(e, i)
		if err == nil {
			t.Fatalf("insert %d landed on crashed media", i)
		}
		if errors.Is(err, persist.ErrNotDurable) {
			gotNotDurable = true
			break
		}
		// Brownout rejections after the breaker trips are also fine.
		if errors.Is(err, ErrOverloaded) || e.Degraded() {
			break
		}
	}
	if !gotNotDurable && !e.Degraded() {
		t.Fatal("crashed shard media produced neither ErrNotDurable nor degradation")
	}
	if e.Ready() {
		t.Fatal("engine still ready with a broken shard")
	}
	h := e.Health()
	if h.Status != "broken" && h.Status != "degraded" {
		t.Fatalf("health status %q, want broken or degraded", h.Status)
	}
	// Reads keep serving the published (pre-crash plus unacked) state.
	if _, _, err := e.ReadView("DV"); err != nil {
		t.Fatalf("read during brownout: %v", err)
	}
	e.Kill() // crashed media: skip the checkpoint path
}

// TestShardedDDLAndScriptWrites: ExecScript DDL after boot quiesces the
// pipelines and re-checkpoints (the manifest gains the new relation and
// its inclusions), and script INSERTs journal synchronously through the
// shard store; everything survives a restart.
func TestShardedDDLAndScriptWrites(t *testing.T) {
	dir := t.TempDir()
	e := newShardEngine(t, dir, 2, nil)
	if err := insertED(e, 7, 70, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecScript(`
CREATE TABLE ANNEX (ANo EKey, Dept DKey, PRIMARY KEY (ANo),
                    FOREIGN KEY (Dept) REFERENCES DEPT);
INSERT INTO ANNEX VALUES (9, 70);
`); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot()
	if snap.Len("ANNEX") != 1 {
		t.Fatalf("ANNEX has %d rows, want 1", snap.Len("ANNEX"))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart proves the DDL checkpoint landed the new relation AND
	// its inclusion dependency in the manifest.
	st, err := shard.Open(dir, 2, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.DB().Len("ANNEX") != 1 || st.DB().Len("EMP") != 1 || st.DB().Len("DEPT") != 1 {
		t.Fatalf("recovered ANNEX=%d EMP=%d DEPT=%d, want 1 each",
			st.DB().Len("ANNEX"), st.DB().Len("EMP"), st.DB().Len("DEPT"))
	}
	if len(st.DB().Schema().Inclusions()) != 2 {
		t.Fatalf("recovered %d inclusions, want 2", len(st.DB().Schema().Inclusions()))
	}
}
