package server

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// ivmScript defines an SP view, a join view, and enough domain room for
// a churn stream: CXD is the join root, AB the referenced non-root.
const ivmScript = `
CREATE DOMAIN ADom AS STRING ('a0', 'a1', 'a2', 'a3', 'a4', 'a5');
CREATE DOMAIN BDom AS INT RANGE 1 TO 99;
CREATE DOMAIN CDom AS STRING ('c0', 'c1', 'c2', 'c3', 'c4', 'c5', 'c6', 'c7');
CREATE DOMAIN DDom AS INT RANGE 1 TO 99;
CREATE TABLE AB (A ADom, B BDom, PRIMARY KEY (A));
CREATE TABLE CXD (C CDom, X ADom, D DDom, PRIMARY KEY (C),
                  FOREIGN KEY (X) REFERENCES AB);
INSERT INTO AB VALUES ('a0', 1);
INSERT INTO AB VALUES ('a1', 2);
INSERT INTO AB VALUES ('a2', 3);
INSERT INTO CXD VALUES ('c0', 'a0', 10);
INSERT INTO CXD VALUES ('c1', 'a0', 11);
INSERT INTO CXD VALUES ('c2', 'a1', 12);
CREATE VIEW ABV AS SELECT * FROM AB;
CREATE VIEW CXDV AS SELECT * FROM CXD;
CREATE JOIN VIEW J ROOT CXDV WITH CXDV (X) REFERENCES ABV;
`

func newIVMEngine(t *testing.T, mut func(*Config)) *Engine {
	t.Helper()
	cfg := Config{MaxInFlight: 16, MaxBatch: 8, RequestTimeout: 5 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	e, err := NewEngine(cfg, ivmScript)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// checkViewsFresh reads every view through the (possibly patched)
// cache and pins it byte-for-byte to a fresh materialization of the
// published snapshot.
func checkViewsFresh(t *testing.T, e *Engine, ctx string) {
	t.Helper()
	db, _ := e.Snapshot()
	for _, name := range e.ViewNames() {
		v, _, err := e.lookupView(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, want := e.materializeOn(v, db), v.Materialize(db)
		if !got.Equal(want) {
			t.Fatalf("%s: cached %s has %d rows, fresh materialization %d",
				ctx, name, got.Len(), want.Len())
		}
	}
}

// randomBaseTranslation draws a random base change: payload replaces on
// both levels, FK retargets, root inserts/deletes, non-root inserts —
// occasionally invalid against the current state (skipped by the
// caller on conflict).
func randomBaseTranslation(e *Engine, rng *rand.Rand) *update.Translation {
	db, _ := e.Snapshot()
	sch := db.Schema()
	ab, cxd := sch.Relation("AB"), sch.Relation("CXD")
	abTs, cxdTs := db.Tuples("AB"), db.Tuples("CXD")
	pick := func(ts []tuple.T) (tuple.T, bool) {
		if len(ts) == 0 {
			return tuple.T{}, false
		}
		return ts[rng.Intn(len(ts))], true
	}
	switch rng.Intn(6) {
	case 0: // non-root payload replace: the IVM-critical case
		old, ok := pick(abTs)
		if !ok {
			return nil
		}
		return update.NewTranslation(update.NewReplace(old,
			old.MustWith("B", value.NewInt(int64(1+rng.Intn(99))))))
	case 1: // root payload replace
		old, ok := pick(cxdTs)
		if !ok {
			return nil
		}
		return update.NewTranslation(update.NewReplace(old,
			old.MustWith("D", value.NewInt(int64(1+rng.Intn(99))))))
	case 2: // root FK retarget
		old, ok := pick(cxdTs)
		if !ok {
			return nil
		}
		parent, ok := pick(abTs)
		if !ok {
			return nil
		}
		return update.NewTranslation(update.NewReplace(old,
			old.MustWith("X", parent.MustGet("A"))))
	case 3: // root insert under a random key (conflicts when taken)
		parent, ok := pick(abTs)
		if !ok {
			return nil
		}
		c := value.NewString(fmt.Sprintf("c%d", rng.Intn(8)))
		return update.NewTranslation(update.NewInsert(tuple.MustNew(cxd,
			c, parent.MustGet("A"), value.NewInt(int64(1+rng.Intn(99))))))
	case 4: // root delete
		old, ok := pick(cxdTs)
		if !ok {
			return nil
		}
		return update.NewTranslation(update.NewDelete(old))
	default: // non-root insert under a random key (conflicts when taken)
		a := value.NewString(fmt.Sprintf("a%d", rng.Intn(6)))
		return update.NewTranslation(update.NewInsert(tuple.MustNew(ab,
			a, value.NewInt(int64(1+rng.Intn(99))))))
	}
}

// TestViewCachePatchedAcrossCommits is the serving half of the IVM
// churn property: after every commit of a random base-change stream,
// the delta-patched cached sets must equal a fresh materialization of
// the published snapshot — and after the warmup reads, no commit may
// trigger a rematerialization (server.ivm.rebuild stays flat while
// server.ivm.patch grows).
func TestViewCachePatchedAcrossCommits(t *testing.T) {
	sink := metricsSink(t)
	e := newIVMEngine(t, nil)
	rng := rand.New(rand.NewSource(5))

	checkViewsFresh(t, e, "warmup")
	warm := sink.Metrics().Snapshot()
	if warm.Counters["server.ivm.rebuild"] == 0 {
		t.Fatal("warmup reads should have rebuilt the cold cache")
	}

	committed := 0
	for i := 0; i < 60; i++ {
		tr := randomBaseTranslation(e, rng)
		if tr == nil {
			continue
		}
		if _, err := e.Commit(context.Background(), tr, false, 0); err != nil {
			continue // randomly invalid against the current state
		}
		committed++
		checkViewsFresh(t, e, fmt.Sprintf("after commit %d", i))
	}
	if committed < 20 {
		t.Fatalf("only %d/60 random commits landed", committed)
	}

	snap := sink.Metrics().Snapshot()
	if got, want := snap.Counters["server.ivm.rebuild"], warm.Counters["server.ivm.rebuild"]; got != want {
		t.Errorf("server.ivm.rebuild grew from %d to %d: commits invalidated warm entries", want, got)
	}
	if snap.Counters["server.ivm.patch"] == 0 {
		t.Error("server.ivm.patch = 0: no cached set was delta-patched")
	}
	if snap.Counters["server.viewcache.hit"] == 0 {
		t.Error("server.viewcache.hit = 0: patched entries were never served")
	}
}

// TestViewCacheDDLForcesRebuild pins the patch-vs-rebuild decision: DDL
// goes through ExecScript, which bumps the version without patching, so
// the next read rematerializes.
func TestViewCacheDDLForcesRebuild(t *testing.T) {
	sink := metricsSink(t)
	e := newIVMEngine(t, nil)
	checkViewsFresh(t, e, "warmup")
	before := sink.Metrics().Snapshot()

	if _, err := e.ExecScript("INSERT INTO AB VALUES ('a5', 50);"); err != nil {
		t.Fatal(err)
	}
	checkViewsFresh(t, e, "after DDL-path script")

	after := sink.Metrics().Snapshot()
	if after.Counters["server.ivm.rebuild"] <= before.Counters["server.ivm.rebuild"] {
		t.Error("ExecScript should invalidate the cache and force rebuilds")
	}
}

// TestViewCacheDisableIVM pins the baseline knob: with DisableIVM the
// engine behaves like PR 4 — every commit invalidates, nothing is
// patched, reads stay correct.
func TestViewCacheDisableIVM(t *testing.T) {
	sink := metricsSink(t)
	e := newIVMEngine(t, func(c *Config) { c.DisableIVM = true })
	rng := rand.New(rand.NewSource(9))

	checkViewsFresh(t, e, "warmup")
	committed := 0
	for i := 0; i < 20 && committed < 5; i++ {
		tr := randomBaseTranslation(e, rng)
		if tr == nil {
			continue
		}
		if _, err := e.Commit(context.Background(), tr, false, 0); err != nil {
			continue
		}
		committed++
		checkViewsFresh(t, e, "after commit (IVM disabled)")
	}
	if committed == 0 {
		t.Fatal("no commit landed")
	}
	if n := sink.Metrics().Snapshot().Counters["server.ivm.patch"]; n != 0 {
		t.Errorf("server.ivm.patch = %d with DisableIVM, want 0", n)
	}
}
