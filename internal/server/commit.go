package server

import (
	"errors"
	"fmt"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/update"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// A commitReq is one translation waiting in the pipeline.
type commitReq struct {
	tr *update.Translation
	// strict demands the database version still equal baseVersion when
	// the commit applies (wire-transaction commits). Non-strict commits
	// are validated op-by-op by storage instead: a removed tuple that
	// vanished, a key collision, or an inclusion violation at apply time
	// is a conflict.
	strict      bool
	baseVersion uint64
	done        chan commitRes
}

type commitRes struct {
	err     error
	version uint64
}

// runCommitter is the single writer: it owns every mutation of the
// live database that goes through the pipeline. It gathers queued
// commits into batches — everything already waiting, up to MaxBatch —
// so that concurrent commits share one WAL append and one fsync.
func (e *Engine) runCommitter() {
	defer close(e.drained)
	for {
		first, ok := <-e.commitC
		if !ok {
			return
		}
		batch := []*commitReq{first}
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r, more := <-e.commitC:
				if !more {
					e.commitBatch(batch)
					return
				}
				batch = append(batch, r)
			default:
				goto gathered
			}
		}
	gathered:
		e.commitBatch(batch)
	}
}

// commitBatch lands one batch: recheck optimistic conflicts against the
// live state, apply the survivors through the store's group commit,
// bump the version by the number of commits that landed, publish a
// fresh snapshot, and answer every waiter.
func (e *Engine) commitBatch(batch []*commitReq) {
	sp := obs.StartSpan("server.commit.batch")
	defer sp.End()
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	obs.Inc("server.commit.batches")
	obs.Observe("server.commit.batch_size", int64(len(batch)))

	if ferr := faultinject.Hit(faultinject.SiteServerCommit); ferr != nil {
		err := fmt.Errorf("server: commit pipeline: %w", ferr)
		for _, r := range batch {
			r.done <- commitRes{err: err}
		}
		return
	}

	oldSnap := e.snap.Load()
	version := oldSnap.version

	// Strict commits are validated against the version their state was
	// staged from, ordered ahead of the op-validated commits so the
	// predicted version at each strict commit's apply point is exact: a
	// strict commit admitted at its own base version applies to exactly
	// the state it was staged from and cannot fail op-level validation.
	var admitted []*commitReq
	var rest []*commitReq
	predicted := version
	for _, r := range batch {
		if !r.strict {
			rest = append(rest, r)
			continue
		}
		if r.baseVersion != predicted {
			obs.Inc("server.commit.conflict")
			r.done <- commitRes{err: fmt.Errorf("%w: database moved from version %d to %d since BEGIN",
				ErrConflict, r.baseVersion, predicted)}
			continue
		}
		admitted = append(admitted, r)
		predicted++
	}
	admitted = append(admitted, rest...)
	if len(admitted) == 0 {
		return
	}

	trs := make([]*update.Translation, len(admitted))
	for i, r := range admitted {
		trs[i] = r.tr
	}
	errs := e.applyBatch(trs)

	landed := 0
	var landedTrs []*update.Translation
	for i, r := range admitted {
		if err := errs[i]; err != nil {
			r.done <- commitRes{err: classifyApplyError(err)}
			continue
		}
		landed++
		landedTrs = append(landedTrs, r.tr)
		r.done <- commitRes{version: version + uint64(landed)}
	}
	if landed > 0 {
		version += uint64(landed)
		e.publishSnapshot(version)
		e.patchViewCache(oldSnap, e.snap.Load(), landedTrs)
		obs.Add("server.commit.committed", int64(landed))
	}
}

// applyBatch lands translations on the durable store when one is
// attached, or directly on the in-memory database otherwise.
func (e *Engine) applyBatch(trs []*update.Translation) []error {
	if e.store != nil {
		return e.store.ApplyBatch(trs)
	}
	errs := make([]error, len(trs))
	for i, tr := range trs {
		errs[i] = e.db.Apply(tr)
	}
	return errs
}

// classifyApplyError folds an apply-time failure into the serving
// taxonomy: transient, corrupt, non-durable (WAL I/O) and sealed-log
// failures pass through for the HTTP layer to map to 503/500;
// everything else is a validation failure of a translation staged
// against a stale snapshot — an optimistic conflict.
func classifyApplyError(err error) error {
	if vuerr.IsTransient(err) || vuerr.IsCorrupt(err) ||
		errors.Is(err, persist.ErrNotDurable) || errors.Is(err, wal.ErrSealed) {
		return err
	}
	obs.Inc("server.commit.conflict")
	return fmt.Errorf("%w: %w", ErrConflict, err)
}
