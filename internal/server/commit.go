package server

import (
	"errors"
	"fmt"
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/update"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// Stage histogram names of the pipeline trace, pre-declared so the hot
// path observes them without building strings. Every name lands in the
// trace of each request that passed through the stage and in the
// corresponding histogram; docs/OBSERVABILITY.md documents the
// semantics of each.
const (
	stageTranslateNS = "server.stage.translate.ns"
	stageVerifyNS    = "server.stage.verify.ns"
	stageQueueNS     = "server.stage.queue.ns"
	stageCommitNS    = "server.stage.commit.ns"
	stageFsyncNS     = "server.stage.fsync.ns"
	stagePublishNS   = "server.stage.publish.ns"
)

// A commitReq is one translation waiting in the pipeline.
type commitReq struct {
	tr *update.Translation
	// strict demands the database version still equal baseVersion when
	// the commit applies (wire-transaction commits). Non-strict commits
	// are validated op-by-op by storage instead: a removed tuple that
	// vanished, a key collision, or an inclusion violation at apply time
	// is a conflict.
	strict      bool
	baseVersion uint64
	// key is the request's idempotency key ("" for none): written into
	// the WAL translation frame and fulfilled/released in the dedup
	// table by the committer.
	key  string
	done chan commitRes
	// trace, when non-nil, is the submitting request's pipeline trace;
	// the committer records the queue/commit/fsync/publish stages into
	// it. enqueued is the submission time the queue stage is measured
	// from (set only when trace is non-nil).
	trace    *obs.Trace
	enqueued time.Time
}

type commitRes struct {
	err     error
	version uint64
}

// runCommitter is the single writer: it owns every mutation of the
// live database that goes through the pipeline. It gathers queued
// commits into batches through the adaptive batcher — everything
// already waiting, up to MaxBatch, plus whatever a bounded wait-a-
// little window accumulates under load — so that concurrent commits
// share one WAL append and one fsync (see batch.go).
func (e *Engine) runCommitter() {
	defer close(e.drained)
	b := newBatcher(e.commitC, e.cfg.MaxBatch, e.cfg.batchDelay(), realClock{})
	for {
		batch, more := b.next()
		if len(batch) > 0 {
			e.commitBatch(batch)
		}
		if !more {
			return
		}
	}
}

// commitBatch lands one batch: recheck optimistic conflicts against the
// live state, apply the survivors through the store's group commit,
// bump the version by the number of commits that landed, publish a
// fresh snapshot, and answer every waiter. Along the way it records the
// pipeline stages — queue wait per request; commit, fsync and publish
// per batch — into the stage histograms and into each request's trace
// (the batch-shared stages with the same shared duration, since that is
// what each request actually waited for).
func (e *Engine) commitBatch(batch []*commitReq) {
	sp := obs.StartSpan("server.commit.batch")
	defer sp.End()
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	obs.Inc("server.commit.batches")
	obs.Observe("server.commit.batch_size", int64(len(batch)))
	obs.SetGauge("server.commit.queue_depth", int64(len(e.commitC)))

	timed := obs.Enabled()
	if timed {
		now := time.Now()
		for _, r := range batch {
			if r.trace != nil {
				wait := now.Sub(r.enqueued)
				r.trace.Stage("queue", wait)
				obs.Observe(stageQueueNS, int64(wait))
			}
		}
	}

	if ferr := faultinject.Hit(faultinject.SiteServerCommit); ferr != nil {
		err := fmt.Errorf("server: commit pipeline: %w", ferr)
		e.brk.onFailure(err)
		for _, r := range batch {
			e.releaseKey(r)
			r.done <- commitRes{err: err}
		}
		return
	}

	oldSnap := e.snap.Load()
	version := oldSnap.version

	// Strict commits are validated against the version their state was
	// staged from, ordered ahead of the op-validated commits so the
	// predicted version at each strict commit's apply point is exact: a
	// strict commit admitted at its own base version applies to exactly
	// the state it was staged from and cannot fail op-level validation.
	var admitted []*commitReq
	var rest []*commitReq
	predicted := version
	for _, r := range batch {
		if !r.strict {
			rest = append(rest, r)
			continue
		}
		if r.baseVersion != predicted {
			obs.Inc("server.commit.conflict")
			e.releaseKey(r)
			r.done <- commitRes{err: fmt.Errorf("%w: database moved from version %d to %d since BEGIN",
				ErrConflict, r.baseVersion, predicted)}
			continue
		}
		admitted = append(admitted, r)
		predicted++
	}
	admitted = append(admitted, rest...)
	if len(admitted) == 0 {
		return
	}

	trs := make([]*update.Translation, len(admitted))
	keys := make([]string, len(admitted))
	for i, r := range admitted {
		trs[i] = r.tr
		keys[i] = r.key
	}
	errs, stats := e.applyBatch(trs, keys)

	// The commit stage is the batch's time applying in memory and
	// writing the WAL, minus the durability barrier, which is its own
	// stage. Both are batch-shared: every request in the batch waited
	// for the whole batch to land.
	commitNS := stats.ApplyNS + stats.WALNS - stats.FsyncNS
	if timed {
		obs.Observe(stageCommitNS, commitNS)
		if stats.Synced {
			obs.Observe(stageFsyncNS, stats.FsyncNS)
		}
	}

	landed := 0
	var landedReqs []*commitReq
	var landedTrs []*update.Translation
	for i, r := range admitted {
		if err := errs[i]; err != nil {
			// A failed slot applied nothing: free its idempotency key so
			// a retry re-executes, and feed the breaker — durability
			// failures (not conflicts) push it toward brownout.
			e.releaseKey(r)
			e.brk.onFailure(err)
			r.done <- commitRes{err: classifyApplyError(err)}
			continue
		}
		landed++
		landedReqs = append(landedReqs, r)
		landedTrs = append(landedTrs, r.tr)
	}
	if landed > 0 {
		e.brk.onSuccess()
		// The publish failpoint exists for chaos kill triggers: the batch
		// is already durable, so an injected error cannot unland it and
		// is deliberately ignored.
		if ferr := faultinject.Hit(faultinject.SiteServerPublish); ferr != nil {
			e.logf("ignoring injected publish fault (batch already durable)", "err", ferr.Error())
		}
		var pubStart time.Time
		if timed {
			pubStart = time.Now()
		}
		version += uint64(landed)
		e.publishSnapshot(version)
		e.patchViewCache(oldSnap, e.snap.Load(), landedTrs)
		obs.Add("server.commit.committed", int64(landed))
		var publishNS int64
		if timed {
			publishNS = int64(time.Since(pubStart))
			obs.Observe(stagePublishNS, publishNS)
		}
		// Answer the waiters only after publish, so a request that gets
		// its commit acknowledged can immediately re-read the view at
		// (at least) the version it landed at, and its trace covers the
		// full pipeline.
		v := version - uint64(landed)
		for _, r := range landedReqs {
			v++
			if r.key != "" {
				e.idem.fulfill(r.key, v)
			}
			if r.trace != nil {
				r.trace.Stage("commit", time.Duration(commitNS))
				if stats.Synced {
					r.trace.Stage("fsync", time.Duration(stats.FsyncNS))
				}
				r.trace.Stage("publish", time.Duration(publishNS))
			}
			r.done <- commitRes{version: v}
		}
	}
}

// releaseKey frees a request's idempotency reservation after a clean
// failure (nothing applied), letting a retry execute fresh.
func (e *Engine) releaseKey(r *commitReq) {
	if r.key != "" {
		e.idem.release(r.key)
	}
}

// applyBatch lands translations on the durable store when one is
// attached, or directly on the in-memory database otherwise. keys are
// the translations' idempotency keys, recorded in the WAL frames so
// recovery can rebuild the dedup table. The returned stats are
// populated only while instrumentation is enabled.
func (e *Engine) applyBatch(trs []*update.Translation, keys []string) ([]error, persist.ApplyStats) {
	if e.store != nil {
		return e.store.ApplyBatchKeyed(trs, keys)
	}
	var stats persist.ApplyStats
	timed := obs.Enabled()
	var start time.Time
	if timed {
		start = time.Now()
	}
	errs := make([]error, len(trs))
	for i, tr := range trs {
		errs[i] = e.db.Apply(tr)
	}
	if timed {
		stats.ApplyNS = int64(time.Since(start))
	}
	return errs, stats
}

// classifyApplyError folds an apply-time failure into the serving
// taxonomy: transient, corrupt, non-durable (WAL I/O) and sealed-log
// failures pass through for the HTTP layer to map to 503/500;
// everything else is a validation failure of a translation staged
// against a stale snapshot — an optimistic conflict.
func classifyApplyError(err error) error {
	if vuerr.IsTransient(err) || vuerr.IsCorrupt(err) ||
		errors.Is(err, persist.ErrNotDurable) || errors.Is(err, wal.ErrSealed) {
		return err
	}
	obs.Inc("server.commit.conflict")
	return fmt.Errorf("%w: %w", ErrConflict, err)
}
