package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"viewupdate/internal/core"
	"viewupdate/internal/obs"
	"viewupdate/internal/storage"
	"viewupdate/internal/view"
)

// ErrNoTx marks a request carrying an unknown or expired transaction
// token.
var ErrNoTx = errors.New("server: unknown or expired transaction")

// A wireTx is one open wire transaction: a copy-on-write overlay all
// its statements run against, the version of the snapshot it was
// staged from (checked strictly at commit), and a deadline after which
// the sweeper reaps it.
type wireTx struct {
	token       string
	mu          sync.Mutex // serializes statements on one token
	staged      *storage.Overlay
	baseVersion uint64
	expires     time.Time
	ops         int
}

// txTable tracks open transactions by token.
type txTable struct {
	mu  sync.Mutex
	m   map[string]*wireTx
	ttl time.Duration
}

func (t *txTable) open() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// sweepLocked drops expired transactions. Called under t.mu.
func (t *txTable) sweepLocked(now time.Time) {
	for tok, tx := range t.m {
		if now.After(tx.expires) {
			delete(t.m, tok)
			obs.Inc("server.tx.expired")
		}
	}
	obs.SetGauge("server.tx.open", int64(len(t.m)))
}

func (t *txTable) put(tx *wireTx) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]*wireTx{}
	}
	t.sweepLocked(time.Now())
	t.m[tx.token] = tx
	obs.SetGauge("server.tx.open", int64(len(t.m)))
}

func (t *txTable) get(token string) (*wireTx, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(time.Now())
	tx := t.m[token]
	if tx == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoTx, token)
	}
	return tx, nil
}

func (t *txTable) drop(token string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, token)
	obs.SetGauge("server.tx.open", int64(len(t.m)))
}

// newToken returns a fresh 16-byte random hex token.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating token: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// BeginTx opens a wire transaction against the current snapshot and
// returns its token. The staged state is a copy-on-write overlay over
// the snapshot — statements record deltas in the overlay; the snapshot
// stays immutable for concurrent readers and nothing is copied.
func (e *Engine) BeginTx() (string, error) {
	if e.fol != nil {
		// Transactions exist to stage writes; fail at BEGIN rather than
		// at a commit the client already invested statements in.
		return "", ErrReadOnly
	}
	snap, version := e.Snapshot()
	token, err := newToken()
	if err != nil {
		return "", err
	}
	e.txs.put(&wireTx{
		token:       token,
		staged:      storage.NewOverlay(snap),
		baseVersion: version,
		expires:     time.Now().Add(e.cfg.TxTTL),
	})
	obs.Inc("server.tx.begin")
	return token, nil
}

// TxUpdate translates and applies one view update inside the
// transaction's staged state. Nothing reaches the live database until
// TxCommit. The translate and verify stages are recorded into the
// request trace attached to ctx (if any) and into the stage histograms.
func (e *Engine) TxUpdate(ctx context.Context, token, viewName string, prefer []string, build func(view.View, storage.Source) (core.Request, error)) (core.Candidate, *core.Effects, error) {
	tx, err := e.txs.get(token)
	if err != nil {
		return core.Candidate{}, nil, err
	}
	v, pol, err := e.lookupView(viewName, prefer)
	if err != nil {
		return core.Candidate{}, nil, err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	tx.expires = time.Now().Add(e.cfg.TxTTL)
	req, err := build(v, tx.staged)
	if err != nil {
		return core.Candidate{}, nil, err
	}
	rt := obs.TraceFrom(ctx)
	sp := obs.StartSpan("server.translate")
	cand, err := core.NewTranslator(v, pol).Translate(tx.staged, req)
	d := sp.End()
	rt.Stage("translate", d)
	obs.Observe(stageTranslateNS, int64(d))
	if err != nil {
		return core.Candidate{}, nil, err
	}
	vsp := obs.StartSpan("server.verify")
	eff, err := core.SideEffects(tx.staged, v, req, cand.Translation)
	vd := vsp.End()
	rt.Stage("verify", vd)
	obs.Observe(stageVerifyNS, int64(vd))
	if err != nil {
		return core.Candidate{}, nil, err
	}
	if err := tx.staged.Apply(cand.Translation); err != nil {
		return core.Candidate{}, nil, fmt.Errorf("server: staging %s: %w", cand.Translation, err)
	}
	tx.ops++
	obs.Inc("server.tx.update")
	return cand, eff, nil
}

// TxView returns a readable source for the transaction's staged state,
// so clients can read their own uncommitted writes.
func (e *Engine) TxView(token string) (storage.Source, error) {
	tx, err := e.txs.get(token)
	if err != nil {
		return nil, err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	// Snapshot the overlay (the delta is copied, the base is shared) so
	// the caller reads a stable state even if another request on the
	// same token stages more updates concurrently.
	return tx.staged.Snapshot(), nil
}

// TxCommit turns the staged overlay's delta into a translation and
// submits it as a strict commit: it lands only if the database is
// still at the version the transaction was staged from, otherwise
// ErrConflict. The token is consumed either way — a conflicted
// transaction must be restaged from a fresh snapshot, matching the
// sqlish session's first-writer-wins semantics.
func (e *Engine) TxCommit(ctx context.Context, token string) (int, uint64, error) {
	tx, err := e.txs.get(token)
	if err != nil {
		return 0, 0, err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	e.txs.drop(token)
	diff := tx.staged.Diff()
	if diff.Len() == 0 {
		_, v := e.Snapshot()
		obs.Inc("server.tx.commit.empty")
		return 0, v, nil
	}
	version, err := e.Commit(ctx, diff, true, tx.baseVersion)
	if err != nil {
		return 0, 0, err
	}
	obs.Inc("server.tx.commit")
	return diff.Len(), version, nil
}

// TxRollback discards the transaction.
func (e *Engine) TxRollback(token string) error {
	if _, err := e.txs.get(token); err != nil {
		return err
	}
	e.txs.drop(token)
	obs.Inc("server.tx.rollback")
	return nil
}
