//go:build !race

package server

// raceEnabled reports whether the race detector is instrumenting this
// build; its allocation overhead invalidates AllocsPerRun ceilings.
const raceEnabled = false
