package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
)

// nullResponseWriter is an allocation-free ResponseWriter: the header
// map is built once and Write discards. AllocsPerRun over it measures
// only the codec's own allocations.
type nullResponseWriter struct {
	h http.Header
	n int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(int)     {}
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func bodyRequest(t testing.TB, payload []byte) (*http.Request, *bytes.Reader) {
	t.Helper()
	rd := bytes.NewReader(payload)
	req, err := http.NewRequest(http.MethodPost, "/views/NY/insert", rd)
	if err != nil {
		t.Fatal(err)
	}
	return req, rd
}

// The decode→encode round trip must stay allocation-light: the pools
// absorb the buffer and encoder churn, leaving only the decoder, the
// decoded field values, and the reply's map headers. A regression that
// reintroduces per-request buffers shows up here as a hard failure.
func TestWireRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	payload := []byte(`{"values": ["123", "NY"], "prefer": ["keyed"]}`)
	req, rd := bodyRequest(t, payload)
	w := &nullResponseWriter{h: make(http.Header, 4)}
	reply := updateReply{OK: true, Class: "keyed", Ops: []string{"insert EMP (123, NY)"}, Version: 42}

	round := func() {
		rd.Reset(payload)
		req.Body = io.NopCloser(rd)
		var body updateBody
		if err := decodeBody(req, &body); err != nil {
			t.Fatal(err)
		}
		for k := range w.h {
			delete(w.h, k)
		}
		writeJSON(w, http.StatusOK, reply)
	}
	round() // warm the pools
	got := testing.AllocsPerRun(200, round)
	// Measured 20 allocs/op (fresh decoder + MaxBytesReader + decoded
	// body fields + header values); the pre-pool path also paid a buffer,
	// an encoder, and chunked-write bookkeeping per request and grew with
	// reply size. Headroom for stdlib drift, not for regressions.
	if got > 24 {
		t.Fatalf("decode→encode round trip costs %.1f allocs/op, want <= 24 (codec pooling regressed)", got)
	}
	t.Logf("round trip: %.1f allocs/op", got)
}

// Pooled reply buffers must never alias across concurrent requests:
// every goroutine round-trips its own distinct payload many times and
// verifies both the decoded body and the rendered reply byte-for-byte.
// Run under -race (the race-core target does) this also proves the
// pools hand each buffer to exactly one goroutine at a time.
func TestPooledCodecsNotAliased(t *testing.T) {
	const goroutines = 8
	const rounds = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf(`{"values": ["%d", "loc-%d"]}`, g*1000, g))
			want, err := json.MarshalIndent(updateReply{OK: true, Version: uint64(g)}, "", "  ")
			if err != nil {
				t.Error(err)
				return
			}
			want = append(want, '\n')
			for i := 0; i < rounds; i++ {
				req, rd := bodyRequest(t, payload)
				rd.Reset(payload)
				req.Body = io.NopCloser(rd)
				var body updateBody
				if err := decodeBody(req, &body); err != nil {
					t.Error(err)
					return
				}
				if len(body.Values) != 2 || body.Values[0] != strconv.Itoa(g*1000) || body.Values[1] != fmt.Sprintf("loc-%d", g) {
					t.Errorf("goroutine %d decoded foreign body %v: pooled buffer aliased", g, body.Values)
					return
				}
				rec := httptest.NewRecorder()
				writeJSON(rec, http.StatusOK, updateReply{OK: true, Version: uint64(g)})
				if !bytes.Equal(rec.Body.Bytes(), want) {
					t.Errorf("goroutine %d rendered foreign reply %q: pooled buffer aliased", g, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// The pooled encoder must keep the wire format byte-identical to the
// json.Encoder-per-request path it replaced: two-space indent, trailing
// newline, exact Content-Length.
func TestWriteJSONFormat(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusTeapot, errorReply{Error: "boom", Code: "internal"})
	want, _ := json.MarshalIndent(errorReply{Error: "boom", Code: "internal"}, "", "  ")
	want = append(want, '\n')
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("writeJSON rendered %q, want %q", rec.Body.String(), want)
	}
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status %d, want %d", rec.Code, http.StatusTeapot)
	}
	if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(want)) {
		t.Fatalf("Content-Length %q, want %d", cl, len(want))
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
}

// Unknown-field rejection and the body size cap must survive the
// pooled decode path.
func TestDecodeBodyStillStrict(t *testing.T) {
	req, _ := bodyRequest(t, []byte(`{"values": ["1"], "bogus": true}`))
	var body updateBody
	if err := decodeBody(req, &body); err == nil {
		t.Fatal("decodeBody accepted an unknown field")
	}
	huge := append([]byte(`{"values": ["`), bytes.Repeat([]byte("x"), maxBodyBytes+1024)...)
	huge = append(huge, []byte(`"]}`)...)
	req, _ = bodyRequest(t, huge)
	if err := decodeBody(req, &body); err == nil {
		t.Fatal("decodeBody accepted a body beyond maxBodyBytes")
	}
}

// An oversized reply buffer must not re-enter the pool (it would pin
// its high-water capacity forever); the next writeJSON still works.
func TestOversizedEncoderNotPooled(t *testing.T) {
	big := rowsReply{View: "NY", Rows: make([][]string, 0)}
	for i := 0; i < 4096; i++ {
		big.Rows = append(big.Rows, []string{strconv.Itoa(i), "somewhere-rather-long"})
	}
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, big)
	if rec.Body.Len() <= maxPooledCodec {
		t.Skipf("reply only %d bytes; enlarge the fixture", rec.Body.Len())
	}
	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, errorReply{Error: "after big", Code: "x"})
	var er errorReply
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error != "after big" {
		t.Fatalf("writeJSON after oversized reply broke: %v %+v", err, er)
	}
}

func BenchmarkWireDecode(b *testing.B) {
	payload := []byte(`{"values": ["123", "NY"], "prefer": ["keyed"]}`)
	req, rd := bodyRequest(b, payload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rd.Reset(payload)
		req.Body = io.NopCloser(rd)
		var body updateBody
		if err := decodeBody(req, &body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncode(b *testing.B) {
	w := &nullResponseWriter{h: make(http.Header, 4)}
	reply := updateReply{OK: true, Class: "keyed", Ops: []string{"insert EMP (123, NY)"}, Version: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		writeJSON(w, http.StatusOK, reply)
	}
}

func BenchmarkWireRoundTrip(b *testing.B) {
	payload := []byte(`{"values": ["123", "NY"], "prefer": ["keyed"]}`)
	req, rd := bodyRequest(b, payload)
	w := &nullResponseWriter{h: make(http.Header, 4)}
	reply := updateReply{OK: true, Class: "keyed", Ops: []string{"insert EMP (123, NY)"}, Version: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rd.Reset(payload)
		req.Body = io.NopCloser(rd)
		var body updateBody
		if err := decodeBody(req, &body); err != nil {
			b.Fatal(err)
		}
		writeJSON(w, http.StatusOK, reply)
	}
}
