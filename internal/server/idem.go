package server

import (
	"errors"

	"sync"

	"viewupdate/internal/obs"
)

// ErrIdemRetry marks a request that waited on a concurrent attempt
// with the same idempotency key, only to see that attempt fail cleanly
// (nothing applied). The client should simply retry: the key is free
// again and the retry will execute fresh. Mapped to 503 + Retry-After.
var ErrIdemRetry = errors.New("server: concurrent request with same idempotency key failed; retry")

// An idemEntry tracks one idempotency key from its first sighting.
// Until done is closed the original attempt is in flight; afterwards
// either ok is true and the recorded outcome is final, or the attempt
// failed cleanly and the entry has been removed from the table.
type idemEntry struct {
	done    chan struct{}
	ok      bool
	version uint64
	class   string // translator class of the original outcome ("" when recovered)
	// replayed marks entries seeded from WAL recovery: the commit is
	// durable but its reply details (class, exact version) died with
	// the crashed process.
	replayed bool
}

// An idemTable is the bounded durable-idempotency dedup table: request
// keys of landed commits map to their recorded outcome, so a retry
// after an ambiguous ack (client timeout mid-fsync, crash before the
// response) returns the original outcome instead of re-translating and
// double-applying. Keys reach the table three ways: reserved by a live
// request, fulfilled by the commit pipeline, or seeded at boot from
// the keys recovery found in the WAL.
//
// The table is bounded: once more than cap fulfilled entries exist,
// the oldest are evicted FIFO. In-flight reservations are never
// evicted (they are bounded by admission control).
type idemTable struct {
	mu   sync.Mutex
	cap  int
	m    map[string]*idemEntry
	fifo []string // fulfilled keys in completion order, for eviction
}

// reserve claims key for the calling request. The second result is
// false when the key was free and is now reserved by the caller —
// the caller must later fulfill or release it. It is true when the key
// is already known: the returned entry is either complete (done
// closed) or still in flight, and the caller should wait on done.
func (t *idemTable) reserve(key string) (*idemEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]*idemEntry{}
	}
	if e, ok := t.m[key]; ok {
		return e, true
	}
	e := &idemEntry{done: make(chan struct{})}
	t.m[key] = e
	return e, false
}

// fulfill records the landed outcome for key and wakes every waiter.
// The entry's class was stashed by the reserving handler before
// submission; fulfill only records the landing version. No-op for
// unknown keys (a reservation released by a racing path).
func (t *idemTable) fulfill(key string, version uint64) {
	t.mu.Lock()
	e, ok := t.m[key]
	if !ok || e.ok {
		t.mu.Unlock()
		return
	}
	e.ok = true
	e.version = version
	t.fifo = append(t.fifo, key)
	t.evictLocked()
	close(e.done)
	t.mu.Unlock()
}

// aliasFulfilled registers alias as another name for key's fulfilled
// entry; both names resolve to the same *idemEntry and the same
// outcome. The sharded engine records every landed key under its raw
// name (the pre-translation reserve path, where the home shard is not
// yet known) AND its (shard, key) scoped name (what per-shard WAL
// recovery can rebuild) — fixing the engine-global dedup blind spot
// where a recovered scoped key would not match a raw-key retry. No-op
// when key is unknown or not yet fulfilled, or alias is already taken.
func (t *idemTable) aliasFulfilled(alias, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[key]
	if !ok || !e.ok {
		return
	}
	if _, taken := t.m[alias]; taken {
		return
	}
	t.m[alias] = e
	t.fifo = append(t.fifo, alias)
	t.evictLocked()
}

// release frees a reservation whose attempt failed cleanly (nothing
// applied): the key becomes reusable and current waiters are told to
// retry. Fulfilled entries are never released — an ambiguous ack must
// keep resolving to its original outcome.
func (t *idemTable) release(key string) {
	t.mu.Lock()
	e, ok := t.m[key]
	if !ok || e.ok {
		t.mu.Unlock()
		return
	}
	delete(t.m, key)
	close(e.done)
	t.mu.Unlock()
}

// seed installs a key recovered from the WAL as already fulfilled at
// the given version (the engine's boot version: the pre-crash version
// numbering died with the process).
func (t *idemTable) seed(key string, version uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]*idemEntry{}
	}
	if _, ok := t.m[key]; ok {
		return
	}
	e := &idemEntry{done: make(chan struct{}), ok: true, version: version, replayed: true}
	close(e.done)
	t.m[key] = e
	t.fifo = append(t.fifo, key)
	t.evictLocked()
}

// evictLocked drops the oldest fulfilled entries beyond the capacity.
// Callers hold t.mu.
func (t *idemTable) evictLocked() {
	for t.cap > 0 && len(t.fifo) > t.cap {
		old := t.fifo[0]
		t.fifo = t.fifo[1:]
		delete(t.m, old)
		obs.Inc("server.idem.evicted")
	}
	obs.SetGauge("server.idem.entries", int64(len(t.m)))
}

// size reports the number of tracked keys (in-flight + fulfilled).
func (t *idemTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
