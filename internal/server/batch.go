package server

import (
	"time"

	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
)

// The adaptive group-commit batcher. The committer's whole reason to
// exist is amortizing the WAL durability barrier across concurrent
// commits, but the original gather loop only batched what had already
// accumulated in the queue — under a closed-loop load (each client
// waits for its ack before sending the next request) the queue is
// almost always empty at gather time and commits_per_sync sits at ~1.
//
// The batcher fixes that with a bounded wait-a-little window: when a
// commit arrives and either the queue is non-empty or the recent
// arrival rate says another commit is due within the window, it waits —
// up to maxDelay, adaptively shortened to the expected fill time — for
// more commits to share the append+fsync. An idle engine never waits:
// a single commit with no recent traffic commits immediately, so the
// window adds zero latency at low load. See docs/PERFORMANCE.md.

// batchWaitNS is the histogram of time spent inside open batching
// windows, per batch. Idle commits never open a window and do not
// observe into it.
const batchWaitNS = "server.commit.batch_wait_ns"

// ewmaShift is the EWMA smoothing factor for inter-arrival gaps:
// new = old + (sample-old)/2^ewmaShift. 2 ≈ weighting the last ~4
// arrivals, quick to adapt when a burst starts or ends.
const ewmaShift = 2

// batchClock abstracts the batcher's clock so unit tests drive the
// window deterministically. realClock is the production implementation.
type batchClock interface {
	Now() time.Time
	// NewTimer returns a one-shot timer firing d after now.
	NewTimer(d time.Duration) batchTimer
}

type batchTimer interface {
	C() <-chan time.Time
	Stop()
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTimer(d time.Duration) batchTimer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop()               { t.t.Stop() }

// A batcher gathers commit requests from the admission queue into
// batches for one committer goroutine (the single-pipeline committer or
// the sharded sequencer — both use it). It is single-goroutine state:
// only the committer calls next.
type batcher struct {
	src      <-chan *commitReq
	maxBatch int
	maxDelay time.Duration // <= 0 disables the window
	clock    batchClock

	// ewma is the smoothed inter-arrival gap in nanoseconds (0 until
	// two arrivals have been seen); last is the previous arrival time.
	ewma int64
	last time.Time

	// scratch is the reused batch backing array; the returned batch is
	// only valid until the next call to next.
	scratch []*commitReq
}

func newBatcher(src <-chan *commitReq, maxBatch int, maxDelay time.Duration, clock batchClock) *batcher {
	return &batcher{
		src: src, maxBatch: maxBatch, maxDelay: maxDelay, clock: clock,
		scratch: make([]*commitReq, 0, maxBatch),
	}
}

// noteArrival folds one arrival into the inter-arrival EWMA.
func (b *batcher) noteArrival(now time.Time) {
	if !b.last.IsZero() {
		gap := int64(now.Sub(b.last))
		if b.ewma == 0 {
			b.ewma = gap
		} else {
			b.ewma += (gap - b.ewma) >> ewmaShift
		}
	}
	b.last = now
}

// expectSoon reports whether, on recent inter-arrival evidence, another
// commit should arrive within the window. A cold EWMA (engine idle
// since start, or gaps longer than the window) says no — that is the
// idle fast path.
func (b *batcher) expectSoon() bool {
	return b.ewma > 0 && b.ewma <= int64(b.maxDelay)
}

// window is the adaptive wait bound for a batch currently holding n
// commits: the expected time for the remaining arrivals to fill the
// batch, capped at maxDelay. With no estimate it is maxDelay.
func (b *batcher) window(n int) time.Duration {
	if b.ewma <= 0 {
		return b.maxDelay
	}
	w := time.Duration(b.ewma * int64(b.maxBatch-n))
	if w <= 0 || w > b.maxDelay {
		return b.maxDelay
	}
	return w
}

// next blocks for the next batch. It returns the gathered batch and
// whether the source is still open; on close the final (possibly
// non-empty) batch is returned with more=false and the caller must
// still commit it. The returned slice is reused by the following call.
func (b *batcher) next() (batch []*commitReq, more bool) {
	first, ok := <-b.src
	if !ok {
		return nil, false
	}
	b.noteArrival(b.clock.Now())
	batch = append(b.scratch[:0], first)

	// Fast drain: everything already queued joins the batch for free.
drain:
	for len(batch) < b.maxBatch {
		select {
		case r, open := <-b.src:
			if !open {
				return batch, false
			}
			b.noteArrival(b.clock.Now())
			batch = append(batch, r)
		default:
			break drain
		}
	}
	if len(batch) >= b.maxBatch || b.maxDelay <= 0 {
		return batch, true
	}
	// Idle fast path: a lone commit with no evidence of imminent
	// traffic commits immediately — the window must not tax an idle
	// engine.
	if len(batch) == 1 && !b.expectSoon() {
		return batch, true
	}

	// Open the window: the queue was non-empty or arrivals are coming
	// fast enough that waiting buys a bigger batch per fsync. The
	// failpoint is a chaos kill trigger (mid-window crash); injected
	// errors are meaningless here and ignored.
	_ = faultinject.Hit(faultinject.SiteServerBatchWindow)
	obs.Inc("server.commit.windows")
	timed := obs.Enabled()
	var start time.Time
	if timed {
		start = b.clock.Now()
	}
	t := b.clock.NewTimer(b.window(len(batch)))
	defer t.Stop()
	observe := func() {
		if timed {
			obs.Observe(batchWaitNS, int64(b.clock.Now().Sub(start)))
		}
	}
	for len(batch) < b.maxBatch {
		select {
		case r, open := <-b.src:
			if !open {
				observe()
				return batch, false
			}
			b.noteArrival(b.clock.Now())
			batch = append(batch, r)
		case <-t.C():
			observe()
			return batch, true
		}
	}
	observe()
	return batch, true
}
