package workload

import (
	"testing"

	"viewupdate/internal/update"
)

// TestSPRequestStreamDeterministic locks in the package contract that
// the same configuration always produces the same workload: two
// generators built from one seed must load identical database states
// and emit identical request streams.
func TestSPRequestStreamDeterministic(t *testing.T) {
	cases := []struct {
		name string
		cfg  SPConfig
	}{
		{"small", SPConfig{Keys: 50, Attrs: 2, DomainSize: 4, SelectingAttrs: 1, Tuples: 20, Seed: 1}},
		{"hidden-attrs", SPConfig{Keys: 100, Attrs: 4, DomainSize: 6, SelectingAttrs: 2, HiddenAttrs: 2, Tuples: 60, Seed: 42}},
		{"dense", SPConfig{Keys: 200, Attrs: 3, DomainSize: 8, SelectingAttrs: 1, HiddenAttrs: 1, Tuples: 190, VisibleFraction: 0.8, Seed: 7}},
	}
	kinds := []update.Kind{update.Insert, update.Delete, update.Replace}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := MustNewSP(tc.cfg)
			b := MustNewSP(tc.cfg)
			if render(a.DB, "R") != render(b.DB, "R") {
				t.Fatal("same seed produced different database states")
			}
			for i := 0; i < 30; i++ {
				kind := kinds[i%len(kinds)]
				ra, oka := a.NextRequest(kind)
				rb, okb := b.NextRequest(kind)
				if oka != okb {
					t.Fatalf("request %d: availability diverged (%v vs %v)", i, oka, okb)
				}
				if !oka {
					continue
				}
				if ra.String() != rb.String() {
					t.Fatalf("request %d diverged:\n  a: %s\n  b: %s", i, ra, rb)
				}
			}
		})
	}
}

// TestTreeRequestStreamDeterministic is the join-view analogue: same
// seed, same tree shape, same loaded state and same request stream.
func TestTreeRequestStreamDeterministic(t *testing.T) {
	cases := []struct {
		name string
		cfg  TreeConfig
	}{
		{"chain", TreeConfig{Depth: 2, Fanout: 1, Keys: 50, TuplesPerRelation: 20, Seed: 3}},
		{"bushy", TreeConfig{Depth: 1, Fanout: 3, Keys: 40, TuplesPerRelation: 15, Seed: 99}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := MustNewTree(tc.cfg)
			b := MustNewTree(tc.cfg)
			names := make([]string, len(a.Relations))
			for i, rel := range a.Relations {
				names[i] = rel.Name()
			}
			if render(a.DB, names...) != render(b.DB, names...) {
				t.Fatal("same seed produced different database states")
			}
			for i := 0; i < 10; i++ {
				ra, oka := a.InsertRequestForFreshRoot()
				rb, okb := b.InsertRequestForFreshRoot()
				if oka != okb {
					t.Fatalf("request %d: availability diverged", i)
				}
				if oka && ra.String() != rb.String() {
					t.Fatalf("request %d diverged:\n  a: %s\n  b: %s", i, ra, rb)
				}
			}
		})
	}
}
