package workload

import (
	"testing"

	"viewupdate/internal/persist"
)

func churnConfig(seed int64) ChurnConfig {
	return ChurnConfig{
		SP:            SPConfig{Keys: 100, Attrs: 3, DomainSize: 4, SelectingAttrs: 1, HiddenAttrs: 1, Tuples: 40, Seed: seed},
		Steps:         60,
		FaultEveryNth: 4,
		RetryAttempts: 3,
	}
}

// TestChurnDeterministic locks in the scenario's contract: the same
// configuration — same seed, same fault schedule — always produces the
// same report, fault count and final state.
func TestChurnDeterministic(t *testing.T) {
	a, err := RunChurn(churnConfig(21), "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(churnConfig(21), "")
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same config diverged:\n  a: %s\n  b: %s", a, b)
	}
	if a.Faults == 0 || a.Retries == 0 {
		t.Fatalf("churn injected no faults or never retried: %s", a)
	}
	if a.Applied == 0 {
		t.Fatalf("churn applied nothing: %s", a)
	}
	c, err := RunChurn(churnConfig(22), "")
	if err != nil {
		t.Fatal(err)
	}
	if a.State == c.State {
		t.Fatal("different seeds should produce different final states")
	}
}

// TestChurnRetriesAbsorbTransients compares a retrying run with a
// non-retrying one: with retries every transient fault is absorbed,
// without them each fault fails its request.
func TestChurnRetriesAbsorbTransients(t *testing.T) {
	withRetry, err := RunChurn(churnConfig(5), "")
	if err != nil {
		t.Fatal(err)
	}
	if withRetry.Failed != 0 {
		t.Fatalf("retrying run should absorb all transients: %s", withRetry)
	}

	cfg := churnConfig(5)
	cfg.RetryAttempts = 1
	without, err := RunChurn(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if without.Failed == 0 || without.Failed != without.Faults {
		t.Fatalf("non-retrying run should fail once per fault: %s", without)
	}
}

// TestChurnDurableRecovery runs the churn through a durable store and
// checks that recovery reproduces exactly the final in-memory state —
// faults, retries and all.
func TestChurnDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	rep, err := RunChurn(churnConfig(13), dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := RenderState(st.DB()); got != rep.State {
		t.Fatalf("recovered state differs from the live final state:\nrecovered:\n%s\nlive:\n%s", got, rep.State)
	}
	if err := st.DB().CheckAllInclusions(); err != nil {
		t.Fatal(err)
	}
	if st.Report().Replayed != rep.Applied {
		t.Fatalf("recovery replayed %d translations, run applied %d", st.Report().Replayed, rep.Applied)
	}
	// Failed applies leave uncommitted records behind; recovery must
	// have discarded one per absorbed fault or failed request.
	if rep.Faults > 0 && st.Report().Discarded == 0 {
		t.Fatalf("faults were injected but recovery discarded nothing: %s vs %s", rep, st.Report())
	}
}

func TestChurnConfigErrors(t *testing.T) {
	if _, err := RunChurn(ChurnConfig{}, ""); err == nil {
		t.Fatal("zero config should fail")
	}
	cfg := churnConfig(1)
	cfg.SP.DomainSize = 1
	if _, err := RunChurn(cfg, ""); err == nil {
		t.Fatal("bad SP config should fail")
	}
}
