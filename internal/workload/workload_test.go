package workload

import (
	"testing"

	"viewupdate/internal/core"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
)

// render canonicalizes a database state across schema instances (tuple
// identity is schema-instance-scoped, so DB.Equal only compares states
// of one instance).
func render(db *storage.Database, rels ...string) string {
	out := ""
	for _, r := range rels {
		for _, t := range db.Tuples(r) {
			out += t.String() + "\n"
		}
	}
	return out
}

func TestSPWorkloadDeterministic(t *testing.T) {
	cfg := SPConfig{Keys: 100, Attrs: 3, DomainSize: 4, SelectingAttrs: 2, HiddenAttrs: 1, Tuples: 50, Seed: 7}
	w1 := MustNewSP(cfg)
	w2 := MustNewSP(cfg)
	if render(w1.DB, "R") != render(w2.DB, "R") {
		t.Fatal("same seed should reproduce the same state")
	}
	w3 := MustNewSP(SPConfig{Keys: 100, Attrs: 3, DomainSize: 4, SelectingAttrs: 2, HiddenAttrs: 1, Tuples: 50, Seed: 8})
	if render(w1.DB, "R") == render(w3.DB, "R") {
		t.Fatal("different seeds should differ")
	}
}

func TestSPWorkloadShape(t *testing.T) {
	w := MustNewSP(SPConfig{Keys: 200, Attrs: 4, DomainSize: 4, SelectingAttrs: 2, HiddenAttrs: 2, Tuples: 100, Seed: 1})
	if w.DB.Len("R") != 100 {
		t.Fatalf("tuples = %d", w.DB.Len("R"))
	}
	if got := len(w.View.ProjectedOut()); got != 2 {
		t.Fatalf("hidden attrs = %d", got)
	}
	if got := len(w.View.Selection().SelectingAttributes()); got != 2 {
		t.Fatalf("selecting attrs = %d", got)
	}
	// Roughly half visible (biased loader).
	vis := w.View.Materialize(w.DB).Len()
	if vis < 20 || vis > 80 {
		t.Fatalf("visible fraction off: %d/100", vis)
	}
}

func TestSPWorkloadConfigErrors(t *testing.T) {
	bad := []SPConfig{
		{Keys: 0, Attrs: 1, DomainSize: 2, Tuples: 1},
		{Keys: 10, Attrs: 1, DomainSize: 1, Tuples: 1},
		{Keys: 10, Attrs: 1, DomainSize: 2, SelectingAttrs: 2, Tuples: 1},
		{Keys: 10, Attrs: 1, DomainSize: 2, HiddenAttrs: 2, Tuples: 1},
		{Keys: 10, Attrs: 1, DomainSize: 2, Tuples: 11},
	}
	for i, cfg := range bad {
		if _, err := NewSP(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestSPWorkloadRequestsAreValid(t *testing.T) {
	w := MustNewSP(SPConfig{Keys: 100, Attrs: 3, DomainSize: 4, SelectingAttrs: 1, HiddenAttrs: 1, Tuples: 40, Seed: 3})
	for _, kind := range []update.Kind{update.Insert, update.Delete, update.Replace} {
		for i := 0; i < 20; i++ {
			r, ok := w.NextRequest(kind)
			if !ok {
				t.Fatalf("no %s request available", kind)
			}
			if err := core.ValidateRequest(w.DB, w.View, r); err != nil {
				t.Fatalf("generated %s request invalid: %v", kind, err)
			}
			cands, err := core.Enumerate(w.DB, w.View, r)
			if err != nil {
				t.Fatalf("enumerate: %v", err)
			}
			if len(cands) == 0 {
				t.Fatalf("no candidates for %s", r)
			}
		}
	}
}

func TestTreeWorkloadShape(t *testing.T) {
	w := MustNewTree(TreeConfig{Depth: 2, Fanout: 2, Keys: 50, TuplesPerRelation: 10, Seed: 5})
	// Depth 2, fanout 2: 1 + 2 + 4 = 7 relations.
	if len(w.Relations) != 7 {
		t.Fatalf("relations = %d", len(w.Relations))
	}
	if err := w.DB.CheckAllInclusions(); err != nil {
		t.Fatalf("populated tree violates inclusions: %v", err)
	}
	// Identity views + enforced inclusions: every root tuple joins.
	if got := w.View.Materialize(w.DB).Len(); got != 10 {
		t.Fatalf("view rows = %d, want 10", got)
	}
}

func TestTreeWorkloadDeterministic(t *testing.T) {
	cfg := TreeConfig{Depth: 1, Fanout: 2, Keys: 30, TuplesPerRelation: 8, Seed: 9}
	w1 := MustNewTree(cfg)
	w2 := MustNewTree(cfg)
	var names []string
	for _, r := range w1.Relations {
		names = append(names, r.Name())
	}
	if render(w1.DB, names...) != render(w2.DB, names...) {
		t.Fatal("same seed should reproduce the same tree state")
	}
}

func TestTreeWorkloadRequests(t *testing.T) {
	w := MustNewTree(TreeConfig{Depth: 2, Fanout: 1, Keys: 40, TuplesPerRelation: 10, Seed: 11})
	row, ok := w.RandomRow()
	if !ok {
		t.Fatal("no rows")
	}
	if err := core.ValidateRequest(w.DB, w.View, core.DeleteRequest(row)); err != nil {
		t.Fatalf("delete of a materialized row should be valid: %v", err)
	}
	r, ok := w.InsertRequestForFreshRoot()
	if !ok {
		t.Fatal("no insert request")
	}
	if err := core.ValidateRequest(w.DB, w.View, r); err != nil {
		t.Fatalf("generated insert invalid: %v", err)
	}
	cands, err := core.Enumerate(w.DB, w.View, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("identity tree should give one candidate, got %d", len(cands))
	}
	if err := w.DB.Apply(cands[0].Translation); err != nil {
		t.Fatal(err)
	}
}

func TestTreeWorkloadConfigErrors(t *testing.T) {
	bad := []TreeConfig{
		{Depth: -1, Fanout: 1, Keys: 10, TuplesPerRelation: 2},
		{Depth: 1, Fanout: 1, Keys: 0, TuplesPerRelation: 2},
		{Depth: 1, Fanout: 1, Keys: 10, TuplesPerRelation: 0},
		{Depth: 1, Fanout: 1, Keys: 10, TuplesPerRelation: 11},
	}
	for i, cfg := range bad {
		if _, err := NewTree(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}
