// Package workload generates deterministic synthetic schemas, database
// states and view-update request streams for the experiment harness and
// the benchmarks. All generators are seeded; the same configuration
// always produces the same workload.
package workload

import (
	"fmt"
	"math/rand"

	"viewupdate/internal/algebra"
	"viewupdate/internal/core"
	"viewupdate/internal/obs"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// countRequest records the request mix emitted by the generators.
func countRequest(kind update.Kind) {
	switch kind {
	case update.Insert:
		obs.Inc("workload.request.insert")
	case update.Delete:
		obs.Inc("workload.request.delete")
	case update.Replace:
		obs.Inc("workload.request.replace")
	}
}

// SPConfig parameterizes a single-relation select-project workload.
type SPConfig struct {
	// Keys is the key domain size (keys are ints 1..Keys).
	Keys int64
	// Attrs is the number of non-key attributes.
	Attrs int
	// DomainSize is the size of each non-key attribute's domain.
	DomainSize int
	// SelectingAttrs is how many of the non-key attributes carry a
	// selection term (each selects the lower half of its domain).
	SelectingAttrs int
	// HiddenAttrs is how many trailing non-key attributes are projected
	// out of the view.
	HiddenAttrs int
	// Tuples is the number of tuples to load.
	Tuples int
	// VisibleFraction biases loading so roughly this share of tuples
	// satisfies the selection (0 defaults to 0.5).
	VisibleFraction float64
	// Seed drives all pseudo-random choices.
	Seed int64
}

// SPWorkload bundles a generated SP instance.
type SPWorkload struct {
	Schema *schema.Database
	Rel    *schema.Relation
	View   *view.SP
	DB     *storage.Database
	rng    *rand.Rand
	cfg    SPConfig
}

// NewSP generates the schema, view and a populated database state.
func NewSP(cfg SPConfig) (*SPWorkload, error) {
	if cfg.Keys <= 0 || cfg.Attrs < 0 || cfg.DomainSize < 2 {
		return nil, fmt.Errorf("workload: bad SP config %+v", cfg)
	}
	if cfg.SelectingAttrs > cfg.Attrs || cfg.HiddenAttrs > cfg.Attrs {
		return nil, fmt.Errorf("workload: selecting/hidden attrs exceed attrs in %+v", cfg)
	}
	if cfg.VisibleFraction == 0 {
		cfg.VisibleFraction = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	keyDom, err := schema.IntRangeDomain("KeyDom", 1, cfg.Keys)
	if err != nil {
		return nil, err
	}
	attrs := []schema.Attribute{{Name: "K", Domain: keyDom}}
	for i := 0; i < cfg.Attrs; i++ {
		vals := make([]value.Value, cfg.DomainSize)
		for j := range vals {
			vals[j] = value.NewString(fmt.Sprintf("v%02d", j))
		}
		dom, err := schema.NewDomain(fmt.Sprintf("A%dDom", i), vals...)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, schema.Attribute{Name: fmt.Sprintf("A%d", i), Domain: dom})
	}
	rel, err := schema.NewRelation("R", attrs, []string{"K"})
	if err != nil {
		return nil, err
	}
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		return nil, err
	}

	sel := algebra.NewSelection(rel)
	for i := 0; i < cfg.SelectingAttrs; i++ {
		a, _ := rel.Attribute(fmt.Sprintf("A%d", i))
		half := a.Domain.Size() / 2
		if half == 0 {
			half = 1
		}
		selVals := a.Domain.Values()[:half]
		if err := sel.AddTerm(a.Name, selVals...); err != nil {
			return nil, err
		}
	}
	proj := []string{"K"}
	for i := 0; i < cfg.Attrs-cfg.HiddenAttrs; i++ {
		proj = append(proj, fmt.Sprintf("A%d", i))
	}
	// Hidden attributes are the trailing ones; selecting attributes are
	// the leading ones, so hidden ∩ selecting is non-empty only when
	// SelectingAttrs + (Attrs - HiddenAttrs) > Attrs... adjust: hide
	// trailing attrs, select leading ones; overlap occurs when
	// SelectingAttrs > Attrs - HiddenAttrs.
	v, err := view.NewSP("V", sel, proj)
	if err != nil {
		return nil, err
	}

	w := &SPWorkload{Schema: sch, Rel: rel, View: v, rng: rng, cfg: cfg}
	w.DB = storage.Open(sch)
	if err := w.populate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustNewSP is NewSP, panicking on error.
func MustNewSP(cfg SPConfig) *SPWorkload {
	w, err := NewSP(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// randomTuple builds a tuple with the given key; when visible is true
// every selecting attribute takes a selecting value.
func (w *SPWorkload) randomTuple(key int64, visible bool) tuple.T {
	vals := make([]value.Value, w.Rel.Arity())
	vals[0] = value.NewInt(key)
	for i, a := range w.Rel.Attributes() {
		if i == 0 {
			continue
		}
		var pool []value.Value
		if visible {
			pool = w.View.Selection().SelectingValues(a.Name)
		} else if w.View.Selection().IsSelecting(a.Name) {
			pool = w.View.Selection().ExcludingValues(a.Name)
		} else {
			pool = a.Domain.Values()
		}
		vals[i] = pool[w.rng.Intn(len(pool))]
	}
	return tuple.MustNew(w.Rel, vals...)
}

func (w *SPWorkload) populate() error {
	if int64(w.cfg.Tuples) > w.cfg.Keys {
		return fmt.Errorf("workload: %d tuples exceed %d keys", w.cfg.Tuples, w.cfg.Keys)
	}
	perm := w.rng.Perm(int(w.cfg.Keys))
	ts := make([]tuple.T, 0, w.cfg.Tuples)
	for i := 0; i < w.cfg.Tuples; i++ {
		key := int64(perm[i] + 1)
		visible := w.rng.Float64() < w.cfg.VisibleFraction
		ts = append(ts, w.randomTuple(key, visible))
	}
	return w.DB.Load("R", ts...)
}

// freshKey returns a key not currently in the database, or ok=false.
func (w *SPWorkload) freshKey() (int64, bool) {
	for attempt := 0; attempt < 64; attempt++ {
		k := int64(w.rng.Intn(int(w.cfg.Keys))) + 1
		if _, ok := w.DB.LookupKey(w.randomTuple(k, true)); !ok {
			return k, true
		}
	}
	return 0, false
}

// visibleRow returns a random current view row, or ok=false when the
// view is empty.
func (w *SPWorkload) visibleRow() (tuple.T, bool) {
	rows := w.View.Materialize(w.DB).Slice()
	if len(rows) == 0 {
		return tuple.T{}, false
	}
	return rows[w.rng.Intn(len(rows))], true
}

// visibleViewTuple builds a view tuple with the given key whose visible
// selecting attributes hold selecting values.
func (w *SPWorkload) visibleViewTuple(key int64) tuple.T {
	sch := w.View.Schema()
	vals := make([]value.Value, sch.Arity())
	for i, a := range sch.Attributes() {
		if a.Name == "K" {
			vals[i] = value.NewInt(key)
			continue
		}
		pool := w.View.Selection().SelectingValues(a.Name)
		vals[i] = pool[w.rng.Intn(len(pool))]
	}
	return tuple.MustNew(sch, vals...)
}

// NextRequest produces a valid request of the given kind against the
// current state, or ok=false when the state admits none (e.g. deleting
// from an empty view).
func (w *SPWorkload) NextRequest(kind update.Kind) (core.Request, bool) {
	switch kind {
	case update.Insert:
		k, ok := w.freshKey()
		if !ok {
			return core.Request{}, false
		}
		countRequest(kind)
		return core.InsertRequest(w.visibleViewTuple(k)), true
	case update.Delete:
		row, ok := w.visibleRow()
		if !ok {
			return core.Request{}, false
		}
		countRequest(kind)
		return core.DeleteRequest(row), true
	case update.Replace:
		row, ok := w.visibleRow()
		if !ok {
			return core.Request{}, false
		}
		// Prefer a key change to a fresh key; fall back to mutating a
		// visible non-selecting attribute.
		if k, ok := w.freshKey(); ok {
			moved := row.MustWith("K", value.NewInt(k))
			countRequest(kind)
			return core.ReplaceRequest(row, moved), true
		}
		for _, a := range w.View.Schema().Attributes() {
			if a.Name == "K" || w.View.Selection().IsSelecting(a.Name) {
				continue
			}
			cur := row.MustGet(a.Name)
			for _, v := range a.Domain.Values() {
				if v != cur {
					countRequest(kind)
					return core.ReplaceRequest(row, row.MustWith(a.Name, v)), true
				}
			}
		}
		return core.Request{}, false
	default:
		return core.Request{}, false
	}
}

// TreeConfig parameterizes a reference-connection tree workload.
type TreeConfig struct {
	// Depth is the number of levels below the root (0 = root only).
	Depth int
	// Fanout is the number of references each non-leaf node holds.
	Fanout int
	// Keys is each relation's key domain size.
	Keys int64
	// TuplesPerRelation is the number of tuples loaded per relation.
	TuplesPerRelation int
	// Seed drives all pseudo-random choices.
	Seed int64
}

// TreeWorkload bundles a generated join-view instance.
type TreeWorkload struct {
	Schema *schema.Database
	View   *view.Join
	DB     *storage.Database
	// Relations in preorder (index 0 = root).
	Relations []*schema.Relation
	rng       *rand.Rand
	cfg       TreeConfig
}

// NewTree generates a rooted reference tree of the given shape: each
// relation has an int key, one payload attribute, and Fanout foreign
// keys to its children in the tree (which are its parents in the
// reference direction).
func NewTree(cfg TreeConfig) (*TreeWorkload, error) {
	if cfg.Depth < 0 || cfg.Fanout < 0 || cfg.Keys <= 0 {
		return nil, fmt.Errorf("workload: bad tree config %+v", cfg)
	}
	if cfg.TuplesPerRelation <= 0 || int64(cfg.TuplesPerRelation) > cfg.Keys {
		return nil, fmt.Errorf("workload: tuples per relation out of range in %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := schema.NewDatabase()
	w := &TreeWorkload{Schema: sch, rng: rng, cfg: cfg}

	keyDom, err := schema.IntRangeDomain("TKeyDom", 1, cfg.Keys)
	if err != nil {
		return nil, err
	}
	payloadDom, err := schema.IntRangeDomain("PayDom", 0, 99)
	if err != nil {
		return nil, err
	}

	counter := 0
	var build func(depth int) (*view.Node, error)
	build = func(depth int) (*view.Node, error) {
		id := counter
		counter++
		name := fmt.Sprintf("N%d", id)
		attrs := []schema.Attribute{
			{Name: fmt.Sprintf("K%d", id), Domain: keyDom},
			{Name: fmt.Sprintf("P%d", id), Domain: payloadDom},
		}
		var children []*view.Node
		var fkAttrs []string
		if depth < cfg.Depth {
			for f := 0; f < cfg.Fanout; f++ {
				child, err := build(depth + 1)
				if err != nil {
					return nil, err
				}
				children = append(children, child)
				fk := fmt.Sprintf("F%dto%s", id, child.SP.Base().Name())
				fkAttrs = append(fkAttrs, fk)
				attrs = append(attrs, schema.Attribute{Name: fk, Domain: keyDom})
			}
		}
		rel, err := schema.NewRelation(name, attrs, []string{fmt.Sprintf("K%d", id)})
		if err != nil {
			return nil, err
		}
		if err := sch.AddRelation(rel); err != nil {
			return nil, err
		}
		w.Relations = append(w.Relations, rel)
		refs := make([]view.Ref, len(children))
		for i, child := range children {
			if err := sch.AddInclusion(schema.InclusionDependency{
				Child: name, ChildAttrs: []string{fkAttrs[i]}, Parent: child.SP.Base().Name(),
			}); err != nil {
				return nil, err
			}
			refs[i] = view.Ref{Attrs: []string{fkAttrs[i]}, Target: child}
		}
		return &view.Node{SP: view.Identity(name+"v", rel), Refs: refs}, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	// build appends relations in postorder (targets before the nodes
	// referencing them); reverse so Relations[0] is the root and every
	// referenced relation appears after its referrer.
	for i, j := 0, len(w.Relations)-1; i < j; i, j = i+1, j-1 {
		w.Relations[i], w.Relations[j] = w.Relations[j], w.Relations[i]
	}
	jv, err := view.NewJoin("TREE", sch, root)
	if err != nil {
		return nil, err
	}
	w.View = jv
	w.DB = storage.Open(sch)
	if err := w.populate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustNewTree is NewTree, panicking on error.
func MustNewTree(cfg TreeConfig) *TreeWorkload {
	w, err := NewTree(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// populate loads parents before children so every foreign key resolves
// to a loaded parent key.
func (w *TreeWorkload) populate() error {
	n := w.cfg.TuplesPerRelation
	keysOf := make(map[string][]int64)
	// Load in reverse preorder: parents (in the reference direction)
	// are deeper in the tree and must exist first; LoadAll makes order
	// irrelevant anyway, but keys must be consistent.
	var all []tuple.T
	for i := len(w.Relations) - 1; i >= 0; i-- {
		rel := w.Relations[i]
		perm := w.rng.Perm(int(w.cfg.Keys))
		keys := make([]int64, n)
		for j := 0; j < n; j++ {
			keys[j] = int64(perm[j] + 1)
		}
		keysOf[rel.Name()] = keys
		for _, k := range keys {
			vals := make([]value.Value, rel.Arity())
			for ai, a := range rel.Attributes() {
				switch {
				case ai == 0:
					vals[ai] = value.NewInt(k)
				case a.Name[0] == 'P':
					vals[ai] = value.NewInt(int64(w.rng.Intn(100)))
				default:
					// Foreign key: pick a loaded key of the referenced
					// relation.
					target := referencedRelation(w.Schema, rel.Name(), a.Name)
					tk := keysOf[target]
					vals[ai] = value.NewInt(tk[w.rng.Intn(len(tk))])
				}
			}
			all = append(all, tuple.MustNew(rel, vals...))
		}
	}
	return w.DB.LoadAll(all...)
}

// referencedRelation finds the parent of the inclusion dependency whose
// child attribute is attr.
func referencedRelation(sch *schema.Database, child, attr string) string {
	for _, d := range sch.InclusionsFrom(child) {
		for _, ca := range d.ChildAttrs {
			if ca == attr {
				return d.Parent
			}
		}
	}
	panic(fmt.Sprintf("workload: no inclusion for %s.%s", child, attr))
}

// RandomRow returns a random current view row, or ok=false.
func (w *TreeWorkload) RandomRow() (tuple.T, bool) {
	rows := w.View.Materialize(w.DB).Slice()
	if len(rows) == 0 {
		return tuple.T{}, false
	}
	return rows[w.rng.Intn(len(rows))], true
}

// FreshRootKey returns a root key not currently used, or ok=false.
func (w *TreeWorkload) FreshRootKey() (int64, bool) {
	root := w.Relations[0]
	used := map[int64]bool{}
	for _, t := range w.DB.Tuples(root.Name()) {
		used[t.At(0).Int()] = true
	}
	for attempt := 0; attempt < 128; attempt++ {
		k := int64(w.rng.Intn(int(w.cfg.Keys))) + 1
		if !used[k] {
			return k, true
		}
	}
	return 0, false
}

// InsertRequestForFreshRoot builds a valid insert request that reuses
// an existing row's parent chain under a fresh root key, changing only
// the root payload.
func (w *TreeWorkload) InsertRequestForFreshRoot() (core.Request, bool) {
	row, ok := w.RandomRow()
	if !ok {
		return core.Request{}, false
	}
	k, ok := w.FreshRootKey()
	if !ok {
		return core.Request{}, false
	}
	rootKeyAttr := w.Relations[0].Key()[0]
	u := row.MustWith(rootKeyAttr, value.NewInt(k))
	countRequest(update.Insert)
	return core.InsertRequest(u), true
}
