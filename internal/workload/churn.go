package workload

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/core"
	"viewupdate/internal/faultinject"
	"viewupdate/internal/obs"
	"viewupdate/internal/persist"
	"viewupdate/internal/storage"
	"viewupdate/internal/update"
	"viewupdate/internal/vuerr"
	"viewupdate/internal/wal"
)

// ChurnConfig parameterizes a crash-churn run: a seeded SP workload
// whose view updates are translated and applied while a deterministic
// fault plan injects transient failures into the storage apply path.
// Everything — the initial state, the request stream, and the fault
// schedule — derives from SP.Seed, so the same configuration always
// produces the same run.
type ChurnConfig struct {
	// SP shapes the underlying workload; SP.Seed also seeds the fault
	// plan.
	SP SPConfig
	// Steps is the number of view update requests to attempt, cycling
	// insert, delete, replace.
	Steps int
	// FaultEveryNth injects vuerr.ErrTransient at every k-th storage
	// apply (0 disables fault injection).
	FaultEveryNth int
	// FaultLimit bounds the number of injected faults (0 = unlimited).
	FaultLimit int
	// RetryAttempts is the total number of apply attempts per request;
	// values below 1 mean a single attempt, so every injected fault
	// fails its request.
	RetryAttempts int
}

// ChurnReport summarizes a churn run. Two runs of the same
// configuration produce identical reports.
type ChurnReport struct {
	Steps   int    // requests attempted
	Applied int    // requests whose translation landed
	Failed  int    // requests that failed (translation or apply)
	Skipped int    // steps where the state admitted no request
	Faults  int    // transient faults injected
	Retries int    // extra apply attempts taken after a transient fault
	State   string // canonical rendering of the final base state
}

func (r *ChurnReport) String() string {
	return fmt.Sprintf("churn: %d steps, %d applied, %d failed, %d skipped, %d faults, %d retries",
		r.Steps, r.Applied, r.Failed, r.Skipped, r.Faults, r.Retries)
}

// RenderState canonicalizes a database state for cross-instance
// comparison: all tuples of all relations, sorted. Tuple identity is
// schema-instance-scoped, so Database.Equal cannot compare a live
// state with a recovered one; equal renderings can.
func RenderState(db *storage.Database) string {
	var lines []string
	for _, name := range db.Schema().RelationNames() {
		for _, t := range db.Tuples(name) {
			lines = append(lines, name+t.String())
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// RunChurn executes the scenario. When dir is non-empty, updates are
// applied through a durable persist.Store rooted there (so the run can
// be recovered and checked afterwards); otherwise they apply to the
// in-memory database only.
//
// RunChurn installs its fault plan process-wide for the duration of
// the call and removes it before returning; it must not race with
// other fault-injection users.
func RunChurn(cfg ChurnConfig, dir string) (*ChurnReport, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("workload: churn needs Steps > 0, got %d", cfg.Steps)
	}
	w, err := NewSP(cfg.SP)
	if err != nil {
		return nil, err
	}

	apply := w.DB.Apply
	if dir != "" {
		st, err := persist.Create(dir, w.DB, persist.Options{Sync: wal.SyncNever})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		apply = st.Apply
	}

	plan := faultinject.NewPlan(cfg.SP.Seed)
	if cfg.FaultEveryNth > 0 {
		plan.FailEveryNth(faultinject.SiteApply, cfg.FaultEveryNth, cfg.FaultLimit, vuerr.ErrTransient)
	}
	faultinject.Enable(plan)
	defer faultinject.Disable()

	tr := core.NewTranslator(w.View, core.PickFirst{})
	attempts := cfg.RetryAttempts
	if attempts < 1 {
		attempts = 1
	}
	kinds := []update.Kind{update.Insert, update.Delete, update.Replace}
	rep := &ChurnReport{Steps: cfg.Steps}
	for step := 0; step < cfg.Steps; step++ {
		req, ok := w.NextRequest(kinds[step%len(kinds)])
		if !ok {
			rep.Skipped++
			continue
		}
		cand, err := tr.Translate(w.DB, req)
		if err != nil {
			rep.Failed++
			continue
		}
		var applyErr error
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				rep.Retries++
				obs.Inc("workload.churn.retry")
			}
			applyErr = apply(cand.Translation)
			if applyErr == nil || !vuerr.IsTransient(applyErr) {
				break
			}
		}
		if applyErr != nil {
			rep.Failed++
			obs.Inc("workload.churn.failed")
			continue
		}
		rep.Applied++
	}
	rep.Faults = plan.Fired(faultinject.SiteApply)
	rep.State = RenderState(w.DB)
	return rep, nil
}
