package vuerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassification(t *testing.T) {
	for _, tc := range []struct {
		name      string
		err       error
		transient bool
		corrupt   bool
	}{
		{"nil", nil, false, false},
		{"plain", errors.New("boom"), false, false},
		{"transient sentinel", ErrTransient, true, false},
		{"corrupt sentinel", ErrCorrupt, false, true},
		{"wrapped transient", fmt.Errorf("wal: append: %w", ErrTransient), true, false},
		{"wrapped corrupt", fmt.Errorf("persist: replay: %w", ErrCorrupt), false, true},
		{"deeply wrapped", fmt.Errorf("a: %w", fmt.Errorf("b: %w", ErrTransient)), true, false},
		{"joined", errors.Join(errors.New("x"), ErrCorrupt), false, true},
		{"both", fmt.Errorf("%w (%w)", ErrTransient, ErrCorrupt), true, true},
	} {
		if got := IsTransient(tc.err); got != tc.transient {
			t.Errorf("%s: IsTransient = %v, want %v", tc.name, got, tc.transient)
		}
		if got := IsCorrupt(tc.err); got != tc.corrupt {
			t.Errorf("%s: IsCorrupt = %v, want %v", tc.name, got, tc.corrupt)
		}
	}
}

// TestSentinelsDistinct: the two sentinels never satisfy each other —
// a retry decision must not confuse them.
func TestSentinelsDistinct(t *testing.T) {
	if errors.Is(ErrTransient, ErrCorrupt) || errors.Is(ErrCorrupt, ErrTransient) {
		t.Fatal("sentinels alias each other")
	}
	if IsCorrupt(ErrTransient) || IsTransient(ErrCorrupt) {
		t.Fatal("classifiers cross-match")
	}
}

// TestMessagesStable: downstream log scrapers rely on these substrings.
func TestMessagesStable(t *testing.T) {
	if ErrTransient.Error() != "transient failure" {
		t.Errorf("ErrTransient message changed: %q", ErrTransient.Error())
	}
	if ErrCorrupt.Error() != "corrupt state" {
		t.Errorf("ErrCorrupt message changed: %q", ErrCorrupt.Error())
	}
}
