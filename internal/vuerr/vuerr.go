// Package vuerr defines the sentinel errors shared across the
// durability layer of the view-update engine. They live in a leaf
// package (stdlib imports only) so that storage, wal, persist, core and
// faultinject can all classify failures with errors.Is without import
// cycles.
//
// The failure taxonomy is deliberately small:
//
//   - ErrTransient marks failures that are expected to succeed on
//     retry: an injected I/O hiccup, a momentarily unavailable
//     resource. Translator.Apply retries these with bounded backoff.
//   - ErrCorrupt marks failures after which the affected component's
//     state can no longer be trusted: a poisoned in-memory database
//     (rollback itself failed), a WAL record whose checksum does not
//     match, a recovered state violating inclusion dependencies.
//     Corrupt errors must never be retried; the only ways out are
//     recovery from durable state or operator intervention.
package vuerr

import "errors"

// ErrTransient marks a retryable failure.
var ErrTransient = errors.New("transient failure")

// ErrCorrupt marks an unrecoverable corruption of component state.
var ErrCorrupt = errors.New("corrupt state")

// IsTransient reports whether err is, or wraps, ErrTransient.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsCorrupt reports whether err is, or wraps, ErrCorrupt.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
