package report

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderTraceGolden locks in the explain-trace text for the paper's
// worked R-case: moving employee #17 to a fresh employee number in
// Susan's New York view. Phase timings are stripped before rendering so
// the output is deterministic.
func TestRenderTraceGolden(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	old := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	new_ := f.ViewTuple(f.ViewP, 19, "Susan", "New York", true)
	r := core.ReplaceRequest(old, new_)

	_, tr, err := core.TraceTranslate(db, f.ViewP, core.PickFirst{}, r, core.TraceOptions{Probes: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Phases = nil // timings are non-deterministic

	got := RenderTrace(tr)
	golden := filepath.Join("testdata", "trace_replace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("explain trace drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderTraceShowsRejections checks that the rendered trace names a
// rejecting criterion for at least one discarded probe — the acceptance
// criterion of the explain feature.
func TestRenderTraceShowsRejections(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	r := core.DeleteRequest(f.ViewTuple(f.ViewP, 17, "Susan", "New York", true))
	_, tr, err := core.TraceTranslate(db, f.ViewP, core.PickFirst{}, r, core.TraceOptions{Probes: true})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTrace(tr)
	if !strings.Contains(out, "REJECTED by criterion") {
		t.Errorf("trace shows no criterion rejection:\n%s", out)
	}
	if !strings.Contains(out, "<= chosen") {
		t.Errorf("trace marks no chosen candidate:\n%s", out)
	}
}

func TestTraceJSON(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	r := core.DeleteRequest(f.ViewTuple(f.ViewP, 17, "Susan", "New York", true))
	_, tr, err := core.TraceTranslate(db, f.ViewP, core.PickFirst{}, r, core.TraceOptions{Probes: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := TraceJSON(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back core.Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if back.View != tr.View || len(back.Candidates) != len(tr.Candidates) {
		t.Errorf("round-tripped trace differs: %+v", back)
	}
}
