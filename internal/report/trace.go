package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"viewupdate/internal/core"
)

// RenderTrace renders an explain trace as human-readable text: the
// request, the pipeline phase timings, every considered candidate with
// its verdict (and, for rejected ones, the violated criterion of §3),
// and a per-criterion rejection summary.
func RenderTrace(t *core.Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "explain trace: %s on %s\n", t.Request, t.View)
	validity := "requested-changes (join views may have view side effects)"
	if t.Exact {
		validity = "exact (V(DB') = U(V(DB)))"
	}
	fmt.Fprintf(&b, "  policy: %s; validity: %s\n", t.Policy, validity)
	if len(t.Phases) > 0 {
		parts := make([]string, len(t.Phases))
		for i, p := range t.Phases {
			parts[i] = fmt.Sprintf("%s %s", p.Name, time.Duration(p.Nanos))
		}
		fmt.Fprintf(&b, "  phases: %s\n", strings.Join(parts, ", "))
	}
	if t.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", t.Err)
	}

	fmt.Fprintf(&b, "\ncandidates (%d considered, %d accepted):\n",
		len(t.Candidates), len(t.Accepted()))
	for i, c := range t.Candidates {
		verdict := c.Verdict
		switch c.Verdict {
		case core.VerdictRejected:
			verdict = fmt.Sprintf("REJECTED by criterion %d", c.RejectedBy)
		case core.VerdictInvalid:
			verdict = "INVALID"
		case core.VerdictAccepted:
			if c.Chosen {
				verdict = "accepted  <= chosen"
			}
		}
		fmt.Fprintf(&b, "%3d. [%s %s] %s\n", i+1, c.Source, c.Class, verdict)
		fmt.Fprintf(&b, "     %s\n", c.Translation)
		if len(c.Choices) > 0 {
			fmt.Fprintf(&b, "     choices: %s\n", strings.Join(c.Choices, ", "))
		}
		if c.Detail != "" {
			fmt.Fprintf(&b, "     %s\n", c.Detail)
		}
	}

	if rej := t.Rejections(); len(rej) > 0 {
		crits := make([]int, 0, len(rej))
		for k := range rej {
			crits = append(crits, k)
		}
		sort.Ints(crits)
		parts := make([]string, len(crits))
		for i, k := range crits {
			parts[i] = fmt.Sprintf("criterion %d: %d", k, rej[k])
		}
		fmt.Fprintf(&b, "\nrejections: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// TraceJSON renders the trace as indented JSON.
func TraceJSON(t *core.Trace) ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}
