// Package report renders fixed-width text tables for the experiment
// harness, in the style of the rows a paper's evaluation section would
// print.
package report

import (
	"fmt"
	"io"
	"strings"
)

// A Table is a titled grid of rows under a header.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Header {
		if len(h) > w[i] {
			w[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := t.widths()
	line := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		line(t.Header)
		sep := make([]string, len(widths))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
	}
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		b.WriteString("note: ")
		b.WriteString(t.Note)
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("<table render error: %v>", err)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
