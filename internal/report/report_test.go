package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("E1: test table", "col", "n", "ratio")
	tb.AddRow("a", 1, 0.5)
	tb.AddRow("longer-cell", 20000, 1.0)
	tb.Note = "a note"
	out := tb.String()
	if !strings.Contains(out, "E1: test table") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "longer-cell") || !strings.Contains(out, "20000") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "0.50") {
		t.Fatalf("floats should render with 2 decimals:\n%s", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatalf("missing note:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + underline + header + separator + 2 rows + note.
	if len(lines) != 7 {
		t.Fatalf("want 7 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: header and rows have the same prefix width for
	// column 2.
	hdr := lines[2]
	row := lines[4]
	if strings.Index(hdr, "n") < 0 || strings.Index(row, "1") < 0 {
		t.Fatalf("columns missing:\n%s", out)
	}
}

func TestTableNoHeaderNoTitle(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.String()
	if !strings.HasPrefix(out, "x") {
		t.Fatalf("bare table wrong:\n%q", out)
	}
}

func TestRowsWiderThanHeader(t *testing.T) {
	tb := New("t", "only")
	tb.AddRow("a", "b", "c")
	out := tb.String()
	if !strings.Contains(out, "c") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}
