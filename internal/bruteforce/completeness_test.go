package bruteforce

import (
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/core"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// oracleFixture is a deliberately tiny instance over which exhaustive
// search is feasible: R(K*, A, S, H) with K ∈ {1,2,3}, A ∈ {x,y},
// S ∈ {s1,s2,s3}, H ∈ {h1,h2}; the view selects A ∈ {x} ∧ S ∈ {s1,s2}
// and projects K, A — so A is a visible selecting attribute, S a hidden
// selecting attribute, and H a hidden non-selecting attribute,
// exercising every branch of the algorithm classes.
type oracleFixture struct {
	sch *schema.Database
	rel *schema.Relation
	v   *view.SP
}

func newOracleFixture(t testing.TB) *oracleFixture {
	t.Helper()
	kDom, err := schema.IntRangeDomain("K", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	aDom, err := schema.StringDomain("A", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	sDom, err := schema.StringDomain("S", "s1", "s2", "s3")
	if err != nil {
		t.Fatal(err)
	}
	hDom, err := schema.StringDomain("H", "h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "A", Domain: aDom},
		{Name: "S", Domain: sDom},
		{Name: "H", Domain: hDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	sel := algebra.NewSelection(rel).
		MustAddTerm("A", value.NewString("x")).
		MustAddTerm("S", value.NewString("s1"), value.NewString("s2"))
	v, err := view.NewSP("V", sel, []string{"K", "A"})
	if err != nil {
		t.Fatal(err)
	}
	return &oracleFixture{sch: sch, rel: rel, v: v}
}

func (f *oracleFixture) tuple(t testing.TB, k int64, a, s, h string) tuple.T {
	tp, err := tuple.New(f.rel,
		value.NewInt(k), value.NewString(a), value.NewString(s), value.NewString(h))
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func (f *oracleFixture) viewTuple(t testing.TB, k int64, a string) tuple.T {
	tp, err := tuple.New(f.v.Schema(), value.NewInt(k), value.NewString(a))
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// loadState opens a database holding one visible tuple (key 1) and one
// hidden tuple (key 2, excluded by both A and S).
func (f *oracleFixture) loadState(t testing.TB) *storage.Database {
	db := storage.Open(f.sch)
	if err := db.Load("R",
		f.tuple(t, 1, "x", "s1", "h1"), // visible as (1, x)
		f.tuple(t, 2, "y", "s3", "h2"), // hidden
	); err != nil {
		t.Fatal(err)
	}
	return db
}

// mustAgree runs the oracle and the generator on the same request and
// fails the test on any difference — the executable form of the
// paper's completeness theorems.
func mustAgree(t *testing.T, db *storage.Database, f *oracleFixture, r core.Request, cfg Config, wantCount int) {
	t.Helper()
	oracle, err := Search(db, f.v, r, cfg)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	gen, err := core.Enumerate(db, f.v, r)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	onlyOracle, onlyGenerated := Diff(oracle, gen)
	if len(onlyOracle) > 0 {
		t.Errorf("oracle found %d translations the generators missed (incompleteness):\n%v", len(onlyOracle), onlyOracle)
	}
	if len(onlyGenerated) > 0 {
		t.Errorf("generators produced %d translations the oracle rejected (unsoundness):\n%v", len(onlyGenerated), onlyGenerated)
	}
	if wantCount >= 0 && len(gen) != wantCount {
		t.Errorf("want %d candidates, got %d:\n%s", wantCount, len(gen), core.DescribeCandidates(gen))
	}
}

// TestInsertCompletenessI1 validates the theorem "the set of update
// translations that satisfy the 5 criteria for individual view
// insertions are precisely those in algorithm classes I-1 and I-2" for
// the I-1 (no key conflict) regime.
func TestInsertCompletenessI1(t *testing.T) {
	f := newOracleFixture(t)
	db := f.loadState(t)
	// Key 3 is fresh: extend-insert chooses S ∈ {s1,s2} × H ∈ {h1,h2}.
	r := core.InsertRequest(f.viewTuple(t, 3, "x"))
	mustAgree(t, db, f, r, Config{MaxOps: 2, Exact: true}, 4)
}

// TestInsertCompletenessI2 validates the same theorem in the I-2
// (hidden key conflict) regime.
func TestInsertCompletenessI2(t *testing.T) {
	f := newOracleFixture(t)
	db := f.loadState(t)
	// Key 2 exists hidden with A=y (visible attr excluded) and S=s3
	// (hidden attr excluded): I-2 must set A:=x and flip S to s1 or s2,
	// keeping H; exactly 2 translations.
	r := core.InsertRequest(f.viewTuple(t, 2, "x"))
	mustAgree(t, db, f, r, Config{MaxOps: 2, Exact: true}, 2)
}

// TestDeleteCompleteness validates "the set of update translations that
// satisfy the 5 criteria for individual view deletions are precisely
// those in algorithm classes D-1 and D-2".
func TestDeleteCompleteness(t *testing.T) {
	f := newOracleFixture(t)
	db := f.loadState(t)
	// Deleting visible (1, x): D-1 (delete) + D-2 on A (y) + D-2 on S
	// (s3) = 3 translations.
	r := core.DeleteRequest(f.viewTuple(t, 1, "x"))
	mustAgree(t, db, f, r, Config{MaxOps: 2, Exact: true}, 3)
}

// TestReplaceCompleteness validates "the set of update translations
// that satisfy the five criteria for candidate update translations for
// individual view replacements are precisely those generated by
// algorithm classes R-1, R-2, R-3, R-4 and R-5". The main oracle
// fixture's only visible attributes are the key and a selecting
// attribute pinned by the selection, so key-preserving replacements
// would leave the view; this test therefore uses a view with a visible
// non-selecting attribute B.
func TestReplaceCompleteness(t *testing.T) {
	kDom, _ := schema.IntRangeDomain("K", 1, 3)
	bDom, _ := schema.StringDomain("B", "b1", "b2")
	sDom, _ := schema.StringDomain("S", "s1", "s2", "s3")
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "B", Domain: bDom},
		{Name: "S", Domain: sDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	sel := algebra.NewSelection(rel).MustAddTerm("S", value.NewString("s1"), value.NewString("s2"))
	v, err := view.NewSP("V", sel, []string{"K", "B"})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(sch)
	mk := func(k int64, b, s string) tuple.T {
		return tuple.MustNew(rel, value.NewInt(k), value.NewString(b), value.NewString(s))
	}
	if err := db.Load("R", mk(1, "b1", "s1"), mk(2, "b2", "s3")); err != nil {
		t.Fatal(err)
	}
	vt := func(k int64, b string) tuple.T {
		return tuple.MustNew(v.Schema(), value.NewInt(k), value.NewString(b))
	}

	// Key-preserving replacement (1,b1) -> (1,b2): R-1 only.
	r := core.ReplaceRequest(vt(1, "b1"), vt(1, "b2"))
	oracle, err := Search(db, v, r, Config{MaxOps: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.Enumerate(db, v, r)
	if err != nil {
		t.Fatal(err)
	}
	oo, og := Diff(oracle, gen)
	if len(oo) > 0 || len(og) > 0 {
		t.Fatalf("R-1 mismatch: onlyOracle=%v onlyGenerated=%v", oo, og)
	}
	if len(gen) != 1 || gen[0].Class != "R-1" {
		t.Fatalf("want exactly R-1, got %s", core.DescribeCandidates(gen))
	}

	// Key-changing replacement to fresh key 3: R-2 + R-4 (D-2 on S ×
	// extend-insert S ∈ {s1,s2}) = 1 + 1*2 = 3.
	r = core.ReplaceRequest(vt(1, "b1"), vt(3, "b1"))
	oracle, err = Search(db, v, r, Config{MaxOps: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, err = core.Enumerate(db, v, r)
	if err != nil {
		t.Fatal(err)
	}
	oo, og = Diff(oracle, gen)
	if len(oo) > 0 || len(og) > 0 {
		t.Fatalf("R-2/R-4 mismatch: onlyOracle=%v onlyGenerated=%v", oo, og)
	}
	if len(gen) != 3 {
		t.Fatalf("want 3 candidates (R-2 + 2×R-4), got %s", core.DescribeCandidates(gen))
	}

	// Key-changing replacement onto hidden key 2: R-3 (I-2 flips S to
	// s1|s2 and rewrites B) + R-5 (D-2 × I-2) = 2 + 1*2*... D-2 on S
	// has one excluding value (s3); I-2 on hidden (2,b2,s3) must set
	// B:=b1 and flip S: 2 choices. R-3: 2, R-5: 1×2=2. Total 4.
	r = core.ReplaceRequest(vt(1, "b1"), vt(2, "b1"))
	oracle, err = Search(db, v, r, Config{MaxOps: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	gen, err = core.Enumerate(db, v, r)
	if err != nil {
		t.Fatal(err)
	}
	oo, og = Diff(oracle, gen)
	if len(oo) > 0 || len(og) > 0 {
		t.Fatalf("R-3/R-5 mismatch: onlyOracle=%v onlyGenerated=%v", oo, og)
	}
	if len(gen) != 4 {
		t.Fatalf("want 4 candidates (2×R-3 + 2×R-5), got %s", core.DescribeCandidates(gen))
	}
}

// TestReplaceCompletenessSize3 re-runs the key-change cases allowing
// three-op translations, confirming nothing beyond the classes appears
// at larger sizes (criteria 3–5 prune them all).
func TestReplaceCompletenessSize3(t *testing.T) {
	if testing.Short() {
		t.Skip("size-3 exhaustive search skipped in -short mode")
	}
	f := newOracleFixture(t)
	db := f.loadState(t)
	r := core.ReplaceRequest(f.viewTuple(t, 1, "x"), f.viewTuple(t, 3, "x"))
	mustAgree(t, db, f, r, Config{MaxOps: 3, Exact: true, MaxUniverse: 5000}, -1)
}

// TestInsertCompletenessSize3 likewise for insertion.
func TestInsertCompletenessSize3(t *testing.T) {
	if testing.Short() {
		t.Skip("size-3 exhaustive search skipped in -short mode")
	}
	f := newOracleFixture(t)
	db := f.loadState(t)
	r := core.InsertRequest(f.viewTuple(t, 3, "x"))
	mustAgree(t, db, f, r, Config{MaxOps: 3, Exact: true, MaxUniverse: 5000}, 4)
}

// TestSimplificationTheorem validates "for every valid translation,
// there is (at least one) translation at least as simple that satisfies
// the 5 criteria" over the oracle instance, for all three request
// kinds.
func TestSimplificationTheorem(t *testing.T) {
	f := newOracleFixture(t)
	db := f.loadState(t)
	reqs := []core.Request{
		core.InsertRequest(f.viewTuple(t, 3, "x")),
		core.InsertRequest(f.viewTuple(t, 2, "x")),
		core.DeleteRequest(f.viewTuple(t, 1, "x")),
		core.ReplaceRequest(f.viewTuple(t, 1, "x"), f.viewTuple(t, 3, "x")),
		core.ReplaceRequest(f.viewTuple(t, 1, "x"), f.viewTuple(t, 2, "x")),
	}
	sawStrictFailure := false
	for _, r := range reqs {
		res, err := CheckSimplification(db, f.v, r, Config{MaxOps: 2, Exact: true})
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if res.ChainFailures > 0 {
			t.Fatalf("%s: valid translation %s reaches no accepted translation by simplification",
				r, res.ChainExample)
		}
		if res.Checked == 0 {
			t.Fatalf("%s: no valid translations checked", r)
		}
		if res.StrictFailures > 0 {
			sawStrictFailure = true
		}
	}
	// Reproduction note: the literal subset-order reading of "at least
	// as simple" admits counterexamples (see SimplificationResult); the
	// chain reading holds everywhere. Pin the observation so a future
	// semantics change is noticed.
	if !sawStrictFailure {
		t.Log("no strict-order counterexample observed (expected at least one for the I-2 insert)")
	}
}

// TestInsertCompletenessDoubleFlip exercises I-2 with TWO hidden
// selecting attributes holding excluding values: the rewrite must flip
// both, and the choice product (2 x 2 selecting values) matches the
// oracle exactly.
func TestInsertCompletenessDoubleFlip(t *testing.T) {
	kDom, _ := schema.IntRangeDomain("K", 1, 2)
	aDom, _ := schema.StringDomain("A", "x", "y")
	s1Dom, _ := schema.StringDomain("S1", "p1", "p2", "p3")
	s2Dom, _ := schema.StringDomain("S2", "q1", "q2", "q3")
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "A", Domain: aDom},
		{Name: "S1", Domain: s1Dom},
		{Name: "S2", Domain: s2Dom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	sel := algebra.NewSelection(rel).
		MustAddTerm("S1", value.NewString("p1"), value.NewString("p2")).
		MustAddTerm("S2", value.NewString("q1"), value.NewString("q2"))
	v, err := view.NewSP("V", sel, []string{"K", "A"})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(sch)
	// Hidden tuple with BOTH selecting attributes excluding.
	if err := db.Load("R", tuple.MustNew(rel,
		value.NewInt(2), value.NewString("y"), value.NewString("p3"), value.NewString("q3"))); err != nil {
		t.Fatal(err)
	}
	u := tuple.MustNew(v.Schema(), value.NewInt(2), value.NewString("x"))
	r := core.InsertRequest(u)

	gen, err := core.Enumerate(db, v, r)
	if err != nil {
		t.Fatal(err)
	}
	// 2 selecting values for S1 x 2 for S2 = 4 I-2 rewrites.
	if len(gen) != 4 {
		t.Fatalf("want 4 I-2 candidates, got %s", core.DescribeCandidates(gen))
	}
	oracle, err := Search(db, v, r, Config{MaxOps: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	oo, og := Diff(oracle, gen)
	if len(oo) > 0 || len(og) > 0 {
		t.Fatalf("double-flip mismatch: onlyOracle=%v onlyGenerated=%v", oo, og)
	}
}
