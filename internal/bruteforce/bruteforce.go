// Package bruteforce is the oracle for the paper's completeness
// theorems: it enumerates, by exhaustive search over a small instance's
// entire update space, every translation of a view update request that
// is valid and satisfies the five criteria — trusting nothing about the
// algorithm classes. Tests diff its output against the generators of
// package core in both directions.
package bruteforce

import (
	"fmt"
	"sort"

	"viewupdate/internal/core"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// Config bounds the search.
type Config struct {
	// MaxOps bounds the number of operations per translation
	// (default 2 — the paper's SP translations have at most two).
	MaxOps int
	// Relations restricts the op universe to the named relations
	// (default: all relations of the schema).
	Relations []string
	// MaxUniverse aborts if the op universe exceeds this size
	// (default 2000) — a guard against accidentally huge instances.
	MaxUniverse int
	// Exact selects the validity notion: exact view equality (SP
	// semantics) when true, requested-changes-only otherwise.
	Exact bool
	// ValidOnly skips the five-criteria filter, returning every valid
	// translation. Used by the simplification-theorem check.
	ValidOnly bool
}

func (c Config) withDefaults() Config {
	if c.MaxOps == 0 {
		c.MaxOps = 2
	}
	if c.MaxUniverse == 0 {
		c.MaxUniverse = 2000
	}
	return c
}

// allTuples enumerates the full extension space of rel (every
// combination of domain values).
func allTuples(rel *schema.Relation) []tuple.T {
	attrs := rel.Attributes()
	var out []tuple.T
	vals := make([]value.Value, len(attrs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(attrs) {
			cp := make([]value.Value, len(vals))
			copy(cp, vals)
			out = append(out, tuple.MustNew(rel, cp...))
			return
		}
		for _, v := range attrs[i].Domain.Values() {
			vals[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// OpUniverse enumerates every single operation the search may compose:
// deletions of present tuples, insertions of absent tuples, and
// replacements of present tuples by any different tuple.
func OpUniverse(db *storage.Database, relations []string) ([]update.Op, error) {
	var out []update.Op
	for _, rn := range relations {
		rel := db.Schema().Relation(rn)
		if rel == nil {
			return nil, fmt.Errorf("bruteforce: unknown relation %s", rn)
		}
		present := db.Tuples(rn)
		space := allTuples(rel)
		for _, t := range present {
			out = append(out, update.NewDelete(t))
		}
		for _, t := range space {
			if !db.Contains(t) {
				out = append(out, update.NewInsert(t))
			}
		}
		for _, old := range present {
			for _, new := range space {
				if !new.Equal(old) {
					out = append(out, update.NewReplace(old, new))
				}
			}
		}
	}
	return out, nil
}

// Result is the oracle's answer: the canonical set of accepted
// translations.
type Result struct {
	Translations []*update.Translation
	// Universe is the size of the op universe searched.
	Universe int
	// Examined is the number of candidate translations tested.
	Examined int
}

// Encodings returns the sorted canonical encodings of the result set.
func (r *Result) Encodings() []string {
	out := make([]string, len(r.Translations))
	for i, tr := range r.Translations {
		out[i] = tr.Encode()
	}
	sort.Strings(out)
	return out
}

// Search exhaustively enumerates all translations of request r against
// view v over db, up to cfg.MaxOps operations, returning those that are
// valid and satisfy the five criteria.
func Search(db *storage.Database, v view.View, r core.Request, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rels := cfg.Relations
	if rels == nil {
		rels = db.Schema().RelationNames()
	}
	universe, err := OpUniverse(db, rels)
	if err != nil {
		return nil, err
	}
	if len(universe) > cfg.MaxUniverse {
		return nil, fmt.Errorf("bruteforce: op universe %d exceeds limit %d", len(universe), cfg.MaxUniverse)
	}

	validFn := func(tr *update.Translation) bool { return core.Valid(db, v, r, tr) }
	if !cfg.Exact {
		validFn = func(tr *update.Translation) bool { return core.ValidRequested(db, v, r, tr) }
	}
	opts := core.CheckOptions{Valid: validFn}

	res := &Result{Universe: len(universe)}
	idx := make([]int, 0, cfg.MaxOps)
	var rec func(start int)
	rec = func(start int) {
		if len(idx) > 0 {
			tr := update.NewTranslation()
			for _, i := range idx {
				tr.Add(universe[i])
			}
			res.Examined++
			if validFn(tr) && (cfg.ValidOnly || len(core.CheckCriteria(db, v, r, tr, opts)) == 0) {
				res.Translations = append(res.Translations, tr)
			}
		}
		if len(idx) == cfg.MaxOps {
			return
		}
		for i := start; i < len(universe); i++ {
			idx = append(idx, i)
			rec(i + 1)
			idx = idx[:len(idx)-1]
		}
	}
	rec(0)
	return res, nil
}

// SimplificationResult reports the outcome of CheckSimplification under
// the two readings of the theorem's "at least as simple" order (§3).
type SimplificationResult struct {
	// Checked is the number of valid translations examined.
	Checked int
	// StrictFailures counts valid translations with no accepted
	// translation whose added and removed sets are subsets of theirs —
	// the literal subset-order reading. This reproduction found the
	// subset reading to admit counterexamples (a delete-insert pair
	// whose accepted I-2 equivalent preserves a hidden attribute the
	// pair overwrote); see EXPERIMENTS.md.
	StrictFailures int
	// StrictExample is one such counterexample, if any.
	StrictExample *update.Translation
	// ChainFailures counts valid translations from which no accepted
	// translation is reachable under the combined order: subset
	// dominance of added/removed sets, composed with simplification
	// steps (dropping operations, converting a same-relation
	// delete-insert pair into a replacement, weakening a replacement
	// per criterion 4's simpler-replacement order).
	ChainFailures int
	// ChainExample is one such counterexample, if any.
	ChainExample *update.Translation
}

// CheckSimplification validates the paper's simplification theorem on
// one request: "for every valid translation, there is (at least one)
// translation at least as simple that satisfies the 5 criteria". It
// searches all valid translations up to cfg.MaxOps and tests dominance
// under both the strict subset order and the simplification-chain
// order.
func CheckSimplification(db *storage.Database, v view.View, r core.Request, cfg Config) (*SimplificationResult, error) {
	validCfg := cfg
	validCfg.ValidOnly = true
	valid, err := Search(db, v, r, validCfg)
	if err != nil {
		return nil, err
	}
	acceptedCfg := cfg
	acceptedCfg.ValidOnly = false
	accepted, err := Search(db, v, r, acceptedCfg)
	if err != nil {
		return nil, err
	}
	res := &SimplificationResult{Checked: len(valid.Translations)}
	dominated := func(t *update.Translation) bool {
		for _, a := range accepted.Translations {
			if a.AtLeastAsSimpleAs(t) {
				return true
			}
		}
		return false
	}
	for _, t := range valid.Translations {
		if !dominated(t) {
			res.StrictFailures++
			if res.StrictExample == nil {
				res.StrictExample = t
			}
		}
		if !chainReaches(t, dominated) {
			res.ChainFailures++
			if res.ChainExample == nil {
				res.ChainExample = t
			}
		}
	}
	return res, nil
}

// chainReaches runs a BFS over single simplification steps from t,
// reporting whether any visited translation is subset-dominated by an
// accepted translation.
func chainReaches(t *update.Translation, dominated func(*update.Translation) bool) bool {
	seen := map[string]bool{t.Encode(): true}
	queue := []*update.Translation{t}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dominated(cur) {
			return true
		}
		for _, next := range simplificationSteps(cur) {
			enc := next.Encode()
			if !seen[enc] {
				seen[enc] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// simplificationSteps yields every translation obtainable from tr by
// one simplification step.
func simplificationSteps(tr *update.Translation) []*update.Translation {
	ops := tr.Ops()
	var out []*update.Translation

	without := func(skip ...int) *update.Translation {
		skipSet := map[int]bool{}
		for _, i := range skip {
			skipSet[i] = true
		}
		next := update.NewTranslation()
		for i, o := range ops {
			if !skipSet[i] {
				next.Add(o)
			}
		}
		return next
	}

	// Drop one operation.
	for i := range ops {
		out = append(out, without(i))
	}
	// Equivalence moves (§3: equal added/removed sets): convert a
	// same-relation delete-insert pair into a replacement and re-pair
	// removed with added tuples across operations. These keep the
	// added/removed sets intact while restructuring the steps.
	for i, d := range ops {
		if d.Kind != update.Delete {
			continue
		}
		for j, o := range ops {
			switch {
			case o.Kind == update.Insert && o.RelationName() == d.RelationName():
				// delete(d) + insert(i)  ->  replace(d -> i)
				next := without(i, j)
				next.Add(update.NewReplace(d.Tuple, o.Tuple))
				out = append(out, next)
			case o.Kind == update.Replace && o.RelationName() == d.RelationName() && !d.Tuple.Equal(o.Old):
				// delete(d) + replace(o -> n)  ->  replace(d -> n) + delete(o)
				next := without(i, j)
				next.Add(update.NewReplace(d.Tuple, o.New))
				next.Add(update.NewDelete(o.Old))
				out = append(out, next)
			}
		}
	}
	for i, a := range ops {
		if a.Kind != update.Replace {
			continue
		}
		for j, b := range ops {
			if j <= i || b.Kind != update.Replace || b.RelationName() != a.RelationName() {
				continue
			}
			// Swap the replacement tuples of a pair of replaces.
			next := without(i, j)
			next.Add(update.NewReplace(a.Old, b.New))
			next.Add(update.NewReplace(b.Old, a.New))
			out = append(out, next)
		}
		for j, b := range ops {
			if b.Kind != update.Insert || b.RelationName() != a.RelationName() {
				continue
			}
			// insert(t) + replace(o -> n)  ->  replace(o -> t) + insert(n)
			next := without(i, j)
			next.Add(update.NewReplace(a.Old, b.Tuple))
			next.Add(update.NewInsert(a.New))
			out = append(out, next)
		}
	}
	// Weaken a replacement per criterion 4's order.
	for i, o := range ops {
		if o.Kind != update.Replace {
			continue
		}
		for _, alt := range core.SimplerReplacements(o, 0) {
			next := without(i)
			next.Add(alt)
			out = append(out, next)
		}
	}
	return out
}

// Diff compares the oracle's result with a generated candidate set and
// returns the translations present in exactly one side (canonical
// encodings, sorted): onlyOracle are accepted translations no generator
// produced (incompleteness), onlyGenerated are generator outputs the
// oracle rejected (unsoundness).
func Diff(oracle *Result, generated []core.Candidate) (onlyOracle, onlyGenerated []string) {
	o := map[string]bool{}
	for _, tr := range oracle.Translations {
		o[tr.Encode()] = true
	}
	g := map[string]bool{}
	for _, c := range generated {
		g[c.Translation.Encode()] = true
	}
	for enc := range o {
		if !g[enc] {
			onlyOracle = append(onlyOracle, enc)
		}
	}
	for enc := range g {
		if !o[enc] {
			onlyGenerated = append(onlyGenerated, enc)
		}
	}
	sort.Strings(onlyOracle)
	sort.Strings(onlyGenerated)
	return onlyOracle, onlyGenerated
}
