package experiments

import (
	"viewupdate/internal/algebra"
	"viewupdate/internal/schema"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// viewSP aliases view.SP for brevity in experiment code.
type viewSP = view.SP

// newSelection builds a one-term selection on rel.
func newSelection(rel *schema.Relation, attr string, vals ...value.Value) *algebra.Selection {
	return algebra.NewSelection(rel).MustAddTerm(attr, vals...)
}

// mustSP builds an SP view, panicking on error (experiment fixtures are
// statically known).
func mustSP(name string, sel *algebra.Selection, proj []string) *view.SP {
	return view.MustNewSP(name, sel, proj)
}
