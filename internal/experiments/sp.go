package experiments

import (
	"fmt"

	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/report"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/workload"
)

// E1Commutativity reproduces the §1 diagram: for SP views, the chosen
// translation must make the square commute — V(T(U)(DB)) = U(V(DB)),
// i.e. no view side effects — across database sizes and update kinds.
func E1Commutativity() Experiment {
	return Experiment{
		ID:      "E1",
		Title:   "Commutativity of translation (no view side effects)",
		Exhibit: "§1 diagram: V(DB') = U(V(DB))",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E1 — exact view-update commutativity on SP views",
				"db_tuples", "kind", "requests", "exact", "mean_candidates")
			allOK := true
			const perKind = 25
			for _, size := range []int{100, 1000, 10000} {
				w, err := workload.NewSP(workload.SPConfig{
					Keys: int64(size * 2), Attrs: 4, DomainSize: 6,
					SelectingAttrs: 2, HiddenAttrs: 2, Tuples: size, Seed: 42,
				})
				if err != nil {
					return nil, false, err
				}
				for _, kind := range []update.Kind{update.Insert, update.Delete, update.Replace} {
					exact, total, cands := 0, 0, 0
					for i := 0; i < perKind; i++ {
						r, ok := w.NextRequest(kind)
						if !ok {
							continue
						}
						cs, err := core.Enumerate(w.DB, w.View, r)
						if err != nil {
							return nil, false, fmt.Errorf("E1 enumerate: %w", err)
						}
						chosen, err := (core.PickFirst{}).Choose(r, cs)
						if err != nil {
							return nil, false, err
						}
						total++
						cands += len(cs)
						if core.Valid(w.DB, w.View, r, chosen.Translation) {
							exact++
						}
					}
					if exact != total {
						allOK = false
					}
					mean := 0.0
					if total > 0 {
						mean = float64(cands) / float64(total)
					}
					t.AddRow(size, kind.String(), total, fmt.Sprintf("%d/%d", exact, total), mean)
				}
			}
			t.Note = "exact = translations with V(DB') exactly U(V(DB)); the paper requires all of them for SP views"
			return t, allOK, nil
		},
	}
}

// E2Personnel reproduces the §4-1 worked example: Susan's and Frank's
// deletions of employees #17 and #14 under their respective policies.
func E2Personnel() Experiment {
	return Experiment{
		ID:      "E2",
		Title:   "Personnel example (Susan and Frank)",
		Exhibit: "§4-1 EMP worked example",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E2 — §4-1 view deletions under DBA policies",
				"actor", "view", "request", "class", "database effect")
			f := fixtures.NewEmp(20)
			ok := true

			// Susan deletes #17 from View P; policy: real deletion.
			db := f.PaperInstance()
			susan := core.NewTranslator(f.ViewP, core.PreferClasses{Label: "susan", Order: []string{"D-1"}})
			emp17 := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
			c, err := susan.Apply(db, core.DeleteRequest(emp17))
			if err != nil {
				return nil, false, err
			}
			gone := !db.Contains(f.Tuple(17, "Susan", "New York", true))
			offTeam := !f.ViewB.Materialize(db).Contains(f.ViewTuple(f.ViewB, 17, "Susan", "New York", true))
			ok = ok && c.Class == "D-1" && gone && offTeam
			t.AddRow("Susan", "ViewP (Location='New York')", "delete #17", c.Class,
				fmt.Sprintf("record deleted; off baseball view too: %v", offTeam))

			// Frank deletes #14 from View B; policy: flip the attribute.
			db = f.PaperInstance()
			frank := core.NewTranslator(f.ViewB, core.PreferClasses{Label: "frank", Order: []string{"D-2"}})
			emp14 := f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)
			c, err = frank.Apply(db, core.DeleteRequest(emp14))
			if err != nil {
				return nil, false, err
			}
			kept := db.Contains(f.Tuple(14, "Frank", "San Francisco", false))
			ok = ok && c.Class == "D-2" && kept
			t.AddRow("Frank", "ViewB (Baseball=true)", "delete #14", c.Class,
				fmt.Sprintf("employee kept, Baseball := false: %v", kept))

			// The discouraged translation exists as a candidate: moving
			// #17 to San Francisco (D-2 on ViewP).
			db = f.PaperInstance()
			cands, err := core.EnumerateSPDelete(db, f.ViewP, emp17)
			if err != nil {
				return nil, false, err
			}
			var d2 string
			for _, cand := range cands {
				if cand.Class == "D-2" {
					d2 = cand.Translation.String()
				}
			}
			ok = ok && d2 != ""
			t.AddRow("(candidate)", "ViewP", "delete #17", "D-2",
				"\"move to California\" alternative enumerated, policy-rejected")
			t.Note = "the paper: a view deletion is sometimes best a database deletion, sometimes a replacement; policy picks"
			return t, ok, nil
		},
	}
}

// E3ReplacementChart reproduces the §4-5 chart: the replacement
// algorithm classes applicable under (key change?) × (hidden key
// conflict?) are exactly {R-1}, {R-2, R-4}, {R-3, R-5}.
func E3ReplacementChart() Experiment {
	return Experiment{
		ID:      "E3",
		Title:   "Replacement algorithm chart",
		Exhibit: "§4-5 chart (R-1 … R-5)",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E3 — §4-5 replacement classes by condition",
				"key_change", "hidden_conflict", "classes", "candidates", "expected")
			sch, rel, v, db := chartFixture()
			_ = sch
			vt := func(k int64, b string) tuple.T {
				return tuple.MustNew(v.Schema(), value.NewInt(k), value.NewString(b))
			}
			_ = rel
			cases := []struct {
				name     string
				old, new tuple.T
				want     map[string]bool
				keyChg   string
				conflict string
			}{
				{"same-key", vt(1, "b1"), vt(1, "b2"), map[string]bool{"R-1": true}, "no", "—"},
				{"key-fresh", vt(1, "b1"), vt(3, "b1"), map[string]bool{"R-2": true, "R-4": true}, "yes", "no"},
				{"key-hidden", vt(1, "b1"), vt(2, "b1"), map[string]bool{"R-3": true, "R-5": true}, "yes", "yes"},
			}
			allOK := true
			for _, c := range cases {
				cands, err := core.EnumerateSPReplace(db, v, c.old, c.new)
				if err != nil {
					return nil, false, err
				}
				got := map[string]bool{}
				for _, cand := range cands {
					got[cand.Class] = true
				}
				match := len(got) == len(c.want)
				for cls := range c.want {
					if !got[cls] {
						match = false
					}
				}
				allOK = allOK && match
				t.AddRow(c.keyChg, c.conflict, classSet(got), len(cands), classSet(c.want))
			}
			t.Note = "chart rows: no key change -> R-1; key change x no conflict -> {R-2,R-4}; key change x conflict -> {R-3,R-5}"
			return t, allOK, nil
		},
	}
}

// chartFixture builds R(K*, B, S) with a selection on hidden S, one
// visible tuple (key 1) and one hidden tuple (key 2).
func chartFixture() (*schema.Database, *schema.Relation, *viewSP, *storage.Database) {
	kDom, err := schema.IntRangeDomain("K", 1, 3)
	if err != nil {
		panic(err)
	}
	bDom, err := schema.StringDomain("B", "b1", "b2")
	if err != nil {
		panic(err)
	}
	sDom, err := schema.StringDomain("S", "s1", "s2", "s3")
	if err != nil {
		panic(err)
	}
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "B", Domain: bDom},
		{Name: "S", Domain: sDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		panic(err)
	}
	sel := newSelection(rel, "S", value.NewString("s1"), value.NewString("s2"))
	v := mustSP("V", sel, []string{"K", "B"})
	db := storage.Open(sch)
	if err := db.Load("R",
		tuple.MustNew(rel, value.NewInt(1), value.NewString("b1"), value.NewString("s1")),
		tuple.MustNew(rel, value.NewInt(2), value.NewString("b2"), value.NewString("s3")),
	); err != nil {
		panic(err)
	}
	return sch, rel, v, db
}

func classSet(m map[string]bool) string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	if len(names) == 0 {
		return "{}"
	}
	// Small fixed-order render.
	order := []string{"R-1", "R-2", "R-3", "R-4", "R-5"}
	out := ""
	for _, o := range order {
		if m[o] {
			if out != "" {
				out += ","
			}
			out += o
		}
	}
	if out == "" {
		for _, n := range names {
			if out != "" {
				out += ","
			}
			out += n
		}
	}
	return "{" + out + "}"
}
