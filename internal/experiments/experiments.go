// Package experiments implements the reproduction's per-exhibit
// experiment harness: one experiment per table, figure and theorem of
// the paper (see DESIGN.md §3). Each experiment builds its workload,
// runs the system, and reports a table; cmd/experiments prints them
// all, and the package's tests assert the per-experiment pass
// conditions.
package experiments

import (
	"fmt"
	"sort"

	"viewupdate/internal/report"
)

// An Experiment is one reproducible exhibit.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (E1..E13).
	ID string
	// Title describes the exhibit.
	Title string
	// Exhibit names the paper element being reproduced.
	Exhibit string
	// Run executes the experiment and returns its table. The boolean
	// reports whether the paper's claim held.
	Run func() (*report.Table, bool, error)
}

// All returns every experiment in ID order.
func All() []Experiment {
	es := []Experiment{
		E1Commutativity(),
		E2Personnel(),
		E3ReplacementChart(),
		E4ReferenceConnection(),
		E5InsertCompleteness(),
		E6DeleteCompleteness(),
		E7ReplaceCompleteness(),
		E8CriteriaIndependence(),
		E9SPJUniqueness(),
		E10SPJNF(),
		E11Composition(),
		E12Scaling(),
		E13EnumVsBrute(),
		E14Simplification(),
		E15DAGExtension(),
	}
	sort.Slice(es, func(i, j int) bool { return idNum(es[i].ID) < idNum(es[j].ID) })
	return es
}

func idNum(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 0
	}
	return n
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
