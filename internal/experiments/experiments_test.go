package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every experiment end-to-end and asserts
// its pass condition — the executable form of EXPERIMENTS.md.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	es := All()
	if len(es) != 15 {
		t.Fatalf("want 15 experiments, got %d", len(es))
	}
	seen := map[string]bool{}
	for _, e := range es {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if seen[e.ID] {
				t.Fatalf("duplicate experiment id %s", e.ID)
			}
			seen[e.ID] = true
			if e.Title == "" || e.Exhibit == "" {
				t.Fatal("experiment missing metadata")
			}
			tb, ok, err := e.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !ok {
				t.Fatalf("pass condition failed:\n%s", tb)
			}
			if tb == nil || len(tb.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
		})
	}
}

// TestExperimentOrdering checks All() is sorted by id.
func TestExperimentOrdering(t *testing.T) {
	es := All()
	for i := 1; i < len(es); i++ {
		if idNum(es[i-1].ID) >= idNum(es[i].ID) {
			t.Fatalf("experiments out of order: %s before %s", es[i-1].ID, es[i].ID)
		}
	}
	if idNum("bogus") != 0 {
		t.Fatal("idNum should be 0 for malformed ids")
	}
}

// TestE3TableShape pins the chart's three conditions.
func TestE3TableShape(t *testing.T) {
	tb, ok, err := E3ReplacementChart().Run()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("E3 failed:\n%s", tb)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("E3 should have 3 condition rows, got %d", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"{R-1}", "{R-2,R-4}", "{R-3,R-5}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E3 missing %s:\n%s", want, out)
		}
	}
}

// TestE8WitnessSet pins that all five criteria have witnesses.
func TestE8WitnessSet(t *testing.T) {
	ws := independenceWitnesses()
	if len(ws) != 5 {
		t.Fatalf("want 5 witnesses, got %d", len(ws))
	}
	got := map[int]bool{}
	for _, w := range ws {
		got[w.criterion] = true
	}
	for i := 1; i <= 5; i++ {
		if !got[i] {
			t.Fatalf("criterion %d has no witness", i)
		}
	}
}
