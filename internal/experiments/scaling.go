package experiments

import (
	"fmt"
	"time"

	"viewupdate/internal/bruteforce"
	"viewupdate/internal/core"
	"viewupdate/internal/report"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/workload"
)

// E12Scaling measures translation latency and candidate counts as the
// database, the hidden-attribute choice space, and the join-tree depth
// grow. The paper's algorithms look at a constant number of tuples per
// request (key lookups), so latency should stay flat in database size
// and the candidate count should grow with the choice space, not the
// data.
func E12Scaling() Experiment {
	return Experiment{
		ID:      "E12",
		Title:   "Scaling of translation",
		Exhibit: "algorithm statements (implied complexity)",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E12 — translation latency and candidate counts",
				"axis", "point", "candidates", "translate_us")
			allOK := true

			// Axis 1: database size (insert translation; constant work).
			var latencies []float64
			for _, size := range []int{100, 1000, 10000, 100000} {
				w, err := workload.NewSP(workload.SPConfig{
					Keys: int64(size * 2), Attrs: 3, DomainSize: 4,
					SelectingAttrs: 1, HiddenAttrs: 1, Tuples: size, Seed: 5,
				})
				if err != nil {
					return nil, false, err
				}
				r, ok := w.NextRequest(update.Insert)
				if !ok {
					return nil, false, fmt.Errorf("E12: no insert request")
				}
				// Take the best of several batches so scheduler noise
				// and GC pauses do not distort the flatness check.
				const batches, iters = 5, 100
				best := 0.0
				var n int
				for b := 0; b < batches; b++ {
					start := time.Now()
					for i := 0; i < iters; i++ {
						cands, err := core.Enumerate(w.DB, w.View, r)
						if err != nil {
							return nil, false, err
						}
						n = len(cands)
					}
					us := float64(time.Since(start).Microseconds()) / iters
					if b == 0 || us < best {
						best = us
					}
				}
				latencies = append(latencies, best)
				t.AddRow("db size", size, n, best)
			}
			// Flatness: the largest size may cost at most 20x the
			// smallest (lookups are O(1); slack for cache effects).
			if latencies[len(latencies)-1] > 20*latencies[0]+50 {
				allOK = false
			}

			// Axis 2: hidden choice space (extend-insert candidates grow
			// multiplicatively with hidden selecting values).
			for _, hidden := range []int{0, 1, 2, 3} {
				w, err := workload.NewSP(workload.SPConfig{
					Keys: 2000, Attrs: 4, DomainSize: 4,
					SelectingAttrs: 0, HiddenAttrs: hidden, Tuples: 500, Seed: 6,
				})
				if err != nil {
					return nil, false, err
				}
				r, ok := w.NextRequest(update.Insert)
				if !ok {
					return nil, false, fmt.Errorf("E12: no insert request")
				}
				start := time.Now()
				cands, err := core.Enumerate(w.DB, w.View, r)
				if err != nil {
					return nil, false, err
				}
				us := float64(time.Since(start).Microseconds())
				want := 1
				for i := 0; i < hidden; i++ {
					want *= 4 // non-selecting hidden attr: whole domain
				}
				if len(cands) != want {
					allOK = false
				}
				t.AddRow("hidden attrs", hidden, len(cands), us)
			}

			// Axis 3: join tree depth (chain).
			for _, depth := range []int{0, 1, 2, 3, 4} {
				w, err := workload.NewTree(workload.TreeConfig{
					Depth: depth, Fanout: 1, Keys: 100, TuplesPerRelation: 20, Seed: 9,
				})
				if err != nil {
					return nil, false, err
				}
				r, ok := w.InsertRequestForFreshRoot()
				if !ok {
					return nil, false, fmt.Errorf("E12: no tree insert")
				}
				start := time.Now()
				cands, err := core.Enumerate(w.DB, w.View, r)
				if err != nil {
					return nil, false, err
				}
				us := float64(time.Since(start).Microseconds())
				if len(cands) != 1 {
					allOK = false
				}
				t.AddRow("tree depth", depth, len(cands), us)
			}
			t.Note = "latency flat in db size (key lookups); candidates grow with the hidden choice space only"
			return t, allOK, nil
		},
	}
}

// E13EnumVsBrute contrasts the algorithm classes with naive exhaustive
// search: the generators are polynomial in the choice space while the
// oracle's examined-translation count explodes with the domain size.
func E13EnumVsBrute() Experiment {
	return Experiment{
		ID:      "E13",
		Title:   "Algorithmic enumeration vs exhaustive search",
		Exhibit: "motivation for the algorithm classes",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E13 — generator vs oracle cost on one insert request",
				"domain", "universe", "examined", "oracle_ms", "generated", "generate_us", "agree")
			allOK := true
			for _, domSize := range []int{2, 3, 4} {
				sch, rel, v, db, u := e13Instance(domSize)
				_ = sch
				_ = rel
				r := core.InsertRequest(u)

				startO := time.Now()
				oracle, err := bruteforce.Search(db, v, r, bruteforce.Config{
					MaxOps: 2, Exact: true, MaxUniverse: 100000,
				})
				if err != nil {
					return nil, false, err
				}
				oracleMS := float64(time.Since(startO).Microseconds()) / 1000

				startG := time.Now()
				gen, err := core.Enumerate(db, v, r)
				if err != nil {
					return nil, false, err
				}
				genUS := float64(time.Since(startG).Microseconds())

				onlyO, onlyG := bruteforce.Diff(oracle, gen)
				agree := len(onlyO) == 0 && len(onlyG) == 0
				allOK = allOK && agree
				t.AddRow(domSize, oracle.Universe, oracle.Examined, oracleMS,
					len(gen), genUS, passFail(agree))
			}
			t.Note = "examined grows ~quadratically in the op universe (itself ~domain^attrs); the generators touch only the choice space"
			return t, allOK, nil
		},
	}
}

// e13Instance builds R(K*, A, S) with |dom(A)| = |dom(S)| = domSize,
// view selecting the lower half of S and hiding it, plus a hidden
// conflicting tuple so I-2 fires.
func e13Instance(domSize int) (*schema.Database, *schema.Relation, *viewSP, *storage.Database, tuple.T) {
	kDom, err := schema.IntRangeDomain("K", 1, 3)
	if err != nil {
		panic(err)
	}
	mkDom := func(name string) *schema.Domain {
		vals := make([]value.Value, domSize)
		for i := range vals {
			vals[i] = value.NewString(fmt.Sprintf("%s%d", name, i))
		}
		d, err := schema.NewDomain(name, vals...)
		if err != nil {
			panic(err)
		}
		return d
	}
	aDom := mkDom("a")
	sDom := mkDom("s")
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "A", Domain: aDom},
		{Name: "S", Domain: sDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		panic(err)
	}
	half := sDom.Values()[:(domSize+1)/2]
	sel := newSelection(rel, "S", half...)
	v := mustSP("V", sel, []string{"K", "A"})
	db := storage.Open(sch)
	if err := db.Load("R",
		tuple.MustNew(rel, value.NewInt(1), aDom.At(0), half[0]),
	); err != nil {
		panic(err)
	}
	u := tuple.MustNew(v.Schema(), value.NewInt(2), aDom.At(0))
	return sch, rel, v, db, u
}
