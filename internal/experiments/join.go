package experiments

import (
	"fmt"

	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/report"
	"viewupdate/internal/update"
	"viewupdate/internal/workload"
)

// E4ReferenceConnection reproduces the §5-1 figure: the AB/CXD
// reference connection and the SPJ algorithms over it.
func E4ReferenceConnection() Experiment {
	return Experiment{
		ID:      "E4",
		Title:   "Reference connection AB ⋈ CXD",
		Exhibit: "§5-1 figure",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E4 — SPJ algorithms on the paper's figure",
				"operation", "class", "ops", "view_rows_after", "outcome")
			ok := true

			// Materialization of the figure's instance.
			f := fixtures.NewABCXD()
			db := f.PaperInstance()
			rows := f.View.Materialize(db)
			ok = ok && rows.Len() == 2
			t.AddRow("materialize", "—", "—", rows.Len(), "X=A join over reference connection")

			// SPJ-D: delete touches only the root.
			row := f.ViewTuple("c1", "a", 3, 1)
			cands, err := core.EnumerateJoinDelete(db, f.View, row)
			if err != nil {
				return nil, false, err
			}
			rootOnly := true
			for _, op := range cands[0].Translation.Ops() {
				if op.RelationName() != "CXD" {
					rootOnly = false
				}
			}
			ok = ok && rootOnly && len(cands) == 1
			if err := db.Apply(cands[0].Translation); err != nil {
				return nil, false, err
			}
			t.AddRow("SPJ-D delete c1", cands[0].Class, cands[0].Translation.Len(),
				f.View.Materialize(db).Len(), fmt.Sprintf("root-only: %v", rootOnly))

			// SPJ-I: insert referencing a new parent inserts both.
			u := f.ViewTuple("c3", "a1", 5, 7)
			cands, err = core.EnumerateJoinInsert(db, f.View, u)
			if err != nil {
				return nil, false, err
			}
			if err := db.Apply(cands[0].Translation); err != nil {
				return nil, false, err
			}
			ok = ok && f.View.Materialize(db).Contains(u)
			t.AddRow("SPJ-I insert c3", cands[0].Class, cands[0].Translation.Len(),
				f.View.Materialize(db).Len(), "root + referenced parent inserted")

			// SPJ-R: re-point c3 at the other parent.
			newRow := f.ViewTuple("c3", "a2", 5, 2)
			cands, err = core.EnumerateJoinReplace(db, f.View, u, newRow)
			if err != nil {
				return nil, false, err
			}
			if err := db.Apply(cands[0].Translation); err != nil {
				return nil, false, err
			}
			ok = ok && f.View.Materialize(db).Contains(newRow)
			t.AddRow("SPJ-R repoint c3", cands[0].Class, cands[0].Translation.Len(),
				f.View.Materialize(db).Len(), "root replaced; old parent kept")

			t.Note = "reference connection = extension join (X over AB's key A) + inclusion dependency CXD[X] ⊆ AB[A]"
			return t, ok, nil
		},
	}
}

// E15DAGExtension exercises the §5-1 footnote extension: a rooted-DAG
// query graph (diamond) with convergence semantics for the shared node
// and the conservative SPJ-R state join.
func E15DAGExtension() Experiment {
	return Experiment{
		ID:      "E15",
		Title:   "Rooted-DAG query graphs (footnote extension)",
		Exhibit: "§5-1 footnote",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E15 — diamond ROOT→{A,B}→C with a shared node",
				"operation", "ops", "view_rows_after", "outcome")
			d := fixtures.NewDiamond()
			db := d.ConvergentInstance()
			ok := true

			rows := d.View.Materialize(db)
			ok = ok && rows.Len() == 1
			t.AddRow("materialize", "—", rows.Len(), "divergent row hidden (convergence)")

			// SPJ-I inserts the shared node once.
			u := d.ViewTuple(3, 7, 8, 9, 2)
			cands, err := core.EnumerateJoinInsert(db, d.View, u)
			if err != nil {
				return nil, false, err
			}
			cIns := 0
			for _, op := range cands[0].Translation.Ops() {
				if op.Kind == update.Insert && op.RelationName() == "C" {
					cIns++
				}
			}
			ok = ok && cIns == 1 && len(cands[0].Translation.Inserts()) == 4
			if err := db.Apply(cands[0].Translation); err != nil {
				return nil, false, err
			}
			t.AddRow("SPJ-I insert root 3", cands[0].Translation.Len(),
				d.View.Materialize(db).Len(), fmt.Sprintf("shared C inserted %d time(s)", cIns))

			// SPJ-R replaces the shared node once when both arms agree.
			old := d.ViewTuple(1, 1, 2, 5, 0)
			new := d.ViewTuple(1, 1, 2, 5, 3)
			cands, err = core.EnumerateJoinReplace(db, d.View, old, new)
			if err != nil {
				return nil, false, err
			}
			tr := cands[0].Translation
			ok = ok && tr.Len() == 1 && len(tr.Replacements()) == 1
			eff, err := core.SideEffects(db, d.View, core.ReplaceRequest(old, new), tr)
			if err != nil {
				return nil, false, err
			}
			if err := db.Apply(tr); err != nil {
				return nil, false, err
			}
			t.AddRow("SPJ-R shared C payload", tr.Len(), d.View.Materialize(db).Len(), eff.String())

			t.Note = "the footnote's relaxation: updates through a shared node may side-effect every row whose paths cross it"
			return t, ok, nil
		},
	}
}

// E9SPJUniqueness validates the uniqueness theorems of §5-2: with
// identity SP views, SPJ-D/I/R each admit exactly one translation
// satisfying the criteria, across tree shapes.
func E9SPJUniqueness() Experiment {
	return Experiment{
		ID:      "E9",
		Title:   "Uniqueness of SPJ-D/I/R on identity trees",
		Exhibit: "§5-2 theorems",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E9 — candidate counts over random reference trees",
				"depth", "fanout", "relations", "delete", "insert", "replace", "unique")
			allOK := true
			for _, shape := range []struct{ depth, fanout int }{
				{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1},
			} {
				w, err := workload.NewTree(workload.TreeConfig{
					Depth: shape.depth, Fanout: shape.fanout,
					Keys: 60, TuplesPerRelation: 12, Seed: int64(31 + shape.depth*7 + shape.fanout),
				})
				if err != nil {
					return nil, false, err
				}
				counts := map[update.Kind]int{}
				// Delete a random row.
				row, ok := w.RandomRow()
				if !ok {
					return nil, false, fmt.Errorf("E9: empty view")
				}
				cands, err := core.EnumerateJoinDelete(w.DB, w.View, row)
				if err != nil {
					return nil, false, err
				}
				counts[update.Delete] = len(cands)
				// Insert under a fresh root key.
				if r, ok := w.InsertRequestForFreshRoot(); ok {
					cands, err := core.Enumerate(w.DB, w.View, r)
					if err != nil {
						return nil, false, err
					}
					counts[update.Insert] = len(cands)
				}
				// Replace: change the root payload of a row.
				row2, _ := w.RandomRow()
				pAttr := fmt.Sprintf("P%d", 0)
				cur := row2.MustGet(pAttr)
				var newRow = row2
				for _, v := range w.Relations[0].Attributes()[1].Domain.Values() {
					if v != cur {
						newRow = row2.MustWith(pAttr, v)
						break
					}
				}
				cands, err = core.EnumerateJoinReplace(w.DB, w.View, row2, newRow)
				if err != nil {
					return nil, false, err
				}
				counts[update.Replace] = len(cands)

				unique := counts[update.Delete] == 1 && counts[update.Insert] == 1 && counts[update.Replace] == 1
				allOK = allOK && unique
				t.AddRow(shape.depth, shape.fanout, len(w.Relations),
					counts[update.Delete], counts[update.Insert], counts[update.Replace],
					passFail(unique))
			}
			t.Note = "identity SP views leave no arbitrary choices: each SPJ algorithm is 'the only algorithm'"
			return t, allOK, nil
		},
	}
}
