package experiments

import (
	"fmt"

	"viewupdate/internal/algebra"
	"viewupdate/internal/bruteforce"
	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/report"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// oracleInstance builds the tiny instance used by the completeness
// experiments: R(K*, A, S, H), view selects A∈{x} ∧ S∈{s1,s2} and
// projects K, A; state holds one visible tuple (key 1) and one hidden
// tuple (key 2).
type oracleInstance struct {
	sch *schema.Database
	rel *schema.Relation
	v   *viewSP
	db  *storage.Database
}

func newOracleInstance() *oracleInstance {
	kDom, err := schema.IntRangeDomain("K", 1, 3)
	if err != nil {
		panic(err)
	}
	aDom, err := schema.StringDomain("A", "x", "y")
	if err != nil {
		panic(err)
	}
	sDom, err := schema.StringDomain("S", "s1", "s2", "s3")
	if err != nil {
		panic(err)
	}
	hDom, err := schema.StringDomain("H", "h1", "h2")
	if err != nil {
		panic(err)
	}
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "A", Domain: aDom},
		{Name: "S", Domain: sDom},
		{Name: "H", Domain: hDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		panic(err)
	}
	sel := algebra.NewSelection(rel).
		MustAddTerm("A", value.NewString("x")).
		MustAddTerm("S", value.NewString("s1"), value.NewString("s2"))
	v := mustSP("V", sel, []string{"K", "A"})
	db := storage.Open(sch)
	if err := db.Load("R",
		tuple.MustNew(rel, value.NewInt(1), value.NewString("x"), value.NewString("s1"), value.NewString("h1")),
		tuple.MustNew(rel, value.NewInt(2), value.NewString("y"), value.NewString("s3"), value.NewString("h2")),
	); err != nil {
		panic(err)
	}
	return &oracleInstance{sch: sch, rel: rel, v: v, db: db}
}

func (o *oracleInstance) viewTuple(k int64, a string) tuple.T {
	return tuple.MustNew(o.v.Schema(), value.NewInt(k), value.NewString(a))
}

// completenessExperiment runs oracle-vs-generator agreement for a set
// of requests.
func completenessExperiment(id, title, exhibit string, reqs func(o *oracleInstance) []core.Request) Experiment {
	return Experiment{
		ID:      id,
		Title:   title,
		Exhibit: exhibit,
		Run: func() (*report.Table, bool, error) {
			t := report.New(fmt.Sprintf("%s — exhaustive oracle vs algorithm classes", id),
				"request", "universe", "examined", "oracle", "generated", "agree")
			o := newOracleInstance()
			allOK := true
			for _, r := range reqs(o) {
				oracle, err := bruteforce.Search(o.db, o.v, r, bruteforce.Config{MaxOps: 2, Exact: true})
				if err != nil {
					return nil, false, err
				}
				gen, err := core.Enumerate(o.db, o.v, r)
				if err != nil {
					return nil, false, err
				}
				onlyO, onlyG := bruteforce.Diff(oracle, gen)
				agree := len(onlyO) == 0 && len(onlyG) == 0
				allOK = allOK && agree
				t.AddRow(r.String(), oracle.Universe, oracle.Examined,
					len(oracle.Translations), len(gen), passFail(agree))
			}
			t.Note = "agree = generated set equals the set of all valid translations satisfying the 5 criteria"
			return t, allOK, nil
		},
	}
}

// E5InsertCompleteness validates the I-1/I-2 completeness theorem.
func E5InsertCompleteness() Experiment {
	return completenessExperiment("E5",
		"Insertion completeness (I-1, I-2)",
		"§4-3 theorem",
		func(o *oracleInstance) []core.Request {
			return []core.Request{
				core.InsertRequest(o.viewTuple(3, "x")), // fresh key: I-1
				core.InsertRequest(o.viewTuple(2, "x")), // hidden key: I-2
			}
		})
}

// E6DeleteCompleteness validates the D-1/D-2 completeness theorem.
func E6DeleteCompleteness() Experiment {
	return completenessExperiment("E6",
		"Deletion completeness (D-1, D-2)",
		"§4-4 theorem",
		func(o *oracleInstance) []core.Request {
			return []core.Request{core.DeleteRequest(o.viewTuple(1, "x"))}
		})
}

// E7ReplaceCompleteness validates the R-1…R-5 completeness theorem.
func E7ReplaceCompleteness() Experiment {
	return completenessExperiment("E7",
		"Replacement completeness (R-1 … R-5)",
		"§4-5 theorem",
		func(o *oracleInstance) []core.Request {
			return []core.Request{
				core.ReplaceRequest(o.viewTuple(1, "x"), o.viewTuple(3, "x")), // key change, fresh
				core.ReplaceRequest(o.viewTuple(1, "x"), o.viewTuple(2, "x")), // key change, hidden conflict
			}
		})
}

// E8CriteriaIndependence validates the independence theorem: for each
// criterion there is a translation violating it and only it.
func E8CriteriaIndependence() Experiment {
	return Experiment{
		ID:      "E8",
		Title:   "Independence of the five criteria",
		Exhibit: "§3 theorem",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E8 — witnesses violating exactly one criterion",
				"criterion", "witness", "violated", "pass")
			allOK := true
			for _, w := range independenceWitnesses() {
				viols := core.CheckCriteria(w.db, w.view, w.req, w.tr, core.CheckOptions{})
				got := map[int]bool{}
				for _, v := range viols {
					got[v.Criterion] = true
				}
				ok := len(got) == 1 && got[w.criterion]
				allOK = allOK && ok
				t.AddRow(w.criterion, w.desc, fmt.Sprintf("%v", keysOf(got)), passFail(ok))
			}
			t.Note = "each witness satisfies the other four criteria, so no criterion is implied by the rest"
			return t, allOK, nil
		},
	}
}

type witness struct {
	criterion int
	desc      string
	db        *storage.Database
	view      view.View
	req       core.Request
	tr        *update.Translation
}

func keysOf(m map[int]bool) []int {
	var out []int
	for i := 1; i <= 5; i++ {
		if m[i] {
			out = append(out, i)
		}
	}
	return out
}

// independenceWitnesses constructs the five witnesses (mirroring the
// core package's independence test).
func independenceWitnesses() []witness {
	kDom, err := schema.IntRangeDomain("K", 1, 3)
	if err != nil {
		panic(err)
	}
	aDom, err := schema.StringDomain("A", "a", "b", "c")
	if err != nil {
		panic(err)
	}
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "A", Domain: aDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		panic(err)
	}
	tup := func(k int64, a string) tuple.T {
		return tuple.MustNew(rel, value.NewInt(k), value.NewString(a))
	}
	var ws []witness

	{ // Criterion 1: key-changing replacement to an unmentioned key.
		sel := newSelection(rel, "K", value.NewInt(1), value.NewInt(2))
		v := mustSP("V", sel, rel.AttributeNames())
		db := storage.Open(sch)
		if err := db.Load("R", tup(1, "a")); err != nil {
			panic(err)
		}
		u := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
		ws = append(ws, witness{1, "delete translated by moving the tuple to a hidden key",
			db, v, core.DeleteRequest(u),
			update.NewTranslation(update.NewReplace(tup(1, "a"), tup(3, "a")))})
	}
	{ // Criterion 2: replacement chain.
		v := mustSP("V", algebra.NewSelection(rel), rel.AttributeNames())
		db := storage.Open(sch)
		if err := db.Load("R", tup(1, "a")); err != nil {
			panic(err)
		}
		u1 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
		u2 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("c"))
		ws = append(ws, witness{2, "two-step replacement chain a->b->c",
			db, v, core.ReplaceRequest(u1, u2),
			update.NewTranslation(
				update.NewReplace(tup(1, "a"), tup(1, "b")),
				update.NewReplace(tup(1, "b"), tup(1, "c")))})
	}
	{ // Criterion 3: join-view delete plus an unnecessary parent rewrite.
		fx := fixtures.NewABCXD()
		db := storage.Open(fx.Schema)
		if err := db.LoadAll(fx.ABTuple("a", 1), fx.CXDTuple("c1", "a", 3)); err != nil {
			panic(err)
		}
		row := fx.ViewTuple("c1", "a", 3, 1)
		ws = append(ws, witness{3, "root delete plus gratuitous parent rewrite",
			db, fx.View, core.DeleteRequest(row),
			update.NewTranslation(
				update.NewDelete(fx.CXDTuple("c1", "a", 3)),
				update.NewReplace(fx.ABTuple("a", 1), fx.ABTuple("a", 2)))})
	}
	{ // Criterion 4: replacement changing more attributes than needed.
		bDom, err := schema.StringDomain("B4", "x", "y")
		if err != nil {
			panic(err)
		}
		rel4 := schema.MustRelation("R4", []schema.Attribute{
			{Name: "K", Domain: kDom},
			{Name: "A", Domain: aDom},
			{Name: "B", Domain: bDom},
		}, []string{"K"})
		sch4 := schema.NewDatabase()
		if err := sch4.AddRelation(rel4); err != nil {
			panic(err)
		}
		v := mustSP("V4", algebra.NewSelection(rel4), rel4.AttributeNames())
		db := storage.Open(sch4)
		base := tuple.MustNew(rel4, value.NewInt(1), value.NewString("a"), value.NewString("x"))
		if err := db.Load("R4", base); err != nil {
			panic(err)
		}
		u1 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"), value.NewString("x"))
		u2 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("c"), value.NewString("x"))
		ws = append(ws, witness{4, "replacement changing a gratuitous extra attribute",
			db, v, core.ReplaceRequest(u1, u2),
			update.NewTranslation(update.NewReplace(base,
				tuple.MustNew(rel4, value.NewInt(1), value.NewString("c"), value.NewString("y"))))})
	}
	{ // Criterion 5: delete-insert pair instead of a replacement.
		v := mustSP("V", algebra.NewSelection(rel), rel.AttributeNames())
		db := storage.Open(sch)
		if err := db.Load("R", tup(1, "a")); err != nil {
			panic(err)
		}
		u1 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
		u2 := tuple.MustNew(v.Schema(), value.NewInt(2), value.NewString("a"))
		ws = append(ws, witness{5, "delete + insert on one relation instead of a replacement",
			db, v, core.ReplaceRequest(u1, u2),
			update.NewTranslation(update.NewDelete(tup(1, "a")), update.NewInsert(tup(2, "a")))})
	}
	return ws
}

// E14Simplification validates the §3 theorem "for every valid
// translation, there is (at least one) translation at least as simple
// that satisfies the 5 criteria". The reproduction found the literal
// subset-order reading of "at least as simple" admits counterexamples;
// the theorem holds under the order combining subset dominance with the
// paper's own equivalence moves and criterion-4 weakening (see
// EXPERIMENTS.md).
func E14Simplification() Experiment {
	return Experiment{
		ID:      "E14",
		Title:   "Simplification theorem",
		Exhibit: "§3 theorem",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E14 — every valid translation is dominated by an accepted one",
				"request", "valid", "strict_failures", "combined_failures", "pass")
			o := newOracleInstance()
			reqs := []core.Request{
				core.InsertRequest(o.viewTuple(3, "x")),
				core.InsertRequest(o.viewTuple(2, "x")),
				core.DeleteRequest(o.viewTuple(1, "x")),
				core.ReplaceRequest(o.viewTuple(1, "x"), o.viewTuple(3, "x")),
				core.ReplaceRequest(o.viewTuple(1, "x"), o.viewTuple(2, "x")),
			}
			allOK := true
			for _, r := range reqs {
				res, err := bruteforce.CheckSimplification(o.db, o.v, r, bruteforce.Config{MaxOps: 2, Exact: true})
				if err != nil {
					return nil, false, err
				}
				ok := res.ChainFailures == 0
				allOK = allOK && ok
				t.AddRow(r.String(), res.Checked, res.StrictFailures, res.ChainFailures, passFail(ok))
			}
			t.Note = "strict = subset order only (counterexamples expected); combined = subsets + equivalence moves + criterion-4 weakening"
			return t, allOK, nil
		},
	}
}

// E10SPJNF validates the SPJNF conversion theorem on a family of
// interleaved expressions over the paper's figure.
func E10SPJNF() Experiment {
	return Experiment{
		ID:      "E10",
		Title:   "SPJNF conversion theorem",
		Exhibit: "§5 theorem",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E10 — original vs SPJNF evaluation",
				"expression", "rows_orig", "rows_spjnf", "equal")
			src := figExprSource()
			allOK := true
			for _, c := range spjnfCases(src) {
				want, err := c.expr.Eval(src)
				if err != nil {
					return nil, false, err
				}
				n, err := algebra.Normalize(c.expr, src)
				if err != nil {
					return nil, false, err
				}
				got, err := n.Expr().Eval(src)
				if err != nil {
					return nil, false, err
				}
				eq := want.Equal(got)
				allOK = allOK && eq
				t.AddRow(c.name, want.Len(), got.Len(), passFail(eq))
			}
			t.Note = "every in-class SPJ expression evaluates identically after normalization to select-project-join order"
			return t, allOK, nil
		},
	}
}

type spjnfCase struct {
	name string
	expr algebra.Expr
}

// figExprSource loads the paper's figure as an algebra.Source.
func figExprSource() *storage.Database {
	fx := fixtures.NewABCXD()
	return fx.PaperInstance()
}

func spjnfCases(src algebra.Source) []spjnfCase {
	sel := func(e algebra.Expr, a string, vals ...value.Value) algebra.Expr {
		return algebra.Select{Input: e, Attr: a, Vals: vals}
	}
	join := algebra.Join{
		Left: algebra.Rel{Name: "CXD"}, Right: algebra.Rel{Name: "AB"},
		LeftAttrs: []string{"X"}, RightAttrs: []string{"A"},
	}
	return []spjnfCase{
		{"plain join", join},
		{"selection above join", sel(join, "B", value.NewInt(1))},
		{"selection below join",
			algebra.Join{
				Left:      sel(algebra.Rel{Name: "CXD"}, "D", value.NewInt(3), value.NewInt(4)),
				Right:     algebra.Rel{Name: "AB"},
				LeftAttrs: []string{"X"}, RightAttrs: []string{"A"},
			}},
		{"projection then selection",
			sel(algebra.Project{Input: join, Attrs: []string{"C", "X", "A", "B"}}, "B", value.NewInt(1))},
		{"mid-stream projection",
			algebra.Join{
				Left:      algebra.Project{Input: algebra.Rel{Name: "CXD"}, Attrs: []string{"C", "X"}},
				Right:     algebra.Rel{Name: "AB"},
				LeftAttrs: []string{"X"}, RightAttrs: []string{"A"},
			}},
	}
}

// E11Composition validates the composition lemma: unions of per-view
// translations on disjoint relations apply atomically and realize both
// view changes exactly.
func E11Composition() Experiment {
	return Experiment{
		ID:      "E11",
		Title:   "Composition of disjoint-view translations",
		Exhibit: "§5-3 lemma",
		Run: func() (*report.Table, bool, error) {
			t := report.New("E11 — unions of translations on disjoint relations",
				"pairing", "pairs", "exact_both", "criteria_ok")
			fx := fixtures.NewABCXD()
			db := storage.Open(fx.Schema)
			if err := db.LoadAll(
				fx.ABTuple("a", 1), fx.ABTuple("a2", 2), fx.CXDTuple("c1", "a", 3),
			); err != nil {
				return nil, false, err
			}
			v1 := identityView("V1", fx.CXD)
			v2 := identityView("V2", fx.AB)
			u1 := tuple.MustNew(v1.Schema(), value.NewString("c1"), value.NewString("a"), value.NewInt(3))
			r1 := core.DeleteRequest(u1)
			old2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(2))
			new2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(1))
			r2 := core.ReplaceRequest(old2, new2)
			c1s, err := core.EnumerateSP(db, v1, r1)
			if err != nil {
				return nil, false, err
			}
			c2s, err := core.EnumerateSP(db, v2, r2)
			if err != nil {
				return nil, false, err
			}
			pairs, exactBoth, critOK := 0, 0, 0
			for _, a := range c1s {
				for _, b := range c2s {
					pairs++
					union := a.Translation.Clone()
					union.AddAll(b.Translation)
					clone := db.Clone()
					if err := clone.Apply(union); err != nil {
						continue
					}
					w1, err := r1.ApplyToViewSet(v1.Materialize(db))
					if err != nil {
						return nil, false, err
					}
					w2, err := r2.ApplyToViewSet(v2.Materialize(db))
					if err != nil {
						return nil, false, err
					}
					if v1.Materialize(clone).Equal(w1) && v2.Materialize(clone).Equal(w2) {
						exactBoth++
					}
					viol2 := core.CheckCriteria(db, v1, r1, union, core.CheckOptions{
						Valid: func(*update.Translation) bool { return false },
					})
					// Only the structural criteria (1 never holds for a
					// union against a single-view request) — count 2/5.
					ok := true
					for _, v := range viol2 {
						if v.Criterion == 2 || v.Criterion == 5 {
							ok = false
						}
					}
					if ok {
						critOK++
					}
				}
			}
			ok := pairs > 0 && exactBoth == pairs && critOK == pairs
			t.AddRow("delete(V1) x replace(V2)", pairs, exactBoth, critOK)
			t.Note = "every union applies atomically, changes both views exactly, and keeps criteria 2 and 5 collectively"
			return t, ok, nil
		},
	}
}

func identityView(name string, rel *schema.Relation) *viewSP {
	return mustSP(name, algebra.NewSelection(rel), rel.AttributeNames())
}
