package core

import (
	"testing"

	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
)

// TestPaperExampleSusan reproduces §4-1: Susan (ViewP, New York) deletes
// employee #17; the reasonable translation deletes the record (D-1),
// and the questionable alternative "move employee #17 to California"
// (here: San Francisco) is D-2 flipping Location.
func TestPaperExampleSusan(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	emp17 := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)

	cands, err := EnumerateSPDelete(db, f.ViewP, emp17)
	if err != nil {
		t.Fatalf("EnumerateSPDelete: %v", err)
	}
	// D-1 (delete) plus D-2 for each (non-key selecting attr, excluding
	// value): Location has one excluding value (San Francisco) => 2.
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d:\n%s", len(cands), DescribeCandidates(cands))
	}
	byClass := map[string]Candidate{}
	for _, c := range cands {
		byClass[c.Class] = c
	}
	d1, ok := byClass["D-1"]
	if !ok {
		t.Fatalf("no D-1 candidate in %s", DescribeCandidates(cands))
	}
	if got := d1.Translation.Ops(); len(got) != 1 || got[0].Kind != update.Delete {
		t.Fatalf("D-1 should be a single deletion, got %s", d1.Translation)
	}
	d2, ok := byClass["D-2"]
	if !ok {
		t.Fatalf("no D-2 candidate in %s", DescribeCandidates(cands))
	}
	repl := d2.Translation.Replacements()
	if len(repl) != 1 {
		t.Fatalf("D-2 should be a single replacement, got %s", d2.Translation)
	}
	if got := repl[0].New.MustGet("Location"); got != value.NewString("San Francisco") {
		t.Fatalf("D-2 should move the employee to San Francisco, got %s", got)
	}

	// Susan's policy prefers real deletion.
	susan := NewTranslator(f.ViewP, PreferClasses{Label: "susan", Order: []string{"D-1"}})
	c, err := susan.Apply(db, DeleteRequest(emp17))
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if c.Class != "D-1" {
		t.Fatalf("Susan's policy chose %s", c.Class)
	}
	if db.Contains(f.Tuple(17, "Susan", "New York", true)) {
		t.Fatal("employee #17 should be gone from the database")
	}
	// "If the employee was a member of the baseball team, he has been
	// removed from that also."
	if f.ViewB.Materialize(db).Contains(f.ViewTuple(f.ViewB, 17, "Susan", "New York", true)) {
		t.Fatal("employee #17 should be gone from the baseball view too")
	}
}

// TestPaperExampleFrank reproduces §4-1: Frank (ViewB, Baseball=Yes)
// deletes employee #14; "a reasonable translation ... is to replace the
// Baseball attribute ... with a No" (D-2), not to delete the employee.
func TestPaperExampleFrank(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	emp14 := f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)

	frank := NewTranslator(f.ViewB, PreferClasses{Label: "frank", Order: []string{"D-2"}})
	c, err := frank.Apply(db, DeleteRequest(emp14))
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if c.Class != "D-2" {
		t.Fatalf("Frank's policy chose %s", c.Class)
	}
	want := f.Tuple(14, "Frank", "San Francisco", false)
	if !db.Contains(want) {
		t.Fatalf("employee #14 should remain with Baseball=false; DB state: %v", db.Tuples("EMP"))
	}
	if f.ViewB.Materialize(db).Contains(emp14) {
		t.Fatal("employee #14 should be out of the baseball view")
	}
}

// TestInsertDichotomy checks the paper's claim that classes I-1 and I-2
// "apply to a disjoint set of database states ... at least one valid
// translation from class I-1 or from class I-2 but not both".
func TestInsertDichotomy(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()

	// No EMP #9 exists: I-1.
	u := f.ViewTuple(f.ViewP, 9, "Ivan", "New York", false)
	cands, err := EnumerateSPInsert(db, f.ViewP, u)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	for _, c := range cands {
		if c.Class != "I-1" {
			t.Fatalf("expected only I-1, got %s", c.Class)
		}
	}
	// Views project everything, so extend-insert is unique.
	if len(cands) != 1 {
		t.Fatalf("identity projection should give exactly one I-1, got %d", len(cands))
	}
	if !UniqueExtendInsert(f.ViewP) {
		t.Fatal("UniqueExtendInsert should hold for a full projection")
	}

	// EMP #5 exists in San Francisco (invisible in ViewP): I-2.
	u5 := f.ViewTuple(f.ViewP, 5, "Bob", "New York", false)
	cands, err = EnumerateSPInsert(db, f.ViewP, u5)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if len(cands) != 1 || cands[0].Class != "I-2" {
		t.Fatalf("expected a single I-2, got %s", DescribeCandidates(cands))
	}
	repl := cands[0].Translation.Replacements()
	if len(repl) != 1 {
		t.Fatalf("I-2 should be one replacement, got %s", cands[0].Translation)
	}
	if repl[0].Old.Key() != repl[0].New.Key() {
		t.Fatal("I-2 must not change the key")
	}

	// The request becomes invalid when the view already has the key.
	u3 := f.ViewTuple(f.ViewP, 3, "Dave", "New York", true)
	if _, err := EnumerateSPInsert(db, f.ViewP, u3); err == nil {
		t.Fatal("insert over an existing view key should be rejected")
	}
}

// TestAllCandidatesSatisfyCriteria runs the full validity + five
// criteria check over every candidate of the worked example's requests.
func TestAllCandidatesSatisfyCriteria(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()

	reqs := []Request{
		DeleteRequest(f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)),
		DeleteRequest(f.ViewTuple(f.ViewB, 14, "Frank", "San Francisco", true)),
		InsertRequest(f.ViewTuple(f.ViewP, 9, "Ivan", "New York", false)),
		InsertRequest(f.ViewTuple(f.ViewB, 5, "Bob", "San Francisco", true)),
		ReplaceRequest(
			f.ViewTuple(f.ViewP, 17, "Susan", "New York", true),
			f.ViewTuple(f.ViewP, 17, "Susan", "New York", false)),
		ReplaceRequest(
			f.ViewTuple(f.ViewP, 17, "Susan", "New York", true),
			f.ViewTuple(f.ViewP, 11, "Susan", "New York", true)),
		ReplaceRequest(
			f.ViewTuple(f.ViewP, 17, "Susan", "New York", true),
			f.ViewTuple(f.ViewP, 5, "Susan", "New York", true)),
	}
	for _, r := range reqs {
		u := r.Tuple
		if r.Kind == update.Replace {
			u = r.Old
		}
		v := f.ViewB
		if u.Relation() == f.ViewP.Schema() {
			v = f.ViewP
		}
		cands, err := Enumerate(db, v, r)
		if err != nil {
			t.Fatalf("enumerate %s: %v", r, err)
		}
		if len(cands) == 0 {
			t.Fatalf("no candidates for %s", r)
		}
		if err := CheckCandidates(db, v, r, cands, true); err != nil {
			t.Fatalf("criteria: %v", err)
		}
	}
}
