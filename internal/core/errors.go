package core

import "errors"

// Sentinel errors of the translation layer, designed for errors.Is.
// Policies wrap them with the request context, so the historical
// message text ("no candidate translations for ...") is unchanged.
var (
	// ErrNoCandidates marks a request with an empty candidate set:
	// the view update admits no translation at all.
	ErrNoCandidates = errors.New("core: no candidate translations")
	// ErrAmbiguous marks a request whose candidate set needs external
	// semantics to decide — returned by policies that refuse to guess.
	ErrAmbiguous = errors.New("core: ambiguous view update")
)
