package core

import (
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/schema"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

// indepFixture builds R(K*, A) with K ∈ {1,2,3} and A ∈ {a,b,c}, plus
// views used by the independence witnesses.
type indepFixture struct {
	sch *schema.Database
	rel *schema.Relation
}

func newIndepFixture(t testing.TB) *indepFixture {
	t.Helper()
	kDom := schema.MustDomain("K", value.NewInt(1), value.NewInt(2), value.NewInt(3))
	aDom := schema.MustDomain("A", value.NewString("a"), value.NewString("b"), value.NewString("c"))
	rel := schema.MustRelation("R", []schema.Attribute{
		{Name: "K", Domain: kDom},
		{Name: "A", Domain: aDom},
	}, []string{"K"})
	sch := schema.NewDatabase()
	if err := sch.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	return &indepFixture{sch: sch, rel: rel}
}

func (f *indepFixture) tup(t testing.TB, k int64, a string) tuple.T {
	t.Helper()
	return tuple.MustNew(f.rel, value.NewInt(k), value.NewString(a))
}

// violatedSet runs CheckCriteria and returns the violated criterion
// numbers.
func violatedSet(db storage.Source, v view.View, r Request, tr *update.Translation) map[int]bool {
	out := map[int]bool{}
	for _, viol := range CheckCriteria(db, v, r, tr, CheckOptions{}) {
		out[viol.Criterion] = true
	}
	return out
}

func wantOnly(t *testing.T, got map[int]bool, want int) {
	t.Helper()
	if len(got) != 1 || !got[want] {
		t.Fatalf("want exactly criterion %d violated, got %v", want, got)
	}
}

// TestCriteriaIndependence reproduces the theorem "the five criteria
// are independent": for each criterion there is a translation (in a
// suitable context) violating it and only it.
func TestCriteriaIndependence(t *testing.T) {
	f := newIndepFixture(t)

	t.Run("criterion1", func(t *testing.T) {
		// View selects on the key only, so D-2 does not exist and a
		// key-changing replacement to a hidden key violates only the
		// side-effect criterion.
		sel := algebra.NewSelection(f.rel).MustAddTerm("K", value.NewInt(1), value.NewInt(2))
		v := view.MustNewSP("V", sel, f.rel.AttributeNames())
		db := storage.Open(f.sch)
		if err := db.Load("R", f.tup(t, 1, "a")); err != nil {
			t.Fatal(err)
		}
		u := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
		r := DeleteRequest(u)
		tr := update.NewTranslation(update.NewReplace(f.tup(t, 1, "a"), f.tup(t, 3, "a")))
		if !Valid(db, v, r, tr) {
			t.Fatal("witness should be a valid translation")
		}
		wantOnly(t, violatedSet(db, v, r, tr), 1)
	})

	t.Run("criterion2", func(t *testing.T) {
		// A replacement chain affects (1,b) twice. (Not applicable as a
		// set-based translation, but the criteria are predicates over
		// translations regardless of validity.)
		v := view.Identity("V", f.rel)
		db := storage.Open(f.sch)
		if err := db.Load("R", f.tup(t, 1, "a")); err != nil {
			t.Fatal(err)
		}
		u1 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
		u2 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("c"))
		r := ReplaceRequest(u1, u2)
		tr := update.NewTranslation(
			update.NewReplace(f.tup(t, 1, "a"), f.tup(t, 1, "b")),
			update.NewReplace(f.tup(t, 1, "b"), f.tup(t, 1, "c")),
		)
		wantOnly(t, violatedSet(db, v, r, tr), 2)
	})

	t.Run("criterion3", func(t *testing.T) {
		// Join view: deleting the root row while also rewriting the
		// referenced parent (whose key appears in the request) performs
		// an unnecessary extra step — but no database side effect, no
		// multi-step tuple, no simplifiable replacement, no
		// delete-insert pair.
		fx := fixtures.NewABCXD()
		db := storage.Open(fx.Schema)
		if err := db.LoadAll(fx.ABTuple("a", 1), fx.CXDTuple("c1", "a", 3)); err != nil {
			t.Fatal(err)
		}
		row := fx.ViewTuple("c1", "a", 3, 1)
		r := DeleteRequest(row)
		tr := update.NewTranslation(
			update.NewDelete(fx.CXDTuple("c1", "a", 3)),
			update.NewReplace(fx.ABTuple("a", 1), fx.ABTuple("a", 2)),
		)
		if !Valid(db, fx.View, r, tr) {
			t.Fatal("witness should be valid (c1 is the only referencing row)")
		}
		wantOnly(t, violatedSet(db, fx.View, r, tr), 3)
	})

	t.Run("criterion4", func(t *testing.T) {
		// Replacement changing more attributes than the request needs:
		// the same-changes sub-replacement is valid, so the original
		// can be simplified.
		bDom := schema.MustDomain("B", value.NewString("x"), value.NewString("y"))
		rel := schema.MustRelation("R2", []schema.Attribute{
			{Name: "K", Domain: schema.MustDomain("K2", value.NewInt(1), value.NewInt(2))},
			{Name: "A", Domain: schema.MustDomain("A2", value.NewString("a"), value.NewString("b"), value.NewString("c"))},
			{Name: "B", Domain: bDom},
		}, []string{"K"})
		sch := schema.NewDatabase()
		if err := sch.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
		v := view.Identity("V", rel)
		db := storage.Open(sch)
		base := tuple.MustNew(rel, value.NewInt(1), value.NewString("a"), value.NewString("x"))
		if err := db.Load("R2", base); err != nil {
			t.Fatal(err)
		}
		u1 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"), value.NewString("x"))
		u2 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("c"), value.NewString("x"))
		r := ReplaceRequest(u1, u2)
		// Changes A (needed) and B (gratuitous).
		tr := update.NewTranslation(update.NewReplace(base,
			tuple.MustNew(rel, value.NewInt(1), value.NewString("c"), value.NewString("y"))))
		wantOnly(t, violatedSet(db, v, r, tr), 4)
	})

	t.Run("criterion5", func(t *testing.T) {
		// The delete-insert pair that should have been a replacement.
		v := view.Identity("V", f.rel)
		db := storage.Open(f.sch)
		if err := db.Load("R", f.tup(t, 1, "a")); err != nil {
			t.Fatal(err)
		}
		u1 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
		u2 := tuple.MustNew(v.Schema(), value.NewInt(2), value.NewString("a"))
		r := ReplaceRequest(u1, u2)
		tr := update.NewTranslation(
			update.NewDelete(f.tup(t, 1, "a")),
			update.NewInsert(f.tup(t, 2, "a")),
		)
		if !Valid(db, v, r, tr) {
			t.Fatal("witness should be valid")
		}
		wantOnly(t, violatedSet(db, v, r, tr), 5)
	})
}

// TestCriterion1Positions verifies the "respective positions" clause:
// a key-changing database replacement must take its old key from the
// request's removed side and its new key from the added side.
func TestCriterion1Positions(t *testing.T) {
	f := newIndepFixture(t)
	v := view.Identity("V", f.rel)
	db := storage.Open(f.sch)
	if err := db.Load("R", f.tup(t, 1, "a")); err != nil {
		t.Fatal(err)
	}
	u1 := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
	u2 := tuple.MustNew(v.Schema(), value.NewInt(2), value.NewString("a"))
	r := ReplaceRequest(u1, u2)
	// Backwards replacement: old key from the added side.
	tr := update.NewTranslation(update.NewReplace(f.tup(t, 2, "a"), f.tup(t, 1, "a")))
	got := violatedSet(db, v, r, tr)
	if !got[1] {
		t.Fatalf("backwards key movement should violate criterion 1, got %v", got)
	}
}

// TestValidRejectsInapplicable verifies that Valid is false for
// translations that cannot apply.
func TestValidRejectsInapplicable(t *testing.T) {
	f := newIndepFixture(t)
	v := view.Identity("V", f.rel)
	db := storage.Open(f.sch)
	if err := db.Load("R", f.tup(t, 1, "a")); err != nil {
		t.Fatal(err)
	}
	u := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
	r := DeleteRequest(u)
	// Deleting a tuple that is not there.
	tr := update.NewTranslation(update.NewDelete(f.tup(t, 2, "a")))
	if Valid(db, v, r, tr) {
		t.Fatal("inapplicable translation must be invalid")
	}
	// The empty translation does not implement a delete.
	if Valid(db, v, r, update.NewTranslation()) {
		t.Fatal("empty translation must be invalid for a real request")
	}
}

// TestCompositionLemma reproduces the §5-3 lemma: translations of
// requests on views over disjoint relations compose — their union
// collectively satisfies the five criteria for the combined request.
// We model the combined request on a two-node join view whose nodes
// carry the two SP views, issuing per-node requests whose translations
// are unioned.
func TestCompositionLemma(t *testing.T) {
	fx := fixtures.NewABCXD()
	db := storage.Open(fx.Schema)
	if err := db.LoadAll(
		fx.ABTuple("a", 1), fx.ABTuple("a2", 2),
		fx.CXDTuple("c1", "a", 3),
	); err != nil {
		t.Fatal(err)
	}

	// View 1: identity over CXD; View 2: identity over AB. Disjoint
	// base relations.
	v1 := view.Identity("V1", fx.CXD)
	v2 := view.Identity("V2", fx.AB)

	// U1: delete (c1,a,3) from V1. U2: replace (a2,2) by (a2,1) in V2.
	u1 := tuple.MustNew(v1.Schema(), value.NewString("c1"), value.NewString("a"), value.NewInt(3))
	r1 := DeleteRequest(u1)
	c1s, err := EnumerateSP(db, v1, r1)
	if err != nil {
		t.Fatal(err)
	}
	old2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(2))
	new2 := tuple.MustNew(v2.Schema(), value.NewString("a2"), value.NewInt(1))
	r2 := ReplaceRequest(old2, new2)
	c2s, err := EnumerateSP(db, v2, r2)
	if err != nil {
		t.Fatal(err)
	}

	// Each side satisfies the criteria alone.
	if err := CheckCandidates(db, v1, r1, c1s, true); err != nil {
		t.Fatal(err)
	}
	if err := CheckCandidates(db, v2, r2, c2s, true); err != nil {
		t.Fatal(err)
	}

	// The union T = T1 ∪ T2 applies atomically and realizes both view
	// changes at once — and each criterion holds collectively: we check
	// the structural criteria (1, 2, 5) directly against the combined
	// request tuples and validity of the whole against both views.
	for _, c1 := range c1s {
		for _, c2 := range c2s {
			union := c1.Translation.Clone()
			union.AddAll(c2.Translation)
			clone := db.Clone()
			if err := clone.Apply(union); err != nil {
				t.Fatalf("union failed to apply: %v", err)
			}
			// Both views changed exactly as requested.
			want1, err := r1.ApplyToViewSet(v1.Materialize(db))
			if err != nil {
				t.Fatal(err)
			}
			if !v1.Materialize(clone).Equal(want1) {
				t.Fatalf("V1 did not change exactly: %s", union)
			}
			want2, err := r2.ApplyToViewSet(v2.Materialize(db))
			if err != nil {
				t.Fatal(err)
			}
			if !v2.Materialize(clone).Equal(want2) {
				t.Fatalf("V2 did not change exactly: %s", union)
			}
			// Structural criteria on the union w.r.t. the combined
			// request tuples.
			if viol := checkCriterion2(union); viol != nil {
				t.Fatalf("union violates criterion 2: %v", viol)
			}
			if viol := checkCriterion5(union); viol != nil {
				t.Fatalf("union violates criterion 5: %v", viol)
			}
		}
	}
}

// TestCheckOptionsCustomValid confirms criteria 3/4 use the supplied
// validity notion.
func TestCheckOptionsCustomValid(t *testing.T) {
	f := newIndepFixture(t)
	v := view.Identity("V", f.rel)
	db := storage.Open(f.sch)
	if err := db.Load("R", f.tup(t, 1, "a"), f.tup(t, 2, "b")); err != nil {
		t.Fatal(err)
	}
	u := tuple.MustNew(v.Schema(), value.NewInt(1), value.NewString("a"))
	r := DeleteRequest(u)
	tr := update.NewTranslation(
		update.NewDelete(f.tup(t, 1, "a")),
		update.NewDelete(f.tup(t, 2, "b")),
	)
	// Under "everything is valid", the proper-subset rule fires.
	viols := CheckCriteria(db, v, r, tr, CheckOptions{
		Valid: func(*update.Translation) bool { return true },
	})
	found := false
	for _, viol := range viols {
		if viol.Criterion == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("criterion 3 should fire under permissive validity, got %v", viols)
	}
	// Violation message renders.
	if len(viols) > 0 && viols[0].Error() == "" {
		t.Fatal("Violation.Error empty")
	}
}
