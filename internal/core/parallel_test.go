package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runParallel must visit every index exactly once whatever the budget
// state, including the inline-only degenerate cases.
func TestRunParallelVisitsAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		seen := make([]atomic.Int32, n)
		runParallel(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times, want 1", n, i, got)
			}
		}
	}
}

// The global budget must hold across concurrent calls: with K callers
// racing, total busy workers may not exceed K inline goroutines plus
// the GOMAXPROCS-1 shared tokens. The pre-budget pool would have
// allowed K×GOMAXPROCS.
func TestRunParallelGlobalBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skip("needs GOMAXPROCS >= 2 to observe extra workers")
	}
	const callers = 8
	const perCall = 64
	limit := int32(callers + procs - 1)

	var busy, peak atomic.Int32
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runParallel(perCall, func(int) {
				now := busy.Add(1)
				for {
					p := peak.Load()
					if now <= p || peak.CompareAndSwap(p, now) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
				busy.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > limit {
		t.Fatalf("observed %d concurrent workers across %d callers, budget allows at most %d", got, callers, limit)
	}
}

// A solo call with a free budget must actually fan out — the budget
// bounds oversubscription, it must not serialize the common case.
func TestRunParallelUsesBudgetWhenFree(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skip("needs GOMAXPROCS >= 2 to observe extra workers")
	}
	var busy, peak atomic.Int32
	runParallel(procs*4, func(int) {
		now := busy.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		busy.Add(-1)
	})
	if got := peak.Load(); got < 2 {
		t.Fatalf("peak concurrency %d, want >= 2 (budget tokens unused)", got)
	}
}

// Every token taken must come back: after any mix of calls the channel
// is drainable to empty, so a leak would starve later callers into
// permanent inline execution.
func TestRunParallelReturnsTokens(t *testing.T) {
	for round := 0; round < 50; round++ {
		runParallel(16, func(int) {})
	}
	if len(workerTokens) != 0 {
		t.Fatalf("%d tokens still held after all calls returned", len(workerTokens))
	}
	if cap(workerTokens) > 0 {
		select {
		case workerTokens <- struct{}{}:
			<-workerTokens
		default:
			t.Fatal("worker token budget exhausted after idle: tokens leaked")
		}
	}
}
