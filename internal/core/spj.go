package core

import (
	"fmt"
	"strings"

	"viewupdate/internal/obs"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// maxJoinCandidates bounds the Cartesian-product enumeration across the
// nodes of a join view; exceeding it is reported as an error rather
// than silently truncated.
const maxJoinCandidates = 100000

// nodeStep is the contribution of one query-graph node to a join-view
// translation: a list of alternative SP-level candidates (possibly the
// single empty "no-op" candidate).
type nodeStep struct {
	label string // e.g. "emp:I-1"; empty for no-ops
	cands []Candidate
}

// noopStep returns a step contributing nothing.
func noopStep() nodeStep {
	return nodeStep{cands: []Candidate{{Translation: update.NewTranslation()}}}
}

// composeSteps builds the Cartesian product of the per-node steps,
// implementing the composition theorem of §5-3: "the set of view update
// translations is obtained from the Cartesian product of the sets of
// the view update translations for each select and project view".
func composeSteps(prefix string, steps []nodeStep) ([]Candidate, error) {
	span := obs.StartSpan("core.spj.compose")
	defer span.End()
	obs.Observe("core.spj.steps", int64(len(steps)))
	out := []Candidate{{Translation: update.NewTranslation()}}
	for _, st := range steps {
		if len(st.cands) == 0 {
			return nil, fmt.Errorf("core: node step %s has no applicable translation", st.label)
		}
		var next []Candidate
		for _, acc := range out {
			for _, c := range st.cands {
				trans := acc.Translation.Clone()
				trans.AddAll(c.Translation)
				label := acc.Class
				if c.Class != "" {
					part := c.Class
					if label == "" {
						label = part
					} else {
						label = label + ", " + part
					}
				}
				next = append(next, Candidate{
					Class:       label,
					Translation: trans,
					Choices:     mergeChoices(acc.Choices, c.Choices),
				})
				if len(next) > maxJoinCandidates {
					return nil, fmt.Errorf("core: more than %d candidate translations; refine the request or use a policy-driven translator", maxJoinCandidates)
				}
			}
		}
		out = next
	}
	for i := range out {
		if out[i].Class == "" {
			out[i].Class = prefix
		} else {
			out[i].Class = prefix + "(" + out[i].Class + ")"
		}
	}
	if obs.Enabled() {
		obs.Add("core.candidates.composite", int64(len(out)))
		obs.Add("core.candidates.class."+prefix, int64(len(out)))
	}
	return out, nil
}

// relabel prefixes the classes and choices of SP-level candidates with
// the owning node's view name.
func relabel(node string, cands []Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = Candidate{
			Class:       node + ":" + c.Class,
			Translation: c.Translation,
			Choices:     cloneChoices(node+".", c.Choices),
		}
	}
	return out
}

// EnumerateJoinDelete implements ALGORITHM CLASS SPJ-D (§5-2): "delete
// the tuple from the root relation (or SP view) only, using one of the
// algorithms of classes D-1 or D-2". No other relation is touched.
func EnumerateJoinDelete(db storage.Source, j *view.Join, u tuple.T) ([]Candidate, error) {
	span := obs.StartSpan("core.spj.delete")
	defer span.End()
	if err := ValidateRequest(db, j, DeleteRequest(u)); err != nil {
		return nil, err
	}
	root := j.Root().SP
	rootRow := j.ProjectNode(0, u)
	countNodeVisit(root.Name())
	cands, err := EnumerateSPDelete(db, root, rootRow)
	if err != nil {
		return nil, fmt.Errorf("core: SPJ-D on root %s: %w", root.Name(), err)
	}
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = Candidate{
			Class:       "SPJ-D(" + root.Name() + ":" + c.Class + ")",
			Translation: c.Translation,
			Choices:     cloneChoices(root.Name()+".", c.Choices),
		}
	}
	if obs.Enabled() {
		obs.Add("core.candidates.composite", int64(len(out)))
		obs.Add("core.candidates.class.SPJ-D", int64(len(out)))
	}
	return out, nil
}

// countNodeVisit records a query-graph node visit during join
// enumeration. Guarded by Enabled so the disabled path never builds the
// dynamic metric name.
func countNodeVisit(node string) {
	if !obs.Enabled() {
		return
	}
	obs.Inc("core.spj.visit." + node)
}

// EnumerateJoinInsert implements ALGORITHM CLASS SPJ-I (§5-2): project
// the new join-view tuple onto each node's SP view and, per node,
//
//	Case 1: the projection already exists exactly — reject at the root
//	        (it would violate the view's functional dependency), no-op
//	        elsewhere;
//	Case 2: the projection's key is absent from the SP view — perform
//	        an SP view insertion (classes I-1/I-2);
//	Case 3: a tuple with the projection's key exists with different
//	        values — replace it in the SP view (a key-preserving
//	        replacement, class R-1).
//
// The node steps compose by Cartesian product (§5-3); the storage layer
// applies the whole translation atomically, so "if any of the SP view
// operations fail, the entire view update request fails and is undone".
func EnumerateJoinInsert(db storage.Source, j *view.Join, u tuple.T) ([]Candidate, error) {
	span := obs.StartSpan("core.spj.insert")
	defer span.End()
	if err := ValidateRequest(db, j, InsertRequest(u)); err != nil {
		return nil, err
	}
	var steps []nodeStep
	for i, n := range j.Nodes() {
		p := j.ProjectNode(i, u)
		spv := n.SP
		countNodeVisit(spv.Name())
		row, hasKey := spv.Lookup(db, p)
		switch {
		case hasKey && row.Equal(p): // Case 1
			if i == 0 {
				return nil, fmt.Errorf("core: SPJ-I rejected: root projection %s already in %s — the insertion violates an FD in the view", p, spv.Name())
			}
			steps = append(steps, noopStep())
		case !hasKey: // Case 2
			cands, err := EnumerateSPInsert(db, spv, p)
			if err != nil {
				return nil, fmt.Errorf("core: SPJ-I inserting into node %s: %w", spv.Name(), err)
			}
			steps = append(steps, nodeStep{label: spv.Name(), cands: relabel(spv.Name(), cands)})
		default: // Case 3
			cands, err := EnumerateSPReplace(db, spv, row, p)
			if err != nil {
				return nil, fmt.Errorf("core: SPJ-I replacing in node %s: %w", spv.Name(), err)
			}
			steps = append(steps, nodeStep{label: spv.Name(), cands: relabel(spv.Name(), cands)})
		}
	}
	return composeSteps("SPJ-I", steps)
}

// spjState is the walk state of SPJ-R: replacing or inserting.
type spjState int

const (
	stateR spjState = iota
	stateI
)

// EnumerateJoinReplace implements ALGORITHM CLASS SPJ-R (§5-2): a
// preorder walk over the query-graph tree. In State R the old and new
// projections are compared: equal projections descend in State R
// (Case R-1); equal keys with different values perform a key-preserving
// SP replacement and descend in State I (Case R-2); differing keys can
// only happen at the root, perform a (key-changing) SP replacement and
// descend in State I (Case R-3). In State I: matching keys re-enter
// State R at the same node (Case I-1); a new key absent from the SP
// view is inserted (Case I-2); an exactly-matching projection is a
// no-op (Case I-3); a conflicting tuple with the new key is replaced
// (Case I-4); all descend in State I.
func EnumerateJoinReplace(db storage.Source, j *view.Join, old, new tuple.T) ([]Candidate, error) {
	span := obs.StartSpan("core.spj.replace")
	defer span.End()
	if err := ValidateRequest(db, j, ReplaceRequest(old, new)); err != nil {
		return nil, err
	}
	nodes := j.Nodes()
	indexOf := make(map[*view.Node]int, len(nodes))
	inDeg := make([]int, len(nodes))
	for i, n := range nodes {
		indexOf[n] = i
	}
	for _, n := range nodes {
		for _, ref := range n.Refs {
			inDeg[indexOf[ref.Target]]++
		}
	}

	// processNode runs the paper's per-node case analysis, returning
	// the node's contribution and the state it delivers to its targets.
	processNode := func(n *view.Node, idx int, state spjState) (nodeStep, spjState, error) {
		pOld := j.ProjectNode(idx, old)
		pNew := j.ProjectNode(idx, new)
		spv := n.SP
		countNodeVisit(spv.Name())

		if state == stateI && pOld.Key() == pNew.Key() {
			state = stateR // Case I-1: keys match, go to State R staying here.
		}
		switch state {
		case stateR:
			switch {
			case pOld.Equal(pNew): // Case R-1
				return noopStep(), stateR, nil
			case pOld.Key() == pNew.Key(): // Case R-2
				cands, err := EnumerateSPReplace(db, spv, pOld, pNew)
				if err != nil {
					return nodeStep{}, stateI, fmt.Errorf("core: SPJ-R replacing in node %s: %w", spv.Name(), err)
				}
				return nodeStep{label: spv.Name(), cands: relabel(spv.Name(), cands)}, stateI, nil
			default: // Case R-3 — only possible at the root.
				if idx != 0 {
					return nodeStep{}, stateI, fmt.Errorf("core: SPJ-R internal error: key change in non-root node %s", spv.Name())
				}
				cands, err := EnumerateSPReplace(db, spv, pOld, pNew)
				if err != nil {
					return nodeStep{}, stateI, fmt.Errorf("core: SPJ-R replacing in root %s: %w", spv.Name(), err)
				}
				return nodeStep{label: spv.Name(), cands: relabel(spv.Name(), cands)}, stateI, nil
			}
		default: // stateI, keys differ
			row, hasKey := spv.Lookup(db, pNew)
			switch {
			case !hasKey: // Case I-2
				cands, err := EnumerateSPInsert(db, spv, pNew)
				if err != nil {
					return nodeStep{}, stateI, fmt.Errorf("core: SPJ-R inserting into node %s: %w", spv.Name(), err)
				}
				return nodeStep{label: spv.Name(), cands: relabel(spv.Name(), cands)}, stateI, nil
			case row.Equal(pNew): // Case I-3
				return noopStep(), stateI, nil
			default: // Case I-4
				cands, err := EnumerateSPReplace(db, spv, row, pNew)
				if err != nil {
					return nodeStep{}, stateI, fmt.Errorf("core: SPJ-R replacing conflict in node %s: %w", spv.Name(), err)
				}
				return nodeStep{label: spv.Name(), cands: relabel(spv.Name(), cands)}, stateI, nil
			}
		}
	}

	// Kahn's algorithm over the reference DAG: a node is processed once
	// all its referencing nodes have delivered their states; it enters
	// State R only if every delivery is R (the root starts in R). On
	// trees this reduces exactly to the paper's preorder walk; on DAG
	// views (the §5-1 footnote) it is the conservative state join.
	var steps []nodeStep
	pendingIn := append([]int{}, inDeg...)
	allR := make([]bool, len(nodes))
	for i := range allR {
		allR[i] = true
	}
	queue := []int{0}
	processed := 0
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		processed++
		state := stateI
		if allR[idx] {
			state = stateR
		}
		n := nodes[idx]
		step, childState, err := processNode(n, idx, state)
		if err != nil {
			return nil, err
		}
		steps = append(steps, step)
		for _, ref := range n.Refs {
			ti := indexOf[ref.Target]
			if childState != stateR {
				allR[ti] = false
			}
			pendingIn[ti]--
			if pendingIn[ti] == 0 {
				queue = append(queue, ti)
			}
		}
	}
	if processed != len(nodes) {
		return nil, fmt.Errorf("core: SPJ-R internal error: query graph not rooted at node 0")
	}
	return composeSteps("SPJ-R", steps)
}

// EnumerateJoin dispatches on the request kind.
func EnumerateJoin(db storage.Source, j *view.Join, r Request) ([]Candidate, error) {
	switch r.Kind {
	case update.Insert:
		return EnumerateJoinInsert(db, j, r.Tuple)
	case update.Delete:
		return EnumerateJoinDelete(db, j, r.Tuple)
	case update.Replace:
		return EnumerateJoinReplace(db, j, r.Old, r.New)
	default:
		return nil, fmt.Errorf("core: invalid request kind")
	}
}

// Enumerate returns every candidate translation of the request against
// the view: the complete generator set of the paper's theorems.
func Enumerate(db storage.Source, v view.View, r Request) ([]Candidate, error) {
	switch vv := v.(type) {
	case *view.SP:
		return EnumerateSP(db, vv, r)
	case *view.Join:
		return EnumerateJoin(db, vv, r)
	default:
		return nil, fmt.Errorf("core: unsupported view type %T", v)
	}
}

// DescribeCandidates renders a candidate list, one per line.
func DescribeCandidates(cands []Candidate) string {
	parts := make([]string, len(cands))
	for i, c := range cands {
		parts[i] = fmt.Sprintf("%2d. %s", i+1, c)
	}
	return strings.Join(parts, "\n")
}
