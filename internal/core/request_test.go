package core

import (
	"testing"

	"viewupdate/internal/algebra"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/view"
)

func TestValidateSPRequestEdgeCases(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()

	// Wrong schema tuple.
	base := f.Tuple(1, "Alice", "New York", false)
	if err := ValidateRequest(db, f.ViewP, InsertRequest(base)); err == nil {
		t.Fatal("base-schema tuple should be rejected")
	}
	// Insert violating the visible selection.
	sf := f.ViewTuple(f.ViewP, 9, "Ivan", "San Francisco", false)
	if err := ValidateRequest(db, f.ViewP, InsertRequest(sf)); err == nil {
		t.Fatal("selection-violating insert should be rejected")
	}
	// Replace with old == new.
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	if err := ValidateRequest(db, f.ViewP, ReplaceRequest(u, u)); err == nil {
		t.Fatal("no-op replacement should be rejected")
	}
	// Replace whose new tuple violates the selection.
	bad := f.ViewTuple(f.ViewP, 17, "Susan", "San Francisco", true)
	if err := ValidateRequest(db, f.ViewP, ReplaceRequest(u, bad)); err == nil {
		t.Fatal("selection-violating replacement should be rejected")
	}
	// Replace onto a key held by another VISIBLE row.
	carol := f.ViewTuple(f.ViewP, 8, "Susan", "New York", true)
	if err := ValidateRequest(db, f.ViewP, ReplaceRequest(u, carol)); err == nil {
		t.Fatal("replacement onto a visible conflicting key should be rejected")
	}
	// Replace of a row not in the view.
	ghost := f.ViewTuple(f.ViewP, 19, "Judy", "New York", false)
	if err := ValidateRequest(db, f.ViewP, ReplaceRequest(ghost, u)); err == nil {
		t.Fatal("replacing an absent row should be rejected")
	}
	// Invalid request kind.
	if err := ValidateRequest(db, f.ViewP, Request{}); err == nil {
		t.Fatal("zero request should be rejected")
	}
}

func TestApplyToViewSetErrors(t *testing.T) {
	f := fixtures.NewEmp(20)
	u1 := f.ViewTuple(f.ViewP, 1, "Alice", "New York", false)
	u2 := f.ViewTuple(f.ViewP, 2, "Bob", "New York", false)
	s := tuple.NewSet(u1)
	if _, err := InsertRequest(u1).ApplyToViewSet(s); err == nil {
		t.Fatal("inserting a present tuple should fail")
	}
	if _, err := DeleteRequest(u2).ApplyToViewSet(s); err == nil {
		t.Fatal("deleting an absent tuple should fail")
	}
	if _, err := ReplaceRequest(u2, u1).ApplyToViewSet(s); err == nil {
		t.Fatal("replacing an absent tuple should fail")
	}
	if _, err := (Request{}).ApplyToViewSet(s); err == nil {
		t.Fatal("zero request should fail")
	}
	out, err := ReplaceRequest(u1, u2).ApplyToViewSet(s)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Contains(u2) || out.Contains(u1) || s.Contains(u2) {
		t.Fatal("ApplyToViewSet should not mutate the input")
	}
}

// TestJoinCartesianProductCount pins the §5-3 composition count: the
// join-view candidate set is the product of the per-node SP candidate
// sets.
func TestJoinCartesianProductCount(t *testing.T) {
	f := fixtures.NewABCXD()
	// Both nodes carry selections with excluding values, and CXD hides
	// nothing; give AB a hidden selecting attribute via projection of
	// the join view's parent? Simpler: parent SP selects B ∈ {1,2} of
	// 1..9 (excluding 7 values) — D-2-style choices appear on inserts
	// via I-2 only; for inserts the product shows through extend-insert.
	// Use hidden attributes instead: parent view hides B with selection
	// B ∈ {1,2} -> extend-insert has 2 choices; root hides D with D ∈
	// {3,4,5} -> 3 choices. Insert of a fresh row inserting both nodes:
	// 3 × 2 = 6 candidates.
	selCXD := algebra.NewSelection(f.CXD).MustAddTerm("D",
		value.NewInt(3), value.NewInt(4), value.NewInt(5))
	rootSP := view.MustNewSP("CXDh", selCXD, []string{"C", "X"})
	selAB := algebra.NewSelection(f.AB).MustAddTerm("B", value.NewInt(1), value.NewInt(2))
	parentSP := view.MustNewSP("ABh", selAB, []string{"A"})
	parent := &view.Node{SP: parentSP}
	root := &view.Node{SP: rootSP, Refs: []view.Ref{{Attrs: []string{"X"}, Target: parent}}}
	jv, err := view.NewJoin("H", f.Schema, root)
	if err != nil {
		t.Fatal(err)
	}
	db := storage.Open(f.Schema)
	if err := db.LoadAll(f.ABTuple("a", 1), f.CXDTuple("c1", "a", 3)); err != nil {
		t.Fatal(err)
	}
	// Insert (c2, a1, a1): fresh root, fresh parent.
	u, err := MakeRow(jv.Schema(), "c2", "a1", "a1")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := EnumerateJoinInsert(db, jv, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 6 {
		t.Fatalf("want 3 x 2 = 6 candidates, got %d:\n%s", len(cands), DescribeCandidates(cands))
	}
	// Every candidate is distinct and applies cleanly.
	seen := map[string]bool{}
	for _, c := range cands {
		enc := c.Translation.Encode()
		if seen[enc] {
			t.Fatalf("duplicate candidate %s", c)
		}
		seen[enc] = true
		clone := db.Clone()
		if err := clone.Apply(c.Translation); err != nil {
			t.Fatalf("candidate %s failed to apply: %v", c, err)
		}
		if !jv.Materialize(clone).Contains(u) {
			t.Fatalf("candidate %s did not realize the insert", c)
		}
	}
}

// TestCriterion4CapSkipsHugeEnumeration verifies the alternative-space
// cap: with a tiny cap the key-change clause of criterion 4 skips
// enumeration instead of exploding, and the check still passes on a
// legitimate candidate.
func TestCriterion4CapSkipsHugeEnumeration(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	old := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	new := f.ViewTuple(f.ViewP, 11, "Susan", "New York", true)
	r := ReplaceRequest(old, new)
	cands, err := Enumerate(db, f.ViewP, r)
	if err != nil {
		t.Fatal(err)
	}
	opts := CheckOptions{MaxAlternativeSpace: 1}
	for _, c := range cands {
		if viols := CheckCriteria(db, f.ViewP, r, c.Translation, opts); len(viols) != 0 {
			t.Fatalf("capped check should still pass: %v", viols)
		}
	}
}

// TestSimplerReplacementsExported pins the exported helper's behavior.
func TestSimplerReplacementsExported(t *testing.T) {
	f := fixtures.NewEmp(20)
	old := f.Tuple(1, "Alice", "New York", false)
	// Key-preserving, two changed attributes: one proper subset each.
	new := f.Tuple(1, "Bob", "San Francisco", false)
	alts := SimplerReplacements(update.NewReplace(old, new), 0)
	if len(alts) != 2 {
		t.Fatalf("want 2 same-changes subsets, got %d", len(alts))
	}
	// Key-changing: subsets plus all key-preserving rewrites.
	moved := f.Tuple(2, "Alice", "New York", false)
	alts = SimplerReplacements(update.NewReplace(old, moved), 0)
	// Changed = {EmpNo} only: no proper subsets; key-preserving space =
	// 11 names × 2 locations × 2 bools − 1 (identity) = 43.
	if len(alts) != 43 {
		t.Fatalf("want 43 key-preserving alternatives, got %d", len(alts))
	}
	for _, a := range alts {
		if a.Old.Key() != a.New.Key() {
			t.Fatalf("alternative %s should preserve the key", a)
		}
	}
}
