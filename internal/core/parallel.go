package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerTokens is the package-global budget of extra worker goroutines
// shared by every concurrent runParallel call. Each call always works
// on its own goroutine; tokens only gate the additional workers it may
// spawn. Sizing the budget at GOMAXPROCS-1 means the whole process —
// one translation or fifty concurrent ones — runs candidate judging on
// at most GOMAXPROCS busy goroutines plus the callers themselves,
// instead of each call privately assuming it owns the machine and
// oversubscribing the scheduler under serving load.
var workerTokens = func() chan struct{} {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	return make(chan struct{}, n)
}()

// runParallel executes fn(0) … fn(n-1) and returns when all calls are
// done. The caller's goroutine always participates, so a call makes
// progress even with the global budget exhausted; extra workers are
// spawned only by non-blocking token acquisition (never waited for —
// a loaded system degrades to inline execution, not to queuing).
// Work is handed out by an atomic counter, so workers stay busy
// regardless of per-item cost; callers keep determinism by writing
// results into index i of a pre-sized slice.
func runParallel(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for extra := 0; extra < n-1; extra++ {
		select {
		case workerTokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-workerTokens
					wg.Done()
				}()
				run()
			}()
		default:
			break spawn
		}
	}
	run()
	wg.Wait()
}
