package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runParallel executes fn(0) … fn(n-1) on a bounded worker pool of at
// most GOMAXPROCS goroutines, returning when all calls are done. Work
// is handed out by an atomic counter, so workers stay busy regardless
// of per-item cost; callers keep determinism by writing results into
// index i of a pre-sized slice. For n <= 1 (or a single-processor
// GOMAXPROCS) the calls run inline on the caller's goroutine.
func runParallel(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
