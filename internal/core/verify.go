package core

import (
	"viewupdate/internal/obs"
	"viewupdate/internal/storage"
	"viewupdate/internal/tuple"
	"viewupdate/internal/update"
	"viewupdate/internal/view"
)

// A Verifier evaluates candidate translations for one (state, view,
// request) triple: validity under both semantics, the five criteria,
// and view side effects. It is the delta-first replacement for the
// clone-per-candidate path — the base view is materialized once, the
// requested view state is computed once, and every candidate is applied
// to a copy-on-write storage.Overlay instead of a full database clone.
//
// The after-state of the view is computed incrementally where the view
// structure allows it:
//
//   - SP views: always. The base key is the view key, so the rows of
//     the candidate's removed/added base tuples (via SP.RowFor) are
//     exactly the view delta.
//   - Join views, candidate touching only the root relation: the root
//     has in-degree zero in the (tree or DAG) query graph, so
//     references from and between the other nodes resolve identically
//     before and after; the view delta is the rows of the touched root
//     tuples (via Join.RowForRoot).
//   - Join views, candidate touching non-root relations: the view
//     delta is Join.DeltaForChange — a reverse-reference-index walk
//     from the touched tuples to the affected root set, O(affected
//     roots) instead of O(view).
//   - Otherwise (non-SP, non-join views): full materialization over
//     the overlay — still no clone, reads merge base + delta.
//
// A Verifier is immutable after construction and safe for concurrent
// use: every evaluation works on its own overlay.
type Verifier struct {
	src     storage.Source
	v       view.View
	r       Request
	before  *tuple.Set // V(DB), materialized once
	want    *tuple.Set // U(V(DB)), the exact-validity target
	wantErr error      // request not applicable to the view state

	sp       *view.SP
	join     *view.Join
	rootRel  string
	nodeRels map[string]bool // join node base relations other than the root
}

// NewVerifier materializes the view and the requested view state once
// and returns a verifier for candidates of r against v over src.
func NewVerifier(src storage.Source, v view.View, r Request) *Verifier {
	return NewVerifierWithBefore(src, v, r, nil)
}

// NewVerifierWithBefore is NewVerifier taking a precomputed
// materialization of v over src. Callers that already hold the view's
// current state — the serving engine memoizes one per snapshot version
// — pass it here to skip the per-verifier Materialize, which otherwise
// dominates the verify cost. before must equal v.Materialize(src); it
// is treated as shared and never mutated (every evaluation path copies
// before editing). nil falls back to materializing.
func NewVerifierWithBefore(src storage.Source, v view.View, r Request, before *tuple.Set) *Verifier {
	vf := &Verifier{src: src, v: v, r: r}
	if before == nil {
		before = v.Materialize(src)
	}
	vf.before = before
	vf.want, vf.wantErr = r.ApplyToViewSet(vf.before)
	switch vv := v.(type) {
	case *view.SP:
		vf.sp = vv
	case *view.Join:
		vf.join = vv
		vf.rootRel = vv.Root().SP.Base().Name()
		vf.nodeRels = make(map[string]bool, len(vv.Nodes()))
		for _, n := range vv.Nodes() {
			if rel := n.SP.Base().Name(); rel != vf.rootRel {
				vf.nodeRels[rel] = true
			}
		}
	}
	return vf
}

// Before returns the view state the verifier was built on.
func (vf *Verifier) Before() *tuple.Set { return vf.before }

// afterView applies tr to a fresh overlay and returns the resulting
// view state, delta-computed when the translation is local to the
// view's key-carrying relation. The returned set may alias the memoized
// before-state; callers must not mutate it.
func (vf *Verifier) afterView(tr *update.Translation) (*tuple.Set, error) {
	ov := storage.NewOverlay(vf.src)
	if err := ov.Apply(tr); err != nil {
		return nil, err
	}
	switch {
	case vf.sp != nil:
		obs.Inc("core.verify.delta")
		return vf.deltaRows(tr, vf.sp.Base().Name(), func(_ storage.Source, t tuple.T) (tuple.T, bool) {
			return vf.sp.RowFor(t)
		}, ov), nil
	case vf.join != nil:
		for _, rel := range tr.RelationsTouched() {
			if vf.nodeRels[rel] {
				// A non-root node changed: reference resolution may shift
				// for the root tuples that (transitively) reference the
				// touched tuples. Walk the reverse reference index to
				// exactly those roots instead of rematerializing.
				obs.Inc("core.verify.ivm")
				return vf.ivmRows(tr, ov), nil
			}
		}
		obs.Inc("core.verify.delta")
		return vf.deltaRows(tr, vf.rootRel, vf.join.RowForRoot, ov), nil
	default:
		obs.Inc("core.verify.materialize")
		return vf.v.Materialize(ov), nil
	}
}

// ivmRows edits the memoized before-state by the join view's
// incremental delta for tr: Join.DeltaForChange walks the reverse
// reference index from the candidate's touched tuples to the affected
// root set and recomputes only those rows against the base state and
// the overlay. Copy-on-write: an empty delta returns the before-set as
// is.
func (vf *Verifier) ivmRows(tr *update.Translation, ov *storage.Overlay) *tuple.Set {
	removedRows, addedRows := vf.join.DeltaForChange(vf.src, ov, tr.Removed().Slice(), tr.Added().Slice())
	if removedRows.Len() == 0 && addedRows.Len() == 0 {
		return vf.before
	}
	after := vf.before.Clone()
	for _, row := range removedRows.Slice() {
		after.Remove(row)
	}
	for _, row := range addedRows.Slice() {
		after.Add(row)
	}
	return after
}

// deltaRows edits the memoized before-state by the rows of the
// translation's removed/added tuples of relation rel, evaluated by
// rowFor. Removed rows are computed against the base state, added rows
// against the overlay (equivalent here — the candidate is local to rel,
// which no row evaluation reads through a reference — but the overlay
// is the honest final state). Copy-on-write: if no tuple of rel is
// touched or no row changes, the before-set is returned as is.
func (vf *Verifier) deltaRows(tr *update.Translation, rel string, rowFor func(storage.Source, tuple.T) (tuple.T, bool), ov *storage.Overlay) *tuple.Set {
	after := vf.before
	edit := func() *tuple.Set {
		if after == vf.before {
			after = vf.before.Clone()
		}
		return after
	}
	for _, t := range tr.Removed().Slice() {
		if t.Relation().Name() != rel {
			continue
		}
		if row, ok := rowFor(vf.src, t); ok {
			edit().Remove(row)
		}
	}
	for _, t := range tr.Added().Slice() {
		if t.Relation().Name() != rel {
			continue
		}
		if row, ok := rowFor(ov, t); ok {
			edit().Add(row)
		}
	}
	return after
}

// Valid implements the paper's exact validity — V(DB′) = U(V(DB)) — for
// the verifier's request, against the candidate translation.
func (vf *Verifier) Valid(tr *update.Translation) bool {
	if vf.wantErr != nil {
		return false
	}
	after, err := vf.afterView(tr)
	if err != nil {
		return false
	}
	return after.Equal(vf.want)
}

// ValidRequested implements the relaxed validity applicable to join
// views: requested additions present, requested removals absent, other
// rows free to change.
func (vf *Verifier) ValidRequested(tr *update.Translation) bool {
	after, err := vf.afterView(tr)
	if err != nil {
		return false
	}
	for _, t := range vf.r.AddedTuples() {
		if !after.Contains(t) {
			return false
		}
	}
	for _, t := range vf.r.RemovedTuples() {
		if after.Contains(t) {
			return false
		}
	}
	return true
}

// ValidFn returns the validity predicate matching the view class: exact
// validity for SP views, requested-changes validity for join views —
// the same choice TraceTranslate and CheckCandidates historically made.
func (vf *Verifier) ValidFn() func(*update.Translation) bool {
	if vf.join != nil {
		return vf.ValidRequested
	}
	return vf.Valid
}

// SideEffects reports the view changes of tr beyond those requested. An
// error is returned if the translation cannot be applied.
func (vf *Verifier) SideEffects(tr *update.Translation) (*Effects, error) {
	after, err := vf.afterView(tr)
	if err != nil {
		return nil, err
	}
	requestedAdd := tuple.NewSet(vf.r.AddedTuples()...)
	requestedRemove := tuple.NewSet(vf.r.RemovedTuples()...)
	eff := &Effects{ExtraAdded: tuple.NewSet(), ExtraRemoved: tuple.NewSet()}
	if after == vf.before {
		return eff, nil // delta path proved the view unchanged
	}
	for _, row := range after.Slice() {
		if !vf.before.Contains(row) && !requestedAdd.Contains(row) {
			eff.ExtraAdded.Add(row)
		}
	}
	for _, row := range vf.before.Slice() {
		if !after.Contains(row) && !requestedRemove.Contains(row) {
			eff.ExtraRemoved.Add(row)
		}
	}
	return eff, nil
}
