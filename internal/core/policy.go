package core

import (
	"fmt"
	"sort"
	"strings"

	"viewupdate/internal/value"
)

// A Policy selects one translation among the complete candidate set.
// The paper leaves this choice to "additional semantics" supplied by
// the database administrator at view definition time; policies are the
// executable form of those semantics.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Choose picks a candidate or fails (e.g. on ambiguity).
	Choose(r Request, cands []Candidate) (Candidate, error)
}

// PickFirst deterministically picks the candidate with the smallest
// canonical encoding. Useful as a default and in benchmarks.
type PickFirst struct{}

// Name implements Policy.
func (PickFirst) Name() string { return "pick-first" }

// Choose implements Policy.
func (PickFirst) Choose(r Request, cands []Candidate) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("%w for %s", ErrNoCandidates, r)
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Translation.Encode() < best.Translation.Encode() {
			best = c
		}
	}
	return best, nil
}

// RejectAmbiguous accepts only a unique candidate.
type RejectAmbiguous struct{}

// Name implements Policy.
func (RejectAmbiguous) Name() string { return "reject-ambiguous" }

// Choose implements Policy.
func (RejectAmbiguous) Choose(r Request, cands []Candidate) (Candidate, error) {
	switch len(cands) {
	case 0:
		return Candidate{}, fmt.Errorf("%w for %s", ErrNoCandidates, r)
	case 1:
		return cands[0], nil
	default:
		return Candidate{}, fmt.Errorf("%w: %d candidate translations for %s; additional semantics required",
			ErrAmbiguous, len(cands), r)
	}
}

// classOf extracts the leaf algorithm-class tokens of a candidate's
// class label: "SPJ-I(emp:I-1, dept:R-1)" yields {"I-1","R-1"};
// "D-2" yields {"D-2"}.
func classTokens(class string) []string {
	cut := class
	if i := strings.IndexByte(cut, '('); i >= 0 && strings.HasSuffix(cut, ")") {
		cut = cut[i+1 : len(cut)-1]
	}
	parts := strings.Split(cut, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if i := strings.IndexByte(p, ':'); i >= 0 {
			p = p[i+1:]
		}
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// PreferClasses ranks candidates by the earliest position of their
// algorithm class in Order; among equals, the smallest encoding wins.
// A candidate whose class does not appear in Order loses to any that
// does. E.g. Order = ["D-1"] encodes "deletion means destroying the
// object" (the paper's Susan), while Order = ["D-2"] encodes "deletion
// means flipping the object out of the view" (the paper's Frank).
type PreferClasses struct {
	// Label names the policy for display.
	Label string
	// Order lists class names from most to least preferred.
	Order []string
}

// Name implements Policy.
func (p PreferClasses) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "prefer[" + strings.Join(p.Order, ">") + "]"
}

// rank returns the order index of the candidate's best token.
func (p PreferClasses) rank(c Candidate) int {
	best := len(p.Order)
	for _, tok := range classTokens(c.Class) {
		for i, want := range p.Order {
			if tok == want && i < best {
				best = i
			}
		}
	}
	return best
}

// Choose implements Policy.
func (p PreferClasses) Choose(r Request, cands []Candidate) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("%w for %s", ErrNoCandidates, r)
	}
	sorted := append([]Candidate{}, cands...)
	sort.Slice(sorted, func(i, j int) bool {
		ri, rj := p.rank(sorted[i]), p.rank(sorted[j])
		if ri != rj {
			return ri < rj
		}
		return sorted[i].Translation.Encode() < sorted[j].Translation.Encode()
	})
	return sorted[0], nil
}

// WithDefaults refines another policy by value preferences for the
// arbitrary choices (extend-insert values, D-2 flip values, I-2
// selecting values): candidates whose choices agree with more defaults
// win. Keys match the Candidate.Choices keys (attribute names, possibly
// role- or node-prefixed; an unprefixed default matches any prefixed
// occurrence of the attribute).
type WithDefaults struct {
	Base     Policy
	Defaults map[string]value.Value
}

// Name implements Policy.
func (p WithDefaults) Name() string { return p.Base.Name() + "+defaults" }

// score counts satisfied defaults.
func (p WithDefaults) score(c Candidate) int {
	n := 0
	for k, v := range c.Choices {
		if dv, ok := p.Defaults[k]; ok && dv == v {
			n++
			continue
		}
		// Unprefixed default for a prefixed choice key.
		if i := strings.LastIndexByte(k, '.'); i >= 0 {
			if dv, ok := p.Defaults[k[i+1:]]; ok && dv == v {
				n++
			}
		}
	}
	return n
}

// Choose implements Policy: the base policy decides the algorithm
// class; the defaults then break ties among the candidates of that
// class (the arbitrary value choices within one class are exactly what
// distinguish its algorithms).
func (p WithDefaults) Choose(r Request, cands []Candidate) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("%w for %s", ErrNoCandidates, r)
	}
	picked, err := p.Base.Choose(r, cands)
	if err != nil {
		return Candidate{}, err
	}
	var sameClass []Candidate
	for _, c := range cands {
		if c.Class == picked.Class {
			sameClass = append(sameClass, c)
		}
	}
	bestScore := -1
	for _, c := range sameClass {
		if s := p.score(c); s > bestScore {
			bestScore = s
		}
	}
	var top []Candidate
	for _, c := range sameClass {
		if p.score(c) == bestScore {
			top = append(top, c)
		}
	}
	if len(top) == 1 {
		return top[0], nil
	}
	return p.Base.Choose(r, top)
}
