package core_test

import (
	"strings"
	"testing"

	"viewupdate/internal/core"
	"viewupdate/internal/fixtures"
	"viewupdate/internal/update"
	"viewupdate/internal/value"
	"viewupdate/internal/workload"
)

func TestMakeRow(t *testing.T) {
	f := fixtures.NewEmp(20)
	row, err := core.MakeRow(f.Rel, 1, "Alice", "New York", true)
	if err != nil {
		t.Fatal(err)
	}
	if row.MustGet("Name") != value.NewString("Alice") {
		t.Fatal("core.MakeRow values wrong")
	}
	// int64 and value.Value also accepted.
	if _, err := core.MakeRow(f.Rel, int64(2), "Bob", value.NewString("New York"), false); err != nil {
		t.Fatal(err)
	}
	// Errors: arity, unsupported type, domain violation.
	if _, err := core.MakeRow(f.Rel, 1, "Alice"); err == nil {
		t.Fatal("arity should fail")
	}
	if _, err := core.MakeRow(f.Rel, 1.5, "Alice", "New York", true); err == nil {
		t.Fatal("float should fail")
	}
	if _, err := core.MakeRow(f.Rel, 1, "NotAName", "New York", true); err == nil {
		t.Fatal("domain violation should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("core.MustRow should panic on error")
			}
		}()
		core.MustRow(f.Rel, 1)
	}()
}

func TestTranslatorRow(t *testing.T) {
	f := fixtures.NewEmp(20)
	tr := core.NewTranslator(f.ViewP, nil) // nil policy defaults to core.PickFirst
	row, err := tr.Row(1, "Alice", "New York", true)
	if err != nil {
		t.Fatal(err)
	}
	if row.Relation() != f.ViewP.Schema() {
		t.Fatal("Row should build view-schema tuples")
	}
	if tr.Policy == nil {
		t.Fatal("nil policy should default")
	}
}

func TestTranslatorApplyRejectsInvalid(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	tr := core.NewTranslator(f.ViewP, core.PickFirst{})
	// Deleting a row that is not in the view fails at validation.
	ghost := f.ViewTuple(f.ViewP, 19, "Judy", "New York", false)
	if _, err := tr.Apply(db, core.DeleteRequest(ghost)); err == nil {
		t.Fatal("invalid request should fail")
	}
	if db.Len("EMP") != 5 {
		t.Fatal("failed request must not change the database")
	}
}

func TestCheckCandidatesRelaxedMode(t *testing.T) {
	f := fixtures.NewABCXD()
	db := f.PaperInstance()
	// A side-effecting join insert: exact mode fails, relaxed passes.
	u := f.ViewTuple("c4", "a", 6, 9) // parent (a,1) conflicts -> Case 3
	r := core.InsertRequest(u)
	cands, err := core.EnumerateJoinInsert(db, f.View, u)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CheckCandidates(db, f.View, r, cands, true); err == nil {
		t.Fatal("exact mode should reject side-effecting join translations")
	}
	if err := core.CheckCandidates(db, f.View, r, cands, false); err != nil {
		t.Fatalf("relaxed mode should accept: %v", err)
	}
}

func TestCandidateString(t *testing.T) {
	f := fixtures.NewEmp(20)
	db := f.PaperInstance()
	u := f.ViewTuple(f.ViewP, 17, "Susan", "New York", true)
	cands, err := core.EnumerateSPDelete(db, f.ViewP, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		s := c.String()
		if !strings.Contains(s, c.Class) {
			t.Fatalf("String misses class: %q", s)
		}
		if c.Class == "D-2" && !strings.Contains(s, "Location=") {
			t.Fatalf("D-2 String misses choices: %q", s)
		}
	}
	if core.DescribeCandidates(cands) == "" {
		t.Fatal("core.DescribeCandidates empty")
	}
}

func TestRequestStringAndSets(t *testing.T) {
	f := fixtures.NewEmp(20)
	u1 := f.ViewTuple(f.ViewP, 1, "Alice", "New York", false)
	u2 := f.ViewTuple(f.ViewP, 2, "Bob", "New York", false)
	cases := []struct {
		r       core.Request
		kind    string
		added   int
		removed int
	}{
		{core.InsertRequest(u1), "view-insert", 1, 0},
		{core.DeleteRequest(u1), "view-delete", 0, 1},
		{core.ReplaceRequest(u1, u2), "view-replace", 1, 1},
	}
	for _, c := range cases {
		if !strings.HasPrefix(c.r.String(), c.kind) {
			t.Fatalf("String = %q", c.r.String())
		}
		if len(c.r.AddedTuples()) != c.added || len(c.r.RemovedTuples()) != c.removed {
			t.Fatalf("sets wrong for %s", c.r)
		}
		if len(c.r.Mentioned()) != c.added+c.removed {
			t.Fatalf("Mentioned wrong for %s", c.r)
		}
	}
}

// TestPropertyAllCandidatesSatisfyTheorems sweeps seeded random SP
// workloads and checks, for every request kind, that the generated
// candidate set is non-empty, every candidate is exactly valid, and
// every candidate passes the five criteria — the completeness
// theorems' soundness half on larger instances than the oracle can
// reach.
func TestPropertyAllCandidatesSatisfyTheorems(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	configs := []workload.SPConfig{
		{Keys: 40, Attrs: 2, DomainSize: 3, SelectingAttrs: 1, HiddenAttrs: 0, Tuples: 15},
		{Keys: 40, Attrs: 3, DomainSize: 3, SelectingAttrs: 2, HiddenAttrs: 1, Tuples: 15},
		{Keys: 40, Attrs: 4, DomainSize: 4, SelectingAttrs: 2, HiddenAttrs: 2, Tuples: 20},
		{Keys: 60, Attrs: 5, DomainSize: 3, SelectingAttrs: 3, HiddenAttrs: 3, Tuples: 25},
	}
	kinds := []update.Kind{update.Insert, update.Delete, update.Replace}
	for ci, cfg := range configs {
		for seed := int64(0); seed < 3; seed++ {
			cfg.Seed = 100*int64(ci) + seed
			w, err := workload.NewSP(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range kinds {
				for i := 0; i < 4; i++ {
					r, ok := w.NextRequest(kind)
					if !ok {
						continue
					}
					cands, err := core.Enumerate(w.DB, w.View, r)
					if err != nil {
						t.Fatalf("cfg %d seed %d: enumerate %s: %v", ci, seed, r, err)
					}
					if len(cands) == 0 {
						t.Fatalf("cfg %d seed %d: no candidates for %s", ci, seed, r)
					}
					if err := core.CheckCandidates(w.DB, w.View, r, cands, true); err != nil {
						t.Fatalf("cfg %d seed %d: %v", ci, seed, err)
					}
					// SP views never have view side effects.
					for _, c := range cands {
						eff, err := core.SideEffects(w.DB, w.View, r, c.Translation)
						if err != nil {
							t.Fatalf("cfg %d seed %d: side effects: %v", ci, seed, err)
						}
						if !eff.None() {
							t.Fatalf("cfg %d seed %d: SP candidate %s has side effects %s", ci, seed, c, eff)
						}
					}
				}
			}
		}
	}
}

// TestPropertyJoinCandidatesApplyCleanly sweeps random trees and
// verifies join-view candidates apply and realize the requested change.
func TestPropertyJoinCandidatesApplyCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	shapes := []workload.TreeConfig{
		{Depth: 1, Fanout: 1, Keys: 40, TuplesPerRelation: 10},
		{Depth: 2, Fanout: 2, Keys: 40, TuplesPerRelation: 8},
		{Depth: 3, Fanout: 1, Keys: 40, TuplesPerRelation: 8},
	}
	for si, shape := range shapes {
		for seed := int64(0); seed < 3; seed++ {
			shape.Seed = 10*int64(si) + seed
			w, err := workload.NewTree(shape)
			if err != nil {
				t.Fatal(err)
			}
			// Delete.
			row, ok := w.RandomRow()
			if !ok {
				t.Fatal("empty view")
			}
			r := core.DeleteRequest(row)
			cands, err := core.Enumerate(w.DB, w.View, r)
			if err != nil {
				t.Fatal(err)
			}
			if len(cands) != 1 {
				t.Fatalf("identity tree wants 1 candidate, got %d", len(cands))
			}
			if !core.ValidRequested(w.DB, w.View, r, cands[0].Translation) {
				t.Fatalf("shape %d seed %d: delete candidate not requested-valid", si, seed)
			}
			// Insert.
			if r, ok := w.InsertRequestForFreshRoot(); ok {
				cands, err := core.Enumerate(w.DB, w.View, r)
				if err != nil {
					t.Fatal(err)
				}
				if !core.ValidRequested(w.DB, w.View, r, cands[0].Translation) {
					t.Fatalf("shape %d seed %d: insert candidate not requested-valid", si, seed)
				}
				if err := w.DB.Apply(cands[0].Translation); err != nil {
					t.Fatalf("shape %d seed %d: apply: %v", si, seed, err)
				}
			}
		}
	}
}
